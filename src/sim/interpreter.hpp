// Untimed Kahn-network interpreter for instruction graphs.
//
// Arcs are unbounded FIFO queues and nodes fire whenever their required
// operands are available.  Because every node is a deterministic stream
// function (merge is non-strict but its choice is determined by the control
// stream), the result is independent of firing order — this engine is the
// functional ground truth a compiled graph is checked against, while the
// machine engine (machine/engine.hpp) measures rates under the capacity-1
// acknowledge discipline.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "support/value.hpp"

namespace valpipe::sim {

/// Named streams: one wave of each array, least index first.
using StreamMap = std::map<std::string, std::vector<Value>>;

struct RunOptions {
  int waves = 1;                       ///< how many array instances to stream
  std::uint64_t maxFirings = 50'000'000;  ///< runaway guard
  StreamMap amInitial;                 ///< pre-loaded array-memory contents
};

struct RunResult {
  StreamMap outputs;                   ///< collected Output streams
  StreamMap amFinal;                   ///< array-memory contents after the run
  std::uint64_t firings = 0;
  bool quiescent = false;              ///< reached a state where nothing fires
  /// Non-empty when maxFirings was hit (likely a livelock / wrong control
  /// sequence).
  std::string note;
};

/// Runs graph `g` (composite FIFO nodes are fine here) on `inputs`.
/// Input streams are replayed identically for every wave.
RunResult interpret(const dfg::Graph& g, const StreamMap& inputs,
                    const RunOptions& opts = {});

}  // namespace valpipe::sim
