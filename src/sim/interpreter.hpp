// Untimed Kahn-network interpreter for instruction graphs.
//
// Arcs are unbounded FIFO queues and nodes fire whenever their required
// operands are available.  Because every node is a deterministic stream
// function (merge is non-strict but its choice is determined by the control
// stream), the result is independent of firing order — this engine is the
// functional ground truth a compiled graph is checked against, while the
// machine engine (machine/engine.hpp) measures rates under the capacity-1
// acknowledge discipline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "run/io.hpp"
#include "support/value.hpp"

namespace valpipe::sim {

struct RunResult {
  run::StreamMap outputs;              ///< collected Output streams
  run::StreamMap amFinal;              ///< array-memory contents after the run
  std::uint64_t firings = 0;
  bool quiescent = false;              ///< reached a state where nothing fires
  /// Non-empty when maxFirings was hit (likely a livelock / wrong control
  /// sequence).
  std::string note;
};

/// Runs graph `g` (composite FIFO nodes are fine here) on `inputs`.
/// Input streams are replayed identically for every wave.
RunResult interpret(const dfg::Graph& g, const run::StreamMap& inputs,
                    const run::RunOptions& opts = {});

}  // namespace valpipe::sim
