#include "sim/interpreter.hpp"

#include <deque>
#include <optional>

#include "support/check.hpp"

namespace valpipe::sim {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::Op;
using dfg::OutTag;
using dfg::PortSrc;
using dfg::Wiring;

namespace {

/// Per-node dynamic state.
struct NodeState {
  std::vector<std::deque<Value>> ports;  ///< queues for arc-fed operands
  std::deque<Value> gateQueue;
  std::int64_t emitted = 0;  ///< source nodes: tokens produced so far
};

struct Engine {
  const Graph& g;
  const Wiring wiring;
  const StreamMap& inputs;
  const RunOptions& opts;
  std::vector<NodeState> state;
  RunResult result;

  std::map<std::string, std::vector<NodeId>> fetchersByName;

  Engine(const Graph& graph, const StreamMap& in, const RunOptions& o)
      : g(graph), wiring(graph), inputs(in), opts(o) {
    state.resize(g.size());
    for (NodeId id : g.ids()) {
      const Node& n = g.node(id);
      state[id.index].ports.resize(n.inputs.size());
      // Load-time tokens (counter-loop bootstraps).
      for (std::size_t p = 0; p < n.inputs.size(); ++p)
        if (n.inputs[p].initial)
          state[id.index].ports[p].push_back(*n.inputs[p].initial);
      if (n.gate && n.gate->initial)
        state[id.index].gateQueue.push_back(*n.gate->initial);
      // AmFetch consumes array-memory contents as they are stored, so a
      // store must re-awaken the matching fetchers.
      if (n.op == Op::AmFetch) fetchersByName[n.streamName].push_back(id);
    }
    result.amFinal = opts.amInitial;
    // Fetched regions must exist even when nothing is pre-loaded (stores
    // fill them during the run).
    for (const auto& [name, ids] : fetchersByName) result.amFinal[name];
  }

  /// Number of tokens a source emits over the whole run.
  std::int64_t sourceLimit(const Node& n) const {
    std::int64_t perWave = n.tokensPerWave;
    if (n.op == Op::Input) {
      auto it = inputs.find(n.streamName);
      VALPIPE_CHECK_MSG(it != inputs.end(),
                        "missing input stream '" + n.streamName + "'");
      VALPIPE_CHECK_MSG(
          static_cast<std::int64_t>(it->second.size()) == perWave,
          "input '" + n.streamName + "' has wrong length");
    }
    if (n.op == Op::AmFetch) {
      // Reads the region sequentially as stores fill it: the limit is
      // whatever is available now, capped at one region read per wave.
      auto it = result.amFinal.find(n.streamName);
      VALPIPE_CHECK_MSG(it != result.amFinal.end(),
                        "missing array-memory contents '" + n.streamName + "'");
      return std::min<std::int64_t>(
          perWave * opts.waves, static_cast<std::int64_t>(it->second.size()));
    }
    return perWave * opts.waves;
  }

  Value sourceValue(const Node& n, std::int64_t k) const {
    const std::int64_t perWave = n.tokensPerWave;
    const std::int64_t j = k % perWave;
    switch (n.op) {
      case Op::Input:
        return inputs.at(n.streamName)[static_cast<std::size_t>(j)];
      case Op::BoolSeq:
        return Value(static_cast<bool>(n.pattern.bits[static_cast<std::size_t>(j)]));
      case Op::IndexSeq:
        return Value(n.seqLo +
                     (j / n.seqRepeat) % (n.seqHi - n.seqLo + 1));
      case Op::AmFetch:
        return result.amFinal.at(n.streamName)[static_cast<std::size_t>(k)];
      default:
        VALPIPE_UNREACHABLE("not a source");
    }
  }

  bool portAvailable(NodeId id, int port) const {
    const Node& n = g.node(id);
    if (port == dfg::kGatePort)
      return !n.gate || n.gate->isLiteral() || !state[id.index].gateQueue.empty();
    const PortSrc& src = n.inputs[port];
    return src.isLiteral() || !state[id.index].ports[port].empty();
  }

  Value peekPort(NodeId id, int port) const {
    const Node& n = g.node(id);
    if (port == dfg::kGatePort) {
      if (n.gate->isLiteral()) return n.gate->literal;
      return state[id.index].gateQueue.front();
    }
    const PortSrc& src = n.inputs[port];
    if (src.isLiteral()) return src.literal;
    return state[id.index].ports[port].front();
  }

  void popPort(NodeId id, int port) {
    const Node& n = g.node(id);
    if (port == dfg::kGatePort) {
      if (!n.gate->isLiteral()) state[id.index].gateQueue.pop_front();
      return;
    }
    if (!n.inputs[port].isLiteral()) state[id.index].ports[port].pop_front();
  }

  bool canFire(NodeId id) const {
    const Node& n = g.node(id);
    if (dfg::isSource(n.op)) return state[id.index].emitted < sourceLimit(n);
    if (n.gate && !portAvailable(id, dfg::kGatePort)) return false;
    if (n.op == Op::Merge) {
      if (!portAvailable(id, 0)) return false;
      const bool sel = peekPort(id, 0).asBoolean();
      return portAvailable(id, sel ? 1 : 2);
    }
    for (int p = 0; p < static_cast<int>(n.inputs.size()); ++p)
      if (!portAvailable(id, p)) return false;
    return true;
  }

  /// Fires `id`; returns consumers that gained a token (for the worklist).
  std::vector<NodeId> fire(NodeId id) {
    const Node& n = g.node(id);
    std::optional<Value> out;
    std::optional<bool> gateVal;

    if (dfg::isSource(n.op)) {
      out = sourceValue(n, state[id.index].emitted);
      ++state[id.index].emitted;
    } else {
      if (n.gate) {
        gateVal = peekPort(id, dfg::kGatePort).asBoolean();
        popPort(id, dfg::kGatePort);
      }
      auto in = [&](int p) { return peekPort(id, p); };
      switch (n.op) {
        case Op::Id:
        case Op::Fifo: out = in(0); break;
        case Op::Not: out = ops::logicalNot(in(0)); break;
        case Op::Neg: out = ops::neg(in(0)); break;
        case Op::Abs: out = ops::abs(in(0)); break;
        case Op::Add: out = ops::add(in(0), in(1)); break;
        case Op::Sub: out = ops::sub(in(0), in(1)); break;
        case Op::Mul: out = ops::mul(in(0), in(1)); break;
        case Op::Div: out = ops::div(in(0), in(1)); break;
        case Op::Min: out = ops::min(in(0), in(1)); break;
        case Op::Max: out = ops::max(in(0), in(1)); break;
        case Op::Mod: out = ops::mod(in(0), in(1)); break;
        case Op::Lt: out = ops::lt(in(0), in(1)); break;
        case Op::Le: out = ops::le(in(0), in(1)); break;
        case Op::Gt: out = ops::gt(in(0), in(1)); break;
        case Op::Ge: out = ops::ge(in(0), in(1)); break;
        case Op::Eq: out = ops::eq(in(0), in(1)); break;
        case Op::Ne: out = ops::ne(in(0), in(1)); break;
        case Op::And: out = ops::logicalAnd(in(0), in(1)); break;
        case Op::Or: out = ops::logicalOr(in(0), in(1)); break;
        case Op::Merge: {
          const bool sel = in(0).asBoolean();
          out = in(sel ? 1 : 2);
          popPort(id, 0);
          popPort(id, sel ? 1 : 2);
          break;
        }
        case Op::Output:
          result.outputs[n.streamName].push_back(in(0));
          break;
        case Op::Sink: break;
        case Op::AmStore: result.amFinal[n.streamName].push_back(in(0)); break;
        default: VALPIPE_UNREACHABLE("unhandled op in interpreter");
      }
      if (n.op != Op::Merge)
        for (int p = 0; p < static_cast<int>(n.inputs.size()); ++p)
          popPort(id, p);
    }

    std::vector<NodeId> touched;
    if (n.op == Op::AmStore) {
      auto it = fetchersByName.find(n.streamName);
      if (it != fetchersByName.end())
        touched.insert(touched.end(), it->second.begin(), it->second.end());
    }
    if (out.has_value()) {
      for (const dfg::DestRef& d : wiring.deliveredDests(id, gateVal)) {
        if (d.port == dfg::kGatePort)
          state[d.consumer.index].gateQueue.push_back(*out);
        else
          state[d.consumer.index].ports[d.port].push_back(*out);
        touched.push_back(d.consumer);
      }
    }
    return touched;
  }

  void run() {
    std::deque<NodeId> work;
    std::vector<char> queued(g.size(), 0);
    auto enqueue = [&](NodeId id) {
      if (!queued[id.index]) {
        queued[id.index] = 1;
        work.push_back(id);
      }
    };
    for (NodeId id : g.ids()) enqueue(id);

    while (!work.empty()) {
      const NodeId id = work.front();
      work.pop_front();
      queued[id.index] = 0;
      while (canFire(id)) {
        ++result.firings;
        if (result.firings > opts.maxFirings) {
          result.note = "maxFirings exceeded (livelock?)";
          return;
        }
        for (NodeId t : fire(id)) enqueue(t);
      }
    }
    result.quiescent = true;
  }
};

}  // namespace

RunResult interpret(const Graph& g, const StreamMap& inputs,
                    const RunOptions& opts) {
  Engine engine(g, inputs, opts);
  engine.run();
  return std::move(engine.result);
}

}  // namespace valpipe::sim
