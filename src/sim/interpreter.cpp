#include "sim/interpreter.hpp"

#include <deque>
#include <optional>

#include "exec/executable_graph.hpp"
#include "exec/ops.hpp"
#include "support/check.hpp"

namespace valpipe::sim {

using dfg::Op;
using exec::Cell;
using exec::ExecutableGraph;

namespace {

/// Worklist engine over the flattened graph: dynamic state is one unbounded
/// token queue per flat operand slot plus an emitted counter per source cell.
struct Engine {
  const ExecutableGraph& eg;
  const run::StreamMap& inputs;
  const run::RunOptions& opts;

  std::vector<std::deque<Value>> queues;  ///< indexed by flat slot
  std::vector<std::int64_t> emitted;      ///< per cell (sources only)
  RunResult result;

  Engine(const ExecutableGraph& graph, const run::StreamMap& in, const run::RunOptions& o)
      : eg(graph), inputs(in), opts(o) {
    queues.resize(eg.slotCount());
    emitted.assign(eg.size(), 0);
    // Load-time tokens (counter-loop bootstraps).
    for (std::uint32_t s = 0; s < eg.slotCount(); ++s)
      if (eg.operandAt(s).hasInitial) queues[s].push_back(eg.operandAt(s).initial);
    result.amFinal = opts.amInitial;
    // Fetched regions must exist even when nothing is pre-loaded (stores
    // fill them during the run).
    for (std::uint32_t c = 0; c < eg.size(); ++c)
      if (eg.cell(c).op == Op::AmFetch) result.amFinal[eg.streamName(eg.cell(c))];
  }

  /// Number of tokens a source emits over the whole run.
  std::int64_t sourceLimit(const Cell& n) const {
    std::int64_t perWave = n.tokensPerWave;
    if (n.op == Op::Input) {
      const std::string& name = eg.streamName(n);
      auto it = inputs.find(name);
      VALPIPE_CHECK_MSG(it != inputs.end(),
                        "missing input stream '" + name + "'");
      VALPIPE_CHECK_MSG(
          static_cast<std::int64_t>(it->second.size()) == perWave,
          "input '" + name + "' has wrong length");
    }
    if (n.op == Op::AmFetch) {
      // Reads the region sequentially as stores fill it: the limit is
      // whatever is available now, capped at one region read per wave.
      const std::string& name = eg.streamName(n);
      auto it = result.amFinal.find(name);
      VALPIPE_CHECK_MSG(it != result.amFinal.end(),
                        "missing array-memory contents '" + name + "'");
      return std::min<std::int64_t>(
          perWave * opts.waves, static_cast<std::int64_t>(it->second.size()));
    }
    return perWave * opts.waves;
  }

  Value sourceValue(const Cell& n, std::int64_t k) const {
    const std::int64_t j = k % n.tokensPerWave;
    switch (n.op) {
      case Op::Input:
        return inputs.at(eg.streamName(n))[static_cast<std::size_t>(j)];
      case Op::BoolSeq: return Value(eg.patternBit(n, j));
      case Op::IndexSeq:
        return Value(n.seqLo + (j / n.seqRepeat) % (n.seqHi - n.seqLo + 1));
      case Op::AmFetch:
        return result.amFinal.at(eg.streamName(n))[static_cast<std::size_t>(k)];
      default: VALPIPE_UNREACHABLE("not a source");
    }
  }

  bool portAvailable(const Cell& n, int port) const {
    if (port == exec::kGatePort && !n.hasGate) return true;
    const exec::Operand& src = eg.operand(n, port);
    return src.isLiteral() || !queues[eg.slotOf(n, port)].empty();
  }

  Value peekPort(const Cell& n, int port) const {
    const exec::Operand& src = eg.operand(n, port);
    if (src.isLiteral()) return src.literal;
    return queues[eg.slotOf(n, port)].front();
  }

  void popPort(const Cell& n, int port) {
    if (!eg.operand(n, port).isLiteral()) queues[eg.slotOf(n, port)].pop_front();
  }

  bool canFire(std::uint32_t id) const {
    const Cell& n = eg.cell(id);
    if (dfg::isSource(n.op)) return emitted[id] < sourceLimit(n);
    if (n.hasGate && !portAvailable(n, exec::kGatePort)) return false;
    if (n.op == Op::Merge) {
      if (!portAvailable(n, 0)) return false;
      const bool sel = peekPort(n, 0).asBoolean();
      return portAvailable(n, sel ? 1 : 2);
    }
    for (int p = 0; p < static_cast<int>(n.numPorts); ++p)
      if (!portAvailable(n, p)) return false;
    return true;
  }

  /// Fires `id`; returns consumers that gained a token (for the worklist).
  std::vector<std::uint32_t> fire(std::uint32_t id) {
    const Cell& n = eg.cell(id);
    std::optional<Value> out;
    std::optional<bool> gateVal;

    if (dfg::isSource(n.op)) {
      out = sourceValue(n, emitted[id]);
      ++emitted[id];
    } else {
      if (n.hasGate) {
        gateVal = peekPort(n, exec::kGatePort).asBoolean();
        popPort(n, exec::kGatePort);
      }
      auto in = [&](int p) { return peekPort(n, p); };
      switch (n.op) {
        case Op::Merge: {
          const bool sel = in(0).asBoolean();
          out = in(sel ? 1 : 2);
          popPort(n, 0);
          popPort(n, sel ? 1 : 2);
          break;
        }
        case Op::Output:
          result.outputs[eg.streamName(n)].push_back(in(0));
          break;
        case Op::Sink: break;
        case Op::AmStore:
          result.amFinal[eg.streamName(n)].push_back(in(0));
          break;
        default: out = exec::applyPure(n.op, in); break;
      }
      if (n.op != Op::Merge)
        for (int p = 0; p < static_cast<int>(n.numPorts); ++p) popPort(n, p);
    }

    std::vector<std::uint32_t> touched;
    if (n.op == Op::AmStore) {
      // AmFetch consumes array-memory contents as they are stored, so a
      // store must re-awaken the matching fetchers.
      const auto& fetchers = eg.fetchersOf(n);
      touched.insert(touched.end(), fetchers.begin(), fetchers.end());
    }
    if (out.has_value()) {
      auto deliver = [&](exec::DestSpan span) {
        for (const exec::Dest& d : span) {
          queues[d.slot].push_back(*out);
          touched.push_back(d.consumer);
        }
      };
      deliver(eg.alwaysDests(n));
      if (gateVal.has_value()) deliver(eg.taggedDests(n, *gateVal));
    }
    return touched;
  }

  void run() {
    std::deque<std::uint32_t> work;
    std::vector<char> queued(eg.size(), 0);
    auto enqueue = [&](std::uint32_t id) {
      if (!queued[id]) {
        queued[id] = 1;
        work.push_back(id);
      }
    };
    for (std::uint32_t id = 0; id < eg.size(); ++id) enqueue(id);

    while (!work.empty()) {
      const std::uint32_t id = work.front();
      work.pop_front();
      queued[id] = 0;
      while (canFire(id)) {
        ++result.firings;
        // Firings are the untimed interpreter's only clock, so the shared
        // maxInstructionTimes cap counts them.
        if (opts.maxInstructionTimes > 0 &&
            result.firings >
                static_cast<std::uint64_t>(opts.maxInstructionTimes))
          throw run::StallError(
              static_cast<std::int64_t>(result.firings),
              "instruction-time cap reached: the interpreter exceeded " +
                  std::to_string(opts.maxInstructionTimes) +
                  " firings without quiescing (livelock or runaway source)");
        if (result.firings > opts.maxFirings) {
          result.note = "maxFirings exceeded (livelock?)";
          return;
        }
        for (std::uint32_t t : fire(id)) enqueue(t);
      }
    }
    result.quiescent = true;
  }
};

}  // namespace

RunResult interpret(const dfg::Graph& g, const run::StreamMap& inputs,
                    const run::RunOptions& opts) {
  const ExecutableGraph eg(g);
  Engine engine(eg, inputs, opts);
  engine.run();
  return std::move(engine.result);
}

}  // namespace valpipe::sim
