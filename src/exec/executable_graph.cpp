#include "exec/executable_graph.hpp"

#include <algorithm>
#include <array>

#include "support/check.hpp"

namespace valpipe::exec {

using dfg::Node;
using dfg::NodeId;
using dfg::Op;
using dfg::OutTag;
using dfg::PortSrc;

namespace {

std::size_t tagIndex(OutTag t) {
  switch (t) {
    case OutTag::Always: return 0;
    case OutTag::T: return 1;
    case OutTag::F: return 2;
  }
  VALPIPE_UNREACHABLE("bad OutTag");
}

Operand flatten(const PortSrc& src) {
  Operand o;
  if (src.isArc())
    o.producer = src.producer.index;
  else
    o.literal = src.literal;
  if (src.initial) {
    o.hasInitial = true;
    o.initial = *src.initial;
  }
  return o;
}

}  // namespace

ExecutableGraph::ExecutableGraph(const dfg::Graph& g) {
  const std::size_t n = g.size();
  cells_.resize(n);

  // Pass 1: cell records, flat operand slots, per-(producer, tag) dest counts.
  std::vector<std::array<std::uint32_t, 3>> counts(n, {0, 0, 0});
  auto internStream = [this](const std::string& name) -> std::int32_t {
    for (std::size_t i = 0; i < streamNames_.size(); ++i)
      if (streamNames_[i] == name) return static_cast<std::int32_t>(i);
    streamNames_.push_back(name);
    return static_cast<std::int32_t>(streamNames_.size() - 1);
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    const Node& nd = g.node(NodeId{i});
    Cell& c = cells_[i];
    c.op = nd.op;
    c.fu = dfg::fuClass(nd.op);
    c.numPorts = static_cast<std::uint16_t>(nd.inputs.size());
    c.hasGate = nd.gate.has_value();
    c.firstPort = static_cast<std::uint32_t>(operands_.size());
    for (const PortSrc& src : nd.inputs) {
      if (src.isArc()) ++counts[src.producer.index][tagIndex(src.tag)];
      operands_.push_back(flatten(src));
    }
    if (nd.gate) {
      if (nd.gate->isArc()) ++counts[nd.gate->producer.index][tagIndex(nd.gate->tag)];
      operands_.push_back(flatten(*nd.gate));
    }
    c.tokensPerWave = nd.tokensPerWave;
    c.seqLo = nd.seqLo;
    c.seqHi = nd.seqHi;
    c.seqRepeat = nd.seqRepeat;
    c.patternBegin = static_cast<std::uint32_t>(patternBits_.size());
    for (bool b : nd.pattern.bits) patternBits_.push_back(b ? 1 : 0);
    c.patternEnd = static_cast<std::uint32_t>(patternBits_.size());
    if (!nd.streamName.empty()) c.stream = internStream(nd.streamName);
    if (nd.op == Op::Fifo) {
      c.fifoDepth = nd.fifoDepth;
      maxFifoDepth_ = std::max(maxFifoDepth_, nd.fifoDepth);
    }
  }

  // Pass 2: CSR offsets per producer, tag-segmented.
  std::uint32_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    Cell& c = cells_[i];
    c.destBegin = total;
    c.alwaysEnd = c.destBegin + counts[i][0];
    c.tEnd = c.alwaysEnd + counts[i][1];
    c.destEnd = c.tEnd + counts[i][2];
    total = c.destEnd;
  }
  dests_.resize(total);

  // Pass 3: fill destinations.  Consumers are visited in cell order with the
  // gate port last, so within each tag segment the order matches the
  // destination-field order dfg::Wiring derives.
  std::vector<std::array<std::uint32_t, 3>> cursor(n);
  for (std::uint32_t i = 0; i < n; ++i)
    cursor[i] = {cells_[i].destBegin, cells_[i].alwaysEnd, cells_[i].tEnd};
  for (std::uint32_t i = 0; i < n; ++i) {
    const Cell& c = cells_[i];
    const int portCount = c.numPorts + (c.hasGate ? 1 : 0);
    for (int k = 0; k < portCount; ++k) {
      const int port = k == c.numPorts ? kGatePort : k;
      const std::uint32_t slot = c.firstPort + static_cast<std::uint32_t>(k);
      const Operand& o = operands_[slot];
      if (o.isLiteral()) continue;
      const Node& nd = g.node(NodeId{i});
      const PortSrc& src =
          port == kGatePort ? *nd.gate : nd.inputs[static_cast<std::size_t>(port)];
      dests_[cursor[src.producer.index][tagIndex(src.tag)]++] = {i, port, slot};
    }
  }

  // Array-memory fetchers per stream (for store -> fetcher re-awakening).
  fetchersByStream_.resize(streamNames_.size());
  for (std::uint32_t i = 0; i < n; ++i)
    if (cells_[i].op == Op::AmFetch && cells_[i].stream >= 0)
      fetchersByStream_[static_cast<std::size_t>(cells_[i].stream)].push_back(i);
}

}  // namespace valpipe::exec
