// Per-instruction-time ready queue of the event-driven scheduler.
//
// The timed simulator re-examines a cell only when something that can change
// its enabling happens: a result packet arrives, an acknowledge frees a
// destination slot, its own firing completes, a function unit of its class
// frees, or an array-memory store extends a region it fetches.  Each such
// event wakes the cell at a specific instruction time; the queue yields, per
// time step, the deduplicated set of cells to examine.
//
// Every wake lies at most `horizon` instruction times ahead of the time being
// processed (the longest of ack delay, execution latency + routing + the
// inter-PE hop, or a unit-pool release), so the queue is a circular time
// wheel: a power-of-two ring of per-time buckets with O(1) push and pop and
// no comparisons — the property that makes the event-driven engine cheaper
// per event than a full rescan is cheap per cell.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace valpipe::exec {

class ReadyQueue {
 public:
  /// `horizon` bounds how far ahead of the currently processed time a wake
  /// may land; wakes beyond it would alias an earlier bucket.
  ReadyQueue(std::size_t cells, std::int64_t horizon)
      : lastWake_(cells, -1), seenAt_(cells, -1) {
    std::size_t ring = 2;
    while (ring < static_cast<std::size_t>(horizon) + 2) ring <<= 1;
    buckets_.resize(ring);
    mask_ = static_cast<std::int64_t>(ring) - 1;
  }

  /// Schedules `cell` for examination at instruction time `at`.
  void wake(std::uint32_t cell, std::int64_t at) {
    if (lastWake_[cell] == at) return;  // common duplicate (ack + arrival)
    lastWake_[cell] = at;
    // Keep the cursor a true lower bound.  A sharded wheel can receive a
    // wake between the global time and its own next local entry — i.e.
    // behind a cursor nextTime() already scanned forward — and an empty
    // wheel's cursor may be arbitrarily stale; in both cases scanning from
    // the old cursor would miss (or alias) this entry's bucket.  Every
    // bucket between `at` and a scanned-ahead cursor is empty, so snapping
    // back is exact.
    if (count_ == 0 || at < next_) next_ = at;
    buckets_[static_cast<std::size_t>(at & mask_)].push_back(cell);
    ++count_;
  }

  bool empty() const { return count_ == 0; }

  /// Earliest scheduled instruction time.  Precondition: !empty().
  std::int64_t nextTime() {
    while (buckets_[static_cast<std::size_t>(next_ & mask_)].empty()) ++next_;
    return next_;
  }

  /// Fast-forwards the scan cursor to `t`.  Used by sharded wheels: a shard
  /// with no event for a stretch of globally active times must not re-scan
  /// that stretch (or alias entries a full ring ahead).  Precondition: no
  /// entry is scheduled before `t`.
  void advanceTo(std::int64_t t) {
    if (t > next_) next_ = t;
  }

  /// Forgets every scheduled wake and resets the cursor and dedupe stamps,
  /// returning the wheel to its just-constructed state.  Used by the
  /// compiled scheduler when it fast-forwards time in bulk: entries at
  /// pre-jump times would otherwise alias post-jump buckets, so the pending
  /// set is rebuilt from the schedule's wake mirror at the shifted times.
  void clear() {
    for (auto& b : buckets_) b.clear();
    count_ = 0;
    next_ = 0;
    std::fill(lastWake_.begin(), lastWake_.end(), -1);
    std::fill(seenAt_.begin(), seenAt_.end(), -1);
  }

  /// Pops every cell scheduled at nextTime() into `out`, deduplicated.
  /// Returns that time.  Precondition: !empty().
  std::int64_t pop(std::vector<std::uint32_t>& out) {
    const std::int64_t t = nextTime();
    auto& bucket = buckets_[static_cast<std::size_t>(t & mask_)];
    out.clear();
    for (const std::uint32_t c : bucket) {
      if (seenAt_[c] != t) {
        seenAt_[c] = t;
        out.push_back(c);
      }
    }
    count_ -= bucket.size();
    bucket.clear();  // keeps capacity for the next lap around the ring
    ++next_;
    return t;
  }

 private:
  std::vector<std::vector<std::uint32_t>> buckets_;  ///< ring, indexed t & mask_
  std::int64_t mask_ = 0;
  std::int64_t next_ = 0;   ///< lower bound on the earliest scheduled time
  std::size_t count_ = 0;   ///< entries currently in the wheel
  std::vector<std::int64_t> lastWake_;  ///< push-side dedupe
  std::vector<std::int64_t> seenAt_;    ///< pop-side dedupe
};

}  // namespace valpipe::exec
