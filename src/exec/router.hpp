// Placement / distribution-network accounting (Fig. 1).
//
// When a cell-to-PE assignment is supplied, result packets between cells in
// different processing elements traverse the distribution network: they pay
// the configured extra hop delay and are counted as network traffic.  The
// router also attributes result-producing firings to their PE.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/packet_counters.hpp"

namespace valpipe::exec {

class Router {
 public:
  Router() = default;
  /// `peOf` maps each cell to its PE and must outlive the router.
  Router(const std::vector<int>& peOf, int peCount, int interPeDelay)
      : peOf_(&peOf),
        interPeDelay_(interPeDelay),
        pePackets_(static_cast<std::size_t>(peCount), 0) {}

  bool active() const { return peOf_ != nullptr; }

  /// Attributes one result-producing firing to the cell's PE.
  void noteFiring(std::uint32_t cell) {
    if (active()) ++pePackets_[static_cast<std::size_t>((*peOf_)[cell])];
  }

  /// Extra transit delay for a result packet from `from` to `to`; counts the
  /// packet as distribution-network traffic when the PEs differ.
  std::int64_t extraDelay(std::uint32_t from, std::uint32_t to,
                          PacketCounters& counters) const {
    if (!active() || (*peOf_)[from] == (*peOf_)[to]) return 0;
    ++counters.networkResultPackets;
    return interPeDelay_;
  }

  /// Result packets launched per PE (empty when no placement is active).
  const std::vector<std::uint64_t>& pePackets() const { return pePackets_; }

 private:
  const std::vector<int>* peOf_ = nullptr;
  int interPeDelay_ = 0;
  std::vector<std::uint64_t> pePackets_;
};

}  // namespace valpipe::exec
