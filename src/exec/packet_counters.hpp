// Packet traffic counters (§2's packet communication architecture).
//
// Accumulated by the timed engine's firing/acknowledge/routing paths; the
// per-class operation-packet split backs the paper's "<= 1/8 of operation
// packets go to the array memories" claim.
//
// Width contract: every counter is std::uint64_t.  A fully pipelined graph
// fires each cell once per two instruction times, so a modest m=4096,
// waves=1024 bench already produces multi-million packet totals and a
// 32-bit counter would wrap within seconds of simulated time.  The
// static_asserts below pin the width so a refactor cannot silently narrow
// them; tests/test_packet_counters.cpp checks exact counts on a
// multi-million-firing run.
#pragma once

#include <array>
#include <cstdint>

#include "dfg/opcode.hpp"

namespace valpipe::exec {

struct PacketCounters {
  std::array<std::uint64_t, 4> opPacketsByClass{};  ///< indexed by FuClass
  std::uint64_t resultPackets = 0;
  std::uint64_t ackPackets = 0;
  /// Result packets that crossed processing elements through the
  /// distribution network (only counted when a Placement is supplied).
  std::uint64_t networkResultPackets = 0;

  double networkShare() const {
    return resultPackets == 0
               ? 0.0
               : static_cast<double>(networkResultPackets) /
                     static_cast<double>(resultPackets);
  }

  std::uint64_t opPacketsTotal() const {
    std::uint64_t s = 0;
    for (auto v : opPacketsByClass) s += v;
    return s;
  }
  /// Fraction of operation packets sent to the array memories (§2 claims
  /// <= 1/8 for streaming application codes).
  double amShare() const {
    const auto total = opPacketsTotal();
    return total == 0 ? 0.0
                      : static_cast<double>(opPacketsByClass[static_cast<int>(
                            dfg::FuClass::Am)]) /
                            static_cast<double>(total);
  }
};

static_assert(sizeof(PacketCounters::resultPackets) == 8,
              "packet counters must stay 64-bit (see width contract above)");
static_assert(sizeof(PacketCounters::ackPackets) == 8 &&
                  sizeof(PacketCounters::networkResultPackets) == 8 &&
                  sizeof(PacketCounters::opPacketsByClass[0]) == 8,
              "packet counters must stay 64-bit (see width contract above)");

}  // namespace valpipe::exec
