// Packet traffic counters (§2's packet communication architecture).
//
// Accumulated by the timed engine's firing/acknowledge/routing paths; the
// per-class operation-packet split backs the paper's "<= 1/8 of operation
// packets go to the array memories" claim.
#pragma once

#include <array>
#include <cstdint>

#include "dfg/opcode.hpp"

namespace valpipe::exec {

struct PacketCounters {
  std::array<std::uint64_t, 4> opPacketsByClass{};  ///< indexed by FuClass
  std::uint64_t resultPackets = 0;
  std::uint64_t ackPackets = 0;
  /// Result packets that crossed processing elements through the
  /// distribution network (only counted when a Placement is supplied).
  std::uint64_t networkResultPackets = 0;

  double networkShare() const {
    return resultPackets == 0
               ? 0.0
               : static_cast<double>(networkResultPackets) /
                     static_cast<double>(resultPackets);
  }

  std::uint64_t opPacketsTotal() const {
    std::uint64_t s = 0;
    for (auto v : opPacketsByClass) s += v;
    return s;
  }
  /// Fraction of operation packets sent to the array memories (§2 claims
  /// <= 1/8 for streaming application codes).
  double amShare() const {
    const auto total = opPacketsTotal();
    return total == 0 ? 0.0
                      : static_cast<double>(opPacketsByClass[static_cast<int>(
                            dfg::FuClass::Am)]) /
                            static_cast<double>(total);
  }
};

}  // namespace valpipe::exec
