#include "exec/shard_plan.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"

namespace valpipe::exec {

namespace {

/// Cells whose firings touch a shared stream vector and therefore must be
/// co-located: Output (appends to the output stream), AmStore (extends a
/// region), AmFetch (reads the region as it grows).
bool needsStreamColocation(dfg::Op op) {
  return op == dfg::Op::Output || op == dfg::Op::AmStore ||
         op == dfg::Op::AmFetch;
}

}  // namespace

ShardPlan buildShardPlan(const ExecutableGraph& eg, std::uint32_t shards,
                         const std::vector<std::uint32_t>& hint) {
  VALPIPE_CHECK(shards >= 1);
  VALPIPE_CHECK_MSG(hint.size() == eg.size(),
                    "shard hint does not match the graph");
  ShardPlan plan;
  plan.shardCount = shards;
  plan.shardOf.resize(eg.size());
  for (std::uint32_t c = 0; c < eg.size(); ++c)
    plan.shardOf[c] = hint[c] % shards;

  // Stream co-location: every constrained cell of a stream follows the
  // stream's lowest-numbered constrained cell.  A cell belongs to at most
  // one stream, so one pass per stream suffices (no union-find needed).
  std::map<std::int32_t, std::uint32_t> streamHome;  // stream -> home shard
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const Cell& cl = eg.cell(c);
    if (!needsStreamColocation(cl.op) || cl.stream < 0) continue;
    auto [it, inserted] = streamHome.emplace(cl.stream, plan.shardOf[c]);
    if (!inserted) plan.shardOf[c] = it->second;
  }

  plan.cells.resize(shards);
  for (std::uint32_t c = 0; c < eg.size(); ++c)
    plan.cells[plan.shardOf[c]].push_back(c);
  return plan;
}

}  // namespace valpipe::exec
