// Partition of an ExecutableGraph's cells into scheduler shards.
//
// The parallel engine assigns every instruction cell to exactly one worker
// thread (shard).  The caller supplies a per-cell shard hint (derived from a
// Placement, or from the machine layer's min-cut partitioner); the plan then
// enforces the engine's co-location constraints: all cells that touch the
// same named stream region — Output cells of one stream, and the
// AmStore/AmFetch cells of one array-memory region — must live in one shard,
// because they share the stream's backing vector (stores extend the region
// fetchers read, and output elements append in firing order).  Constrained
// groups land in the shard of their lowest-numbered cell, which keeps the
// plan deterministic for a given hint.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/executable_graph.hpp"

namespace valpipe::exec {

struct ShardPlan {
  std::uint32_t shardCount = 1;
  std::vector<std::uint32_t> shardOf;             ///< per cell
  std::vector<std::vector<std::uint32_t>> cells;  ///< per shard, ascending

  bool sameShard(std::uint32_t a, std::uint32_t b) const {
    return shardOf[a] == shardOf[b];
  }
};

/// Builds a plan over `shards` shards from per-cell `hint` (values are taken
/// modulo `shards`), applying the stream co-location constraints above.
/// `hint` must have one entry per cell.
ShardPlan buildShardPlan(const ExecutableGraph& eg, std::uint32_t shards,
                         const std::vector<std::uint32_t>& hint);

}  // namespace valpipe::exec
