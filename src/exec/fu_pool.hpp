// Function-unit pool arbiter (§2's finite functional-unit classes).
//
// A firing reserves one unit of its FU class for the class's execution
// latency; a class with zero configured units is unlimited (no contention).
// Grants happen inside the scheduler's enabling phase, in cell-priority
// order, so pool pressure resolves exactly as the synchronous reference
// stepper resolves it.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "dfg/opcode.hpp"
#include "support/check.hpp"

namespace valpipe::exec {

class FuPool {
 public:
  /// `units[c]` == 0 means unlimited; `latency[c]` is the class's execution
  /// latency in instruction times.
  FuPool(const std::array<int, 4>& units, const std::array<int, 4>& latency)
      : latency_(latency) {
    for (std::size_t c = 0; c < 4; ++c) {
      limited_[c] = units[c] != 0;
      freeAt_[c].assign(static_cast<std::size_t>(std::max(units[c], 0)), 0);
    }
  }

  /// Tries to reserve a unit of class `c` at time `now`; accumulates busy
  /// time on success.
  bool tryGrant(dfg::FuClass fc, std::int64_t now) {
    const auto c = static_cast<std::size_t>(fc);
    if (!limited_[c]) {
      busy_[c] += static_cast<std::uint64_t>(latency_[c]);
      return true;
    }
    for (std::int64_t& freeAt : freeAt_[c]) {
      if (freeAt <= now) {
        freeAt = now + latency_[c];
        busy_[c] += static_cast<std::uint64_t>(latency_[c]);
        return true;
      }
    }
    return false;
  }

  /// Earliest time a unit of class `c` frees.  Only meaningful after a
  /// failed grant (all units busy), which also implies the class is limited.
  std::int64_t nextFree(dfg::FuClass fc) const {
    const auto c = static_cast<std::size_t>(fc);
    VALPIPE_CHECK_MSG(limited_[c] && !freeAt_[c].empty(),
                      "nextFree on an unlimited FU class");
    return *std::min_element(freeAt_[c].begin(), freeAt_[c].end());
  }

  /// Busy instruction-times accumulated per class (for utilization).
  const std::array<std::uint64_t, 4>& busy() const { return busy_; }

  /// Adds pre-computed busy time per class: the compiled scheduler accounts
  /// the grants of its fast-forwarded hyper-periods in bulk (N windows times
  /// the per-window busy delta it measured).  Only meaningful for unlimited
  /// classes — limited pools carry per-unit freeAt state the bulk jump
  /// cannot reconstruct, so the compiled scheduler refuses to jump on them.
  void addBusy(const std::array<std::uint64_t, 4>& delta) {
    for (std::size_t c = 0; c < 4; ++c) busy_[c] += delta[c];
  }

 private:
  std::array<int, 4> latency_{};
  std::array<bool, 4> limited_{};
  std::array<std::vector<std::int64_t>, 4> freeAt_;
  std::array<std::uint64_t, 4> busy_{};
};

}  // namespace valpipe::exec
