// Stop-condition logic of the timed simulator.
//
// A run ends when (a) every expected output stream has delivered its element
// count, (b) the machine has been quiescent for longer than any in-flight
// packet delay can span (deadlock / natural drain), or (c) the cycle budget
// runs out.  StopCondition tracks (a) in O(1) per output firing; the
// quiescence window for (b) is computed from the timing profile.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace valpipe::exec {

class StopCondition {
 public:
  explicit StopCondition(
      const std::map<std::string, std::int64_t>& expectedOutputs) {
    for (const auto& [name, want] : expectedOutputs) {
      names_.push_back(name);
      want_.push_back(want);
      have_.push_back(0);
      if (want > 0) ++remaining_;
    }
  }

  /// Counter index for an output stream, or -1 when the stream carries no
  /// expectation.
  std::int32_t slotFor(const std::string& name) const {
    for (std::size_t i = 0; i < names_.size(); ++i)
      if (names_[i] == name) return static_cast<std::int32_t>(i);
    return -1;
  }

  /// Records one delivered output element (slot -1 is ignored).
  void onOutput(std::int32_t slot) {
    if (slot < 0) return;
    if (++have_[static_cast<std::size_t>(slot)] ==
        want_[static_cast<std::size_t>(slot)])
      --remaining_;
  }

  /// Records `n` delivered elements at once (the compiled scheduler's bulk
  /// fast-forward).  Equivalent to `n` onOutput calls: the want threshold is
  /// crossed at most once however large the batch.
  void advance(std::int32_t slot, std::int64_t n) {
    if (slot < 0 || n <= 0) return;
    const auto i = static_cast<std::size_t>(slot);
    const bool met = want_[i] > 0 && have_[i] >= want_[i];
    have_[i] += n;
    if (!met && want_[i] > 0 && have_[i] >= want_[i]) --remaining_;
  }

  /// All expected outputs arrived (false when none were expected, matching
  /// the run-forever-until-quiescent contract).
  bool outputsComplete() const { return !want_.empty() && remaining_ == 0; }

  /// Whether quiescence counts as successful completion.
  bool quiescentOk() const { return want_.empty() || remaining_ == 0; }

  // --- progress introspection (stall diagnosis) ---
  std::size_t size() const { return names_.size(); }
  const std::string& name(std::size_t i) const { return names_[i]; }
  std::int64_t want(std::size_t i) const { return want_[i]; }
  std::int64_t have(std::size_t i) const { return have_[i]; }

 private:
  std::vector<std::string> names_;
  std::vector<std::int64_t> want_;
  std::vector<std::int64_t> have_;
  std::int64_t remaining_ = 0;
};

/// Idle cycles after which the machine is declared quiescent: longer than
/// any in-flight result/acknowledge delay can span under the profile.
inline std::int64_t quiesceWindow(int routeDelay, int ackDelay,
                                  int maxExecLatency) {
  return 2 + routeDelay + ackDelay + maxExecLatency;
}

}  // namespace valpipe::exec
