// Dynamic per-cell state of the timed machine simulator.
//
// A Slot realizes the static architecture's capacity-1 operand discipline:
// at most one result packet occupies a consumer port, and the producer may
// refill it only after the acknowledge round trip ("at most one instance of
// each instruction is active").  Slots live in one flat array parallel to
// ExecutableGraph's operand slots; CellDyn holds the remaining per-cell
// scalars.
#pragma once

#include <cstdint>

#include "support/value.hpp"

namespace valpipe::exec {

/// One operand slot: holds at most one result packet.
struct Slot {
  bool full = false;
  Value v{};
  std::int64_t readyAt = 0;  ///< when the packet becomes usable (routing)
  std::int64_t freedAt = 0;  ///< when the producer sees the acknowledge
};

/// Per-cell dynamic scalars.
struct CellDyn {
  std::int64_t emitted = 0;    ///< source cells: tokens produced so far
  std::int64_t busyUntil = 0;  ///< cell cannot refire before this time
};

}  // namespace valpipe::exec
