// Shared scalar-operator dispatch for the execution engines.
//
// Both the untimed Kahn interpreter and the timed machine simulator evaluate
// the same pure cell operations; funneling them through one switch keeps the
// engines bit-identical and removes the duplicated opcode tables they used to
// carry.  Non-pure ops (Merge, Output, Sink, AmStore and the sources) have
// engine-specific token plumbing and stay in the engines.
#pragma once

#include "dfg/opcode.hpp"
#include "support/check.hpp"
#include "support/value.hpp"

namespace valpipe::exec {

/// Applies a pure scalar op; `in(p)` yields the value of operand `p`.
template <class In>
Value applyPure(dfg::Op op, In&& in) {
  using dfg::Op;
  switch (op) {
    case Op::Id:
    case Op::Fifo: return in(0);
    case Op::Not: return ops::logicalNot(in(0));
    case Op::Neg: return ops::neg(in(0));
    case Op::Abs: return ops::abs(in(0));
    case Op::Add: return ops::add(in(0), in(1));
    case Op::Sub: return ops::sub(in(0), in(1));
    case Op::Mul: return ops::mul(in(0), in(1));
    case Op::Div: return ops::div(in(0), in(1));
    case Op::Min: return ops::min(in(0), in(1));
    case Op::Max: return ops::max(in(0), in(1));
    case Op::Mod: return ops::mod(in(0), in(1));
    case Op::Lt: return ops::lt(in(0), in(1));
    case Op::Le: return ops::le(in(0), in(1));
    case Op::Gt: return ops::gt(in(0), in(1));
    case Op::Ge: return ops::ge(in(0), in(1));
    case Op::Eq: return ops::eq(in(0), in(1));
    case Op::Ne: return ops::ne(in(0), in(1));
    case Op::And: return ops::logicalAnd(in(0), in(1));
    case Op::Or: return ops::logicalOr(in(0), in(1));
    default: VALPIPE_UNREACHABLE("not a pure scalar op");
  }
}

}  // namespace valpipe::exec
