// Composite-FIFO ring state of the timed machine engines.
//
// The fusion pass (src/opt) keeps a balanced graph's FIFO buffering as
// single Op::Fifo cells of depth k instead of expanding them into k identity
// cells.  FifoState is the O(1) dynamic state such a composite cell carries,
// and its firing rule reproduces the expanded chain's timing exactly:
//
//   - latency: a token accepted at time a is emittable at a + (k-1)*D and
//     delivered D later — the k stage traversals of the chain;
//   - occupancy: at most k-1 tokens queue inside (the interior stage slots),
//     plus one in the composite's own input slot — the chain's total of k;
//   - rate: accepts and emits each respect the period P = D + A, the §3
//     two-instruction-time repetition bound under the unit profile;
//   - backpressure: once the ring has wrapped, the a-th accept additionally
//     waits for the acknowledge wave of the (a-(k-1))-th emit to walk back
//     across the k-1 interior stages, one A per hop — the chain's release
//     schedule under a stalled consumer.
//
// Here D = max(execLatency + routeDelay, 1) and A = max(ackDelay, 1) are the
// chain's effective per-stage forward and backward hop times; the max with 1
// is the engines' two-phase visibility rule (an effect at time t is acted on
// no earlier than the next instruction time).
//
// Engines decide doAccept/doEmit in phase A (against start-of-cycle state)
// and apply them unchanged in phase B; caching the decision keeps the
// two-phase discipline exact even when an accept and an emit coincide.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "exec/executable_graph.hpp"
#include "support/check.hpp"
#include "support/value.hpp"

namespace valpipe::exec {

/// Effective per-stage hop times of the chain a composite FIFO replaces.
struct FifoTiming {
  std::int64_t resultDelay = 1;  ///< D: stage firing to the next stage's slot
  std::int64_t ackDelay = 1;     ///< A: stage consume to the producer's release

  std::int64_t period() const { return resultDelay + ackDelay; }

  static FifoTiming of(int execLatency, int routeDelay, int ackDelay) {
    FifoTiming t;
    t.resultDelay = std::max<std::int64_t>(execLatency + routeDelay, 1);
    t.ackDelay = std::max<std::int64_t>(ackDelay, 1);
    return t;
  }
};

/// Dynamic state of one composite FIFO cell (depth >= 2).
struct FifoState {
  static constexpr std::int64_t kNever =
      std::numeric_limits<std::int64_t>::min() / 4;

  int depth = 0;  ///< k: stage count of the chain this cell replaces
  std::vector<Value> vals;            ///< ring of queued tokens (cap k-1)
  std::vector<std::int64_t> readyAt;  ///< per ring entry: earliest emit time
  std::vector<std::int64_t> emitAt;   ///< emit times, circular by emit count
  std::uint32_t head = 0;
  std::uint32_t count = 0;
  std::int64_t accepted = 0;  ///< lifetime tokens pushed
  std::int64_t emitted = 0;   ///< lifetime tokens popped
  std::int64_t lastAccept = kNever;
  std::int64_t lastEmit = kNever;

  // Phase-A decision, applied unchanged in phase B.
  bool doAccept = false;
  bool doEmit = false;
  std::int64_t decidedAt = kNever;

  void init(int k) {
    depth = k;
    const auto r = static_cast<std::size_t>(k - 1);
    vals.assign(r, Value{});
    readyAt.assign(r, 0);
    emitAt.assign(r, kNever);
  }

  std::int64_t ring() const { return depth - 1; }

  /// Room-and-rate half of the accept test (the engine checks the input
  /// slot separately): an interior slot is free, the head stage's period
  /// has elapsed, and — once the ring has wrapped — the acknowledge wave of
  /// the emit that freed the target slot has crossed the interior stages.
  bool canAccept(const FifoTiming& t, std::int64_t now) const {
    if (count >= static_cast<std::uint32_t>(ring())) return false;
    if (now < lastAccept + t.period()) return false;
    if (accepted >= ring() &&
        now < emitAt[static_cast<std::size_t>(accepted % ring())] +
                  ring() * t.ackDelay)
      return false;
    return true;
  }

  /// Token-and-rate half of the emit test (the engine checks destination
  /// slots separately): the head token has traversed the interior stages
  /// and the tail stage's period has elapsed.
  bool canEmit(const FifoTiming& t, std::int64_t now) const {
    return count >= 1 && now >= readyAt[head] && now >= lastEmit + t.period();
  }

  void push(const Value& v, const FifoTiming& t, std::int64_t now) {
    const auto idx = static_cast<std::size_t>(
        (head + count) % static_cast<std::uint32_t>(ring()));
    vals[idx] = v;
    readyAt[idx] = now + ring() * t.resultDelay;
    ++count;
    ++accepted;
    lastAccept = now;
  }

  Value pop(std::int64_t now) {
    emitAt[static_cast<std::size_t>(emitted % ring())] = now;
    ++emitted;
    const Value v = vals[head];
    head = (head + 1) % static_cast<std::uint32_t>(ring());
    --count;
    lastEmit = now;
    return v;
  }
};

/// Ring state for every composite cell of `eg` (depth >= 2; depth-1 FIFO
/// cells run through the generic identity path).  Checks the cell shape the
/// composite firing rule depends on.
inline std::vector<FifoState> makeFifoStates(const ExecutableGraph& eg) {
  std::vector<FifoState> f(eg.size());
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const Cell& cl = eg.cell(c);
    if (cl.op != dfg::Op::Fifo || cl.fifoDepth < 2) continue;
    VALPIPE_CHECK_MSG(cl.numPorts == 1 && !cl.hasGate,
                      "composite FIFO cell must have one ungated operand");
    f[c].init(cl.fifoDepth);
  }
  return f;
}

/// Idle-window slack a graph with composite FIFO cells needs: a composite
/// can wait up to (k-1)*D silently for its head token to traverse the
/// interior stages (and up to (k-1)*A for the backward acknowledge wave),
/// with no firing anywhere in between.  Zero for graphs without composites,
/// so expanded runs keep their exact quiescence times.
inline std::int64_t fifoSettleSlack(int maxFifoDepth, const FifoTiming& t) {
  return maxFifoDepth >= 2 ? maxFifoDepth * t.period() : 0;
}

}  // namespace valpipe::exec
