// Flattened, cache-friendly executable form of a dfg::Graph.
//
// Both execution engines (the untimed Kahn interpreter in src/sim and the
// timed machine simulator in src/machine) used to walk the pointer-heavy
// dfg::Graph directly, re-deriving destination lists and operand layouts on
// every firing.  ExecutableGraph lowers a graph ONCE into CSR-style flat
// arrays:
//
//   - one Cell record per instruction cell (opcode, FU class, operand count,
//     source-sequence state, stream index);
//   - a contiguous Operand array holding every operand slot — the data ports
//     of a cell followed by its optional gate port — so an engine's dynamic
//     per-slot state (token queue or capacity-1 packet slot) is a parallel
//     flat array indexed by the same slot numbers;
//   - a contiguous Dest array per producer, segmented by OutTag
//     (Always | T | F) so the destinations of a firing with a given gate
//     value are two slices, no allocation or filtering required;
//   - precomputed acknowledge-arc information: every Dest and Operand record
//     carries the flat slot index / producer cell needed to route acknowledge
//     wake-ups without touching the original graph.
//
// Two lowering paths feed the timed engines.  An expanded graph
// (dfg::expandFifos) contains no Op::Fifo nodes: every FIFO is an Id chain
// and each stage is an ordinary cell here.  A fused graph (opt::fuseFifos,
// the default) keeps each FIFO as ONE cell whose `fifoDepth` records the
// stage count; the engines fire such composite cells through an O(1)
// ring-buffer rule (exec/fifo.hpp) that is timing-equivalent to the chain.
//
// The structure is read-only after construction and shared by any number of
// concurrently running engines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "dfg/opcode.hpp"
#include "support/value.hpp"

namespace valpipe::exec {

/// Operand index of a cell's gate port (mirrors dfg::kGatePort).
inline constexpr int kGatePort = dfg::kGatePort;

/// Sentinel producer index meaning "literal operand, no producer".
inline constexpr std::uint32_t kNoProducer = UINT32_MAX;

/// One operand slot: either a literal payload or an arc from `producer`.
/// The slot may carry a load-time token (counter-loop bootstraps).
struct Operand {
  std::uint32_t producer = kNoProducer;  ///< kNoProducer => literal
  Value literal{};                       ///< literal payload (literals only)
  bool hasInitial = false;
  Value initial{};                       ///< load-time token, if any

  bool isLiteral() const { return producer == kNoProducer; }
};

/// One destination of a producer's result packet.
struct Dest {
  std::uint32_t consumer = 0;  ///< consumer cell index
  std::int32_t port = 0;       ///< operand index, or kGatePort
  std::uint32_t slot = 0;      ///< flat operand-slot index of (consumer, port)
};

/// Contiguous slice of the destination array.
struct DestSpan {
  const Dest* first = nullptr;
  const Dest* last = nullptr;
  const Dest* begin() const { return first; }
  const Dest* end() const { return last; }
  bool empty() const { return first == last; }
};

/// Static per-cell record.  Destination slices are segmented by tag:
/// [destBegin, alwaysEnd) Always, [alwaysEnd, tEnd) T, [tEnd, destEnd) F.
struct Cell {
  dfg::Op op = dfg::Op::Id;
  dfg::FuClass fu = dfg::FuClass::Pe;
  std::uint16_t numPorts = 0;  ///< data operand count (gate excluded)
  bool hasGate = false;
  std::uint32_t firstPort = 0;  ///< flat slot of operand 0; gate at +numPorts

  std::uint32_t destBegin = 0;
  std::uint32_t alwaysEnd = 0;
  std::uint32_t tEnd = 0;
  std::uint32_t destEnd = 0;

  // --- source attributes (meaningful per op) ---
  std::int64_t tokensPerWave = -1;
  std::int64_t seqLo = 0;      ///< IndexSeq
  std::int64_t seqHi = -1;     ///< IndexSeq
  std::int64_t seqRepeat = 1;  ///< IndexSeq
  std::uint32_t patternBegin = 0;  ///< BoolSeq bits
  std::uint32_t patternEnd = 0;
  std::int32_t stream = -1;  ///< interned stream-name index, -1 when none
  /// Fifo: stage count of the chain this cell stands for.  Depth >= 2 makes
  /// the cell composite (ring-buffer firing rule); depth 1 runs as identity.
  std::int32_t fifoDepth = 0;
};

class ExecutableGraph {
 public:
  /// Flattens `g`.  Accepts any graph (composite Fifo nodes included); the
  /// timed engine additionally requires dfg::isLowered, which stays the
  /// caller's contract.
  explicit ExecutableGraph(const dfg::Graph& g);

  std::size_t size() const { return cells_.size(); }
  const Cell& cell(std::uint32_t c) const { return cells_[c]; }

  /// Total operand slots (gates included): engines size their dynamic state
  /// arrays with this and index them by slot number.
  std::size_t slotCount() const { return operands_.size(); }
  const Operand& operandAt(std::uint32_t slot) const { return operands_[slot]; }
  /// Flat slot index of a cell's operand `port` (kGatePort for the gate).
  std::uint32_t slotOf(const Cell& c, int port) const {
    return c.firstPort +
           static_cast<std::uint32_t>(port == kGatePort ? c.numPorts : port);
  }
  const Operand& operand(const Cell& c, int port) const {
    return operands_[slotOf(c, port)];
  }

  /// Destinations delivered on every firing.
  DestSpan alwaysDests(const Cell& c) const {
    return {dests_.data() + c.destBegin, dests_.data() + c.alwaysEnd};
  }
  /// Destinations additionally delivered when the gate evaluates to
  /// `gateVal` (the paper's T/F-tagged destination fields).
  DestSpan taggedDests(const Cell& c, bool gateVal) const {
    return gateVal ? DestSpan{dests_.data() + c.alwaysEnd, dests_.data() + c.tEnd}
                   : DestSpan{dests_.data() + c.tEnd, dests_.data() + c.destEnd};
  }
  DestSpan allDests(const Cell& c) const {
    return {dests_.data() + c.destBegin, dests_.data() + c.destEnd};
  }

  bool patternBit(const Cell& c, std::int64_t j) const {
    return patternBits_[c.patternBegin + static_cast<std::uint32_t>(j)] != 0;
  }

  /// Stream name of a cell (empty when the cell has none).
  const std::string& streamName(const Cell& c) const {
    static const std::string kEmpty;
    return c.stream < 0 ? kEmpty
                        : streamNames_[static_cast<std::size_t>(c.stream)];
  }

  /// AmFetch cells reading the region a store cell appends to (used to
  /// re-awaken fetchers when a store lands).  Empty for non-store streams.
  const std::vector<std::uint32_t>& fetchersOf(const Cell& c) const {
    static const std::vector<std::uint32_t> kNone;
    return c.stream < 0 ? kNone
                        : fetchersByStream_[static_cast<std::size_t>(c.stream)];
  }

  /// Largest Fifo cell depth (0 when the graph has none): sizes the engines'
  /// composite-FIFO settle/wake slack.
  int maxFifoDepth() const { return maxFifoDepth_; }

 private:
  std::vector<Cell> cells_;
  std::vector<Operand> operands_;
  std::vector<Dest> dests_;
  std::vector<std::uint8_t> patternBits_;
  std::vector<std::string> streamNames_;
  std::vector<std::vector<std::uint32_t>> fetchersByStream_;
  int maxFifoDepth_ = 0;
};

}  // namespace valpipe::exec
