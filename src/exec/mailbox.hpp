// Cross-shard packet mailboxes of the parallel machine engine.
//
// The sharded scheduler gives each worker thread its own slice of the cell
// state; the only cross-shard traffic is the paper's own packet vocabulary —
// a result packet filling a destination operand slot, and an acknowledge
// freeing a producer's destination.  Each ordered shard pair owns one
// single-producer single-consumer mailbox: the producing shard appends
// during its firing phase, the owning shard drains after the next
// per-instruction-time barrier.  The barrier provides the happens-before
// edge, so messages need no per-entry synchronization, and the fixed
// (sender shard, push order) drain order keeps the parallel engine
// bit-identical to the single-threaded one.
#pragma once

#include <cstdint>
#include <vector>

#include "support/value.hpp"

namespace valpipe::exec {

/// One cross-shard packet.
struct Message {
  enum class Kind : std::uint8_t {
    Result,       ///< fill destination `slot` of `cell` with `v` at `time`
    Acknowledge,  ///< destination `slot` of producer `cell` freed at `time`
  };
  Kind kind = Kind::Result;
  std::uint32_t cell = 0;   ///< cell to wake in the receiving shard
  std::uint32_t slot = 0;   ///< flat operand-slot index the packet refers to
  std::int64_t time = 0;    ///< readyAt (Result) / freedAt (Acknowledge)
  std::int64_t wakeAt = 0;  ///< instruction time `cell` must be re-examined
  Value v{};                ///< payload (Result only)
};

/// SPSC batch queue for one ordered shard pair.  push() is only called by
/// the sending shard between two barriers; drain()/clear() only by the
/// receiving shard in the following inter-barrier window.
class Mailbox {
 public:
  void push(const Message& m) { msgs_.push_back(m); }
  const std::vector<Message>& pending() const { return msgs_; }
  void clear() { msgs_.clear(); }  // keeps capacity across laps

 private:
  std::vector<Message> msgs_;
};

/// Dense SxS mailbox matrix; box(from, to) is the pair's queue.
class MailboxGrid {
 public:
  explicit MailboxGrid(std::size_t shards)
      : shards_(shards), boxes_(shards * shards) {}

  Mailbox& box(std::uint32_t from, std::uint32_t to) {
    return boxes_[from * shards_ + to];
  }
  std::size_t shards() const { return shards_; }

 private:
  std::size_t shards_;
  std::vector<Mailbox> boxes_;
};

}  // namespace valpipe::exec
