// Cross-shard packet mailboxes of the parallel machine engine.
//
// The sharded scheduler gives each worker thread its own slice of the cell
// state; the only cross-shard traffic is the paper's own packet vocabulary —
// a result packet filling a destination operand slot, and an acknowledge
// freeing a producer's destination.  Each ordered shard pair owns one
// single-producer single-consumer mailbox: the producing shard appends
// during its firing phase, the owning shard drains after the next
// per-instruction-time barrier.  The barrier provides the happens-before
// edge, so messages need no per-entry synchronization, and the fixed
// (sender shard, push order) drain order keeps the parallel engine
// bit-identical to the single-threaded one.
//
// Storage is a bounded power-of-two ring (capacity chosen at construction)
// with an unbounded spill vector behind it: steady-state traffic stays in
// the ring with no allocation, and bursts past the ring's capacity land in
// the spill — counted by overflows(), the mailbox's backpressure signal.
// Because a drain empties the whole box before the next push window, ring
// entries are never freed mid-window and iteration order is exactly push
// order (ring first, then spill).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/value.hpp"

namespace valpipe::exec {

/// One cross-shard packet.
struct Message {
  enum class Kind : std::uint8_t {
    Result,       ///< fill destination `slot` of `cell` with `v` at `time`
    Acknowledge,  ///< destination `slot` of producer `cell` freed at `time`
  };
  Kind kind = Kind::Result;
  std::uint32_t cell = 0;   ///< cell to wake in the receiving shard
  std::uint32_t slot = 0;   ///< flat operand-slot index the packet refers to
  std::int64_t time = 0;    ///< readyAt (Result) / freedAt (Acknowledge)
  std::int64_t wakeAt = 0;  ///< instruction time `cell` must be re-examined
  Value v{};                ///< payload (Result only)
};

/// SPSC batch queue for one ordered shard pair.  push() is only called by
/// the sending shard between two barriers; forEach*/clear() only by the
/// receiving shard in the following inter-barrier window.
class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity = 64) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
  }

  void push(const Message& m) {
    if (tail_ - head_ < ring_.size()) {
      ring_[tail_ & (ring_.size() - 1)] = m;
      ++tail_;
    } else {
      ++overflows_;
      spill_.push_back(m);
    }
  }

  std::size_t size() const { return (tail_ - head_) + spill_.size(); }
  bool empty() const { return size() == 0; }

  /// Visits every pending message in push order.
  template <class F>
  void forEach(F&& f) const {
    for (std::size_t i = head_; i != tail_; ++i)
      f(ring_[i & (ring_.size() - 1)]);
    for (const Message& m : spill_) f(m);
  }

  /// Visits every pending message in reverse push order (the fault
  /// injector's mailbox-reorder mode).
  template <class F>
  void forEachReversed(F&& f) const {
    for (std::size_t i = spill_.size(); i-- > 0;) f(spill_[i]);
    for (std::size_t i = tail_; i != head_; --i)
      f(ring_[(i - 1) & (ring_.size() - 1)]);
  }

  void clear() {  // keeps ring and spill capacity across laps
    head_ = tail_ = 0;
    spill_.clear();
  }

  /// Cumulative pushes that missed the ring and hit the spill vector —
  /// the queue's backpressure indicator.
  std::uint64_t overflows() const { return overflows_; }

 private:
  std::vector<Message> ring_;  ///< power-of-two bounded buffer
  std::size_t head_ = 0;       ///< absolute index of the first pending entry
  std::size_t tail_ = 0;       ///< absolute index one past the last entry
  std::vector<Message> spill_;
  std::uint64_t overflows_ = 0;
};

/// Dense SxS mailbox matrix; box(from, to) is the pair's queue.
class MailboxGrid {
 public:
  explicit MailboxGrid(std::size_t shards)
      : shards_(shards), boxes_(shards * shards) {}

  Mailbox& box(std::uint32_t from, std::uint32_t to) {
    return boxes_[from * shards_ + to];
  }
  std::size_t shards() const { return shards_; }

 private:
  std::size_t shards_;
  std::vector<Mailbox> boxes_;
};

}  // namespace valpipe::exec
