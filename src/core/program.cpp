// Whole-program compilation (Theorem 4), phase-split per core/phases.hpp:
// buildGraph splices the blocks' fully pipelined subgraphs along the acyclic
// flow dependency graph; normalize / balance / lower then carry the result
// to the machine-ready form.  compile() is the composition.
#include <sstream>

#include "core/balance.hpp"
#include "core/block_compiler.hpp"
#include "core/compiler.hpp"
#include "core/phases.hpp"
#include "core/schemes.hpp"
#include "dfg/expand_ctl.hpp"
#include "dfg/lower.hpp"
#include "dfg/prune.hpp"
#include "dfg/validate.hpp"
#include "opt/fuse.hpp"
#include "support/check.hpp"
#include "support/diagnostics.hpp"
#include "val/classify.hpp"
#include "val/parser.hpp"

namespace valpipe::core {

using dfg::Graph;
using dfg::PortSrc;
using val::Block;
using val::Module;

double CompiledProgram::predictedRate() const {
  double rate = 0.5;
  for (const BlockReport& b : blocks) rate = std::min(rate, b.predictedRate);
  return rate;
}

namespace {

/// Ensures a block result is a stream (constant blocks fold to literals,
/// which Output cells and downstream gates cannot meter by themselves).
PortSrc ensureStream(Graph& g, const Module& m, const CompileOptions& opts,
                     const std::map<std::string, ArraySource>& arrays,
                     const Block& b, PortSrc result, std::int64_t repl) {
  if (!result.isLiteral()) return result;
  BlockCompiler bc(g, m, opts, arrays, "i", *b.type.range, repl);
  return bc.literalStream(result.literal, b.type.streamLength());
}

}  // namespace

namespace phases {

CompiledProgram buildGraph(const Module& m, const CompileOptions& opts) {
  if (auto r = val::isPipeStructured(m); !r)
    throw CompileError("not a pipe-structured program: " + r.reason);
  const bool longFifo = opts.forIterScheme == ForIterScheme::LongFifo;
  if (longFifo && opts.interleave < 2)
    throw CompileError("long-FIFO scheme needs CompileOptions::interleave "
                       ">= 2 (got " +
                       std::to_string(opts.interleave) + ")");
  const std::int64_t repl = longFifo ? opts.interleave : 1;
  if (longFifo && m.blocks.size() != 1)
    throw CompileError(
        "the long-FIFO scheme interleaves block streams and is supported for "
        "single-block programs only");

  CompiledProgram out;
  Graph& g = out.graph;

  // Scalar parameters need load-time bindings (§2: operand fields hold the
  // values when the program is loaded).
  for (const val::Param& p : m.params)
    if (!p.type.isArray && !opts.scalarBindings.count(p.name))
      throw CompileError("scalar parameter '" + p.name +
                         "' needs a load-time binding");

  // Input endpoints for the array parameters.
  std::map<std::string, ArraySource> arrays;
  for (const val::Param& p : m.params) {
    if (!p.type.isArray) continue;
    VALPIPE_CHECK(p.type.range.has_value());
    const dfg::NodeId in = g.input(p.name, p.type.streamLength() * repl);
    arrays[p.name] = {Graph::out(in), *p.type.range, p.type.range2};
    out.inputs[p.name] = *p.type.range;
    out.inputTypes[p.name] = p.type;
  }

  // Blocks in binding order (the flow dependency graph is acyclic by the
  // applicative semantics; typecheck enforced it).
  for (const Block& b : m.blocks) {
    BlockReport report;
    report.name = b.name;
    PortSrc result;
    if (b.isForall()) {
      result = opts.forallScheme == ForallScheme::Parallel
                   ? compileForallParallel(g, m, opts, arrays, b, report)
                   : compileForallPipeline(g, m, opts, arrays, b, report);
    } else {
      switch (opts.forIterScheme) {
        case ForIterScheme::Todd:
          result = compileForIterTodd(g, m, opts, arrays, b, report);
          break;
        case ForIterScheme::Companion:
          result = compileForIterCompanion(g, m, opts, arrays, b,
                                           opts.companionSkip, report);
          break;
        case ForIterScheme::LongFifo:
          result = compileForIterLongFifo(g, m, opts, arrays, b,
                                          opts.interleave, report);
          break;
        case ForIterScheme::Auto:
          if (val::isSimpleForIter(b, m))
            result = compileForIterCompanion(g, m, opts, arrays, b,
                                             opts.companionSkip, report);
          else
            result = compileForIterTodd(g, m, opts, arrays, b, report);
          break;
      }
    }
    result = ensureStream(g, m, opts, arrays, b, result, repl);

    if (opts.routing == ArrayRouting::Memory) {
      // Conventional layout: the produced array goes to an array memory and
      // consumers fetch it back (the §2 traffic comparison).
      g.amStore(b.name, result);
      const dfg::NodeId fetch =
          g.amFetch(b.name, b.type.streamLength() * repl);
      result = Graph::out(fetch);
    }
    arrays[b.name] = {result, *b.type.range, b.type.range2};
    out.blocks.push_back(std::move(report));
  }

  const ArraySource& resultSrc = arrays.at(m.resultName);
  g.output(m.resultName, resultSrc.stream);
  out.outputName = m.resultName;
  out.outputRange = resultSrc.range;
  out.outputType = m.findBlock(m.resultName)->type;
  out.interleave = repl;
  return out;
}

void normalize(CompiledProgram& p, const CompileOptions& opts) {
  if (opts.prune) p.graph = dfg::pruneDead(p.graph);
  if (opts.lowerControl) {
    p.graph = dfg::expandControlGenerators(p.graph);
    p.graph = dfg::pruneDead(p.graph);  // drop the stale generators
  }
}

void balance(CompiledProgram& p, const CompileOptions& opts) {
  p.balance = balanceGraph(p.graph, opts.balanceMode);
  dfg::validateOrThrow(p.graph, /*requireAcyclic=*/true);
}

void lower(CompiledProgram& p, const CompileOptions& opts) {
  if (!opts.lower) return;
  if (opts.fuseFifos) {
    opt::FusionStats stats;
    p.graph = opt::fuseFifos(p.graph, &stats);
    p.fusion = stats;
  } else {
    p.graph = dfg::expandFifos(p.graph);
  }
}

}  // namespace phases

CompiledProgram compile(const Module& m, const CompileOptions& opts) {
  CompiledProgram out = phases::buildGraph(m, opts);
  phases::normalize(out, opts);
  phases::balance(out, opts);
  phases::lower(out, opts);
  return out;
}

CompiledProgram compileSource(const std::string& source,
                              const CompileOptions& opts) {
  Module m = frontend(source);
  return compile(m, opts);
}

Module frontend(const std::string& source) {
  Module m = val::parseModuleOrThrow(source);
  val::typecheckOrThrow(m);
  return m;
}

}  // namespace valpipe::core
