// Public entry point: compile a pipe-structured Val module into a fully
// pipelined static dataflow instruction graph (Theorems 1–4).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "dfg/graph.hpp"
#include "opt/fuse.hpp"
#include "val/ast.hpp"
#include "val/typecheck.hpp"
#include "val/types.hpp"

namespace valpipe::core {

/// Balancing statistics (the §8 buffer-cost discussion / C3 experiment).
struct BalanceOutcome {
  BalanceMode mode = BalanceMode::None;
  std::size_t buffersInserted = 0;  ///< total identity stages added
  std::size_t fifoNodes = 0;        ///< FIFO nodes created
};

/// Per-block compilation record.
struct BlockReport {
  std::string name;
  std::string scheme;          ///< "forall/pipeline", "for-iter/companion", ...
  std::int64_t cycleStages = 0;  ///< for-iter only: loop cycle length S
  std::int64_t cycleTokens = 0;  ///< for-iter only: dependence distance k
  /// Predicted steady-state rate in results per instruction time under the
  /// unit timing model: min(1/2, k/S) for loops, 1/2 otherwise.
  double predictedRate = 0.5;
};

struct CompiledProgram {
  dfg::Graph graph;
  /// Input stream name -> declared manifest range (first dimension).
  std::map<std::string, val::Range> inputs;
  /// Input stream name -> full declared type (carries 2-D ranges).
  std::map<std::string, val::Type> inputTypes;
  std::string outputName;
  val::Range outputRange;
  /// Full output type (carries the 2-D column range when present).
  val::Type outputType;
  BalanceOutcome balance;
  /// What the lowering phase's chain fusion did (core/phases.hpp); absent
  /// until phases::lower runs with opts.lower && opts.fuseFifos.
  std::optional<opt::FusionStats> fusion;
  std::vector<BlockReport> blocks;
  /// Element-interleave factor (1 except under the LongFifo scheme, where
  /// streams carry `interleave` independent instances per index).
  std::int64_t interleave = 1;

  /// Packets the output stream carries per wave.
  std::int64_t expectedOutputPerWave() const {
    const std::int64_t n =
        outputType.isArray ? outputType.streamLength() : outputRange.length();
    return n * interleave;
  }
  /// Packets input `name` carries per wave.
  std::int64_t inputLengthPerWave(const std::string& name) const {
    auto it = inputTypes.find(name);
    return (it != inputTypes.end() ? it->second.streamLength()
                                   : inputs.at(name).length()) *
           interleave;
  }
  /// Minimum of the per-block predicted rates.
  double predictedRate() const;
};

/// Compiles a parsed-and-typechecked module.  Throws CompileError when the
/// module falls outside the supported class or an option is inapplicable.
/// Exactly the composition of the named phases in core/phases.hpp
/// (buildGraph -> normalize -> balance -> lower).
CompiledProgram compile(const val::Module& m, const CompileOptions& opts = {});

/// Convenience: parse + typecheck + compile Val source.
CompiledProgram compileSource(const std::string& source,
                              const CompileOptions& opts = {});

/// Parse + typecheck only (shared by tools/tests).
val::Module frontend(const std::string& source);

}  // namespace valpipe::core
