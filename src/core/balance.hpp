// Balancing (§3, §8): insert FIFO buffering so every path between
// reconvergent cells has equal stage count, making the graph fully
// pipelinable.
//
// Depth model: d[v] is the stage at which cell v fires relative to its
// component; every operand/gate arc u -> v requires d[v] >= d[u] + len
// (len = 1, or the depth of an existing FIFO).  Arcs on for-iter cycles are
// length-fixed by construction (equality constraints, never buffered);
// loop-closing feedback arcs are excluded.  Self-timed sources float freely.
//
// Two solvers:
//   LongestPath — ASAP depths by fixed-point relaxation (the simple
//     polynomial algorithm of §8 (1)); tends to over-buffer because sources
//     are pinned at depth 0.
//   Optimal     — minimum total inserted buffering, via the min-cost-flow
//     dual of the depth LP (§8 (3)).
#pragma once

#include "core/compiler.hpp"
#include "dfg/graph.hpp"

namespace valpipe::core {

/// Balances `g` in place by inserting FIFO nodes on slack arcs.
/// BalanceMode::None is a no-op.  Throws on inconsistent rigid constraints.
BalanceOutcome balanceGraph(dfg::Graph& g, BalanceMode mode);

/// Total buffering a mode would insert, without mutating the graph (used by
/// the C3 balancing-cost experiment).
std::size_t plannedBuffering(const dfg::Graph& g, BalanceMode mode);

}  // namespace valpipe::core
