#include "core/balance.hpp"

#include <algorithm>

#include "analysis/paths.hpp"
#include "flow/difference_lp.hpp"
#include "support/check.hpp"
#include "support/diagnostics.hpp"

namespace valpipe::core {

using analysis::Arc;
using dfg::Graph;
using dfg::NodeId;

namespace {

/// Strongly connected components over all arcs (including feedback): arcs
/// with both endpoints in a non-trivial SCC lie on a for-iter cycle and are
/// length-fixed.
std::vector<int> sccIds(const Graph& g, const std::vector<Arc>& arcs) {
  const int n = static_cast<int>(g.size());
  std::vector<std::vector<int>> succ(n), pred(n);
  for (const Arc& a : arcs) {
    succ[a.from.index].push_back(static_cast<int>(a.to.index));
    pred[a.to.index].push_back(static_cast<int>(a.from.index));
  }
  // Kosaraju.
  std::vector<char> seen(n, 0);
  std::vector<int> order;
  order.reserve(n);
  for (int root = 0; root < n; ++root) {
    if (seen[root]) continue;
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    seen[root] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < succ[v].size()) {
        const int w = succ[v][i++];
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
  }
  std::vector<int> comp(n, -1);
  int numComp = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (comp[*it] != -1) continue;
    std::vector<int> stack{*it};
    comp[*it] = numComp;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int w : pred[v])
        if (comp[w] == -1) {
          comp[w] = numComp;
          stack.push_back(w);
        }
    }
    ++numComp;
  }
  return comp;
}

struct Plan {
  std::vector<Arc> arcs;          ///< all arcs, flags refined with SCC info
  std::vector<std::int64_t> depth;
};

/// Marks cycle arcs rigid and computes depths for the requested mode.
Plan planDepths(const Graph& g, BalanceMode mode) {
  Plan plan;
  plan.arcs = analysis::arcs(g);
  const std::vector<int> comp = sccIds(g, plan.arcs);
  std::vector<int> compSize(g.size(), 0);
  for (int c : comp) ++compSize[c];
  for (Arc& a : plan.arcs)
    if (!a.feedback && comp[a.from.index] == comp[a.to.index] &&
        compSize[comp[a.from.index]] > 1)
      a.rigid = true;

  const int n = static_cast<int>(g.size());
  if (mode == BalanceMode::Optimal) {
    std::vector<flow::DiffConstraint> cons;
    std::vector<flow::DiffObjectiveTerm> obj;
    for (const Arc& a : plan.arcs) {
      if (a.feedback) continue;
      const int u = static_cast<int>(a.from.index);
      const int v = static_cast<int>(a.to.index);
      cons.push_back({u, v, a.phaseLength});
      if (a.rigid)
        cons.push_back({v, u, -a.phaseLength});  // equality
      else
        obj.push_back({u, v, 1});
    }
    auto d = flow::solveDifferenceLP(n, cons, obj);
    if (!d)
      throw CompileError(
          "balancing failed: inconsistent stage constraints (fixed-length "
          "cycle conflicts with an acyclic path)");
    plan.depth = std::move(*d);
    return plan;
  }

  // LongestPath: fixed-point relaxation.  Rigid arcs push in both directions
  // (equality); everything starts at 0.
  plan.depth.assign(n, 0);
  bool changed = true;
  int rounds = 0;
  while (changed) {
    changed = false;
    if (++rounds > n + 2)
      throw CompileError("balancing failed: rigid constraints diverge");
    for (const Arc& a : plan.arcs) {
      if (a.feedback) continue;
      const auto u = a.from.index;
      const auto v = a.to.index;
      if (plan.depth[v] < plan.depth[u] + a.phaseLength) {
        plan.depth[v] = plan.depth[u] + a.phaseLength;
        changed = true;
      }
      if (a.rigid && plan.depth[u] < plan.depth[v] - a.phaseLength) {
        plan.depth[u] = plan.depth[v] - a.phaseLength;
        changed = true;
      }
    }
  }
  return plan;
}

std::size_t totalSlack(const Plan& plan) {
  std::size_t total = 0;
  for (const Arc& a : plan.arcs) {
    if (a.feedback || a.rigid) continue;
    const std::int64_t slack =
        plan.depth[a.to.index] - plan.depth[a.from.index] - a.phaseLength;
    VALPIPE_CHECK_MSG(slack >= 0, "negative slack after balancing");
    total += static_cast<std::size_t>(slack);
  }
  return total;
}

}  // namespace

BalanceOutcome balanceGraph(Graph& g, BalanceMode mode) {
  BalanceOutcome outcome;
  outcome.mode = mode;
  if (mode == BalanceMode::None) return outcome;

  const Plan plan = planDepths(g, mode);
  for (const Arc& a : plan.arcs) {
    const std::int64_t slack =
        plan.depth[a.to.index] - plan.depth[a.from.index] - a.phaseLength;
    if (a.feedback || a.rigid) {
      VALPIPE_CHECK_MSG(a.feedback || slack == 0,
                        "rigid arc acquired slack during balancing");
      continue;
    }
    if (slack <= 0) continue;
    // Copy the port first: g.fifo() appends a node, which may reallocate the
    // node storage and invalidate references into it.
    const dfg::PortSrc orig = a.port == dfg::kGatePort
                                  ? *g.node(a.to).gate
                                  : g.node(a.to).inputs[a.port];
    const dfg::PortSrc wrapped = g.fifo(orig, static_cast<int>(slack), "bal");
    dfg::Node& consumer = g.node(a.to);
    if (a.port == dfg::kGatePort)
      consumer.gate = wrapped;
    else
      consumer.inputs[a.port] = wrapped;
    outcome.buffersInserted += static_cast<std::size_t>(slack);
    ++outcome.fifoNodes;
  }
  return outcome;
}

std::size_t plannedBuffering(const Graph& g, BalanceMode mode) {
  if (mode == BalanceMode::None) return 0;
  return totalSlack(planDepths(g, mode));
}

}  // namespace valpipe::core
