#include "core/schemes.hpp"

#include <sstream>

#include "analysis/paths.hpp"
#include "support/check.hpp"
#include "support/diagnostics.hpp"
#include "val/classify.hpp"
#include "val/constfold.hpp"
#include "val/linear.hpp"

namespace valpipe::core {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;
using val::Block;
using val::ForIterBlock;

namespace {

struct LoopShape {
  std::int64_t p, q, r, n;  ///< first/last appended index, initial index, count
};

LoopShape shapeOf(const Block& b) {
  const ForIterBlock& fi = b.forIter();
  VALPIPE_CHECK_MSG(fi.lastIndex.has_value(), "for-iter not typechecked");
  LoopShape s;
  s.q = *fi.lastIndex;
  s.r = b.type.range->lo;
  s.p = s.r + 1;
  s.n = s.q - s.p + 1;
  VALPIPE_CHECK(s.n >= 1);
  return s;
}

/// Longest path (in cells) from `from` to `to` over operand/gate arcs;
/// -1 when unreachable.  The graph must be acyclic here (the feedback loop
/// is not closed yet).
std::int64_t longestPathCells(const Graph& g, NodeId from, NodeId to) {
  auto order = analysis::topoOrder(g);
  VALPIPE_CHECK_MSG(order.has_value(), "loop body must be acyclic before the "
                                       "feedback arc is closed");
  const std::vector<analysis::Arc> arcs = analysis::arcs(g);
  std::vector<std::vector<analysis::Arc>> in(g.size());
  for (const analysis::Arc& a : arcs) in[a.to.index].push_back(a);
  std::vector<std::int64_t> best(g.size(), -1);
  best[from.index] = 0;
  for (NodeId id : *order) {
    for (const analysis::Arc& a : in[id.index]) {
      if (best[a.from.index] < 0) continue;
      best[id.index] = std::max(best[id.index], best[a.from.index] + a.length);
    }
  }
  return best[to.index];
}

bool hasUses(const Graph& g, NodeId producer) {
  for (NodeId id : g.ids()) {
    const dfg::Node& n = g.node(id);
    for (const PortSrc& in : n.inputs)
      if (in.isArc() && in.producer == producer) return true;
    if (n.gate && n.gate->isArc() && n.gate->producer == producer) return true;
  }
  return false;
}

/// Shared builder for the direct (Todd / long-FIFO) schemes: compile the body
/// against a feedback proxy, close the loop through a single merge cell whose
/// gate operand feeds all but the last `batch` results back (Fig. 7), padding
/// the cycle to `targetStages` when requested (0 = no padding).
PortSrc buildDirectLoop(Graph& g, const val::Module& m,
                        const CompileOptions& opts,
                        const std::map<std::string, ArraySource>& arrays,
                        const Block& b, std::int64_t batch,
                        std::int64_t targetStages, BlockReport& report) {
  const ForIterBlock& fi = b.forIter();
  const LoopShape s = shapeOf(b);

  BlockCompiler bc(g, m, opts, arrays, fi.indexVar, val::Range{s.p, s.q}, batch);
  const NodeId proxy = g.identity(Graph::lit(Value(0)), "fb-proxy");
  bc.bindAccess(bc.root(), fi.accVar, -1, Graph::out(proxy));

  const PortSrc bodyOut =
      bc.compileBody(fi.defs, fi.appendValue, bc.root());
  PortSrc init = bc.compile(fi.accInitValue, bc.root());
  if (!init.isLiteral())
    throw CompileError("for-iter initial element must fold to a load-time "
                       "constant (primitive scalar expression)");

  // Merge control <F T..T> per instance batch: the initial element first,
  // then the n loop results (§7, Fig. 7).
  std::vector<bool> ctlBits(static_cast<std::size_t>(s.n) + 1, true);
  ctlBits[0] = false;
  const PortSrc ctl = bc.boolSeq(ctlBits, "loop-ctl");

  PortSrc tIn = bodyOut;
  if (tIn.isLiteral()) {
    // Degenerate recurrence independent of everything: meter the literal.
    tIn = bc.literalStream(tIn.literal, s.n);
  }
  const NodeId mergeId = g.merge(ctl, tIn, init, "loop:" + b.name);

  const bool cyclic = hasUses(g, proxy);
  std::int64_t stages = 0;
  if (cyclic) {
    // Output switch control <T..T F>: all but the last result feed back.
    std::vector<bool> outBits(static_cast<std::size_t>(s.n) + 1, true);
    outBits.back() = false;
    g.node(mergeId).gate = bc.boolSeq(outBits, "loop-out");

    // Cycle length before padding: proxy -> body -> merge, plus the merge.
    const std::int64_t bodyLen = longestPathCells(g, proxy, tIn.producer);
    VALPIPE_CHECK(bodyLen >= 0);
    stages = bodyLen + 1;
    PortSrc fb = Graph::outT(mergeId);
    fb.feedback = true;
    if (targetStages > stages) {
      fb = g.fifo(fb, static_cast<int>(targetStages - stages), "loop-pad");
      stages = targetStages;
    }
    g.replaceUses(proxy, fb);
  }

  report.name = b.name;
  report.cycleStages = stages;
  report.cycleTokens = cyclic ? batch : 0;
  report.predictedRate =
      cyclic ? std::min(0.5, static_cast<double>(batch) /
                                 static_cast<double>(stages))
             : 0.5;
  return Graph::out(mergeId);
}

// --- small literal-aware node builders for the companion pipeline ---

PortSrc mkMul(Graph& g, PortSrc a, PortSrc b, const std::string& label) {
  if (a.isLiteral() && b.isLiteral()) return Graph::lit(ops::mul(a.literal, b.literal));
  return Graph::out(g.binary(Op::Mul, a, b, label));
}
PortSrc mkAdd(Graph& g, PortSrc a, PortSrc b, const std::string& label) {
  if (a.isLiteral() && b.isLiteral()) return Graph::lit(ops::add(a.literal, b.literal));
  return Graph::out(g.binary(Op::Add, a, b, label));
}

/// Drops the first `drop` packets of a `len`-packet stream (literals pass
/// through untouched — they are index-independent).
PortSrc dropFirst(BlockCompiler& bc, Graph& g, PortSrc s, std::int64_t drop,
                  std::int64_t len, const std::string& label) {
  if (s.isLiteral() || drop == 0) return s;
  std::vector<bool> bits(static_cast<std::size_t>(len), true);
  for (std::int64_t i = 0; i < drop; ++i) bits[static_cast<std::size_t>(i)] = false;
  return Graph::outT(g.gatedIdentity(s, bc.boolSeq(bits, label), label));
}

/// Drops the last `drop` packets of a `len`-packet stream.  The surviving
/// packet for element i is consumed while element i + drop is processed
/// (the companion zip C(s)_{i-s}), so consumers see it `drop` index
/// positions early — recorded as a negative phase shift so the balancer
/// buffers the skew (Fig. 4's FIFO construction applied to Fig. 8).
PortSrc dropLast(BlockCompiler& bc, Graph& g, PortSrc s, std::int64_t drop,
                 std::int64_t len, const std::string& label) {
  if (s.isLiteral() || drop == 0) return s;
  std::vector<bool> bits(static_cast<std::size_t>(len), true);
  for (std::int64_t i = 0; i < drop; ++i)
    bits[static_cast<std::size_t>(len - 1 - i)] = false;
  const dfg::NodeId gate =
      g.gatedIdentity(s, bc.boolSeq(bits, label), label);
  g.node(gate).phaseShift = -drop;
  return Graph::outT(gate);
}

/// Selects packet `pos` (0-based) of a `len`-packet stream.
PortSrc tapAt(BlockCompiler& bc, Graph& g, PortSrc s, std::int64_t pos,
              std::int64_t len, const std::string& label) {
  if (s.isLiteral()) return s;
  std::vector<bool> bits(static_cast<std::size_t>(len), false);
  bits[static_cast<std::size_t>(pos)] = true;
  return Graph::outT(g.gatedIdentity(s, bc.boolSeq(bits, label), label));
}

}  // namespace

PortSrc compileForIterTodd(Graph& g, const val::Module& m,
                           const CompileOptions& opts,
                           const std::map<std::string, ArraySource>& arrays,
                           const Block& b, BlockReport& report) {
  PortSrc out = buildDirectLoop(g, m, opts, arrays, b, 1, 0, report);
  report.scheme = "for-iter/todd";
  return out;
}

PortSrc compileForIterLongFifo(Graph& g, const val::Module& m,
                               const CompileOptions& opts,
                               const std::map<std::string, ArraySource>& arrays,
                               const Block& b, int batch, BlockReport& report) {
  if (batch < 2)
    throw CompileError("long-FIFO scheme needs CompileOptions::interleave "
                       ">= 2 (got " +
                       std::to_string(batch) + ")");
  PortSrc out =
      buildDirectLoop(g, m, opts, arrays, b, batch, 2 * batch, report);
  std::ostringstream scheme;
  scheme << "for-iter/longfifo(B=" << batch << ")";
  report.scheme = scheme.str();
  return out;
}

PortSrc compileForIterCompanion(Graph& g, const val::Module& m,
                                const CompileOptions& opts,
                                const std::map<std::string, ArraySource>& arrays,
                                const Block& b, int k, BlockReport& report) {
  const ForIterBlock& fi = b.forIter();
  const LoopShape s = shapeOf(b);
  if (k < 2 || (k & (k - 1)) != 0)
    throw CompileError("CompileOptions::companionSkip must be a power of two "
                       ">= 2 (got " +
                       std::to_string(k) + ")");
  if (k > s.n)
    throw CompileError("CompileOptions::companionSkip (" + std::to_string(k) +
                       ") exceeds the loop trip count (" +
                       std::to_string(s.n) + ")");

  auto lin = val::decomposeLinear(val::bodyExpression(fi), fi.accVar,
                                  fi.indexVar, m.consts);
  if (!lin)
    throw CompileError(
        "block '" + b.name +
        "' is not a simple for-iter (recurrence is not first-order linear); "
        "CompileOptions::forIterScheme = Companion does not apply — use the "
        "Todd scheme");

  BlockCompiler bc(g, m, opts, arrays, fi.indexVar, val::Range{s.p, s.q});

  // Parameter-vector streams a_i = (alpha_i, beta_i) over i in [p, q].
  PortSrc c1 = bc.compile(lin->alpha, bc.root());
  PortSrc c2 = bc.compile(lin->beta, bc.root());

  PortSrc init = bc.compile(fi.accInitValue, bc.root());
  if (!init.isLiteral())
    throw CompileError("for-iter initial element must fold to a load-time "
                       "constant (primitive scalar expression)");

  // Prologue: x_{p-1} = init; x_{p+j-1} = alpha*x + beta directly for
  // j = 1..k-1 ("code for initial values", Fig. 8).
  std::vector<PortSrc> firstX;  // x_{p-1} .. x_{p+k-2}
  firstX.push_back(init);
  for (std::int64_t j = 1; j < k; ++j) {
    const std::int64_t pos = j - 1;  // stream position of index p+j-1
    const PortSrc aj = tapAt(bc, g, c1, pos, s.n, "a@" + std::to_string(j));
    const PortSrc bj = tapAt(bc, g, c2, pos, s.n, "b@" + std::to_string(j));
    firstX.push_back(
        mkAdd(g, mkMul(g, aj, firstX.back(), "prologue*"), bj, "prologue+"));
  }

  // Companion pipeline: log2(k) doubling levels of
  //   C(2s)_i = G(C(s)_i, C(s)_{i-s}),  G(a,b) = (a1*b1, a1*b2 + a2).
  std::int64_t lo = s.p;  // first index the current pair stream is defined at
  for (std::int64_t span = 1; span < k; span *= 2) {
    const std::int64_t len = s.q - lo + 1;
    const std::string lvl = "G" + std::to_string(2 * span);
    const PortSrc a1 = dropFirst(bc, g, c1, span, len, lvl + ".a1");
    const PortSrc a2 = dropFirst(bc, g, c2, span, len, lvl + ".a2");
    const PortSrc b1 = dropLast(bc, g, c1, span, len, lvl + ".b1");
    const PortSrc b2 = dropLast(bc, g, c2, span, len, lvl + ".b2");
    c1 = mkMul(g, a1, b1, lvl + ".c1");
    c2 = mkAdd(g, mkMul(g, a1, b2, lvl + ".t"), a2, lvl + ".c2");
    lo += span;
  }
  VALPIPE_CHECK(lo == s.p + k - 1);
  const std::int64_t loopCount = s.q - lo + 1;  // = n + 1 - k
  VALPIPE_CHECK(loopCount >= 1);

  // Initial-value sequencer: a merge chain emitting x_{p-1} .. x_{p+k-2}.
  PortSrc fSeq = firstX[0];
  for (std::int64_t j = 1; j < k; ++j) {
    std::vector<bool> bits(static_cast<std::size_t>(j) + 1, true);
    if (j == 1) {
      // first merge: F (init) then T (x_p)
      bits = {false, true};
      fSeq = Graph::out(g.merge(bc.boolSeq(bits, "seq-ctl"), firstX[1], fSeq,
                                "init-seq"));
      continue;
    }
    bits.back() = false;
    fSeq = Graph::out(g.merge(bc.boolSeq(bits, "seq-ctl"), fSeq, firstX[j],
                              "init-seq"));
  }
  if (k >= 2 && fSeq.isLiteral()) {
    // All initial values folded to the same literal chain — merge chains
    // above only stay literal when k == 1, which is excluded; keep guard for
    // completeness.
    fSeq = bc.literalStream(fSeq.literal, k);
  }

  // The loop: x_i = C1_i * x_{i-k} + C2_i around a 2k-stage cycle holding k
  // packets in flight.
  const NodeId proxy = g.identity(Graph::lit(Value(0)), "fb-proxy");
  const PortSrc mulOut = mkMul(g, c1, Graph::out(proxy), "loop*");
  const PortSrc addOut = mkAdd(g, mulOut, c2, "loop+");
  VALPIPE_CHECK(addOut.isArc());

  std::vector<bool> ctlBits(static_cast<std::size_t>(s.n) + 1, true);
  for (std::int64_t j = 0; j < k; ++j) ctlBits[static_cast<std::size_t>(j)] = false;
  const NodeId mergeId =
      g.merge(bc.boolSeq(ctlBits, "loop-ctl"), addOut, fSeq, "loop:" + b.name);

  std::vector<bool> outBits(static_cast<std::size_t>(s.n) + 1, true);
  for (std::int64_t j = 0; j < k; ++j)
    outBits[static_cast<std::size_t>(s.n - j)] = false;
  g.node(mergeId).gate = bc.boolSeq(outBits, "loop-out");

  const std::int64_t bodyLen = longestPathCells(g, proxy, addOut.producer);
  VALPIPE_CHECK(bodyLen >= 0);
  std::int64_t stages = bodyLen + 1;  // + the merge cell
  PortSrc fb = Graph::outT(mergeId);
  fb.feedback = true;
  if (2 * k > stages) {
    // The inserted identity/FIFO keeps the loop at an even 2k stages
    // ("necessary for maximum pipelining", §7).
    fb = g.fifo(fb, static_cast<int>(2 * k - stages), "loop-pad");
    stages = 2 * k;
  }
  g.replaceUses(proxy, fb);

  report.name = b.name;
  std::ostringstream scheme;
  scheme << "for-iter/companion(k=" << k << ")";
  report.scheme = scheme.str();
  report.cycleStages = stages;
  report.cycleTokens = k;
  report.predictedRate =
      std::min(0.5, static_cast<double>(k) / static_cast<double>(stages));
  return Graph::out(mergeId);
}

}  // namespace valpipe::core
