// Compilation options selecting among the paper's mapping schemes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/value.hpp"

namespace valpipe::core {

/// §6: pipeline scheme (arrays as streams, Theorem 2) or the baseline
/// parallel scheme (one body copy per element, "of limited interest").
enum class ForallScheme { Pipeline, Parallel };

/// §7 mapping of for-iter blocks.
enum class ForIterScheme {
  /// Companion-function scheme (Fig. 8) when the recurrence is simple,
  /// falling back to Todd's scheme otherwise.
  Auto,
  /// Todd's scheme (Fig. 7): a p-stage feedback cycle, rate 1/p.
  Todd,
  /// Companion-pipeline scheme (Fig. 8, Theorem 3); requires a simple
  /// (linear) recurrence.  Fails with CompileError otherwise.
  Companion,
  /// §9 alternative: trade delay for rate by interleaving `interleave`
  /// independent recurrence instances through a long FIFO in the cycle.
  LongFifo,
};

/// How FIFO buffering is assigned during balancing (§8).
enum class BalanceMode {
  None,         ///< leave the graph unbalanced (for the C1 experiment)
  LongestPath,  ///< ASAP depths: simple polynomial balancing, §8 (1)
  Optimal,      ///< minimum total buffering via the min-cost-flow dual, §8 (3)
};

/// How inter-block arrays travel (§2): as result-packet streams between
/// processing elements (the paper's choice) or through the array memories
/// (the conventional layout the 1/8-traffic claim is measured against).
enum class ArrayRouting { Stream, Memory };

/// Which machine scheduler executes the lowered graph.  Every kind is
/// bit-identical in all MachineResult fields; they differ only in how the
/// statically known schedule of §3 is (re)discovered at runtime.
enum class SchedulerKind {
  EventDriven,          ///< time wheel + ready queue (the default)
  ParallelEventDriven,  ///< sharded event-driven across worker threads
  Synchronous,          ///< full cell rescan per instruction time
  Reference,            ///< naive reference stepper (oracle)
  /// Steady-state backend over the sched::SteadySchedule IR: event-driven
  /// fill/drain with the periodic middle fast-forwarded in bulk.  Falls back
  /// to EventDriven (see CompiledFallback) when the schedule IR declines the
  /// graph — gates, merges, feedback cycles, unbalanced reconvergence.
  Compiled,
};

/// What SchedulerKind::Compiled does when sched::computeSteadySchedule
/// declines the graph (or the run shape forces per-token execution).
enum class CompiledFallback {
  EventDriven,  ///< run EventDriven, record the reason in result.compiled
  Error,        ///< throw sched::ScheduleDeclined
};

struct CompileOptions {
  ForallScheme forallScheme = ForallScheme::Pipeline;
  ForIterScheme forIterScheme = ForIterScheme::Auto;
  /// Dependence distance k for the companion scheme (power of two >= 2).
  int companionSkip = 2;
  /// Batch factor B for the LongFifo scheme (independent interleaved
  /// instances; the cycle gets a FIFO making it 2B stages long).
  int interleave = 4;
  BalanceMode balanceMode = BalanceMode::Optimal;
  ArrayRouting routing = ArrayRouting::Stream;
  /// Load-time values for scalar parameters (bound as literal operands).
  std::map<std::string, Value> scalarBindings;
  /// Drop cells that cannot reach an output.
  bool prune = true;
  /// Lower BoolSeq/IndexSeq generators to machine-level counter loops
  /// (Todd's construction).  The resulting counters are free-running, so run
  /// such programs on the machine engine with expected output counts.
  bool lowerControl = false;
  /// Lower composite FIFOs before returning (kept optional so graphs stay
  /// readable in DOT form).  Which lowering depends on `fuseFifos`.
  bool lower = false;
  /// With `lower`: fuse buffering chains into composite ring-buffer FIFO
  /// cells (opt::fuseFifos) instead of expanding them into identity chains
  /// (dfg::expandFifos).  Same outputs and output times; O(1) cells and
  /// packets per chain instead of O(depth).  Turn off to make per-cell
  /// statistics refer to real instruction cells.
  bool fuseFifos = true;
};

}  // namespace valpipe::core
