// Per-block mapping schemes (Theorems 2 and 3, plus the baselines).
// Internal to the compiler; the public entry is core/compiler.hpp.
#pragma once

#include <map>
#include <string>

#include "core/block_compiler.hpp"
#include "core/compiler.hpp"
#include "dfg/graph.hpp"
#include "val/ast.hpp"

namespace valpipe::core {

/// §6 pipeline scheme (Theorem 2): cascade the definition and accumulation
/// graphs; selection gates feed the needed elements of each input stream.
dfg::PortSrc compileForallPipeline(dfg::Graph& g, const val::Module& m,
                                   const CompileOptions& opts,
                                   const std::map<std::string, ArraySource>& arrays,
                                   const val::Block& b, BlockReport& report);

/// §6 parallel scheme (baseline): one constant-folded body copy per element,
/// reassembled in index order by a merge chain.
dfg::PortSrc compileForallParallel(dfg::Graph& g, const val::Module& m,
                                   const CompileOptions& opts,
                                   const std::map<std::string, ArraySource>& arrays,
                                   const val::Block& b, BlockReport& report);

/// Todd's for-iter scheme (Fig. 7): single merge cell closing a feedback
/// cycle of S stages; rate 1/S.
dfg::PortSrc compileForIterTodd(dfg::Graph& g, const val::Module& m,
                                const CompileOptions& opts,
                                const std::map<std::string, ArraySource>& arrays,
                                const val::Block& b, BlockReport& report);

/// Companion-pipeline scheme (Fig. 8, Theorem 3) with dependence distance
/// `k` (power of two >= 2): an acyclic log2(k)-level tree of companion
/// function applications feeds a 2k-stage cycle carrying k packets.
dfg::PortSrc compileForIterCompanion(dfg::Graph& g, const val::Module& m,
                                     const CompileOptions& opts,
                                     const std::map<std::string, ArraySource>& arrays,
                                     const val::Block& b, int k,
                                     BlockReport& report);

/// §9 long-FIFO scheme: `batch` independent recurrence instances interleaved
/// element-wise; the cycle is padded with a FIFO to 2*batch stages.  Streams
/// in and out of the block are element-interleaved.
dfg::PortSrc compileForIterLongFifo(dfg::Graph& g, const val::Module& m,
                                    const CompileOptions& opts,
                                    const std::map<std::string, ArraySource>& arrays,
                                    const val::Block& b, int batch,
                                    BlockReport& report);

}  // namespace valpipe::core
