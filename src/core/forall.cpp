#include "core/schemes.hpp"

#include "support/check.hpp"
#include "support/diagnostics.hpp"
#include "val/constfold.hpp"

namespace valpipe::core {

using dfg::Graph;
using dfg::PortSrc;
using val::Block;
using val::ForallBlock;

dfg::PortSrc compileForallPipeline(Graph& g, const val::Module& m,
                                   const CompileOptions& opts,
                                   const std::map<std::string, ArraySource>& arrays,
                                   const Block& b, BlockReport& report) {
  const ForallBlock& fb = b.forall();
  VALPIPE_CHECK(b.type.range.has_value());
  report.name = b.name;
  report.predictedRate = 0.5;
  if (fb.is2d()) {
    VALPIPE_CHECK(b.type.range2.has_value());
    BlockCompiler bc(g, m, opts, arrays, fb.indexVar, *b.type.range,
                     fb.indexVar2, *b.type.range2);
    report.scheme = "forall2d/pipeline";
    return bc.compileBody(fb.defs, fb.accum, bc.root());
  }
  BlockCompiler bc(g, m, opts, arrays, fb.indexVar, *b.type.range);
  report.scheme = "forall/pipeline";
  return bc.compileBody(fb.defs, fb.accum, bc.root());
}

dfg::PortSrc compileForallParallel(Graph& g, const val::Module& m,
                                   const CompileOptions& opts,
                                   const std::map<std::string, ArraySource>& arrays,
                                   const Block& b, BlockReport& report) {
  const ForallBlock& fb = b.forall();
  if (fb.is2d())
    throw CompileError(
        "the parallel scheme is implemented for one-dimensional forall "
        "blocks only (use the pipeline scheme for 2-D arrays)");
  VALPIPE_CHECK(b.type.range.has_value());
  const val::Range range = *b.type.range;
  report.name = b.name;
  report.scheme = "forall/parallel";
  report.predictedRate = 0.5;

  // One body copy per element: the index variable becomes a manifest
  // constant, so conditions fold away and each array access taps a single
  // element of the input stream.
  std::vector<PortSrc> elems;
  elems.reserve(static_cast<std::size_t>(range.length()));
  for (std::int64_t i = range.lo; i <= range.hi; ++i) {
    BlockCompiler bc(g, m, opts, arrays, fb.indexVar, val::Range{i, i});
    elems.push_back(bc.compileBody(fb.defs, fb.accum, bc.root()));
  }

  // Reassemble in index order with a merge chain: merge #k forwards the
  // first k+1 elements then admits element k+1.
  BlockCompiler seq(g, m, opts, arrays, fb.indexVar, range);
  if (elems.size() == 1) {
    if (elems[0].isLiteral()) return seq.literalStream(elems[0].literal, 1);
    return elems[0];
  }
  PortSrc acc = elems[0];
  for (std::size_t k = 1; k < elems.size(); ++k) {
    std::vector<bool> ctlBits(k + 1, true);
    ctlBits.back() = false;
    const PortSrc ctl = seq.boolSeq(ctlBits, "gather");
    acc = Graph::out(g.merge(ctl, acc, elems[k], "gather"));
  }
  return acc;
}

}  // namespace valpipe::core
