#include "core/block_compiler.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/diagnostics.hpp"
#include "val/classify.hpp"
#include "val/constfold.hpp"

namespace valpipe::core {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;
using dfg::OutTag;
using dfg::PortSrc;
using val::Expr;
using val::ExprPtr;

namespace {

std::string accessKey(const std::string& array, std::int64_t offset) {
  return array + "@" + std::to_string(offset);
}

std::string accessKey2(const std::string& array, std::int64_t c1,
                       std::int64_t c2) {
  return array + "@" + std::to_string(c1) + "," + std::to_string(c2);
}

/// Does any environment on the chain bind `key` locally?  (Then the direct-
/// gate shortcut must not bypass it — e.g. the for-iter feedback stream.)
bool chainBinds(const BlockCompiler::Env* env, const std::string& key) {
  for (; env != nullptr; env = env->parent)
    if (env->names.count(key)) return true;
  return false;
}

constexpr const char* kIndexKey = "@i";
constexpr const char* kIndexKey2 = "@j";

dfg::Op binOpFor(val::BinOp op) {
  switch (op) {
    case val::BinOp::Add: return Op::Add;
    case val::BinOp::Sub: return Op::Sub;
    case val::BinOp::Mul: return Op::Mul;
    case val::BinOp::Div: return Op::Div;
    case val::BinOp::Lt: return Op::Lt;
    case val::BinOp::Le: return Op::Le;
    case val::BinOp::Gt: return Op::Gt;
    case val::BinOp::Ge: return Op::Ge;
    case val::BinOp::Eq: return Op::Eq;
    case val::BinOp::Ne: return Op::Ne;
    case val::BinOp::And: return Op::And;
    case val::BinOp::Or: return Op::Or;
  }
  VALPIPE_UNREACHABLE("binop");
}

std::optional<Value> foldBinary(val::BinOp op, const Value& a, const Value& b) {
  try {
    switch (op) {
      case val::BinOp::Add: return ops::add(a, b);
      case val::BinOp::Sub: return ops::sub(a, b);
      case val::BinOp::Mul: return ops::mul(a, b);
      case val::BinOp::Div: return ops::div(a, b);
      case val::BinOp::Lt: return ops::lt(a, b);
      case val::BinOp::Le: return ops::le(a, b);
      case val::BinOp::Gt: return ops::gt(a, b);
      case val::BinOp::Ge: return ops::ge(a, b);
      case val::BinOp::Eq: return ops::eq(a, b);
      case val::BinOp::Ne: return ops::ne(a, b);
      case val::BinOp::And: return ops::logicalAnd(a, b);
      case val::BinOp::Or: return ops::logicalOr(a, b);
    }
  } catch (const ValueError&) {
    // fall through: build a cell, fault at run time
  }
  return std::nullopt;
}

}  // namespace

BlockCompiler::BlockCompiler(Graph& g, const val::Module& m,
                             const CompileOptions& opts,
                             const std::map<std::string, ArraySource>& arrays,
                             std::string idxVar, val::Range sweep,
                             std::int64_t repl)
    : g_(g), m_(m), opts_(opts), arrays_(arrays), idxVar_(std::move(idxVar)),
      sweep_(sweep), repl_(repl) {
  VALPIPE_CHECK(sweep_.lo <= sweep_.hi);
  VALPIPE_CHECK(repl_ >= 1);
  envs_.emplace_back();
  root_ = &envs_.back();
  root_->sel.assign(static_cast<std::size_t>(flatLength()), true);
}

BlockCompiler::BlockCompiler(Graph& g, const val::Module& m,
                             const CompileOptions& opts,
                             const std::map<std::string, ArraySource>& arrays,
                             std::string idxVar, val::Range sweep,
                             std::string idxVar2, val::Range sweep2)
    : g_(g), m_(m), opts_(opts), arrays_(arrays), idxVar_(std::move(idxVar)),
      sweep_(sweep), idxVar2_(std::move(idxVar2)), sweep2_(sweep2), repl_(1) {
  VALPIPE_CHECK(sweep_.lo <= sweep_.hi);
  VALPIPE_CHECK(sweep2_.lo <= sweep2_.hi);
  VALPIPE_CHECK(!idxVar2_.empty());
  envs_.emplace_back();
  root_ = &envs_.back();
  root_->sel.assign(static_cast<std::size_t>(flatLength()), true);
}

bool BlockCompiler::fullyStatic(const Env& env) const {
  for (const Env* e = &env; e != nullptr; e = e->parent)
    if (!e->staticSel) return false;
  return true;
}

void BlockCompiler::bindName(Env& env, const std::string& name,
                             dfg::PortSrc stream) {
  env.names[name] = stream;
}

void BlockCompiler::bindAccess(Env& env, const std::string& array,
                               std::int64_t offset, dfg::PortSrc stream) {
  env.names[accessKey(array, offset)] = stream;
}

PortSrc BlockCompiler::boolSeq(const std::vector<bool>& bits,
                               const std::string& label) {
  dfg::BoolPattern pattern;
  pattern.bits.reserve(bits.size() * static_cast<std::size_t>(repl_));
  for (bool b : bits)
    for (std::int64_t r = 0; r < repl_; ++r) pattern.bits.push_back(b);
  std::string key(pattern.bits.size(), '0');
  for (std::size_t i = 0; i < pattern.bits.size(); ++i)
    key[i] = pattern.bits[i] ? '1' : '0';
  auto it = boolSeqCache_.find(key);
  if (it != boolSeqCache_.end()) return Graph::out(it->second);
  const NodeId id = g_.boolSeq(std::move(pattern), label);
  boolSeqCache_[key] = id;
  return Graph::out(id);
}

PortSrc BlockCompiler::literalStream(const Value& v, std::int64_t count) {
  // A merge metered by an all-true control sequence: fires once per control
  // packet and forwards the literal operand each time.
  const PortSrc ctl = boolSeq(std::vector<bool>(static_cast<std::size_t>(count),
                                                true),
                              "const-meter");
  return Graph::out(g_.merge(ctl, Graph::lit(v), Graph::lit(v), "const"));
}

/// Root-level creation of leaf streams: "A@c" / "A@c1,c2" selection gates
/// and the index streams, for a statically known selection `sel` over the
/// (flattened) sweep.
PortSrc BlockCompiler::makeRootKey(const std::string& key,
                                   const std::vector<bool>& sel) {
  auto gateBySel = [&](NodeId seq, const char* what) {
    bool all = true;
    for (bool b : sel) all = all && b;
    if (all) return Graph::out(seq);
    const PortSrc ctl = boolSeq(sel, std::string("sel-") + what);
    return Graph::outT(
        g_.gatedIdentity(Graph::out(seq), ctl, std::string("gate-") + what));
  };
  if (key == kIndexKey) {
    // Row index: each value held for `width` packets (1 for 1-D blocks).
    const NodeId seq = g_.indexSeq(sweep_.lo, sweep_.hi, width() * repl_, "i");
    return gateBySel(seq, "i");
  }
  if (key == kIndexKey2) {
    VALPIPE_CHECK(is2d());
    // Column index: cycles once per row.
    const NodeId seq =
        g_.indexSeq(sweep2_.lo, sweep2_.hi, 1, "j", sweep_.length());
    return gateBySel(seq, "j");
  }

  // "A@c" / "A@c1,c2": selection gate from the array's stream.
  const auto at = key.rfind('@');
  VALPIPE_CHECK(at != std::string::npos);
  const std::string array = key.substr(0, at);
  const std::string offs = key.substr(at + 1);
  const auto comma = offs.find(',');
  const std::int64_t c1 = std::stoll(offs.substr(0, comma));
  const bool access2d = comma != std::string::npos;
  const std::int64_t c2 = access2d ? std::stoll(offs.substr(comma + 1)) : 0;

  auto it = arrays_.find(array);
  if (it == arrays_.end())
    throw CompileError("unknown array '" + array + "' in block body");
  const ArraySource& src = it->second;
  VALPIPE_CHECK_MSG(access2d == src.range2.has_value(),
                    "access dimensionality mismatch (typecheck bug)");
  if (is2d() && !access2d) return makeRowBroadcast(array, c1, src, sel);
  const val::Range& full = src.range;
  const std::int64_t fullW = src.width();
  const std::int64_t fullLo2 = src.range2 ? src.range2->lo : 0;

  // For every packet position of the producer's stream, decide whether some
  // selected sweep position consumes it, and record the (first) consumer
  // packet position for the phase shift.
  const std::int64_t prodLen = src.streamLength();
  std::vector<bool> keep(static_cast<std::size_t>(prodLen), false);
  bool all = true;
  std::optional<std::int64_t> shift;
  for (std::int64_t p = 0; p < prodLen; ++p) {
    const std::int64_t row = full.lo + p / fullW;    // array element (row, col)
    const std::int64_t col = fullLo2 + p % fullW;
    const std::int64_t i = row - c1;                 // consuming sweep indices
    const std::int64_t j = access2d ? col - c2 : sweep2_.lo;
    bool wanted = sweep_.contains(i);
    if (is2d()) wanted = wanted && sweep2_.contains(j);
    std::int64_t cpos = 0;
    if (wanted) {
      cpos = (i - sweep_.lo) * width() + (is2d() ? j - sweep2_.lo : 0);
      wanted = sel[static_cast<std::size_t>(cpos)];
    }
    keep[static_cast<std::size_t>(p)] = wanted;
    all = all && wanted;
    if (wanted && !shift) shift = p - cpos;
  }
  if (!shift) shift = 0;  // nothing selected: gate discards everything

  if (all && *shift == 0) return src.stream;  // used as-is, aligned
  std::ostringstream label;
  label << array << "[" << idxVar_;
  if (c1 > 0) label << "+" << c1;
  if (c1 < 0) label << c1;
  if (access2d) {
    label << "," << idxVar2_;
    if (c2 > 0) label << "+" << c2;
    if (c2 < 0) label << c2;
  }
  label << "]";
  if (all) {
    // No discarding needed, but the stream is consumed at shifted packet
    // positions; an identity cell carries the phase shift for the balancer.
    const NodeId id = g_.identity(src.stream, label.str() + "-skew");
    g_.node(id).phaseShift = *shift;
    return Graph::out(id);
  }
  const PortSrc ctl = boolSeq(keep, "sel " + label.str());
  const NodeId gate = g_.gatedIdentity(src.stream, ctl, label.str());
  // Token timing (Fig. 4 skew): the gate fires the producer's p-th packet,
  // which is consumed at the block's cpos-th position; the difference is the
  // phase shift buffering must absorb.  (For 2-D streams of differing widths
  // the shift varies per row; the first active position is used and the
  // residual absorbed dynamically at a possible rate cost.)
  g_.node(gate).phaseShift = *shift;
  return Graph::outT(gate);
}

PortSrc BlockCompiler::makeRowBroadcast(const std::string& array,
                                        std::int64_t c1, const ArraySource& src,
                                        const std::vector<bool>& sel) {
  VALPIPE_CHECK(is2d());
  const val::Range& full = src.range;
  const std::int64_t W = width();

  // Per producer element j: which selected flat positions of row i = j - c1
  // consume it?  The row stream delivers one packet per row with >= 1
  // selected position; a hold loop then re-emits it once per selected
  // position (merge control F at each row's first position, T elsewhere).
  std::vector<bool> rowKeep(static_cast<std::size_t>(full.length()), false);
  std::vector<bool> ctlBits;   // over all selected positions, in order
  std::vector<bool> outBits;   // merge gate: F at each row's last position
  std::optional<std::int64_t> shift;
  for (std::int64_t r = 0; r < sweep_.length(); ++r) {
    std::int64_t first = -1, count = 0;
    for (std::int64_t q = 0; q < W; ++q) {
      const std::size_t pos = static_cast<std::size_t>(r * W + q);
      if (!sel[pos]) continue;
      if (first < 0) first = r * W + q;
      ++count;
    }
    if (count == 0) continue;
    const std::int64_t j = sweep_.lo + r + c1;  // producer element this row reads
    VALPIPE_CHECK_MSG(full.contains(j), "row access out of range");
    rowKeep[static_cast<std::size_t>(j - full.lo)] = true;
    if (!shift) shift = (j - full.lo) - first;
    for (std::int64_t k = 0; k < count; ++k) {
      ctlBits.push_back(k != 0);           // F takes the fresh row packet
      outBits.push_back(k + 1 != count);   // F drops after the row's last use
    }
  }
  bool allRows = true;
  for (bool b : rowKeep) allRows = allRows && b;

  std::ostringstream label;
  label << array << "[" << idxVar_;
  if (c1 > 0) label << "+" << c1;
  if (c1 < 0) label << c1;
  label << "]";

  PortSrc rowStream = src.stream;
  if (!allRows) {
    const PortSrc ctl = boolSeq(rowKeep, "sel " + label.str());
    const NodeId gate = g_.gatedIdentity(src.stream, ctl, label.str());
    g_.node(gate).phaseShift = shift.value_or(0);
    rowStream = Graph::outT(gate);
  } else if (shift.value_or(0) != 0) {
    const NodeId id = g_.identity(src.stream, label.str() + "-skew");
    g_.node(id).phaseShift = *shift;
    rowStream = Graph::out(id);
  }

  // Hold loop: MERGE(ctl, tIn = held value, fIn = fresh row packet) whose
  // gate feeds all but each row's last result back through one identity.
  const NodeId mergeId = g_.merge(boolSeq(ctlBits, "hold-ctl " + label.str()),
                                  Graph::lit(Value(0)),  // patched below
                                  rowStream, "hold " + label.str());
  g_.node(mergeId).gate = boolSeq(outBits, "hold-out " + label.str());
  PortSrc fb = Graph::outT(mergeId);
  fb.feedback = true;
  const NodeId hold = g_.identity(fb, "hold-id " + label.str());
  g_.node(mergeId).inputs[1] = Graph::out(hold);
  return Graph::out(mergeId);
}

PortSrc BlockCompiler::resolveKey(Env& env, const std::string& key) {
  auto cached = env.cache.find(key);
  if (cached != env.cache.end()) return cached->second;

  PortSrc result;
  if (auto own = env.names.find(key); own != env.names.end()) {
    result = own->second;
  } else if (env.parent == nullptr) {
    result = makeRootKey(key, env.sel);
  } else if (key.find('@') != std::string::npos && fullyStatic(env) &&
             !chainBinds(&env, key)) {
    // Fully static selection: make a direct selection gate from the producer
    // instead of chaining through every enclosing arm (Fig. 6's one-gate-per-
    // use construction).
    result = makeRootKey(key, env.sel);
  } else {
    PortSrc base = resolveKey(*env.parent, key);
    if (base.isLiteral() || !env.hasCtl) {
      result = base;  // literals are index-independent; lets do not gate
    } else {
      VALPIPE_CHECK(env.armGates != nullptr);
      auto gate = env.armGates->find(key);
      NodeId gateId;
      if (gate == env.armGates->end()) {
        gateId = g_.gatedIdentity(base, env.armCtl, "route " + key);
        (*env.armGates)[key] = gateId;
      } else {
        gateId = gate->second;
      }
      result = env.armTag == OutTag::T ? Graph::outT(gateId)
                                       : Graph::outF(gateId);
    }
  }
  env.cache[key] = result;
  return result;
}

PortSrc BlockCompiler::compileIf(const ExprPtr& e, Env& env) {
  // Index-only condition in a fully static context folds into a control
  // sequence (Fig. 6); otherwise the condition is compiled as a stream
  // (Fig. 5).
  if (fullyStatic(env)) {
    auto vals = is2d() ? val::evalOverIndex2(e->a, idxVar_, sweep_, idxVar2_,
                                             sweep2_, m_.consts)
                       : val::evalOverIndex(e->a, idxVar_, sweep_, m_.consts);
    if (vals) {
      // Bits restricted to the currently selected indices, in stream order.
      std::vector<bool> condBits(vals->size());
      bool allT = true, allF = true;
      std::vector<bool> subBits;
      for (std::size_t k = 0; k < vals->size(); ++k) {
        condBits[k] = (*vals)[k].isBoolean() && (*vals)[k].asBoolean();
        if (env.sel[k]) {
          subBits.push_back(condBits[k]);
          (condBits[k] ? allF : allT) = false;
        }
      }
      if (subBits.empty() || allT) return compile(e->b, env);
      if (allF) return compile(e->c, env);

      const PortSrc ctl = boolSeq(subBits, "cond");
      envs_.emplace_back();
      Env& thenEnv = envs_.back();
      envs_.emplace_back();
      Env& elseEnv = envs_.back();
      auto gates = std::make_shared<std::map<std::string, NodeId>>();
      for (Env* arm : {&thenEnv, &elseEnv}) {
        arm->parent = &env;
        arm->staticSel = true;
        arm->sel = env.sel;
        arm->hasCtl = true;
        arm->armCtl = ctl;
        arm->armGates = gates;
      }
      thenEnv.armTag = OutTag::T;
      elseEnv.armTag = OutTag::F;
      for (std::size_t k = 0; k < condBits.size(); ++k) {
        thenEnv.sel[k] = thenEnv.sel[k] && condBits[k];
        elseEnv.sel[k] = elseEnv.sel[k] && !condBits[k];
      }
      const PortSrc tRes = compile(e->b, thenEnv);
      const PortSrc fRes = compile(e->c, elseEnv);
      return Graph::out(g_.merge(ctl, tRes, fRes, "if"));
    }
  }

  // Dynamic condition.
  const PortSrc ctl = compile(e->a, env);
  if (ctl.isLiteral())
    return compile(ctl.literal.asBoolean() ? e->b : e->c, env);

  envs_.emplace_back();
  Env& thenEnv = envs_.back();
  envs_.emplace_back();
  Env& elseEnv = envs_.back();
  auto gates = std::make_shared<std::map<std::string, NodeId>>();
  for (Env* arm : {&thenEnv, &elseEnv}) {
    arm->parent = &env;
    arm->staticSel = false;
    arm->hasCtl = true;
    arm->armCtl = ctl;
    arm->armGates = gates;
  }
  thenEnv.armTag = OutTag::T;
  elseEnv.armTag = OutTag::F;
  const PortSrc tRes = compile(e->b, thenEnv);
  const PortSrc fRes = compile(e->c, elseEnv);
  return Graph::out(g_.merge(ctl, tRes, fRes, "if"));
}

PortSrc BlockCompiler::compile(const ExprPtr& e, Env& env) {
  switch (e->kind) {
    case Expr::Kind::IntLit: return Graph::lit(Value(e->intValue));
    case Expr::Kind::RealLit: return Graph::lit(Value(e->realValue));
    case Expr::Kind::BoolLit: return Graph::lit(Value(e->boolValue));

    case Expr::Kind::Ident: {
      if (chainBinds(&env, e->name)) return resolveKey(env, e->name);
      if (e->name == idxVar_) return resolveKey(env, kIndexKey);
      if (is2d() && e->name == idxVar2_) return resolveKey(env, kIndexKey2);
      if (auto c = m_.consts.find(e->name); c != m_.consts.end())
        return Graph::lit(Value(c->second));
      if (auto s = opts_.scalarBindings.find(e->name);
          s != opts_.scalarBindings.end())
        return Graph::lit(s->second);
      throw CompileError("unbound scalar '" + e->name + "' at " +
                         e->loc.str() +
                         " (scalar parameters need a load-time binding)");
    }

    case Expr::Kind::ArrayIndex: {
      auto offset = val::arrayIndexOffset(e->a, idxVar_, m_.consts);
      if (!offset)
        throw CompileError("array index at " + e->loc.str() +
                           " is not of the form " + idxVar_ + " + c");
      if (e->isIndex2()) {
        auto offset2 = val::arrayIndexOffset(e->b, idxVar2_, m_.consts);
        if (!is2d() || !offset2)
          throw CompileError("2-D selection at " + e->loc.str() +
                             " is not of the form [" + idxVar_ + " + c1, " +
                             idxVar2_ + " + c2]");
        return resolveKey(env, accessKey2(e->name, *offset, *offset2));
      }
      return resolveKey(env, accessKey(e->name, *offset));
    }

    case Expr::Kind::Unary: {
      const PortSrc a = compile(e->a, env);
      if (a.isLiteral()) {
        try {
          return Graph::lit(e->uop == val::UnOp::Neg
                                ? ops::neg(a.literal)
                                : ops::logicalNot(a.literal));
        } catch (const ValueError&) {
          // build a cell and fault at run time
        }
      }
      return Graph::out(
          g_.unary(e->uop == val::UnOp::Neg ? Op::Neg : Op::Not, a));
    }

    case Expr::Kind::Binary: {
      const PortSrc a = compile(e->a, env);
      const PortSrc b = compile(e->b, env);
      if (a.isLiteral() && b.isLiteral())
        if (auto v = foldBinary(e->bop, a.literal, b.literal))
          return Graph::lit(*v);
      return Graph::out(g_.binary(binOpFor(e->bop), a, b));
    }

    case Expr::Kind::If:
      return compileIf(e, env);

    case Expr::Kind::Let: {
      // A plain scope: same selection, no gating.
      envs_.emplace_back();
      Env& scope = envs_.back();
      scope.parent = &env;
      scope.staticSel = env.staticSel;
      scope.sel = env.sel;
      scope.hasCtl = false;
      for (const val::Def& d : e->defs)
        bindName(scope, d.name, compile(d.value, scope));
      return compile(e->body, scope);
    }
  }
  VALPIPE_UNREACHABLE("expr kind");
}

PortSrc BlockCompiler::compileBody(const std::vector<val::Def>& defs,
                                   const ExprPtr& result, Env& env) {
  for (const val::Def& d : defs) bindName(env, d.name, compile(d.value, env));
  return compile(result, env);
}

}  // namespace valpipe::core
