// Named phases of the compile pipeline.
//
// core::compile() used to be one monolithic function; the pipeline is now a
// composition of explicitly named phases so tools (valc --profile,
// --explain-schedule) and tests can observe or stop after any of them:
//
//   frontend   — parse + typecheck Val source into a val::Module
//                (core/compiler.hpp; unchanged);
//   buildGraph — classify the module's blocks (forall / for-iter) and apply
//                the selected mapping schemes (§6/§7, Theorems 2–3), splicing
//                the blocks' subgraphs along the acyclic flow dependency
//                graph (Theorem 4);
//   normalize  — prune unreachable cells and, on request, expand the
//                BoolSeq/IndexSeq control generators into machine-level
//                counter loops (Todd's construction);
//   balance    — assign FIFO buffering so every reconvergent path pair has
//                equal depth (§8), then validate the graph;
//   lower      — resolve Op::Fifo sugar for the machine layer: fuse
//                buffering chains into composite ring-buffer cells
//                (opt::fuseFifos, recording opt::FusionStats in
//                CompiledProgram::fusion) or expand them into identity
//                chains (dfg::expandFifos).
//
// Downstream of these, the run layer flattens the graph into an
// exec::ExecutableGraph, and the static-schedule IR (sched/schedule.hpp)
// is computed from that flat form at run or inspect time — the core layer
// deliberately does not depend on src/sched.
//
// compile() remains the one-call entry point and is exactly the composition
// below; calling the phases individually must produce the same program.
#pragma once

#include "core/compiler.hpp"
#include "core/options.hpp"
#include "val/ast.hpp"

namespace valpipe::core::phases {

/// Classify + map + splice (Theorem 4).  The returned program's graph still
/// carries control generators and unlowered FIFO sugar.
CompiledProgram buildGraph(const val::Module& m, const CompileOptions& opts);

/// Prune dead cells; expand control generators when opts.lowerControl.
void normalize(CompiledProgram& p, const CompileOptions& opts);

/// Balance reconvergent paths (§8, per opts.balanceMode) and validate.
void balance(CompiledProgram& p, const CompileOptions& opts);

/// Resolve FIFO sugar per opts.lower/opts.fuseFifos; records fusion
/// statistics in p.fusion when the fusing path runs.
void lower(CompiledProgram& p, const CompileOptions& opts);

}  // namespace valpipe::core::phases
