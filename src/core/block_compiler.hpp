// Theorem 1 machinery: compile primitive expressions into fully pipelinable
// instruction subgraphs.
//
// Streams and environments.  Inside one block every compiled stream carries
// one packet per *selected* index value of the block's sweep [p, q].  The
// root environment selects every index; an if-then-else creates two child
// environments whose streams carry only the indices routed to that arm
// (Fig. 5's tagged-destination identity cells).  Conditions that depend only
// on the index variable are folded into boolean control sequences at compile
// time (Fig. 6 / Todd [15]); data-dependent conditions are compiled into
// ordinary boolean streams.  Array element accesses A[i+c] become selection
// gates reading the producer's full stream and discarding unused elements
// (Fig. 4); within statically selected contexts the gate pattern selects the
// exact window directly from the producer.
//
// Literals stay literal operand fields (never streams), so constant arms and
// coefficients cost no cells — matching the instruction format of §2.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "core/options.hpp"
#include "dfg/graph.hpp"
#include "val/ast.hpp"

namespace valpipe::core {

/// A named array stream available to a block: the producer endpoint plus its
/// manifest range(s).  2-D arrays stream row-major.
struct ArraySource {
  dfg::PortSrc stream;
  val::Range range;
  std::optional<val::Range> range2;

  std::int64_t width() const { return range2 ? range2->length() : 1; }
  std::int64_t streamLength() const { return range.length() * width(); }
};

class BlockCompiler {
 public:
  /// `repl` is the element-interleave factor (§9 LongFifo batches); every
  /// control pattern and selection window is replicated accordingly.
  BlockCompiler(dfg::Graph& g, const val::Module& m, const CompileOptions& opts,
                const std::map<std::string, ArraySource>& arrays,
                std::string idxVar, val::Range sweep, std::int64_t repl = 1);

  /// Two-dimensional block (§9 extension): row index `idxVar` over `sweep`,
  /// column index `idxVar2` over `sweep2`, elements row-major.
  BlockCompiler(dfg::Graph& g, const val::Module& m, const CompileOptions& opts,
                const std::map<std::string, ArraySource>& arrays,
                std::string idxVar, val::Range sweep, std::string idxVar2,
                val::Range sweep2);

  struct Env;

  /// The root environment (full sweep selected).
  Env& root() { return *root_; }

  /// Binds a name to a stream in `env` (let definitions, loop feedback).
  void bindName(Env& env, const std::string& name, dfg::PortSrc stream);

  /// Binds the array access `array[idxVar + offset]` to a stream (used for
  /// the for-iter loop array T[i-1]).
  void bindAccess(Env& env, const std::string& array, std::int64_t offset,
                  dfg::PortSrc stream);

  /// Compiles a primitive expression to a stream (or literal) over `env`'s
  /// selected indices.
  dfg::PortSrc compile(const val::ExprPtr& e, Env& env);

  /// Compiles `defs` into `env`, then `result` (the §5 rule-5 shape).
  dfg::PortSrc compileBody(const std::vector<val::Def>& defs,
                           const val::ExprPtr& result, Env& env);

  /// A BoolSeq source for one wave of `bits` (deduplicated across the block;
  /// bits are given per index and replicated `repl` times each).
  dfg::PortSrc boolSeq(const std::vector<bool>& bits, const std::string& label);

  /// Materializes a literal as a stream of `count` tokens per wave (a merge
  /// whose control sequence meters the length).
  dfg::PortSrc literalStream(const Value& v, std::int64_t count);

  dfg::Graph& graph() { return g_; }
  std::int64_t repl() const { return repl_; }
  const val::Range& sweep() const { return sweep_; }

 private:
  dfg::PortSrc resolveKey(Env& env, const std::string& key);
  dfg::PortSrc makeRootKey(const std::string& key, const std::vector<bool>& sel);
  /// A[i + c] inside a 2-D block: replicate each row packet of the 1-D
  /// stream across the row's selected positions with a hold loop.
  dfg::PortSrc makeRowBroadcast(const std::string& array, std::int64_t c1,
                                const ArraySource& src,
                                const std::vector<bool>& sel);
  dfg::PortSrc compileIf(const val::ExprPtr& e, Env& env);
  bool fullyStatic(const Env& env) const;

  dfg::Graph& g_;
  const val::Module& m_;
  const CompileOptions& opts_;
  const std::map<std::string, ArraySource>& arrays_;
  std::string idxVar_;
  val::Range sweep_;
  std::string idxVar2_;            ///< empty for 1-D blocks
  val::Range sweep2_{0, 0};
  std::int64_t repl_;

  bool is2d() const { return !idxVar2_.empty(); }
  std::int64_t width() const { return is2d() ? sweep2_.length() : 1; }
  std::int64_t flatLength() const { return sweep_.length() * width(); }

  std::deque<Env> envs_;  ///< stable storage for environment chain
  Env* root_;
  std::map<std::string, dfg::NodeId> boolSeqCache_;
};

/// One lexical/selection context.  See header comment.
struct BlockCompiler::Env {
  Env* parent = nullptr;
  /// Locally bound streams: let definitions, special access bindings
  /// (key "A@c"), the index stream (key "@i").
  std::map<std::string, dfg::PortSrc> names;
  /// Static selection over the sweep; meaningful when staticSel.
  bool staticSel = true;
  std::vector<bool> sel;
  /// Arm gating: streams crossing from the parent pass through a shared
  /// tagged identity controlled by `armCtl`.
  bool hasCtl = false;
  dfg::PortSrc armCtl{};
  dfg::OutTag armTag = dfg::OutTag::T;
  std::shared_ptr<std::map<std::string, dfg::NodeId>> armGates;
  /// Resolution cache for this context.
  std::map<std::string, dfg::PortSrc> cache;
};

}  // namespace valpipe::core
