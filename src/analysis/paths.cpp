#include "analysis/paths.hpp"

#include <queue>
#include <sstream>

#include "support/check.hpp"

namespace valpipe::analysis {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;

std::vector<Arc> arcs(const Graph& g) {
  std::vector<Arc> out;
  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    const std::int64_t len = n.op == Op::Fifo ? n.fifoDepth : 1;
    auto push = [&](const PortSrc& src, int port) {
      if (!src.isArc()) return;
      const std::int64_t shift = g.node(src.producer).phaseShift;
      out.push_back(
          {src.producer, id, port, len, len + 2 * shift, src.rigid, src.feedback});
    };
    for (int p = 0; p < static_cast<int>(n.inputs.size()); ++p)
      push(n.inputs[p], p);
    if (n.gate) push(*n.gate, dfg::kGatePort);
  }
  return out;
}

std::optional<std::vector<NodeId>> topoOrder(const Graph& g) {
  const std::size_t n = g.size();
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<std::uint32_t>> succ(n);
  for (const Arc& a : arcs(g)) {
    if (a.feedback) continue;
    ++indeg[a.to.index];
    succ[a.from.index].push_back(a.to.index);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::queue<std::uint32_t> ready;
  for (std::uint32_t v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push(v);
  while (!ready.empty()) {
    const std::uint32_t v = ready.front();
    ready.pop();
    order.push_back(NodeId{v});
    for (std::uint32_t w : succ[v])
      if (--indeg[w] == 0) ready.push(w);
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

std::vector<std::int64_t> longestDepths(const Graph& g) {
  auto order = topoOrder(g);
  VALPIPE_CHECK_MSG(order.has_value(), "longestDepths requires acyclic graph");
  std::vector<std::int64_t> depth(g.size(), 0);
  // Group incoming arcs by consumer for a single pass in topo order.
  std::vector<std::vector<Arc>> in(g.size());
  for (const Arc& a : arcs(g))
    if (!a.feedback) in[a.to.index].push_back(a);
  for (NodeId id : *order)
    for (const Arc& a : in[id.index])
      depth[id.index] =
          std::max(depth[id.index], depth[a.from.index] + a.length);
  return depth;
}

BalanceReport checkBalanced(const Graph& g) {
  BalanceReport rep;
  const std::vector<Arc> all = arcs(g);

  // Undirected traversal with offsets: fix one node per component at 0, then
  // propagate d[to] = d[from] + length along every non-feedback arc in both
  // directions; any contradiction is an unbalanced reconvergence.
  const std::size_t n = g.size();
  struct Half {
    std::uint32_t other;
    std::int64_t delta;  ///< d[other] - d[this]
    const Arc* arc;
  };
  std::vector<std::vector<Half>> adj(n);
  for (const Arc& a : all) {
    if (a.feedback) continue;
    adj[a.from.index].push_back({a.to.index, a.phaseLength, &a});
    adj[a.to.index].push_back({a.from.index, -a.phaseLength, &a});
  }

  std::vector<std::int64_t> d(n, 0);
  std::vector<char> seen(n, 0);
  for (std::uint32_t root = 0; root < n; ++root) {
    if (seen[root]) continue;
    seen[root] = 1;
    d[root] = 0;
    std::vector<std::uint32_t> stack{root};
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (const Half& h : adj[u]) {
        const std::int64_t want = d[u] + h.delta;
        if (!seen[h.other]) {
          seen[h.other] = 1;
          d[h.other] = want;
          stack.push_back(h.other);
        } else if (d[h.other] != want) {
          std::ostringstream os;
          os << "arc #" << h.arc->from.index << " -> #" << h.arc->to.index
             << " (phase length " << h.arc->phaseLength
             << ") is inconsistent: depths "
             << d[h.arc->from.index] << " vs " << d[h.arc->to.index];
          rep.reason = os.str();
          return rep;
        }
      }
    }
  }

  // Normalize so every component's minimum is zero (cosmetic).
  rep.balanced = true;
  rep.depth = std::move(d);
  return rep;
}

std::vector<CycleInfo> feedbackCycles(const Graph& g) {
  std::vector<CycleInfo> out;
  // Use longest depths over the acyclic part to measure the span of each
  // feedback arc.  For rigid (fixed-length) loop bodies any consistent depth
  // works; longest depths are consistent along rigid chains.
  const std::vector<std::int64_t> depth = longestDepths(g);
  for (const Arc& a : arcs(g)) {
    if (!a.feedback) continue;
    out.push_back(
        {a.from, a.to, a.port, depth[a.from.index] - depth[a.to.index] + a.length});
  }
  return out;
}

}  // namespace valpipe::analysis
