// Path-length and balance analysis of instruction graphs (§3: a graph is
// fully pipelined only if each path between reconvergent points passes
// through the same number of instruction cells).
//
// Stage accounting: every cell adds one stage; a composite Fifo(k) adds k.
// Feedback-flagged arcs are excluded (their cycles are analysed separately).
// Sources (Input/BoolSeq/IndexSeq/AmFetch) are self-timed — they may sit at
// any depth, so balance means "a consistent depth assignment exists", not
// "all longest paths from depth-0 sources agree".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace valpipe::analysis {

/// One directed arc of the graph (operand or gate), with its stage length.
struct Arc {
  dfg::NodeId from;
  dfg::NodeId to;
  int port;             ///< consumer operand index or dfg::kGatePort
  std::int64_t length;  ///< stages contributed: fifoDepth for Fifo consumers, else 1
  /// Steady-state phase requirement: length + 2 * producer phaseShift.  A
  /// selection gate for A[i+c] delivers packets that are consumed 2c
  /// instruction times later on the consumer's index axis; full pipelining
  /// needs this skew absorbed by buffering (the Fig. 4 FIFOs).
  std::int64_t phaseLength;
  bool rigid;
  bool feedback;
};

/// All arcs of `g` in a flat list.
std::vector<Arc> arcs(const dfg::Graph& g);

/// Topological order over non-feedback arcs; nullopt if a cycle remains.
std::optional<std::vector<dfg::NodeId>> topoOrder(const dfg::Graph& g);

/// Longest path (in stages) from any source to each node over non-feedback
/// arcs; sources get 0.  Requires acyclicity.
std::vector<std::int64_t> longestDepths(const dfg::Graph& g);

struct BalanceReport {
  bool balanced = false;
  /// A consistent depth assignment when balanced (indexed by node id).
  std::vector<std::int64_t> depth;
  /// Human-readable reason when unbalanced.
  std::string reason;
};

/// Checks whether a consistent phase assignment d with d[to] = d[from] +
/// phaseLength exists for every non-feedback arc — the paper's
/// full-pipelining structural condition, including Fig. 4's selection-gate
/// skew.
BalanceReport checkBalanced(const dfg::Graph& g);

/// A for-iter feedback cycle: the loop-closing arc plus the acyclic stage
/// distance it spans.  With k-element dependence distance the loop's
/// steady-state rate is k / stages (≤ 1/2; equality needs stages == 2k).
struct CycleInfo {
  dfg::NodeId from;     ///< producer of the feedback arc
  dfg::NodeId to;       ///< consumer
  int port;
  std::int64_t stages;  ///< total cells around the cycle (incl. the back arc)
};

/// Stage counts of every feedback cycle (requires the rest to be balanced or
/// at least acyclic).
std::vector<CycleInfo> feedbackCycles(const dfg::Graph& g);

}  // namespace valpipe::analysis
