// Timed simulator of the static dataflow machine.
//
// Instruction cells obey the §2/§3 firing discipline: a cell is enabled when
// every required operand has arrived, the destinations of *this* firing are
// free (its previous result packets have been acknowledged), and — under a
// finite function-unit pool — a unit of its class is available.  Enabling
// decisions are two-phase (they read the state at the start of the
// instruction time), which yields exactly the paper's maximum repetition rate
// of one firing per two instruction times under the unit profile, and k/S for
// a feedback cycle of S stages carrying a dependence distance of k.
//
// The simulator runs on a flattened exec::ExecutableGraph and offers five
// schedulers with bit-identical results:
//   - EventDriven (default): a cell is re-examined only when a token arrives,
//     an acknowledge frees a destination, a function unit frees, or its own
//     firing completes — work scales with firings, not cells x cycles;
//   - ParallelEventDriven: the event-driven schedule sharded across worker
//     threads — cells are partitioned into shards (following the Placement
//     when one is supplied, else a min-cut partitioner), each worker owns a
//     time wheel / FU-pool slice / cell state, and cross-shard result and
//     acknowledge packets travel through per-pair SPSC mailboxes drained at
//     a deterministic per-instruction-time barrier;
//   - Synchronous: rescans every cell each instruction time on the flat
//     representation (diagnostic middle ground);
//   - Reference: the original pointer-walking stepper over dfg::Graph, kept
//     verbatim as the verification oracle and bench baseline (selected via
//     RunOptions::scheduler — the one way to pick a scheduler);
//   - Compiled: the steady-state backend over the sched::SteadySchedule IR —
//     event-driven fill and drain with the periodic middle of the run
//     fast-forwarded whole hyper-periods at a time (machine/engine_compiled),
//     falling back to EventDriven when the schedule IR declines the graph.
//
// The graph must carry no unresolved sugar beyond Op::Fifo, which the
// simulator accepts in either lowered form: expanded into an Id chain
// (dfg::expandFifos), where cell counts and rates refer to real instruction
// cells; or fused as one composite ring-buffer cell per chain
// (opt::fuseFifos, the compiler default), fired with the expanded chain's
// exact external timing via exec/fifo.hpp — same outputs, same output times,
// O(1) cells and packets per chain instead of O(depth).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "dfg/graph.hpp"
#include "exec/packet_counters.hpp"
#include "fault/plan.hpp"
#include "machine/config.hpp"
#include "machine/placement.hpp"
#include "run/io.hpp"
#include "support/value.hpp"

namespace valpipe::machine {

/// Packet traffic counters (§2's packet communication architecture).
using PacketCounters = exec::PacketCounters;

/// Which scheduler drives the simulation (core/options.hpp, so compile-time
/// tooling can name a scheduler without linking the machine).  All kinds
/// produce identical results; they differ only in how much work they spend
/// rediscovering the statically known schedule.
using SchedulerKind = core::SchedulerKind;

/// Machine-run options: the shared run vocabulary (waves, amInitial,
/// maxCycles) plus the timed-engine knobs.
struct RunOptions : run::RunOptions {
  /// Expected element count per Output stream for the whole run; when given,
  /// the run stops as soon as all outputs are complete.
  std::map<std::string, std::int64_t> expectedOutputs;
  /// Cell-to-PE assignment; result packets crossing PEs pay
  /// cfg.interPeDelay and are counted as distribution-network traffic.
  std::optional<Placement> placement;
  SchedulerKind scheduler = SchedulerKind::EventDriven;
  /// Worker-thread (= shard) count for ParallelEventDriven; 0 picks a
  /// default from the hardware.  Results are identical for every count.
  int threads = 0;
  /// What SchedulerKind::Compiled does on a declined graph.
  core::CompiledFallback compiledFallback = core::CompiledFallback::EventDriven;
};

struct MachineResult {
  run::StreamMap outputs;
  run::StreamMap amFinal;
  /// Arrival instruction-time of each element of each output stream.
  std::map<std::string, std::vector<std::int64_t>> outputTimes;
  std::vector<std::uint64_t> firings;  ///< per cell
  std::uint64_t totalFirings = 0;
  std::int64_t cycles = 0;
  bool completed = false;  ///< expected outputs all arrived (or none expected)
  std::string note;
  PacketCounters packets;
  /// Busy instruction-times accumulated per FU class (for utilization).
  std::array<std::uint64_t, 4> fuBusy{};
  /// Firings per processing element (when a Placement was supplied).
  std::vector<std::uint64_t> pePackets;
  /// What the fault injector did (all zero without a fault::Plan).
  fault::Counters faults;

  /// What SchedulerKind::Compiled did.  Deliberately NOT part of the
  /// scheduler-equivalence contract (testing.hpp expectIdentical): the
  /// compared fields above stay bit-identical across kinds, this one
  /// describes the mechanism.
  struct CompiledInfo {
    bool requested = false;      ///< run asked for SchedulerKind::Compiled
    bool accepted = false;       ///< the schedule IR accepted the graph
    bool fastForwarded = false;  ///< >= 1 steady-state jump actually taken
    bool vectorized = false;     ///< value loop ran the all-real fast path
    std::string reason;          ///< decline / no-jump diagnostic ("" if none)
    std::int64_t hyperPeriod = 0;      ///< static IR period (unit profile)
    std::int64_t detectedPeriod = 0;   ///< measured steady period (cycles)
    std::int64_t windowsSkipped = 0;   ///< hyper-periods fast-forwarded
    std::int64_t cyclesSkipped = 0;    ///< instruction times fast-forwarded
    std::uint64_t firingsSkipped = 0;  ///< firings accounted in bulk
  };
  CompiledInfo compiled;

  /// Results per instruction time over the whole run for `stream`.
  double overallRate(const std::string& stream) const;
  /// Steady-state rate measured between the 25% and 75% arrival marks,
  /// excluding pipeline fill/drain transients.
  double steadyRate(const std::string& stream) const;
};

/// Simulates `lowered` under `cfg` with the scheduler chosen in `opts`.
/// This is the one entry point; the verification oracle is reached with
/// SchedulerKind::Reference (the old simulateReference free function is
/// gone).
MachineResult simulate(const dfg::Graph& lowered, const MachineConfig& cfg,
                       const run::StreamMap& inputs,
                       const RunOptions& opts = {});

}  // namespace valpipe::machine
