// Timed simulator of the static dataflow machine.
//
// Instruction cells obey the §2/§3 firing discipline: a cell is enabled when
// every required operand has arrived, the destinations of *this* firing are
// free (its previous result packets have been acknowledged), and — under a
// finite function-unit pool — a unit of its class is available.  The engine
// steps synchronously in instruction times with two-phase update (enabling
// decisions read the state at the start of the cycle), which yields exactly
// the paper's maximum repetition rate of one firing per two instruction times
// under the unit profile, and k/S for a feedback cycle of S stages carrying a
// dependence distance of k.
//
// The graph must be lowered (dfg::expandFifos) so cell counts and rates refer
// to real instruction cells.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "machine/config.hpp"
#include "machine/placement.hpp"
#include "support/value.hpp"

namespace valpipe::machine {

using StreamMap = std::map<std::string, std::vector<Value>>;

struct RunOptions {
  int waves = 1;
  std::int64_t maxCycles = 100'000'000;
  StreamMap amInitial;
  /// Expected element count per Output stream for the whole run; when given,
  /// the run stops as soon as all outputs are complete.
  std::map<std::string, std::int64_t> expectedOutputs;
  /// Cell-to-PE assignment; result packets crossing PEs pay
  /// cfg.interPeDelay and are counted as distribution-network traffic.
  std::optional<Placement> placement;
};

/// Packet traffic counters (§2's packet communication architecture).
struct PacketCounters {
  std::array<std::uint64_t, 4> opPacketsByClass{};  ///< indexed by FuClass
  std::uint64_t resultPackets = 0;
  std::uint64_t ackPackets = 0;
  /// Result packets that crossed processing elements through the
  /// distribution network (only counted when a Placement is supplied).
  std::uint64_t networkResultPackets = 0;

  double networkShare() const {
    return resultPackets == 0
               ? 0.0
               : static_cast<double>(networkResultPackets) /
                     static_cast<double>(resultPackets);
  }

  std::uint64_t opPacketsTotal() const {
    std::uint64_t s = 0;
    for (auto v : opPacketsByClass) s += v;
    return s;
  }
  /// Fraction of operation packets sent to the array memories (§2 claims
  /// <= 1/8 for streaming application codes).
  double amShare() const {
    const auto total = opPacketsTotal();
    return total == 0 ? 0.0
                      : static_cast<double>(opPacketsByClass[static_cast<int>(
                            dfg::FuClass::Am)]) /
                            static_cast<double>(total);
  }
};

struct MachineResult {
  StreamMap outputs;
  StreamMap amFinal;
  /// Arrival instruction-time of each element of each output stream.
  std::map<std::string, std::vector<std::int64_t>> outputTimes;
  std::vector<std::uint64_t> firings;  ///< per cell
  std::uint64_t totalFirings = 0;
  std::int64_t cycles = 0;
  bool completed = false;  ///< expected outputs all arrived (or none expected)
  std::string note;
  PacketCounters packets;
  /// Busy instruction-times accumulated per FU class (for utilization).
  std::array<std::uint64_t, 4> fuBusy{};
  /// Firings per processing element (when a Placement was supplied).
  std::vector<std::uint64_t> pePackets;

  /// Results per instruction time over the whole run for `stream`.
  double overallRate(const std::string& stream) const;
  /// Steady-state rate measured between the 25% and 75% arrival marks,
  /// excluding pipeline fill/drain transients.
  double steadyRate(const std::string& stream) const;
};

/// Simulates `lowered` under `cfg`.
MachineResult simulate(const dfg::Graph& lowered, const MachineConfig& cfg,
                       const StreamMap& inputs, const RunOptions& opts = {});

}  // namespace valpipe::machine
