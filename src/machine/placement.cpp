#include "machine/placement.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace valpipe::machine {

const char* toString(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::RoundRobin: return "round-robin";
    case PlacementStrategy::Contiguous: return "contiguous";
    case PlacementStrategy::MinCut: return "min-cut";
  }
  return "?";
}

namespace {

/// Greedy refinement of a seed assignment: up to four passes, each moving a
/// cell to the PE that holds strictly more of its neighbors than its current
/// one, as long as both PE sizes stay within [3/4, 5/4] of the average.
/// Deterministic (fixed scan order) and monotone in the cut size.
void refineMinCut(const dfg::Graph& g, Placement& p) {
  const std::size_t n = g.size();
  const int pes = p.peCount;
  if (n == 0 || pes <= 1) return;

  // Undirected arc adjacency (operand + gate arcs).
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (dfg::NodeId id : g.ids()) {
    const dfg::Node& nd = g.node(id);
    auto arc = [&](const dfg::PortSrc& src) {
      if (!src.isArc() || src.producer.index == id.index) return;
      adj[id.index].push_back(static_cast<std::uint32_t>(src.producer.index));
      adj[src.producer.index].push_back(static_cast<std::uint32_t>(id.index));
    };
    for (const dfg::PortSrc& in : nd.inputs) arc(in);
    if (nd.gate) arc(*nd.gate);
  }

  std::vector<std::size_t> size(static_cast<std::size_t>(pes), 0);
  for (std::size_t i = 0; i < n; ++i) ++size[static_cast<std::size_t>(p.peOf[i])];
  const std::size_t avg = n / static_cast<std::size_t>(pes);
  const std::size_t lo = std::max<std::size_t>(1, avg - avg / 4);
  const std::size_t hi = avg + std::max<std::size_t>(1, avg / 4);

  std::vector<int> pull(static_cast<std::size_t>(pes), 0);
  for (int pass = 0; pass < 4; ++pass) {
    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (adj[i].empty()) continue;
      std::fill(pull.begin(), pull.end(), 0);
      for (std::uint32_t nb : adj[i]) ++pull[static_cast<std::size_t>(p.peOf[nb])];
      const int cur = p.peOf[i];
      int best = cur;
      for (int pe = 0; pe < pes; ++pe) {
        if (pe == cur) continue;
        if (pull[static_cast<std::size_t>(pe)] <=
            pull[static_cast<std::size_t>(best)])
          continue;
        if (size[static_cast<std::size_t>(pe)] >= hi ||
            size[static_cast<std::size_t>(cur)] <= lo)
          continue;
        best = pe;
      }
      if (best != cur) {
        --size[static_cast<std::size_t>(cur)];
        ++size[static_cast<std::size_t>(best)];
        p.peOf[i] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

Placement assignCells(const dfg::Graph& g, int peCount, PlacementStrategy s) {
  VALPIPE_CHECK(peCount >= 1);
  Placement p;
  p.peCount = peCount;
  p.peOf.resize(g.size());
  const std::size_t n = g.size();
  switch (s) {
    case PlacementStrategy::RoundRobin:
      for (std::size_t i = 0; i < n; ++i)
        p.peOf[i] = static_cast<int>(i % static_cast<std::size_t>(peCount));
      break;
    case PlacementStrategy::Contiguous:
    case PlacementStrategy::MinCut: {
      const std::size_t chunk = (n + peCount - 1) / peCount;
      for (std::size_t i = 0; i < n; ++i)
        p.peOf[i] = static_cast<int>(i / std::max<std::size_t>(chunk, 1));
      break;
    }
  }
  if (s == PlacementStrategy::MinCut) refineMinCut(g, p);
  return p;
}

double crossPeArcFraction(const dfg::Graph& g, const Placement& p) {
  std::size_t arcs = 0, cross = 0;
  for (dfg::NodeId id : g.ids()) {
    const dfg::Node& n = g.node(id);
    auto count = [&](const dfg::PortSrc& src) {
      if (!src.isArc()) return;
      ++arcs;
      if (p.of(src.producer) != p.of(id)) ++cross;
    };
    for (const dfg::PortSrc& in : n.inputs) count(in);
    if (n.gate) count(*n.gate);
  }
  return arcs == 0 ? 0.0
                   : static_cast<double>(cross) / static_cast<double>(arcs);
}

}  // namespace valpipe::machine
