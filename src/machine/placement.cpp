#include "machine/placement.hpp"

#include "support/check.hpp"

namespace valpipe::machine {

const char* toString(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::RoundRobin: return "round-robin";
    case PlacementStrategy::Contiguous: return "contiguous";
  }
  return "?";
}

Placement assignCells(const dfg::Graph& g, int peCount, PlacementStrategy s) {
  VALPIPE_CHECK(peCount >= 1);
  Placement p;
  p.peCount = peCount;
  p.peOf.resize(g.size());
  const std::size_t n = g.size();
  switch (s) {
    case PlacementStrategy::RoundRobin:
      for (std::size_t i = 0; i < n; ++i)
        p.peOf[i] = static_cast<int>(i % static_cast<std::size_t>(peCount));
      break;
    case PlacementStrategy::Contiguous: {
      const std::size_t chunk = (n + peCount - 1) / peCount;
      for (std::size_t i = 0; i < n; ++i)
        p.peOf[i] = static_cast<int>(i / std::max<std::size_t>(chunk, 1));
      break;
    }
  }
  return p;
}

double crossPeArcFraction(const dfg::Graph& g, const Placement& p) {
  std::size_t arcs = 0, cross = 0;
  for (dfg::NodeId id : g.ids()) {
    const dfg::Node& n = g.node(id);
    auto count = [&](const dfg::PortSrc& src) {
      if (!src.isArc()) return;
      ++arcs;
      if (p.of(src.producer) != p.of(id)) ++cross;
    };
    for (const dfg::PortSrc& in : n.inputs) count(in);
    if (n.gate) count(*n.gate);
  }
  return arcs == 0 ? 0.0
                   : static_cast<double>(cross) / static_cast<double>(arcs);
}

}  // namespace valpipe::machine
