// Single-threaded engine lane over the flattened exec::ExecutableGraph.
//
// The firing discipline (enabling test, firing effects, acknowledge
// bookkeeping) lives in detail::EngineBase (machine/engine_impl.hpp) and is
// shared with the parallel engine; SingleEngine supplies the single-threaded
// event routing (one time wheel, one FU pool) and the two serial run loops:
//
//   runSynchronous — rescans every cell each instruction time with rotating
//                    priority, the original stepper's schedule on the flat
//                    representation;
//   runEventLoop   — examines only cells woken by an event (token arrival,
//                    acknowledge, function-unit release, own-firing
//                    completion, array-memory store), popped per instruction
//                    time from exec::ReadyQueue and scanned in the same
//                    rotating priority order.  runEventDriven is the plain
//                    instantiation; the compiled scheduler
//                    (machine/engine_compiled.cpp) instantiates it with a
//                    per-step hook that watches for a steady state and
//                    fast-forwards the run by whole periods.
//
// Both phases of an examined instruction time are kept two-phase (all
// enabling decisions before any firing is applied), and candidate cells are
// ordered exactly as the full rescan orders them, so every MachineResult
// field — outputs, arrival times, per-cell firings, cycles, packet and
// busy-time counters — is bit-identical across the schedulers and the
// Reference stepper (machine/engine_reference.cpp).
//
// This header is internal to src/machine (it is not part of the public
// simulate() surface); it exists so engine_compiled.cpp can drive the same
// lane that engine.cpp's dispatch constructs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "exec/cell_state.hpp"
#include "exec/executable_graph.hpp"
#include "exec/fu_pool.hpp"
#include "exec/ready_queue.hpp"
#include "exec/router.hpp"
#include "exec/stop.hpp"
#include "guard/diagnosis.hpp"
#include "machine/engine.hpp"
#include "machine/engine_impl.hpp"
#include "support/check.hpp"

namespace valpipe::machine::detail {

struct SingleEngine : EngineBase<SingleEngine> {
  std::vector<exec::Slot> slotStore;
  std::vector<exec::CellDyn> dynStore;
  std::vector<exec::FifoState> fifoStore;
  exec::FuPool fu;
  exec::StopCondition stop;
  exec::ReadyQueue* rq = nullptr;  ///< set while running event-driven
  const dfg::Graph* lowered = nullptr;  ///< for the stall diagnosis
  std::optional<guard::State> gst;

  /// When set, every wake() is also appended here (cell, at).  The compiled
  /// scheduler mirrors the wheel's pending set through this log so it can
  /// rebuild the wheel — shifted in time — after a bulk fast-forward.
  std::vector<std::pair<std::uint32_t, std::int64_t>>* wakeLog = nullptr;

  /// Instruction time of the most recent firing (-1 before any), maintained
  /// by runEventLoop; part of the quiescence decision and therefore part of
  /// the state a fast-forward must advance.
  std::int64_t lastFire_ = -1;

  MachineResult result;

  SingleEngine(const exec::ExecutableGraph& graph, const MachineConfig& config,
               const run::StreamMap& inputs, const RunOptions& o)
      : EngineBase(graph, config, o),
        slotStore(graph.slotCount()),
        dynStore(graph.size()),
        fifoStore(exec::makeFifoStates(graph)),
        fu(config.fuUnits, config.execLatency),
        stop(o.expectedOutputs) {
    slots = slotStore.data();
    cellDyn = dynStore.data();
    fifoDyn = fifoStore.data();
    if (opts.guards) {
      gst.emplace(eg);
      grd = guard::LaneGuard(opts.guards, &*gst, &eg);
    }
    result.firings.assign(eg.size(), 0);
    firings = result.firings.data();
    // Load-time tokens (counter-loop bootstraps): present at t = 0.
    for (std::uint32_t s = 0; s < eg.slotCount(); ++s) {
      const exec::Operand& o2 = eg.operandAt(s);
      if (o2.hasInitial) {
        slots[s].full = true;
        slots[s].v = o2.initial;
      }
    }
    amFinal = opts.amInitial;
    // Fetched regions must exist even when nothing is pre-loaded (stores
    // fill them during the run); resolve stream bindings once.
    for (std::uint32_t c = 0; c < eg.size(); ++c) {
      const exec::Cell& cl = eg.cell(c);
      if (cl.op == dfg::Op::AmFetch) amFinal[eg.streamName(cl)];
    }
    for (std::uint32_t c = 0; c < eg.size(); ++c)
      bindCell(c, inputs,
               [this](const std::string& name) { return stop.slotFor(name); });
    if (opts.placement) {
      VALPIPE_CHECK_MSG(opts.placement->peOf.size() == eg.size(),
                        "placement does not match the graph");
      router = exec::Router(opts.placement->peOf, opts.placement->peCount,
                            cfg.interPeDelay);
    }
  }

  // --- event-routing hooks: everything is lane-local ----------------------

  void wake(std::uint32_t cell, std::int64_t at) {
    if (rq) rq->wake(cell, at);
    if (wakeLog) wakeLog->emplace_back(cell, at);
  }
  bool destFree(const exec::Dest& d) const { return slotFree(slots[d.slot]); }
  void deliverOne(const exec::Dest& d, const Value& v, std::int64_t at,
                  std::int64_t wakeAt) {
    deliverLocal(d, v, at, wakeAt);
  }
  void ackProducer(std::uint32_t producer, std::uint32_t slot,
                   std::int64_t /*freedAt*/, std::int64_t wakeAt) {
    grd.onAck(producer, slot, now);
    wake(producer, wakeAt);
  }
  void onOutput(std::int32_t stopSlot) { stop.onOutput(stopSlot); }

  /// The run-length cap: maxInstructionTimes tightens maxCycles when set.
  std::int64_t capCycles() const {
    return opts.maxInstructionTimes > 0
               ? std::min(opts.maxInstructionTimes, opts.maxCycles)
               : opts.maxCycles;
  }

  /// Idle window after which the machine is declared stuck: the natural
  /// settle window, or the caller's watchdog if that is longer.
  std::int64_t idleWindow() const {
    return opts.watchdog > 0 ? std::max(settleWindow(), opts.watchdog)
                             : settleWindow();
  }

  [[noreturn]] void throwStall(const char* why) {
    std::vector<guard::OutputProgress> progress;
    for (std::size_t i = 0; i < stop.size(); ++i)
      progress.push_back({stop.name(i), stop.want(i), stop.have(i)});
    throw run::StallError(
        now, guard::diagnoseStall(why, lowered, eg, slots, cellDyn, now,
                                  progress, inj.counters));
  }

  void finish() {
    if (!result.completed && opts.maxInstructionTimes > 0 &&
        now >= capCycles() && !stop.quiescentOk())
      throwStall("instruction-time cap reached with outputs incomplete");
    if (now >= opts.maxCycles) result.note = "maxCycles exceeded";
    result.faults = inj.counters;
    result.cycles = now;
    result.fuBusy = fu.busy();
    if (router.active()) result.pePackets = router.pePackets();
    result.outputs = std::move(outputs);
    result.outputTimes = std::move(outputTimes);
    result.amFinal = std::move(amFinal);
    result.totalFirings = totalFirings;
    result.packets = packets;
  }

  /// Original schedule: rescan all cells each instruction time with rotating
  /// priority for fairness under FU contention.
  void runSynchronous() {
    const std::size_t n = eg.size();
    std::vector<std::uint32_t> toFire;
    toFire.reserve(n);
    const std::int64_t window = idleWindow();
    const std::int64_t floorTime = inj.quiesceFloor();
    const std::int64_t cap = capCycles();
    std::int64_t idle = 0;

    for (now = 0; now < cap; ++now) {
      toFire.clear();
      const std::size_t start =
          n == 0 ? 0 : static_cast<std::size_t>(now) % n;
      for (std::size_t k = 0; k < n; ++k) {
        const auto id = static_cast<std::uint32_t>((start + k) % n);
        if (!enabled(id)) continue;
        const dfg::FuClass fc = eg.cell(id).fu;
        if (const std::int64_t until = inj.outageUntil(fc, now); until > now) {
          probe.denied(id, now, until);
          continue;
        }
        if (!fu.tryGrant(fc, now)) {
          probe.denied(id, now, fu.nextFree(fc));
          continue;
        }
        toFire.push_back(id);
      }
      for (std::uint32_t id : toFire) fire(id);

      if (stop.outputsComplete()) {
        result.completed = true;
        ++now;
        break;
      }
      idle = toFire.empty() ? idle + 1 : 0;
      if (idle > window && now >= floorTime) {
        result.completed = stop.quiescentOk();
        if (!result.completed) {
          if (opts.watchdog > 0)
            throwStall("watchdog: no cell fired within the idle window");
          result.note = "deadlock: outputs incomplete";
        }
        break;
      }
    }
    finish();
  }

  /// Event-driven schedule: advance directly to the next instruction time
  /// with a woken cell; candidates are examined in the same rotating order
  /// the rescan would use, so the two loops stay bit-identical.
  ///
  /// `afterStep(toFire)` runs once per examined instruction time, after
  /// phase B (and the lastFire_ update) and before the completion check.
  /// The hook may mutate the whole engine — including `now` and the wheel —
  /// which is exactly what the compiled scheduler's fast-forward does; the
  /// plain event-driven run passes a no-op that the compiler erases.
  template <class StepHook>
  void runEventLoop(StepHook&& afterStep) {
    const std::size_t n = eg.size();
    const std::int64_t window = idleWindow();
    const std::int64_t floorTime = inj.quiesceFloor();
    const std::int64_t cap = capCycles();
    const std::int64_t hzn = wakeHorizon();
    exec::ReadyQueue queue(n, hzn);
    rq = &queue;
    for (std::uint32_t c = 0; c < n; ++c) wake(c, 0);

    std::vector<std::uint32_t> cand;
    std::vector<std::uint32_t> ordered;
    std::vector<std::uint32_t> toFire;
    cand.reserve(n);
    ordered.reserve(n);
    toFire.reserve(n);
    std::vector<std::int64_t> candAt(n, -1);  ///< stamp for dense ordering
    lastFire_ = -1;  // so the first quiescence break lands at `settle`, like
                     // an all-idle rescan
    for (;;) {
      const std::int64_t tQuiesce =
          std::max(lastFire_, floorTime) + window + 1;
      if (queue.empty() || queue.nextTime() > tQuiesce) {
        // Nothing can fire before the idle counter trips.
        if (tQuiesce >= cap) {
          now = cap;
          break;
        }
        now = tQuiesce;
        result.completed = stop.quiescentOk();
        if (!result.completed) {
          if (opts.watchdog > 0)
            throwStall("watchdog: no cell fired within the idle window");
          result.note = "deadlock: outputs incomplete";
        }
        break;
      }
      if (queue.nextTime() >= cap) {
        now = cap;
        break;
      }
      now = queue.pop(cand);

      // Rotating priority: same scan order as the rescan starting at now % n.
      const std::uint32_t start =
          static_cast<std::uint32_t>(static_cast<std::size_t>(now) % n);
      if (cand.size() * 8 >= n) {
        // Dense step: stamp the candidates and collect them by one pass in
        // rotation order — cheaper than sorting when most cells are awake.
        for (std::uint32_t id : cand) candAt[id] = now;
        ordered.clear();
        for (std::size_t k = 0; k < n; ++k) {
          const auto id = static_cast<std::uint32_t>(
              (start + k) % static_cast<std::uint32_t>(n));
          if (candAt[id] == now) ordered.push_back(id);
        }
        cand.swap(ordered);
      } else {
        std::sort(cand.begin(), cand.end(),
                  [start, n](std::uint32_t a, std::uint32_t b) {
                    const std::uint32_t ra =
                        a >= start ? a - start
                                   : a + static_cast<std::uint32_t>(n) - start;
                    const std::uint32_t rb =
                        b >= start ? b - start
                                   : b + static_cast<std::uint32_t>(n) - start;
                    return ra < rb;
                  });
      }
      // Phase A: enabling + FU grants against start-of-cycle state.
      toFire.clear();
      for (std::uint32_t id : cand) {
        if (!enabled(id)) continue;
        const dfg::FuClass fc = eg.cell(id).fu;
        if (const std::int64_t until = inj.outageUntil(fc, now); until > now) {
          // Denied by a transient outage: retry at its end (chained through
          // the wheel horizon when the outage outlasts it).
          probe.denied(id, now, until);
          wake(id, std::min(until, now + hzn));
          continue;
        }
        if (fu.tryGrant(fc, now)) {
          toFire.push_back(id);
        } else {
          const std::int64_t freeAt = fu.nextFree(fc);
          probe.denied(id, now, freeAt);
          wake(id, freeAt);  // retry when a unit frees
        }
      }
      // Phase B: apply.
      for (std::uint32_t id : toFire) fire(id);

      if (!toFire.empty()) lastFire_ = now;
      afterStep(toFire);
      if (stop.outputsComplete()) {
        result.completed = true;
        ++now;
        break;
      }
    }
    rq = nullptr;
    finish();
  }

  void runEventDriven() {
    runEventLoop([](const std::vector<std::uint32_t>&) {});
  }
};

/// SchedulerKind::Compiled driver (machine/engine_compiled.cpp): computes
/// the sched::SteadySchedule IR, runs the event loop with a steady-state
/// detector hooked in, and fast-forwards whole periods when it can.  Fills
/// e.result (including result.compiled) exactly like runEventDriven fills
/// the shared fields.
void runCompiled(SingleEngine& e);

}  // namespace valpipe::machine::detail
