// SchedulerKind::Compiled — the steady-state backend over the
// sched::SteadySchedule IR.
//
// A balanced graph's run has three phases (§3): a fill transient while the
// pipe loads, a periodic steady state where every cell fires once per
// hyper-period, and a drain transient as the sources exhaust.  The event
// engine spends the same per-token effort on all three; only the transients
// need it.  The compiled scheduler therefore runs the ordinary event loop
// (detail::SingleEngine::runEventLoop) with a per-step hook that
//
//   1. mirrors the time wheel's pending wakes (SingleEngine::wakeLog), so the
//      wheel can be rebuilt, shifted in time, after a jump;
//   2. once past an arming time that covers the fill transient, snapshots the
//      machine state in shift-canonical form — every timestamp taken relative
//      to `now` and floored at a horizon below which it can never influence
//      behavior again — and watches for the state to recur;
//   3. on a recurrence with at least one firing in between (a steady period
//      of measured length δ), fast-forwards N whole periods at once: counters
//      advance by N times the per-window delta, timestamps shift by K = N·δ,
//      and every value the skipped windows would have produced (output
//      elements, slot occupants, FIFO ring contents) is reconstructed by
//      token index with sched::SteadyLoop — a straight-line loop over
//      preallocated blocks, vectorized when the values are provably all real.
//
// Bit-identity argument: the engine is deterministic and, on an accepted
// graph (no gates, merges, array memory, feedback, or initial tokens), its
// *timing* trajectory is value-independent — values flow only into outputs
// and arithmetic, never into enabling decisions.  The canonical snapshot
// plus the pending-wake mirror is exactly the state that determines the
// future trajectory, so a recurrence proves the trajectory from t1 replays
// the window (t0, t1] shifted by δ, forever — until a source exhausts or an
// expected-output count completes, both of which the jump bound N keeps at
// least two windows away.  Values are reconstructed with the same ops::
// routines on the same inputs (sched/steady_loop.hpp), so outputs — and any
// ValueError a skipped window would have thrown — are identical too.
//
// The fast path is declined at run time (the event loop still runs, under
// the Compiled label, with a diagnostic in MachineResult::compiled.reason)
// when the run carries state a bulk jump cannot advance or must not skip:
// fault injection, a placement (per-PE routing state), observability sinks
// (every skipped firing would be a missing trace/metrics event), finite
// function-unit pools (per-unit freeAt state), or two Output cells feeding
// one stream (per-stream append order across cells is time-interleaved).
#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "machine/engine_single.hpp"
#include "sched/schedule.hpp"
#include "sched/steady_loop.hpp"
#include "support/check.hpp"

namespace valpipe::machine::detail {

namespace {

/// One shift-canonical machine snapshot plus the monotone counters needed to
/// form per-window deltas.
struct Snap {
  bool valid = false;  ///< composite rings fully wrapped (see takeSnap)
  std::int64_t t = 0;
  std::vector<std::int64_t> words;  ///< canonical state, compared verbatim
  std::vector<std::uint64_t> firings;
  std::uint64_t totalFirings = 0;
  exec::PacketCounters packets;
  std::vector<std::int64_t> emitted;       ///< CellDyn::emitted per cell
  std::vector<std::int64_t> fifoAccepted;  ///< per composite (driver order)
  std::vector<std::int64_t> fifoEmitted;
  std::array<std::uint64_t, 4> fuBusy{};
  std::vector<std::int64_t> stopHave;
  std::vector<std::int64_t> gSent, gAcked, gDelivered, gConsumed;
};

class CompiledDriver {
 public:
  CompiledDriver(SingleEngine& e, const sched::SteadySchedule& ss)
      : e_(e), ss_(ss) {
    const std::int64_t period = e_.fifoTiming().period();
    // Below this floor every timestamp is behaviorally dead: no enabling
    // test, rate bound, or ring acknowledge-wave check reaches further back.
    horizon_ = e_.settleWindow() + e_.wakeHorizon() +
               (e_.eg.maxFifoDepth() + 2) * period + 4;
    // Arm after the fill transient: the deepest pipeline (or FIFO ring) has
    // loaded and every composite ring has wrapped by then.
    arm_ = (e_.eg.maxFifoDepth() + 2) * period + e_.wakeHorizon() +
           e_.settleWindow();
    maxSpan_ = 16 * (period + e_.wakeHorizon()) + 64;
    for (std::uint32_t c = 0; c < e_.eg.size(); ++c) {
      const exec::Cell& cl = e_.eg.cell(c);
      if (cl.op == dfg::Op::Fifo && cl.fifoDepth >= 2) composites_.push_back(c);
      if (dfg::isSource(cl.op)) sources_.push_back(c);
      if (cl.op == dfg::Op::Output) outputCells_.push_back(c);
    }
  }

  /// The wake log SingleEngine appends to; drained into the pending mirror
  /// at the start of every step.
  std::vector<std::pair<std::uint32_t, std::int64_t>>* wakeBuf = nullptr;

  void afterStep() {
    for (const auto& [cell, at] : *wakeBuf)
      if (at > e_.now) pending_.insert({at, cell});
    wakeBuf->clear();
    while (!pending_.empty() && pending_.begin()->first <= e_.now)
      pending_.erase(pending_.begin());

    if (done_ || e_.now < arm_) return;
    if (!haveBase_) {
      takeSnap(base_);
      haveBase_ = base_.valid;
      return;
    }
    takeSnap(cur_);
    if (cur_.valid && cur_.words == base_.words &&
        cur_.totalFirings > base_.totalFirings) {
      tryJump();
      return;
    }
    if (e_.now - base_.t > maxSpan_) {
      // The window since the base never recurred: rebase and retry, giving
      // up after enough attempts that the run is clearly not periodic at
      // any phase we would catch (jitter-free runs recur within one span).
      if (++attempts_ >= kMaxAttempts) {
        done_ = true;
        if (e_.result.compiled.reason.empty())
          e_.result.compiled.reason = "no steady period detected";
        return;
      }
      base_ = cur_;
      haveBase_ = cur_.valid;
    }
  }

 private:
  static constexpr int kMaxAttempts = 16;

  void canonWords(std::vector<std::int64_t>& w) const {
    w.clear();
    const std::int64_t now = e_.now;
    const std::int64_t floor = -horizon_;
    const auto canon = [&](std::int64_t tau) {
      return std::max(tau - now, floor);
    };
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(e_.eg.slotCount()); ++s) {
      const exec::Slot& sl = e_.slots[s];
      w.push_back(sl.full ? 1 : 0);
      w.push_back(canon(sl.readyAt));
      w.push_back(canon(sl.freedAt));
    }
    for (std::uint32_t c = 0; c < e_.eg.size(); ++c)
      w.push_back(canon(e_.cellDyn[c].busyUntil));
    w.push_back(canon(e_.lastFire_));
    for (std::uint32_t c : composites_) {
      const exec::FifoState& f = e_.fifoDyn[c];
      const auto ring = static_cast<std::uint32_t>(f.ring());
      w.push_back(f.count);
      w.push_back(f.accepted >= f.ring() ? 1 : 0);
      w.push_back(f.emitted >= f.ring() ? 1 : 0);
      w.push_back(canon(f.lastAccept));
      w.push_back(canon(f.lastEmit));
      // Live ring entries, head-relative (head tracks emitted mod ring, so
      // relative positions align across snapshots); dead entries are stale
      // storage the firing rule never reads.
      for (std::uint32_t i = 0; i < f.count; ++i)
        w.push_back(canon(f.readyAt[(f.head + i) % ring]));
      // Emit times, aligned relative to the next accept (canAccept reads
      // emitAt[accepted % ring] for the backward acknowledge wave).
      for (std::uint32_t i = 0; i < ring; ++i)
        w.push_back(canon(f.emitAt[static_cast<std::size_t>(
            (f.accepted + i) % f.ring())]));
    }
    // The pending-wake mirror is part of the state that drives the future:
    // two snapshots only recur if the wheel holds the same future, shifted.
    w.push_back(static_cast<std::int64_t>(pending_.size()));
    for (const auto& [at, cell] : pending_) {
      w.push_back(at - now);
      w.push_back(static_cast<std::int64_t>(cell));
    }
  }

  void takeSnap(Snap& s) const {
    const std::size_t n = e_.eg.size();
    // A jump shifts ring contents by whole windows; every emitAt entry must
    // therefore hold a real emit time (the ring has wrapped), or the shifted
    // entry would be unreconstructable.
    s.valid = true;
    for (std::uint32_t c : composites_) {
      const exec::FifoState& f = e_.fifoDyn[c];
      if (f.accepted < f.ring() || f.emitted < f.ring()) s.valid = false;
    }
    s.t = e_.now;
    canonWords(s.words);
    s.firings.assign(e_.firings, e_.firings + n);
    s.totalFirings = e_.totalFirings;
    s.packets = e_.packets;
    s.emitted.resize(n);
    for (std::uint32_t c = 0; c < n; ++c) s.emitted[c] = e_.cellDyn[c].emitted;
    s.fifoAccepted.clear();
    s.fifoEmitted.clear();
    for (std::uint32_t c : composites_) {
      s.fifoAccepted.push_back(e_.fifoDyn[c].accepted);
      s.fifoEmitted.push_back(e_.fifoDyn[c].emitted);
    }
    s.fuBusy = e_.fu.busy();
    s.stopHave.clear();
    for (std::size_t i = 0; i < e_.stop.size(); ++i)
      s.stopHave.push_back(e_.stop.have(i));
    if (e_.gst) {
      s.gSent = e_.gst->sent;
      s.gAcked = e_.gst->acked;
      s.gDelivered = e_.gst->delivered;
      s.gConsumed = e_.gst->consumed;
    }
  }

  void tryJump() {
    const std::int64_t delta = cur_.t - base_.t;  // measured period
    const std::size_t n = e_.eg.size();

    // Per-window firing deltas.
    std::vector<std::int64_t> dF(n);
    for (std::uint32_t c = 0; c < n; ++c)
      dF[c] = static_cast<std::int64_t>(cur_.firings[c] - base_.firings[c]);
    const auto dTotal =
        static_cast<std::int64_t>(cur_.totalFirings - base_.totalFirings);

    // How many windows may be skipped.  Leave a generous margin before the
    // cycle cap (the drain plus detection re-arm must fit), and keep every
    // source and every expected-output count at least two windows away from
    // its limit, so the replayed windows are genuinely interior steady state.
    std::int64_t nWin = std::numeric_limits<std::int64_t>::max() / 4;
    {
      const std::int64_t room = e_.capCycles() - cur_.t - e_.wakeHorizon() -
                                e_.settleWindow() - 4 * delta;
      nWin = std::min(nWin, room > 0 ? room / delta : 0);
    }
    for (std::uint32_t c : sources_) {
      const std::int64_t dE = cur_.emitted[c] - base_.emitted[c];
      if (dE <= 0) continue;
      const std::int64_t left =
          e_.sourceLimit(c, e_.eg.cell(c)) - cur_.emitted[c];
      nWin = std::min(nWin, left / dE - 2);
    }
    for (std::size_t i = 0; i < e_.stop.size(); ++i) {
      const std::int64_t dH = e_.stop.have(i) - base_.stopHave[i];
      if (e_.stop.want(i) <= 0 || dH <= 0) continue;
      nWin = std::min(nWin, (e_.stop.want(i) - e_.stop.have(i)) / dH - 2);
    }
    if (nWin < 2) {
      done_ = true;
      if (e_.result.compiled.reason.empty())
        e_.result.compiled.reason =
            "steady state reached with fewer than two periods remaining";
      return;
    }
    const std::int64_t K = nWin * delta;

    // --- reconstruct every value the skipped windows produce --------------
    sched::SteadyLoop loop(e_.eg, ss_);
    for (std::uint32_t c : sources_)
      if (e_.eg.cell(c).op == dfg::Op::Input)
        loop.bindSource(c, e_.sourceData[c]);
    for (std::uint32_t c = 0; c < n; ++c) {
      if (dF[c] <= 0) continue;
      const exec::Cell& cl = e_.eg.cell(c);
      // Every skipped firing that evaluates anything is evaluated here, so a
      // ValueError the real run would hit in the window is hit here too.
      if (dfg::producesResult(cl.op) || dfg::isSource(cl.op))
        loop.request(c, static_cast<std::int64_t>(cur_.firings[c]),
                     static_cast<std::int64_t>(cur_.firings[c]) + nWin * dF[c]);
      if (cl.op == dfg::Op::Output && !e_.eg.operand(cl, 0).isLiteral())
        loop.request(e_.eg.operand(cl, 0).producer,
                     static_cast<std::int64_t>(cur_.firings[c]),
                     static_cast<std::int64_t>(cur_.firings[c]) + nWin * dF[c]);
    }
    for (std::size_t ci = 0; ci < composites_.size(); ++ci) {
      // Post-jump ring contents: the composite's tokens [emitted', accepted')
      // (the fused chain is the identity on token indices, so the loop's
      // value for the Fifo cell itself is the queued token).
      const std::uint32_t c = composites_[ci];
      const exec::FifoState& f = e_.fifoDyn[c];
      const std::int64_t dE = cur_.fifoEmitted[ci] - base_.fifoEmitted[ci];
      loop.request(c, f.emitted + nWin * dE,
                   f.emitted + nWin * dE + static_cast<std::int64_t>(f.count));
    }
    loop.compute();

    // --- apply the jump ---------------------------------------------------
    const std::int64_t tNew = cur_.t + K;

    for (std::uint32_t c = 0; c < n; ++c)
      e_.firings[c] += static_cast<std::uint64_t>(nWin * dF[c]);
    e_.totalFirings += static_cast<std::uint64_t>(nWin * dTotal);
    for (std::size_t i = 0; i < 4; ++i)
      e_.packets.opPacketsByClass[i] +=
          static_cast<std::uint64_t>(nWin) *
          (cur_.packets.opPacketsByClass[i] - base_.packets.opPacketsByClass[i]);
    e_.packets.resultPackets +=
        static_cast<std::uint64_t>(nWin) *
        (cur_.packets.resultPackets - base_.packets.resultPackets);
    e_.packets.ackPackets +=
        static_cast<std::uint64_t>(nWin) *
        (cur_.packets.ackPackets - base_.packets.ackPackets);
    e_.packets.networkResultPackets +=
        static_cast<std::uint64_t>(nWin) * (cur_.packets.networkResultPackets -
                                            base_.packets.networkResultPackets);
    {
      std::array<std::uint64_t, 4> dBusy{};
      for (std::size_t i = 0; i < 4; ++i)
        dBusy[i] =
            static_cast<std::uint64_t>(nWin) * (cur_.fuBusy[i] - base_.fuBusy[i]);
      e_.fu.addBusy(dBusy);
    }

    for (std::uint32_t c = 0; c < n; ++c) {
      e_.cellDyn[c].emitted += nWin * (cur_.emitted[c] - base_.emitted[c]);
      e_.cellDyn[c].busyUntil += K;
    }
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(e_.eg.slotCount()); ++s) {
      // Uniform shift: live timestamps land exactly where the replayed run
      // puts them; dead ones (<= t1) stay in the dead past (<= t1 + K).
      e_.slots[s].readyAt += K;
      e_.slots[s].freedAt += K;
      if (!e_.slots[s].full) continue;
      const exec::Operand& o = e_.eg.operandAt(s);
      if (o.producer == exec::kNoProducer || dF[o.producer] <= 0) continue;
      // Capacity-1 in-order delivery: the occupant is always the producer's
      // latest token.
      e_.slots[s].v = loop.value(
          o.producer, static_cast<std::int64_t>(e_.firings[o.producer]) - 1);
    }

    for (std::size_t ci = 0; ci < composites_.size(); ++ci) {
      const std::uint32_t c = composites_[ci];
      exec::FifoState& f = e_.fifoDyn[c];
      const auto ring = static_cast<std::uint32_t>(f.ring());
      const std::int64_t dA = cur_.fifoAccepted[ci] - base_.fifoAccepted[ci];
      const std::int64_t dE = cur_.fifoEmitted[ci] - base_.fifoEmitted[ci];
      VALPIPE_CHECK_MSG(dA == dE,
                        "steady window changed composite FIFO occupancy");
      const auto rot = static_cast<std::uint32_t>((nWin * dE) % f.ring());
      std::vector<Value> vals(ring);
      std::vector<std::int64_t> readyAt(ring), emitAt(ring);
      for (std::uint32_t i = 0; i < ring; ++i) {
        const std::uint32_t j = (i + rot) % ring;
        vals[j] = f.vals[i];
        readyAt[j] = f.readyAt[i] + K;
        emitAt[j] = f.emitAt[i] + K;
      }
      f.vals.swap(vals);
      f.readyAt.swap(readyAt);
      f.emitAt.swap(emitAt);
      f.head = (f.head + rot) % ring;
      f.accepted += nWin * dA;
      f.emitted += nWin * dE;
      f.lastAccept += K;
      f.lastEmit += K;
      for (std::uint32_t i = 0; i < f.count; ++i)
        f.vals[(f.head + i) % ring] = loop.value(c, f.emitted + i);
    }

    for (std::uint32_t o : outputCells_) {
      if (dF[o] <= 0) continue;
      const exec::Cell& cl = e_.eg.cell(o);
      const std::string& name = e_.eg.streamName(cl);
      std::vector<Value>& vals = e_.outputs[name];
      std::vector<std::int64_t>& times = e_.outputTimes[name];
      // This stream has exactly one Output cell (shared streams decline the
      // fast path), so indices [f_t0, f_t1) are the base window's arrivals.
      const std::vector<std::int64_t> winTimes(
          times.begin() + static_cast<std::ptrdiff_t>(base_.firings[o]),
          times.begin() + static_cast<std::ptrdiff_t>(cur_.firings[o]));
      const exec::Operand& in0 = e_.eg.operand(cl, 0);
      const std::int64_t first = static_cast<std::int64_t>(cur_.firings[o]);
      const std::int64_t total = nWin * dF[o];
      vals.reserve(vals.size() + static_cast<std::size_t>(total));
      times.reserve(times.size() + static_cast<std::size_t>(total));
      // The appended tokens are contiguous in the producer's index space;
      // read the vectorized block directly when the loop took the fast path.
      const double* blk = in0.isLiteral()
                              ? nullptr
                              : loop.realBlock(in0.producer, first);
      for (std::int64_t w = 1; w <= nWin; ++w) {
        const std::int64_t k0 = first + (w - 1) * dF[o];
        for (std::int64_t m = 0; m < dF[o]; ++m) {
          if (in0.isLiteral()) vals.push_back(in0.literal);
          else if (blk) vals.emplace_back(blk[k0 - first + m]);
          else vals.push_back(loop.value(in0.producer, k0 + m));
          times.push_back(winTimes[static_cast<std::size_t>(m)] + w * delta);
        }
      }
      e_.stop.advance(e_.stopSlotOf[o], total);
    }

    if (e_.gst) {
      guard::State& g = *e_.gst;
      for (std::size_t s = 0; s < g.sent.size(); ++s) {
        g.sent[s] += nWin * (cur_.gSent[s] - base_.gSent[s]);
        g.acked[s] += nWin * (cur_.gAcked[s] - base_.gAcked[s]);
        g.delivered[s] += nWin * (cur_.gDelivered[s] - base_.gDelivered[s]);
        g.consumed[s] += nWin * (cur_.gConsumed[s] - base_.gConsumed[s]);
      }
    }

    // Rebuild the wheel from the mirror at the shifted times.  Every pending
    // wake targets (t1, t1 + horizon], so every rebuilt one targets
    // (tNew, tNew + horizon] — nothing lands at tNew itself (a wake at the
    // current time would examine cells one step early) and nothing aliases.
    e_.rq->clear();
    std::set<std::pair<std::int64_t, std::uint32_t>> shifted;
    for (const auto& [at, cell] : pending_) {
      e_.rq->wake(cell, at + K);
      shifted.insert({at + K, cell});
    }
    pending_.swap(shifted);

    e_.lastFire_ += K;  // exact: the window contained a firing, so the
                        // replayed trajectory's last firing shifts by K
    e_.now = tNew;
    if (e_.gst) {
      e_.grd.onCompiledCheckpoint(e_.now);
      for (std::uint32_t c : composites_) {
        const exec::FifoState& f = e_.fifoDyn[c];
        e_.grd.onFifoFire(c, e_.eg.slotOf(e_.eg.cell(c), 0), f.accepted,
                          f.emitted, f.depth, e_.now);
      }
    }

    auto& info = e_.result.compiled;
    info.fastForwarded = true;
    info.detectedPeriod = delta;
    info.windowsSkipped += nWin;
    info.cyclesSkipped += K;
    info.firingsSkipped += static_cast<std::uint64_t>(nWin * dTotal);
    info.vectorized = info.vectorized || loop.vectorized();

    // Re-arm: the remaining run may admit another (small) jump, and the
    // detector is cheap once the state is already periodic.
    haveBase_ = false;
    attempts_ = 0;
  }

  SingleEngine& e_;
  const sched::SteadySchedule& ss_;
  std::vector<std::uint32_t> composites_;
  std::vector<std::uint32_t> sources_;
  std::vector<std::uint32_t> outputCells_;
  /// Mirror of the wheel's future content: (wake time, cell), deduplicated —
  /// exactly the granularity at which the wheel's content is observable
  /// (push-side and pop-side dedupe make duplicates invisible).
  std::set<std::pair<std::int64_t, std::uint32_t>> pending_;
  std::int64_t horizon_ = 0;
  std::int64_t arm_ = 0;
  std::int64_t maxSpan_ = 0;
  int attempts_ = 0;
  bool haveBase_ = false;
  bool done_ = false;
  Snap base_, cur_;
};

}  // namespace

void runCompiled(SingleEngine& e) {
  auto& info = e.result.compiled;
  info.requested = true;
  const sched::SteadySchedule ss = sched::computeSteadySchedule(e.eg);
  if (!ss.accepted) {
    if (e.opts.compiledFallback == core::CompiledFallback::Error)
      throw sched::ScheduleDeclined(
          ss.decline, "compiled scheduler declined (" +
                          std::string(sched::declineName(ss.decline)) +
                          "): " + ss.detail);
    info.reason = "declined (" + std::string(sched::declineName(ss.decline)) +
                  "): " + ss.detail + "; falling back to event-driven";
    e.runEventDriven();
    return;
  }
  info.accepted = true;
  info.hyperPeriod = ss.hyperPeriod;

  // Run-shape conditions a bulk jump cannot advance or must not skip; the
  // event loop still runs (under the Compiled label) so results stay right.
  std::string noJump;
  if (e.opts.faults)
    noJump = "fault injection active";
  else if (e.opts.placement)
    noJump = "placement routing active";
  else if (e.opts.trace || e.opts.metrics)
    noJump = "observability sinks active";
  if (noJump.empty())
    for (std::uint32_t c = 0; c < e.eg.size(); ++c)
      if (e.cfg.fuUnits[static_cast<std::size_t>(e.eg.cell(c).fu)] != 0) {
        noJump = "finite function-unit pool";
        break;
      }
  if (noJump.empty()) {
    std::set<std::string> seen;
    for (std::uint32_t c = 0; c < e.eg.size(); ++c) {
      const exec::Cell& cl = e.eg.cell(c);
      if (cl.op != dfg::Op::Output) continue;
      if (!seen.insert(e.eg.streamName(cl)).second) {
        noJump = "multiple Output cells share a stream";
        break;
      }
    }
  }
  if (!noJump.empty()) {
    info.reason = noJump + ": steady-state fast-forward disabled";
    e.runEventDriven();
    return;
  }

  CompiledDriver drv(e, ss);
  std::vector<std::pair<std::uint32_t, std::int64_t>> buf;
  drv.wakeBuf = &buf;
  e.wakeLog = &buf;
  e.runEventLoop(
      [&drv](const std::vector<std::uint32_t>&) { drv.afterStep(); });
  e.wakeLog = nullptr;
}

}  // namespace valpipe::machine::detail
