// The original synchronous stepper over dfg::Graph, kept verbatim.
//
// This is the pre-ExecutableGraph engine: it rescans every cell each
// instruction time and re-derives destination lists through dfg::Wiring.  It
// serves two purposes: (a) verification oracle — the equivalence tests assert
// the event-driven scheduler reproduces its MachineResult bit-for-bit; and
// (b) bench baseline — bench_engine_scaling reports the flattened engines'
// speedup against it.  Do not optimize this file; its value is that it stays
// the same.  (Two sanctioned additions: the fault-injection/guard/watchdog
// hooks — the resilience layer must cover every scheduler, the oracle
// included, and each hook is a null test when the run carries no plan or
// guard config — and the composite-FIFO firing rule, which the oracle must
// implement so fused graphs stay cross-checkable; it mirrors
// EngineBase::fireFifo over exec::FifoState and is inert on expanded
// graphs.)
#include <algorithm>
#include <optional>

#include "exec/fifo.hpp"
#include "guard/diagnosis.hpp"
#include "machine/engine.hpp"
#include "machine/engine_impl.hpp"
#include "support/check.hpp"

namespace valpipe::machine {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::Op;
using dfg::Wiring;

namespace {

/// One operand slot at a consumer port: holds at most one result packet, per
/// the static architecture's "at most one instance of each instruction is
/// active" discipline.
struct Slot {
  bool full = false;
  Value v{};
  std::int64_t readyAt = 0;  ///< when the packet becomes usable (routing)
  std::int64_t freedAt = 0;  ///< when the producer sees the acknowledge
};

struct CellState {
  std::vector<Slot> ports;
  Slot gate;
  std::int64_t emitted = 0;
  std::int64_t busyUntil = 0;  ///< cell cannot refire before this time
};

struct ReferenceEngine {
  const Graph& g;
  const MachineConfig& cfg;
  const Wiring wiring;
  const run::StreamMap& inputs;
  const RunOptions& opts;

  std::vector<CellState> state;
  /// Composite-FIFO ring state (Fifo nodes of depth >= 2 only); mutable
  /// because the const phase-A enabled() caches its accept/emit decision
  /// there, exactly as the flattened engines do through their fifoDyn
  /// pointer.
  mutable std::vector<exec::FifoState> fifo;
  std::array<std::vector<std::int64_t>, 4> fuFreeAt;  ///< per class unit pool
  MachineResult result;
  std::int64_t now = 0;
  /// Observability hooks (inert unless the run carries sinks); recording a
  /// schedule the flattened engines must reproduce is part of this file's
  /// oracle duty, and every call is a null test when off.
  obs::LaneProbe probe;
  /// Fault injector and invariant guards, same zero-cost contract as probe.
  fault::Injector inj;
  guard::LaneGuard grd;
  /// Flattened view used only to name arcs for guards and stall diagnosis
  /// (cell i of the flattening is node i of `g`); built lazily.
  std::optional<exec::ExecutableGraph> egv;
  std::optional<guard::State> gst;

  ReferenceEngine(const Graph& graph, const MachineConfig& config,
                  const run::StreamMap& in, const RunOptions& o)
      : g(graph), cfg(config), wiring(graph), inputs(in), opts(o) {
    inj = fault::Injector(opts.faults, 0);
    fifo.resize(g.size());
    for (NodeId id : g.ids()) {
      const Node& n = g.node(id);
      if (n.op == Op::Fifo && n.fifoDepth >= 2) {
        VALPIPE_CHECK_MSG(n.inputs.size() == 1 && !n.gate,
                          "composite FIFO cell must have one ungated operand");
        fifo[id.index].init(n.fifoDepth);
      }
    }
    if (opts.guards) {
      egv.emplace(g);
      gst.emplace(*egv);
      grd = guard::LaneGuard(opts.guards, &*gst, &*egv);
    }
    state.resize(g.size());
    result.firings.assign(g.size(), 0);
    for (NodeId id : g.ids()) {
      const Node& n = g.node(id);
      state[id.index].ports.resize(n.inputs.size());
      // Load-time tokens (counter-loop bootstraps): present at t = 0.
      for (std::size_t p = 0; p < n.inputs.size(); ++p)
        if (n.inputs[p].initial) {
          Slot& s = state[id.index].ports[p];
          s.full = true;
          s.v = *n.inputs[p].initial;
        }
      if (n.gate && n.gate->initial) {
        state[id.index].gate.full = true;
        state[id.index].gate.v = *n.gate->initial;
      }
    }
    for (int c = 0; c < 4; ++c) {
      const int units = cfg.fuUnits[c];
      fuFreeAt[c].assign(static_cast<std::size_t>(std::max(units, 0)), 0);
    }
    result.amFinal = opts.amInitial;
    // Fetched regions must exist even when nothing is pre-loaded (stores
    // fill them during the run).
    for (NodeId id : g.ids())
      if (g.node(id).op == Op::AmFetch) result.amFinal[g.node(id).streamName];
    if (opts.placement) {
      VALPIPE_CHECK_MSG(opts.placement->peOf.size() == g.size(),
                        "placement does not match the graph");
      result.pePackets.assign(static_cast<std::size_t>(opts.placement->peCount),
                              0);
    }
  }

  std::int64_t sourceLimit(const Node& n) const {
    std::int64_t perWave = n.tokensPerWave;
    if (n.op == Op::Input) {
      auto it = inputs.find(n.streamName);
      VALPIPE_CHECK_MSG(it != inputs.end(),
                        "missing input stream '" + n.streamName + "'");
      VALPIPE_CHECK_MSG(
          static_cast<std::int64_t>(it->second.size()) == perWave,
          "input '" + n.streamName + "' has wrong length");
    }
    if (n.op == Op::AmFetch) {
      // Reads the region sequentially as stores fill it: the limit is
      // whatever is available now, capped at one region read per wave.
      auto it = result.amFinal.find(n.streamName);
      VALPIPE_CHECK_MSG(it != result.amFinal.end(),
                        "missing array-memory contents '" + n.streamName + "'");
      return std::min<std::int64_t>(
          perWave * opts.waves, static_cast<std::int64_t>(it->second.size()));
    }
    return perWave * opts.waves;
  }

  Value sourceValue(const Node& n, std::int64_t k) const {
    const std::int64_t j = k % n.tokensPerWave;
    switch (n.op) {
      case Op::Input: return inputs.at(n.streamName)[static_cast<std::size_t>(j)];
      case Op::BoolSeq:
        return Value(static_cast<bool>(n.pattern.bits[static_cast<std::size_t>(j)]));
      case Op::IndexSeq:
        return Value(n.seqLo +
                     (j / n.seqRepeat) % (n.seqHi - n.seqLo + 1));
      case Op::AmFetch:
        return result.amFinal.at(n.streamName)[static_cast<std::size_t>(k)];
      default: VALPIPE_UNREACHABLE("not a source");
    }
  }

  bool slotReady(const Slot& s) const { return s.full && s.readyAt <= now; }
  bool slotFree(const Slot& s) const { return !s.full && s.freedAt <= now; }

  bool portReady(NodeId id, int port) const {
    const Node& n = g.node(id);
    if (port == dfg::kGatePort)
      return n.gate->isLiteral() || slotReady(state[id.index].gate);
    return n.inputs[port].isLiteral() || slotReady(state[id.index].ports[port]);
  }

  Value portValue(NodeId id, int port) const {
    const Node& n = g.node(id);
    if (port == dfg::kGatePort)
      return n.gate->isLiteral() ? n.gate->literal : state[id.index].gate.v;
    return n.inputs[port].isLiteral() ? n.inputs[port].literal
                                      : state[id.index].ports[port].v;
  }

  /// Destination slots this firing would deliver to must all be free.
  bool destsFree(NodeId id, std::optional<bool> gateVal) const {
    for (const dfg::DestRef& d : wiring.deliveredDests(id, gateVal)) {
      const Slot& s = d.port == dfg::kGatePort ? state[d.consumer.index].gate
                                               : state[d.consumer.index].ports[d.port];
      if (!slotFree(s)) return false;
    }
    return true;
  }

  /// True for a fused FIFO chain kept as one ring-buffer cell; depth-1
  /// FIFOs fall through to the generic identity path.
  static bool isComposite(const Node& n) {
    return n.op == Op::Fifo && n.fifoDepth >= 2;
  }

  exec::FifoTiming fifoTiming() const {
    return exec::FifoTiming::of(
        cfg.execLatency[static_cast<std::size_t>(dfg::fuClass(Op::Fifo))],
        cfg.routeDelay, cfg.ackDelay);
  }

  /// Enabled test (phase A, reads only start-of-cycle state).
  bool enabled(NodeId id) const {
    const Node& n = g.node(id);
    const CellState& cs = state[id.index];
    if (cs.busyUntil > now) return false;

    if (isComposite(n)) {
      // Phase-A decision caching, exactly as EngineBase::enabled: phase B
      // must act on the decision made against start-of-cycle state, or an
      // emit that frees this cell's input could enable an accept in the
      // same instruction time (impossible for the expanded chain).
      exec::FifoState& f = fifo[id.index];
      const exec::FifoTiming t = fifoTiming();
      f.doEmit = f.canEmit(t, now) && destsFree(id, std::nullopt);
      f.doAccept = portReady(id, 0) && f.canAccept(t, now);
      f.decidedAt = now;
      return f.doEmit || f.doAccept;
    }
    if (dfg::isSource(n.op)) {
      if (cs.emitted >= sourceLimit(n)) return false;
      return destsFree(id, std::nullopt);
    }
    std::optional<bool> gateVal;
    if (n.gate) {
      if (!portReady(id, dfg::kGatePort)) return false;
      gateVal = portValue(id, dfg::kGatePort).asBoolean();
    }
    if (n.op == Op::Merge) {
      if (!portReady(id, 0)) return false;
      const bool sel = portValue(id, 0).asBoolean();
      if (!portReady(id, sel ? 1 : 2)) return false;
    } else {
      for (int p = 0; p < static_cast<int>(n.inputs.size()); ++p)
        if (!portReady(id, p)) return false;
    }
    if (!dfg::producesResult(n.op)) return true;
    return destsFree(id, gateVal);
  }

  /// Flat operand-slot index of (id, port) in the lazily built flattening;
  /// only meaningful while guards are active (grd is inert otherwise).
  std::uint32_t guardSlot(NodeId id, int port) const {
    return egv ? egv->slotOf(egv->cell(id.index), port) : 0;
  }

  void consume(NodeId id, int port) {
    const Node& n = g.node(id);
    Slot& s = port == dfg::kGatePort ? state[id.index].gate
                                     : state[id.index].ports[port];
    const dfg::PortSrc& src =
        port == dfg::kGatePort ? *n.gate : n.inputs[port];
    if (src.isLiteral()) return;
    grd.onConsume(id.index, guardSlot(id, port), s.full, now);
    s.full = false;
    ++result.packets.ackPackets;
    if (inj.dropAck()) {
      // The acknowledge is lost: the producer never sees the slot freed.
      s.freedAt = fault::kLostPacket;
      return;
    }
    s.freedAt = now + cfg.ackDelay;
    probe.ack(src.producer.index, id.index, now, s.freedAt);
    grd.onAck(src.producer.index, guardSlot(id, port), now);
    // Acks are instantaneous freedAt stamps here, so a duplicated ack has
    // no physical effect — but the guards still see (and flag) it.
    if (inj.dupAck()) grd.onAck(src.producer.index, guardSlot(id, port), now);
  }

  /// Delivers a produced result into every destination slot.  Shared by the
  /// generic fire() and the composite-FIFO emit path so the two stay
  /// byte-identical in their packet accounting.
  void deliver(NodeId id, const Node& n, const Value& out,
               std::optional<bool> gateVal) {
    if (opts.placement)
      ++result.pePackets[static_cast<std::size_t>(opts.placement->of(id))];
    const std::int64_t arrive =
        now + cfg.latencyOf(n.op) + cfg.routeDelay + inj.execJitter();
    for (const dfg::DestRef& d : wiring.deliveredDests(id, gateVal)) {
      Slot& s = d.port == dfg::kGatePort ? state[d.consumer.index].gate
                                         : state[d.consumer.index].ports[d.port];
      // Packets between cells in different PEs traverse the distribution
      // network (Fig. 1) and pay the extra hop.
      std::int64_t at = arrive;
      if (opts.placement &&
          opts.placement->of(id) != opts.placement->of(d.consumer)) {
        at += cfg.interPeDelay;
        ++result.packets.networkResultPackets;
      }
      at += inj.deliveryDelay();
      ++result.packets.resultPackets;
      const std::uint32_t gslot = guardSlot(d.consumer, d.port);
      grd.onSend(id.index, gslot, now);
      // A dropped result still occupies the slot (the producer must stay
      // blocked) but never becomes ready; see EngineBase::deliver.
      if (inj.dropResult()) at = fault::kLostPacket;
      const int copies = inj.dupResult() ? 2 : 1;
      for (int k = 0; k < copies; ++k) {
        grd.onDeliver(d.consumer.index, gslot, s.full, at);
        VALPIPE_CHECK_MSG(!s.full,
                          "result packet delivered into occupied slot");
        s.full = true;
        s.v = out;
        s.readyAt = at;
      }
      probe.result(id.index, d.consumer.index, now, at);
    }
  }

  /// Phase B for a composite FIFO cell: emit from the ring (counted as the
  /// firing) then accept into it, per the cached phase-A decision.  Mirrors
  /// EngineBase::fireFifo.
  void fireFifo(NodeId id, const Node& n) {
    exec::FifoState& f = fifo[id.index];
    VALPIPE_CHECK_MSG(f.decidedAt == now,
                      "composite FIFO fired without a phase-A decision");
    CellState& cs = state[id.index];
    cs.busyUntil = now + 1;
    const exec::FifoTiming t = fifoTiming();
    if (f.doEmit) {
      ++result.firings[id.index];
      ++result.totalFirings;
      ++result.packets
            .opPacketsByClass[static_cast<std::size_t>(dfg::fuClass(n.op))];
      probe.fire(id.index, now, cfg.latencyOf(n.op));
      const Value v = f.pop(now);
      deliver(id, n, v, std::nullopt);
    }
    if (f.doAccept) {
      const Value v = portValue(id, 0);
      f.push(v, t, now);
      consume(id, 0);
    }
    grd.onFifoFire(id.index, guardSlot(id, 0), f.accepted, f.emitted, f.depth,
                   now);
  }

  /// Phase B: applies the firing of `id` at time `now`.
  void fire(NodeId id) {
    const Node& n = g.node(id);
    if (isComposite(n)) return fireFifo(id, n);
    CellState& cs = state[id.index];
    ++result.firings[id.index];
    ++result.totalFirings;
    ++result.packets.opPacketsByClass[static_cast<std::size_t>(dfg::fuClass(n.op))];
    cs.busyUntil = now + 1;
    probe.fire(id.index, now, cfg.latencyOf(n.op));

    std::optional<Value> out;
    std::optional<bool> gateVal;

    if (dfg::isSource(n.op)) {
      out = sourceValue(n, cs.emitted);
      ++cs.emitted;
    } else {
      if (n.gate) {
        gateVal = portValue(id, dfg::kGatePort).asBoolean();
        consume(id, dfg::kGatePort);
      }
      auto in = [&](int p) { return portValue(id, p); };
      switch (n.op) {
        case Op::Id: out = in(0); break;
        // A depth-1 FIFO is a single identity stage; only depth >= 2 runs
        // through the composite ring-buffer path above.
        case Op::Fifo: out = in(0); break;
        case Op::Not: out = ops::logicalNot(in(0)); break;
        case Op::Neg: out = ops::neg(in(0)); break;
        case Op::Abs: out = ops::abs(in(0)); break;
        case Op::Add: out = ops::add(in(0), in(1)); break;
        case Op::Sub: out = ops::sub(in(0), in(1)); break;
        case Op::Mul: out = ops::mul(in(0), in(1)); break;
        case Op::Div: out = ops::div(in(0), in(1)); break;
        case Op::Min: out = ops::min(in(0), in(1)); break;
        case Op::Max: out = ops::max(in(0), in(1)); break;
        case Op::Mod: out = ops::mod(in(0), in(1)); break;
        case Op::Lt: out = ops::lt(in(0), in(1)); break;
        case Op::Le: out = ops::le(in(0), in(1)); break;
        case Op::Gt: out = ops::gt(in(0), in(1)); break;
        case Op::Ge: out = ops::ge(in(0), in(1)); break;
        case Op::Eq: out = ops::eq(in(0), in(1)); break;
        case Op::Ne: out = ops::ne(in(0), in(1)); break;
        case Op::And: out = ops::logicalAnd(in(0), in(1)); break;
        case Op::Or: out = ops::logicalOr(in(0), in(1)); break;
        case Op::Merge: {
          const bool sel = in(0).asBoolean();
          out = in(sel ? 1 : 2);
          consume(id, 0);
          consume(id, sel ? 1 : 2);
          break;
        }
        case Op::Output: {
          result.outputs[n.streamName].push_back(in(0));
          result.outputTimes[n.streamName].push_back(now);
          break;
        }
        case Op::Sink: break;
        case Op::AmStore: result.amFinal[n.streamName].push_back(in(0)); break;
        default: VALPIPE_UNREACHABLE("unhandled op in machine engine");
      }
      if (n.op != Op::Merge)
        for (int p = 0; p < static_cast<int>(n.inputs.size()); ++p)
          consume(id, p);
    }

    if (!out.has_value()) return;
    deliver(id, n, *out, gateVal);
  }

  /// Tries to reserve a function unit of the op's class (phase A grant).
  bool grantUnit(Op op) {
    const auto c = static_cast<std::size_t>(dfg::fuClass(op));
    if (cfg.fuUnits[c] == 0) {  // unlimited
      result.fuBusy[c] += static_cast<std::uint64_t>(cfg.execLatency[c]);
      return true;
    }
    for (std::int64_t& freeAt : fuFreeAt[c]) {
      if (freeAt <= now) {
        freeAt = now + cfg.execLatency[c];
        result.fuBusy[c] += static_cast<std::uint64_t>(cfg.execLatency[c]);
        return true;
      }
    }
    return false;
  }

  /// Earliest release time of the op's (finite) unit class.
  std::int64_t unitNextFree(Op op) const {
    const auto c = static_cast<std::size_t>(dfg::fuClass(op));
    return *std::min_element(fuFreeAt[c].begin(), fuFreeAt[c].end());
  }

  bool outputsComplete() const {
    if (opts.expectedOutputs.empty()) return false;
    for (const auto& [name, want] : opts.expectedOutputs) {
      auto it = result.outputs.find(name);
      const std::int64_t have =
          it == result.outputs.end()
              ? 0
              : static_cast<std::int64_t>(it->second.size());
      if (have < want) return false;
    }
    return true;
  }

  /// Flattens the pointer-walking state into the shared exec form and
  /// throws the diagnosed StallError (cold path).
  [[noreturn]] void throwStall(const char* why) {
    if (!egv) egv.emplace(g);
    std::vector<exec::Slot> flat(egv->slotCount());
    std::vector<exec::CellDyn> dyn(g.size());
    const auto put = [&](const Slot& s, std::uint32_t slot) {
      flat[slot].full = s.full;
      flat[slot].v = s.v;
      flat[slot].readyAt = s.readyAt;
      flat[slot].freedAt = s.freedAt;
    };
    for (NodeId id : g.ids()) {
      const exec::Cell& c = egv->cell(id.index);
      const CellState& cs = state[id.index];
      for (std::size_t p = 0; p < cs.ports.size(); ++p)
        put(cs.ports[p], egv->slotOf(c, static_cast<int>(p)));
      if (g.node(id).gate) put(cs.gate, egv->slotOf(c, dfg::kGatePort));
      dyn[id.index].emitted = cs.emitted;
      dyn[id.index].busyUntil = cs.busyUntil;
    }
    std::vector<guard::OutputProgress> progress;
    for (const auto& [name, want] : opts.expectedOutputs) {
      auto it = result.outputs.find(name);
      progress.push_back(
          {name, want,
           it == result.outputs.end()
               ? 0
               : static_cast<std::int64_t>(it->second.size())});
    }
    throw run::StallError(
        now, guard::diagnoseStall(why, &g, *egv, flat.data(), dyn.data(), now,
                                  progress, inj.counters));
  }

  void run() {
    const std::size_t n = g.size();
    std::vector<NodeId> toFire;
    toFire.reserve(n);
    // Quiescence: nothing fired for longer than any in-flight delay can
    // span — injected delays included; the caller's watchdog may lengthen
    // the window further.
    std::int64_t settle =
        2 + cfg.routeDelay + cfg.ackDelay +
        *std::max_element(cfg.execLatency.begin(), cfg.execLatency.end()) +
        inj.maxExtraDelay();
    // A composite FIFO can sit with tokens maturing inside its ring while
    // no cell fires; widen the window so that gap is not read as deadlock.
    int maxFifoDepth = 0;
    for (NodeId id : g.ids())
      if (g.node(id).op == Op::Fifo)
        maxFifoDepth = std::max(maxFifoDepth, g.node(id).fifoDepth);
    settle += exec::fifoSettleSlack(maxFifoDepth, fifoTiming());
    if (opts.watchdog > 0) settle = std::max(settle, opts.watchdog);
    const std::int64_t floorTime = inj.quiesceFloor();
    const std::int64_t cap = opts.maxInstructionTimes > 0
                                 ? std::min(opts.maxInstructionTimes,
                                            opts.maxCycles)
                                 : opts.maxCycles;
    std::int64_t idle = 0;

    for (now = 0; now < cap; ++now) {
      // Phase A: enabling decisions against start-of-cycle state, with
      // rotating priority for fairness under FU contention.
      toFire.clear();
      const std::size_t start = static_cast<std::size_t>(now) % n;
      for (std::size_t k = 0; k < n; ++k) {
        const NodeId id{static_cast<std::uint32_t>((start + k) % n)};
        if (!enabled(id)) continue;
        if (const std::int64_t until =
                inj.outageUntil(dfg::fuClass(g.node(id).op), now);
            until > now) {
          probe.denied(id.index, now, until);
          continue;
        }
        if (!grantUnit(g.node(id).op)) {
          probe.denied(id.index, now, unitNextFree(g.node(id).op));
          continue;
        }
        toFire.push_back(id);
      }
      // Phase B: apply.
      for (NodeId id : toFire) fire(id);

      if (outputsComplete()) {
        result.completed = true;
        ++now;
        break;
      }
      idle = toFire.empty() ? idle + 1 : 0;
      if (idle > settle && now >= floorTime) {
        result.completed = opts.expectedOutputs.empty() || outputsComplete();
        if (!result.completed) {
          if (opts.watchdog > 0)
            throwStall("watchdog: no cell fired within the idle window");
          result.note = "deadlock: outputs incomplete";
        }
        break;
      }
    }
    if (!result.completed && opts.maxInstructionTimes > 0 && now >= cap &&
        !opts.expectedOutputs.empty())
      throwStall("instruction-time cap reached with outputs incomplete");
    if (now >= opts.maxCycles) result.note = "maxCycles exceeded";
    result.faults = inj.counters;
    result.cycles = now;
  }
};

}  // namespace

MachineResult detail::simulateReference(const dfg::Graph& lowered,
                                        const MachineConfig& cfg,
                                        const run::StreamMap& inputs,
                                        const RunOptions& opts) {
  ReferenceEngine engine(lowered, cfg, inputs, opts);
  if (opts.trace) opts.trace->begin(1, detail::traceMetaFor(lowered, opts));
  if (opts.metrics) opts.metrics->begin(1, lowered.size());
  engine.probe = obs::LaneProbe(opts.trace, opts.metrics, 0);
  engine.run();
  if (opts.metrics)
    opts.metrics->finishRun("Reference", engine.result.cycles,
                            engine.result.fuBusy);
  if (opts.trace) opts.trace->seal();
  return std::move(engine.result);
}

}  // namespace valpipe::machine
