// Timing and resource model of the static dataflow machine (§2, Fig. 1).
//
// The unit profile realizes the paper's §3 abstraction: an instruction's
// minimum repetition period is two instruction times (fire, then wait for the
// successor's firing — whose acknowledgment frees the destination slot — to
// become visible one cycle later).  A fully pipelined code structure
// therefore peaks at 0.5 results per instruction time per cell.
//
// The machine profile adds multi-cycle function-unit latencies, routing
// network transit, acknowledge transit and finite function-unit pools, for
// architecture-level studies (utilization, packet traffic, §2's array-memory
// traffic share).
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "dfg/opcode.hpp"

namespace valpipe::machine {

struct MachineConfig {
  /// Execution latency per functional-unit class, in instruction times.
  std::array<int, 4> execLatency{1, 1, 1, 1};  // indexed by FuClass
  /// Result-packet transit through the routing network.
  int routeDelay = 0;
  /// Acknowledge-packet transit back to the producer.
  int ackDelay = 0;
  /// Extra transit for result packets whose producer and consumer cells sit
  /// in different processing elements (the Fig. 1 distribution network);
  /// only applies when a Placement is supplied to the run.
  int interPeDelay = 0;
  /// Function units available per class; 0 means unlimited (no contention).
  std::array<int, 4> fuUnits{0, 0, 0, 0};

  int latencyOf(dfg::Op op) const {
    return execLatency[static_cast<std::size_t>(dfg::fuClass(op))];
  }
  int unitsOf(dfg::FuClass c) const {
    return fuUnits[static_cast<std::size_t>(c)];
  }

  /// §3 abstraction: unit latencies, free routing, unlimited units.
  static MachineConfig unit() { return MachineConfig{}; }

  /// A plausible hardware point: 4-cycle FPU, 2-cycle ALU, 6-cycle array
  /// memory, 1-cycle routing each way.  Pools are sized by the per-class
  /// unit counts given here (`fpus`/`alus`/`ams`); 0 leaves a class
  /// unlimited, so the default is contention-free.
  static MachineConfig hardware(int fpus = 0, int alus = 0, int ams = 0) {
    MachineConfig c;
    c.execLatency = {1, 2, 4, 6};  // Pe, Alu, Fpu, Am
    c.routeDelay = 1;
    c.ackDelay = 1;
    c.fuUnits = {0, alus, fpus, ams};
    return c;
  }
};

}  // namespace valpipe::machine
