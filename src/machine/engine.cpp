// Timed machine simulation over the flattened exec::ExecutableGraph.
//
// The single-threaded lane (state, hooks, and both serial run loops) lives
// in detail::SingleEngine (machine/engine_single.hpp); the firing discipline
// it instantiates is detail::EngineBase (machine/engine_impl.hpp), shared
// with the parallel engine.  This file supplies the MachineResult rate
// helpers and the one simulate() entry point that dispatches on
// RunOptions::scheduler:
//
//   Reference           → machine/engine_reference.cpp (pointer-walking
//                         oracle over dfg::Graph);
//   ParallelEventDriven → machine/engine_parallel.cpp (sharded lanes);
//   Synchronous         → SingleEngine::runSynchronous (full rescan);
//   EventDriven         → SingleEngine::runEventDriven (time wheel);
//   Compiled            → detail::runCompiled (machine/engine_compiled.cpp):
//                         the event loop with a steady-state detector hooked
//                         in, fast-forwarding whole periods through the
//                         sched::SteadySchedule IR when the graph admits a
//                         static schedule, falling back per
//                         RunOptions::compiledFallback when it does not.
#include "machine/engine.hpp"

#include <utility>

#include "exec/executable_graph.hpp"
#include "machine/engine_single.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace valpipe::machine {

using exec::ExecutableGraph;

double MachineResult::overallRate(const std::string& stream) const {
  auto it = outputTimes.find(stream);
  if (it == outputTimes.end() || it->second.size() < 2) return 0.0;
  const auto& t = it->second;
  return static_cast<double>(t.size() - 1) /
         static_cast<double>(t.back() - t.front());
}

double MachineResult::steadyRate(const std::string& stream) const {
  auto it = outputTimes.find(stream);
  if (it == outputTimes.end() || it->second.size() < 8) return overallRate(stream);
  const auto& t = it->second;
  const std::size_t i1 = t.size() / 4;
  const std::size_t i2 = 3 * t.size() / 4;
  if (t[i2] == t[i1]) return 0.0;
  return static_cast<double>(i2 - i1) / static_cast<double>(t[i2] - t[i1]);
}

MachineResult simulate(const dfg::Graph& lowered, const MachineConfig& cfg,
                       const run::StreamMap& inputs, const RunOptions& opts) {
  // Both lowering paths are accepted: expanded graphs (dfg::expandFifos, no
  // Fifo nodes) and fused graphs whose composite Fifo cells the engines fire
  // through the timing-equivalent ring-buffer rule (exec/fifo.hpp).
  if (opts.scheduler == SchedulerKind::Reference)
    return detail::simulateReference(lowered, cfg, inputs, opts);
  const ExecutableGraph eg(lowered);
  if (opts.scheduler == SchedulerKind::ParallelEventDriven)
    return detail::simulateParallel(lowered, eg, cfg, inputs, opts);
  detail::SingleEngine engine(eg, cfg, inputs, opts);
  engine.lowered = &lowered;
  const char* label = "EventDriven";
  if (opts.trace) opts.trace->begin(1, detail::traceMetaFor(lowered, opts));
  if (opts.metrics) opts.metrics->begin(1, eg.size());
  engine.probe = obs::LaneProbe(opts.trace, opts.metrics, 0);
  switch (opts.scheduler) {
    case SchedulerKind::Synchronous:
      label = "Synchronous";
      engine.runSynchronous();
      break;
    case SchedulerKind::Compiled:
      label = "Compiled";
      detail::runCompiled(engine);
      break;
    default:
      engine.runEventDriven();
      break;
  }
  if (opts.metrics)
    opts.metrics->finishRun(label, engine.result.cycles, engine.result.fuBusy);
  if (opts.trace) opts.trace->seal();
  return std::move(engine.result);
}

}  // namespace valpipe::machine
