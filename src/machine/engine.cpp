// Timed machine simulation over the flattened exec::ExecutableGraph.
//
// One engine core implements the §2/§3 firing discipline (enabling test,
// firing effects, acknowledge bookkeeping); two run loops drive it:
//
//   runSynchronous  — rescans every cell each instruction time with rotating
//                     priority, the original stepper's schedule on the flat
//                     representation;
//   runEventDriven  — examines only cells woken by an event (token arrival,
//                     acknowledge, function-unit release, own-firing
//                     completion, array-memory store), popped per instruction
//                     time from exec::ReadyQueue and scanned in the same
//                     rotating priority order.
//
// Both phases of an examined instruction time are kept two-phase (all
// enabling decisions before any firing is applied), and candidate cells are
// ordered exactly as the full rescan orders them, so every MachineResult
// field — outputs, arrival times, per-cell firings, cycles, packet and
// busy-time counters — is bit-identical across the schedulers and the
// pre-refactor Reference stepper (machine/engine_reference.cpp).
#include "machine/engine.hpp"

#include <algorithm>
#include <optional>

#include "dfg/lower.hpp"
#include "exec/cell_state.hpp"
#include "exec/executable_graph.hpp"
#include "exec/fu_pool.hpp"
#include "exec/ops.hpp"
#include "exec/ready_queue.hpp"
#include "exec/router.hpp"
#include "exec/stop.hpp"
#include "support/check.hpp"

namespace valpipe::machine {

using dfg::Op;
using exec::Cell;
using exec::CellDyn;
using exec::Dest;
using exec::DestSpan;
using exec::ExecutableGraph;
using exec::Operand;
using exec::Slot;

namespace {

struct Engine {
  const ExecutableGraph& eg;
  const MachineConfig& cfg;
  const RunOptions& opts;

  std::vector<Slot> slots;     ///< one per operand slot (gates included)
  std::vector<CellDyn> cells;  ///< per-cell emitted / busyUntil
  exec::FuPool fu;
  exec::Router router;
  exec::StopCondition stop;
  exec::ReadyQueue* rq = nullptr;  ///< set while running event-driven

  /// Input / AmFetch cells: the backing stream read by sourceValue.
  std::vector<const std::vector<Value>*> sourceData;
  /// Output cells: StopCondition counter index (-1 when unexpected).
  std::vector<std::int32_t> stopSlot;

  MachineResult result;
  std::int64_t now = 0;

  Engine(const ExecutableGraph& graph, const MachineConfig& config,
         const StreamMap& inputs, const RunOptions& o)
      : eg(graph),
        cfg(config),
        opts(o),
        slots(graph.slotCount()),
        cells(graph.size()),
        fu(config.fuUnits, config.execLatency),
        stop(o.expectedOutputs),
        sourceData(graph.size(), nullptr),
        stopSlot(graph.size(), -1) {
    result.firings.assign(eg.size(), 0);
    // Load-time tokens (counter-loop bootstraps): present at t = 0.
    for (std::uint32_t s = 0; s < eg.slotCount(); ++s) {
      const Operand& o2 = eg.operandAt(s);
      if (o2.hasInitial) {
        slots[s].full = true;
        slots[s].v = o2.initial;
      }
    }
    result.amFinal = opts.amInitial;
    // Fetched regions must exist even when nothing is pre-loaded (stores
    // fill them during the run); resolve stream bindings once.
    for (std::uint32_t c = 0; c < eg.size(); ++c) {
      const Cell& cl = eg.cell(c);
      if (cl.op == Op::AmFetch) result.amFinal[eg.streamName(cl)];
    }
    for (std::uint32_t c = 0; c < eg.size(); ++c) {
      const Cell& cl = eg.cell(c);
      if (cl.op == Op::Input) {
        auto it = inputs.find(eg.streamName(cl));
        VALPIPE_CHECK_MSG(it != inputs.end(), "missing input stream '" +
                                                  eg.streamName(cl) + "'");
        VALPIPE_CHECK_MSG(static_cast<std::int64_t>(it->second.size()) ==
                              cl.tokensPerWave,
                          "input '" + eg.streamName(cl) + "' has wrong length");
        sourceData[c] = &it->second;
      } else if (cl.op == Op::AmFetch) {
        sourceData[c] = &result.amFinal.at(eg.streamName(cl));
      } else if (cl.op == Op::Output) {
        stopSlot[c] = stop.slotFor(eg.streamName(cl));
      }
    }
    if (opts.placement) {
      VALPIPE_CHECK_MSG(opts.placement->peOf.size() == eg.size(),
                        "placement does not match the graph");
      router = exec::Router(opts.placement->peOf, opts.placement->peCount,
                            cfg.interPeDelay);
    }
  }

  void wake(std::uint32_t cell, std::int64_t at) {
    if (rq) rq->wake(cell, at);
  }

  std::int64_t sourceLimit(std::uint32_t c, const Cell& cl) const {
    if (cl.op == Op::AmFetch) {
      // Reads the region sequentially as stores fill it: the limit is
      // whatever is available now, capped at one region read per wave.
      return std::min<std::int64_t>(
          cl.tokensPerWave * opts.waves,
          static_cast<std::int64_t>(sourceData[c]->size()));
    }
    return cl.tokensPerWave * opts.waves;
  }

  Value sourceValue(std::uint32_t c, const Cell& cl, std::int64_t k) const {
    const std::int64_t j = k % cl.tokensPerWave;
    switch (cl.op) {
      case Op::Input:
        return (*sourceData[c])[static_cast<std::size_t>(j)];
      case Op::BoolSeq: return Value(eg.patternBit(cl, j));
      case Op::IndexSeq:
        return Value(cl.seqLo + (j / cl.seqRepeat) % (cl.seqHi - cl.seqLo + 1));
      case Op::AmFetch:
        return (*sourceData[c])[static_cast<std::size_t>(k)];
      default: VALPIPE_UNREACHABLE("not a source");
    }
  }

  bool slotReady(const Slot& s) const { return s.full && s.readyAt <= now; }
  bool slotFree(const Slot& s) const { return !s.full && s.freedAt <= now; }

  bool portReady(const Cell& cl, int port) const {
    const std::uint32_t si = eg.slotOf(cl, port);
    return eg.operandAt(si).isLiteral() || slotReady(slots[si]);
  }

  Value portValue(const Cell& cl, int port) const {
    const std::uint32_t si = eg.slotOf(cl, port);
    const Operand& o = eg.operandAt(si);
    return o.isLiteral() ? o.literal : slots[si].v;
  }

  bool destsFree(DestSpan ds) const {
    for (const Dest& d : ds)
      if (!slotFree(slots[d.slot])) return false;
    return true;
  }

  /// Enabled test (phase A, reads only start-of-cycle state).
  bool enabled(std::uint32_t c) const {
    const Cell& cl = eg.cell(c);
    const CellDyn& dyn = cells[c];
    if (dyn.busyUntil > now) return false;

    if (dfg::isSource(cl.op)) {
      if (dyn.emitted >= sourceLimit(c, cl)) return false;
      return destsFree(eg.alwaysDests(cl));
    }
    std::optional<bool> gateVal;
    if (cl.hasGate) {
      if (!portReady(cl, exec::kGatePort)) return false;
      gateVal = portValue(cl, exec::kGatePort).asBoolean();
    }
    if (cl.op == Op::Merge) {
      if (!portReady(cl, 0)) return false;
      const bool sel = portValue(cl, 0).asBoolean();
      if (!portReady(cl, sel ? 1 : 2)) return false;
    } else {
      for (int p = 0; p < static_cast<int>(cl.numPorts); ++p)
        if (!portReady(cl, p)) return false;
    }
    if (!dfg::producesResult(cl.op)) return true;
    if (!destsFree(eg.alwaysDests(cl))) return false;
    return !gateVal || destsFree(eg.taggedDests(cl, *gateVal));
  }

  bool consumedAny = false;   ///< current firing consumed a non-literal port
  bool deliveredAny = false;  ///< current firing filled a destination slot

  void consume(const Cell& cl, int port) {
    const std::uint32_t si = eg.slotOf(cl, port);
    const Operand& o = eg.operandAt(si);
    if (o.isLiteral()) return;
    Slot& s = slots[si];
    s.full = false;
    s.freedAt = now + cfg.ackDelay;
    ++result.packets.ackPackets;
    consumedAny = true;
    // The acknowledge frees the producer's destination: it may re-enable
    // from the instruction time the ack becomes visible.
    wake(o.producer, std::max<std::int64_t>(s.freedAt, now + 1));
  }

  void deliver(DestSpan ds, const Value& v, std::uint32_t from,
               std::int64_t arrive) {
    if (!ds.empty()) deliveredAny = true;
    for (const Dest& d : ds) {
      Slot& s = slots[d.slot];
      VALPIPE_CHECK_MSG(!s.full, "result packet delivered into occupied slot");
      s.full = true;
      s.v = v;
      // Packets between cells in different PEs traverse the distribution
      // network (Fig. 1) and pay the extra hop.
      const std::int64_t at =
          arrive + router.extraDelay(from, d.consumer, result.packets);
      s.readyAt = at;
      ++result.packets.resultPackets;
      wake(d.consumer, std::max<std::int64_t>(at, now + 1));
    }
  }

  /// Phase B: applies the firing of `c` at time `now`.
  void fire(std::uint32_t c) {
    const Cell& cl = eg.cell(c);
    CellDyn& dyn = cells[c];
    ++result.firings[c];
    ++result.totalFirings;
    ++result.packets.opPacketsByClass[static_cast<std::size_t>(cl.fu)];
    dyn.busyUntil = now + 1;
    consumedAny = deliveredAny = false;

    std::optional<Value> out;
    std::optional<bool> gateVal;

    if (dfg::isSource(cl.op)) {
      out = sourceValue(c, cl, dyn.emitted);
      ++dyn.emitted;
    } else {
      if (cl.hasGate) {
        gateVal = portValue(cl, exec::kGatePort).asBoolean();
        consume(cl, exec::kGatePort);
      }
      auto in = [&](int p) { return portValue(cl, p); };
      switch (cl.op) {
        case Op::Merge: {
          const bool sel = in(0).asBoolean();
          out = in(sel ? 1 : 2);
          consume(cl, 0);
          consume(cl, sel ? 1 : 2);
          break;
        }
        case Op::Output: {
          result.outputs[eg.streamName(cl)].push_back(in(0));
          result.outputTimes[eg.streamName(cl)].push_back(now);
          stop.onOutput(stopSlot[c]);
          break;
        }
        case Op::Sink: break;
        case Op::AmStore: {
          result.amFinal[eg.streamName(cl)].push_back(in(0));
          // The store extends the region: matching fetchers may re-enable.
          for (std::uint32_t f : eg.fetchersOf(cl)) wake(f, now + 1);
          break;
        }
        default: out = exec::applyPure(cl.op, in); break;
      }
      if (cl.op != Op::Merge)
        for (int p = 0; p < static_cast<int>(cl.numPorts); ++p) consume(cl, p);
    }

    if (out.has_value()) {
      router.noteFiring(c);
      const std::int64_t arrive = now +
                                  cfg.execLatency[static_cast<std::size_t>(cl.fu)] +
                                  cfg.routeDelay;
      deliver(eg.alwaysDests(cl), *out, c, arrive);
      if (gateVal) deliver(eg.taggedDests(cl, *gateVal), *out, c, arrive);
    }
    // A firing that consumed a port or filled a destination will be re-woken
    // by the matching refill / acknowledge; only a firing with neither (a
    // source with no destinations, an all-literal consumer, ...) can be
    // enabled again at now + 1 with no further event.
    if (!consumedAny && !deliveredAny) wake(c, now + 1);
  }

  std::int64_t settleWindow() const {
    return exec::quiesceWindow(
        cfg.routeDelay, cfg.ackDelay,
        *std::max_element(cfg.execLatency.begin(), cfg.execLatency.end()));
  }

  void finish() {
    if (now >= opts.maxCycles) result.note = "maxCycles exceeded";
    result.cycles = now;
    result.fuBusy = fu.busy();
    if (router.active()) result.pePackets = router.pePackets();
  }

  /// Original schedule: rescan all cells each instruction time with rotating
  /// priority for fairness under FU contention.
  void runSynchronous() {
    const std::size_t n = eg.size();
    std::vector<std::uint32_t> toFire;
    toFire.reserve(n);
    const std::int64_t settle = settleWindow();
    std::int64_t idle = 0;

    for (now = 0; now < opts.maxCycles; ++now) {
      toFire.clear();
      const std::size_t start =
          n == 0 ? 0 : static_cast<std::size_t>(now) % n;
      for (std::size_t k = 0; k < n; ++k) {
        const auto id = static_cast<std::uint32_t>((start + k) % n);
        if (!enabled(id)) continue;
        if (!fu.tryGrant(eg.cell(id).fu, now)) continue;
        toFire.push_back(id);
      }
      for (std::uint32_t id : toFire) fire(id);

      if (stop.outputsComplete()) {
        result.completed = true;
        ++now;
        break;
      }
      idle = toFire.empty() ? idle + 1 : 0;
      if (idle > settle) {
        result.completed = stop.quiescentOk();
        if (!result.completed) result.note = "deadlock: outputs incomplete";
        break;
      }
    }
    finish();
  }

  /// Event-driven schedule: advance directly to the next instruction time
  /// with a woken cell; candidates are examined in the same rotating order
  /// the rescan would use, so the two loops stay bit-identical.
  void runEventDriven() {
    const std::size_t n = eg.size();
    const std::int64_t settle = settleWindow();
    // Longest forward distance of any wake: a delivered packet's transit
    // (execution + routing + the inter-PE hop), an acknowledge, or a
    // function-unit release — the wheel must span it without aliasing.
    const std::int64_t horizon =
        std::max<std::int64_t>(std::max<std::int64_t>(1, cfg.ackDelay),
                               *std::max_element(cfg.execLatency.begin(),
                                                 cfg.execLatency.end()) +
                                   cfg.routeDelay + cfg.interPeDelay);
    exec::ReadyQueue queue(n, horizon);
    rq = &queue;
    for (std::uint32_t c = 0; c < n; ++c) queue.wake(c, 0);

    std::vector<std::uint32_t> cand;
    std::vector<std::uint32_t> ordered;
    std::vector<std::uint32_t> toFire;
    cand.reserve(n);
    ordered.reserve(n);
    toFire.reserve(n);
    std::vector<std::int64_t> candAt(n, -1);  ///< stamp for dense ordering
    std::int64_t lastFire = -1;  // so the first quiescence break lands at
                                 // `settle`, like an all-idle rescan
    for (;;) {
      const std::int64_t tQuiesce = lastFire + settle + 1;
      if (queue.empty() || queue.nextTime() > tQuiesce) {
        // Nothing can fire before the idle counter trips.
        if (tQuiesce >= opts.maxCycles) {
          now = opts.maxCycles;
          break;
        }
        now = tQuiesce;
        result.completed = stop.quiescentOk();
        if (!result.completed) result.note = "deadlock: outputs incomplete";
        break;
      }
      if (queue.nextTime() >= opts.maxCycles) {
        now = opts.maxCycles;
        break;
      }
      now = queue.pop(cand);

      // Rotating priority: same scan order as the rescan starting at now % n.
      const std::uint32_t start =
          static_cast<std::uint32_t>(static_cast<std::size_t>(now) % n);
      if (cand.size() * 8 >= n) {
        // Dense step: stamp the candidates and collect them by one pass in
        // rotation order — cheaper than sorting when most cells are awake.
        for (std::uint32_t id : cand) candAt[id] = now;
        ordered.clear();
        for (std::size_t k = 0; k < n; ++k) {
          const auto id = static_cast<std::uint32_t>(
              (start + k) % static_cast<std::uint32_t>(n));
          if (candAt[id] == now) ordered.push_back(id);
        }
        cand.swap(ordered);
      } else {
        std::sort(cand.begin(), cand.end(),
                  [start, n](std::uint32_t a, std::uint32_t b) {
                    const std::uint32_t ra =
                        a >= start ? a - start
                                   : a + static_cast<std::uint32_t>(n) - start;
                    const std::uint32_t rb =
                        b >= start ? b - start
                                   : b + static_cast<std::uint32_t>(n) - start;
                    return ra < rb;
                  });
      }
      // Phase A: enabling + FU grants against start-of-cycle state.
      toFire.clear();
      for (std::uint32_t id : cand) {
        if (!enabled(id)) continue;
        const dfg::FuClass fc = eg.cell(id).fu;
        if (fu.tryGrant(fc, now))
          toFire.push_back(id);
        else
          wake(id, fu.nextFree(fc));  // retry when a unit frees
      }
      // Phase B: apply.
      for (std::uint32_t id : toFire) fire(id);

      if (!toFire.empty()) lastFire = now;
      if (stop.outputsComplete()) {
        result.completed = true;
        ++now;
        break;
      }
    }
    rq = nullptr;
    finish();
  }
};

}  // namespace

double MachineResult::overallRate(const std::string& stream) const {
  auto it = outputTimes.find(stream);
  if (it == outputTimes.end() || it->second.size() < 2) return 0.0;
  const auto& t = it->second;
  return static_cast<double>(t.size() - 1) /
         static_cast<double>(t.back() - t.front());
}

double MachineResult::steadyRate(const std::string& stream) const {
  auto it = outputTimes.find(stream);
  if (it == outputTimes.end() || it->second.size() < 8) return overallRate(stream);
  const auto& t = it->second;
  const std::size_t i1 = t.size() / 4;
  const std::size_t i2 = 3 * t.size() / 4;
  if (t[i2] == t[i1]) return 0.0;
  return static_cast<double>(i2 - i1) / static_cast<double>(t[i2] - t[i1]);
}

MachineResult simulate(const dfg::Graph& lowered, const MachineConfig& cfg,
                       const StreamMap& inputs, const RunOptions& opts) {
  if (opts.scheduler == SchedulerKind::Reference)
    return simulateReference(lowered, cfg, inputs, opts);
  VALPIPE_CHECK_MSG(dfg::isLowered(lowered),
                    "machine engine requires lowered graph");
  const ExecutableGraph eg(lowered);
  Engine engine(eg, cfg, inputs, opts);
  if (opts.scheduler == SchedulerKind::Synchronous)
    engine.runSynchronous();
  else
    engine.runEventDriven();
  return std::move(engine.result);
}

}  // namespace valpipe::machine
