// Shared firing core of the timed machine engines (internal header).
//
// The single-threaded scheduler loops (machine/engine.cpp) and the sharded
// parallel scheduler (machine/engine_parallel.cpp) implement the same §2/§3
// firing discipline — enabling test, firing effects, acknowledge
// bookkeeping.  EngineBase extracts that discipline once, verbatim, over
// caller-owned flat state arrays; the derived engine supplies only the
// event-routing hooks that differ between the two:
//
//   wake(cell, at)                       re-examine `cell` at time `at`
//   destFree(dest)                       is this destination slot free?
//   deliverOne(dest, v, at, wakeAt)      result packet into a destination
//   ackProducer(producer, slot, freedAt, wakeAt)
//                                        acknowledge back to a producer
//   onOutput(stopSlot)                   one expected-output element landed
//
// The single-threaded engine routes every hook to its own slots and wheel;
// a parallel shard routes hooks whose target cell lives in another shard
// through the cross-shard mailboxes (and answers destFree from its
// producer-side mirror).  Keeping the core byte-for-byte shared is what
// makes "bit-identical across schedulers" a structural property instead of
// a test-enforced one.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exec/cell_state.hpp"
#include "exec/executable_graph.hpp"
#include "exec/fifo.hpp"
#include "exec/ops.hpp"
#include "exec/packet_counters.hpp"
#include "exec/router.hpp"
#include "exec/stop.hpp"
#include "fault/injector.hpp"
#include "guard/guard.hpp"
#include "machine/engine.hpp"
#include "obs/probe.hpp"
#include "support/check.hpp"

namespace valpipe::machine::detail {

/// CRTP base holding the engine state one scheduler "lane" owns (a whole run
/// for the single-threaded engine, one shard for the parallel one) and the
/// shared enabling/firing logic over it.  `slots` / `cellDyn` / `firings`
/// are caller-owned flat arrays (shared and partitioned by cell in the
/// parallel engine); the stream-shaped results (outputs, arrival times,
/// array-memory regions) and packet counters are owned here per lane and
/// merged by the caller.
template <class Derived>
struct EngineBase {
  const exec::ExecutableGraph& eg;
  const MachineConfig& cfg;
  const RunOptions& opts;

  // Caller-owned flat state, bound by the derived ctor (the derived class
  // owns or borrows the storage; a base ctor argument would dereference
  // not-yet-constructed derived members).
  exec::Slot* slots = nullptr;       ///< per operand slot (gates included)
  exec::CellDyn* cellDyn = nullptr;  ///< per cell emitted / busyUntil
  std::uint64_t* firings = nullptr;  ///< per cell firing counts
  /// Composite-FIFO ring state (exec::makeFifoStates), non-empty entries for
  /// Fifo cells of depth >= 2 only.  Written through a const enabled(): the
  /// phase-A accept/emit decision is cached here so phase B applies exactly
  /// what phase A saw (unobservable bookkeeping, like a memo).
  exec::FifoState* fifoDyn = nullptr;

  exec::Router router;
  exec::PacketCounters packets;
  std::uint64_t totalFirings = 0;
  run::StreamMap outputs;
  std::map<std::string, std::vector<std::int64_t>> outputTimes;
  run::StreamMap amFinal;

  /// Input / AmFetch cells: the backing stream read by sourceValue.
  std::vector<const std::vector<Value>*> sourceData;
  /// Output cells: expected-output counter index (-1 when unexpected).
  std::vector<std::int32_t> stopSlotOf;

  std::int64_t now = 0;
  bool consumedAny = false;   ///< current firing consumed a non-literal port
  bool deliveredAny = false;  ///< current firing filled a destination slot

  /// This lane's observability hooks; inert (null sinks) unless the run was
  /// given sinks in its RunOptions.  Every call below is a null-pointer test
  /// when inert, keeping the no-sink fast path free.
  obs::LaneProbe probe;

  /// This lane's fault injector and invariant guards; both follow the same
  /// null-pointer zero-cost contract as `probe`.  A parallel shard reseeds
  /// `inj` with its lane number; `grd` is bound by the derived engine when
  /// the run carries a guard::Config.
  fault::Injector inj;
  guard::LaneGuard grd;

  EngineBase(const exec::ExecutableGraph& graph, const MachineConfig& config,
             const RunOptions& o)
      : eg(graph),
        cfg(config),
        opts(o),
        sourceData(graph.size(), nullptr),
        stopSlotOf(graph.size(), -1),
        inj(o.faults, 0) {}

  Derived& self() { return static_cast<Derived&>(*this); }
  const Derived& self() const { return static_cast<const Derived&>(*this); }

  // --- one-time binding helpers -------------------------------------------

  /// Seeds this lane's array-memory map for cell `c`: fetched regions must
  /// exist before sourceData binds to them (stores fill them during the
  /// run), and a stored region preloaded via amInitial must start from the
  /// preload so store firings append after it.  Regions neither fetched nor
  /// preloaded stay absent until a store lazily creates them — entry
  /// existence in amFinal is part of the bit-identical contract.
  void seedAm(std::uint32_t c) {
    const exec::Cell& cl = eg.cell(c);
    if (cl.op != dfg::Op::AmFetch && cl.op != dfg::Op::AmStore) return;
    const std::string& name = eg.streamName(cl);
    if (cl.op == dfg::Op::AmFetch) {
      auto it = opts.amInitial.find(name);
      amFinal.emplace(name,
                      it != opts.amInitial.end() ? it->second
                                                 : std::vector<Value>{});
    } else if (auto it = opts.amInitial.find(name);
               it != opts.amInitial.end()) {
      amFinal.emplace(name, it->second);
    }
  }

  /// Resolves cell `c`'s stream binding (after every seedAm of this lane):
  /// input data, fetched region, or expected-output counter index given by
  /// `slotFor` (StopCondition::slotFor order).
  template <class SlotFor>
  void bindCell(std::uint32_t c, const run::StreamMap& inputs,
                const SlotFor& slotFor) {
    const exec::Cell& cl = eg.cell(c);
    if (cl.op == dfg::Op::Input) {
      auto it = inputs.find(eg.streamName(cl));
      VALPIPE_CHECK_MSG(it != inputs.end(),
                        "missing input stream '" + eg.streamName(cl) + "'");
      VALPIPE_CHECK_MSG(static_cast<std::int64_t>(it->second.size()) ==
                            cl.tokensPerWave,
                        "input '" + eg.streamName(cl) + "' has wrong length");
      sourceData[c] = &it->second;
    } else if (cl.op == dfg::Op::AmFetch) {
      sourceData[c] = &amFinal.at(eg.streamName(cl));
    } else if (cl.op == dfg::Op::Output) {
      stopSlotOf[c] = slotFor(eg.streamName(cl));
    }
  }

  // --- shared firing discipline -------------------------------------------

  std::int64_t sourceLimit(std::uint32_t c, const exec::Cell& cl) const {
    if (cl.op == dfg::Op::AmFetch) {
      // Reads the region sequentially as stores fill it: the limit is
      // whatever is available now, capped at one region read per wave.
      return std::min<std::int64_t>(
          cl.tokensPerWave * opts.waves,
          static_cast<std::int64_t>(sourceData[c]->size()));
    }
    return cl.tokensPerWave * opts.waves;
  }

  Value sourceValue(std::uint32_t c, const exec::Cell& cl,
                    std::int64_t k) const {
    const std::int64_t j = k % cl.tokensPerWave;
    switch (cl.op) {
      case dfg::Op::Input:
        return (*sourceData[c])[static_cast<std::size_t>(j)];
      case dfg::Op::BoolSeq: return Value(eg.patternBit(cl, j));
      case dfg::Op::IndexSeq:
        return Value(cl.seqLo + (j / cl.seqRepeat) % (cl.seqHi - cl.seqLo + 1));
      case dfg::Op::AmFetch:
        return (*sourceData[c])[static_cast<std::size_t>(k)];
      default: VALPIPE_UNREACHABLE("not a source");
    }
  }

  bool slotReady(const exec::Slot& s) const {
    return s.full && s.readyAt <= now;
  }
  bool slotFree(const exec::Slot& s) const {
    return !s.full && s.freedAt <= now;
  }

  bool portReady(const exec::Cell& cl, int port) const {
    const std::uint32_t si = eg.slotOf(cl, port);
    return eg.operandAt(si).isLiteral() || slotReady(slots[si]);
  }

  Value portValue(const exec::Cell& cl, int port) const {
    const std::uint32_t si = eg.slotOf(cl, port);
    const exec::Operand& o = eg.operandAt(si);
    return o.isLiteral() ? o.literal : slots[si].v;
  }

  bool destsFree(exec::DestSpan ds) const {
    for (const exec::Dest& d : ds)
      if (!self().destFree(d)) return false;
    return true;
  }

  static bool isComposite(const exec::Cell& cl) {
    return cl.op == dfg::Op::Fifo && cl.fifoDepth >= 2;
  }

  /// Per-stage hop times of the Id chain a composite FIFO stands for (the
  /// chain's stages are Pe-class identity cells, like the Fifo cell itself).
  exec::FifoTiming fifoTiming() const {
    return exec::FifoTiming::of(
        cfg.execLatency[static_cast<std::size_t>(dfg::fuClass(dfg::Op::Fifo))],
        cfg.routeDelay, cfg.ackDelay);
  }

  /// Extra settle/wake span composite cells introduce (0 without them): a
  /// composite holds tokens for up to (k-1) forward or backward hop times
  /// with no firing anywhere, which both the quiescence window and the time
  /// wheels must cover.
  std::int64_t fifoSlack() const {
    return exec::fifoSettleSlack(eg.maxFifoDepth(), fifoTiming());
  }

  /// Enabled test (phase A, reads only start-of-cycle lane-local state).
  bool enabled(std::uint32_t c) const {
    const exec::Cell& cl = eg.cell(c);
    const exec::CellDyn& dyn = cellDyn[c];
    if (dyn.busyUntil > now) return false;

    if (isComposite(cl)) {
      exec::FifoState& f = fifoDyn[c];
      const exec::FifoTiming t = fifoTiming();
      f.doEmit = f.canEmit(t, now) && destsFree(eg.alwaysDests(cl));
      f.doAccept = portReady(cl, 0) && f.canAccept(t, now);
      f.decidedAt = now;
      return f.doEmit || f.doAccept;
    }
    if (dfg::isSource(cl.op)) {
      if (dyn.emitted >= sourceLimit(c, cl)) return false;
      return destsFree(eg.alwaysDests(cl));
    }
    std::optional<bool> gateVal;
    if (cl.hasGate) {
      if (!portReady(cl, exec::kGatePort)) return false;
      gateVal = portValue(cl, exec::kGatePort).asBoolean();
    }
    if (cl.op == dfg::Op::Merge) {
      if (!portReady(cl, 0)) return false;
      const bool sel = portValue(cl, 0).asBoolean();
      if (!portReady(cl, sel ? 1 : 2)) return false;
    } else {
      for (int p = 0; p < static_cast<int>(cl.numPorts); ++p)
        if (!portReady(cl, p)) return false;
    }
    if (!dfg::producesResult(cl.op)) return true;
    if (!destsFree(eg.alwaysDests(cl))) return false;
    return !gateVal || destsFree(eg.taggedDests(cl, *gateVal));
  }

  void consume(std::uint32_t c, const exec::Cell& cl, int port) {
    const std::uint32_t si = eg.slotOf(cl, port);
    const exec::Operand& o = eg.operandAt(si);
    if (o.isLiteral()) return;
    exec::Slot& s = slots[si];
    grd.onConsume(c, si, s.full, now);
    s.full = false;
    ++packets.ackPackets;
    consumedAny = true;
    if (inj.dropAck()) {
      // The acknowledge is lost in the network: the producer never sees the
      // destination freed, so it blocks forever (the watchdog names it).
      s.freedAt = fault::kLostPacket;
      return;
    }
    s.freedAt = now + cfg.ackDelay;
    probe.ack(o.producer, c, now, s.freedAt);
    // The acknowledge frees the producer's destination: it may re-enable
    // from the instruction time the ack becomes visible.
    self().ackProducer(o.producer, si, s.freedAt,
                       std::max<std::int64_t>(s.freedAt, now + 1));
    if (inj.dupAck())
      self().ackProducer(o.producer, si, s.freedAt,
                         std::max<std::int64_t>(s.freedAt, now + 1));
  }

  void deliver(exec::DestSpan ds, const Value& v, std::uint32_t from,
               std::int64_t arrive) {
    if (!ds.empty()) deliveredAny = true;
    for (const exec::Dest& d : ds) {
      // Packets between cells in different PEs traverse the distribution
      // network (Fig. 1) and pay the extra hop.
      std::int64_t at = arrive + router.extraDelay(from, d.consumer, packets) +
                        inj.deliveryDelay();
      ++packets.resultPackets;
      grd.onSend(from, d.slot, now);
      // A dropped result still occupies the destination slot — the producer
      // must stay blocked (one active instance) — but it never becomes
      // ready, so the consumer starves and the watchdog can name it.
      const bool lost = inj.dropResult();
      if (lost) at = fault::kLostPacket;
      const std::int64_t wakeAt =
          lost ? now + 1 : std::max<std::int64_t>(at, now + 1);
      probe.result(from, d.consumer, now, at);
      self().deliverOne(d, v, at, wakeAt);
      if (inj.dupResult()) self().deliverOne(d, v, at, wakeAt);
    }
  }

  /// deliverOne for a destination whose slot this lane owns.
  void deliverLocal(const exec::Dest& d, const Value& v, std::int64_t at,
                    std::int64_t wakeAt) {
    exec::Slot& s = slots[d.slot];
    grd.onDeliver(d.consumer, d.slot, s.full, at);
    VALPIPE_CHECK_MSG(!s.full, "result packet delivered into occupied slot");
    s.full = true;
    s.v = v;
    s.readyAt = at;
    self().wake(d.consumer, wakeAt);
  }

  /// Phase B of a composite FIFO cell: applies the accept and/or emit the
  /// phase-A decision chose.  The emit is the composite's observable firing
  /// (the chain's tail stage is the one cell that delivers externally), so
  /// firing/packet counters and probes tick on emits only; an accept-only
  /// activation still occupies the cell (and one FU grant) for this
  /// instruction time, like the chain's head stage would.
  void fireFifo(std::uint32_t c, const exec::Cell& cl) {
    exec::FifoState& f = fifoDyn[c];
    VALPIPE_CHECK_MSG(f.decidedAt == now,
                      "composite FIFO fired without a phase-A decision");
    exec::CellDyn& dyn = cellDyn[c];
    dyn.busyUntil = now + 1;
    consumedAny = deliveredAny = false;
    const exec::FifoTiming t = fifoTiming();
    const std::int64_t ringLen = f.ring();
    if (f.doEmit) {
      ++firings[c];
      ++totalFirings;
      ++packets.opPacketsByClass[static_cast<std::size_t>(cl.fu)];
      probe.fire(c, now, cfg.execLatency[static_cast<std::size_t>(cl.fu)]);
      const Value v = f.pop(now);
      router.noteFiring(c);
      const std::int64_t arrive =
          now + cfg.execLatency[static_cast<std::size_t>(cl.fu)] +
          cfg.routeDelay + inj.execJitter();
      deliver(eg.alwaysDests(cl), v, c, arrive);
      // This emit's acknowledge wave re-admits a blocked accept after (k-1)
      // backward hops; the tail itself may re-emit one period later.
      self().wake(c, now + ringLen * t.ackDelay);
      self().wake(c, now + t.period());
    }
    if (f.doAccept) {
      const Value v = portValue(cl, 0);
      f.push(v, t, now);
      consume(c, cl, 0);
      // The head stage may accept again one period later.
      self().wake(c, now + t.period());
    }
    grd.onFifoFire(c, eg.slotOf(cl, 0), f.accepted, f.emitted, f.depth, now);
    // The next head token becomes emittable with no external event.
    if (f.count > 0)
      self().wake(c, std::max(f.readyAt[f.head], f.lastEmit + t.period()));
    if (!consumedAny && !deliveredAny) self().wake(c, now + 1);
  }

  /// Phase B: applies the firing of `c` at time `now`.
  void fire(std::uint32_t c) {
    const exec::Cell& cl = eg.cell(c);
    if (isComposite(cl)) return fireFifo(c, cl);
    exec::CellDyn& dyn = cellDyn[c];
    ++firings[c];
    ++totalFirings;
    ++packets.opPacketsByClass[static_cast<std::size_t>(cl.fu)];
    dyn.busyUntil = now + 1;
    consumedAny = deliveredAny = false;
    probe.fire(c, now, cfg.execLatency[static_cast<std::size_t>(cl.fu)]);

    std::optional<Value> out;
    std::optional<bool> gateVal;

    if (dfg::isSource(cl.op)) {
      out = sourceValue(c, cl, dyn.emitted);
      ++dyn.emitted;
    } else {
      if (cl.hasGate) {
        gateVal = portValue(cl, exec::kGatePort).asBoolean();
        consume(c, cl, exec::kGatePort);
      }
      auto in = [&](int p) { return portValue(cl, p); };
      switch (cl.op) {
        case dfg::Op::Merge: {
          const bool sel = in(0).asBoolean();
          out = in(sel ? 1 : 2);
          consume(c, cl, 0);
          consume(c, cl, sel ? 1 : 2);
          break;
        }
        case dfg::Op::Output: {
          outputs[eg.streamName(cl)].push_back(in(0));
          outputTimes[eg.streamName(cl)].push_back(now);
          self().onOutput(stopSlotOf[c]);
          break;
        }
        case dfg::Op::Sink: break;
        case dfg::Op::AmStore: {
          amFinal[eg.streamName(cl)].push_back(in(0));
          // The store extends the region: matching fetchers may re-enable.
          // (Fetchers of a stream are co-located with its store.)
          for (std::uint32_t f : eg.fetchersOf(cl)) self().wake(f, now + 1);
          break;
        }
        default: out = exec::applyPure(cl.op, in); break;
      }
      if (cl.op != dfg::Op::Merge)
        for (int p = 0; p < static_cast<int>(cl.numPorts); ++p)
          consume(c, cl, p);
    }

    if (out.has_value()) {
      router.noteFiring(c);
      const std::int64_t arrive =
          now + cfg.execLatency[static_cast<std::size_t>(cl.fu)] +
          cfg.routeDelay + inj.execJitter();
      deliver(eg.alwaysDests(cl), *out, c, arrive);
      if (gateVal) deliver(eg.taggedDests(cl, *gateVal), *out, c, arrive);
    }
    // A firing that consumed a port or filled a destination will be re-woken
    // by the matching refill / acknowledge; only a firing with neither (a
    // source with no destinations, an all-literal consumer, ...) can be
    // enabled again at now + 1 with no further event.
    if (!consumedAny && !deliveredAny) self().wake(c, now + 1);
  }

  std::int64_t settleWindow() const {
    // Injected delays stretch how long a packet can be legitimately in
    // flight, and a composite FIFO holds tokens silently for up to its
    // traversal slack; the idle window must outlast both or an in-flight
    // token would be declared deadlock.
    return exec::quiesceWindow(
               cfg.routeDelay, cfg.ackDelay,
               *std::max_element(cfg.execLatency.begin(),
                                 cfg.execLatency.end())) +
           inj.maxExtraDelay() + fifoSlack();
  }

  /// Longest forward distance of any wake: a delivered packet's transit
  /// (execution + routing + the inter-PE hop), an acknowledge, a
  /// function-unit release, or a composite FIFO's internal traversal — a
  /// time wheel must span it without aliasing.  Injected delays widen it
  /// like settleWindow().
  std::int64_t wakeHorizon() const {
    return std::max<std::int64_t>(
               std::max<std::int64_t>(1, cfg.ackDelay),
               *std::max_element(cfg.execLatency.begin(),
                                 cfg.execLatency.end()) +
                   cfg.routeDelay + cfg.interPeDelay) +
           inj.maxExtraDelay() + fifoSlack();
  }
};

/// Trace naming/grouping for a run of `lowered`: graph names and FU classes,
/// plus the Placement's PE assignment when the run has one.  Shared by the
/// three simulate entry points so every scheduler labels cells identically.
inline obs::TraceMeta traceMetaFor(const dfg::Graph& lowered,
                                   const RunOptions& opts) {
  obs::TraceMeta m = obs::TraceMeta::of(lowered);
  if (opts.placement)
    m.peOf.assign(opts.placement->peOf.begin(), opts.placement->peOf.end());
  return m;
}

/// The original pointer-walking stepper over dfg::Graph, kept verbatim as
/// the verification oracle (machine/engine_reference.cpp); reached through
/// simulate() with SchedulerKind::Reference.
MachineResult simulateReference(const dfg::Graph& lowered,
                                const MachineConfig& cfg,
                                const run::StreamMap& inputs,
                                const RunOptions& opts);

/// The sharded event-driven scheduler (machine/engine_parallel.cpp);
/// reached through simulate() with SchedulerKind::ParallelEventDriven.
MachineResult simulateParallel(const dfg::Graph& lowered,
                               const exec::ExecutableGraph& eg,
                               const MachineConfig& cfg,
                               const run::StreamMap& inputs,
                               const RunOptions& opts);

}  // namespace valpipe::machine::detail
