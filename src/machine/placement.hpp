// Instruction-cell placement onto processing elements (Fig. 1).
//
// A static dataflow machine loads each instruction cell into one processing
// element's memory; result packets between cells in different PEs traverse
// the distribution (routing) network.  Placement therefore decides how much
// of the §2 packet traffic crosses the network, and — with a per-hop delay
// — how much latency the pipeline absorbs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace valpipe::machine {

struct Placement {
  int peCount = 1;
  std::vector<int> peOf;  ///< per cell (indexed by NodeId)

  int of(dfg::NodeId id) const { return peOf[id.index]; }
};

enum class PlacementStrategy {
  /// Cells scattered round-robin: balances load, maximizes network traffic.
  RoundRobin,
  /// Consecutive cells grouped: the compiler emits producers next to their
  /// consumers, so contiguous chunks keep most arcs inside one PE.
  Contiguous,
  /// Contiguous seed refined by a few greedy passes that move each cell to
  /// the PE holding most of its neighbors, within a load-balance band — a
  /// cheap min-cut heuristic.  Used to auto-partition the parallel engine's
  /// shards when no Placement is supplied.
  MinCut,
};

const char* toString(PlacementStrategy s);

/// Assigns every cell of (lowered) `g` to one of `peCount` PEs.
Placement assignCells(const dfg::Graph& g, int peCount, PlacementStrategy s);

/// Fraction of operand/gate arcs whose endpoints sit in different PEs — the
/// share of result packets that will use the distribution network.
double crossPeArcFraction(const dfg::Graph& g, const Placement& p);

}  // namespace valpipe::machine
