// Sharded event-driven scheduler (SchedulerKind::ParallelEventDriven).
//
// Cells are partitioned into shards — following the run's Placement when one
// is supplied, else the min-cut auto-partitioner — and each worker thread
// owns its shard's time wheel, operand slots, cell state and (unlimited) FU
// accounting.  The workers advance in lockstep over ACTIVE instruction
// times only: a barrier completion computes the global next time as the
// minimum of every shard's wheel and of the wake times of in-flight
// cross-shard packets, so a step costs work proportional to events, exactly
// like the serial event-driven loop.
//
// Cross-shard traffic is the paper's own packet vocabulary.  A result packet
// to a remote consumer and an acknowledge to a remote producer travel
// through per-ordered-pair SPSC mailboxes (exec/mailbox.hpp), drained by
// the owning shard right after the decision barrier — before the time they
// could first matter — in a fixed (sender, push-order) order.  To keep
// phase A free of remote reads, each producer keeps a mirror of its
// cross-shard destination slots: set full when the result is sent, cleared
// with the freedAt stamp when the acknowledge drains.  Within one
// instruction time every slot, mirror entry and firing counter is touched
// by exactly one shard, and the barriers provide the happens-before edges,
// so the shared arrays need no per-element synchronization.
//
// Finite function-unit classes are the one globally shared resource; their
// candidates are collected per shard in rotation order and arbitrated
// serially inside an extra barrier completion, merged in the global
// rotation order the serial scheduler would have used.  Every MachineResult
// field is therefore bit-identical to the EventDriven engine (and the
// Reference oracle) for any shard count.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "dfg/lower.hpp"
#include "exec/cell_state.hpp"
#include "exec/executable_graph.hpp"
#include "exec/fifo.hpp"
#include "exec/fu_pool.hpp"
#include "exec/mailbox.hpp"
#include "exec/ready_queue.hpp"
#include "exec/router.hpp"
#include "exec/shard_plan.hpp"
#include "guard/diagnosis.hpp"
#include "machine/engine.hpp"
#include "machine/engine_impl.hpp"
#include "machine/placement.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace valpipe::machine::detail {

namespace {

using exec::Cell;
using exec::CellDyn;
using exec::Dest;
using exec::ExecutableGraph;
using exec::Message;
using exec::Operand;
using exec::Slot;

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

/// Reusable barrier whose last arriver runs a completion callable before
/// releasing the others.  Spins briefly then yields: the shard count may
/// exceed the core count (CI containers), where pure spinning livelocks.
/// Completions must not throw.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}

  template <class F>
  void sync(F&& complete) {
    const std::uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      complete();
      arrived_.store(0, std::memory_order_relaxed);
      // Releases the completion's (and every arriver's) writes to the
      // waiters' matching acquire loads.
      phase_.store(phase + 1, std::memory_order_release);
    } else {
      int spins = 0;
      while (phase_.load(std::memory_order_acquire) == phase)
        if (++spins > 512) std::this_thread::yield();
    }
  }

  void sync() {
    sync([] {});
  }

 private:
  const std::uint32_t parties_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

/// Per-shard state read by the barrier completions.  Padded so two shards'
/// publishes never share a cache line.
struct alignas(64) Pub {
  std::int64_t localNext = kNever;    ///< shard wheel's earliest wake
  std::int64_t minSentWake = kNever;  ///< earliest wake among in-flight sends
  bool fired = false;                 ///< shard fired a cell this step
  bool sentAny = false;               ///< shard pushed a mailbox message
};

struct Worker;

/// Everything the shards share.  Writes to the plain arrays are disjoint by
/// shard within a step (see file comment); the decision state at the bottom
/// is written only inside barrier completions.
struct Shared {
  const ExecutableGraph& eg;
  const MachineConfig& cfg;
  const RunOptions& opts;
  exec::ShardPlan plan;
  exec::MailboxGrid mail;
  SpinBarrier barrier;

  std::vector<Slot> slots;          ///< owned by the consumer cell's shard
  std::vector<CellDyn> cellDyn;     ///< owned by the cell's shard
  /// Composite-FIFO ring state, owned by the cell's shard like cellDyn (all
  /// composite self-wakes are shard-local, so no mailbox traffic touches it).
  std::vector<exec::FifoState> fifoDyn;
  std::vector<std::uint64_t> firings;
  std::vector<std::uint8_t> mirrorFull;   ///< producer-side dest mirrors
  std::vector<std::int64_t> mirrorFreed;

  /// Shared per-arc guard counters (counter ownership follows the slot and
  /// mirror ownership rules — see guard/guard.hpp); absent when guards are
  /// off.
  std::optional<guard::State> guardState;

  /// Expected outputs in StopCondition::slotFor order (std::map order).
  std::vector<std::string> expNames;
  std::vector<std::int64_t> expWant;
  std::vector<std::vector<std::int64_t>> haveByShard;

  /// Finite-FU arbitration: per-shard candidates (rotation order), the
  /// global pool, and per-cell verdicts written by the completion.
  bool anyLimited = false;
  std::array<bool, 4> limitedClass{};
  std::vector<std::vector<std::uint32_t>> limitedCand;
  std::vector<std::uint32_t> mergeScratch;
  exec::FuPool globalFu;
  std::vector<std::uint8_t> fuGranted;
  std::vector<std::int64_t> fuWakeAt;

  std::vector<Pub> pubs;

  // --- decision state (barrier completions only) ---
  enum class Cmd { Run, Stop } cmd = Cmd::Run;
  std::int64_t stepTime = 0;
  bool skipDrain = false;
  std::int64_t lastFire = -1;
  std::int64_t prevNow = -1;
  bool ranAny = false;  ///< at least one step processed (t = 0 comes first)
  std::int64_t settle = 0;
  std::int64_t floorTime = 0;  ///< earliest quiescence (outage windows)
  std::int64_t cap = 0;        ///< maxCycles tightened by maxInstructionTimes
  std::int64_t finalNow = 0;
  bool completed = false;
  bool stalledDeadlock = false;  ///< quiesced with outputs incomplete
  std::string note;

  std::atomic<bool> abort{false};
  std::vector<std::exception_ptr> errors;  ///< per shard

  Shared(const ExecutableGraph& graph, const MachineConfig& config,
         const RunOptions& o, exec::ShardPlan p)
      : eg(graph),
        cfg(config),
        opts(o),
        plan(std::move(p)),
        mail(plan.shardCount),
        barrier(plan.shardCount),
        slots(graph.slotCount()),
        cellDyn(graph.size()),
        fifoDyn(exec::makeFifoStates(graph)),
        firings(graph.size(), 0),
        mirrorFull(graph.slotCount(), 0),
        mirrorFreed(graph.slotCount(), 0),
        haveByShard(plan.shardCount),
        limitedCand(plan.shardCount),
        globalFu(config.fuUnits, config.execLatency),
        fuGranted(graph.size(), 0),
        fuWakeAt(graph.size(), 0),
        pubs(plan.shardCount),
        errors(plan.shardCount) {
    if (o.guards) guardState.emplace(graph);
    for (const auto& [name, want] : opts.expectedOutputs) {
      expNames.push_back(name);
      expWant.push_back(want);
    }
    for (auto& have : haveByShard) have.assign(expNames.size(), 0);
    for (std::size_t c = 0; c < 4; ++c)
      if (cfg.fuUnits[c] != 0) limitedClass[c] = anyLimited = true;
    mergeScratch.reserve(eg.size());
    // Load-time tokens (counter-loop bootstraps) are present at t = 0, in
    // the slots and in the producer-side mirrors alike.
    for (std::uint32_t s = 0; s < eg.slotCount(); ++s) {
      const Operand& o2 = eg.operandAt(s);
      if (o2.hasInitial) {
        slots[s].full = true;
        slots[s].v = o2.initial;
        mirrorFull[s] = 1;
      }
    }
  }

  /// Every expected stream with a positive count reached it (counts summed
  /// across shards; a count passes every integer, so >= is ==).
  bool outputsDone() const {
    for (std::size_t i = 0; i < expWant.size(); ++i) {
      if (expWant[i] <= 0) continue;
      std::int64_t sum = 0;
      for (const auto& have : haveByShard) sum += have[i];
      if (sum < expWant[i]) return false;
    }
    return true;
  }

  /// Decision completion: replicates the serial event-driven loop's
  /// end-of-step checks and next-time selection, once per active time.
  void decide() {
    if (abort.load(std::memory_order_relaxed)) {
      cmd = Cmd::Stop;
      return;
    }
    if (ranAny) {
      bool fired = false;
      for (const Pub& p : pubs) fired |= p.fired;
      if (fired) lastFire = prevNow;
      if (!expWant.empty() && outputsDone()) {
        completed = true;
        finalNow = prevNow + 1;
        cmd = Cmd::Stop;
        return;
      }
    }
    std::int64_t next = kNever;
    bool sent = false;
    for (const Pub& p : pubs) {
      next = std::min(next, std::min(p.localNext, p.minSentWake));
      sent |= p.sentAny;
    }
    const std::int64_t tQuiesce = std::max(lastFire, floorTime) + settle + 1;
    if (next == kNever || next > tQuiesce) {
      // Nothing can fire before the idle counter trips.
      if (tQuiesce >= cap) {
        finalNow = cap;
        cmd = Cmd::Stop;
        return;
      }
      finalNow = tQuiesce;
      completed = expWant.empty() || outputsDone();
      if (!completed) {
        // Barrier completions must not throw; the main thread turns this
        // into a run::StallError after the join when a watchdog is set.
        stalledDeadlock = true;
        note = "deadlock: outputs incomplete";
      }
      cmd = Cmd::Stop;
      return;
    }
    if (next >= cap) {
      finalNow = cap;
      cmd = Cmd::Stop;
      return;
    }
    prevNow = next;
    ranAny = true;
    stepTime = next;
    skipDrain = !sent;
    cmd = Cmd::Run;
  }

  /// Arbitration completion: merge every shard's finite-FU candidates into
  /// the global rotation order the serial scheduler scans, and grant against
  /// the one global pool.  FU classes are independent (per-class units), so
  /// interleaving with the locally granted unlimited firings is immaterial.
  void arbitrate() {
    mergeScratch.clear();
    for (const auto& cand : limitedCand)
      mergeScratch.insert(mergeScratch.end(), cand.begin(), cand.end());
    const auto n = static_cast<std::uint32_t>(eg.size());
    const auto start =
        static_cast<std::uint32_t>(static_cast<std::size_t>(stepTime) % n);
    std::sort(mergeScratch.begin(), mergeScratch.end(),
              [start, n](std::uint32_t a, std::uint32_t b) {
                const std::uint32_t ra = a >= start ? a - start : a + n - start;
                const std::uint32_t rb = b >= start ? b - start : b + n - start;
                return ra < rb;
              });
    for (std::uint32_t id : mergeScratch) {
      const dfg::FuClass fc = eg.cell(id).fu;
      if (globalFu.tryGrant(fc, stepTime)) {
        fuGranted[id] = 1;
      } else {
        fuGranted[id] = 0;
        fuWakeAt[id] = globalFu.nextFree(fc);
      }
    }
  }
};

/// One shard: an EngineBase lane whose hooks route remote events through
/// the mailboxes and answer remote destination queries from the mirrors.
struct Worker : EngineBase<Worker> {
  Shared& sh;
  const std::uint32_t me;
  exec::ReadyQueue wheel;
  exec::FuPool fuLocal;  ///< all-unlimited profile: busy accrual only
  Pub& pub;
  std::vector<std::int64_t>& have;
  bool dead = false;  ///< shard failed; keeps the barrier cadence only

  std::vector<std::uint32_t> cand, ordered, toFire;
  std::vector<std::pair<std::uint32_t, bool>> pend;  ///< (cell, limited)
  std::vector<std::int64_t> candAt;
  std::int64_t hzn = 0;  ///< wheel horizon, for clamping outage-end wakes

  Worker(Shared& s, std::uint32_t shard, const run::StreamMap& inputs)
      : EngineBase(s.eg, s.cfg, s.opts),
        sh(s),
        me(shard),
        wheel(s.eg.size(), wakeHorizon()),
        fuLocal(std::array<int, 4>{0, 0, 0, 0}, s.cfg.execLatency),
        pub(s.pubs[shard]),
        have(s.haveByShard[shard]),
        candAt(s.eg.size(), -1),
        hzn(wakeHorizon()) {
    slots = sh.slots.data();
    cellDyn = sh.cellDyn.data();
    fifoDyn = sh.fifoDyn.data();
    firings = sh.firings.data();
    // Each shard draws its randomized fault decisions from its own lane
    // stream (the horizon used above only depends on the plan, not the
    // lane, so reseeding after the wheel is built is safe).
    inj = fault::Injector(opts.faults, me);
    if (opts.guards)
      grd = guard::LaneGuard(opts.guards, &*sh.guardState, &eg);
    // Bind this shard's streams (runs on the main thread, so input
    // validation errors throw before any worker is spawned).
    for (std::uint32_t c : myCells()) seedAm(c);
    for (std::uint32_t c : myCells())
      bindCell(c, inputs, [this](const std::string& name) {
        for (std::size_t i = 0; i < sh.expNames.size(); ++i)
          if (sh.expNames[i] == name) return static_cast<std::int32_t>(i);
        return std::int32_t{-1};
      });
    if (opts.placement)
      router = exec::Router(opts.placement->peOf, opts.placement->peCount,
                            cfg.interPeDelay);
  }

  const std::vector<std::uint32_t>& myCells() const {
    return sh.plan.cells[me];
  }

  // --- event-routing hooks -------------------------------------------------

  void wake(std::uint32_t cell, std::int64_t at) { wheel.wake(cell, at); }

  bool destFree(const Dest& d) const {
    if (sh.plan.shardOf[d.consumer] == me) return slotFree(slots[d.slot]);
    return sh.mirrorFull[d.slot] == 0 && sh.mirrorFreed[d.slot] <= now;
  }

  void send(std::uint32_t to, const Message& m) {
    sh.mail.box(me, to).push(m);
    pub.minSentWake = std::min(pub.minSentWake, m.wakeAt);
    pub.sentAny = true;
  }

  void deliverOne(const Dest& d, const Value& v, std::int64_t at,
                  std::int64_t wakeAt) {
    const std::uint32_t to = sh.plan.shardOf[d.consumer];
    if (to == me) {
      deliverLocal(d, v, at, wakeAt);
      return;
    }
    sh.mirrorFull[d.slot] = 1;
    // A skewed barrier shows the remote shard the packet late; one draw
    // shifts arrival and wake together.
    const std::int64_t skew = inj.barrierSkew();
    send(to,
         {Message::Kind::Result, d.consumer, d.slot, at + skew, wakeAt + skew,
          v});
  }

  void ackProducer(std::uint32_t producer, std::uint32_t slot,
                   std::int64_t freedAt, std::int64_t wakeAt) {
    const std::uint32_t to = sh.plan.shardOf[producer];
    if (to == me) {
      grd.onAck(producer, slot, now);
      wake(producer, wakeAt);
      return;
    }
    const std::int64_t skew = inj.barrierSkew();
    send(to, {Message::Kind::Acknowledge, producer, slot, freedAt + skew,
              wakeAt + skew, Value{}});
  }

  void onOutput(std::int32_t stopSlot) {
    if (stopSlot >= 0) ++have[static_cast<std::size_t>(stopSlot)];
  }

  // --- lockstep loop -------------------------------------------------------

  /// Runs `f`; on failure records the error, flags the global abort and
  /// turns this shard into a barrier-keeping zombie with neutral publishes.
  template <class F>
  void guarded(F&& f) {
    if (dead) return;
    try {
      f();
    } catch (...) {
      sh.errors[me] = std::current_exception();
      sh.abort.store(true, std::memory_order_relaxed);
      dead = true;
      pend.clear();
      sh.limitedCand[me].clear();
      pub.localNext = kNever;
      pub.minSentWake = kNever;
      pub.fired = false;
      pub.sentAny = false;
    }
  }

  void publish() {
    pub.localNext = wheel.empty() ? kNever : wheel.nextTime();
  }

  /// Applies last step's cross-shard packets addressed to this shard, in
  /// the deterministic (sender shard, push order) order.  The wheel cursor
  /// must reach `t` first: a shard idle for longer than the wheel's ring
  /// would otherwise alias the wakes into past buckets.
  void drain(std::int64_t t) {
    wheel.advanceTo(t);
    for (std::uint32_t from = 0; from < sh.plan.shardCount; ++from) {
      if (from == me) continue;
      auto& box = sh.mail.box(from, me);
      if (obs::MetricsSink* ms = probe.metrics(); ms && !box.empty()) {
        obs::LaneStats& l = ms->lane(me);
        l.mailboxMessages += box.size();
        l.maxMailboxDepth =
            std::max<std::uint64_t>(l.maxMailboxDepth, box.size());
      }
      const auto apply = [&](const Message& m) {
        if (m.kind == Message::Kind::Result) {
          Slot& s = slots[m.slot];
          grd.onDeliver(m.cell, m.slot, s.full, m.time);
          VALPIPE_CHECK_MSG(!s.full,
                            "result packet delivered into occupied slot");
          s.full = true;
          s.v = m.v;
          s.readyAt = m.time;
        } else {
          grd.onAck(m.cell, m.slot, t);
          sh.mirrorFull[m.slot] = 0;
          sh.mirrorFreed[m.slot] = m.time;
        }
        wake(m.cell, m.wakeAt);
      };
      // Reverse drain order is a pure timing fault: one batch only ever
      // touches distinct slots (capacity-1 discipline), so its messages
      // commute.
      if (inj.mailboxReorder())
        box.forEachReversed(apply);
      else
        box.forEach(apply);
      box.clear();
    }
  }

  /// Phase A at time `t`: pop this shard's woken cells, order them exactly
  /// as the serial rotating scan would, and test enabling against
  /// start-of-time state (shard-local by construction).
  void phaseA(std::int64_t t) {
    now = t;
    pub.fired = false;
    pub.minSentWake = kNever;
    pub.sentAny = false;
    sh.limitedCand[me].clear();
    cand.clear();
    // Advance even when empty: phase B's wakes land relative to this cursor.
    wheel.advanceTo(t);
    if (!wheel.empty() && wheel.nextTime() == t) wheel.pop(cand);
    if (!cand.empty()) {
      const auto n = static_cast<std::uint32_t>(eg.size());
      const auto start =
          static_cast<std::uint32_t>(static_cast<std::size_t>(t) % n);
      const auto& mine = myCells();
      if (cand.size() * 8 >= mine.size()) {
        // Dense step: stamp and re-collect by one rotation-ordered pass
        // over this shard's (ascending) cell list.
        for (std::uint32_t id : cand) candAt[id] = t;
        ordered.clear();
        auto at = std::lower_bound(mine.begin(), mine.end(), start);
        for (auto it = at; it != mine.end(); ++it)
          if (candAt[*it] == t) ordered.push_back(*it);
        for (auto it = mine.begin(); it != at; ++it)
          if (candAt[*it] == t) ordered.push_back(*it);
        cand.swap(ordered);
      } else {
        std::sort(cand.begin(), cand.end(),
                  [start, n](std::uint32_t a, std::uint32_t b) {
                    const std::uint32_t ra =
                        a >= start ? a - start : a + n - start;
                    const std::uint32_t rb =
                        b >= start ? b - start : b + n - start;
                    return ra < rb;
                  });
      }
    }
    pend.clear();
    for (std::uint32_t id : cand) {
      if (!enabled(id)) continue;
      const dfg::FuClass fc = eg.cell(id).fu;
      if (const std::int64_t until = inj.outageUntil(fc, now); until > now) {
        // Denied by a transient outage (a static decision every shard
        // agrees on); retry at its end, chained through the wheel horizon.
        probe.denied(id, now, until);
        wake(id, std::min(until, now + hzn));
        continue;
      }
      if (sh.limitedClass[static_cast<std::size_t>(fc)]) {
        pend.emplace_back(id, true);
        sh.limitedCand[me].push_back(id);
      } else {
        fuLocal.tryGrant(fc, now);  // unlimited: always granted, busy accrual
        pend.emplace_back(id, false);
      }
    }
  }

  /// Phase B: fire the granted candidates in rotation order.
  void phaseB() {
    toFire.clear();
    for (const auto& [id, limited] : pend) {
      if (!limited || sh.fuGranted[id]) {
        toFire.push_back(id);
      } else {
        // Same examination point and wake time as the serial event-driven
        // scheduler's failed grant, so FuDenied streams match it exactly.
        probe.denied(id, now, sh.fuWakeAt[id]);
        wake(id, sh.fuWakeAt[id]);  // retry when a unit frees
      }
    }
    for (std::uint32_t id : toFire) fire(id);
    pub.fired = !toFire.empty();
  }

  /// Barrier sync, wall-clock timed only when a sink wants barrier-wait
  /// accounting (the clock calls are not free at one sync per active time).
  template <class F>
  void syncTimed(F&& complete) {
    if (!probe.wantsBarrier()) {
      sh.barrier.sync(std::forward<F>(complete));
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    sh.barrier.sync(std::forward<F>(complete));
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    probe.barrier(me, now, ns);
  }

  void run() {
    guarded([&] {
      for (std::uint32_t c : myCells()) wheel.wake(c, 0);
      publish();
    });
    for (;;) {
      syncTimed([this] { sh.decide(); });
      if (sh.cmd == Shared::Cmd::Stop) break;
      const std::int64_t t = sh.stepTime;
      if (!sh.skipDrain) {
        guarded([&] { drain(t); });
        syncTimed([] {});
      }
      guarded([&] { phaseA(t); });
      if (sh.anyLimited) syncTimed([this] { sh.arbitrate(); });
      guarded([&] {
        phaseB();
        publish();
      });
    }
  }
};

/// Shard count: the explicit knob, else the hardware's, clamped to [1, 8]
/// and never more than one shard per cell.
std::uint32_t resolveShards(const RunOptions& opts, std::size_t cells) {
  std::uint32_t s;
  if (opts.threads > 0) {
    s = static_cast<std::uint32_t>(opts.threads);
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    s = std::clamp<std::uint32_t>(hw == 0 ? 1 : hw, 1, 8);
  }
  return std::min<std::uint32_t>(s,
                                 static_cast<std::uint32_t>(
                                     std::max<std::size_t>(cells, 1)));
}

}  // namespace

MachineResult simulateParallel(const dfg::Graph& lowered,
                               const ExecutableGraph& eg,
                               const MachineConfig& cfg,
                               const run::StreamMap& inputs,
                               const RunOptions& opts) {
  VALPIPE_CHECK_MSG(opts.threads >= 0, "negative thread count");
  if (opts.placement)
    VALPIPE_CHECK_MSG(opts.placement->peOf.size() == eg.size(),
                      "placement does not match the graph");
  const std::uint32_t S = resolveShards(opts, eg.size());

  // Shard hints: the Placement's locality when supplied (contiguous PE
  // groups map onto shards), else the min-cut auto-partitioner.
  std::vector<std::uint32_t> hint(eg.size(), 0);
  if (opts.placement) {
    for (std::uint32_t c = 0; c < eg.size(); ++c)
      hint[c] = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(opts.placement->peOf[c]) * S /
          static_cast<std::uint32_t>(opts.placement->peCount));
  } else if (S > 1) {
    const Placement p =
        assignCells(lowered, static_cast<int>(S), PlacementStrategy::MinCut);
    for (std::uint32_t c = 0; c < eg.size(); ++c)
      hint[c] = static_cast<std::uint32_t>(p.peOf[c]);
  }

  Shared sh(eg, cfg, opts, exec::buildShardPlan(eg, S, hint));
  sh.settle =
      exec::quiesceWindow(
          cfg.routeDelay, cfg.ackDelay,
          *std::max_element(cfg.execLatency.begin(), cfg.execLatency.end())) +
      exec::fifoSettleSlack(
          eg.maxFifoDepth(),
          exec::FifoTiming::of(
              cfg.execLatency[static_cast<std::size_t>(
                  dfg::fuClass(dfg::Op::Fifo))],
              cfg.routeDelay, cfg.ackDelay));
  if (opts.faults) {
    sh.settle += opts.faults->maxExtraDelay();
    sh.floorTime = opts.faults->lastOutageEnd();
  }
  if (opts.watchdog > 0) sh.settle = std::max(sh.settle, opts.watchdog);
  sh.cap = opts.maxInstructionTimes > 0
               ? std::min(opts.maxInstructionTimes, opts.maxCycles)
               : opts.maxCycles;

  // Workers are constructed (and their inputs validated) on the main
  // thread; the spawn provides the happens-before edge for the seeding.
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(S);
  for (std::uint32_t s = 0; s < S; ++s)
    workers.push_back(std::make_unique<Worker>(sh, s, inputs));

  if (opts.trace) {
    obs::TraceMeta meta = traceMetaFor(lowered, opts);
    meta.laneOf.assign(sh.plan.shardOf.begin(), sh.plan.shardOf.end());
    opts.trace->begin(S, std::move(meta));
  }
  if (opts.metrics) opts.metrics->begin(S, eg.size());
  for (std::uint32_t s = 0; s < S; ++s)
    workers[s]->probe = obs::LaneProbe(opts.trace, opts.metrics,
                                       static_cast<std::uint8_t>(s));

  std::vector<std::thread> threads;
  threads.reserve(S - 1);
  for (std::uint32_t s = 1; s < S; ++s)
    threads.emplace_back([&workers, s] { workers[s]->run(); });
  workers[0]->run();  // the caller's thread drives shard 0
  for (std::thread& t : threads) t.join();
  for (std::uint32_t s = 0; s < S; ++s)
    if (sh.errors[s]) std::rethrow_exception(sh.errors[s]);

  // Stall escalation (after shard errors: a guard violation outranks the
  // watchdog's symptom report).  Barrier completions cannot throw, so the
  // deadlock/cap verdict is turned into the StallError here.
  if (!sh.completed && !(sh.expWant.empty() || sh.outputsDone())) {
    const bool capHit =
        opts.maxInstructionTimes > 0 && sh.finalNow >= sh.cap;
    const bool watchdogHit = opts.watchdog > 0 && sh.stalledDeadlock;
    if (capHit || watchdogHit) {
      fault::Counters injected;
      for (const auto& w : workers) injected.add(w->inj.counters);
      std::vector<guard::OutputProgress> progress;
      for (std::size_t i = 0; i < sh.expNames.size(); ++i) {
        std::int64_t have = 0;
        for (const auto& hv : sh.haveByShard) have += hv[i];
        progress.push_back({sh.expNames[i], sh.expWant[i], have});
      }
      throw run::StallError(
          sh.finalNow,
          guard::diagnoseStall(
              watchdogHit
                  ? "watchdog: no cell fired within the idle window"
                  : "instruction-time cap reached with outputs incomplete",
              &lowered, eg, sh.slots.data(), sh.cellDyn.data(), sh.finalNow,
              progress, injected));
    }
  }

  // --- merge: shard lanes in shard order -----------------------------------
  MachineResult res;
  res.cycles = sh.finalNow;
  res.completed = sh.completed;
  res.note = sh.note;
  if (sh.finalNow >= opts.maxCycles) res.note = "maxCycles exceeded";
  res.firings = std::move(sh.firings);
  res.fuBusy = sh.globalFu.busy();
  res.amFinal = opts.amInitial;
  if (opts.placement)
    res.pePackets.assign(static_cast<std::size_t>(opts.placement->peCount), 0);
  for (const auto& w : workers) {
    res.totalFirings += w->totalFirings;
    res.faults.add(w->inj.counters);
    res.packets.resultPackets += w->packets.resultPackets;
    res.packets.ackPackets += w->packets.ackPackets;
    res.packets.networkResultPackets += w->packets.networkResultPackets;
    for (std::size_t c = 0; c < 4; ++c) {
      res.packets.opPacketsByClass[c] += w->packets.opPacketsByClass[c];
      res.fuBusy[c] += w->fuLocal.busy()[c];
    }
    // Streams are uniquely owned by one shard (the plan co-locates every
    // cell of a stream), so the merges below never collide; assigning over
    // an amInitial entry keeps the preload-then-stores content.
    for (auto& [name, vals] : w->outputs) res.outputs[name] = std::move(vals);
    for (auto& [name, ts] : w->outputTimes)
      res.outputTimes[name] = std::move(ts);
    for (auto& [name, vals] : w->amFinal) res.amFinal[name] = std::move(vals);
    if (opts.placement) {
      const auto& pe = w->router.pePackets();
      for (std::size_t i = 0; i < pe.size(); ++i) res.pePackets[i] += pe[i];
    }
  }
  if (opts.metrics)
    opts.metrics->finishRun("ParallelEventDriven", res.cycles, res.fuBusy);
  if (opts.trace) opts.trace->seal();
  return res;
}

}  // namespace valpipe::machine::detail
