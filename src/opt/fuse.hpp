// Graph-optimization passes run between balancing and lowering.
//
// fuseFifos coalesces every maximal chain of buffering cells — adjacent
// ungated Id and Fifo nodes linked point-to-point — into a single Op::Fifo
// node whose fifoDepth is the chain's total stage count, then prunes cells
// the rewrite left dead.  The machine layer fires such a node as one
// composite ring-buffer cell (exec/fifo.hpp) with the expanded Id chain's
// exact external timing: latency of `depth` stages, up to `depth` tokens in
// flight, maximum rate one firing per two instruction times — but O(1)
// cells, result packets and acknowledge packets per chain instead of
// O(depth).  Outputs and output times are identical to the expanded graph;
// only per-cell statistics differ (one cell stands for the whole chain).
//
// A link a -> b is fused only when it is provably equivalent to an interior
// chain arc: `a`'s sole consumer arc is `b`'s single data operand, the arc
// is Always-tagged, carries no load-time token, and is not a loop-closing
// feedback arc.  Rigid arcs fuse freely — the composite preserves the
// chain's total depth, so fixed-length cycle arithmetic is unchanged.
#pragma once

#include <cstddef>

#include "dfg/graph.hpp"

namespace valpipe::opt {

/// What fuseFifos did, for valc --profile and the benches.
struct FusionStats {
  std::size_t chainsFused = 0;    ///< maximal chains coalesced (>= 2 members)
  std::size_t cellsAbsorbed = 0;  ///< member nodes eliminated by coalescing
  std::size_t nodesBefore = 0;    ///< graph size going in
  std::size_t nodesAfter = 0;     ///< graph size after fusion + prune
};

/// Returns `g` with every fusable buffering chain collapsed to one Fifo
/// node (see file comment).  Idempotent; the identity transform on graphs
/// with no fusable chains.
dfg::Graph fuseFifos(const dfg::Graph& g, FusionStats* stats = nullptr);

}  // namespace valpipe::opt
