#include "opt/fuse.hpp"

#include <cstdint>
#include <vector>

#include "dfg/prune.hpp"
#include "support/check.hpp"

namespace valpipe::opt {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;

namespace {

/// A node that can be a chain member: a pure single-operand buffering cell.
/// Gated identities route packets and phase-shifted cells carry balancer
/// metadata — neither is a plain buffer stage.
bool chainable(const Node& n) {
  return (n.op == Op::Id || n.op == Op::Fifo) && !n.gate &&
         n.inputs.size() == 1 && n.phaseShift == 0;
}

/// Stage count a member contributes to the fused depth.
int stagesOf(const Node& n) { return n.op == Op::Fifo ? n.fifoDepth : 1; }

/// The sole consumer arc of each producer, when it has exactly one.
struct SoleUse {
  int count = 0;
  NodeId consumer{};
  int port = 0;  ///< operand index, or dfg::kGatePort
};

std::vector<SoleUse> soleUses(const Graph& g) {
  std::vector<SoleUse> uses(g.size());
  const auto note = [&](const PortSrc& src, NodeId consumer, int port) {
    if (!src.isArc()) return;
    SoleUse& u = uses[src.producer.index];
    ++u.count;
    u.consumer = consumer;
    u.port = port;
  };
  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    for (std::size_t p = 0; p < n.inputs.size(); ++p)
      note(n.inputs[p], id, static_cast<int>(p));
    if (n.gate) note(*n.gate, id, dfg::kGatePort);
  }
  return uses;
}

}  // namespace

Graph fuseFifos(const Graph& g, FusionStats* stats) {
  const std::vector<SoleUse> uses = soleUses(g);

  // The downstream chain member each node links to, if the link is fusable:
  // sole consumer, data operand 0, Always tag, no load-time token, not a
  // loop-closing back arc (fusing across one would make the chain look like
  // a cycle to validation), both endpoints chainable.  Rigid arcs are fine —
  // total depth is preserved, so fixed-length cycle arithmetic is unchanged.
  std::vector<NodeId> next(g.size());
  std::vector<bool> hasPrev(g.size(), false);
  for (NodeId id : g.ids()) {
    if (!chainable(g.node(id))) continue;
    const SoleUse& u = uses[id.index];
    if (u.count != 1 || u.port != 0) continue;
    const Node& b = g.node(u.consumer);
    if (!chainable(b)) continue;
    const PortSrc& arc = b.inputs[0];
    if (arc.tag != dfg::OutTag::Always || arc.feedback || arc.initial)
      continue;
    next[id.index] = u.consumer;
    hasPrev[u.consumer.index] = true;
  }

  // Collect maximal chains: walk forward from each head (a chainable node
  // with a fusable downstream link but no fusable upstream one).  Every
  // member maps to the head's slot in the rebuilt graph; interior members
  // and the tail vanish.
  std::vector<NodeId> headOf(g.size());  ///< valid => member of a fused chain
  std::vector<int> fusedDepth(g.size(), 0);
  FusionStats fs;
  fs.nodesBefore = g.size();
  for (NodeId id : g.ids()) {
    if (!next[id.index].valid() || hasPrev[id.index]) continue;
    int depth = stagesOf(g.node(id));
    std::size_t members = 1;
    headOf[id.index] = id;
    for (NodeId m = next[id.index]; ; m = next[m.index]) {
      headOf[m.index] = id;
      depth += stagesOf(g.node(m));
      ++members;
      if (!next[m.index].valid()) break;
    }
    VALPIPE_CHECK(depth >= 2);
    fusedDepth[id.index] = depth;
    ++fs.chainsFused;
    fs.cellsAbsorbed += members - 1;
  }

  // Rebuild with the same two-pass id-remapping scheme as dfg::expandFifos.
  // Pass 1: allocate new ids; a chain's every member maps to the fused node
  // sitting in the head's position.
  std::vector<NodeId> mapped(g.size());
  std::uint32_t alloc = 0;
  for (NodeId id : g.ids()) {
    const NodeId head = headOf[id.index];
    if (head.valid())
      mapped[id.index] = head == id ? NodeId{alloc++} : NodeId{};  // later
    else
      mapped[id.index] = NodeId{alloc++};
  }
  for (NodeId id : g.ids())
    if (headOf[id.index].valid())
      mapped[id.index] = mapped[headOf[id.index].index];

  const auto remap = [&](PortSrc src) {
    if (src.isArc()) src.producer = mapped[src.producer.index];
    return src;
  };

  // Pass 2: emit in order.  Consumers of a chain's tail now read the fused
  // node; their operand flags (tag/rigid/feedback/initial) ride along via
  // remap, as does the head's input arc with all of its flags.
  Graph out;
  for (NodeId id : g.ids()) {
    const NodeId head = headOf[id.index];
    if (head.valid() && head != id) continue;
    Node copy;
    if (head == id) {
      const Node& h = g.node(id);
      copy.op = Op::Fifo;
      copy.fifoDepth = fusedDepth[id.index];
      copy.inputs = {remap(h.inputs[0])};
      copy.label = !h.label.empty() ? h.label : std::string("fifo");
    } else {
      copy = g.node(id);
      for (PortSrc& in : copy.inputs) in = remap(in);
      if (copy.gate) copy.gate = remap(*copy.gate);
    }
    const NodeId got = out.add(std::move(copy));
    VALPIPE_CHECK(got == mapped[id.index]);
  }

  out = dfg::pruneDead(out);
  fs.nodesAfter = out.size();
  if (stats) *stats = fs;
  return out;
}

}  // namespace valpipe::opt
