// Small text/formatting helpers shared across the library and the bench
// harnesses (fixed-width table printing for the experiment reports).
#pragma once

#include <string>
#include <vector>

namespace valpipe {

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Formats a double with `prec` significant decimal digits, trimming noise.
std::string fmtDouble(double v, int prec = 4);

/// Minimal fixed-width plain-text table used by the bench harnesses to print
/// the paper-vs-measured rows.  Cells are right-padded; the header row is
/// underlined with dashes.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

}  // namespace valpipe
