// Runtime scalar value for the Val evaluator and the dataflow simulators.
//
// The static dataflow machine of the paper moves scalar result packets; a
// packet payload is one of the Val scalar types: boolean, integer, real.
// `Value` is that payload.  Arithmetic follows Val semantics: integer ops stay
// integral, mixed integer/real promotes to real, relational operators yield
// booleans.  Division by zero and type confusion raise ValueError — the
// simulators must never fold such an error into a bogus number.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <variant>

namespace valpipe {

/// Error in a scalar operation (type mismatch, division by zero, ...).
class ValueError : public std::runtime_error {
 public:
  explicit ValueError(const std::string& what) : std::runtime_error(what) {}
};

/// Discriminator for Value.
enum class ValueKind { Boolean, Integer, Real };

/// Returns a printable name ("boolean", "integer", "real").
const char* toString(ValueKind kind);

/// A Val scalar: boolean, integer or real.  Default-constructs to integer 0.
class Value {
 public:
  Value() : rep_(std::int64_t{0}) {}
  /* implicit */ Value(bool b) : rep_(b) {}                 // NOLINT
  /* implicit */ Value(std::int64_t i) : rep_(i) {}         // NOLINT
  /* implicit */ Value(int i) : rep_(std::int64_t{i}) {}    // NOLINT
  /* implicit */ Value(double r) : rep_(r) {}               // NOLINT

  ValueKind kind() const;

  bool isBoolean() const { return std::holds_alternative<bool>(rep_); }
  bool isInteger() const { return std::holds_alternative<std::int64_t>(rep_); }
  bool isReal() const { return std::holds_alternative<double>(rep_); }
  bool isNumeric() const { return isInteger() || isReal(); }

  /// Accessors throw ValueError when the kind does not match.
  bool asBoolean() const;
  std::int64_t asInteger() const;
  double asReal() const;
  /// Numeric value as double (integer is widened); throws on boolean.
  double toReal() const;

  /// Exact structural equality (kind and payload).  `1 == 1.0` is false here;
  /// use the EQ operation for Val's numeric comparison.
  friend bool operator==(const Value& a, const Value& b) { return a.rep_ == b.rep_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  std::string str() const;

 private:
  std::variant<bool, std::int64_t, double> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Scalar operations shared by the reference evaluator and both simulators so
/// every engine computes bit-identical results.
namespace ops {

Value add(const Value& a, const Value& b);
Value sub(const Value& a, const Value& b);
Value mul(const Value& a, const Value& b);
Value div(const Value& a, const Value& b);
Value neg(const Value& a);
Value abs(const Value& a);
Value min(const Value& a, const Value& b);
Value max(const Value& a, const Value& b);
/// Euclidean modulo on integers (result in [0, n) for n > 0).
Value mod(const Value& a, const Value& n);

Value lt(const Value& a, const Value& b);
Value le(const Value& a, const Value& b);
Value gt(const Value& a, const Value& b);
Value ge(const Value& a, const Value& b);
Value eq(const Value& a, const Value& b);
Value ne(const Value& a, const Value& b);

Value logicalAnd(const Value& a, const Value& b);
Value logicalOr(const Value& a, const Value& b);
Value logicalNot(const Value& a);

}  // namespace ops
}  // namespace valpipe
