#include "support/text.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace valpipe {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string fmtDouble(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", prec, v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::addRow(std::vector<std::string> row) {
  VALPIPE_CHECK_MSG(row.size() == rows_.front().size(), "table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(rows_.front().size(), 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 != row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(rows_.front());
  std::size_t total = 0;
  for (auto w : width) total += w;
  os << std::string(total + 2 * (width.size() - 1), '-') << '\n';
  for (std::size_t r = 1; r < rows_.size(); ++r) emit(rows_[r]);
  return os.str();
}

}  // namespace valpipe
