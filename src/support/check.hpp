// Internal invariant checking for valpipe.
//
// VALPIPE_CHECK is used for conditions that indicate a bug inside the library
// (never for user input errors, which are reported through Diagnostics).  It
// is active in all build types: a violated invariant in a compiler/simulator
// must never silently produce wrong machine code or wrong measurements.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace valpipe {

/// Thrown when an internal invariant is violated (library bug, not user error).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace valpipe

#define VALPIPE_CHECK(cond)                                                \
  do {                                                                     \
    if (!(cond)) ::valpipe::detail::checkFailed(#cond, __FILE__, __LINE__, \
                                                std::string{});            \
  } while (0)

#define VALPIPE_CHECK_MSG(cond, msg)                                       \
  do {                                                                     \
    if (!(cond)) ::valpipe::detail::checkFailed(#cond, __FILE__, __LINE__, \
                                                (msg));                    \
  } while (0)

#define VALPIPE_UNREACHABLE(msg) \
  ::valpipe::detail::checkFailed("unreachable", __FILE__, __LINE__, (msg))
