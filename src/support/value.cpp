#include "support/value.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace valpipe {

const char* toString(ValueKind kind) {
  switch (kind) {
    case ValueKind::Boolean: return "boolean";
    case ValueKind::Integer: return "integer";
    case ValueKind::Real: return "real";
  }
  return "?";
}

ValueKind Value::kind() const {
  if (isBoolean()) return ValueKind::Boolean;
  if (isInteger()) return ValueKind::Integer;
  return ValueKind::Real;
}

namespace {
[[noreturn]] void kindError(const char* want, const Value& got) {
  throw ValueError(std::string("expected ") + want + ", got " + got.str());
}
}  // namespace

bool Value::asBoolean() const {
  if (!isBoolean()) kindError("boolean", *this);
  return std::get<bool>(rep_);
}

std::int64_t Value::asInteger() const {
  if (!isInteger()) kindError("integer", *this);
  return std::get<std::int64_t>(rep_);
}

double Value::asReal() const {
  if (!isReal()) kindError("real", *this);
  return std::get<double>(rep_);
}

double Value::toReal() const {
  if (isReal()) return std::get<double>(rep_);
  if (isInteger()) return static_cast<double>(std::get<std::int64_t>(rep_));
  kindError("numeric", *this);
}

std::string Value::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (v.kind()) {
    case ValueKind::Boolean: return os << (v.asBoolean() ? "true" : "false");
    case ValueKind::Integer: return os << v.asInteger();
    case ValueKind::Real: return os << v.asReal();
  }
  return os;
}

namespace ops {
namespace {

/// Applies `fi` when both operands are integers, otherwise promotes to real
/// and applies `fr`.  Booleans are rejected.
template <class FInt, class FReal>
Value numeric(const Value& a, const Value& b, FInt fi, FReal fr) {
  if (a.isInteger() && b.isInteger()) return Value(fi(a.asInteger(), b.asInteger()));
  return Value(fr(a.toReal(), b.toReal()));
}

template <class FInt, class FReal>
Value compare(const Value& a, const Value& b, FInt fi, FReal fr) {
  if (a.isInteger() && b.isInteger()) return Value(fi(a.asInteger(), b.asInteger()));
  return Value(fr(a.toReal(), b.toReal()));
}

}  // namespace

Value add(const Value& a, const Value& b) {
  return numeric(a, b, [](auto x, auto y) { return x + y; },
                 [](double x, double y) { return x + y; });
}

Value sub(const Value& a, const Value& b) {
  return numeric(a, b, [](auto x, auto y) { return x - y; },
                 [](double x, double y) { return x - y; });
}

Value mul(const Value& a, const Value& b) {
  return numeric(a, b, [](auto x, auto y) { return x * y; },
                 [](double x, double y) { return x * y; });
}

Value div(const Value& a, const Value& b) {
  if (a.isInteger() && b.isInteger()) {
    if (b.asInteger() == 0) throw ValueError("integer division by zero");
    return Value(a.asInteger() / b.asInteger());
  }
  const double d = b.toReal();
  if (d == 0.0) throw ValueError("real division by zero");
  return Value(a.toReal() / d);
}

Value neg(const Value& a) {
  if (a.isInteger()) return Value(-a.asInteger());
  return Value(-a.toReal());
}

Value abs(const Value& a) {
  if (a.isInteger()) return Value(a.asInteger() < 0 ? -a.asInteger() : a.asInteger());
  return Value(std::fabs(a.toReal()));
}

Value min(const Value& a, const Value& b) {
  return numeric(a, b, [](auto x, auto y) { return x < y ? x : y; },
                 [](double x, double y) { return x < y ? x : y; });
}

Value max(const Value& a, const Value& b) {
  return numeric(a, b, [](auto x, auto y) { return x > y ? x : y; },
                 [](double x, double y) { return x > y ? x : y; });
}

Value mod(const Value& a, const Value& n) {
  const std::int64_t x = a.asInteger();
  const std::int64_t m = n.asInteger();
  if (m <= 0) throw ValueError("modulo by non-positive value");
  const std::int64_t r = x % m;
  return Value(r < 0 ? r + m : r);
}

Value lt(const Value& a, const Value& b) {
  return compare(a, b, [](auto x, auto y) { return x < y; },
                 [](double x, double y) { return x < y; });
}

Value le(const Value& a, const Value& b) {
  return compare(a, b, [](auto x, auto y) { return x <= y; },
                 [](double x, double y) { return x <= y; });
}

Value gt(const Value& a, const Value& b) {
  return compare(a, b, [](auto x, auto y) { return x > y; },
                 [](double x, double y) { return x > y; });
}

Value ge(const Value& a, const Value& b) {
  return compare(a, b, [](auto x, auto y) { return x >= y; },
                 [](double x, double y) { return x >= y; });
}

Value eq(const Value& a, const Value& b) {
  if (a.isBoolean() || b.isBoolean()) return Value(a.asBoolean() == b.asBoolean());
  return compare(a, b, [](auto x, auto y) { return x == y; },
                 [](double x, double y) { return x == y; });
}

Value ne(const Value& a, const Value& b) { return Value(!eq(a, b).asBoolean()); }

Value logicalAnd(const Value& a, const Value& b) {
  return Value(a.asBoolean() && b.asBoolean());
}

Value logicalOr(const Value& a, const Value& b) {
  return Value(a.asBoolean() || b.asBoolean());
}

Value logicalNot(const Value& a) { return Value(!a.asBoolean()); }

}  // namespace ops
}  // namespace valpipe
