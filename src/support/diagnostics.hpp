// Source locations and user-facing error reporting for the Val frontend and
// the compiler.  Internal invariants use VALPIPE_CHECK (check.hpp) instead.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace valpipe {

/// 1-based position in a Val source text.  line == 0 means "no location".
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }
  std::string str() const;
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// A single user-facing problem found in a Val program.
struct Diagnostic {
  enum class Severity { Error, Warning };
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  std::string str() const;
};

/// Collects diagnostics during lexing / parsing / checking / compilation.
class Diagnostics {
 public:
  void error(SourceLoc loc, std::string message);
  void warning(SourceLoc loc, std::string message);

  bool hasErrors() const { return errorCount_ > 0; }
  const std::vector<Diagnostic>& all() const { return items_; }
  std::size_t errorCount() const { return errorCount_; }

  /// All diagnostics joined with newlines (empty string when clean).
  std::string str() const;

 private:
  std::vector<Diagnostic> items_;
  std::size_t errorCount_ = 0;
};

/// Thrown by convenience entry points that do not hand back a Diagnostics
/// object; carries the formatted diagnostic list.
class CompileError : public std::runtime_error {
 public:
  explicit CompileError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace valpipe
