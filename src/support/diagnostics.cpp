#include "support/diagnostics.hpp"

#include <sstream>

namespace valpipe {

std::string SourceLoc::str() const {
  if (!valid()) return "<no-loc>";
  std::ostringstream os;
  os << line << ':' << column;
  return os.str();
}

std::string Diagnostic::str() const {
  std::ostringstream os;
  os << (severity == Severity::Error ? "error" : "warning");
  if (loc.valid()) os << " at " << loc.str();
  os << ": " << message;
  return os.str();
}

void Diagnostics::error(SourceLoc loc, std::string message) {
  items_.push_back({Diagnostic::Severity::Error, loc, std::move(message)});
  ++errorCount_;
}

void Diagnostics::warning(SourceLoc loc, std::string message) {
  items_.push_back({Diagnostic::Severity::Warning, loc, std::move(message)});
}

std::string Diagnostics::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& d : items_) {
    if (!first) os << '\n';
    os << d.str();
    first = false;
  }
  return os.str();
}

}  // namespace valpipe
