#include "flow/difference_lp.hpp"

#include <algorithm>
#include <limits>

#include "flow/mincostflow.hpp"
#include "support/check.hpp"

namespace valpipe::flow {

namespace {
constexpr std::int64_t kInfCap = std::numeric_limits<std::int64_t>::max() / 8;

/// Detects a directed constraint cycle with positive total lower bound
/// (primal infeasibility) with Bellman-Ford over arcs u->v of length -lo.
bool feasible(int n, const std::vector<DiffConstraint>& constraints) {
  std::vector<std::int64_t> dist(n, 0);
  for (int pass = 0; pass < n; ++pass) {
    bool changed = false;
    for (const auto& c : constraints) {
      // d[v] >= d[u] + lo  <=>  shortest-path edge v -> u of weight -lo from
      // the "<=" view; any relaxation loop that never settles is a positive
      // cycle.
      if (dist[c.u] > dist[c.v] - c.lo) {
        dist[c.u] = dist[c.v] - c.lo;
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return false;
}

}  // namespace

std::optional<std::vector<std::int64_t>> solveDifferenceLP(
    int n, const std::vector<DiffConstraint>& constraints,
    const std::vector<DiffObjectiveTerm>& objective) {
  VALPIPE_CHECK(n >= 0);
  for (const auto& t : objective) VALPIPE_CHECK_MSG(t.w >= 0, "negative weight");
  if (!feasible(n, constraints)) return std::nullopt;

  // Dual construction.  With c_v = sum_{t: v_t == v} w_t - sum_{t: u_t == v} w_t
  // the dual is:  max sum_a lo_a * y_a   s.t.  inflow(v) - outflow(v) = c_v,
  // y >= 0, over flow arcs u_a -> v_a.  As a min-cost flow: arc cost -lo_a,
  // node supply b_v = -c_v.
  MinCostFlow mcf(n);
  std::vector<std::int64_t> c(n, 0);
  for (const auto& t : objective) {
    c[t.v] += t.w;
    c[t.u] -= t.w;
  }
  for (int v = 0; v < n; ++v) mcf.setSupply(v, -c[v]);
  for (const auto& a : constraints) mcf.addEdge(a.u, a.v, kInfCap, -a.lo);

  const MinCostFlow::Result res = mcf.solve();
  if (!res.feasible) return std::nullopt;  // primal unbounded

  // Optimal potentials satisfy, for every (never saturated) constraint arc,
  // -lo - pi[u] + pi[v] >= 0, i.e. pi[u] - pi[v] >= lo: the optimal depths
  // are d = -pi (complementary slackness makes them optimal, see tests that
  // cross-check against brute force).
  std::vector<std::int64_t> d(n);
  for (int v = 0; v < n; ++v) d[v] = -mcf.potential(v);

  // Normalize each weakly connected component so its minimum depth is zero.
  std::vector<int> comp(n, -1);
  std::vector<std::vector<int>> adj(n);
  for (const auto& a : constraints) {
    adj[a.u].push_back(a.v);
    adj[a.v].push_back(a.u);
  }
  int numComp = 0;
  for (int v = 0; v < n; ++v) {
    if (comp[v] != -1) continue;
    std::vector<int> stack{v};
    comp[v] = numComp;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int w : adj[u])
        if (comp[w] == -1) {
          comp[w] = numComp;
          stack.push_back(w);
        }
    }
    ++numComp;
  }
  std::vector<std::int64_t> minOf(numComp,
                                  std::numeric_limits<std::int64_t>::max());
  for (int v = 0; v < n; ++v) minOf[comp[v]] = std::min(minOf[comp[v]], d[v]);
  for (int v = 0; v < n; ++v) d[v] -= minOf[comp[v]];

  // Sanity: the result must satisfy every constraint.
  for (const auto& a : constraints)
    VALPIPE_CHECK_MSG(d[a.v] - d[a.u] >= a.lo, "LP dual produced invalid depths");

  return d;
}

}  // namespace valpipe::flow
