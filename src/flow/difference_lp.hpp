// Linear programs over difference constraints, solved through their min-cost
// flow dual — the exact construction §8(3) of the paper alludes to for
// optimum (minimum-buffer) balancing.
//
//   minimize   sum_t  w_t * (d[v_t] - d[u_t])        (w_t >= 0)
//   subject to d[v_a] - d[u_a] >= lo_a   for every constraint a
//
// over integer stage depths d.  The dual is a min-cost flow with node
// supplies; the optimal node potentials of that flow are an optimal d.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace valpipe::flow {

/// d[v] - d[u] >= lo
struct DiffConstraint {
  int u = 0;
  int v = 0;
  std::int64_t lo = 1;
};

/// Contributes w * (d[v] - d[u]) to the objective; w must be >= 0.
struct DiffObjectiveTerm {
  int u = 0;
  int v = 0;
  std::int64_t w = 1;
};

/// Solves the difference-constraint LP over `n` variables.  Returns the
/// optimal integer assignment (normalized so min d == 0 per weakly-connected
/// component), or nullopt when the primal is infeasible (a constraint cycle
/// with positive total lower bound) or unbounded (dual flow infeasible).
std::optional<std::vector<std::int64_t>> solveDifferenceLP(
    int n, const std::vector<DiffConstraint>& constraints,
    const std::vector<DiffObjectiveTerm>& objective);

}  // namespace valpipe::flow
