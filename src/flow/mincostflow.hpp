// Minimum-cost flow with node supplies — the substrate behind the paper's
// §8(3) observation that optimum balancing (minimum total FIFO buffering) is
// the linear-programming dual of a min-cost flow problem.
//
// Successive shortest augmenting paths with Johnson potentials; negative edge
// costs are admitted as long as the initial network contains no negative-cost
// directed cycle (guaranteed by the balancing reduction, which only adds
// zero-total-cost cycles for rigid arcs).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace valpipe::flow {

class MinCostFlow {
 public:
  /// Creates a network with `n` nodes, all with zero supply.
  explicit MinCostFlow(int n);

  int nodeCount() const { return static_cast<int>(supply_.size()); }

  /// Adds a fresh node; returns its index.
  int addNode();

  /// Sets node `v`'s supply: positive = source of `b` units, negative = sink.
  /// Supplies must sum to zero over the whole network for feasibility.
  void setSupply(int v, std::int64_t b);
  std::int64_t supply(int v) const { return supply_[v]; }

  /// Adds a directed edge u->v; returns an edge id usable with flowOn().
  int addEdge(int u, int v, std::int64_t capacity, std::int64_t cost);

  struct Result {
    bool feasible = false;        ///< all supplies routed
    std::int64_t totalCost = 0;   ///< sum of cost * flow over edges
  };

  /// Computes a minimum-cost flow meeting all supplies.  May be called once.
  Result solve();

  /// Flow routed on edge `id` (valid after solve()).
  std::int64_t flowOn(int id) const;

  /// Optimal node potential of `v` (valid after a feasible solve()): for
  /// every edge with residual capacity, cost - pi[u] + pi[v] >= 0.  These are
  /// the optimal duals the balancer reads off as stage depths.
  std::int64_t potential(int v) const { return pi_[v]; }

 private:
  struct Edge {
    int to;
    std::int64_t cap;
    std::int64_t cost;
    int rev;  ///< index of the reverse edge in graph_[to]
  };

  void addInternalEdge(int u, int v, std::int64_t cap, std::int64_t cost);
  /// SPFA pass establishing potentials that make all residual costs
  /// non-negative (required before the Dijkstra phase).
  void primePotentials();

  std::vector<std::int64_t> supply_;
  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, int>> edgeRef_;  ///< public edge id -> (node, idx)
  std::vector<std::int64_t> pi_;
  bool solved_ = false;
};

}  // namespace valpipe::flow
