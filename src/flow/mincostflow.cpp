#include "flow/mincostflow.hpp"

#include <deque>
#include <limits>
#include <queue>

#include "support/check.hpp"

namespace valpipe::flow {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

MinCostFlow::MinCostFlow(int n) : supply_(n, 0), graph_(n), pi_(n, 0) {}

int MinCostFlow::addNode() {
  supply_.push_back(0);
  graph_.emplace_back();
  pi_.push_back(0);
  return nodeCount() - 1;
}

void MinCostFlow::setSupply(int v, std::int64_t b) {
  VALPIPE_CHECK(!solved_);
  supply_[v] = b;
}

void MinCostFlow::addInternalEdge(int u, int v, std::int64_t cap,
                                  std::int64_t cost) {
  graph_[u].push_back({v, cap, cost, static_cast<int>(graph_[v].size())});
  graph_[v].push_back({u, 0, -cost, static_cast<int>(graph_[u].size()) - 1});
}

int MinCostFlow::addEdge(int u, int v, std::int64_t cap, std::int64_t cost) {
  VALPIPE_CHECK(!solved_);
  VALPIPE_CHECK(u >= 0 && u < nodeCount() && v >= 0 && v < nodeCount());
  VALPIPE_CHECK(cap >= 0);
  edgeRef_.emplace_back(u, static_cast<int>(graph_[u].size()));
  addInternalEdge(u, v, cap, cost);
  return static_cast<int>(edgeRef_.size()) - 1;
}

void MinCostFlow::primePotentials() {
  // SPFA from a virtual source at distance 0 to every node: afterwards
  // pi[v] = shortest residual cost reachable-from-anywhere, which makes all
  // residual reduced costs non-negative.  Aborts on a negative cycle (caller
  // contract violation).
  const int n = nodeCount();
  std::vector<std::int64_t> dist(n, 0);
  std::vector<int> relaxations(n, 0);
  std::vector<char> inQueue(n, 1);
  std::deque<int> queue;
  for (int v = 0; v < n; ++v) queue.push_back(v);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    inQueue[u] = 0;
    for (const Edge& e : graph_[u]) {
      if (e.cap <= 0) continue;
      const std::int64_t nd = dist[u] + e.cost;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        if (++relaxations[e.to] > n + 1)
          VALPIPE_UNREACHABLE("negative-cost cycle in min-cost flow network");
        if (!inQueue[e.to]) {
          inQueue[e.to] = 1;
          queue.push_back(e.to);
        }
      }
    }
  }
  for (int v = 0; v < n; ++v) pi_[v] = dist[v];
}

MinCostFlow::Result MinCostFlow::solve() {
  VALPIPE_CHECK(!solved_);
  solved_ = true;

  // Route supplies via a super source / super sink.
  const int s = addNode();
  const int t = addNode();
  std::int64_t need = 0;
  for (int v = 0; v + 2 < nodeCount(); ++v) {
    if (supply_[v] > 0) {
      addInternalEdge(s, v, supply_[v], 0);
      need += supply_[v];
    } else if (supply_[v] < 0) {
      addInternalEdge(v, t, -supply_[v], 0);
    }
  }

  primePotentials();

  const int n = nodeCount();
  std::int64_t sent = 0;
  std::int64_t totalCost = 0;
  std::vector<std::int64_t> dist(n);
  std::vector<int> prevNode(n), prevEdge(n);

  while (sent < need) {
    // Dijkstra on reduced costs.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[s] = 0;
    using Item = std::pair<std::int64_t, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.push({0, s});
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (int i = 0; i < static_cast<int>(graph_[u].size()); ++i) {
        const Edge& e = graph_[u][i];
        if (e.cap <= 0) continue;
        const std::int64_t nd = d + e.cost + pi_[u] - pi_[e.to];
        VALPIPE_CHECK_MSG(e.cost + pi_[u] - pi_[e.to] >= 0,
                          "negative reduced cost");
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          prevNode[e.to] = u;
          prevEdge[e.to] = i;
          heap.push({nd, e.to});
        }
      }
    }
    if (dist[t] >= kInf) break;  // no augmenting path: infeasible

    // Keep potentials valid for every node (cap unreachable at dist[t]).
    for (int v = 0; v < n; ++v) pi_[v] += std::min(dist[v], dist[t]);

    // Augment along the found path by its bottleneck.
    std::int64_t push = need - sent;
    for (int v = t; v != s; v = prevNode[v])
      push = std::min(push, graph_[prevNode[v]][prevEdge[v]].cap);
    for (int v = t; v != s; v = prevNode[v]) {
      Edge& e = graph_[prevNode[v]][prevEdge[v]];
      e.cap -= push;
      graph_[e.to][e.rev].cap += push;
      totalCost += push * e.cost;
    }
    sent += push;
  }

  return {sent == need, totalCost};
}

std::int64_t MinCostFlow::flowOn(int id) const {
  VALPIPE_CHECK(solved_);
  const auto [u, idx] = edgeRef_[id];
  const Edge& e = graph_[u][idx];
  // Flow equals the residual capacity of the reverse edge.
  return graph_[e.to][e.rev].cap;
}

}  // namespace valpipe::flow
