#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace valpipe::sched {

const char* declineName(Decline d) {
  switch (d) {
    case Decline::None: return "accepted";
    case Decline::Gate: return "gated-delivery";
    case Decline::Merge: return "data-dependent-merge";
    case Decline::ArrayMemory: return "array-memory";
    case Decline::Feedback: return "feedback-cycle";
    case Decline::InitialToken: return "initial-token";
    case Decline::Unbalanced: return "unbalanced";
  }
  return "?";
}

namespace {

SteadySchedule declined(Decline d, std::string detail) {
  SteadySchedule s;
  s.accepted = false;
  s.decline = d;
  s.detail = std::move(detail);
  return s;
}

std::string cellName(const exec::ExecutableGraph& eg, std::uint32_t c) {
  std::ostringstream os;
  os << "cell " << c << " (" << dfg::mnemonic(eg.cell(c).op);
  if (eg.cell(c).stream >= 0) os << " " << eg.streamName(eg.cell(c));
  os << ")";
  return os.str();
}

}  // namespace

SteadySchedule computeSteadySchedule(const exec::ExecutableGraph& eg) {
  const auto n = static_cast<std::uint32_t>(eg.size());

  // --- structural acceptance: the firing pattern must be data-independent.
  for (std::uint32_t c = 0; c < n; ++c) {
    const exec::Cell& cell = eg.cell(c);
    if (cell.hasGate || cell.alwaysEnd != cell.destEnd)
      return declined(Decline::Gate,
                      cellName(eg, c) + " routes results by a runtime gate");
    if (cell.op == dfg::Op::Merge)
      return declined(Decline::Merge,
                      cellName(eg, c) +
                          " consumes operands by a runtime merge control");
    if (cell.op == dfg::Op::AmStore || cell.op == dfg::Op::AmFetch)
      return declined(Decline::ArrayMemory,
                      cellName(eg, c) +
                          " has data-dependent array-memory availability");
    for (int p = 0; p < cell.numPorts; ++p)
      if (eg.operand(cell, p).hasInitial)
        return declined(Decline::InitialToken,
                        cellName(eg, c) +
                            " carries a load-time token (feedback bootstrap)");
  }

  // --- topological order over operand arcs; a leftover cell is on a cycle.
  std::vector<std::uint32_t> indeg(n, 0);
  for (std::uint32_t c = 0; c < n; ++c) {
    const exec::Cell& cell = eg.cell(c);
    for (int p = 0; p < cell.numPorts; ++p)
      if (!eg.operand(cell, p).isLiteral()) ++indeg[c];
  }
  SteadySchedule s;
  s.accepted = true;
  s.topo.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c)
    if (indeg[c] == 0) s.topo.push_back(c);
  for (std::size_t i = 0; i < s.topo.size(); ++i) {
    const exec::Cell& cell = eg.cell(s.topo[i]);
    for (const exec::Dest& d : eg.alwaysDests(cell))
      if (--indeg[d.consumer] == 0) s.topo.push_back(d.consumer);
  }
  if (s.topo.size() != n) {
    std::uint32_t stuck = 0;
    for (std::uint32_t c = 0; c < n; ++c)
      if (indeg[c] != 0) { stuck = c; break; }
    return declined(Decline::Feedback,
                    cellName(eg, stuck) +
                        " sits on a feedback cycle (rate k/S, §7)");
  }

  // --- ASAP slots.  A producer's slot is the stage its result leaves from:
  // a composite depth-k FIFO contributes k stages, everything else one.
  s.slot.assign(n, 0);
  s.arcOffset.assign(eg.slotCount(), 0);
  for (std::uint32_t c : s.topo) {
    const exec::Cell& cell = eg.cell(c);
    std::int64_t ready = -1;  // -1 => source / all-literal cell
    bool first = true;
    bool balanced = true;
    for (int p = 0; p < cell.numPorts; ++p) {
      const exec::Operand& o = eg.operand(cell, p);
      if (o.isLiteral()) continue;
      const std::int64_t at = s.slot[o.producer];
      if (first) { ready = at; first = false; }
      else if (at != ready) balanced = false;
      ready = std::max(ready, at);
    }
    if (!balanced)
      return declined(Decline::Unbalanced,
                      cellName(eg, c) +
                          " reconverges operands at unequal depth (§8: "
                          "insert FIFOs to balance)");
    const std::int64_t cost =
        cell.op == dfg::Op::Fifo && cell.fifoDepth >= 2 ? cell.fifoDepth : 1;
    s.slot[c] = ready < 0 ? (dfg::isSource(cell.op) ? 0 : cost) : ready + cost;
    s.depthMax = std::max(s.depthMax, s.slot[c]);
    for (int p = 0; p < cell.numPorts; ++p) {
      const exec::Operand& o = eg.operand(cell, p);
      if (!o.isLiteral())
        s.arcOffset[eg.slotOf(cell, p)] = s.slot[c] - s.slot[o.producer];
    }
  }
  s.phase.assign(n, 0);
  for (std::uint32_t c = 0; c < n; ++c)
    s.phase[c] = static_cast<std::int32_t>(s.slot[c] % s.hyperPeriod);
  return s;
}

std::string SteadySchedule::explain(const exec::ExecutableGraph& eg) const {
  std::ostringstream os;
  if (!accepted) {
    os << "steady schedule: declined (" << declineName(decline) << ")\n"
       << "  " << detail << "\n"
       << "  the compiled scheduler falls back to event-driven execution\n";
    return os.str();
  }
  os << "steady schedule: accepted\n"
     << "  hyper-period: " << hyperPeriod
     << " instruction times (unit profile; 1 firing per cell per period)\n"
     << "  pipeline depth: " << depthMax << " stage"
     << (depthMax == 1 ? "" : "s") << "\n"
     << "  cell  slot  phase  op\n";
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cell = eg.cell(c);
    os << "  " << c << "\t" << slot[c] << "\t" << phase[c] << "\t"
       << dfg::mnemonic(cell.op);
    if (cell.op == dfg::Op::Fifo && cell.fifoDepth >= 2)
      os << "[" << cell.fifoDepth << "]";
    if (cell.stream >= 0) os << " " << eg.streamName(cell);
    bool any = false;
    for (int p = 0; p < cell.numPorts; ++p) {
      const exec::Operand& o = eg.operand(cell, p);
      if (o.isLiteral()) continue;
      os << (any ? ", " : "   <- ") << o.producer << " (+"
         << arcOffset[eg.slotOf(cell, p)] << ")";
      any = true;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace valpipe::sched
