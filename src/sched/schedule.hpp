// Static-schedule IR of the compiled steady-state backend (§3).
//
// The paper's central observation is that a *balanced* data flow graph needs
// no runtime scheduling at all: every cell fires once per hyper-period (two
// instruction times under the unit profile — one forward result hop plus one
// backward acknowledge hop), and which instruction time within the period a
// cell fires at is fixed by its pipeline depth.  The schedulers in
// src/machine rediscover that schedule token by token; SteadySchedule records
// it once, at compile/inspect time, from the same structural facts the
// balancer and opt::fuseFifos derive:
//
//   slot[c]      — the cell's ASAP pipeline depth: the instruction-time
//                  offset (in stage periods) of its first steady firing
//                  relative to the sources.  A composite FIFO of depth k
//                  occupies k consecutive slots (its fused Id chain);
//   phase[c]     — slot[c] mod hyperPeriod: which half of the period the
//                  cell fires in once the pipe is full;
//   arcOffset[s] — per operand arc, the steady-state buffer offset: how many
//                  firings the consumer's token index trails the producer's
//                  (1 for a plain arc, k across a depth-k FIFO).  In steady
//                  state this is exactly the token population of the arc;
//   topo         — a topological order of the cells, the straight-line
//                  evaluation order of the steady-state value loop
//                  (sched/steady_loop.hpp).
//
// The IR is a *certificate*, not an oracle: SchedulerKind::Compiled only
// attempts its steady-state fast path on accepted graphs, and the runtime
// detector (machine/engine_compiled.cpp) independently verifies the machine
// state really has become periodic before skipping ahead.  A graph is
// declined — with a structured reason, so the engine can fall back to
// EventDriven and valc --explain-schedule can say why — when its firing
// pattern is not statically known: data-dependent routing (gates, merges),
// feedback cycles or load-time tokens (for-iter schemes), array-memory
// traffic, or unbalanced reconvergence (§8: an unbalanced graph throttles
// below the maximum rate, so no single hyper-period describes it).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/executable_graph.hpp"

namespace valpipe::sched {

/// Why a graph has no static steady schedule.
enum class Decline : std::uint8_t {
  None,         ///< accepted
  Gate,         ///< gated delivery: destinations depend on runtime booleans
  Merge,        ///< non-strict merge: consumption depends on runtime booleans
  ArrayMemory,  ///< AmStore/AmFetch traffic has data-dependent availability
  Feedback,     ///< feedback cycle (for-iter schemes): rate k/S, not 1/P
  InitialToken, ///< load-time token (counter bootstrap) implies a cycle
  Unbalanced,   ///< reconvergent operands at unequal depth (§8)
};

const char* declineName(Decline d);

/// Thrown by the Compiled scheduler under CompiledFallback::Error.
class ScheduleDeclined : public std::runtime_error {
 public:
  ScheduleDeclined(Decline d, const std::string& what)
      : std::runtime_error(what), decline_(d) {}
  Decline decline() const { return decline_; }

 private:
  Decline decline_;
};

/// The static steady-state schedule of an accepted graph (file comment).
struct SteadySchedule {
  bool accepted = false;
  Decline decline = Decline::None;
  std::string detail;  ///< human-readable decline reason ("" when accepted)

  /// Stage period under the unit timing profile: one result hop forward plus
  /// one acknowledge hop backward — the §3 maximum-repetition-rate bound of
  /// one firing per two instruction times.  Other profiles stretch the
  /// period; the runtime detector measures the actual one.
  std::int64_t hyperPeriod = 2;
  std::int64_t depthMax = 0;  ///< pipeline fill depth in stages

  // Per-cell / per-operand-slot facts; empty when declined.
  std::vector<std::int64_t> slot;       ///< per cell: ASAP firing slot
  std::vector<std::int32_t> phase;      ///< per cell: slot % hyperPeriod
  std::vector<std::int64_t> arcOffset;  ///< per flat operand slot (0=literal)
  std::vector<std::uint32_t> topo;      ///< straight-line evaluation order

  /// The --explain-schedule dump: hyper-period, per-cell slot/phase table,
  /// arc offsets — or the structured decline reason.
  std::string explain(const exec::ExecutableGraph& eg) const;
};

/// Computes the steady schedule of `eg`, or the structured decline.  Pure
/// graph analysis: no timing profile, no input data.
SteadySchedule computeSteadySchedule(const exec::ExecutableGraph& eg);

}  // namespace valpipe::sched
