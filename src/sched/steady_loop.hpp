// Straight-line steady-state value loop over an accepted SteadySchedule.
//
// In steady state every cell of an accepted graph fires once per hyper-period
// and every arc carries tokens strictly in order, so the k-th firing of a
// cell consumes exactly the k-th token of each operand producer (a composite
// FIFO is the identity on token indices).  Values are therefore *elementwise
// in the token index*: the whole timed simulation collapses, value-wise, to
//
//   for k in [lo, hi): val[c][k] = op(val[p0][k], ..., literals)
//
// evaluated in the schedule's topological order — no time wheel, no ready
// queue, no acknowledge traffic.  SchedulerKind::Compiled uses this loop to
// reconstruct, in bulk, every value the event engine would have produced
// across the hyper-periods it skips: output-stream appends, slot occupants
// and FIFO ring contents at the jump target.
//
// Bit-identity contract: the generic path calls exec::applyPure — the same
// dispatch the engines use — on the same Value inputs, so results (and any
// ValueError) are identical by construction.  The vectorized fast path runs
// on raw double blocks and is only taken when a pre-pass proves every needed
// value is real and every needed op is one whose ops:: real branch is the
// plain double expression (add/sub/mul/neg/abs/min/max and the identity
// ops); Div is excluded (ops::div throws on 0.0 where doubles yield inf),
// as is everything integer, boolean or comparison-typed.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/executable_graph.hpp"
#include "sched/schedule.hpp"
#include "support/value.hpp"

namespace valpipe::sched {

/// Bulk token-value evaluator for an accepted schedule (file comment).
/// Usage: bind sources, request() index ranges, compute(), then value().
class SteadyLoop {
 public:
  SteadyLoop(const exec::ExecutableGraph& eg, const SteadySchedule& sched);

  /// Binds the host stream feeding Input cell `c` (token k reads element
  /// k % tokensPerWave, as in the engines).  BoolSeq/IndexSeq sources need
  /// no binding; their sequences are generated from the cell attributes.
  void bindSource(std::uint32_t c, const std::vector<Value>* data);

  /// Requests tokens [lo, hi) of cell `c`.  Ranges widen to their hull and
  /// propagate to every ancestor, so only indices a real run would actually
  /// produce may be requested (phantom evaluation could throw spuriously).
  void request(std::uint32_t c, std::int64_t lo, std::int64_t hi);

  /// Evaluates all requested ranges.  Throws ValueError exactly where the
  /// engines would (same ops:: routines on the same inputs).
  void compute();

  /// Token `k` of cell `c`; only valid after compute() for requested (or
  /// ancestor-propagated) indices.
  Value value(std::uint32_t c, std::int64_t k) const;

  /// Bulk read: the vectorized block of cell `c` positioned at token `lo`,
  /// or nullptr when the last compute() took the generic path.  Valid for
  /// the same index range as value(); the caller indexes relative to `lo`.
  const double* realBlock(std::uint32_t c, std::int64_t lo) const {
    if (!vectorized_) return nullptr;
    return dblock_[c].data() + (lo - lo_[c]);
  }

  /// True when the last compute() ran the all-real vectorized fast path.
  bool vectorized() const { return vectorized_; }

 private:
  Value sourceValue(std::uint32_t c, std::int64_t k) const;
  bool fastPathEligible() const;
  void computeGeneric();
  void computeVectorized();

  const exec::ExecutableGraph& eg_;
  const SteadySchedule& sched_;
  std::vector<const std::vector<Value>*> sourceData_;
  std::vector<std::int64_t> lo_, hi_;  ///< per-cell requested hull, lo>hi none
  std::vector<std::vector<Value>> block_;   ///< generic path results
  std::vector<std::vector<double>> dblock_; ///< fast path results
  std::vector<double> scratch0_, scratch1_; ///< literal broadcast buffers
  bool vectorized_ = false;
  bool computed_ = false;
};

}  // namespace valpipe::sched
