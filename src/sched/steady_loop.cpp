#include "sched/steady_loop.hpp"

#include <cmath>

#include "exec/ops.hpp"
#include "support/check.hpp"

namespace valpipe::sched {

namespace {

/// Ops whose real-valued ops:: branch is the plain double expression the
/// vectorized loop uses (value.cpp).  Div is NOT here: ops::div throws on
/// 0.0 where raw doubles would yield inf.
bool fastOp(dfg::Op op) {
  using dfg::Op;
  switch (op) {
    case Op::Id:
    case Op::Fifo:
    case Op::Neg:
    case Op::Abs:
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Min:
    case Op::Max: return true;
    default: return false;
  }
}

}  // namespace

SteadyLoop::SteadyLoop(const exec::ExecutableGraph& eg,
                       const SteadySchedule& sched)
    : eg_(eg), sched_(sched) {
  VALPIPE_CHECK_MSG(sched.accepted, "SteadyLoop requires an accepted schedule");
  sourceData_.assign(eg.size(), nullptr);
  lo_.assign(eg.size(), 0);
  hi_.assign(eg.size(), -1);  // lo > hi => nothing requested
  block_.resize(eg.size());
  dblock_.resize(eg.size());
}

void SteadyLoop::bindSource(std::uint32_t c, const std::vector<Value>* data) {
  sourceData_[c] = data;
}

void SteadyLoop::request(std::uint32_t c, std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return;
  if (lo_[c] > hi_[c]) {
    lo_[c] = lo;
    hi_[c] = hi;
  } else {
    lo_[c] = std::min(lo_[c], lo);
    hi_[c] = std::max(hi_[c], hi);
  }
}

Value SteadyLoop::sourceValue(std::uint32_t c, std::int64_t k) const {
  // Mirrors detail::EngineBase::sourceValue for the accepted source ops.
  const exec::Cell& cell = eg_.cell(c);
  const std::int64_t j = k % cell.tokensPerWave;
  switch (cell.op) {
    case dfg::Op::Input: {
      VALPIPE_CHECK_MSG(sourceData_[c] != nullptr, "unbound Input stream");
      return (*sourceData_[c])[static_cast<std::size_t>(j)];
    }
    case dfg::Op::BoolSeq: return Value(eg_.patternBit(cell, j));
    case dfg::Op::IndexSeq: {
      const std::int64_t span = cell.seqHi - cell.seqLo + 1;
      return Value(cell.seqLo + (j / cell.seqRepeat) % span);
    }
    default: VALPIPE_UNREACHABLE("not an accepted source op");
  }
}

bool SteadyLoop::fastPathEligible() const {
  // Inductively prove every needed value real (file comment): real sources
  // and real literals stay real through the fast ops; anything else (bool /
  // integer sequences, comparisons, Div, Mod, ...) falls back to the
  // generic Value path.
  std::vector<char> realOut(eg_.size(), 0);
  for (std::uint32_t c : sched_.topo) {
    const exec::Cell& cell = eg_.cell(c);
    if (dfg::isSource(cell.op)) {
      if (cell.op != dfg::Op::Input || sourceData_[c] == nullptr) continue;
      const std::vector<Value>& data = *sourceData_[c];
      if (data.size() < static_cast<std::size_t>(cell.tokensPerWave)) continue;
      bool allReal = true;
      for (std::int64_t j = 0; j < cell.tokensPerWave && allReal; ++j)
        allReal = data[static_cast<std::size_t>(j)].isReal();
      realOut[c] = allReal;
      continue;
    }
    if (!fastOp(cell.op)) continue;
    bool ok = true;
    for (int p = 0; p < cell.numPorts && ok; ++p) {
      const exec::Operand& o = eg_.operand(cell, p);
      ok = o.isLiteral() ? o.literal.isReal() : realOut[o.producer] != 0;
    }
    realOut[c] = ok;
  }
  for (std::uint32_t c = 0; c < eg_.size(); ++c)
    if (lo_[c] <= hi_[c] - 1 && !realOut[c]) return false;
  return true;
}

void SteadyLoop::compute() {
  // Widen every ancestor's hull: the k-th firing consumes token k of each
  // operand producer, so a needed range propagates upward unchanged.
  for (auto it = sched_.topo.rbegin(); it != sched_.topo.rend(); ++it) {
    const std::uint32_t c = *it;
    if (lo_[c] > hi_[c]) continue;
    const exec::Cell& cell = eg_.cell(c);
    for (int p = 0; p < cell.numPorts; ++p) {
      const exec::Operand& o = eg_.operand(cell, p);
      if (!o.isLiteral()) request(o.producer, lo_[c], hi_[c]);
    }
  }
  vectorized_ = fastPathEligible();
  if (vectorized_) computeVectorized();
  else computeGeneric();
  computed_ = true;
}

void SteadyLoop::computeGeneric() {
  for (std::uint32_t c : sched_.topo) {
    if (lo_[c] > hi_[c]) continue;
    const exec::Cell& cell = eg_.cell(c);
    const std::int64_t lo = lo_[c], hi = hi_[c];
    std::vector<Value>& out = block_[c];
    out.resize(static_cast<std::size_t>(hi - lo));
    if (dfg::isSource(cell.op)) {
      for (std::int64_t k = lo; k < hi; ++k)
        out[static_cast<std::size_t>(k - lo)] = sourceValue(c, k);
      continue;
    }
    for (std::int64_t k = lo; k < hi; ++k) {
      out[static_cast<std::size_t>(k - lo)] =
          exec::applyPure(cell.op, [&](int p) -> const Value& {
            const exec::Operand& o = eg_.operand(cell, p);
            if (o.isLiteral()) return o.literal;
            return block_[o.producer][static_cast<std::size_t>(k - lo_[o.producer])];
          });
    }
  }
}

void SteadyLoop::computeVectorized() {
  // Straight-line per-cell loops over contiguous double blocks — the
  // compiler auto-vectorizes these.  Each expression mirrors the real
  // branch of the matching ops:: routine exactly (value.cpp).
  for (std::uint32_t c : sched_.topo) {
    if (lo_[c] > hi_[c]) continue;
    const exec::Cell& cell = eg_.cell(c);
    const std::int64_t lo = lo_[c], hi = hi_[c];
    const std::size_t n = static_cast<std::size_t>(hi - lo);
    std::vector<double>& out = dblock_[c];
    out.resize(n);
    if (cell.op == dfg::Op::Input) {
      const std::vector<Value>& data = *sourceData_[c];
      // Wrap by counting instead of a per-element modulo.
      std::size_t j = static_cast<std::size_t>(lo % cell.tokensPerWave);
      const std::size_t wave = static_cast<std::size_t>(cell.tokensPerWave);
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = data[j].asReal();
        if (++j == wave) j = 0;
      }
      continue;
    }
    // Operand fetch: offset view into the producer's block (its hull
    // contains ours by propagation), or a literal broadcast into scratch so
    // every op loop below reads plain contiguous pointers.
    const double* a = nullptr;
    const double* b = nullptr;
    if (cell.numPorts >= 1) {
      const exec::Operand& o = eg_.operand(cell, 0);
      if (o.isLiteral()) {
        scratch0_.assign(n, o.literal.asReal());
        a = scratch0_.data();
      } else {
        a = dblock_[o.producer].data() + (lo - lo_[o.producer]);
      }
    }
    if (cell.numPorts >= 2) {
      const exec::Operand& o = eg_.operand(cell, 1);
      if (o.isLiteral()) {
        scratch1_.assign(n, o.literal.asReal());
        b = scratch1_.data();
      } else {
        b = dblock_[o.producer].data() + (lo - lo_[o.producer]);
      }
    }
    switch (cell.op) {
      case dfg::Op::Id:
      case dfg::Op::Fifo:
        for (std::size_t i = 0; i < n; ++i) out[i] = a[i];
        break;
      case dfg::Op::Neg:
        for (std::size_t i = 0; i < n; ++i) out[i] = -a[i];
        break;
      case dfg::Op::Abs:
        for (std::size_t i = 0; i < n; ++i) out[i] = std::fabs(a[i]);
        break;
      case dfg::Op::Add:
        for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
        break;
      case dfg::Op::Sub:
        for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
        break;
      case dfg::Op::Mul:
        for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
        break;
      case dfg::Op::Min:
        for (std::size_t i = 0; i < n; ++i)
          out[i] = a[i] < b[i] ? a[i] : b[i];
        break;
      case dfg::Op::Max:
        for (std::size_t i = 0; i < n; ++i)
          out[i] = a[i] > b[i] ? a[i] : b[i];
        break;
      default: VALPIPE_UNREACHABLE("op not in the vectorized set");
    }
  }
}

Value SteadyLoop::value(std::uint32_t c, std::int64_t k) const {
  VALPIPE_CHECK_MSG(computed_, "SteadyLoop::value before compute()");
  VALPIPE_CHECK_MSG(lo_[c] <= k && k < hi_[c], "token index outside computed hull");
  const std::size_t i = static_cast<std::size_t>(k - lo_[c]);
  return vectorized_ ? Value(dblock_[c][i]) : block_[c][i];
}

}  // namespace valpipe::sched
