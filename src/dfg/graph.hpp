// The dataflow instruction graph IR.
//
// Nodes are instruction cells; an operand field is either a literal value or
// an arc from a producer cell.  A producer's result packet is broadcast to
// every consumer arc; a cell with a *gate* operand delivers additionally to
// its T- or F-tagged consumers according to the gate's boolean value — the
// paper's "boolean operand directs a result packet to destinations according
// to a tag (T or F)".
//
// Arc flags used by the balancer (core/balance.hpp):
//   - `rigid`:    the arc lies on a for-iter feedback cycle, whose length is
//                 fixed by construction — no buffering may be inserted.
//   - `feedback`: the loop-closing back arc — excluded from the (acyclic)
//                 depth constraint system entirely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dfg/opcode.hpp"
#include "support/value.hpp"

namespace valpipe::dfg {

/// Index of a node within its Graph.
struct NodeId {
  std::uint32_t index = UINT32_MAX;

  bool valid() const { return index != UINT32_MAX; }
  friend bool operator==(NodeId, NodeId) = default;
};

/// Which destination class of a (possibly gated) producer an arc belongs to.
enum class OutTag : std::uint8_t {
  Always,  ///< delivered on every firing
  T,       ///< delivered when the producer's gate operand is true
  F,       ///< delivered when the producer's gate operand is false
};

/// One operand field: a literal, or an arc from `producer`'s `tag` output.
struct PortSrc {
  enum class Kind : std::uint8_t { Literal, Arc } kind = Kind::Literal;
  Value literal{};          // Kind::Literal
  NodeId producer{};        // Kind::Arc
  OutTag tag = OutTag::Always;
  bool rigid = false;       ///< arc on a fixed-length cycle; no buffering
  bool feedback = false;    ///< loop-closing back arc; excluded from balancing
  /// Token present on the arc when the program is loaded (§2: operand values
  /// are part of the instruction-cell load image).  Used to bootstrap the
  /// counter loops that realize control sequences (Todd [15]).
  std::optional<Value> initial;

  static PortSrc lit(Value v) {
    PortSrc p;
    p.kind = Kind::Literal;
    p.literal = v;
    return p;
  }
  static PortSrc arc(NodeId n, OutTag tag = OutTag::Always) {
    PortSrc p;
    p.kind = Kind::Arc;
    p.producer = n;
    p.tag = tag;
    return p;
  }
  bool isArc() const { return kind == Kind::Arc; }
  bool isLiteral() const { return kind == Kind::Literal; }
};

/// One wave's worth of a boolean control sequence.
struct BoolPattern {
  std::vector<bool> bits;

  std::size_t length() const { return bits.size(); }
  /// Pattern T^a F^b, optionally preceded by F^pre: used for element
  /// selection gates.
  static BoolPattern runs(std::size_t leadingF, std::size_t ts, std::size_t trailingF);
  /// All bits equal.
  static BoolPattern uniform(bool value, std::size_t n);
  std::string str() const;  ///< e.g. "F T..T(4) F"
};

/// An instruction cell.
struct Node {
  Op op = Op::Id;
  std::vector<PortSrc> inputs;       ///< data operands, arity(op) of them
  std::optional<PortSrc> gate;       ///< optional boolean gate operand

  // --- attributes (meaningful per op) ---
  BoolPattern pattern;               ///< BoolSeq: one wave of control values
  std::int64_t seqLo = 0;            ///< IndexSeq: first index
  std::int64_t seqHi = -1;           ///< IndexSeq: last index
  std::int64_t seqRepeat = 1;        ///< IndexSeq: emit each value this often
                                     ///< (element-interleaved batches, §9)
  int fifoDepth = 0;                 ///< Fifo: number of identity stages
  std::string streamName;            ///< Input/Output/AmStore/AmFetch
  std::int64_t tokensPerWave = -1;   ///< sources: packets emitted per wave
  std::string label;                 ///< debug / DOT annotation
  /// Index re-labelling between this cell's firing axis and its consumers'
  /// axis: a selection gate for A[i+c] fires per array element j but its
  /// result is consumed while computing element i = j - c, so consumers see
  /// the packet 2*c instruction times "later" per §3's steady-state timing.
  /// The balancer turns this into extra FIFO slack (Fig. 4's skew buffers).
  std::int64_t phaseShift = 0;

  bool hasGate() const { return gate.has_value(); }
};

/// A machine-level dataflow program: the instruction cells plus named stream
/// endpoints.  Construction helpers return the new node's id; use
/// Graph::out/outT/outF to form operand fields referencing it.
class Graph {
 public:
  NodeId add(Node n);

  std::size_t size() const { return nodes_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Node& operator[](NodeId id) { return node(id); }
  const Node& operator[](NodeId id) const { return node(id); }

  // --- operand-field helpers ---
  static PortSrc out(NodeId n) { return PortSrc::arc(n, OutTag::Always); }
  static PortSrc outT(NodeId n) { return PortSrc::arc(n, OutTag::T); }
  static PortSrc outF(NodeId n) { return PortSrc::arc(n, OutTag::F); }
  static PortSrc lit(Value v) { return PortSrc::lit(v); }

  // --- construction sugar ---
  NodeId unary(Op op, PortSrc a, std::string label = {});
  NodeId binary(Op op, PortSrc a, PortSrc b, std::string label = {});
  NodeId identity(PortSrc a, std::string label = {});
  /// Gated identity — the paper's element-selection / routing switch: result
  /// goes to T-tagged consumers when `ctl` is true, to F-tagged ones when
  /// false.  A side with no consumers discards (Fig. 4's jam avoidance).
  NodeId gatedIdentity(PortSrc data, PortSrc ctl, std::string label = {});
  /// Non-strict merge (ctl, tIn, fIn).
  NodeId merge(PortSrc ctl, PortSrc tIn, PortSrc fIn, std::string label = {});
  /// Boolean control-sequence source emitting `pattern` once per wave.
  NodeId boolSeq(BoolPattern pattern, std::string label = {});
  /// Integer index sequence lo..hi; each value emitted `repeat` times in a
  /// row, the whole sequence cycled `tiles` times per wave (2-D row-major
  /// column streams use tiles = number of rows).
  NodeId indexSeq(std::int64_t lo, std::int64_t hi, std::int64_t repeat = 1,
                  std::string label = {}, std::int64_t tiles = 1);
  /// FIFO buffer of `depth` identity stages.  depth == 0 returns `a`
  /// unchanged (callers may pass computed skews).
  PortSrc fifo(PortSrc a, int depth, std::string label = {});
  /// Host-fed stream source; `tokensPerWave` elements arrive per wave.
  NodeId input(std::string name, std::int64_t tokensPerWave);
  /// Host-collected stream sink.
  NodeId output(std::string name, PortSrc src);
  NodeId sink(PortSrc src, std::string label = {});
  NodeId amStore(std::string name, PortSrc src);
  NodeId amFetch(std::string name, std::int64_t tokensPerWave);

  /// All node ids, in insertion order.
  std::vector<NodeId> ids() const;

  /// Ids of Input / Output nodes.
  std::vector<NodeId> inputNodes() const;
  std::vector<NodeId> outputNodes() const;
  /// Finds the Input/Output node with the given stream name (invalid id if
  /// absent).
  NodeId findInput(const std::string& name) const;
  NodeId findOutput(const std::string& name) const;

  /// Total instruction-cell count once FIFOs are expanded.
  std::size_t loweredCellCount() const;

  /// Rewires every operand/gate arc that reads from `oldProducer` to read
  /// `replacement` instead (used to close for-iter feedback loops after the
  /// merge cell exists).  The replacement's tag/feedback flags are kept.
  void replaceUses(NodeId oldProducer, PortSrc replacement);

 private:
  std::vector<Node> nodes_;
};

/// A consumer endpoint of some producer's result packets.
struct DestRef {
  NodeId consumer;
  int port;  ///< operand index, or kGatePort for the gate operand
  OutTag tag;
};

inline constexpr int kGatePort = -1;

/// Destination lists derived from the consumers' operand fields — the
/// "destination fields" of §2, used by validation, DOT export and both
/// execution engines.
class Wiring {
 public:
  explicit Wiring(const Graph& g);

  const std::vector<DestRef>& dests(NodeId producer) const {
    return dests_[producer.index];
  }
  /// Destinations a firing with gate value `gateVal` actually delivers to.
  /// Pass std::nullopt for ungated producers (Always-tagged only).
  std::vector<DestRef> deliveredDests(NodeId producer,
                                      std::optional<bool> gateVal) const;

 private:
  std::vector<std::vector<DestRef>> dests_;
};

}  // namespace valpipe::dfg
