#include "dfg/expand_ctl.hpp"

#include <vector>

#include "support/check.hpp"
#include "support/diagnostics.hpp"

namespace valpipe::dfg {

namespace {

/// Builds the free-running counter j = 0, 1, 2, ... : a two-cell increment
/// loop (ADD + identity) bootstrapped by a load-time token, followed by a
/// MOD cell wrapping to the period.  Two cells with one packet in flight run
/// at the machine's full 1/2 rate, so the generator never throttles the
/// gates it feeds.  Returns the node emitting j mod period.
NodeId buildCounter(Graph& g, std::int64_t period, const std::string& label) {
  VALPIPE_CHECK(period >= 1);
  Node addN;
  addN.op = Op::Add;
  addN.label = "ctr+1:" + label;
  addN.inputs.resize(2);
  addN.inputs[0] = Graph::lit(Value(std::int64_t{0}));  // patched below
  addN.inputs[1] = Graph::lit(Value(std::int64_t{1}));
  const NodeId add = g.add(std::move(addN));
  const NodeId idn = g.identity(Graph::out(add), "ctr:" + label);

  PortSrc back = Graph::out(idn);
  back.feedback = true;
  back.initial = Value(std::int64_t{-1});  // load-time token: first j is 0
  g.node(add).inputs[0] = back;

  return g.binary(Op::Mod, Graph::out(add), Graph::lit(Value(period)),
                  "ctr%:" + label);
}

/// Comparison network turning the counter stream (positions 0..n-1) into the
/// pattern's boolean values: one interval test per run of T's, OR-combined.
PortSrc buildComparisons(Graph& g, NodeId counter, const BoolPattern& pattern,
                         const std::string& label) {
  const std::int64_t n = static_cast<std::int64_t>(pattern.length());
  // Collect T-runs [start, end).
  std::vector<std::pair<std::int64_t, std::int64_t>> runs;
  std::int64_t i = 0;
  while (i < n) {
    if (!pattern.bits[static_cast<std::size_t>(i)]) {
      ++i;
      continue;
    }
    std::int64_t j = i;
    while (j < n && pattern.bits[static_cast<std::size_t>(j)]) ++j;
    runs.emplace_back(i, j);
    i = j;
  }

  const PortSrc idx = Graph::out(counter);
  if (runs.empty())  // all false: i < 0 never holds
    return Graph::out(g.binary(Op::Lt, idx, Graph::lit(Value(std::int64_t{0})),
                               label + ":allF"));

  auto runTest = [&](std::int64_t s, std::int64_t e) -> PortSrc {
    if (s == 0 && e == n)  // all true
      return Graph::out(g.binary(Op::Ge, idx,
                                 Graph::lit(Value(std::int64_t{0})),
                                 label + ":allT"));
    if (s + 1 == e)
      return Graph::out(g.binary(Op::Eq, idx, Graph::lit(Value(s)),
                                 label + ":eq"));
    if (s == 0)
      return Graph::out(g.binary(Op::Lt, idx, Graph::lit(Value(e)),
                                 label + ":lt"));
    if (e == n)
      return Graph::out(g.binary(Op::Ge, idx, Graph::lit(Value(s)),
                                 label + ":ge"));
    const PortSrc ge = Graph::out(g.binary(Op::Ge, idx, Graph::lit(Value(s)),
                                           label + ":ge"));
    const PortSrc lt = Graph::out(g.binary(Op::Lt, idx, Graph::lit(Value(e)),
                                           label + ":lt"));
    return Graph::out(g.binary(Op::And, ge, lt, label + ":in"));
  };

  PortSrc acc = runTest(runs[0].first, runs[0].second);
  for (std::size_t r = 1; r < runs.size(); ++r)
    acc = Graph::out(g.binary(Op::Or, acc,
                              runTest(runs[r].first, runs[r].second),
                              label + ":or"));
  return acc;
}

}  // namespace

bool hasControlGenerators(const Graph& g) {
  for (NodeId id : g.ids()) {
    const Op op = g.node(id).op;
    if (op == Op::BoolSeq || op == Op::IndexSeq) return true;
  }
  return false;
}

Graph expandControlGenerators(const Graph& g) {
  // Copy all nodes first (ids preserved), then append counter subgraphs and
  // rewire the generator's consumers.  The stale generator nodes become
  // dead; prune them with pruneDead if cell counts matter.
  Graph out;
  for (NodeId id : g.ids()) {
    Node copy = g.node(id);
    out.add(std::move(copy));
  }

  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    if (n.op == Op::BoolSeq) {
      const std::int64_t len = static_cast<std::int64_t>(n.pattern.length());
      VALPIPE_CHECK(len >= 1);
      const NodeId counter =
          buildCounter(out, len, n.label.empty() ? "bseq" : n.label);
      const PortSrc ctl = buildComparisons(out, counter, n.pattern,
                                           n.label.empty() ? "bseq" : n.label);
      out.replaceUses(id, ctl);
    } else if (n.op == Op::IndexSeq) {
      if (n.seqRepeat != 1)
        throw CompileError(
            "cannot lower a batched index generator (seqRepeat > 1) to a "
            "counter loop");
      const NodeId counter = buildCounter(out, n.seqHi - n.seqLo + 1,
                                          n.label.empty() ? "iseq" : n.label);
      PortSrc value = Graph::out(counter);
      if (n.seqLo != 0)
        value = Graph::out(out.binary(Op::Add, value,
                                      Graph::lit(Value(n.seqLo)),
                                      "ctr-base"));
      out.replaceUses(id, value);
    }
  }
  return out;
}

}  // namespace valpipe::dfg
