// Static statistics of an instruction graph (cell counts by class, FIFO
// slots, gate usage) — the code-size side of the paper's schemes, used by the
// companion-overhead and balancing benches.
#pragma once

#include <map>
#include <string>

#include "dfg/graph.hpp"

namespace valpipe::dfg {

struct GraphStats {
  std::size_t nodes = 0;          ///< IR nodes (composites count once)
  std::size_t cells = 0;          ///< instruction cells after lowering
  std::size_t fifoNodes = 0;      ///< composite FIFO nodes
  std::size_t fifoSlots = 0;      ///< total buffering stages inside FIFOs
  std::size_t gatedCells = 0;     ///< cells with a gate operand
  std::size_t sources = 0;        ///< BoolSeq/IndexSeq/Input/AmFetch cells
  std::size_t arcs = 0;           ///< operand+gate arcs (excludes literals)
  std::map<Op, std::size_t> byOp;
  /// FIFO nodes per depth — after opt::fuseFifos this is the composite-cell
  /// depth distribution (`nodes` vs `cells` gives fused vs expanded counts).
  std::map<int, std::size_t> fifoDepthHist;

  std::string str() const;
};

GraphStats computeStats(const Graph& g);

}  // namespace valpipe::dfg
