#include "dfg/prune.hpp"

#include <vector>

#include "support/check.hpp"

namespace valpipe::dfg {

Graph pruneDead(const Graph& g) {
  // Mark backwards from sinks over operand/gate arcs.
  std::vector<char> live(g.size(), 0);
  std::vector<NodeId> stack;
  for (NodeId id : g.ids()) {
    const Op op = g.node(id).op;
    if (op == Op::Output || op == Op::AmStore || op == Op::Sink) {
      live[id.index] = 1;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& n = g.node(id);
    auto visit = [&](const PortSrc& src) {
      if (src.isArc() && !live[src.producer.index]) {
        live[src.producer.index] = 1;
        stack.push_back(src.producer);
      }
    };
    for (const PortSrc& in : n.inputs) visit(in);
    if (n.gate) visit(*n.gate);
  }

  // Rebuild with remapped ids.  Two passes, because feedback arcs may point
  // at higher-numbered producers.
  std::vector<NodeId> mapped(g.size(), NodeId{});
  std::uint32_t next = 0;
  for (NodeId id : g.ids())
    if (live[id.index]) mapped[id.index] = NodeId{next++};

  Graph out;
  for (NodeId id : g.ids()) {
    if (!live[id.index]) continue;
    Node copy = g.node(id);
    auto remap = [&](PortSrc src) {
      if (src.isArc()) {
        VALPIPE_CHECK_MSG(mapped[src.producer.index].valid(),
                          "live node consumes from pruned producer");
        src.producer = mapped[src.producer.index];
      }
      return src;
    };
    for (PortSrc& in : copy.inputs) in = remap(in);
    if (copy.gate) copy.gate = remap(*copy.gate);
    const NodeId got = out.add(std::move(copy));
    VALPIPE_CHECK(got == mapped[id.index]);
  }
  return out;
}

}  // namespace valpipe::dfg
