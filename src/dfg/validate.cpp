#include "dfg/validate.hpp"

#include <set>
#include <sstream>

#include "support/diagnostics.hpp"

namespace valpipe::dfg {

namespace {

std::string nodeName(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  std::ostringstream os;
  os << '#' << id.index << ':' << mnemonic(n.op);
  if (!n.label.empty()) os << '(' << n.label << ')';
  return os.str();
}

}  // namespace

std::string ValidationReport::str() const {
  std::ostringstream os;
  for (const auto& e : errors) os << "error: " << e << '\n';
  for (const auto& w : warnings) os << "warning: " << w << '\n';
  return os.str();
}

ValidationReport validate(const Graph& g, bool requireAcyclic) {
  ValidationReport rep;
  auto err = [&](const std::string& s) { rep.errors.push_back(s); };
  auto warn = [&](const std::string& s) { rep.warnings.push_back(s); };

  std::set<std::string> inputNames, outputNames;

  auto checkArc = [&](NodeId at, const PortSrc& src, const char* what) {
    if (!src.isArc()) {
      if (src.initial)
        err(nodeName(g, at) + ": load-time token on a literal operand");
      return;
    }
    if (!src.producer.valid() || src.producer.index >= g.size()) {
      err(nodeName(g, at) + ": dangling " + what + " arc");
      return;
    }
    const Node& p = g.node(src.producer);
    if (!producesResult(p.op))
      err(nodeName(g, at) + ": " + what + " arc from non-producing " +
          nodeName(g, src.producer));
    if (src.tag != OutTag::Always && !p.hasGate())
      err(nodeName(g, at) + ": " + what + " arc with T/F tag from ungated " +
          nodeName(g, src.producer));
  };

  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    for (const PortSrc& in : n.inputs) checkArc(id, in, "operand");
    if (n.gate) {
      checkArc(id, *n.gate, "gate");
      if (isSource(n.op)) err(nodeName(g, id) + ": source nodes cannot be gated");
    }
    switch (n.op) {
      case Op::BoolSeq:
        if (n.pattern.length() == 0) err(nodeName(g, id) + ": empty pattern");
        break;
      case Op::IndexSeq:
        if (n.seqLo > n.seqHi) err(nodeName(g, id) + ": empty index range");
        break;
      case Op::Fifo:
        if (n.fifoDepth < 1) err(nodeName(g, id) + ": FIFO depth < 1");
        break;
      case Op::Input:
        if (!inputNames.insert(n.streamName).second)
          err("duplicate input stream '" + n.streamName + "'");
        if (n.tokensPerWave <= 0) err(nodeName(g, id) + ": no packets per wave");
        break;
      case Op::Output:
        if (!outputNames.insert(n.streamName).second)
          err("duplicate output stream '" + n.streamName + "'");
        break;
      case Op::AmFetch:
        if (n.tokensPerWave <= 0) err(nodeName(g, id) + ": no packets per wave");
        break;
      default:
        break;
    }
  }

  // Destination sanity: producers with no consumers at all discard every
  // result — legal for gate sides, suspicious for a whole cell.
  Wiring wiring(g);
  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    if (producesResult(n.op) && wiring.dests(id).empty())
      warn(nodeName(g, id) + ": result has no destinations (always discarded)");
  }

  if (requireAcyclic) {
    // DFS over non-feedback arcs (consumer -> producer direction is fine for
    // cycle detection).
    enum class Mark : char { White, Grey, Black };
    std::vector<Mark> mark(g.size(), Mark::White);
    // Iterative DFS.
    for (NodeId root : g.ids()) {
      if (mark[root.index] != Mark::White) continue;
      std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
      mark[root.index] = Mark::Grey;
      while (!stack.empty()) {
        auto& [id, edge] = stack.back();
        const Node& n = g.node(id);
        // Enumerate arc predecessors: inputs then gate.
        const std::size_t total = n.inputs.size() + (n.gate ? 1 : 0);
        bool descended = false;
        while (edge < total) {
          const PortSrc& src = edge < n.inputs.size()
                                   ? n.inputs[edge]
                                   : *n.gate;
          ++edge;
          if (!src.isArc() || src.feedback) continue;
          const NodeId pred = src.producer;
          if (mark[pred.index] == Mark::Grey) {
            err("cycle through " + nodeName(g, pred) +
                " not broken by a feedback arc");
            continue;
          }
          if (mark[pred.index] == Mark::White) {
            mark[pred.index] = Mark::Grey;
            stack.push_back({pred, 0});
            descended = true;
            break;
          }
        }
        if (!descended && edge >= total) {
          mark[id.index] = Mark::Black;
          stack.pop_back();
        }
      }
    }
  }

  return rep;
}

void validateOrThrow(const Graph& g, bool requireAcyclic) {
  ValidationReport rep = validate(g, requireAcyclic);
  if (!rep.ok()) throw CompileError("invalid instruction graph:\n" + rep.str());
}

}  // namespace valpipe::dfg
