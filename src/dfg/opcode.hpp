// Opcodes of the static dataflow machine's instruction cells.
//
// A machine-level data flow program is a directed graph of instruction cells
// (§2 of the paper).  Each cell holds an operation code, operand fields
// (either arcs from producer cells or literal values) and destination fields.
// A cell may additionally hold one boolean *gate* operand that directs its
// result packet to destinations tagged T or F — the mechanism the paper uses
// for element selection (Fig. 4), conditional arms (Fig. 5) and the for-iter
// feedback switch (Fig. 7).
#pragma once

#include <cstdint>

namespace valpipe::dfg {

enum class Op : std::uint8_t {
  // Plumbing / scalar operations executed in a processing element.
  Id,    ///< identity: forwards its single operand (buffer / switch body)
  Not,
  Neg,
  Abs,
  Add,
  Sub,
  Mul,
  Div,
  Min,
  Max,
  Mod,   ///< integer modulo (counter wrap in control generators)
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
  /// Non-strict merge (Fig. 5): operand 0 is the merge control M, operand 1
  /// the T input, operand 2 the F input.  Fires when M and the *selected*
  /// input are present; the unselected operand, if any, is left untouched.
  Merge,
  /// Source of a boolean control sequence (e.g. <F T..T F>), the compile-time
  /// arrangement of Todd [15].  Attribute: one wave's bit pattern.
  BoolSeq,
  /// Source of the integer index sequence lo, lo+1, ..., hi (one wave).
  IndexSeq,
  /// Composite FIFO of `fifoDepth` identity cells.  Lowered one of two ways
  /// before machine-level simulation: expanded into an Id chain
  /// (dfg::expandFifos) when per-cell statistics must be truthful, or — the
  /// compiler default — kept as one composite ring-buffer cell fired with
  /// the chain's exact external timing (opt::fuseFifos + exec/fifo.hpp).
  Fifo,
  /// Stream source fed by the host: an array arriving as successive result
  /// packets, least index first (§3's "array as a sequence of values").
  Input,
  /// Stream sink collected by the host (the constructed array).
  Output,
  /// Consumes and discards its operand (explicit jam-avoidance sink).
  Sink,
  /// Array-memory append: sends its operand to an array memory unit (§2).
  AmStore,
  /// Array-memory fetch: emits elements previously stored under `streamName`.
  AmFetch,
};

/// Number of data operand fields the op requires (excluding the optional gate).
int arity(Op op);

/// Printable mnemonic ("ADD", "MERG", ...), matching the paper's figures
/// where one exists.
const char* mnemonic(Op op);

/// True for ops that produce a result packet (everything except Output, Sink
/// and AmStore).
bool producesResult(Op op);

/// True for source ops that have no data operands and emit a stream
/// spontaneously, subject to acknowledgment back-pressure.
bool isSource(Op op);

/// Functional-unit class used by the machine model to route operation
/// packets (§2: processing elements, function units, array memories).
enum class FuClass : std::uint8_t {
  Pe,     ///< executed inside the processing element (identity, boolean, ...)
  Alu,    ///< integer/compare unit
  Fpu,    ///< floating point function unit
  Am,     ///< array memory unit
};

FuClass fuClass(Op op);

}  // namespace valpipe::dfg
