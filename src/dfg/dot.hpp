// Graphviz export of instruction graphs, for inspecting compiled code the way
// the paper presents it (Figs. 2, 4–8).
#pragma once

#include <string>

#include "dfg/graph.hpp"

namespace valpipe::dfg {

/// Renders `g` as a Graphviz digraph.  T/F-tagged arcs are labelled; feedback
/// arcs are drawn dashed; control-sequence sources show their pattern.
std::string toDot(const Graph& g, const std::string& title = "dfg");

}  // namespace valpipe::dfg
