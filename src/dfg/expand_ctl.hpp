// Lowering of control-sequence generators to machine-level counter loops —
// the "straightforward arrangements of data flow instructions ... developed
// by Todd [15]" that Figs. 4 and 6 presuppose.
//
// A BoolSeq of period n becomes:
//
//      (load-time token -1)
//             |
//             v
//        [ ADD +1 ] <-- feedback -- [ ID ]      free-running j = 0,1,2,...
//             |            \__________^
//             +--> [ MOD n ] --> comparison network --> consumers
//
// a two-cell increment loop bootstrapped by a load-time operand token, a MOD
// cell wrapping to the pattern period, and a small comparison network (one
// GE/LT/EQ per run of T's, OR-combined) turning the position stream into the
// boolean control values.  The loop holds one packet over two cells, so it
// sustains exactly the machine's 1/2 maximum rate and never throttles the
// gates it feeds.
//
// An IndexSeq lowers to the same counter with an ADD re-basing the value
// when seqLo != 0 (seqRepeat must be 1 — batched interleaving keeps its
// abstract generator).
//
// The lowered counters are free-running: they produce control values for as
// long as consumers acknowledge.  Run the result on the machine engine with
// `expectedOutputs` set (the untimed interpreter would spin the counters
// forever once the data streams are exhausted).
#pragma once

#include "dfg/graph.hpp"

namespace valpipe::dfg {

/// Replaces every BoolSeq / IndexSeq node by a counter + comparison
/// subgraph.  Throws CompileError for IndexSeq nodes with seqRepeat > 1.
Graph expandControlGenerators(const Graph& g);

/// True when `g` contains no abstract control-sequence sources.
bool hasControlGenerators(const Graph& g);

}  // namespace valpipe::dfg
