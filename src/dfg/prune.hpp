// Dead-code elimination on instruction graphs: removes cells whose results
// can never reach an Output or AmStore cell (e.g. unused definition streams,
// or the discarded side of an element-selection gate's support network).
#pragma once

#include "dfg/graph.hpp"

namespace valpipe::dfg {

/// Returns a copy of `g` containing only cells from which an Output or
/// AmStore is reachable (following operand and gate arcs forward).
Graph pruneDead(const Graph& g);

}  // namespace valpipe::dfg
