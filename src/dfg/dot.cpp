#include "dfg/dot.hpp"

#include <sstream>

namespace valpipe::dfg {

namespace {

std::string escape(const std::string& s) {
  // Only quotes need escaping; backslashes in our labels are intentional
  // Graphviz escapes ("\n" line breaks).
  std::string out;
  for (char c : s) {
    if (c == '"') out += '\\';
    out += c;
  }
  return out;
}

std::string nodeLabel(const Node& n) {
  std::ostringstream os;
  os << mnemonic(n.op);
  switch (n.op) {
    case Op::BoolSeq: os << "\\n" << n.pattern.str(); break;
    case Op::IndexSeq: os << "\\n[" << n.seqLo << ".." << n.seqHi << "]"; break;
    case Op::Fifo: os << "(" << n.fifoDepth << ")"; break;
    case Op::Input:
    case Op::Output:
    case Op::AmStore:
    case Op::AmFetch: os << "\\n" << n.streamName; break;
    default: break;
  }
  if (!n.label.empty()) os << "\\n" << n.label;
  return os.str();
}

}  // namespace

std::string toDot(const Graph& g, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << escape(title) << "\" {\n"
     << "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    os << "  n" << id.index << " [label=\"" << escape(nodeLabel(n)) << "\"";
    if (isSource(n.op)) os << ", style=filled, fillcolor=lightyellow";
    if (n.op == Op::Output || n.op == Op::Sink || n.op == Op::AmStore)
      os << ", style=filled, fillcolor=lightblue";
    if (n.op == Op::Fifo) os << ", style=filled, fillcolor=lightgrey";
    os << "];\n";
  }
  auto edge = [&](NodeId to, const PortSrc& src, int port) {
    if (!src.isArc()) return;
    os << "  n" << src.producer.index << " -> n" << to.index << " [";
    std::string label;
    if (src.tag == OutTag::T) label += "T";
    if (src.tag == OutTag::F) label += "F";
    if (port == kGatePort) label += label.empty() ? "gate" : ",gate";
    if (!label.empty()) os << "label=\"" << label << "\", ";
    if (port == kGatePort) os << "style=dotted, ";
    if (src.feedback) os << "style=dashed, constraint=false, ";
    os << "];\n";
  };
  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    for (int p = 0; p < static_cast<int>(n.inputs.size()); ++p)
      edge(id, n.inputs[p], p);
    if (n.gate) edge(id, *n.gate, kGatePort);
  }
  os << "}\n";
  return os.str();
}

}  // namespace valpipe::dfg
