// Lowering passes: turn composite IR nodes into real instruction cells so the
// machine simulator's cell statistics and firing rates are truthful.
#pragma once

#include "dfg/graph.hpp"

namespace valpipe::dfg {

/// Replaces every Fifo(depth k) node by a chain of k identity cells.  The
/// arc into the first chain cell inherits the FIFO's input-arc flags; the
/// chain-internal arcs are marked rigid (their length is fixed by
/// construction).  Returns the lowered graph; `g` is left untouched.
Graph expandFifos(const Graph& g);

/// True when `g` contains no composite nodes (safe for the machine engine).
bool isLowered(const Graph& g);

}  // namespace valpipe::dfg
