#include "dfg/graph.hpp"

#include <sstream>

#include "support/check.hpp"

namespace valpipe::dfg {

BoolPattern BoolPattern::runs(std::size_t leadingF, std::size_t ts,
                              std::size_t trailingF) {
  BoolPattern p;
  p.bits.reserve(leadingF + ts + trailingF);
  p.bits.insert(p.bits.end(), leadingF, false);
  p.bits.insert(p.bits.end(), ts, true);
  p.bits.insert(p.bits.end(), trailingF, false);
  return p;
}

BoolPattern BoolPattern::uniform(bool value, std::size_t n) {
  BoolPattern p;
  p.bits.assign(n, value);
  return p;
}

std::string BoolPattern::str() const {
  // Run-length rendering in the paper's style: "F T..T(4) F".
  std::ostringstream os;
  std::size_t i = 0;
  bool first = true;
  while (i < bits.size()) {
    std::size_t j = i;
    while (j < bits.size() && bits[j] == bits[i]) ++j;
    const std::size_t run = j - i;
    if (!first) os << ' ';
    first = false;
    const char c = bits[i] ? 'T' : 'F';
    if (run == 1)
      os << c;
    else
      os << c << ".." << c << '(' << run << ')';
    i = j;
  }
  return os.str();
}

NodeId Graph::add(Node n) {
  VALPIPE_CHECK_MSG(static_cast<int>(n.inputs.size()) == arity(n.op),
                    std::string("arity mismatch for ") + mnemonic(n.op));
  nodes_.push_back(std::move(n));
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

Node& Graph::node(NodeId id) {
  VALPIPE_CHECK(id.valid() && id.index < nodes_.size());
  return nodes_[id.index];
}

const Node& Graph::node(NodeId id) const {
  VALPIPE_CHECK(id.valid() && id.index < nodes_.size());
  return nodes_[id.index];
}

NodeId Graph::unary(Op op, PortSrc a, std::string label) {
  VALPIPE_CHECK(arity(op) == 1);
  Node n;
  n.op = op;
  n.inputs = {a};
  n.label = std::move(label);
  return add(std::move(n));
}

NodeId Graph::binary(Op op, PortSrc a, PortSrc b, std::string label) {
  VALPIPE_CHECK(arity(op) == 2);
  Node n;
  n.op = op;
  n.inputs = {a, b};
  n.label = std::move(label);
  return add(std::move(n));
}

NodeId Graph::identity(PortSrc a, std::string label) {
  return unary(Op::Id, a, std::move(label));
}

NodeId Graph::gatedIdentity(PortSrc data, PortSrc ctl, std::string label) {
  Node n;
  n.op = Op::Id;
  n.inputs = {data};
  n.gate = ctl;
  n.label = std::move(label);
  return add(std::move(n));
}

NodeId Graph::merge(PortSrc ctl, PortSrc tIn, PortSrc fIn, std::string label) {
  Node n;
  n.op = Op::Merge;
  n.inputs = {ctl, tIn, fIn};
  n.label = std::move(label);
  return add(std::move(n));
}

NodeId Graph::boolSeq(BoolPattern pattern, std::string label) {
  Node n;
  n.op = Op::BoolSeq;
  n.tokensPerWave = static_cast<std::int64_t>(pattern.length());
  n.pattern = std::move(pattern);
  n.label = std::move(label);
  return add(std::move(n));
}

NodeId Graph::indexSeq(std::int64_t lo, std::int64_t hi, std::int64_t repeat,
                       std::string label, std::int64_t tiles) {
  VALPIPE_CHECK_MSG(lo <= hi, "empty index sequence");
  VALPIPE_CHECK_MSG(repeat >= 1 && tiles >= 1, "bad index repeat/tiles");
  Node n;
  n.op = Op::IndexSeq;
  n.seqLo = lo;
  n.seqHi = hi;
  n.seqRepeat = repeat;
  n.tokensPerWave = (hi - lo + 1) * repeat * tiles;
  n.label = std::move(label);
  return add(std::move(n));
}

void Graph::replaceUses(NodeId oldProducer, PortSrc replacement) {
  auto swap = [&](PortSrc& src) {
    if (src.isArc() && src.producer == oldProducer) src = replacement;
  };
  for (Node& n : nodes_) {
    for (PortSrc& in : n.inputs) swap(in);
    if (n.gate) swap(*n.gate);
  }
}

PortSrc Graph::fifo(PortSrc a, int depth, std::string label) {
  VALPIPE_CHECK_MSG(depth >= 0, "negative FIFO depth");
  if (depth == 0) return a;
  Node n;
  n.op = Op::Fifo;
  n.inputs = {a};
  n.fifoDepth = depth;
  n.label = std::move(label);
  return out(add(std::move(n)));
}

NodeId Graph::input(std::string name, std::int64_t tokensPerWave) {
  VALPIPE_CHECK_MSG(tokensPerWave > 0, "input stream must carry packets");
  Node n;
  n.op = Op::Input;
  n.streamName = std::move(name);
  n.tokensPerWave = tokensPerWave;
  return add(std::move(n));
}

NodeId Graph::output(std::string name, PortSrc src) {
  Node n;
  n.op = Op::Output;
  n.inputs = {src};
  n.streamName = std::move(name);
  return add(std::move(n));
}

NodeId Graph::sink(PortSrc src, std::string label) {
  Node n;
  n.op = Op::Sink;
  n.inputs = {src};
  n.label = std::move(label);
  return add(std::move(n));
}

NodeId Graph::amStore(std::string name, PortSrc src) {
  Node n;
  n.op = Op::AmStore;
  n.inputs = {src};
  n.streamName = std::move(name);
  return add(std::move(n));
}

NodeId Graph::amFetch(std::string name, std::int64_t tokensPerWave) {
  Node n;
  n.op = Op::AmFetch;
  n.streamName = std::move(name);
  n.tokensPerWave = tokensPerWave;
  return add(std::move(n));
}

std::vector<NodeId> Graph::ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) out.push_back(NodeId{i});
  return out;
}

std::vector<NodeId> Graph::inputNodes() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].op == Op::Input) out.push_back(NodeId{i});
  return out;
}

std::vector<NodeId> Graph::outputNodes() const {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].op == Op::Output) out.push_back(NodeId{i});
  return out;
}

NodeId Graph::findInput(const std::string& name) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].op == Op::Input && nodes_[i].streamName == name)
      return NodeId{i};
  return NodeId{};
}

NodeId Graph::findOutput(const std::string& name) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].op == Op::Output && nodes_[i].streamName == name)
      return NodeId{i};
  return NodeId{};
}

std::size_t Graph::loweredCellCount() const {
  std::size_t cells = 0;
  for (const auto& n : nodes_)
    cells += n.op == Op::Fifo ? static_cast<std::size_t>(n.fifoDepth) : 1;
  return cells;
}

Wiring::Wiring(const Graph& g) : dests_(g.size()) {
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    const Node& n = g.node(NodeId{i});
    for (int p = 0; p < static_cast<int>(n.inputs.size()); ++p) {
      const PortSrc& src = n.inputs[p];
      if (src.isArc()) dests_[src.producer.index].push_back({NodeId{i}, p, src.tag});
    }
    if (n.gate && n.gate->isArc())
      dests_[n.gate->producer.index].push_back({NodeId{i}, kGatePort, n.gate->tag});
  }
}

std::vector<DestRef> Wiring::deliveredDests(NodeId producer,
                                            std::optional<bool> gateVal) const {
  std::vector<DestRef> out;
  for (const DestRef& d : dests_[producer.index]) {
    if (d.tag == OutTag::Always ||
        (gateVal.has_value() && *gateVal == (d.tag == OutTag::T)))
      out.push_back(d);
  }
  return out;
}

}  // namespace valpipe::dfg
