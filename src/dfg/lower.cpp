#include "dfg/lower.hpp"

#include "support/check.hpp"

namespace valpipe::dfg {

Graph expandFifos(const Graph& g) {
  Graph out;

  // Pass 1: allocate new ids.  For a FIFO of depth k, `firstOf` is the head
  // of the identity chain and `mapped` its tail (what consumers see).
  std::vector<NodeId> mapped(g.size());
  std::vector<NodeId> firstOf(g.size());
  std::uint32_t next = 0;
  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    if (n.op == Op::Fifo) {
      VALPIPE_CHECK(n.fifoDepth >= 1);
      firstOf[id.index] = NodeId{next};
      mapped[id.index] = NodeId{next + static_cast<std::uint32_t>(n.fifoDepth) - 1};
      next += static_cast<std::uint32_t>(n.fifoDepth);
    } else {
      firstOf[id.index] = mapped[id.index] = NodeId{next};
      ++next;
    }
  }

  auto remap = [&](PortSrc src) {
    if (src.isArc()) src.producer = mapped[src.producer.index];
    return src;
  };

  // Pass 2: emit nodes in order so new ids line up with the allocation.
  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    if (n.op != Op::Fifo) {
      Node copy = n;
      for (PortSrc& in : copy.inputs) in = remap(in);
      if (copy.gate) copy.gate = remap(*copy.gate);
      NodeId got = out.add(std::move(copy));
      VALPIPE_CHECK(got == mapped[id.index]);
      continue;
    }
    // Identity chain.  First arc inherits the FIFO input's flags; internal
    // arcs are rigid.
    PortSrc in = remap(n.inputs[0]);
    for (int stage = 0; stage < n.fifoDepth; ++stage) {
      Node cell;
      cell.op = Op::Id;
      cell.inputs = {in};
      cell.label = n.label.empty() ? std::string("fifo")
                                   : n.label + "[" + std::to_string(stage) + "]";
      NodeId got = out.add(std::move(cell));
      if (stage == 0) VALPIPE_CHECK(got == firstOf[id.index]);
      in = Graph::out(got);
      in.rigid = true;
    }
    VALPIPE_CHECK(NodeId{in.producer} == mapped[id.index]);
  }

  return out;
}

bool isLowered(const Graph& g) {
  for (NodeId id : g.ids())
    if (g.node(id).op == Op::Fifo) return false;
  return true;
}

}  // namespace valpipe::dfg
