// Structural validation of instruction graphs.
//
// Catches wiring bugs in the compiler before a graph reaches an execution
// engine: dangling arcs, tag misuse, bad attributes, unintended cycles.
#pragma once

#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace valpipe::dfg {

struct ValidationReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;

  bool ok() const { return errors.empty(); }
  std::string str() const;
};

/// Validates `g`.  When `requireAcyclic` is true, any cycle not broken by a
/// `feedback`-flagged arc is an error (forall blocks and balanced whole
/// programs must be acyclic; for-iter graphs carry marked feedback arcs).
ValidationReport validate(const Graph& g, bool requireAcyclic = true);

/// Validates and throws CompileError on failure (convenience for tests and
/// the compiler pipeline).
void validateOrThrow(const Graph& g, bool requireAcyclic = true);

}  // namespace valpipe::dfg
