#include "dfg/opcode.hpp"

#include "support/check.hpp"

namespace valpipe::dfg {

int arity(Op op) {
  switch (op) {
    case Op::Id:
    case Op::Not:
    case Op::Neg:
    case Op::Abs:
    case Op::Output:
    case Op::Sink:
    case Op::AmStore:
      return 1;
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Min:
    case Op::Max:
    case Op::Mod:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Eq:
    case Op::Ne:
    case Op::And:
    case Op::Or:
      return 2;
    case Op::Merge:
      return 3;
    case Op::BoolSeq:
    case Op::IndexSeq:
    case Op::Input:
    case Op::AmFetch:
      return 0;
    case Op::Fifo:
      return 1;
  }
  VALPIPE_UNREACHABLE("bad opcode");
}

const char* mnemonic(Op op) {
  switch (op) {
    case Op::Id: return "ID";
    case Op::Not: return "NOT";
    case Op::Neg: return "NEG";
    case Op::Abs: return "ABS";
    case Op::Add: return "ADD";
    case Op::Sub: return "SUB";
    case Op::Mul: return "MULT";
    case Op::Div: return "DIV";
    case Op::Min: return "MIN";
    case Op::Max: return "MAX";
    case Op::Mod: return "MOD";
    case Op::Lt: return "LT";
    case Op::Le: return "LE";
    case Op::Gt: return "GT";
    case Op::Ge: return "GE";
    case Op::Eq: return "EQ";
    case Op::Ne: return "NE";
    case Op::And: return "AND";
    case Op::Or: return "OR";
    case Op::Merge: return "MERG";
    case Op::BoolSeq: return "BSEQ";
    case Op::IndexSeq: return "ISEQ";
    case Op::Fifo: return "FIFO";
    case Op::Input: return "IN";
    case Op::Output: return "OUT";
    case Op::Sink: return "SINK";
    case Op::AmStore: return "AMST";
    case Op::AmFetch: return "AMFT";
  }
  return "?";
}

bool producesResult(Op op) {
  return op != Op::Output && op != Op::Sink && op != Op::AmStore;
}

bool isSource(Op op) {
  return op == Op::BoolSeq || op == Op::IndexSeq || op == Op::Input ||
         op == Op::AmFetch;
}

FuClass fuClass(Op op) {
  switch (op) {
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Min:
    case Op::Max:
    case Op::Abs:
    case Op::Neg:
      return FuClass::Fpu;
    case Op::Mod:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Eq:
    case Op::Ne:
      return FuClass::Alu;
    case Op::AmStore:
    case Op::AmFetch:
      return FuClass::Am;
    default:
      return FuClass::Pe;
  }
}

}  // namespace valpipe::dfg
