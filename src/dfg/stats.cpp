#include "dfg/stats.hpp"

#include <sstream>

namespace valpipe::dfg {

GraphStats computeStats(const Graph& g) {
  GraphStats s;
  s.nodes = g.size();
  s.cells = g.loweredCellCount();
  for (NodeId id : g.ids()) {
    const Node& n = g.node(id);
    ++s.byOp[n.op];
    if (n.op == Op::Fifo) {
      ++s.fifoNodes;
      s.fifoSlots += static_cast<std::size_t>(n.fifoDepth);
      ++s.fifoDepthHist[n.fifoDepth];
    }
    if (n.hasGate()) ++s.gatedCells;
    if (isSource(n.op)) ++s.sources;
    for (const PortSrc& in : n.inputs)
      if (in.isArc()) ++s.arcs;
    if (n.gate && n.gate->isArc()) ++s.arcs;
  }
  return s;
}

std::string GraphStats::str() const {
  std::ostringstream os;
  os << nodes << " nodes, " << cells << " cells (lowered), " << arcs
     << " arcs, " << fifoNodes << " FIFOs holding " << fifoSlots
     << " slots, " << gatedCells << " gated, " << sources << " sources; by op:";
  for (const auto& [op, count] : byOp) os << ' ' << mnemonic(op) << '=' << count;
  if (!fifoDepthHist.empty()) {
    os << "; FIFO depths:";
    for (const auto& [depth, count] : fifoDepthHist)
      os << ' ' << depth << 'x' << count;
  }
  return os.str();
}

}  // namespace valpipe::dfg
