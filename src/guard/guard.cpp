#include "guard/guard.hpp"

#include <sstream>

namespace valpipe::guard {

const char* invariantName(Invariant inv) {
  switch (inv) {
    case Invariant::TokenConservation: return "token conservation";
    case Invariant::NeverOverwrite: return "never-overwrite";
    case Invariant::AckBalance: return "ack balance";
    case Invariant::OneActiveInstance: return "one active instance";
    case Invariant::FifoCapacity: return "fifo capacity";
  }
  return "?";
}

std::string cellLabel(const exec::ExecutableGraph& eg, std::uint32_t cell) {
  std::ostringstream os;
  os << "cell #" << cell;
  if (cell < eg.size()) {
    const exec::Cell& c = eg.cell(cell);
    os << " (" << dfg::mnemonic(c.op);
    const std::string& stream = eg.streamName(c);
    if (!stream.empty()) os << " '" << stream << "'";
    os << ")";
  }
  return os.str();
}

namespace {

/// Reverse-maps a flat operand slot to its consumer cell and port.  Cold
/// path: only runs while composing a violation message.
struct SlotHome {
  std::uint32_t consumer = 0;
  int port = 0;
  bool found = false;
};

SlotHome slotHome(const exec::ExecutableGraph& eg, std::uint32_t slot) {
  SlotHome h;
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cc = eg.cell(c);
    const std::uint32_t ports = cc.numPorts + (cc.hasGate ? 1u : 0u);
    if (slot >= cc.firstPort && slot < cc.firstPort + ports) {
      h.consumer = c;
      h.port = static_cast<int>(slot - cc.firstPort);
      if (cc.hasGate && h.port == cc.numPorts) h.port = exec::kGatePort;
      h.found = true;
      return h;
    }
  }
  return h;
}

}  // namespace

void LaneGuard::violate(Invariant inv, std::uint32_t cell, std::uint32_t slot,
                        std::int64_t at) const {
  std::ostringstream os;
  os << "invariant '" << invariantName(inv) << "' violated at t=" << at
     << " by " << cellLabel(*eg_, cell);
  const SlotHome home = slotHome(*eg_, slot);
  if (home.found) {
    os << " on the arc into " << cellLabel(*eg_, home.consumer);
    if (home.port == exec::kGatePort)
      os << " gate port";
    else
      os << " port " << home.port;
    const exec::Operand& op = eg_->operandAt(slot);
    if (!op.isLiteral() && op.producer != home.consumer)
      os << " (producer " << cellLabel(*eg_, op.producer) << ")";
  }
  os << "; arc counters: sent=" << st_->sent[slot]
     << " acked=" << st_->acked[slot] << " delivered=" << st_->delivered[slot]
     << " consumed=" << st_->consumed[slot];
  throw ViolationError(inv, cell, static_cast<std::int64_t>(slot), os.str());
}

}  // namespace valpipe::guard
