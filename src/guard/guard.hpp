// Runtime invariant guards for the §2 acknowledge-arc discipline.
//
// The static architecture is only safe because of four invariants the
// engines normally uphold by construction:
//
//   token conservation   — per arc, packets delivered never exceed packets
//                          sent, and packets consumed never exceed packets
//                          delivered;
//   never-overwrite      — a result packet never lands in an occupied
//                          operand slot;
//   ack balance          — a producer never receives more acknowledges for
//                          a destination than results it sent;
//   one active instance  — a producer never sends into a destination whose
//                          previous result is still un-acknowledged.
//
// Guards re-check these at run time against per-arc counters, catching both
// engine bugs and the destructive class of injected faults (fault/plan.hpp).
// They are opt-in through run::RunOptions::guards (null = off), and every
// hook is a null-pointer test when off — the same zero-cost contract as the
// obs probes.  A violation throws guard::ViolationError naming the invariant
// and the cells on the offending arc.
//
// Parallel-engine ownership: `sent`/`acked` are only touched by the
// producer cell's shard (sends in phase B, ack receipts in the drain
// window), `delivered`/`consumed` only by the consumer cell's shard
// (deliveries in phase B or the drain window, consumption in phase B); the
// one cross-shard access — onDeliver reading `sent` during a drain — is
// ordered after the sender's phase B by the step barrier.  Same disjointness
// argument as the slot and mirror arrays (see engine_parallel.cpp).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/executable_graph.hpp"

namespace valpipe::guard {

/// Which invariants to enforce; all on by default.
struct Config {
  bool tokenConservation = true;
  bool neverOverwrite = true;
  bool ackBalance = true;
  bool oneActiveInstance = true;
  bool fifoCapacity = true;
};

enum class Invariant {
  TokenConservation,
  NeverOverwrite,
  AckBalance,
  OneActiveInstance,
  /// Capacity-k generalization of one-active-instance for composite FIFO
  /// cells: in-flight tokens never exceed the interior stage count.
  FifoCapacity,
};

const char* invariantName(Invariant inv);

/// A detected invariant violation: the structured fields identify the arc
/// (flat operand slot) and the cell the check charged it to; what() carries
/// the full human-readable message with both endpoint cells named.
class ViolationError : public std::runtime_error {
 public:
  ViolationError(Invariant inv, std::uint32_t cell, std::int64_t slot,
                 const std::string& what)
      : std::runtime_error(what), inv_(inv), cell_(cell), slot_(slot) {}

  Invariant invariant() const { return inv_; }
  std::uint32_t cell() const { return cell_; }
  std::int64_t slot() const { return slot_; }

 private:
  Invariant inv_;
  std::uint32_t cell_;
  std::int64_t slot_;
};

/// Per-arc packet counters, indexed by flat operand slot.  Load-time tokens
/// count as one packet already sent and delivered (matching the engines'
/// slot and mirror seeding).
struct State {
  explicit State(const exec::ExecutableGraph& eg)
      : sent(eg.slotCount(), 0),
        acked(eg.slotCount(), 0),
        delivered(eg.slotCount(), 0),
        consumed(eg.slotCount(), 0) {
    for (std::uint32_t s = 0; s < eg.slotCount(); ++s)
      if (eg.operandAt(s).hasInitial) sent[s] = delivered[s] = 1;
  }

  std::vector<std::int64_t> sent;       ///< producer-shard-owned
  std::vector<std::int64_t> acked;      ///< producer-shard-owned
  std::vector<std::int64_t> delivered;  ///< consumer-shard-owned
  std::vector<std::int64_t> consumed;   ///< consumer-shard-owned
};

/// "cell #12 (MUL)" / "cell #3 (OUT 'x')" label for messages.
std::string cellLabel(const exec::ExecutableGraph& eg, std::uint32_t cell);

/// One lane's guard hooks over the shared per-run State.  Default-constructed
/// guards are inert; every hook then costs one null test.
class LaneGuard {
 public:
  LaneGuard() = default;
  LaneGuard(const Config* cfg, State* st, const exec::ExecutableGraph* eg)
      : cfg_(cfg), st_(st), eg_(eg) {}

  bool active() const { return st_ != nullptr; }

  /// Producer launches a result packet toward `slot` (before any fault may
  /// drop the packet in flight — the send itself is what the invariant
  /// constrains).
  void onSend(std::uint32_t producer, std::uint32_t slot, std::int64_t at) {
    if (!st_) return;
    if (cfg_->oneActiveInstance && st_->sent[slot] - st_->acked[slot] != 0)
      violate(Invariant::OneActiveInstance, producer, slot, at);
    ++st_->sent[slot];
  }

  /// Producer receives the acknowledge freeing `slot`.
  void onAck(std::uint32_t producer, std::uint32_t slot, std::int64_t at) {
    if (!st_) return;
    if (cfg_->ackBalance && st_->sent[slot] - st_->acked[slot] <= 0)
      violate(Invariant::AckBalance, producer, slot, at);
    ++st_->acked[slot];
  }

  /// A result packet lands in `slot` (`occupied` = slot already full).
  void onDeliver(std::uint32_t consumer, std::uint32_t slot, bool occupied,
                 std::int64_t at) {
    if (!st_) return;
    if (cfg_->neverOverwrite && occupied)
      violate(Invariant::NeverOverwrite, consumer, slot, at);
    if (cfg_->tokenConservation && st_->delivered[slot] >= st_->sent[slot])
      violate(Invariant::TokenConservation, consumer, slot, at);
    ++st_->delivered[slot];
  }

  /// Consumer fires and empties `slot` (`occupied` = slot held a packet).
  void onConsume(std::uint32_t consumer, std::uint32_t slot, bool occupied,
                 std::int64_t at) {
    if (!st_) return;
    if (cfg_->tokenConservation &&
        (!occupied || st_->consumed[slot] >= st_->delivered[slot]))
      violate(Invariant::TokenConservation, consumer, slot, at);
    ++st_->consumed[slot];
  }

  /// Re-validation checkpoint after SchedulerKind::Compiled fast-forwards
  /// the run by whole hyper-periods.  The per-event hooks above never see
  /// the skipped window — the engine advances the per-arc counters in bulk
  /// (N windows times the per-window delta) — so without this hook --guards
  /// would silently validate nothing across the jump.  The checkpoint
  /// re-checks the *instantaneous* form of every configured invariant on
  /// the advanced counters: per arc, acked <= sent <= acked + 1 (ack
  /// balance / one active instance under the capacity-1 slot discipline)
  /// and consumed <= delivered <= sent (token conservation).  Violations
  /// are charged to the arc's producer cell.
  void onCompiledCheckpoint(std::int64_t at) {
    if (!st_) return;
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(st_->sent.size()); ++s) {
      const std::uint32_t producer = eg_->operandAt(s).producer;
      if (producer == exec::kNoProducer) continue;  // literal arc: no packets
      if (cfg_->ackBalance && st_->sent[s] < st_->acked[s])
        violate(Invariant::AckBalance, producer, s, at);
      if (cfg_->oneActiveInstance && st_->sent[s] - st_->acked[s] > 1)
        violate(Invariant::OneActiveInstance, producer, s, at);
      if (cfg_->tokenConservation && (st_->delivered[s] > st_->sent[s] ||
                                      st_->consumed[s] > st_->delivered[s]))
        violate(Invariant::TokenConservation, producer, s, at);
    }
  }

  /// A composite FIFO cell fired (accept and/or emit applied; see
  /// exec/fifo.hpp).  The capacity-1 slot invariants above still govern the
  /// composite's own input and destination slots; this hook checks the
  /// capacity-(depth-1) interior the chain's per-stage slots used to cover:
  /// emits never outrun accepts, and queued tokens never exceed the interior
  /// stage count.  Violations are charged to the composite's input slot.
  void onFifoFire(std::uint32_t cell, std::uint32_t inputSlot,
                  std::int64_t accepted, std::int64_t emitted, int depth,
                  std::int64_t at) {
    if (!st_) return;
    if (cfg_->tokenConservation && emitted > accepted)
      violate(Invariant::TokenConservation, cell, inputSlot, at);
    if (cfg_->fifoCapacity && accepted - emitted > depth - 1)
      violate(Invariant::FifoCapacity, cell, inputSlot, at);
  }

 private:
  [[noreturn]] void violate(Invariant inv, std::uint32_t cell,
                            std::uint32_t slot, std::int64_t at) const;

  const Config* cfg_ = nullptr;
  State* st_ = nullptr;
  const exec::ExecutableGraph* eg_ = nullptr;
};

}  // namespace valpipe::guard
