#include "guard/diagnosis.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/paths.hpp"
#include "guard/guard.hpp"

namespace valpipe::guard {

namespace {

constexpr int kMaxCellsListed = 8;

/// Why one waiting cell cannot fire, derived from its slots and its
/// producer-side view of the arcs it feeds.
struct CellDiag {
  std::uint32_t cell = 0;
  std::string why;
  bool lostPacket = false;  ///< sorted first: these name the injected fault
};

}  // namespace

std::string diagnoseStall(const char* why, const dfg::Graph* lowered,
                          const exec::ExecutableGraph& eg,
                          const exec::Slot* slots,
                          const exec::CellDyn* cellDyn, std::int64_t now,
                          const std::vector<OutputProgress>& progress,
                          const fault::Counters& faults) {
  (void)cellDyn;
  std::ostringstream os;
  os << why << " at t=" << now;

  bool anyIncomplete = false;
  for (const OutputProgress& p : progress) {
    if (p.have >= p.want) continue;
    if (!anyIncomplete) os << "\nincomplete outputs:";
    anyIncomplete = true;
    os << "\n  '" << p.name << "': " << p.have << "/" << p.want << " elements";
  }

  std::vector<CellDiag> diags;
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cell = eg.cell(c);
    const std::uint32_t ports = cell.numPorts + (cell.hasGate ? 1u : 0u);

    // Consumer view: a cell holding some packets while missing others is
    // visibly waiting; a lost-result sentinel pins the cause on the network.
    std::uint32_t fullPorts = 0, wiredPorts = 0;
    std::string waitingOn;
    bool lost = false;
    for (std::uint32_t p = 0; p < ports; ++p) {
      const std::uint32_t slot = cell.firstPort + p;
      const exec::Operand& op = eg.operandAt(slot);
      if (op.isLiteral()) continue;
      ++wiredPorts;
      const exec::Slot& s = slots[slot];
      if (s.full) {
        ++fullPorts;
        if (s.readyAt >= fault::kLostPacket) {
          waitingOn = "result packet from " + cellLabel(eg, op.producer) +
                      " was lost in the network";
          lost = true;
        }
      } else if (waitingOn.empty()) {
        waitingOn = "waiting on a result from " + cellLabel(eg, op.producer);
      }
    }
    if (lost) {
      diags.push_back({c, waitingOn, true});
      continue;
    }
    if (wiredPorts > 0 && fullPorts > 0 && fullPorts < wiredPorts) {
      diags.push_back({c, waitingOn, false});
      continue;
    }

    // Producer view: every destination it last filled that was never
    // acknowledged back keeps the cell from refiring.
    for (const exec::Dest& d : eg.allDests(cell)) {
      const exec::Slot& s = slots[d.slot];
      if (s.freedAt >= fault::kLostPacket) {
        diags.push_back({c, "acknowledge from " + cellLabel(eg, d.consumer) +
                                " was lost in the network",
                         true});
        break;
      }
    }
  }

  // Lost-packet causes first: they are the actionable root cause.
  std::stable_sort(diags.begin(), diags.end(),
                   [](const CellDiag& a, const CellDiag& b) {
                     return a.lostPacket > b.lostPacket;
                   });
  if (!diags.empty()) {
    os << "\nblocked cells:";
    int listed = 0;
    for (const CellDiag& d : diags) {
      if (listed++ == kMaxCellsListed) {
        os << "\n  ... and " << (diags.size() - kMaxCellsListed) << " more";
        break;
      }
      os << "\n  " << cellLabel(eg, d.cell) << ": " << d.why;
    }
  }

  const std::string injected = faults.str();
  if (!injected.empty()) os << "\ninjected faults: " << injected;

  if (lowered) {
    const analysis::BalanceReport rep = analysis::checkBalanced(*lowered);
    if (!rep.balanced)
      os << "\ngraph is not balanced: " << rep.reason;
  }
  return os.str();
}

}  // namespace valpipe::guard
