// Stall/deadlock diagnosis for the watchdog (run::RunOptions::watchdog) and
// the maxInstructionTimes cap.
//
// When an engine quiesces (or hits its cap) with outputs incomplete, it
// flattens its dynamic state into the shared exec::Slot / exec::CellDyn form
// and calls diagnoseStall, which explains *why* nothing can fire: which
// cells wait on which missing result or acknowledge, whether a fault
// injector dropped the packet they wait for (the fault::kLostPacket
// sentinel), and whether the lowered graph was unbalanced to begin with
// (analysis::checkBalanced).  The resulting text becomes the
// run::StallError message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/cell_state.hpp"
#include "exec/executable_graph.hpp"
#include "fault/plan.hpp"

namespace valpipe::dfg {
struct Graph;
}

namespace valpipe::guard {

/// Progress of one named output stream at the moment of the stall.
struct OutputProgress {
  std::string name;
  std::int64_t want = 0;
  std::int64_t have = 0;
};

/// Builds the multi-line stall report.  `slots`/`cellDyn` are parallel to
/// `eg`'s operand slots and cells; `lowered` may be null (balance check is
/// then skipped).
std::string diagnoseStall(const char* why, const dfg::Graph* lowered,
                          const exec::ExecutableGraph& eg,
                          const exec::Slot* slots,
                          const exec::CellDyn* cellDyn, std::int64_t now,
                          const std::vector<OutputProgress>& progress,
                          const fault::Counters& faults);

}  // namespace valpipe::guard
