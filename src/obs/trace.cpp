#include "obs/trace.hpp"

#include <algorithm>

#include "dfg/opcode.hpp"
#include "support/check.hpp"

namespace valpipe::obs {

std::string cellDisplayName(const dfg::Graph& g, std::uint32_t cell) {
  const dfg::Node& n = g.node(dfg::NodeId{cell});
  if (!n.label.empty()) return n.label;
  if (!n.streamName.empty())
    return std::string(dfg::mnemonic(n.op)) + " " + n.streamName;
  return std::string(dfg::mnemonic(n.op)) + " #" + std::to_string(cell);
}

TraceMeta TraceMeta::of(const dfg::Graph& lowered) {
  TraceMeta m;
  const auto n = static_cast<std::uint32_t>(lowered.size());
  m.cellName.reserve(n);
  m.fuOf.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    m.cellName.push_back(cellDisplayName(lowered, c));
    m.fuOf.push_back(static_cast<std::uint8_t>(
        dfg::fuClass(lowered.node(dfg::NodeId{c}).op)));
  }
  m.laneOf.assign(n, 0);
  return m;
}

void TraceSink::begin(std::uint32_t lanes, TraceMeta meta) {
  lanes_.assign(lanes, TraceBuffer{});
  events_.clear();
  meta_ = std::move(meta);
  sealed_ = false;
}

void TraceSink::seal() {
  VALPIPE_CHECK_MSG(!sealed_, "TraceSink sealed twice without begin()");
  std::size_t total = 0;
  for (const TraceBuffer& b : lanes_) total += b.events().size();
  events_.clear();
  events_.reserve(total);
  for (TraceBuffer& b : lanes_) {
    events_.insert(events_.end(), b.events().begin(), b.events().end());
    b.clear();
  }
  // Stable: within one key, per-lane push order is schedule-determined and
  // key ties can only come from the one lane that owns the involved cell.
  std::stable_sort(events_.begin(), events_.end(), eventKeyLess);
  sealed_ = true;
}

bool TraceSink::sameSchedule(const TraceSink& a, const TraceSink& b) {
  VALPIPE_CHECK_MSG(a.sealed() && b.sealed(),
                    "sameSchedule requires sealed traces");
  auto next = [](const std::vector<Event>& v, std::size_t& i) -> const Event* {
    while (i < v.size() && v[i].kind == EventKind::BarrierWait) ++i;
    return i < v.size() ? &v[i] : nullptr;
  };
  std::size_t i = 0, j = 0;
  for (;;) {
    const Event* ea = next(a.events_, i);
    const Event* eb = next(b.events_, j);
    if (!ea || !eb) return !ea && !eb;
    if (!eventKeyEqual(*ea, *eb)) return false;
    ++i;
    ++j;
  }
}

}  // namespace valpipe::obs
