// Chrome about:tracing export of a sealed trace.
//
// Open chrome://tracing (or https://ui.perfetto.dev) and load the JSON.  One
// process row per engine lane (shard), one thread row per function-unit
// class inside it; cell firings render as duration slices spanning the FU
// busy time, FU denials and (when captured) barrier waits as instant marks.
// Timestamps are simulated instruction times presented as microseconds.
#pragma once

#include <iosfwd>

namespace valpipe::obs {

class TraceSink;

/// Writes `trace` (which must be sealed) as Chrome trace-event JSON.
void writeChromeTrace(std::ostream& os, const TraceSink& trace);

}  // namespace valpipe::obs
