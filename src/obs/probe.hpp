// Per-lane recording handle threaded through the engines' firing core.
//
// The probe is the only observability type the hot loops see.  It bundles
// the lane's TraceBuffer (nullptr when tracing is off) and the MetricsSink
// (nullptr when metrics are off); every hook degenerates to one or two
// null-pointer tests when no sink is attached, which is what keeps the
// no-sink fast path free.  A default-constructed probe is inert.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace valpipe::obs {

class LaneProbe {
 public:
  LaneProbe() = default;
  LaneProbe(TraceSink* trace, MetricsSink* metrics, std::uint8_t lane)
      : buf_(trace ? &trace->lane(lane) : nullptr),
        metrics_(metrics),
        lane_(lane),
        barriers_(trace != nullptr && trace->captureBarriers) {}

  bool active() const { return buf_ != nullptr || metrics_ != nullptr; }

  /// True when the engine should bother timing its barrier waits.
  bool wantsBarrier() const { return metrics_ != nullptr || barriers_; }

  MetricsSink* metrics() const { return metrics_; }

  /// Cell fired at t; its function unit stays busy for `execTime`.
  void fire(std::uint32_t cell, std::int64_t t, std::int64_t execTime) {
    if (metrics_) metrics_->onFire(cell, t);
    if (buf_) buf_->push({t, execTime, cell, 0, EventKind::Fire, lane_});
  }

  /// Result packet sent by `from` at t, arriving at `to` at `arrive`.
  void result(std::uint32_t from, std::uint32_t to, std::int64_t t,
              std::int64_t arrive) {
    if (buf_) buf_->push({t, arrive, from, to, EventKind::Result, lane_});
  }

  /// Acknowledge issued at t: `consumer` frees `producer` at `freedAt`.
  void ack(std::uint32_t producer, std::uint32_t consumer, std::int64_t t,
           std::int64_t freedAt) {
    if (buf_) buf_->push({t, freedAt, producer, consumer, EventKind::Ack, lane_});
  }

  /// Enabled cell examined at t found no free unit until `freeAt`.
  void denied(std::uint32_t cell, std::int64_t t, std::int64_t freeAt) {
    if (buf_) buf_->push({t, freeAt, cell, 0, EventKind::FuDenied, lane_});
  }

  /// Shard barrier at instruction time t cost `nanos` of wall-clock wait.
  void barrier(std::uint32_t shard, std::int64_t t, std::int64_t nanos) {
    if (metrics_) {
      LaneStats& l = metrics_->lane(lane_);
      ++l.barrierSyncs;
      l.barrierWaitNanos += static_cast<std::uint64_t>(nanos);
    }
    if (buf_ && barriers_)
      buf_->push({t, nanos, shard, 0, EventKind::BarrierWait, lane_});
  }

 private:
  TraceBuffer* buf_ = nullptr;
  MetricsSink* metrics_ = nullptr;
  std::uint8_t lane_ = 0;
  bool barriers_ = false;
};

}  // namespace valpipe::obs
