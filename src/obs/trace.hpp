// Event capture for the timed machine engines (the observability subsystem).
//
// The paper's central claim (§3, Theorems 1-2) is a *per-cell* property:
// in a fully pipelined graph every instruction cell fires once per two
// instruction times.  The engines' MachineResult exposes only final field
// values, so the claim could previously be asserted only through end-to-end
// output rates.  A TraceSink records the firing-level schedule itself —
// cell firings, result and acknowledge packet routings, function-unit
// denials — on the simulated instruction-time axis, buffered per engine
// lane (the whole run for the serial schedulers, one shard for the parallel
// one) and merged into one deterministic stream afterwards.
//
// Determinism contract: Fire / Result / Ack events are a pure function of
// the simulated schedule, which is bit-identical across every SchedulerKind,
// so their canonical stream is identical across Reference, Synchronous,
// EventDriven and ParallelEventDriven at any shard count.  FuDenied events
// are per-*examination* diagnostics: identical between EventDriven and
// ParallelEventDriven (which re-examine a denied cell only when a unit
// frees), but more frequent under the rescan schedulers, which re-examine
// every cycle.  BarrierWait events are parallel-only wall-clock measurements
// and are captured only when `captureBarriers` is set.
//
// Cost contract: tracing off is a null-pointer test per firing hook (the
// LaneProbe fast path in obs/probe.hpp); no sink, no cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "support/value.hpp"

namespace valpipe::obs {

enum class EventKind : std::uint8_t {
  Fire,         ///< cell fired (cell = firing cell, aux = FU busy time)
  Result,       ///< result packet routed (cell = producer, other = consumer,
                ///< aux = arrival time after exec/route/inter-PE delays)
  Ack,          ///< acknowledge routed (cell = producer being freed,
                ///< other = consuming cell, aux = freedAt)
  FuDenied,     ///< enabled cell found no free unit (aux = earliest free)
  BarrierWait,  ///< parallel shard barrier (cell = shard, aux = wait in ns;
                ///< wall-clock, non-deterministic; off by default)
};

/// One captured event on the simulated instruction-time axis.  `lane` is the
/// recording lane (shard) — excluded from the canonical ordering so the
/// stream compares equal across shard counts.
struct Event {
  std::int64_t time = 0;  ///< instruction time the event happened at
  std::int64_t aux = 0;   ///< kind-specific payload (see EventKind)
  std::uint32_t cell = 0;
  std::uint32_t other = 0;
  EventKind kind = EventKind::Fire;
  std::uint8_t lane = 0;
};

/// Canonical (lane-independent) ordering and equality of events.
inline bool eventKeyLess(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.cell != b.cell) return a.cell < b.cell;
  if (a.other != b.other) return a.other < b.other;
  return a.aux < b.aux;
}
inline bool eventKeyEqual(const Event& a, const Event& b) {
  return a.time == b.time && a.kind == b.kind && a.cell == b.cell &&
         a.other == b.other && a.aux == b.aux;
}

/// One lane's append-only event buffer.  A lane is written by exactly one
/// thread; cross-lane merging happens in TraceSink::seal after the run.
class TraceBuffer {
 public:
  void push(const Event& e) { events_.push_back(e); }
  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Static naming/grouping info for a traced graph: used by the Chrome
/// exporter (one track per shard / PE / FU class) and the metrics JSON.
struct TraceMeta {
  std::vector<std::string> cellName;  ///< per cell, never empty
  std::vector<std::uint8_t> fuOf;     ///< per cell FuClass index
  std::vector<std::uint32_t> laneOf;  ///< per cell recording lane (shard)
  std::vector<int> peOf;              ///< per cell PE, empty when unplaced

  /// Names + FU classes from the lowered graph; laneOf defaults to all-0
  /// (serial) and peOf to empty — the engine overwrites them as it knows.
  static TraceMeta of(const dfg::Graph& lowered);
};

/// Printable name of a cell: its label, else stream name, else "op#id".
std::string cellDisplayName(const dfg::Graph& g, std::uint32_t cell);

/// Collects one run's trace.  An engine calls begin() (sizing one buffer per
/// lane), lanes record concurrently into their own buffers, and seal() merges
/// them into the canonical stream.  The sink may be reused across runs;
/// begin() resets it.
class TraceSink {
 public:
  /// Capture BarrierWait events (wall-clock, parallel engine only).  Breaks
  /// the cross-scheduler identity of the stream; off by default.
  bool captureBarriers = false;

  void begin(std::uint32_t lanes, TraceMeta meta);
  TraceBuffer& lane(std::uint32_t i) { return lanes_[i]; }
  std::uint32_t laneCount() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  /// Merges every lane's buffer into the canonical stream (stable-sorted by
  /// the lane-independent event key).  Called by the engine at run end.
  void seal();

  bool sealed() const { return sealed_; }
  const std::vector<Event>& events() const { return events_; }
  const TraceMeta& meta() const { return meta_; }

  /// True when the two sealed traces describe the same schedule: equal
  /// canonical streams, BarrierWait events excluded.
  static bool sameSchedule(const TraceSink& a, const TraceSink& b);

 private:
  std::vector<TraceBuffer> lanes_;
  std::vector<Event> events_;
  TraceMeta meta_;
  bool sealed_ = false;
};

}  // namespace valpipe::obs
