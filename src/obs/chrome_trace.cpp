#include "obs/chrome_trace.hpp"

#include <cstdint>
#include <ostream>
#include <set>
#include <utility>

#include "obs/trace.hpp"
#include "support/check.hpp"

namespace valpipe::obs {

namespace {

constexpr const char* kFuNames[4] = {"PE", "ALU", "FPU", "AM"};
constexpr std::uint32_t kBarrierTid = 99;  ///< synthetic row for barrier marks

void jsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void writeChromeTrace(std::ostream& os, const TraceSink& trace) {
  VALPIPE_CHECK_MSG(trace.sealed(), "writeChromeTrace needs a sealed trace");
  const TraceMeta& meta = trace.meta();
  auto laneOf = [&](std::uint32_t cell) -> std::uint32_t {
    return cell < meta.laneOf.size() ? meta.laneOf[cell] : 0;
  };
  auto fuOf = [&](std::uint32_t cell) -> std::uint32_t {
    return cell < meta.fuOf.size() ? meta.fuOf[cell] : 0;
  };

  os << "{\"traceEvents\":[\n";
  // Name the process/thread rows first: one process per lane (shard), one
  // thread per FU class within it, plus a barrier row when captured.
  std::set<std::uint32_t> pids;
  std::set<std::pair<std::uint32_t, std::uint32_t>> tids;
  for (const Event& e : trace.events()) {
    if (e.kind == EventKind::BarrierWait) {
      pids.insert(e.cell);
      tids.insert({e.cell, kBarrierTid});
    } else if (e.kind == EventKind::Fire || e.kind == EventKind::FuDenied) {
      pids.insert(laneOf(e.cell));
      tids.insert({laneOf(e.cell), fuOf(e.cell)});
    }
  }
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (std::uint32_t pid : pids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"shard " << pid << "\"}}";
  }
  for (const auto& [pid, tid] : tids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
    if (tid == kBarrierTid)
      os << "barrier";
    else
      os << kFuNames[tid & 3];
    os << "\"}}";
  }

  // Firings become duration slices over the FU busy time; denials and
  // barrier waits become instant marks.  Result/Ack routings stay in the
  // canonical trace only — as flow arrows they drown the view.
  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::Fire: {
        sep();
        os << "{\"ph\":\"X\",\"name\":";
        jsonString(os, e.cell < meta.cellName.size() ? meta.cellName[e.cell]
                                                     : std::to_string(e.cell));
        os << ",\"pid\":" << laneOf(e.cell) << ",\"tid\":" << fuOf(e.cell)
           << ",\"ts\":" << e.time << ",\"dur\":" << (e.aux > 0 ? e.aux : 1)
           << ",\"args\":{\"cell\":" << e.cell;
        if (e.cell < meta.peOf.size()) os << ",\"pe\":" << meta.peOf[e.cell];
        os << "}}";
        break;
      }
      case EventKind::FuDenied:
        sep();
        os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"FU denied\",\"pid\":"
           << laneOf(e.cell) << ",\"tid\":" << fuOf(e.cell)
           << ",\"ts\":" << e.time << ",\"args\":{\"cell\":" << e.cell
           << ",\"free_at\":" << e.aux << "}}";
        break;
      case EventKind::BarrierWait:
        sep();
        os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"barrier wait\",\"pid\":"
           << e.cell << ",\"tid\":" << kBarrierTid << ",\"ts\":" << e.time
           << ",\"args\":{\"nanos\":" << e.aux << "}}";
        break;
      case EventKind::Result:
      case EventKind::Ack:
        break;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace valpipe::obs
