#include "obs/rate_report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "analysis/paths.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace valpipe::obs {

namespace {

std::string periodText(std::int64_t period) {
  if (period > kGapMax) return "> " + std::to_string(kGapMax);
  return std::to_string(period);
}

/// Structural explanations of a stall: checkBalanced's verdict, the
/// positive-slack arcs (short paths into a reconvergence point — the
/// producer/consumer pairs whose length mismatch jams the pipe), and any
/// feedback cycle longer than the bound allows.
std::vector<std::string> diagnose(const dfg::Graph& g,
                                  std::int64_t periodBound) {
  std::vector<std::string> out;
  const analysis::BalanceReport bal = analysis::checkBalanced(g);
  if (!bal.balanced && !bal.reason.empty()) out.push_back(bal.reason);

  if (analysis::topoOrder(g)) {
    const std::vector<std::int64_t> depth = analysis::longestDepths(g);
    for (const analysis::Arc& a : analysis::arcs(g)) {
      if (a.feedback) continue;
      const std::int64_t slack =
          depth[a.to.index] - depth[a.from.index] - a.phaseLength;
      if (slack <= 0) continue;
      std::ostringstream ss;
      ss << "unbalanced path: " << cellDisplayName(g, a.from.index) << " -> "
         << cellDisplayName(g, a.to.index) << " is " << slack
         << " stage(s) shorter than the longest reconverging path (needs "
         << slack << " more buffer stage(s))";
      out.push_back(ss.str());
    }
  }

  for (const analysis::CycleInfo& c : analysis::feedbackCycles(g)) {
    if (c.stages <= periodBound) continue;
    std::ostringstream ss;
    ss << "feedback cycle of " << c.stages << " stages closing "
       << cellDisplayName(g, c.from.index) << " -> "
       << cellDisplayName(g, c.to.index) << " caps the firing period at "
       << c.stages << " per token of dependence distance";
    out.push_back(ss.str());
  }
  return out;
}

}  // namespace

RateReport auditMaxPipelining(const dfg::Graph& lowered,
                              const MetricsSink& metrics,
                              std::int64_t periodBound,
                              std::uint64_t minFirings) {
  RateReport r;
  r.periodBound = periodBound;
  const auto n = static_cast<std::uint32_t>(
      std::min<std::size_t>(lowered.size(), metrics.cellCount()));
  for (std::uint32_t c = 0; c < n; ++c) {
    const std::int64_t period = metrics.steadyPeriod(c, minFirings);
    if (period < 0) continue;  // too few firings to carry a steady state
    ++r.auditedCells;
    if (period > periodBound) {
      r.offenders.push_back(
          {c, cellDisplayName(lowered, c), period, metrics.cell(c).firings});
    }
  }
  r.fullyPipelined = r.auditedCells > 0 && r.offenders.empty();
  if (!r.offenders.empty()) r.diagnosis = diagnose(lowered, periodBound);
  return r;
}

std::string RateReport::line() const {
  std::ostringstream ss;
  if (fullyPipelined) {
    ss << "fully pipelined: yes (" << auditedCells
       << " cells at steady period <= " << periodBound << ")";
  } else if (auditedCells == 0) {
    ss << "fully pipelined: n/a (no cell fired often enough to audit)";
  } else {
    ss << "fully pipelined: NO — " << offenders.size() << " of " << auditedCells
       << " cells exceed period " << periodBound << ":";
    const std::size_t shown = std::min<std::size_t>(offenders.size(), 6);
    for (std::size_t i = 0; i < shown; ++i) {
      ss << (i ? ", " : " ") << offenders[i].name << " (period "
         << periodText(offenders[i].period) << ")";
    }
    if (offenders.size() > shown) ss << ", ...";
  }
  return ss.str();
}

void RateReport::print(std::ostream& os) const {
  os << line() << "\n";
  for (const std::string& d : diagnosis) os << "    " << d << "\n";
}

}  // namespace valpipe::obs
