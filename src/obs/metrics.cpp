#include "obs/metrics.hpp"

#include <ostream>

#include "obs/trace.hpp"

namespace valpipe::obs {

void MetricsSink::begin(std::uint32_t lanes, std::size_t cells) {
  cells_.assign(cells, CellStats{});
  lanes_.assign(lanes, LaneStats{});
  scheduler_.clear();
  cycles_ = 0;
  fuBusy_.fill(0);
}

void MetricsSink::finishRun(const char* scheduler, std::int64_t cycles,
                            const std::array<std::uint64_t, 4>& fuBusy) {
  scheduler_ = scheduler;
  cycles_ = cycles;
  fuBusy_ = fuBusy;
}

std::int64_t MetricsSink::steadyPeriod(std::uint32_t cell,
                                       std::uint64_t minFirings) const {
  const CellStats& cs = cells_[cell];
  if (cs.firings < minFirings) return -1;
  std::uint64_t gaps = 0;
  for (std::uint64_t c : cs.gapCount) gaps += c;
  if (gaps == 0) return -1;
  // Lower median over the histogram: fill/drain transients are a bounded
  // number of outliers, so the median sits on the steady-state period.
  const std::uint64_t half = (gaps - 1) / 2;
  std::uint64_t seen = 0;
  for (int b = 0; b < kGapBuckets; ++b) {
    seen += cs.gapCount[static_cast<std::size_t>(b)];
    if (seen > half) return b;
  }
  return kGapMax + 1;
}

double MetricsSink::fuBusyPerCycle(int fuClass) const {
  if (cycles_ <= 0) return 0.0;
  return static_cast<double>(fuBusy_[static_cast<std::size_t>(fuClass)]) /
         static_cast<double>(cycles_);
}

namespace {

constexpr const char* kFuNames[4] = {"pe", "alu", "fpu", "am"};

void jsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void MetricsSink::writeJson(std::ostream& os, const TraceMeta* meta) const {
  os << "{\n  \"scheduler\": ";
  jsonString(os, scheduler_);
  os << ",\n  \"cycles\": " << cycles_ << ",\n  \"fu_busy_per_cycle\": {";
  for (int f = 0; f < 4; ++f) {
    if (f) os << ", ";
    os << '"' << kFuNames[f] << "\": " << fuBusyPerCycle(f);
  }
  os << "},\n  \"lanes\": [\n";
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const LaneStats& l = lanes_[i];
    os << "    {\"lane\": " << i << ", \"barrier_syncs\": " << l.barrierSyncs
       << ", \"barrier_wait_nanos\": " << l.barrierWaitNanos
       << ", \"mailbox_messages\": " << l.mailboxMessages
       << ", \"max_mailbox_depth\": " << l.maxMailboxDepth << "}"
       << (i + 1 < lanes_.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"cells\": [\n";
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const CellStats& cs = cells_[c];
    os << "    {\"cell\": " << c;
    if (meta && c < meta->cellName.size()) {
      os << ", \"name\": ";
      jsonString(os, meta->cellName[c]);
    }
    os << ", \"firings\": " << cs.firings << ", \"first_fire\": " << cs.firstFire
       << ", \"last_fire\": " << cs.lastFire << ", \"steady_period\": "
       << steadyPeriod(static_cast<std::uint32_t>(c)) << ", \"gap_histogram\": [";
    for (int b = 0; b < kGapBuckets; ++b) {
      if (b) os << ", ";
      os << cs.gapCount[static_cast<std::size_t>(b)];
    }
    os << "]}" << (c + 1 < cells_.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace valpipe::obs
