// Max-pipelining auditor (§3, Theorems 1–2): checks the paper's claim on a
// *measured* run instead of end-to-end output rates.
//
// A fully pipelined static dataflow graph fires every instruction cell once
// per two instruction times.  The auditor takes the steady-state firing
// period of each cell from a MetricsSink gap histogram, flags every cell
// slower than the bound, and explains the flags structurally via
// analysis/paths: the unbalanced producer/consumer path (positive-slack
// arcs into a reconvergence point) or the feedback cycle whose stage count
// caps the rate.  Graphs that are *designed* for a lower rate (e.g. the
// Fig. 7 Todd scheme at rate k/S) audit against a bound of S/k derived from
// their predicted rate instead of 2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace valpipe::obs {

class MetricsSink;

/// One cell slower than the audited bound.
struct CellAudit {
  std::uint32_t cell = 0;
  std::string name;
  std::int64_t period = 0;  ///< measured steady-state period (kGapMax+1 = "longer")
  std::uint64_t firings = 0;
};

struct RateReport {
  bool fullyPipelined = false;
  std::int64_t periodBound = 2;       ///< bound the audit ran against
  std::uint64_t auditedCells = 0;     ///< cells with enough firings to judge
  std::vector<CellAudit> offenders;   ///< cells with period > bound
  std::vector<std::string> diagnosis; ///< structural explanations of the stall

  /// The benches' one-liner: "fully pipelined: yes (...)" or
  /// "fully pipelined: NO — ...".
  std::string line() const;

  /// line() plus one indented diagnosis line per structural finding.
  void print(std::ostream& os) const;
};

/// Audits a finished run of `lowered` (cell index == node index) recorded in
/// `metrics`.  `periodBound` defaults to the paper's bound of 2 instruction
/// times; pass `2 * S / k` (rounded up) for deliberately cycle-limited
/// graphs.  Cells that fired fewer than `minFirings` times carry no steady
/// state and are skipped.
RateReport auditMaxPipelining(const dfg::Graph& lowered,
                              const MetricsSink& metrics,
                              std::int64_t periodBound = 2,
                              std::uint64_t minFirings = 8);

}  // namespace valpipe::obs
