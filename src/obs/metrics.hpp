// Run metrics of the timed machine engines (the observability subsystem).
//
// Where the trace (obs/trace.hpp) records the schedule event by event, the
// MetricsSink aggregates it online with O(1) work per firing and O(cells)
// memory: per-cell firing counts and inter-firing-gap histograms (the raw
// material of the §3 max-pipelining audit in obs/rate_report.hpp), per-lane
// scheduler diagnostics (barrier waits, mailbox traffic of the sharded
// engine), and end-of-run function-unit occupancy.  Serialized to JSON via
// writeJson.
//
// Thread safety: per-cell slots are written only by the shard that owns the
// cell, and per-lane stats only by their lane — the parallel engine's
// barriers provide the ordering, so plain (non-atomic) counters suffice,
// exactly like the engine's own firing arrays.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace valpipe::obs {

struct TraceMeta;

/// Inter-firing gaps are bucketed exactly for 1..kGapMax instruction times;
/// anything longer lands in the overflow bucket.  The paper's bound is 2, so
/// precision at small gaps is what the audit needs.
inline constexpr int kGapMax = 16;
inline constexpr int kGapBuckets = kGapMax + 2;  ///< [0] unused, [17] overflow

/// Per-cell firing statistics.  All counters are 64-bit: multi-million-
/// firing runs are routine and the sink must never wrap.
struct CellStats {
  std::uint64_t firings = 0;
  std::int64_t firstFire = -1;
  std::int64_t lastFire = -1;
  std::array<std::uint64_t, kGapBuckets> gapCount{};
};

/// Per-lane scheduler diagnostics (lane = shard for the parallel engine).
struct LaneStats {
  std::uint64_t barrierSyncs = 0;      ///< barrier arrivals (parallel only)
  std::uint64_t barrierWaitNanos = 0;  ///< wall-clock spent waiting in them
  std::uint64_t mailboxMessages = 0;   ///< cross-shard packets drained
  std::uint64_t maxMailboxDepth = 0;   ///< deepest single drain of one box
};

class MetricsSink {
 public:
  /// Resets and sizes the sink; called by the engine before the run.
  void begin(std::uint32_t lanes, std::size_t cells);

  // --- hot path (via obs::LaneProbe) ------------------------------------
  void onFire(std::uint32_t cell, std::int64_t t) {
    CellStats& cs = cells_[cell];
    if (cs.firings == 0) {
      cs.firstFire = t;
    } else {
      const std::int64_t gap = t - cs.lastFire;
      ++cs.gapCount[static_cast<std::size_t>(
          gap > kGapMax ? kGapMax + 1 : gap)];
    }
    cs.lastFire = t;
    ++cs.firings;
  }

  LaneStats& lane(std::uint32_t i) { return lanes_[i]; }

  // --- end of run -------------------------------------------------------
  /// Stamped by the engine when the run finishes.
  void finishRun(const char* scheduler, std::int64_t cycles,
                 const std::array<std::uint64_t, 4>& fuBusy);

  // --- queries ----------------------------------------------------------
  std::size_t cellCount() const { return cells_.size(); }
  const CellStats& cell(std::uint32_t c) const { return cells_[c]; }
  const std::vector<LaneStats>& laneStats() const { return lanes_; }
  const std::string& scheduler() const { return scheduler_; }
  std::int64_t cycles() const { return cycles_; }
  const std::array<std::uint64_t, 4>& fuBusy() const { return fuBusy_; }

  /// Steady-state firing period of a cell: the median inter-firing gap
  /// (transient fill/drain gaps are outliers by construction).  Returns -1
  /// when the cell fired fewer than `minFirings` times, and kGapMax + 1
  /// ("period > kGapMax") when the median lands in the overflow bucket.
  std::int64_t steadyPeriod(std::uint32_t cell,
                            std::uint64_t minFirings = 8) const;

  /// Average busy units of an FU class per instruction time (occupancy;
  /// may exceed 1 when the class has several units).  0 when no cycles.
  double fuBusyPerCycle(int fuClass) const;

  /// Serializes everything to JSON; `meta` (optional) adds cell names.
  void writeJson(std::ostream& os, const TraceMeta* meta = nullptr) const;

 private:
  std::vector<CellStats> cells_;
  std::vector<LaneStats> lanes_;
  std::string scheduler_;
  std::int64_t cycles_ = 0;
  std::array<std::uint64_t, 4> fuBusy_{};
};

}  // namespace valpipe::obs
