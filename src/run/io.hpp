// Shared run-API vocabulary of the execution engines.
//
// The untimed Kahn interpreter (sim::interpret) and the timed machine
// simulator (machine::simulate) accept the same input/output currency: named
// scalar streams, pre-loaded array-memory regions, a wave count, and runaway
// guards.  Both engines' option structs build on this header so callers can
// prepare one set of streams/options and hand it to either engine.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/value.hpp"

namespace valpipe::obs {
class TraceSink;
class MetricsSink;
}  // namespace valpipe::obs

namespace valpipe::fault {
struct Plan;
}

namespace valpipe::guard {
struct Config;
}

namespace valpipe::run {

/// Named streams: one wave of each array, least index first.
using StreamMap = std::map<std::string, std::vector<Value>>;

/// Options every engine understands.  Engine-specific option structs
/// (machine::RunOptions) extend this; the untimed interpreter consumes it
/// directly.
struct RunOptions {
  int waves = 1;  ///< how many array instances to stream through the graph

  /// Pre-loaded array-memory contents (regions AmFetch cells read).
  StreamMap amInitial;

  /// Runaway guard of the untimed interpreter (firings are its only clock).
  std::uint64_t maxFirings = 50'000'000;

  /// Runaway guard of the timed simulator, in instruction times.
  std::int64_t maxCycles = 100'000'000;

  /// Hard cap on the run length, in instruction times (firings for the
  /// untimed interpreter).  Unlike maxFirings/maxCycles — which end the run
  /// quietly with whatever completed — reaching this cap with outputs still
  /// incomplete throws run::StallError carrying a diagnosis.  0 = off.
  std::int64_t maxInstructionTimes = 0;

  /// Stall watchdog of the timed engines: if no cell fires for this many
  /// instruction times while outputs are incomplete, abort with a
  /// run::StallError diagnosing which cells wait on what.  0 = off.
  std::int64_t watchdog = 0;

  /// Deterministic fault-injection plan (src/fault/), honored by the timed
  /// machine engines.  Non-owning; null means off at zero cost.
  const fault::Plan* faults = nullptr;

  /// Runtime invariant guards (src/guard/), honored by the timed machine
  /// engines.  Non-owning; null means off at zero cost.
  const guard::Config* guards = nullptr;

  /// Observability sinks (src/obs/), honored by the timed machine engines
  /// and ignored by the untimed interpreter (it has no instruction-time
  /// axis).  Non-owning; null means off, and off costs nothing measurable.
  obs::TraceSink* trace = nullptr;      ///< firing-level event capture
  obs::MetricsSink* metrics = nullptr;  ///< firing counts / gaps / occupancy
};

/// Thrown when a run can make no further progress — the watchdog saw an
/// idle window, or the maxInstructionTimes cap was hit, with outputs still
/// incomplete.  what() carries the full diagnosis (guard::diagnoseStall).
class StallError : public std::runtime_error {
 public:
  StallError(std::int64_t at, const std::string& diagnosis)
      : std::runtime_error(diagnosis), at_(at) {}

  /// Instruction time (firing count for the untimed interpreter) at which
  /// the stall was declared.
  std::int64_t at() const { return at_; }

 private:
  std::int64_t at_;
};

}  // namespace valpipe::run
