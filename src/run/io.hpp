// Shared run-API vocabulary of the execution engines.
//
// The untimed Kahn interpreter (sim::interpret) and the timed machine
// simulator (machine::simulate) accept the same input/output currency: named
// scalar streams, pre-loaded array-memory regions, a wave count, and runaway
// guards.  Both engines' option structs build on this header so callers can
// prepare one set of streams/options and hand it to either engine.  The old
// per-engine aliases (sim::StreamMap, machine::StreamMap, sim::RunOptions)
// are [[deprecated]] and slated for removal next release.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/value.hpp"

namespace valpipe::obs {
class TraceSink;
class MetricsSink;
}  // namespace valpipe::obs

namespace valpipe::run {

/// Named streams: one wave of each array, least index first.
using StreamMap = std::map<std::string, std::vector<Value>>;

/// Options every engine understands.  Engine-specific option structs
/// (machine::RunOptions) extend this; the untimed interpreter consumes it
/// directly.
struct RunOptions {
  int waves = 1;  ///< how many array instances to stream through the graph

  /// Pre-loaded array-memory contents (regions AmFetch cells read).
  StreamMap amInitial;

  /// Runaway guard of the untimed interpreter (firings are its only clock).
  std::uint64_t maxFirings = 50'000'000;

  /// Runaway guard of the timed simulator, in instruction times.
  std::int64_t maxCycles = 100'000'000;

  /// Observability sinks (src/obs/), honored by the timed machine engines
  /// and ignored by the untimed interpreter (it has no instruction-time
  /// axis).  Non-owning; null means off, and off costs nothing measurable.
  obs::TraceSink* trace = nullptr;      ///< firing-level event capture
  obs::MetricsSink* metrics = nullptr;  ///< firing counts / gaps / occupancy
};

}  // namespace valpipe::run
