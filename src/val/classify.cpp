#include "val/classify.hpp"

#include "val/constfold.hpp"
#include "val/linear.hpp"

namespace valpipe::val {

namespace {

/// Index form `i + c` with manifest c; nullopt otherwise.
std::optional<std::int64_t> offsetForm(
    const ExprPtr& idx, const std::string& idxVar,
    const std::map<std::string, std::int64_t>& consts) {
  auto isIdx = [&](const ExprPtr& e) {
    return e->kind == Expr::Kind::Ident && e->name == idxVar;
  };
  if (isIdx(idx)) return 0;
  if (idx->kind != Expr::Kind::Binary) return std::nullopt;
  if (idx->bop == BinOp::Add) {
    if (isIdx(idx->a)) return constEvalInt(idx->b, consts);
    if (isIdx(idx->b)) return constEvalInt(idx->a, consts);
    return std::nullopt;
  }
  if (idx->bop == BinOp::Sub && isIdx(idx->a)) {
    auto c = constEvalInt(idx->b, consts);
    if (c) return -*c;
  }
  return std::nullopt;
}

ClassifyResult checkPE(const ExprPtr& e, const std::string& idxVar,
                       std::set<std::string> arrays,
                       const std::map<std::string, std::int64_t>& consts,
                       const std::string& idxVar2) {
  switch (e->kind) {
    case Expr::Kind::IntLit:
    case Expr::Kind::RealLit:
    case Expr::Kind::BoolLit:
      return ClassifyResult::yes();  // rule 1
    case Expr::Kind::Ident:
      if (arrays.count(e->name))
        return ClassifyResult::no("array '" + e->name +
                                  "' used without an element selection");
      return ClassifyResult::yes();  // rule 2
    case Expr::Kind::Unary:
      return checkPE(e->a, idxVar, arrays, consts, idxVar2);  // rule 3 (unary)
    case Expr::Kind::Binary: {     // rule 3
      if (auto r = checkPE(e->a, idxVar, arrays, consts, idxVar2); !r) return r;
      return checkPE(e->b, idxVar, arrays, consts, idxVar2);
    }
    case Expr::Kind::ArrayIndex: {  // rule 4
      if (idxVar.empty())
        return ClassifyResult::no(
            "array access in a context with no index variable");
      if (!arrays.count(e->name))
        return ClassifyResult::no("'" + e->name + "' is not a visible array");
      if (e->isIndex2()) {
        if (idxVar2.empty())
          return ClassifyResult::no("2-D selection outside a 2-D forall");
        if (!offsetForm(e->a, idxVar, consts) ||
            !offsetForm(e->b, idxVar2, consts))
          return ClassifyResult::no(
              "2-D index of " + e->name + "[...] is not of the form " +
              idxVar + " + c1, " + idxVar2 + " + c2 (rule 4)");
        return ClassifyResult::yes();
      }
      if (!offsetForm(e->a, idxVar, consts))
        return ClassifyResult::no("index of " + e->name +
                                  "[...] is not of the form " + idxVar +
                                  " + c (rule 4)");
      return ClassifyResult::yes();
    }
    case Expr::Kind::Let: {  // rule 5
      for (const Def& d : e->defs) {
        if (auto r = checkPE(d.value, idxVar, arrays, consts, idxVar2); !r)
          return r;
        arrays.erase(d.name);  // definitions bind scalars, shadowing arrays
      }
      return checkPE(e->body, idxVar, arrays, consts, idxVar2);
    }
    case Expr::Kind::If: {  // rule 6
      if (auto r = checkPE(e->a, idxVar, arrays, consts, idxVar2); !r) return r;
      if (auto r = checkPE(e->b, idxVar, arrays, consts, idxVar2); !r) return r;
      return checkPE(e->c, idxVar, arrays, consts, idxVar2);
    }
  }
  return ClassifyResult::no("unknown expression kind");
}

/// Every access to `accVar` inside `e` must read exactly element i-1.
ClassifyResult accVarAccesses(const ExprPtr& e, const std::string& accVar,
                              const std::string& idxVar,
                              const std::map<std::string, std::int64_t>& consts) {
  if (!e) return ClassifyResult::yes();
  if (e->kind == Expr::Kind::ArrayIndex && e->name == accVar) {
    auto off = offsetForm(e->a, idxVar, consts);
    if (!off || *off != -1)
      return ClassifyResult::no("loop array '" + accVar +
                                "' may only be read as " + accVar + "[" +
                                idxVar + "-1] (first-order recurrence)");
  }
  for (const ExprPtr& sub : {e->a, e->b, e->c, e->body})
    if (sub)
      if (auto r = accVarAccesses(sub, accVar, idxVar, consts); !r) return r;
  for (const Def& d : e->defs)
    if (auto r = accVarAccesses(d.value, accVar, idxVar, consts); !r) return r;
  return ClassifyResult::yes();
}

}  // namespace

std::optional<std::int64_t> arrayIndexOffset(
    const ExprPtr& idx, const std::string& idxVar,
    const std::map<std::string, std::int64_t>& consts) {
  return offsetForm(idx, idxVar, consts);
}

std::set<std::string> visibleArrays(const Module& m, const Block& b) {
  std::set<std::string> arrays;
  for (const Param& p : m.params)
    if (p.type.isArray) arrays.insert(p.name);
  for (const Block& prior : m.blocks) {
    if (&prior == &b) break;
    arrays.insert(prior.name);
  }
  return arrays;
}

ClassifyResult isPrimitiveExpr(const ExprPtr& e, const std::string& idxVar,
                               const std::set<std::string>& arrays,
                               const std::map<std::string, std::int64_t>& consts,
                               const std::string& idxVar2) {
  return checkPE(e, idxVar, arrays, consts, idxVar2);
}

ClassifyResult isScalarPrimitiveExpr(
    const ExprPtr& e, const std::map<std::string, std::int64_t>& consts) {
  return checkPE(e, std::string{}, {}, consts, std::string{});
}

ClassifyResult isPrimitiveForall(const Block& b, const Module& m) {
  if (!b.isForall()) return ClassifyResult::no("not a forall block");
  const ForallBlock& fb = b.forall();
  // (1) manifest range — guaranteed by the parser's constExpr; re-derive to
  // be safe.
  if (!constEvalInt(fb.lo, m.consts) || !constEvalInt(fb.hi, m.consts))
    return ClassifyResult::no("forall range is not manifest");
  // (2) definitions and accumulation are primitive on i.
  const std::set<std::string> arrays = visibleArrays(m, b);
  for (const Def& d : fb.defs)
    if (auto r = isPrimitiveExpr(d.value, fb.indexVar, arrays, m.consts,
                                 fb.indexVar2);
        !r)
      return ClassifyResult::no("definition '" + d.name + "': " + r.reason);
  if (auto r = isPrimitiveExpr(fb.accum, fb.indexVar, arrays, m.consts,
                               fb.indexVar2);
      !r)
    return ClassifyResult::no("accumulation: " + r.reason);
  return ClassifyResult::yes();
}

ClassifyResult isPrimitiveForIter(const Block& b, const Module& m) {
  if (b.isForall()) return ClassifyResult::no("not a for-iter block");
  const ForIterBlock& fi = b.forIter();
  if (!fi.lastIndex)
    return ClassifyResult::no("loop bound is not manifest (run typecheck)");
  // Initial element: primitive scalar expression (§7 (2)).
  if (auto r = isScalarPrimitiveExpr(fi.accInitValue, m.consts); !r)
    return ClassifyResult::no("initial element: " + r.reason);
  // Body parts: primitive on i over the visible arrays plus the loop array.
  std::set<std::string> arrays = visibleArrays(m, b);
  arrays.insert(fi.accVar);
  for (const Def& d : fi.defs) {
    if (auto r = isPrimitiveExpr(d.value, fi.indexVar, arrays, m.consts); !r)
      return ClassifyResult::no("definition '" + d.name + "': " + r.reason);
    if (auto r = accVarAccesses(d.value, fi.accVar, fi.indexVar, m.consts); !r)
      return r;
  }
  if (auto r = isPrimitiveExpr(fi.appendValue, fi.indexVar, arrays, m.consts);
      !r)
    return ClassifyResult::no("appended element: " + r.reason);
  if (auto r = accVarAccesses(fi.appendValue, fi.accVar, fi.indexVar, m.consts);
      !r)
    return r;
  // The continuation condition must not read streams (it is folded into
  // control sequences).
  if (auto r = isScalarPrimitiveExpr(fi.cond, m.consts); !r)
    return ClassifyResult::no("loop condition: " + r.reason);
  return ClassifyResult::yes();
}

ClassifyResult isSimpleForIter(const Block& b, const Module& m) {
  if (auto r = isPrimitiveForIter(b, m); !r) return r;
  const ForIterBlock& fi = b.forIter();
  auto lin = decomposeLinear(bodyExpression(fi), fi.accVar, fi.indexVar, m.consts);
  if (!lin)
    return ClassifyResult::no(
        "recurrence is not linear in " + fi.accVar + "[" + fi.indexVar +
        "-1]; no companion function is known (§7 trade-off discussion)");
  // alpha/beta must themselves be primitive on i without the loop array.
  const std::set<std::string> arrays = visibleArrays(m, b);
  if (auto r = isPrimitiveExpr(lin->alpha, fi.indexVar, arrays, m.consts); !r)
    return ClassifyResult::no("recurrence coefficient: " + r.reason);
  if (auto r = isPrimitiveExpr(lin->beta, fi.indexVar, arrays, m.consts); !r)
    return ClassifyResult::no("recurrence offset: " + r.reason);
  return ClassifyResult::yes();
}

ClassifyResult isPipeStructured(const Module& m) {
  if (m.blocks.empty()) return ClassifyResult::no("no blocks");
  for (const Block& b : m.blocks) {
    if (b.isForall()) {
      if (auto r = isPrimitiveForall(b, m); !r)
        return ClassifyResult::no("block '" + b.name + "': " + r.reason);
    } else {
      if (auto r = isPrimitiveForIter(b, m); !r)
        return ClassifyResult::no("block '" + b.name + "': " + r.reason);
    }
  }
  return ClassifyResult::yes();
}

}  // namespace valpipe::val
