// Recursive-descent parser for the pipe-structured Val subset.
//
// Grammar (comments start with '%'):
//
//   module     := { 'const' IDENT '=' constExpr [';'] } function
//   function   := 'function' IDENT '(' params 'returns' type ')' body 'endfun'
//   params     := group { ';' group } ;  group := IDENT {',' IDENT} ':' type
//   type       := scalar | 'array' '[' scalar ']' [ '[' constExpr ',' constExpr ']' ]
//   body       := 'let' blockDef { [';'] blockDef } 'in' IDENT 'endlet'
//               | blockExpr                      % single anonymous block
//   blockDef   := IDENT ':' type ':=' blockExpr
//   blockExpr  := forall | foriter
//   forall     := 'forall' IDENT 'in' '[' constExpr ',' constExpr ']'
//                 { def [';'] } 'construct' expr 'endall'
//   foriter    := 'for' IDENT ':' 'integer' ':=' constExpr ';'
//                 IDENT ':' type ':=' '[' constExpr ':' expr ']'
//                 'do' [ 'let' { def [';'] } 'in' ] ifIter [ 'endlet' ] 'endfor'
//   ifIter     := 'if' expr 'then' 'iter' iterArm 'enditer' 'else' IDENT 'endif'
//   iterArm    := two assignments in either order, separated by [';']:
//                 T ':=' T '[' expr ':' expr ']'   and   i ':=' i '+' 1
//   def        := IDENT ':' type ':=' expr
//   expr       := precedence-climbing over | & (rel) (+ -) (* /) with unary
//                 - ~, primaries: literals, idents, A '[' expr ']',
//                 '(' expr ')', if-then-else-endif, let-in-endlet
//
// Manifest constants (`const m = 100`) may be used wherever constExpr
// appears and inside expressions as ordinary identifiers.
#pragma once

#include <string_view>

#include "support/diagnostics.hpp"
#include "val/ast.hpp"

namespace valpipe::val {

/// Parses a module; on any error, diagnostics are recorded and the partial
/// module returned (callers must check diags.hasErrors()).
Module parseModule(std::string_view source, Diagnostics& diags);

/// Parses a module and throws CompileError on any diagnostic error.
Module parseModuleOrThrow(std::string_view source);

/// Parses a standalone expression (testing / tooling convenience).
ExprPtr parseExpression(std::string_view source, Diagnostics& diags);

}  // namespace valpipe::val
