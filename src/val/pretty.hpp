// Pretty-printer for the Val AST (diagnostics, DOT labels, tests).
#pragma once

#include <string>

#include "val/ast.hpp"

namespace valpipe::val {

std::string toString(const ExprPtr& e);
std::string toString(const Block& b);
std::string toString(const Module& m);

}  // namespace valpipe::val
