// Abstract syntax for the pipe-structured Val subset (§4 of the paper).
//
// A module is a set of manifest constants plus one function whose body binds
// array-valued blocks — each a forall or a for-iter expression — and returns
// one of them.  Expressions inside blocks are the paper's candidate
// "primitive expressions"; classify.hpp checks the §5–§7 restrictions.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "support/diagnostics.hpp"
#include "val/types.hpp"

namespace valpipe::val {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class BinOp { Add, Sub, Mul, Div, Lt, Le, Gt, Ge, Eq, Ne, And, Or };
enum class UnOp { Neg, Not };

const char* toString(BinOp op);
const char* toString(UnOp op);

/// A let definition `name : type := value`.
struct Def {
  std::string name;
  std::optional<Type> declaredType;
  ExprPtr value;
  SourceLoc loc;
};

/// One expression node.  A tagged struct (rather than a class hierarchy)
/// keeps the pattern matching in the classifier / linear analyzer compact.
struct Expr {
  enum class Kind {
    IntLit,
    RealLit,
    BoolLit,
    Ident,
    Unary,
    Binary,
    If,          ///< if a then b else c endif
    Let,         ///< let defs in body endlet
    ArrayIndex,  ///< name '[' a ']'  or  name '[' a ',' b ']' (2-D)
  };

  Kind kind = Kind::IntLit;
  SourceLoc loc;

  std::int64_t intValue = 0;  // IntLit
  double realValue = 0.0;     // RealLit
  bool boolValue = false;     // BoolLit
  std::string name;           // Ident, ArrayIndex (array name)
  UnOp uop = UnOp::Neg;
  BinOp bop = BinOp::Add;
  ExprPtr a, b, c;            // operands; If: a=cond b=then c=else
  std::vector<Def> defs;      // Let
  ExprPtr body;               // Let

  // --- factories ---
  static ExprPtr mkInt(std::int64_t v, SourceLoc loc = {});
  static ExprPtr mkReal(double v, SourceLoc loc = {});
  static ExprPtr mkBool(bool v, SourceLoc loc = {});
  static ExprPtr mkIdent(std::string name, SourceLoc loc = {});
  static ExprPtr mkUnary(UnOp op, ExprPtr a, SourceLoc loc = {});
  static ExprPtr mkBinary(BinOp op, ExprPtr a, ExprPtr b, SourceLoc loc = {});
  static ExprPtr mkIf(ExprPtr cond, ExprPtr thenE, ExprPtr elseE,
                      SourceLoc loc = {});
  static ExprPtr mkLet(std::vector<Def> defs, ExprPtr body, SourceLoc loc = {});
  static ExprPtr mkIndex(std::string array, ExprPtr index, SourceLoc loc = {});
  /// Two-dimensional element access A[row, col] (row index in `a`, column
  /// index in `b`).
  static ExprPtr mkIndex2(std::string array, ExprPtr row, ExprPtr col,
                          SourceLoc loc = {});

  bool isIndex2() const { return kind == Kind::ArrayIndex && b != nullptr; }
};

/// forall i in [lo, hi]  <defs>  construct <accum>  endall  (§4 Example 1).
/// The two-dimensional form (§9 extension) adds a second index variable:
/// forall i in [lo, hi], j in [lo2, hi2] ... — elements are produced
/// row-major (i slow, j fast).
struct ForallBlock {
  std::string indexVar;
  ExprPtr lo, hi;  ///< manifest integer expressions (consts + literals)
  /// Second (column) dimension; empty indexVar2 means one-dimensional.
  std::string indexVar2;
  ExprPtr lo2, hi2;
  std::vector<Def> defs;
  ExprPtr accum;
  SourceLoc loc;

  bool is2d() const { return !indexVar2.empty(); }
};

/// The paper's primitive for-iter shape (§7 Definition, Example 2):
///
///   for i : integer := p;  T : array[real] := [r: init]
///   do let <defs> in
///        if <cond> then iter T := T[i: append]; i := i + 1 enditer
///        else T endif
///      endlet
///   endfor
struct ForIterBlock {
  std::string indexVar;   ///< i
  ExprPtr indexInit;      ///< p (manifest)
  std::string accVar;     ///< T
  ExprPtr accInitIndex;   ///< r (manifest)
  ExprPtr accInitValue;   ///< init (primitive scalar expression)
  std::vector<Def> defs;  ///< body definitions (may reference T[i-1])
  ExprPtr cond;           ///< continuation condition (i < q or i <= q)
  ExprPtr appendValue;    ///< element appended each cycle
  SourceLoc loc;
  /// Last index value for which an append happens (q in the §7 definition);
  /// resolved from `cond` by the type checker.
  std::optional<std::int64_t> lastIndex;
};

/// One array-producing block of a pipe-structured program.
struct Block {
  std::string name;  ///< the array it defines
  Type type;         ///< declared array type (range resolved by typecheck)
  std::variant<ForallBlock, ForIterBlock> body;
  SourceLoc loc;

  bool isForall() const { return std::holds_alternative<ForallBlock>(body); }
  const ForallBlock& forall() const { return std::get<ForallBlock>(body); }
  const ForIterBlock& forIter() const { return std::get<ForIterBlock>(body); }
};

struct Param {
  std::string name;
  Type type;
  SourceLoc loc;
};

/// A whole pipe-structured program.
struct Module {
  std::map<std::string, std::int64_t> consts;  ///< manifest constants, in order
  std::string functionName;
  std::vector<Param> params;
  Type returnType;
  std::vector<Block> blocks;  ///< in binding order
  std::string resultName;     ///< the `in <name>` result
  SourceLoc loc;

  const Block* findBlock(const std::string& name) const;
  const Param* findParam(const std::string& name) const;
};

}  // namespace valpipe::val
