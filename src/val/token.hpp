// Tokens of the Val subset (Ackerman & Dennis [1]) accepted by valpipe.
#pragma once

#include <cstdint>
#include <string>

#include "support/diagnostics.hpp"

namespace valpipe::val {

enum class Tok {
  // literals / identifiers
  Ident,
  IntLit,
  RealLit,
  // keywords
  KwFunction,
  KwReturns,
  KwEndfun,
  KwLet,
  KwIn,
  KwEndlet,
  KwIf,
  KwThen,
  KwElse,
  KwEndif,
  KwForall,
  KwConstruct,
  KwEndall,
  KwFor,
  KwDo,
  KwIter,
  KwEnditer,
  KwEndfor,
  KwConst,
  KwArray,
  KwReal,
  KwInteger,
  KwBoolean,
  KwTrue,
  KwFalse,
  // punctuation / operators
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Assign,    // :=
  Plus,
  Minus,
  Star,
  Slash,
  Eq,        // =
  Ne,        // ~=
  Lt,
  Le,
  Gt,
  Ge,
  Amp,       // &
  Bar,       // |
  Tilde,     // ~
  EndOfFile,
};

const char* toString(Tok t);

struct Token {
  Tok kind = Tok::EndOfFile;
  std::string text;            ///< source spelling (identifiers, numbers)
  std::int64_t intValue = 0;   ///< IntLit
  double realValue = 0.0;      ///< RealLit
  SourceLoc loc;
};

}  // namespace valpipe::val
