#include "val/lexer.hpp"

#include <cctype>
#include <charconv>
#include <map>

namespace valpipe::val {

const char* toString(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::RealLit: return "real literal";
    case Tok::KwFunction: return "'function'";
    case Tok::KwReturns: return "'returns'";
    case Tok::KwEndfun: return "'endfun'";
    case Tok::KwLet: return "'let'";
    case Tok::KwIn: return "'in'";
    case Tok::KwEndlet: return "'endlet'";
    case Tok::KwIf: return "'if'";
    case Tok::KwThen: return "'then'";
    case Tok::KwElse: return "'else'";
    case Tok::KwEndif: return "'endif'";
    case Tok::KwForall: return "'forall'";
    case Tok::KwConstruct: return "'construct'";
    case Tok::KwEndall: return "'endall'";
    case Tok::KwFor: return "'for'";
    case Tok::KwDo: return "'do'";
    case Tok::KwIter: return "'iter'";
    case Tok::KwEnditer: return "'enditer'";
    case Tok::KwEndfor: return "'endfor'";
    case Tok::KwConst: return "'const'";
    case Tok::KwArray: return "'array'";
    case Tok::KwReal: return "'real'";
    case Tok::KwInteger: return "'integer'";
    case Tok::KwBoolean: return "'boolean'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semicolon: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Assign: return "':='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Eq: return "'='";
    case Tok::Ne: return "'~='";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::Amp: return "'&'";
    case Tok::Bar: return "'|'";
    case Tok::Tilde: return "'~'";
    case Tok::EndOfFile: return "end of input";
  }
  return "?";
}

namespace {

const std::map<std::string_view, Tok>& keywords() {
  static const std::map<std::string_view, Tok> kw = {
      {"function", Tok::KwFunction}, {"returns", Tok::KwReturns},
      {"endfun", Tok::KwEndfun},     {"let", Tok::KwLet},
      {"in", Tok::KwIn},             {"endlet", Tok::KwEndlet},
      {"if", Tok::KwIf},             {"then", Tok::KwThen},
      {"else", Tok::KwElse},         {"endif", Tok::KwEndif},
      {"forall", Tok::KwForall},     {"construct", Tok::KwConstruct},
      {"endall", Tok::KwEndall},     {"for", Tok::KwFor},
      {"do", Tok::KwDo},             {"iter", Tok::KwIter},
      {"enditer", Tok::KwEnditer},   {"endfor", Tok::KwEndfor},
      {"const", Tok::KwConst},       {"array", Tok::KwArray},
      {"real", Tok::KwReal},         {"integer", Tok::KwInteger},
      {"boolean", Tok::KwBoolean},   {"true", Tok::KwTrue},
      {"false", Tok::KwFalse},
  };
  return kw;
}

}  // namespace

std::vector<Token> lex(std::string_view src, Diagnostics& diags) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  auto loc = [&] { return SourceLoc{line, col}; };
  auto advance = [&](std::size_t k = 1) {
    for (std::size_t j = 0; j < k && i < src.size(); ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto peek = [&](std::size_t k = 0) -> char {
    return i + k < src.size() ? src[i + k] : '\0';
  };
  auto emit = [&](Tok kind, SourceLoc at, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.loc = at;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = peek();
    if (c == '%') {  // comment to end of line
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    const SourceLoc at = loc();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                                peek() == '_'))
        advance();
      const std::string_view word = src.substr(start, i - start);
      auto it = keywords().find(word);
      emit(it != keywords().end() ? it->second : Tok::Ident, at,
           std::string(word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t start = i;
      bool isReal = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      if (peek() == '.') {
        isReal = true;
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        // exponent requires at least one digit (sign optional)
        std::size_t mark = i;
        advance();
        if (peek() == '+' || peek() == '-') advance();
        if (std::isdigit(static_cast<unsigned char>(peek()))) {
          isReal = true;
          while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
        } else {
          i = mark;  // bare 'e' belongs to the next token
        }
      }
      const std::string text(src.substr(start, i - start));
      Token t;
      t.loc = at;
      t.text = text;
      if (isReal) {
        t.kind = Tok::RealLit;
        t.realValue = std::stod(text);
      } else {
        t.kind = Tok::IntLit;
        auto [ptr, ec] =
            std::from_chars(text.data(), text.data() + text.size(), t.intValue);
        if (ec != std::errc{}) diags.error(at, "integer literal out of range");
      }
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': emit(Tok::LParen, at); advance(); continue;
      case ')': emit(Tok::RParen, at); advance(); continue;
      case '[': emit(Tok::LBracket, at); advance(); continue;
      case ']': emit(Tok::RBracket, at); advance(); continue;
      case ',': emit(Tok::Comma, at); advance(); continue;
      case ';': emit(Tok::Semicolon, at); advance(); continue;
      case '+': emit(Tok::Plus, at); advance(); continue;
      case '-': emit(Tok::Minus, at); advance(); continue;
      case '*': emit(Tok::Star, at); advance(); continue;
      case '/': emit(Tok::Slash, at); advance(); continue;
      case '=': emit(Tok::Eq, at); advance(); continue;
      case '&': emit(Tok::Amp, at); advance(); continue;
      case '|': emit(Tok::Bar, at); advance(); continue;
      case ':':
        if (peek(1) == '=') {
          emit(Tok::Assign, at);
          advance(2);
        } else {
          emit(Tok::Colon, at);
          advance();
        }
        continue;
      case '<':
        if (peek(1) == '=') {
          emit(Tok::Le, at);
          advance(2);
        } else {
          emit(Tok::Lt, at);
          advance();
        }
        continue;
      case '>':
        if (peek(1) == '=') {
          emit(Tok::Ge, at);
          advance(2);
        } else {
          emit(Tok::Gt, at);
          advance();
        }
        continue;
      case '~':
        if (peek(1) == '=') {
          emit(Tok::Ne, at);
          advance(2);
        } else {
          emit(Tok::Tilde, at);
          advance();
        }
        continue;
      default:
        diags.error(at, std::string("unexpected character '") + c + "'");
        advance();
        continue;
    }
  }
  emit(Tok::EndOfFile, loc());
  return out;
}

}  // namespace valpipe::val
