#include "val/constfold.hpp"

namespace valpipe::val {

std::optional<std::int64_t> constEvalInt(
    const ExprPtr& e, const std::map<std::string, std::int64_t>& consts) {
  if (!e) return std::nullopt;
  switch (e->kind) {
    case Expr::Kind::IntLit:
      return e->intValue;
    case Expr::Kind::Ident: {
      auto it = consts.find(e->name);
      if (it == consts.end()) return std::nullopt;
      return it->second;
    }
    case Expr::Kind::Unary: {
      if (e->uop != UnOp::Neg) return std::nullopt;
      auto v = constEvalInt(e->a, consts);
      if (!v) return std::nullopt;
      return -*v;
    }
    case Expr::Kind::Binary: {
      auto a = constEvalInt(e->a, consts);
      auto b = constEvalInt(e->b, consts);
      if (!a || !b) return std::nullopt;
      switch (e->bop) {
        case BinOp::Add: return *a + *b;
        case BinOp::Sub: return *a - *b;
        case BinOp::Mul: return *a * *b;
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

namespace {

std::optional<Value> evalScalar(const ExprPtr& e,
                                std::map<std::string, Value>& env,
                                const std::map<std::string, std::int64_t>& consts) {
  switch (e->kind) {
    case Expr::Kind::IntLit: return Value(e->intValue);
    case Expr::Kind::RealLit: return Value(e->realValue);
    case Expr::Kind::BoolLit: return Value(e->boolValue);
    case Expr::Kind::Ident: {
      auto it = env.find(e->name);
      if (it != env.end()) return it->second;
      auto c = consts.find(e->name);
      if (c != consts.end()) return Value(c->second);
      return std::nullopt;
    }
    case Expr::Kind::Unary: {
      auto a = evalScalar(e->a, env, consts);
      if (!a) return std::nullopt;
      return e->uop == UnOp::Neg ? ops::neg(*a) : ops::logicalNot(*a);
    }
    case Expr::Kind::Binary: {
      auto a = evalScalar(e->a, env, consts);
      auto b = evalScalar(e->b, env, consts);
      if (!a || !b) return std::nullopt;
      switch (e->bop) {
        case BinOp::Add: return ops::add(*a, *b);
        case BinOp::Sub: return ops::sub(*a, *b);
        case BinOp::Mul: return ops::mul(*a, *b);
        case BinOp::Div: return ops::div(*a, *b);
        case BinOp::Lt: return ops::lt(*a, *b);
        case BinOp::Le: return ops::le(*a, *b);
        case BinOp::Gt: return ops::gt(*a, *b);
        case BinOp::Ge: return ops::ge(*a, *b);
        case BinOp::Eq: return ops::eq(*a, *b);
        case BinOp::Ne: return ops::ne(*a, *b);
        case BinOp::And: return ops::logicalAnd(*a, *b);
        case BinOp::Or: return ops::logicalOr(*a, *b);
      }
      return std::nullopt;
    }
    case Expr::Kind::If: {
      auto c = evalScalar(e->a, env, consts);
      if (!c || !c->isBoolean()) return std::nullopt;
      return evalScalar(c->asBoolean() ? e->b : e->c, env, consts);
    }
    case Expr::Kind::Let: {
      std::map<std::string, Value> inner = env;
      for (const Def& d : e->defs) {
        auto v = evalScalar(d.value, inner, consts);
        if (!v) return std::nullopt;
        inner[d.name] = *v;
      }
      return evalScalar(e->body, inner, consts);
    }
    case Expr::Kind::ArrayIndex:
      return std::nullopt;  // not index-only
  }
  return std::nullopt;
}

}  // namespace

std::optional<Value> evalIndexOnlyAt(
    const ExprPtr& e, const std::string& idxVar, std::int64_t i,
    const std::map<std::string, std::int64_t>& consts) {
  if (!e) return std::nullopt;
  std::map<std::string, Value> env{{idxVar, Value(i)}};
  try {
    return evalScalar(e, env, consts);
  } catch (const ValueError&) {
    return std::nullopt;
  }
}

std::optional<Value> evalIndexOnlyAt2(
    const ExprPtr& e, const std::string& v1, std::int64_t i,
    const std::string& v2, std::int64_t j,
    const std::map<std::string, std::int64_t>& consts) {
  if (!e) return std::nullopt;
  std::map<std::string, Value> env{{v1, Value(i)}, {v2, Value(j)}};
  try {
    return evalScalar(e, env, consts);
  } catch (const ValueError&) {
    return std::nullopt;
  }
}

std::optional<std::vector<Value>> evalOverIndex2(
    const ExprPtr& e, const std::string& v1, Range r1, const std::string& v2,
    Range r2, const std::map<std::string, std::int64_t>& consts) {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(r1.length() * r2.length()));
  for (std::int64_t i = r1.lo; i <= r1.hi; ++i)
    for (std::int64_t j = r2.lo; j <= r2.hi; ++j) {
      auto v = evalIndexOnlyAt2(e, v1, i, v2, j, consts);
      if (!v) return std::nullopt;
      out.push_back(*v);
    }
  return out;
}

std::optional<std::vector<Value>> evalOverIndex(
    const ExprPtr& e, const std::string& idxVar, Range range,
    const std::map<std::string, std::int64_t>& consts) {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(range.length()));
  for (std::int64_t i = range.lo; i <= range.hi; ++i) {
    auto v = evalIndexOnlyAt(e, idxVar, i, consts);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

std::optional<std::int64_t> resolveLoopLastIndex(
    const ForIterBlock& fi, const std::map<std::string, std::int64_t>& consts) {
  const ExprPtr& cond = fi.cond;
  if (!cond || cond->kind != Expr::Kind::Binary) return std::nullopt;
  if (cond->bop != BinOp::Lt && cond->bop != BinOp::Le) return std::nullopt;
  if (cond->a->kind != Expr::Kind::Ident || cond->a->name != fi.indexVar)
    return std::nullopt;
  auto bound = constEvalInt(cond->b, consts);
  if (!bound) return std::nullopt;
  return cond->bop == BinOp::Lt ? *bound - 1 : *bound;
}

}  // namespace valpipe::val
