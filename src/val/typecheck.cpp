#include "val/typecheck.hpp"

#include <set>
#include <sstream>

#include "support/check.hpp"
#include "val/constfold.hpp"

namespace valpipe::val {

namespace {

/// Scope context while checking expressions inside a block body.  `active`
/// marks which index values can reach the current expression: conditionals
/// whose test depends only on the index variable(s) narrow it — exactly the
/// knowledge the compiler turns into element-selection control sequences, so
/// Example 1's boundary-guarded C[i-1] checks cleanly.  For 2-D blocks the
/// active set is flattened row-major (indexVar slow, indexVar2 fast).
struct IndexCtx {
  std::string indexVar;
  Range indexRange;           ///< values the (row) index variable sweeps over
  std::string indexVar2;      ///< column variable; empty for 1-D blocks
  Range indexRange2{0, 0};
  std::vector<bool> active;   ///< flattened, row-major

  bool is2d() const { return !indexVar2.empty(); }
  std::int64_t width() const { return is2d() ? indexRange2.length() : 1; }
  std::int64_t flatSize() const { return indexRange.length() * width(); }

  static IndexCtx full(std::string var, Range range) {
    IndexCtx ctx;
    ctx.indexVar = std::move(var);
    ctx.indexRange = range;
    ctx.active.assign(static_cast<std::size_t>(range.length()), true);
    return ctx;
  }

  static IndexCtx full2(std::string var, Range range, std::string var2,
                        Range range2) {
    IndexCtx ctx;
    ctx.indexVar = std::move(var);
    ctx.indexRange = range;
    ctx.indexVar2 = std::move(var2);
    ctx.indexRange2 = range2;
    ctx.active.assign(static_cast<std::size_t>(ctx.flatSize()), true);
    return ctx;
  }

  /// Row/column values for a flattened active-set position.
  std::pair<std::int64_t, std::int64_t> at(std::size_t k) const {
    const std::int64_t w = width();
    return {indexRange.lo + static_cast<std::int64_t>(k) / w,
            indexRange2.lo + static_cast<std::int64_t>(k) % w};
  }
};

/// Largest index-sweep extent the element-wise range checker will walk.
/// The active-set check is O(extent) per array access; past this limit the
/// block is rejected with a diagnostic instead of grinding (or exhausting
/// memory) on an absurd manifest range.
constexpr std::int64_t kMaxCheckedExtent = std::int64_t(1) << 22;

class Checker {
 public:
  Checker(Module& m, Diagnostics& diags) : m_(m), diags_(diags) {}

  TypeInfo run() {
    checkParams();
    std::set<std::string> known;
    for (const Param& p : m_.params) known.insert(p.name);

    for (Block& b : m_.blocks) {
      if (known.count(b.name))
        error(b.loc, "'" + b.name + "' is already defined");
      checkBlock(b);
      known.insert(b.name);
      arrays_[b.name] = b.type;
    }

    const Block* result = m_.findBlock(m_.resultName);
    if (result == nullptr)
      error(m_.loc, "result '" + m_.resultName + "' does not name a block");
    else if (!result->type.sameAs(m_.returnType))
      error(result->loc, "result type " + result->type.str() +
                             " does not match declared return type " +
                             m_.returnType.str());
    return std::move(info_);
  }

 private:
  Module& m_;
  Diagnostics& diags_;
  TypeInfo info_;
  std::map<std::string, Type> arrays_;   ///< params + completed blocks

  void error(SourceLoc loc, const std::string& msg) { diags_.error(loc, msg); }

  void checkParams() {
    std::set<std::string> seen;
    for (const Param& p : m_.params) {
      if (!seen.insert(p.name).second)
        error(p.loc, "duplicate parameter '" + p.name + "'");
      if (m_.consts.count(p.name))
        error(p.loc, "parameter '" + p.name + "' shadows a constant");
      if (p.type.isArray) {
        if (!p.type.range)
          error(p.loc, "array parameter '" + p.name +
                           "' needs a manifest index range");
        arrays_[p.name] = p.type;
      }
    }
  }

  // --- scalar environment (consts, params, index vars, let defs) ---

  using Scope = std::map<std::string, Type>;

  std::optional<Type> lookupScalar(const std::vector<Scope>& scopes,
                                   const std::string& name) const {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    if (m_.consts.count(name)) return Type::integer();
    for (const Param& p : m_.params)
      if (p.name == name && p.type.isScalar()) return p.type;
    return std::nullopt;
  }

  bool isNumeric(const Type& t) const {
    return t.isScalar() && t.scalar != Scalar::Boolean;
  }

  /// Common type of two scalars under Val's integer->real widening.
  std::optional<Type> unify(const Type& a, const Type& b) const {
    if (!a.isScalar() || !b.isScalar()) return std::nullopt;
    if (a.scalar == b.scalar) return a;
    if (isNumeric(a) && isNumeric(b)) return Type::real();
    return std::nullopt;
  }

  bool assignable(const Type& from, const Type& to) const {
    if (from.sameAs(to)) return true;
    return from.isScalar() && to.isScalar() && from.scalar == Scalar::Integer &&
           to.scalar == Scalar::Real;
  }

  Type record(const ExprPtr& e, Type t) {
    info_.exprTypes[e.get()] = t;
    return t;
  }

  /// Array-access index form `v + c` (or `v`, `v - c`) for the given index
  /// variable; returns the manifest offset c.
  std::optional<std::int64_t> indexOffset(const ExprPtr& idx,
                                          const std::string& var) const {
    auto isIdxVar = [&](const ExprPtr& e) {
      return e->kind == Expr::Kind::Ident && e->name == var;
    };
    if (isIdxVar(idx)) return 0;
    if (idx->kind != Expr::Kind::Binary) return std::nullopt;
    if (idx->bop == BinOp::Add) {
      if (isIdxVar(idx->a)) return constEvalInt(idx->b, m_.consts);
      if (isIdxVar(idx->b)) return constEvalInt(idx->a, m_.consts);
      return std::nullopt;
    }
    if (idx->bop == BinOp::Sub && isIdxVar(idx->a)) {
      auto c = constEvalInt(idx->b, m_.consts);
      if (!c) return std::nullopt;
      return -*c;
    }
    return std::nullopt;
  }

  Type checkExpr(const ExprPtr& e, std::vector<Scope>& scopes,
                 const IndexCtx* ctx) {
    switch (e->kind) {
      case Expr::Kind::IntLit: return record(e, Type::integer());
      case Expr::Kind::RealLit: return record(e, Type::real());
      case Expr::Kind::BoolLit: return record(e, Type::boolean());
      case Expr::Kind::Ident: {
        auto t = lookupScalar(scopes, e->name);
        if (t) return record(e, *t);
        if (arrays_.count(e->name))
          error(e->loc, "array '" + e->name +
                            "' used as a scalar (index it with [...])");
        else
          error(e->loc, "undefined name '" + e->name + "'");
        return record(e, Type::real());
      }
      case Expr::Kind::Unary: {
        const Type a = checkExpr(e->a, scopes, ctx);
        if (e->uop == UnOp::Neg) {
          if (!isNumeric(a)) error(e->loc, "operand of '-' must be numeric");
          return record(e, a);
        }
        if (!(a.isScalar() && a.scalar == Scalar::Boolean))
          error(e->loc, "operand of '~' must be boolean");
        return record(e, Type::boolean());
      }
      case Expr::Kind::Binary: {
        const Type a = checkExpr(e->a, scopes, ctx);
        const Type b = checkExpr(e->b, scopes, ctx);
        switch (e->bop) {
          case BinOp::Add:
          case BinOp::Sub:
          case BinOp::Mul:
          case BinOp::Div: {
            if (!isNumeric(a) || !isNumeric(b)) {
              error(e->loc, std::string("operands of '") + toString(e->bop) +
                                "' must be numeric");
              return record(e, Type::real());
            }
            return record(e, *unify(a, b));
          }
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge:
            if (!isNumeric(a) || !isNumeric(b))
              error(e->loc, std::string("operands of '") + toString(e->bop) +
                                "' must be numeric");
            return record(e, Type::boolean());
          case BinOp::Eq:
          case BinOp::Ne:
            if (!unify(a, b))
              error(e->loc, "operands of equality must have a common type");
            return record(e, Type::boolean());
          case BinOp::And:
          case BinOp::Or:
            if (a.scalar != Scalar::Boolean || b.scalar != Scalar::Boolean ||
                !a.isScalar() || !b.isScalar())
              error(e->loc, std::string("operands of '") + toString(e->bop) +
                                "' must be boolean");
            return record(e, Type::boolean());
        }
        VALPIPE_UNREACHABLE("binop");
      }
      case Expr::Kind::If: {
        const Type c = checkExpr(e->a, scopes, ctx);
        if (!(c.isScalar() && c.scalar == Scalar::Boolean))
          error(e->a->loc, "condition must be boolean");
        // Index-only conditions narrow the active set per arm.
        std::optional<std::vector<Value>> sel;
        if (ctx != nullptr)
          sel = ctx->is2d()
                    ? evalOverIndex2(e->a, ctx->indexVar, ctx->indexRange,
                                     ctx->indexVar2, ctx->indexRange2,
                                     m_.consts)
                    : evalOverIndex(e->a, ctx->indexVar, ctx->indexRange,
                                    m_.consts);
        if (sel) {
          IndexCtx thenCtx = *ctx;
          IndexCtx elseCtx = *ctx;
          for (std::size_t k = 0; k < sel->size(); ++k) {
            const bool taken = (*sel)[k].isBoolean() && (*sel)[k].asBoolean();
            thenCtx.active[k] = thenCtx.active[k] && taken;
            elseCtx.active[k] = elseCtx.active[k] && !taken;
          }
          const Type t = checkExpr(e->b, scopes, &thenCtx);
          const Type f = checkExpr(e->c, scopes, &elseCtx);
          auto u2 = unify(t, f);
          if (!u2) {
            error(e->loc, "conditional arms have incompatible types " +
                              t.str() + " and " + f.str());
            return record(e, t);
          }
          return record(e, *u2);
        }
        const Type t = checkExpr(e->b, scopes, ctx);
        const Type f = checkExpr(e->c, scopes, ctx);
        auto u = unify(t, f);
        if (!u) {
          error(e->loc, "conditional arms have incompatible types " + t.str() +
                            " and " + f.str());
          return record(e, t);
        }
        return record(e, *u);
      }
      case Expr::Kind::Let: {
        scopes.emplace_back();
        for (const Def& d : e->defs) checkDef(d, scopes, ctx);
        const Type t = checkExpr(e->body, scopes, ctx);
        scopes.pop_back();
        return record(e, t);
      }
      case Expr::Kind::ArrayIndex: {
        auto it = arrays_.find(e->name);
        if (it == arrays_.end()) {
          error(e->loc, "'" + e->name + "' is not a known array");
          return record(e, Type::real());
        }
        const Type idxT = checkExpr(e->a, scopes, ctx);
        if (!(idxT.isScalar() && idxT.scalar == Scalar::Integer))
          error(e->a->loc, "array index must be an integer expression");
        if (e->isIndex2()) {
          const Type idx2T = checkExpr(e->b, scopes, ctx);
          if (!(idx2T.isScalar() && idx2T.scalar == Scalar::Integer))
            error(e->b->loc, "array index must be an integer expression");
        }
        if (it->second.is2d() != e->isIndex2()) {
          error(e->loc, std::string("'") + e->name + "' is " +
                            (it->second.is2d() ? "two" : "one") +
                            "-dimensional; use " +
                            (it->second.is2d() ? "A[i, j]" : "A[i]") +
                            " selection");
          return record(e, it->second.element());
        }
        if (ctx == nullptr) {
          error(e->loc, "array element access is only allowed inside a block "
                        "body (primitive expressions on the index variable)");
        } else if (e->isIndex2()) {
          checkAccess2d(e, it->second, *ctx);
        } else {
          checkAccess1d(e, it->second, *ctx);
        }
        return record(e, it->second.element());
      }
    }
    VALPIPE_UNREACHABLE("expr kind");
  }

  void checkAccess1d(const ExprPtr& e, const Type& arr, const IndexCtx& ctx) {
    // Inside a 2-D forall a 1-D array may be selected by the row variable
    // (A[i + c]); the compiler replicates each packet across the row with a
    // hold loop.  Column-varying selection of a 1-D array is not meaningful.
    auto off = indexOffset(e->a, ctx.indexVar);
    if (ctx.is2d() && !off) {
      error(e->a->loc, "1-D array '" + e->name +
                           "' inside a 2-D forall must be selected by the row "
                           "variable (" + ctx.indexVar + " + c)");
      return;
    }
    if (!off) {
      error(e->a->loc, "array index must have the form " + ctx.indexVar +
                           " + c with manifest c (paper rule 4)");
      return;
    }
    if (!arr.range) return;
    // Only index values that can reach this access matter.
    for (std::size_t k = 0; k < ctx.active.size(); ++k) {
      if (!ctx.active[k]) continue;
      const std::int64_t i = ctx.at(k).first;
      if (!arr.range->contains(i + *off)) {
        std::ostringstream os;
        os << "access " << e->name << '[' << ctx.indexVar;
        if (*off != 0) os << (*off > 0 ? "+" : "") << *off;
        os << "] reads index " << (i + *off) << " (at " << ctx.indexVar
           << " = " << i << ") outside " << e->name << "'s range "
           << arr.range->str();
        error(e->loc, os.str());
        return;
      }
    }
  }

  void checkAccess2d(const ExprPtr& e, const Type& arr, const IndexCtx& ctx) {
    if (!ctx.is2d()) {
      error(e->loc, "two-dimensional selection outside a 2-D forall");
      return;
    }
    auto c1 = indexOffset(e->a, ctx.indexVar);
    auto c2 = indexOffset(e->b, ctx.indexVar2);
    if (!c1 || !c2) {
      error(e->loc, "2-D array selection must have the form " + e->name +
                        "[" + ctx.indexVar + " + c1, " + ctx.indexVar2 +
                        " + c2] with manifest offsets");
      return;
    }
    if (!arr.range || !arr.range2) return;
    for (std::size_t k = 0; k < ctx.active.size(); ++k) {
      if (!ctx.active[k]) continue;
      const auto [i, j] = ctx.at(k);
      if (!arr.range->contains(i + *c1) || !arr.range2->contains(j + *c2)) {
        std::ostringstream os;
        os << "access " << e->name << "[" << ctx.indexVar;
        if (*c1) os << (*c1 > 0 ? "+" : "") << *c1;
        os << ", " << ctx.indexVar2;
        if (*c2) os << (*c2 > 0 ? "+" : "") << *c2;
        os << "] reads (" << (i + *c1) << ", " << (j + *c2) << ") at ("
           << i << ", " << j << ") outside " << e->name << "'s ranges "
           << arr.range->str() << arr.range2->str();
        error(e->loc, os.str());
        return;
      }
    }
  }

  void checkDef(const Def& d, std::vector<Scope>& scopes, const IndexCtx* ctx) {
    const Type t = checkExpr(d.value, scopes, ctx);
    Type bound = t;
    if (d.declaredType) {
      if (d.declaredType->isArray)
        error(d.loc, "let definitions must be scalar");
      else if (!assignable(t, *d.declaredType))
        error(d.loc, "definition of '" + d.name + "' has type " + t.str() +
                         ", declared " + d.declaredType->str());
      bound = *d.declaredType;
    }
    scopes.back()[d.name] = bound;
  }

  void checkBlock(Block& b) {
    if (!b.type.isArray) {
      error(b.loc, "block '" + b.name + "' must have an array type");
      b.type = Type::array(b.type.scalar);
    }
    if (b.isForall())
      checkForall(b, std::get<ForallBlock>(b.body));
    else
      checkForIter(b, std::get<ForIterBlock>(b.body));
  }

  void checkForall(Block& b, ForallBlock& fb) {
    const auto lo = constEvalInt(fb.lo, m_.consts);
    const auto hi = constEvalInt(fb.hi, m_.consts);
    VALPIPE_CHECK(lo && hi);  // parser folds these
    if (*lo > *hi) {
      error(fb.loc, "empty forall index range");
      return;  // a negative extent must not reach the active-set sweep
    }
    const Range range{*lo, *hi};
    if (range.length() > kMaxCheckedExtent) {
      error(fb.loc, "forall index range " + range.str() + " (" +
                        std::to_string(range.length()) +
                        " elements) exceeds the checkable limit of " +
                        std::to_string(kMaxCheckedExtent));
      return;
    }

    IndexCtx ctx;
    std::vector<Scope> scopes(1);
    scopes.back()[fb.indexVar] = Type::integer();
    if (fb.is2d()) {
      const auto lo2 = constEvalInt(fb.lo2, m_.consts);
      const auto hi2 = constEvalInt(fb.hi2, m_.consts);
      VALPIPE_CHECK(lo2 && hi2);
      if (*lo2 > *hi2) {
        error(fb.loc, "empty forall column range");
        return;
      }
      const Range col{*lo2, *hi2};
      if (col.length() > kMaxCheckedExtent ||
          range.length() > kMaxCheckedExtent / col.length()) {
        error(fb.loc, "2-D forall index space " + range.str() + " x " +
                          col.str() + " exceeds the checkable limit of " +
                          std::to_string(kMaxCheckedExtent) + " elements");
        return;
      }
      resolveRange(b, range, col);
      ctx = IndexCtx::full2(fb.indexVar, range, fb.indexVar2,
                            Range{*lo2, *hi2});
      scopes.back()[fb.indexVar2] = Type::integer();
    } else {
      resolveRange(b, range, std::nullopt);
      ctx = IndexCtx::full(fb.indexVar, range);
    }
    for (const Def& d : fb.defs) checkDef(d, scopes, &ctx);
    const Type accT = checkExpr(fb.accum, scopes, &ctx);
    if (!assignable(accT, b.type.element()))
      error(fb.accum->loc, "accumulation has type " + accT.str() +
                               ", expected " + b.type.element().str());
  }

  void checkForIter(Block& b, ForIterBlock& fi) {
    if (b.type.range2)
      error(b.loc, "for-iter blocks build one-dimensional arrays (recurrence "
                   "over a single index)");
    const auto p = constEvalInt(fi.indexInit, m_.consts);
    const auto r = constEvalInt(fi.accInitIndex, m_.consts);
    VALPIPE_CHECK(p && r);
    if (*p != *r + 1)
      error(fi.loc, "for-iter appends must start right after the initial "
                    "element (index init must be initial index + 1)");
    fi.lastIndex = resolveLoopLastIndex(fi, m_.consts);
    if (!fi.lastIndex) {
      error(fi.loc, "for-iter condition must be '" + fi.indexVar +
                        " < q' or '<= q' with manifest q");
      fi.lastIndex = *p;  // keep checking with a placeholder
    }
    std::int64_t q = *fi.lastIndex;
    if (q < *p) {
      error(fi.loc, "for-iter performs no iterations");
      q = *p;  // keep checking with a one-iteration placeholder
    }
    if (q - *p + 1 > kMaxCheckedExtent) {
      error(fi.loc, "for-iter sweep [" + std::to_string(*p) + ", " +
                        std::to_string(q) + "] (" +
                        std::to_string(q - *p + 1) +
                        " iterations) exceeds the checkable limit of " +
                        std::to_string(kMaxCheckedExtent));
      q = *p;
    }
    const Range range{*r, q};
    resolveRange(b, range);

    // The initial element: evaluated before the loop, no index variable.
    {
      std::vector<Scope> scopes(1);
      const Type t = checkExpr(fi.accInitValue, scopes, nullptr);
      if (!assignable(t, b.type.element()))
        error(fi.accInitValue->loc,
              "initial element has type " + t.str() + ", expected " +
                  b.type.element().str());
    }

    // Loop body: index sweeps [p, q]; the loop array is visible with the
    // range filled so far — element i-1 is always defined when computing
    // element i, so its full range is usable for checking T[i-1].
    IndexCtx ctx = IndexCtx::full(fi.indexVar, Range{*p, q});
    arrays_[fi.accVar] = Type::array(b.type.scalar, range);
    std::vector<Scope> scopes(1);
    scopes.back()[fi.indexVar] = Type::integer();
    for (const Def& d : fi.defs) checkDef(d, scopes, &ctx);
    const Type condT = checkExpr(fi.cond, scopes, &ctx);
    if (!(condT.isScalar() && condT.scalar == Scalar::Boolean))
      error(fi.cond->loc, "for-iter condition must be boolean");
    const Type appT = checkExpr(fi.appendValue, scopes, &ctx);
    if (!assignable(appT, b.type.element()))
      error(fi.appendValue->loc, "appended element has type " + appT.str() +
                                     ", expected " + b.type.element().str());
    arrays_.erase(fi.accVar);
  }

  void resolveRange(Block& b, const Range& range,
                    std::optional<Range> range2 = std::nullopt) {
    if (b.type.range) {  // ranges were declared: they must match the body
      if (*b.type.range != range)
        error(b.loc, "block '" + b.name + "' declares range " +
                         b.type.range->str() + " but its body produces " +
                         range.str());
      if (b.type.range2.has_value() != range2.has_value() ||
          (range2 && b.type.range2 && *b.type.range2 != *range2))
        error(b.loc, "block '" + b.name +
                         "' declared dimensionality/column range does not "
                         "match its body");
    }
    b.type.range = range;
    b.type.range2 = range2;
  }
};

}  // namespace

TypeInfo typecheck(Module& m, Diagnostics& diags) {
  Checker c(m, diags);
  return c.run();
}

TypeInfo typecheckOrThrow(Module& m) {
  Diagnostics diags;
  TypeInfo info = typecheck(m, diags);
  if (diags.hasErrors()) throw CompileError(diags.str());
  return info;
}

}  // namespace valpipe::val
