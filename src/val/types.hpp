// The Val subset's types: the scalars real / integer / boolean, and
// fixed-range one-dimensional arrays of scalars (the paper's pipe-structured
// definition requires manifest index ranges).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace valpipe::val {

enum class Scalar { Real, Integer, Boolean };

const char* toString(Scalar s);

/// Inclusive index range [lo, hi].
struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = -1;

  std::int64_t length() const { return hi - lo + 1; }
  bool contains(std::int64_t i) const { return lo <= i && i <= hi; }
  bool contains(const Range& r) const { return lo <= r.lo && r.hi <= hi; }
  friend bool operator==(const Range&, const Range&) = default;
  std::string str() const;
};

struct Type {
  Scalar scalar = Scalar::Real;
  bool isArray = false;
  /// For arrays: the manifest range, filled in by the type checker (param
  /// declarations carry it syntactically; block ranges are derived).
  std::optional<Range> range;
  /// Second dimension for two-dimensional arrays (§9's "extension to array
  /// values of multiple dimension").  Elements stream row-major: the first
  /// range is the slowly varying (row) index.
  std::optional<Range> range2;

  static Type real() { return {Scalar::Real, false, std::nullopt, std::nullopt}; }
  static Type integer() {
    return {Scalar::Integer, false, std::nullopt, std::nullopt};
  }
  static Type boolean() {
    return {Scalar::Boolean, false, std::nullopt, std::nullopt};
  }
  static Type array(Scalar elem, std::optional<Range> r = std::nullopt,
                    std::optional<Range> r2 = std::nullopt) {
    return {elem, true, r, r2};
  }

  bool isScalar() const { return !isArray; }
  bool is2d() const { return isArray && range2.has_value(); }
  Type element() const { return {scalar, false, std::nullopt, std::nullopt}; }
  /// Total packets one instance of this array occupies on a stream.
  std::int64_t streamLength() const {
    std::int64_t n = range ? range->length() : 0;
    if (range2) n *= range2->length();
    return n;
  }

  /// Type equality ignoring ranges (Val array types are range-agnostic;
  /// ranges are checked separately).
  bool sameAs(const Type& o) const {
    return scalar == o.scalar && isArray == o.isArray;
  }
  std::string str() const;
};

}  // namespace valpipe::val
