#include "val/ast.hpp"

#include <sstream>

namespace valpipe::val {

const char* toString(Scalar s) {
  switch (s) {
    case Scalar::Real: return "real";
    case Scalar::Integer: return "integer";
    case Scalar::Boolean: return "boolean";
  }
  return "?";
}

std::string Range::str() const {
  std::ostringstream os;
  os << '[' << lo << ", " << hi << ']';
  return os.str();
}

std::string Type::str() const {
  std::string s = isArray ? std::string("array[") + toString(scalar) + "]"
                          : std::string(toString(scalar));
  if (isArray && range) s += range->str();
  if (isArray && range2) s += range2->str();
  return s;
}

const char* toString(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "=";
    case BinOp::Ne: return "~=";
    case BinOp::And: return "&";
    case BinOp::Or: return "|";
  }
  return "?";
}

const char* toString(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "-";
    case UnOp::Not: return "~";
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> fresh(Expr::Kind k, SourceLoc loc) {
  auto e = std::make_shared<Expr>();
  e->kind = k;
  e->loc = loc;
  return e;
}
}  // namespace

ExprPtr Expr::mkInt(std::int64_t v, SourceLoc loc) {
  auto e = fresh(Kind::IntLit, loc);
  e->intValue = v;
  return e;
}

ExprPtr Expr::mkReal(double v, SourceLoc loc) {
  auto e = fresh(Kind::RealLit, loc);
  e->realValue = v;
  return e;
}

ExprPtr Expr::mkBool(bool v, SourceLoc loc) {
  auto e = fresh(Kind::BoolLit, loc);
  e->boolValue = v;
  return e;
}

ExprPtr Expr::mkIdent(std::string name, SourceLoc loc) {
  auto e = fresh(Kind::Ident, loc);
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::mkUnary(UnOp op, ExprPtr a, SourceLoc loc) {
  auto e = fresh(Kind::Unary, loc);
  e->uop = op;
  e->a = std::move(a);
  return e;
}

ExprPtr Expr::mkBinary(BinOp op, ExprPtr a, ExprPtr b, SourceLoc loc) {
  auto e = fresh(Kind::Binary, loc);
  e->bop = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprPtr Expr::mkIf(ExprPtr cond, ExprPtr thenE, ExprPtr elseE, SourceLoc loc) {
  auto e = fresh(Kind::If, loc);
  e->a = std::move(cond);
  e->b = std::move(thenE);
  e->c = std::move(elseE);
  return e;
}

ExprPtr Expr::mkLet(std::vector<Def> defs, ExprPtr body, SourceLoc loc) {
  auto e = fresh(Kind::Let, loc);
  e->defs = std::move(defs);
  e->body = std::move(body);
  return e;
}

ExprPtr Expr::mkIndex(std::string array, ExprPtr index, SourceLoc loc) {
  auto e = fresh(Kind::ArrayIndex, loc);
  e->name = std::move(array);
  e->a = std::move(index);
  return e;
}

ExprPtr Expr::mkIndex2(std::string array, ExprPtr row, ExprPtr col,
                       SourceLoc loc) {
  auto e = fresh(Kind::ArrayIndex, loc);
  e->name = std::move(array);
  e->a = std::move(row);
  e->b = std::move(col);
  return e;
}

const Block* Module::findBlock(const std::string& name) const {
  for (const Block& b : blocks)
    if (b.name == name) return &b;
  return nullptr;
}

const Param* Module::findParam(const std::string& name) const {
  for (const Param& p : params)
    if (p.name == name) return &p;
  return nullptr;
}

}  // namespace valpipe::val
