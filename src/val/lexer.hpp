// Lexer for the Val subset.  `%` starts a comment running to end of line,
// matching the paper's listings.
#pragma once

#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"
#include "val/token.hpp"

namespace valpipe::val {

/// Tokenizes `source`; lexical problems are reported into `diags` and the
/// offending characters skipped.  Always ends with an EndOfFile token.
std::vector<Token> lex(std::string_view source, Diagnostics& diags);

}  // namespace valpipe::val
