// Type checker for pipe-structured modules.
//
// Beyond ordinary scalar typing (integer/real promotion, boolean operators,
// matching conditional arms) it resolves every block's manifest index range,
// checks that blocks reference only parameters and earlier blocks (the
// applicative order that makes the flow dependency graph acyclic, §4), and
// verifies that every array element access stays inside the producer's
// declared range for the whole index sweep.
#pragma once

#include <map>

#include "support/diagnostics.hpp"
#include "val/ast.hpp"

namespace valpipe::val {

struct TypeInfo {
  /// Type of every checked expression node.
  std::map<const Expr*, Type> exprTypes;

  Type typeOf(const ExprPtr& e) const { return exprTypes.at(e.get()); }
};

/// Checks `m`, resolving block ranges and for-iter trip counts in place.
/// Reports problems into `diags`; the returned info is complete only when
/// diags has no errors.
TypeInfo typecheck(Module& m, Diagnostics& diags);

/// Convenience: parse-free entry that throws CompileError on any error.
TypeInfo typecheckOrThrow(Module& m);

}  // namespace valpipe::val
