// Linearity analysis of first-order recurrences (§7).
//
// Given the body of a primitive for-iter block — which computes the appended
// element from a_i (streams/index/constants) and the previous element
// T[i-1] — decompose it symbolically as
//
//     x_i  =  alpha_i * x_{i-1} + beta_i
//
// where alpha and beta are expressions free of the loop array.  This is the
// form whose recurrence function F((alpha,beta), x) = alpha*x + beta has the
// companion function G(a, b) = (a(1)*b(1), a(1)*b(2) + a(2)) the paper's
// companion-pipeline construction (Fig. 8) needs.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "val/ast.hpp"

namespace valpipe::val {

struct LinearForm {
  ExprPtr alpha;  ///< coefficient of T[i-1]
  ExprPtr beta;   ///< additive part
};

/// The expression a for-iter body appends each cycle, with its let
/// definitions wrapped back around it (so analysis sees P's definition in
/// Example 2).
ExprPtr bodyExpression(const ForIterBlock& fi);

/// Decomposes `e` (the appended element) into alpha * accVar[i-1] + beta.
/// Let-bound names are inlined; constant-folds trivial coefficients (0, 1).
/// nullopt when `e` is not linear in the previous element (e.g. it multiplies
/// two T[i-1]-dependent factors) — the paper's class with no known companion.
std::optional<LinearForm> decomposeLinear(
    const ExprPtr& e, const std::string& accVar, const std::string& idxVar,
    const std::map<std::string, std::int64_t>& consts);

}  // namespace valpipe::val
