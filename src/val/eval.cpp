#include "val/eval.hpp"

#include "support/check.hpp"
#include "support/diagnostics.hpp"
#include "val/constfold.hpp"

namespace valpipe::val {

const Value& ArrayVal::at(std::int64_t i) const {
  if (is2d()) throw ValueError("1-D selection on a 2-D array");
  if (i < lo || i > hi())
    throw ValueError("array index " + std::to_string(i) + " outside [" +
                     std::to_string(lo) + ", " + std::to_string(hi()) + "]");
  return elems[static_cast<std::size_t>(i - lo)];
}

const Value& ArrayVal::at2(std::int64_t i, std::int64_t j) const {
  if (!is2d()) throw ValueError("2-D selection on a 1-D array");
  if (i < lo || i > hi() || j < lo2 || j > hi2())
    throw ValueError("array index (" + std::to_string(i) + ", " +
                     std::to_string(j) + ") out of range");
  return elems[static_cast<std::size_t>((i - lo) * width + (j - lo2))];
}

namespace {

struct Evaluator {
  const Module& m;
  ArrayMap arrays;  ///< params + computed blocks (+ loop array while inside)

  Value expr(const ExprPtr& e, std::map<std::string, Value>& scalars) {
    switch (e->kind) {
      case Expr::Kind::IntLit: return Value(e->intValue);
      case Expr::Kind::RealLit: return Value(e->realValue);
      case Expr::Kind::BoolLit: return Value(e->boolValue);
      case Expr::Kind::Ident: {
        auto it = scalars.find(e->name);
        if (it != scalars.end()) return it->second;
        auto c = m.consts.find(e->name);
        if (c != m.consts.end()) return Value(c->second);
        throw CompileError("undefined scalar '" + e->name + "' at " +
                           e->loc.str());
      }
      case Expr::Kind::Unary: {
        const Value a = expr(e->a, scalars);
        return e->uop == UnOp::Neg ? ops::neg(a) : ops::logicalNot(a);
      }
      case Expr::Kind::Binary: {
        const Value a = expr(e->a, scalars);
        const Value b = expr(e->b, scalars);
        switch (e->bop) {
          case BinOp::Add: return ops::add(a, b);
          case BinOp::Sub: return ops::sub(a, b);
          case BinOp::Mul: return ops::mul(a, b);
          case BinOp::Div: return ops::div(a, b);
          case BinOp::Lt: return ops::lt(a, b);
          case BinOp::Le: return ops::le(a, b);
          case BinOp::Gt: return ops::gt(a, b);
          case BinOp::Ge: return ops::ge(a, b);
          case BinOp::Eq: return ops::eq(a, b);
          case BinOp::Ne: return ops::ne(a, b);
          case BinOp::And: return ops::logicalAnd(a, b);
          case BinOp::Or: return ops::logicalOr(a, b);
        }
        VALPIPE_UNREACHABLE("binop");
      }
      case Expr::Kind::If:
        return expr(e->a, scalars).asBoolean() ? expr(e->b, scalars)
                                               : expr(e->c, scalars);
      case Expr::Kind::Let: {
        std::map<std::string, Value> inner = scalars;
        for (const Def& d : e->defs) inner[d.name] = expr(d.value, inner);
        return expr(e->body, inner);
      }
      case Expr::Kind::ArrayIndex: {
        auto it = arrays.find(e->name);
        if (it == arrays.end())
          throw CompileError("undefined array '" + e->name + "' at " +
                             e->loc.str());
        const Value idx = expr(e->a, scalars);
        if (e->isIndex2()) {
          const Value idx2 = expr(e->b, scalars);
          return it->second.at2(idx.asInteger(), idx2.asInteger());
        }
        return it->second.at(idx.asInteger());
      }
    }
    VALPIPE_UNREACHABLE("expr kind");
  }

  ArrayVal forall(const ForallBlock& fb) {
    const auto lo = constEvalInt(fb.lo, m.consts);
    const auto hi = constEvalInt(fb.hi, m.consts);
    VALPIPE_CHECK(lo && hi);
    ArrayVal out;
    out.lo = *lo;
    if (fb.is2d()) {
      const auto lo2 = constEvalInt(fb.lo2, m.consts);
      const auto hi2 = constEvalInt(fb.hi2, m.consts);
      VALPIPE_CHECK(lo2 && hi2);
      out.lo2 = *lo2;
      out.width = *hi2 - *lo2 + 1;
      for (std::int64_t i = *lo; i <= *hi; ++i)
        for (std::int64_t j = *lo2; j <= *hi2; ++j) {
          std::map<std::string, Value> scalars{{fb.indexVar, Value(i)},
                                               {fb.indexVar2, Value(j)}};
          for (const Def& d : fb.defs) scalars[d.name] = expr(d.value, scalars);
          out.elems.push_back(expr(fb.accum, scalars));
        }
      return out;
    }
    out.elems.reserve(static_cast<std::size_t>(*hi - *lo + 1));
    for (std::int64_t i = *lo; i <= *hi; ++i) {
      std::map<std::string, Value> scalars{{fb.indexVar, Value(i)}};
      for (const Def& d : fb.defs) scalars[d.name] = expr(d.value, scalars);
      out.elems.push_back(expr(fb.accum, scalars));
    }
    return out;
  }

  ArrayVal forIter(const ForIterBlock& fi) {
    const auto p = constEvalInt(fi.indexInit, m.consts);
    const auto r = constEvalInt(fi.accInitIndex, m.consts);
    VALPIPE_CHECK(p && r && fi.lastIndex);
    ArrayVal acc;
    acc.lo = *r;
    {
      std::map<std::string, Value> scalars;
      acc.elems.push_back(expr(fi.accInitValue, scalars));
    }
    for (std::int64_t i = *p; i <= *fi.lastIndex; ++i) {
      arrays[fi.accVar] = acc;  // snapshot visible as T
      std::map<std::string, Value> scalars{{fi.indexVar, Value(i)}};
      for (const Def& d : fi.defs) scalars[d.name] = expr(d.value, scalars);
      VALPIPE_CHECK_MSG(expr(fi.cond, scalars).asBoolean(),
                        "loop condition disagrees with resolved bound");
      acc.elems.push_back(expr(fi.appendValue, scalars));
    }
    arrays.erase(fi.accVar);
    return acc;
  }
};

}  // namespace

Value evalExpr(const ExprPtr& e, const std::map<std::string, Value>& scalars,
               const ArrayMap& arrays) {
  Module empty;
  Evaluator ev{empty, arrays};
  std::map<std::string, Value> s = scalars;
  return ev.expr(e, s);
}

EvalResult evaluate(const Module& m, const ArrayMap& params) {
  Evaluator ev{m, {}};
  for (const Param& p : m.params) {
    if (!p.type.isArray) continue;
    auto it = params.find(p.name);
    if (it == params.end())
      throw CompileError("missing input array '" + p.name + "'");
    VALPIPE_CHECK(p.type.range.has_value());
    if (p.type.is2d() != it->second.is2d() ||
        (p.type.is2d() &&
         (it->second.lo2 != p.type.range2->lo ||
          it->second.width != p.type.range2->length())))
      throw CompileError("input array '" + p.name +
                         "' does not match its declared dimensionality");
    if (it->second.lo != p.type.range->lo ||
        static_cast<std::int64_t>(it->second.elems.size()) !=
            p.type.streamLength())
      throw CompileError("input array '" + p.name +
                         "' does not match its declared range " +
                         p.type.range->str());
    ev.arrays[p.name] = it->second;
  }

  EvalResult res;
  for (const Block& b : m.blocks) {
    ArrayVal arr = b.isForall() ? ev.forall(b.forall()) : ev.forIter(b.forIter());
    ev.arrays[b.name] = arr;
    res.blocks[b.name] = std::move(arr);
  }
  res.result = res.blocks.at(m.resultName);
  return res;
}

}  // namespace valpipe::val
