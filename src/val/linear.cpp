#include "val/linear.hpp"

#include "support/check.hpp"

namespace valpipe::val {

namespace {

bool isIntLit(const ExprPtr& e, std::int64_t v) {
  return e->kind == Expr::Kind::IntLit && e->intValue == v;
}
bool isZero(const ExprPtr& e) {
  return isIntLit(e, 0) ||
         (e->kind == Expr::Kind::RealLit && e->realValue == 0.0);
}
bool isOne(const ExprPtr& e) {
  return isIntLit(e, 1) ||
         (e->kind == Expr::Kind::RealLit && e->realValue == 1.0);
}

ExprPtr zero() { return Expr::mkInt(0); }
ExprPtr one() { return Expr::mkInt(1); }

ExprPtr mkAdd(const ExprPtr& a, const ExprPtr& b) {
  if (isZero(a)) return b;
  if (isZero(b)) return a;
  return Expr::mkBinary(BinOp::Add, a, b);
}
ExprPtr mkSub(const ExprPtr& a, const ExprPtr& b) {
  if (isZero(b)) return a;
  if (isZero(a)) return Expr::mkUnary(UnOp::Neg, b);
  return Expr::mkBinary(BinOp::Sub, a, b);
}
ExprPtr mkMul(const ExprPtr& a, const ExprPtr& b) {
  if (isZero(a) || isZero(b)) return zero();
  if (isOne(a)) return b;
  if (isOne(b)) return a;
  return Expr::mkBinary(BinOp::Mul, a, b);
}
ExprPtr mkDiv(const ExprPtr& a, const ExprPtr& b) {
  if (isZero(a)) return zero();
  if (isOne(b)) return a;
  return Expr::mkBinary(BinOp::Div, a, b);
}
ExprPtr mkNeg(const ExprPtr& a) {
  if (isZero(a)) return a;
  return Expr::mkUnary(UnOp::Neg, a);
}

using Env = std::map<std::string, LinearForm>;

/// `e` does not depend on accVar[i-1], directly or through let bindings in
/// `env` (a binding is dependent when its alpha is non-zero).
bool freeOfAcc(const ExprPtr& e, const std::string& accVar, const Env& env) {
  if (!e) return true;
  if (e->kind == Expr::Kind::ArrayIndex && e->name == accVar) return false;
  if (e->kind == Expr::Kind::Ident) {
    auto it = env.find(e->name);
    if (it != env.end() && !isZero(it->second.alpha)) return false;
    return true;
  }
  for (const ExprPtr& sub : {e->a, e->b, e->c, e->body})
    if (!freeOfAcc(sub, accVar, env)) return false;
  for (const Def& d : e->defs)
    if (!freeOfAcc(d.value, accVar, env)) return false;
  return true;
}

/// Inlines let-bound names so the produced alpha/beta are self-contained.
ExprPtr inlineEnv(const ExprPtr& e, const Env& env) {
  if (!e) return e;
  switch (e->kind) {
    case Expr::Kind::Ident: {
      auto it = env.find(e->name);
      if (it == env.end()) return e;
      VALPIPE_CHECK_MSG(isZero(it->second.alpha),
                        "inlining a T-dependent binding as X-free");
      return it->second.beta;
    }
    case Expr::Kind::IntLit:
    case Expr::Kind::RealLit:
    case Expr::Kind::BoolLit:
      return e;
    case Expr::Kind::Unary:
      return Expr::mkUnary(e->uop, inlineEnv(e->a, env), e->loc);
    case Expr::Kind::Binary:
      return Expr::mkBinary(e->bop, inlineEnv(e->a, env), inlineEnv(e->b, env),
                            e->loc);
    case Expr::Kind::If:
      return Expr::mkIf(inlineEnv(e->a, env), inlineEnv(e->b, env),
                        inlineEnv(e->c, env), e->loc);
    case Expr::Kind::ArrayIndex:
      return Expr::mkIndex(e->name, inlineEnv(e->a, env), e->loc);
    case Expr::Kind::Let: {
      Env inner = env;
      for (const Def& d : e->defs)
        inner[d.name] = {zero(), inlineEnv(d.value, inner)};
      return inlineEnv(e->body, inner);
    }
  }
  return e;
}

std::optional<LinearForm> decompose(const ExprPtr& e, const std::string& accVar,
                                    const std::string& idxVar, const Env& env);

std::optional<LinearForm> decomposeBinary(const ExprPtr& e,
                                          const std::string& accVar,
                                          const std::string& idxVar,
                                          const Env& env) {
  switch (e->bop) {
    case BinOp::Add: {
      auto a = decompose(e->a, accVar, idxVar, env);
      auto b = decompose(e->b, accVar, idxVar, env);
      if (!a || !b) return std::nullopt;
      return LinearForm{mkAdd(a->alpha, b->alpha), mkAdd(a->beta, b->beta)};
    }
    case BinOp::Sub: {
      auto a = decompose(e->a, accVar, idxVar, env);
      auto b = decompose(e->b, accVar, idxVar, env);
      if (!a || !b) return std::nullopt;
      return LinearForm{mkSub(a->alpha, b->alpha), mkSub(a->beta, b->beta)};
    }
    case BinOp::Mul: {
      if (freeOfAcc(e->a, accVar, env)) {
        auto b = decompose(e->b, accVar, idxVar, env);
        if (!b) return std::nullopt;
        const ExprPtr k = inlineEnv(e->a, env);
        return LinearForm{mkMul(k, b->alpha), mkMul(k, b->beta)};
      }
      if (freeOfAcc(e->b, accVar, env)) {
        auto a = decompose(e->a, accVar, idxVar, env);
        if (!a) return std::nullopt;
        const ExprPtr k = inlineEnv(e->b, env);
        return LinearForm{mkMul(a->alpha, k), mkMul(a->beta, k)};
      }
      return std::nullopt;  // product of two dependent factors: non-linear
    }
    case BinOp::Div: {
      if (!freeOfAcc(e->b, accVar, env)) return std::nullopt;
      auto a = decompose(e->a, accVar, idxVar, env);
      if (!a) return std::nullopt;
      const ExprPtr k = inlineEnv(e->b, env);
      return LinearForm{mkDiv(a->alpha, k), mkDiv(a->beta, k)};
    }
    default:
      // Relational / boolean results cannot be linear in a real recurrence
      // unless they are independent of it (handled by the X-free fast path).
      return std::nullopt;
  }
}

std::optional<LinearForm> decompose(const ExprPtr& e, const std::string& accVar,
                                    const std::string& idxVar, const Env& env) {
  // Fast path: anything free of the previous element is pure beta.
  if (freeOfAcc(e, accVar, env)) return LinearForm{zero(), inlineEnv(e, env)};

  switch (e->kind) {
    case Expr::Kind::ArrayIndex:
      if (e->name == accVar) return LinearForm{one(), zero()};
      return std::nullopt;  // dependent index inside another array: not PE
    case Expr::Kind::Ident: {
      auto it = env.find(e->name);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case Expr::Kind::Unary:
      if (e->uop == UnOp::Neg) {
        auto a = decompose(e->a, accVar, idxVar, env);
        if (!a) return std::nullopt;
        return LinearForm{mkNeg(a->alpha), mkNeg(a->beta)};
      }
      return std::nullopt;
    case Expr::Kind::Binary:
      return decomposeBinary(e, accVar, idxVar, env);
    case Expr::Kind::If: {
      if (!freeOfAcc(e->a, accVar, env)) return std::nullopt;
      auto t = decompose(e->b, accVar, idxVar, env);
      auto f = decompose(e->c, accVar, idxVar, env);
      if (!t || !f) return std::nullopt;
      const ExprPtr cond = inlineEnv(e->a, env);
      return LinearForm{Expr::mkIf(cond, t->alpha, f->alpha),
                        Expr::mkIf(cond, t->beta, f->beta)};
    }
    case Expr::Kind::Let: {
      Env inner = env;
      for (const Def& d : e->defs) {
        auto v = decompose(d.value, accVar, idxVar, inner);
        if (!v) return std::nullopt;
        inner[d.name] = *v;
      }
      return decompose(e->body, accVar, idxVar, inner);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

ExprPtr bodyExpression(const ForIterBlock& fi) {
  if (fi.defs.empty()) return fi.appendValue;
  return Expr::mkLet(fi.defs, fi.appendValue, fi.loc);
}

std::optional<LinearForm> decomposeLinear(
    const ExprPtr& e, const std::string& accVar, const std::string& idxVar,
    const std::map<std::string, std::int64_t>&) {
  return decompose(e, accVar, idxVar, {});
}

}  // namespace valpipe::val
