#include "val/pretty.hpp"

#include <sstream>

namespace valpipe::val {

namespace {

void printExpr(std::ostream& os, const ExprPtr& e) {
  if (!e) {
    os << "<null>";
    return;
  }
  switch (e->kind) {
    case Expr::Kind::IntLit: os << e->intValue; return;
    case Expr::Kind::RealLit: os << e->realValue; return;
    case Expr::Kind::BoolLit: os << (e->boolValue ? "true" : "false"); return;
    case Expr::Kind::Ident: os << e->name; return;
    case Expr::Kind::Unary:
      os << toString(e->uop);
      printExpr(os, e->a);
      return;
    case Expr::Kind::Binary:
      os << '(';
      printExpr(os, e->a);
      os << ' ' << toString(e->bop) << ' ';
      printExpr(os, e->b);
      os << ')';
      return;
    case Expr::Kind::If:
      os << "if ";
      printExpr(os, e->a);
      os << " then ";
      printExpr(os, e->b);
      os << " else ";
      printExpr(os, e->c);
      os << " endif";
      return;
    case Expr::Kind::Let:
      os << "let ";
      for (std::size_t i = 0; i < e->defs.size(); ++i) {
        if (i) os << "; ";
        os << e->defs[i].name << " := ";
        printExpr(os, e->defs[i].value);
      }
      os << " in ";
      printExpr(os, e->body);
      os << " endlet";
      return;
    case Expr::Kind::ArrayIndex:
      os << e->name << '[';
      printExpr(os, e->a);
      if (e->isIndex2()) {
        os << ", ";
        printExpr(os, e->b);
      }
      os << ']';
      return;
  }
}

}  // namespace

std::string toString(const ExprPtr& e) {
  std::ostringstream os;
  printExpr(os, e);
  return os.str();
}

std::string toString(const Block& b) {
  std::ostringstream os;
  os << b.name << " : " << b.type.str() << " := ";
  if (b.isForall()) {
    const ForallBlock& fb = b.forall();
    os << "forall " << fb.indexVar << " in [" << toString(fb.lo) << ", "
       << toString(fb.hi) << "]";
    if (fb.is2d())
      os << ", " << fb.indexVar2 << " in [" << toString(fb.lo2) << ", "
         << toString(fb.hi2) << "]";
    os << ' ';
    for (const Def& d : fb.defs)
      os << d.name << " := " << toString(d.value) << "; ";
    os << "construct " << toString(fb.accum) << " endall";
  } else {
    const ForIterBlock& fi = b.forIter();
    os << "for " << fi.indexVar << " : integer := " << toString(fi.indexInit)
       << "; " << fi.accVar << " : array[" << ::valpipe::val::toString(
           b.type.scalar) << "] := [" << toString(fi.accInitIndex) << ": "
       << toString(fi.accInitValue) << "] do ";
    if (!fi.defs.empty()) {
      os << "let ";
      for (const Def& d : fi.defs)
        os << d.name << " := " << toString(d.value) << "; ";
      os << "in ";
    }
    os << "if " << toString(fi.cond) << " then iter " << fi.accVar << " := "
       << fi.accVar << "[" << fi.indexVar << ": " << toString(fi.appendValue)
       << "]; " << fi.indexVar << " := " << fi.indexVar
       << " + 1 enditer else " << fi.accVar << " endif";
    if (!fi.defs.empty()) os << " endlet";
    os << " endfor";
  }
  return os.str();
}

std::string toString(const Module& m) {
  std::ostringstream os;
  for (const auto& [name, v] : m.consts) os << "const " << name << " = " << v << '\n';
  os << "function " << m.functionName << "(";
  for (std::size_t i = 0; i < m.params.size(); ++i) {
    if (i) os << "; ";
    os << m.params[i].name << ": " << m.params[i].type.str();
  }
  os << " returns " << m.returnType.str() << ")\n";
  os << "let\n";
  for (const Block& b : m.blocks) os << "  " << toString(b) << '\n';
  os << "in " << m.resultName << " endlet\nendfun\n";
  return os.str();
}

}  // namespace valpipe::val
