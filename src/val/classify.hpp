// The paper's program-class predicates (§5–§7):
//
//   - primitive expression on an index variable (rules 1–6 of §5),
//   - scalar primitive expression (no rule 4, i.e. no array access),
//   - primitive forall expression (§6),
//   - primitive for-iter construct (§7 Definition),
//   - simple for-iter expression (§7: the recurrence is linear, so a
//     companion function exists and is itself a primitive expression),
//   - pipe-structured program (§4 Definition).
//
// Each predicate returns the first violated restriction, so the compiler can
// tell a user exactly why a program falls outside the fully-pipelinable
// class.
#pragma once

#include <map>
#include <set>
#include <string>

#include "val/ast.hpp"

namespace valpipe::val {

struct ClassifyResult {
  bool ok = true;
  std::string reason;

  static ClassifyResult yes() { return {}; }
  static ClassifyResult no(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

/// Rules 1–6 of §5.  `idxVar` is the index variable (empty for rule-4-free
/// contexts); `arrays` are the names usable in rule 4.  `idxVar2` is the
/// column index variable of a 2-D forall (§9 extension); 2-D selections
/// A[i+c1, j+c2] are the rule-4 form there.
ClassifyResult isPrimitiveExpr(const ExprPtr& e, const std::string& idxVar,
                               const std::set<std::string>& arrays,
                               const std::map<std::string, std::int64_t>& consts,
                               const std::string& idxVar2 = {});

/// Rules 1,2,3,5,6 only (no array access).
ClassifyResult isScalarPrimitiveExpr(
    const ExprPtr& e, const std::map<std::string, std::int64_t>& consts);

/// §6: manifest range and all definition/accumulation parts primitive on i.
ClassifyResult isPrimitiveForall(const Block& b, const Module& m);

/// §7 Definition: canonical loop shape (enforced at parse time), body parts
/// primitive on i, and the loop array referenced only as T[i-1].
ClassifyResult isPrimitiveForIter(const Block& b, const Module& m);

/// §7: primitive for-iter whose recurrence x_i = F(a_i, x_{i-1}) is linear,
/// x_i = alpha_i * x_{i-1} + beta_i, with alpha/beta primitive on i — the
/// class Theorem 3 fully pipelines via the companion function.
ClassifyResult isSimpleForIter(const Block& b, const Module& m);

/// §4 Definition plus the Theorem 4 premise: every forall primitive, every
/// for-iter primitive (and notes which are simple).
ClassifyResult isPipeStructured(const Module& m);

/// Names visible as arrays to block `b` (parameters + earlier blocks).
std::set<std::string> visibleArrays(const Module& m, const Block& b);

/// Manifest offset c of an array-access index of the form `idxVar + c`
/// (rule 4); nullopt for any other shape.
std::optional<std::int64_t> arrayIndexOffset(
    const ExprPtr& idx, const std::string& idxVar,
    const std::map<std::string, std::int64_t>& consts);

}  // namespace valpipe::val
