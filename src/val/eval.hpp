// Reference (tree-walking) evaluator for pipe-structured modules — the
// functional ground truth every compiled instruction graph is validated
// against.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/value.hpp"
#include "val/ast.hpp"

namespace valpipe::val {

/// An array value with its manifest lower bound(s).  Two-dimensional arrays
/// store row-major with `width` columns starting at column index `lo2`.
struct ArrayVal {
  std::int64_t lo = 0;
  std::vector<Value> elems;
  std::int64_t lo2 = 0;
  std::int64_t width = 0;  ///< 0 = one-dimensional

  bool is2d() const { return width > 0; }
  std::int64_t hi() const {
    const std::int64_t rows =
        is2d() ? static_cast<std::int64_t>(elems.size()) / width
               : static_cast<std::int64_t>(elems.size());
    return lo + rows - 1;
  }
  std::int64_t hi2() const { return lo2 + width - 1; }
  const Value& at(std::int64_t i) const;
  const Value& at2(std::int64_t i, std::int64_t j) const;
};

using ArrayMap = std::map<std::string, ArrayVal>;

struct EvalResult {
  ArrayMap blocks;  ///< every block's array, by name
  ArrayVal result;  ///< the module's result array
};

/// Evaluates `m` (must be type-checked) on the given parameter arrays.
/// Throws CompileError / ValueError on missing inputs or runtime faults.
EvalResult evaluate(const Module& m, const ArrayMap& params);

/// Evaluates a scalar expression in the given environments (exposed for unit
/// tests of the evaluator itself).
Value evalExpr(const ExprPtr& e, const std::map<std::string, Value>& scalars,
               const ArrayMap& arrays);

}  // namespace valpipe::val
