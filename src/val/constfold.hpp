// Manifest-constant evaluation over expressions (integer literals, declared
// constants, + - * and unary minus) — the paper's "fixed index ranges"
// requirement makes these foldable everywhere ranges appear.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/value.hpp"
#include "val/ast.hpp"

namespace valpipe::val {

/// Integer value of `e` if it is a manifest expression over `consts`.
std::optional<std::int64_t> constEvalInt(
    const ExprPtr& e, const std::map<std::string, std::int64_t>& consts);

/// Resolves a for-iter continuation condition of the form `i < q` / `i <= q`
/// (manifest q) to the last index value for which an append happens.
std::optional<std::int64_t> resolveLoopLastIndex(
    const ForIterBlock& fi, const std::map<std::string, std::int64_t>& consts);

/// Evaluates `e` at index value `i` when its free variables are only `idxVar`
/// and manifest constants (an "index-only" expression — the ones the compiler
/// folds into boolean control sequences, Fig. 6).  nullopt when `e` refers to
/// anything else or the evaluation faults.
std::optional<Value> evalIndexOnlyAt(
    const ExprPtr& e, const std::string& idxVar, std::int64_t i,
    const std::map<std::string, std::int64_t>& consts);

/// evalIndexOnlyAt over every index in `range`; nullopt if any point fails.
std::optional<std::vector<Value>> evalOverIndex(
    const ExprPtr& e, const std::string& idxVar, Range range,
    const std::map<std::string, std::int64_t>& consts);

/// Two-dimensional variant: evaluates `e` (free variables only `v1`, `v2`
/// and constants) at every (i, j) pair, row-major (i slow).
std::optional<Value> evalIndexOnlyAt2(
    const ExprPtr& e, const std::string& v1, std::int64_t i,
    const std::string& v2, std::int64_t j,
    const std::map<std::string, std::int64_t>& consts);

std::optional<std::vector<Value>> evalOverIndex2(
    const ExprPtr& e, const std::string& v1, Range r1, const std::string& v2,
    Range r2, const std::map<std::string, std::int64_t>& consts);

}  // namespace valpipe::val
