#include "val/parser.hpp"

#include <optional>

#include "support/check.hpp"
#include "val/lexer.hpp"

namespace valpipe::val {

namespace {

/// Parse failure that aborts the current production; reported already.
struct ParseAbort {};

class Parser {
 public:
  Parser(std::string_view source, Diagnostics& diags)
      : diags_(diags), tokens_(lex(source, diags)) {}

  Module module() {
    Module m;
    m.loc = peek().loc;
    try {
      while (at(Tok::KwConst)) constDecl(m);
      function(m);
      expect(Tok::EndOfFile);
    } catch (const ParseAbort&) {
      // diagnostics already carry the reason
    }
    return m;
  }

  ExprPtr standaloneExpr() {
    try {
      ExprPtr e = expr();
      expect(Tok::EndOfFile);
      return e;
    } catch (const ParseAbort&) {
      return nullptr;
    }
  }

 private:
  Diagnostics& diags_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;

  const Token& peek(std::size_t k = 0) const {
    const std::size_t i = std::min(pos_ + k, tokens_.size() - 1);
    return tokens_[i];
  }
  bool at(Tok k) const { return peek().kind == k; }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    advance();
    return true;
  }
  [[noreturn]] void fail(const std::string& msg) {
    diags_.error(peek().loc, msg);
    throw ParseAbort{};
  }
  const Token& expect(Tok k) {
    if (!at(k))
      fail(std::string("expected ") + toString(k) + ", found " +
           toString(peek().kind));
    return advance();
  }
  std::string ident() { return expect(Tok::Ident).text; }

  // --- manifest constant declarations ---

  void constDecl(Module& m) {
    expect(Tok::KwConst);
    const Token& name = expect(Tok::Ident);
    expect(Tok::Eq);
    const std::int64_t v = constExpr(m);
    accept(Tok::Semicolon);
    if (m.consts.count(name.text))
      diags_.error(name.loc, "duplicate constant '" + name.text + "'");
    m.consts[name.text] = v;
  }

  /// Manifest integer expression: literals, previously declared constants,
  /// + - * and parentheses, folded at parse time.
  std::int64_t constExpr(const Module& m) { return constAdd(m); }

  std::int64_t constAdd(const Module& m) {
    std::int64_t v = constMul(m);
    while (at(Tok::Plus) || at(Tok::Minus)) {
      const bool plus = advance().kind == Tok::Plus;
      const std::int64_t r = constMul(m);
      v = plus ? v + r : v - r;
    }
    return v;
  }

  std::int64_t constMul(const Module& m) {
    std::int64_t v = constPrimary(m);
    while (at(Tok::Star)) {
      advance();
      v *= constPrimary(m);
    }
    return v;
  }

  std::int64_t constPrimary(const Module& m) {
    if (at(Tok::Minus)) {
      advance();
      return -constPrimary(m);
    }
    if (at(Tok::IntLit)) return advance().intValue;
    if (at(Tok::LParen)) {
      advance();
      const std::int64_t v = constAdd(m);
      expect(Tok::RParen);
      return v;
    }
    if (at(Tok::Ident)) {
      const Token& t = advance();
      auto it = m.consts.find(t.text);
      if (it == m.consts.end()) {
        diags_.error(t.loc, "'" + t.text + "' is not a manifest constant");
        throw ParseAbort{};
      }
      return it->second;
    }
    fail("expected manifest integer expression");
  }

  // --- types ---

  Scalar scalarType() {
    if (accept(Tok::KwReal)) return Scalar::Real;
    if (accept(Tok::KwInteger)) return Scalar::Integer;
    if (accept(Tok::KwBoolean)) return Scalar::Boolean;
    fail("expected scalar type");
  }

  Type type(const Module& m) {
    if (at(Tok::KwArray)) {
      advance();
      expect(Tok::LBracket);
      const Scalar elem = scalarType();
      expect(Tok::RBracket);
      std::optional<Range> range, range2;
      if (at(Tok::LBracket)) {
        advance();
        const std::int64_t lo = constExpr(m);
        expect(Tok::Comma);
        const std::int64_t hi = constExpr(m);
        expect(Tok::RBracket);
        range = Range{lo, hi};
        if (at(Tok::LBracket)) {  // second dimension (2-D arrays)
          advance();
          const std::int64_t lo2 = constExpr(m);
          expect(Tok::Comma);
          const std::int64_t hi2 = constExpr(m);
          expect(Tok::RBracket);
          range2 = Range{lo2, hi2};
        }
      }
      return Type::array(elem, range, range2);
    }
    return {scalarType(), false, std::nullopt, std::nullopt};
  }

  // --- function / blocks ---

  void function(Module& m) {
    expect(Tok::KwFunction);
    m.functionName = ident();
    expect(Tok::LParen);
    do {
      std::vector<Token> names;
      names.push_back(expect(Tok::Ident));
      while (accept(Tok::Comma)) names.push_back(expect(Tok::Ident));
      expect(Tok::Colon);
      const Type t = type(m);
      for (const Token& n : names) m.params.push_back({n.text, t, n.loc});
    } while (accept(Tok::Semicolon) && !at(Tok::KwReturns));
    expect(Tok::KwReturns);
    m.returnType = type(m);
    expect(Tok::RParen);

    if (at(Tok::KwLet)) {
      advance();
      while (!at(Tok::KwIn)) {
        m.blocks.push_back(blockDef(m));
        accept(Tok::Semicolon);
      }
      expect(Tok::KwIn);
      m.resultName = ident();
      expect(Tok::KwEndlet);
    } else {
      // Single anonymous block named "result".
      Block b;
      b.name = "result";
      b.type = m.returnType;
      b.loc = peek().loc;
      b.body = blockExpr(m);
      m.blocks.push_back(std::move(b));
      m.resultName = "result";
    }
    expect(Tok::KwEndfun);
  }

  Block blockDef(Module& m) {
    Block b;
    b.loc = peek().loc;
    b.name = ident();
    expect(Tok::Colon);
    b.type = type(m);
    expect(Tok::Assign);
    b.body = blockExpr(m);
    return b;
  }

  std::variant<ForallBlock, ForIterBlock> blockExpr(Module& m) {
    if (at(Tok::KwForall)) return forallBlock(m);
    if (at(Tok::KwFor)) return forIterBlock(m);
    fail("expected 'forall' or 'for' block");
  }

  Def def(const Module& m) {
    Def d;
    d.loc = peek().loc;
    d.name = ident();
    if (accept(Tok::Colon)) d.declaredType = type(m);
    expect(Tok::Assign);
    d.value = expr();
    return d;
  }

  ForallBlock forallBlock(Module& m) {
    ForallBlock fb;
    fb.loc = peek().loc;
    expect(Tok::KwForall);
    fb.indexVar = ident();
    expect(Tok::KwIn);
    expect(Tok::LBracket);
    fb.lo = Expr::mkInt(constExpr(m), peek().loc);
    expect(Tok::Comma);
    fb.hi = Expr::mkInt(constExpr(m), peek().loc);
    expect(Tok::RBracket);
    if (accept(Tok::Comma)) {  // forall i in [..], j in [..]  (2-D, §9)
      fb.indexVar2 = ident();
      expect(Tok::KwIn);
      expect(Tok::LBracket);
      fb.lo2 = Expr::mkInt(constExpr(m), peek().loc);
      expect(Tok::Comma);
      fb.hi2 = Expr::mkInt(constExpr(m), peek().loc);
      expect(Tok::RBracket);
      if (fb.indexVar2 == fb.indexVar)
        diags_.error(fb.loc, "the two forall index variables must differ");
    }
    while (!at(Tok::KwConstruct)) {
      fb.defs.push_back(def(m));
      accept(Tok::Semicolon);
    }
    expect(Tok::KwConstruct);
    fb.accum = expr();
    expect(Tok::KwEndall);
    return fb;
  }

  ForIterBlock forIterBlock(Module& m) {
    ForIterBlock fi;
    fi.loc = peek().loc;
    expect(Tok::KwFor);

    // i : integer := p ;
    fi.indexVar = ident();
    expect(Tok::Colon);
    if (!accept(Tok::KwInteger)) fail("for-iter index variable must be integer");
    expect(Tok::Assign);
    fi.indexInit = Expr::mkInt(constExpr(m), peek().loc);
    expect(Tok::Semicolon);

    // T : array[...] := [ r : init ]
    fi.accVar = ident();
    expect(Tok::Colon);
    const Type accType = type(m);
    if (!accType.isArray)
      diags_.error(fi.loc, "for-iter accumulator must be an array");
    if (accType.range2)
      diags_.error(fi.loc, "for-iter builds one-dimensional arrays "
                           "(recurrence over a single index)");
    expect(Tok::Assign);
    expect(Tok::LBracket);
    fi.accInitIndex = Expr::mkInt(constExpr(m), peek().loc);
    expect(Tok::Colon);
    fi.accInitValue = expr();
    expect(Tok::RBracket);
    accept(Tok::Semicolon);

    expect(Tok::KwDo);
    const bool hasLet = accept(Tok::KwLet);
    if (hasLet) {
      while (!at(Tok::KwIn)) {
        fi.defs.push_back(def(m));
        accept(Tok::Semicolon);
      }
      expect(Tok::KwIn);
    }

    // if cond then iter ... enditer else T endif
    expect(Tok::KwIf);
    fi.cond = expr();
    expect(Tok::KwThen);
    expect(Tok::KwIter);
    bool sawAppend = false, sawStep = false;
    for (int k = 0; k < 2; ++k) {
      const Token& target = expect(Tok::Ident);
      expect(Tok::Assign);
      if (target.text == fi.accVar) {
        // T := T [ idx : value ]
        const Token& base = expect(Tok::Ident);
        if (base.text != fi.accVar)
          diags_.error(base.loc, "append must extend the loop array '" +
                                     fi.accVar + "'");
        expect(Tok::LBracket);
        ExprPtr idx = expr();
        if (!(idx->kind == Expr::Kind::Ident && idx->name == fi.indexVar))
          diags_.error(idx->loc, "append index must be the loop index '" +
                                     fi.indexVar + "'");
        expect(Tok::Colon);
        fi.appendValue = expr();
        expect(Tok::RBracket);
        sawAppend = true;
      } else if (target.text == fi.indexVar) {
        // i := i + 1
        ExprPtr step = expr();
        const bool ok = step->kind == Expr::Kind::Binary &&
                        step->bop == BinOp::Add &&
                        step->a->kind == Expr::Kind::Ident &&
                        step->a->name == fi.indexVar &&
                        step->b->kind == Expr::Kind::IntLit &&
                        step->b->intValue == 1;
        if (!ok)
          diags_.error(target.loc,
                       "for-iter index must advance as '" + fi.indexVar +
                           " := " + fi.indexVar + " + 1'");
        sawStep = true;
      } else {
        diags_.error(target.loc, "iter arm may only rebind '" + fi.accVar +
                                     "' and '" + fi.indexVar + "'");
        throw ParseAbort{};
      }
      accept(Tok::Semicolon);
    }
    if (!sawAppend || !sawStep)
      diags_.error(fi.loc, "iter arm must rebind both loop variables");
    expect(Tok::KwEnditer);
    expect(Tok::KwElse);
    const Token& res = expect(Tok::Ident);
    if (res.text != fi.accVar)
      diags_.error(res.loc,
                   "for-iter result must be the loop array '" + fi.accVar + "'");
    expect(Tok::KwEndif);
    if (hasLet) expect(Tok::KwEndlet);
    expect(Tok::KwEndfor);
    return fi;
  }

  // --- expressions (precedence climbing) ---

  ExprPtr expr() { return orExpr(); }

  ExprPtr orExpr() {
    ExprPtr e = andExpr();
    while (at(Tok::Bar)) {
      const SourceLoc loc = advance().loc;
      e = Expr::mkBinary(BinOp::Or, e, andExpr(), loc);
    }
    return e;
  }

  ExprPtr andExpr() {
    ExprPtr e = relExpr();
    while (at(Tok::Amp)) {
      const SourceLoc loc = advance().loc;
      e = Expr::mkBinary(BinOp::And, e, relExpr(), loc);
    }
    return e;
  }

  ExprPtr relExpr() {
    ExprPtr e = addExpr();
    BinOp op;
    switch (peek().kind) {
      case Tok::Eq: op = BinOp::Eq; break;
      case Tok::Ne: op = BinOp::Ne; break;
      case Tok::Lt: op = BinOp::Lt; break;
      case Tok::Le: op = BinOp::Le; break;
      case Tok::Gt: op = BinOp::Gt; break;
      case Tok::Ge: op = BinOp::Ge; break;
      default: return e;
    }
    const SourceLoc loc = advance().loc;
    return Expr::mkBinary(op, e, addExpr(), loc);
  }

  ExprPtr addExpr() {
    ExprPtr e = mulExpr();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      const Token& t = advance();
      e = Expr::mkBinary(t.kind == Tok::Plus ? BinOp::Add : BinOp::Sub, e,
                         mulExpr(), t.loc);
    }
    return e;
  }

  ExprPtr mulExpr() {
    ExprPtr e = unary();
    while (at(Tok::Star) || at(Tok::Slash)) {
      const Token& t = advance();
      e = Expr::mkBinary(t.kind == Tok::Star ? BinOp::Mul : BinOp::Div, e,
                         unary(), t.loc);
    }
    return e;
  }

  ExprPtr unary() {
    if (at(Tok::Minus)) {
      const SourceLoc loc = advance().loc;
      return Expr::mkUnary(UnOp::Neg, unary(), loc);
    }
    if (at(Tok::Tilde)) {
      const SourceLoc loc = advance().loc;
      return Expr::mkUnary(UnOp::Not, unary(), loc);
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    while (at(Tok::LBracket)) {
      const SourceLoc loc = advance().loc;
      ExprPtr idx = expr();
      ExprPtr idx2;
      if (accept(Tok::Comma)) idx2 = expr();  // A[i, j]
      expect(Tok::RBracket);
      if (e->kind != Expr::Kind::Ident)
        fail("only named arrays may be indexed");
      e = idx2 ? Expr::mkIndex2(e->name, idx, idx2, loc)
               : Expr::mkIndex(e->name, idx, loc);
    }
    return e;
  }

  ExprPtr primary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::IntLit: advance(); return Expr::mkInt(t.intValue, t.loc);
      case Tok::RealLit: advance(); return Expr::mkReal(t.realValue, t.loc);
      case Tok::KwTrue: advance(); return Expr::mkBool(true, t.loc);
      case Tok::KwFalse: advance(); return Expr::mkBool(false, t.loc);
      case Tok::Ident: advance(); return Expr::mkIdent(t.text, t.loc);
      case Tok::LParen: {
        advance();
        ExprPtr e = expr();
        expect(Tok::RParen);
        return e;
      }
      case Tok::KwIf: {
        advance();
        ExprPtr cond = expr();
        expect(Tok::KwThen);
        ExprPtr thenE = expr();
        expect(Tok::KwElse);
        ExprPtr elseE = expr();
        expect(Tok::KwEndif);
        return Expr::mkIf(cond, thenE, elseE, t.loc);
      }
      case Tok::KwLet: {
        advance();
        std::vector<Def> defs;
        // Inner lets don't see module constants in their types; pass an
        // empty module for type range expressions (scalar defs dominate).
        Module empty;
        while (!at(Tok::KwIn)) {
          defs.push_back(def(empty));
          accept(Tok::Semicolon);
        }
        expect(Tok::KwIn);
        ExprPtr body = expr();
        expect(Tok::KwEndlet);
        return Expr::mkLet(std::move(defs), body, t.loc);
      }
      default:
        fail(std::string("expected expression, found ") + toString(t.kind));
    }
  }
};

}  // namespace

Module parseModule(std::string_view source, Diagnostics& diags) {
  Parser p(source, diags);
  return p.module();
}

Module parseModuleOrThrow(std::string_view source) {
  Diagnostics diags;
  Module m = parseModule(source, diags);
  if (diags.hasErrors()) throw CompileError(diags.str());
  return m;
}

ExprPtr parseExpression(std::string_view source, Diagnostics& diags) {
  Parser p(source, diags);
  return p.standaloneExpr();
}

}  // namespace valpipe::val
