// Hot-path decision maker of the fault-injection harness.
//
// One Injector per engine lane (the whole run for the serial engines, one
// shard for the parallel one).  It holds a pointer to the run's fault::Plan
// — null when fault injection is off, making every hook a branch on a null
// pointer, the same zero-cost idiom as obs::LaneProbe — plus a splitmix64
// decision stream seeded from (plan.seed, lane) so every decision is
// reproducible for a given scheduler and shard count.
//
// Outage decisions take no randomness (they are pure functions of the static
// plan and the current instruction time), so they agree across lanes and
// schedulers; the randomized decisions are lane-local by construction.
#pragma once

#include <cstdint>

#include "fault/plan.hpp"

namespace valpipe::fault {

class Injector {
 public:
  Injector() = default;
  explicit Injector(const Plan* plan, std::uint32_t lane = 0)
      : plan_(plan), state_(0x6a09e667f3bcc909ull ^
                            ((plan ? plan->seed : 0) + 0x9e3779b97f4a7c15ull *
                                                           (lane + 1))) {}

  bool active() const { return plan_ != nullptr; }
  const Plan* plan() const { return plan_; }

  std::int64_t maxExtraDelay() const {
    return plan_ ? plan_->maxExtraDelay() : 0;
  }
  /// Earliest instruction time quiescence may be declared at (outages keep
  /// waiting cells alive past any idle window).
  std::int64_t quiesceFloor() const {
    return plan_ ? plan_->lastOutageEnd() : 0;
  }
  bool mailboxReorder() const { return plan_ && plan_->mailboxReorder; }

  /// Extra result-transit latency for the current firing.
  std::int64_t execJitter() {
    if (!plan_ || plan_->latencyJitterMax == 0) return 0;
    const std::int64_t j = draw(plan_->latencyJitterMax);
    if (j > 0) ++counters.delayedResults;
    return j;
  }

  /// Extra delivery delay for one result packet.
  std::int64_t deliveryDelay() {
    if (!plan_ || plan_->deliveryDelayMax == 0) return 0;
    const std::int64_t d = draw(plan_->deliveryDelayMax);
    if (d > 0) ++counters.delayedResults;
    return d;
  }

  /// Extra delay for one cross-shard message (models barrier skew).
  std::int64_t barrierSkew() {
    if (!plan_ || plan_->barrierSkewMax == 0) return 0;
    const std::int64_t s = draw(plan_->barrierSkewMax);
    if (s > 0) ++counters.skewedMessages;
    return s;
  }

  /// End of the outage window covering `now` for `fc`; > now means the
  /// grant is denied (and counted).
  std::int64_t outageUntil(dfg::FuClass fc, std::int64_t now) {
    if (!plan_ || plan_->outages.empty()) return now;
    const std::int64_t until = plan_->outageUntil(fc, now);
    if (until > now) ++counters.outageDenials;
    return until;
  }

  bool dropResult() {
    if (!plan_ || plan_->dropResultPermille == 0) return false;
    const bool hit = bernoulli(plan_->dropResultPermille);
    if (hit) ++counters.droppedResults;
    return hit;
  }
  bool dupResult() {
    if (!plan_ || plan_->dupResultPermille == 0) return false;
    const bool hit = bernoulli(plan_->dupResultPermille);
    if (hit) ++counters.duplicatedResults;
    return hit;
  }
  bool dropAck() {
    if (!plan_ || plan_->dropAckPermille == 0) return false;
    const bool hit = bernoulli(plan_->dropAckPermille);
    if (hit) ++counters.droppedAcks;
    return hit;
  }
  bool dupAck() {
    if (!plan_ || plan_->dupAckPermille == 0) return false;
    const bool hit = bernoulli(plan_->dupAckPermille);
    if (hit) ++counters.duplicatedAcks;
    return hit;
  }

  Counters counters;

 private:
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::int64_t draw(int maxv) {
    return static_cast<std::int64_t>(next() %
                                     static_cast<std::uint64_t>(maxv + 1));
  }
  bool bernoulli(int permille) {
    return static_cast<int>(next() % 1000) < permille;
  }

  const Plan* plan_ = nullptr;
  std::uint64_t state_ = 0;
};

}  // namespace valpipe::fault
