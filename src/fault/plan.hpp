// Deterministic fault-injection plans for the timed machine engines.
//
// A fault::Plan describes a seeded perturbation of a run, split into two
// classes with very different contracts:
//
//   * timing faults — extra result-transit latency per firing (jitter),
//     extra per-packet delivery delay, cross-shard barrier skew, drain-order
//     reversal inside a mailbox, and transient FU outage windows.  These
//     change *when* packets move, never *which* packets move: the §2
//     acknowledge discipline makes firing counts data-determined, so outputs
//     and packet counters stay bit-identical to the fault-free run (the
//     paper's determinacy claim; tests/test_fault_injection.cpp proves it).
//
//   * destructive faults — dropped or duplicated result and acknowledge
//     packets (per-mille rates).  These break the discipline on purpose; a
//     run under them must end in recovery, a guard::ViolationError, or a
//     run::StallError — never a hang or a silently wrong output.
//
// Plans are plain data hung off run::RunOptions by pointer (null = off, the
// same zero-cost contract as the obs sinks); the hot-path decision maker is
// fault::Injector (fault/injector.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dfg/opcode.hpp"

namespace valpipe::fault {

/// readyAt/freedAt stamp of a packet lost in the network: far enough in the
/// future that no run reaches it, so the waiting side blocks forever and the
/// watchdog (or a guard) gets to report it by name.
inline constexpr std::int64_t kLostPacket =
    std::numeric_limits<std::int64_t>::max() / 4;

/// One transient function-unit outage: every grant of class `fu` is denied
/// for instruction times in [from, from + length).
struct Outage {
  dfg::FuClass fu = dfg::FuClass::Fpu;
  std::int64_t from = 0;
  std::int64_t length = 0;

  std::int64_t until() const { return from + length; }
};

struct Plan {
  std::uint64_t seed = 1;  ///< base of the per-lane decision streams

  // --- timing class (outputs/counters stay bit-identical) ---
  int latencyJitterMax = 0;   ///< extra result-transit per firing, [0, max]
  int deliveryDelayMax = 0;   ///< extra delay per result packet, [0, max]
  int barrierSkewMax = 0;     ///< extra delay per cross-shard message, [0, max]
  bool mailboxReorder = false;  ///< drain each mailbox in reverse push order
  std::vector<Outage> outages;

  // --- destructive class (per-mille probabilities) ---
  int dropResultPermille = 0;
  int dupResultPermille = 0;
  int dropAckPermille = 0;
  int dupAckPermille = 0;

  /// No destructive faults: the bit-identical-outputs contract applies.
  bool timingOnly() const {
    return dropResultPermille == 0 && dupResultPermille == 0 &&
           dropAckPermille == 0 && dupAckPermille == 0;
  }

  /// Upper bound on the extra delay any single packet can accrue; engines
  /// widen their quiescence window and wake horizon by this much so delayed
  /// packets are neither declared deadlock nor aliased in the time wheel.
  std::int64_t maxExtraDelay() const {
    return static_cast<std::int64_t>(latencyJitterMax) + deliveryDelayMax +
           barrierSkewMax;
  }

  /// End of the outage window covering `now` for class `fc` (<= now when
  /// none).  Static data, no randomness: every lane sees the same answer.
  std::int64_t outageUntil(dfg::FuClass fc, std::int64_t now) const {
    std::int64_t until = now;
    for (const Outage& o : outages)
      if (o.fu == fc && o.from <= now && now < o.until())
        until = std::max(until, o.until());
    return until;
  }

  /// Latest outage end: quiescence must not be declared while a class is
  /// still switched off (cells waiting it out are not deadlocked).
  std::int64_t lastOutageEnd() const {
    std::int64_t end = 0;
    for (const Outage& o : outages) end = std::max(end, o.until());
    return end;
  }
};

/// What the injector actually did, merged into MachineResult::faults so
/// tests and valc can report it (and the stall diagnosis can attribute a
/// starving cell to a dropped packet rather than an unbalanced graph).
struct Counters {
  std::uint64_t delayedResults = 0;  ///< result packets given extra transit
  std::uint64_t skewedMessages = 0;  ///< cross-shard messages given skew
  std::uint64_t outageDenials = 0;   ///< grant denials inside outage windows
  std::uint64_t droppedResults = 0;
  std::uint64_t duplicatedResults = 0;
  std::uint64_t droppedAcks = 0;
  std::uint64_t duplicatedAcks = 0;

  void add(const Counters& o) {
    delayedResults += o.delayedResults;
    skewedMessages += o.skewedMessages;
    outageDenials += o.outageDenials;
    droppedResults += o.droppedResults;
    duplicatedResults += o.duplicatedResults;
    droppedAcks += o.droppedAcks;
    duplicatedAcks += o.duplicatedAcks;
  }

  std::uint64_t destructive() const {
    return droppedResults + duplicatedResults + droppedAcks + duplicatedAcks;
  }

  /// One-line human summary ("dropped 2 results, lost 1 ack, ..."); empty
  /// when nothing was injected.
  std::string str() const;
};

/// Parses a valc `--faults` spec: comma-separated `key=value` entries.
///   seed=N jitter=N delay=N skew=N reorder outage=CLASS@FROM+LEN
///   drop-result=PM dup-result=PM drop-ack=PM dup-ack=PM
/// CLASS is one of pe|alu|fpu|am; PM is a per-mille rate.  Throws
/// CompileError naming the offending entry.
Plan parsePlan(const std::string& spec);

/// Compact round-trippable description of a plan for logs and banners.
std::string describe(const Plan& plan);

}  // namespace valpipe::fault
