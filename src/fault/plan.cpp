#include "fault/plan.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace valpipe::fault {

namespace {

[[noreturn]] void bad(const std::string& entry, const std::string& why) {
  throw CompileError("--faults: bad entry '" + entry + "': " + why);
}

dfg::FuClass parseFuClass(const std::string& entry, const std::string& s) {
  if (s == "pe") return dfg::FuClass::Pe;
  if (s == "alu") return dfg::FuClass::Alu;
  if (s == "fpu") return dfg::FuClass::Fpu;
  if (s == "am") return dfg::FuClass::Am;
  bad(entry, "unknown FU class '" + s + "' (want pe|alu|fpu|am)");
}

std::int64_t parseInt(const std::string& entry, const std::string& s) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    if (used != s.size() || v < 0) bad(entry, "want a non-negative integer");
    return v;
  } catch (const CompileError&) {
    throw;
  } catch (...) {
    bad(entry, "want a non-negative integer");
  }
}

int parsePermille(const std::string& entry, const std::string& s) {
  const std::int64_t v = parseInt(entry, s);
  if (v > 1000) bad(entry, "per-mille rate must be <= 1000");
  return static_cast<int>(v);
}

const char* fuName(dfg::FuClass fc) {
  switch (fc) {
    case dfg::FuClass::Pe: return "pe";
    case dfg::FuClass::Alu: return "alu";
    case dfg::FuClass::Fpu: return "fpu";
    case dfg::FuClass::Am: return "am";
  }
  return "?";
}

}  // namespace

Plan parsePlan(const std::string& spec) {
  Plan plan;
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    const std::string key = entry.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : entry.substr(eq + 1);
    if (key == "reorder") {
      if (!val.empty()) bad(entry, "takes no value");
      plan.mailboxReorder = true;
    } else if (val.empty()) {
      bad(entry, "missing value");
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parseInt(entry, val));
    } else if (key == "jitter") {
      plan.latencyJitterMax = static_cast<int>(parseInt(entry, val));
    } else if (key == "delay") {
      plan.deliveryDelayMax = static_cast<int>(parseInt(entry, val));
    } else if (key == "skew") {
      plan.barrierSkewMax = static_cast<int>(parseInt(entry, val));
    } else if (key == "outage") {
      // CLASS@FROM+LEN, e.g. fpu@100+50
      const std::size_t at = val.find('@');
      const std::size_t plus = val.find('+', at == std::string::npos ? 0 : at);
      if (at == std::string::npos || plus == std::string::npos)
        bad(entry, "want CLASS@FROM+LEN, e.g. fpu@100+50");
      Outage o;
      o.fu = parseFuClass(entry, val.substr(0, at));
      o.from = parseInt(entry, val.substr(at + 1, plus - at - 1));
      o.length = parseInt(entry, val.substr(plus + 1));
      plan.outages.push_back(o);
    } else if (key == "drop-result") {
      plan.dropResultPermille = parsePermille(entry, val);
    } else if (key == "dup-result") {
      plan.dupResultPermille = parsePermille(entry, val);
    } else if (key == "drop-ack") {
      plan.dropAckPermille = parsePermille(entry, val);
    } else if (key == "dup-ack") {
      plan.dupAckPermille = parsePermille(entry, val);
    } else {
      bad(entry, "unknown key (want seed, jitter, delay, skew, reorder, "
                 "outage, drop-result, dup-result, drop-ack, dup-ack)");
    }
  }
  return plan;
}

std::string describe(const Plan& plan) {
  std::ostringstream os;
  os << "seed=" << plan.seed;
  if (plan.latencyJitterMax) os << ",jitter=" << plan.latencyJitterMax;
  if (plan.deliveryDelayMax) os << ",delay=" << plan.deliveryDelayMax;
  if (plan.barrierSkewMax) os << ",skew=" << plan.barrierSkewMax;
  if (plan.mailboxReorder) os << ",reorder";
  for (const Outage& o : plan.outages)
    os << ",outage=" << fuName(o.fu) << "@" << o.from << "+" << o.length;
  if (plan.dropResultPermille) os << ",drop-result=" << plan.dropResultPermille;
  if (plan.dupResultPermille) os << ",dup-result=" << plan.dupResultPermille;
  if (plan.dropAckPermille) os << ",drop-ack=" << plan.dropAckPermille;
  if (plan.dupAckPermille) os << ",dup-ack=" << plan.dupAckPermille;
  return os.str();
}

std::string Counters::str() const {
  std::ostringstream os;
  auto item = [&os](std::uint64_t n, const char* what) {
    if (n == 0) return;
    if (os.tellp() > 0) os << ", ";
    os << n << " " << what;
  };
  item(delayedResults, "delayed results");
  item(skewedMessages, "skewed messages");
  item(outageDenials, "outage denials");
  item(droppedResults, "dropped results");
  item(duplicatedResults, "duplicated results");
  item(droppedAcks, "dropped acks");
  item(duplicatedAcks, "duplicated acks");
  return os.str();
}

}  // namespace valpipe::fault
