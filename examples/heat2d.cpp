// 2-D heat diffusion on a grid — exercising the paper's §9 extension
// ("the extension of this work to array values of multiple dimension is
// straightforward"): a 2-D forall five-point stencil streamed row-major
// through a fully pipelined instruction graph.
//
//   $ ./heat2d [size] [steps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "dfg/stats.hpp"
#include "machine/engine.hpp"

int main(int argc, char** argv) {
  using namespace valpipe;
  const int n = argc > 1 ? std::atoi(argv[1]) : 24;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 100;

  const std::string source =
      "const n = " + std::to_string(n) + "\n" + R"(
function heat2d(U: array[real] [0, n+1] [0, n+1] returns array[real])
  forall i in [0, n+1], j in [0, n+1]
    D : real := if (i = 0) | (i = n+1) | (j = 0) | (j = n+1) then 0.
                else U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1]
                     - 4. * U[i, j] endif;
  construct U[i, j] + 0.2 * D
  endall
endfun
)";

  const core::CompiledProgram prog = core::compileSource(source);
  const dfg::Graph code = dfg::expandFifos(prog.graph);
  std::printf("heat2d: %dx%d interior grid, %d steps\n", n, n, steps);
  std::printf("machine code: %zu cells (%s scheme), %zu buffer slots\n",
              code.size(), prog.blocks[0].scheme.c_str(),
              prog.balance.buffersInserted);

  const int W = n + 2;
  std::vector<Value> u(static_cast<std::size_t>(W * W), Value(0.0));
  // A hot square in the middle.
  for (int i = n / 2 - 1; i <= n / 2 + 1; ++i)
    for (int j = n / 2 - 1; j <= n / 2 + 1; ++j)
      u[static_cast<std::size_t>(i * W + j)] = Value(100.0);

  double rate = 0.0;
  std::uint64_t cycles = 0;
  for (int s = 0; s < steps; ++s) {
    machine::RunOptions opts;
    opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
    const auto res = machine::simulate(code, machine::MachineConfig::unit(),
                                       {{"U", u}}, opts);
    if (!res.completed) {
      std::fprintf(stderr, "step %d failed: %s\n", s, res.note.c_str());
      return 1;
    }
    u = res.outputs.at(prog.outputName);
    rate = res.steadyRate(prog.outputName);
    cycles += static_cast<std::uint64_t>(res.cycles);
  }

  double total = 0.0, peak = 0.0;
  for (const Value& v : u) {
    total += v.toReal();
    peak = std::max(peak, v.toReal());
  }
  std::printf("after %d steps: peak %.3f, total heat %.1f (initial 900; boundaries absorb)\n",
              steps, peak, total);
  std::printf("steady rate %.3f results/instruction time; %llu total times\n",
              rate, static_cast<unsigned long long>(cycles));

  // ASCII rendering of the final field.
  const char* shades = " .:-=+*#%@";
  const int step = std::max(1, W / 24);
  for (int i = 0; i < W; i += step) {
    std::printf("  ");
    for (int j = 0; j < W; j += step) {
      const double v = u[static_cast<std::size_t>(i * W + j)].toReal();
      const int shade =
          std::min(9, static_cast<int>(v / (peak > 0 ? peak : 1) * 9.999));
      std::printf("%c", shades[shade]);
    }
    std::printf("\n");
  }
  return 0;
}
