// Quickstart: compile a small pipe-structured Val program into static
// dataflow machine code, inspect the compiled graph, and run it on both
// execution engines.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "dfg/stats.hpp"
#include "machine/engine.hpp"
#include "sim/interpreter.hpp"

int main() {
  using namespace valpipe;

  // A Val program in the paper's style: smooth an array, squaring the result
  // (Example 1's shape).
  const std::string source = R"(
const m = 14
function smooth(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";

  // 1. Compile.  The default options use the pipeline scheme, the optimal
  //    (min-cost-flow) balancer, and stream routing between blocks.
  core::CompiledProgram prog;
  try {
    prog = core::compileSource(source);
  } catch (const CompileError& e) {
    std::cerr << "compile error:\n" << e.what() << "\n";
    return 1;
  }
  std::printf("compiled '%s': %s\n", prog.outputName.c_str(),
              dfg::computeStats(prog.graph).str().c_str());
  std::printf("balancing inserted %zu buffer stages in %zu FIFOs\n",
              prog.balance.buffersInserted, prog.balance.fifoNodes);
  for (const auto& b : prog.blocks)
    std::printf("block %-8s scheme=%-18s predicted rate=%.3f\n",
                b.name.c_str(), b.scheme.c_str(), b.predictedRate);

  // 2. Prepare input streams (arrays arrive as sequences of result packets).
  run::StreamMap inputs;
  for (const auto& [name, range] : prog.inputs) {
    std::vector<Value> stream;
    for (std::int64_t i = range.lo; i <= range.hi; ++i)
      stream.push_back(Value(0.1 * static_cast<double>(i)));
    inputs[name] = std::move(stream);
  }

  // 3. Functional run on the untimed interpreter.
  const sim::RunResult fn = sim::interpret(prog.graph, inputs);
  std::printf("\ninterpreter produced %zu elements:\n ",
              fn.outputs.at(prog.outputName).size());
  for (const Value& v : fn.outputs.at(prog.outputName))
    std::printf(" %.4f", v.toReal());
  std::printf("\n");

  // 4. Timed run on the machine model: measure the §3 pipelining rate.
  machine::RunOptions mopts;
  mopts.waves = 8;  // stream eight array instances through the pipe
  mopts.expectedOutputs[prog.outputName] =
      prog.expectedOutputPerWave() * mopts.waves;
  const machine::MachineResult timed = machine::simulate(
      dfg::expandFifos(prog.graph), machine::MachineConfig::unit(), inputs,
      mopts);
  std::printf(
      "\nmachine: %lld instruction times, steady rate %.3f results/time "
      "(maximum is 0.5)\n",
      static_cast<long long>(timed.cycles),
      timed.steadyRate(prog.outputName));
  std::printf("packets: %llu operation, %llu result, %llu acknowledge\n",
              static_cast<unsigned long long>(timed.packets.opPacketsTotal()),
              static_cast<unsigned long long>(timed.packets.resultPackets),
              static_cast<unsigned long long>(timed.packets.ackPackets));
  return 0;
}
