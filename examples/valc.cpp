// valc — the Val-to-static-dataflow compiler driver.
//
//   valc [options] <file.val>
//     --scheme todd|companion|longfifo|auto   for-iter mapping (default auto)
//     --forall pipeline|parallel              forall mapping (default pipeline)
//     --balance none|longest|optimal          buffering mode (default optimal)
//     --skip K                                companion dependence distance
//     --batch B                               long-FIFO interleave factor
//     --routing stream|memory                 inter-block array routing
//     -O                                      fuse FIFO chains into composite
//                                             ring-buffer cells (default)
//     --no-fuse                               expand FIFOs into Id chains
//                                             (truthful per-cell statistics)
//     --lower-control                         counter loops for control seqs
//     --dot                                   print Graphviz to stdout
//     --run [waves]                           simulate with ramp inputs
//     --scheduler KIND                        machine scheduler for --run:
//                                             event | parallel | sync |
//                                             reference | compiled (all
//                                             bit-identical; compiled
//                                             fast-forwards the steady state)
//     --explain-schedule                      dump the static-schedule IR
//                                             (hyper-period, per-cell slots,
//                                             or the decline reason)
//     --classify                              only report the program class
//     --profile                               run + §3 audit + metrics JSON
//     --trace FILE                            run + Chrome trace to FILE
//     --faults SPEC                           run under a fault plan
//                                             (seed=,jitter=,delay=,skew=,
//                                             reorder,outage=CLASS@FROM+LEN,
//                                             drop-result=,dup-result=,
//                                             drop-ack=,dup-ack= per-mille)
//     --guards                                enable runtime invariant guards
//     --watchdog N                            abort + diagnose after N idle
//                                             instruction times
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/paths.hpp"
#include "core/compiler.hpp"
#include "dfg/dot.hpp"
#include "dfg/lower.hpp"
#include "dfg/stats.hpp"
#include "exec/executable_graph.hpp"
#include "fault/plan.hpp"
#include "guard/guard.hpp"
#include "machine/engine.hpp"
#include "sched/schedule.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/rate_report.hpp"
#include "obs/trace.hpp"
#include "opt/fuse.hpp"
#include "val/classify.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: valc [--scheme S] [--forall F] [--balance B] [--skip K]"
               " [--batch N] [--routing R] [-O | --no-fuse] [--dot]"
               " [--run [waves]]"
               " [--scheduler event|parallel|sync|reference|compiled]"
               " [--explain-schedule] [--classify] [--profile] [--trace FILE]"
               " [--faults SPEC] [--guards] [--watchdog N] file.val\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  core::CompileOptions opts;
  bool fuse = true;  // -O / --no-fuse: how FIFOs are lowered before a run
  bool dot = false, classifyOnly = false, profile = false, guards = false;
  bool explainSchedule = false;
  core::SchedulerKind scheduler = core::SchedulerKind::EventDriven;
  int runWaves = 0;
  std::int64_t watchdog = 0;
  std::string path, tracePath, faultSpec;
  bool haveFaults = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> std::string {
      if (a + 1 >= argc) usage();
      return argv[++a];
    };
    if (arg == "--scheme") {
      const std::string s = next();
      opts.forIterScheme = s == "todd"      ? core::ForIterScheme::Todd
                           : s == "companion" ? core::ForIterScheme::Companion
                           : s == "longfifo"  ? core::ForIterScheme::LongFifo
                           : s == "auto"      ? core::ForIterScheme::Auto
                                              : (usage(), core::ForIterScheme::Auto);
    } else if (arg == "--forall") {
      const std::string s = next();
      opts.forallScheme = s == "parallel" ? core::ForallScheme::Parallel
                          : s == "pipeline" ? core::ForallScheme::Pipeline
                                            : (usage(), core::ForallScheme::Pipeline);
    } else if (arg == "--balance") {
      const std::string s = next();
      opts.balanceMode = s == "none"      ? core::BalanceMode::None
                         : s == "longest" ? core::BalanceMode::LongestPath
                         : s == "optimal" ? core::BalanceMode::Optimal
                                          : (usage(), core::BalanceMode::Optimal);
    } else if (arg == "--skip") {
      opts.companionSkip = std::atoi(next().c_str());
    } else if (arg == "--batch") {
      opts.interleave = std::atoi(next().c_str());
    } else if (arg == "--routing") {
      const std::string s = next();
      opts.routing = s == "memory" ? core::ArrayRouting::Memory
                                   : core::ArrayRouting::Stream;
    } else if (arg == "-O") {
      fuse = true;
    } else if (arg == "--no-fuse") {
      fuse = false;
    } else if (arg == "--lower-control") {
      opts.lowerControl = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--classify") {
      classifyOnly = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--trace") {
      tracePath = next();
    } else if (arg == "--faults") {
      faultSpec = next();
      haveFaults = true;
    } else if (arg == "--scheduler") {
      const std::string s = next();
      scheduler = s == "event"       ? core::SchedulerKind::EventDriven
                  : s == "parallel"  ? core::SchedulerKind::ParallelEventDriven
                  : s == "sync"      ? core::SchedulerKind::Synchronous
                  : s == "reference" ? core::SchedulerKind::Reference
                  : s == "compiled"  ? core::SchedulerKind::Compiled
                                     : (usage(), core::SchedulerKind::EventDriven);
    } else if (arg == "--explain-schedule") {
      explainSchedule = true;
    } else if (arg == "--guards") {
      guards = true;
    } else if (arg == "--watchdog") {
      watchdog = std::atoll(next().c_str());
    } else if (arg == "--run") {
      runWaves = (a + 1 < argc && argv[a + 1][0] != '-' &&
                  std::isdigit(static_cast<unsigned char>(argv[a + 1][0])))
                     ? std::atoi(argv[++a])
                     : 1;
    } else if (arg.rfind("--", 0) == 0) {
      usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) usage();

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "valc: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << file.rdbuf();

  try {
    val::Module mod = core::frontend(buf.str());

    if (classifyOnly) {
      for (const val::Block& b : mod.blocks) {
        std::string verdict;
        if (b.isForall()) {
          auto r = val::isPrimitiveForall(b, mod);
          verdict = r ? "primitive forall" : "NOT primitive: " + r.reason;
        } else if (auto s = val::isSimpleForIter(b, mod)) {
          verdict = "simple for-iter (companion function exists)";
        } else if (auto p = val::isPrimitiveForIter(b, mod)) {
          verdict = "primitive for-iter, not simple: " +
                    val::isSimpleForIter(b, mod).reason;
        } else {
          verdict = "NOT primitive: " + val::isPrimitiveForIter(b, mod).reason;
        }
        std::printf("%-10s %s\n", b.name.c_str(), verdict.c_str());
      }
      auto ps = val::isPipeStructured(mod);
      std::printf("program: %s\n",
                  ps ? "pipe-structured (Theorem 4 applies)"
                     : ("not pipe-structured: " + ps.reason).c_str());
      return 0;
    }

    const core::CompiledProgram prog = core::compile(mod, opts);
    if (dot) {
      std::fputs(dfg::toDot(prog.graph, path).c_str(), stdout);
      return 0;
    }

    std::printf("%s -> %s %s\n", path.c_str(), prog.outputName.c_str(),
                prog.outputRange.str().c_str());
    std::printf("  %s\n", dfg::computeStats(prog.graph).str().c_str());
    std::printf("  buffering: %zu stages in %zu FIFOs\n",
                prog.balance.buffersInserted, prog.balance.fifoNodes);
    for (const auto& b : prog.blocks) {
      std::printf("  block %-8s %-24s", b.name.c_str(), b.scheme.c_str());
      if (b.cycleStages > 0)
        std::printf(" cycle %lld stages / %lld packets",
                    static_cast<long long>(b.cycleStages),
                    static_cast<long long>(b.cycleTokens));
      std::printf("  predicted rate %.3f\n", b.predictedRate);
    }

    if (explainSchedule) {
      // The IR is computed from the machine-ready (lowered) flat form — the
      // same form the compiled scheduler sees.
      const dfg::Graph lowered = fuse ? opt::fuseFifos(prog.graph)
                                      : dfg::expandFifos(prog.graph);
      const exec::ExecutableGraph eg(lowered);
      const sched::SteadySchedule ss = sched::computeSteadySchedule(eg);
      std::fputs(ss.explain(eg).c_str(), stdout);
    }

    // --profile, --trace and the resilience flags need a run; give them one
    // wave if --run didn't.
    if ((profile || !tracePath.empty() || haveFaults || guards ||
         watchdog > 0) &&
        runWaves == 0)
      runWaves = 1;

    if (runWaves > 0) {
      run::StreamMap streams;
      for (const auto& [name, range] : prog.inputs) {
        std::vector<Value> v;
        for (std::int64_t k = 0; k < prog.inputLengthPerWave(name); ++k)
          v.push_back(Value(0.01 * static_cast<double>(k % 97)));
        streams[name] = std::move(v);
      }
      opt::FusionStats fstats;
      const dfg::Graph lowered = fuse ? opt::fuseFifos(prog.graph, &fstats)
                                      : dfg::expandFifos(prog.graph);
      if (profile) {
        std::printf("  lowered (%s): %s\n", fuse ? "fused" : "expanded",
                    dfg::computeStats(lowered).str().c_str());
        if (fuse)
          std::printf("  fusion: %zu chains fused, %zu cells absorbed"
                      " (%zu -> %zu nodes)\n",
                      fstats.chainsFused, fstats.cellsAbsorbed,
                      fstats.nodesBefore, fstats.nodesAfter);
      }
      obs::MetricsSink metrics;
      obs::TraceSink trace;
      machine::RunOptions ropts;
      ropts.waves = runWaves;
      ropts.expectedOutputs[prog.outputName] =
          prog.expectedOutputPerWave() * runWaves;
      if (profile) ropts.metrics = &metrics;
      if (!tracePath.empty()) ropts.trace = &trace;
      fault::Plan plan;
      if (haveFaults) {
        plan = fault::parsePlan(faultSpec);
        ropts.faults = &plan;
        std::printf("  faults: %s\n", fault::describe(plan).c_str());
      }
      guard::Config gcfg;
      if (guards) ropts.guards = &gcfg;
      ropts.watchdog = watchdog;
      ropts.scheduler = scheduler;
      const machine::MachineResult res =
          machine::simulate(lowered, machine::MachineConfig::unit(), streams,
                            ropts);
      std::printf("  run: %s in %lld instruction times, steady rate %.3f\n",
                  res.completed ? "completed" : res.note.c_str(),
                  static_cast<long long>(res.cycles),
                  res.steadyRate(prog.outputName));
      if (const std::string injected = res.faults.str(); !injected.empty())
        std::printf("  injected: %s\n", injected.c_str());
      if (scheduler == core::SchedulerKind::Compiled) {
        const auto& ci = res.compiled;
        if (ci.fastForwarded)
          std::printf("  compiled: period %lld, fast-forwarded %lld windows"
                      " = %lld instruction times (%llu firings%s)\n",
                      static_cast<long long>(ci.detectedPeriod),
                      static_cast<long long>(ci.windowsSkipped),
                      static_cast<long long>(ci.cyclesSkipped),
                      static_cast<unsigned long long>(ci.firingsSkipped),
                      ci.vectorized ? ", vectorized" : "");
        else
          std::printf("  compiled: %s\n",
                      ci.reason.empty() ? "no fast-forward taken"
                                        : ci.reason.c_str());
      }

      if (profile) {
        const obs::RateReport audit = obs::auditMaxPipelining(lowered, metrics);
        std::ostringstream report;
        audit.print(report);
        std::printf("  %s", report.str().c_str());
        const obs::TraceMeta meta = obs::TraceMeta::of(lowered);
        std::ostringstream jsonText;
        metrics.writeJson(jsonText, &meta);
        std::printf("%s", jsonText.str().c_str());
      }
      if (!tracePath.empty()) {
        std::ofstream out(tracePath);
        if (!out) {
          std::fprintf(stderr, "valc: cannot write %s\n", tracePath.c_str());
          return 1;
        }
        obs::writeChromeTrace(out, trace);
        std::printf("  trace: wrote %s (load in chrome://tracing or "
                    "https://ui.perfetto.dev)\n",
                    tracePath.c_str());
      }
    }
  } catch (const guard::ViolationError& e) {
    std::fprintf(stderr, "valc: guard violation: %s\n", e.what());
    return 3;
  } catch (const run::StallError& e) {
    std::fprintf(stderr, "valc: stall: %s\n", e.what());
    return 3;
  } catch (const CompileError& e) {
    std::fprintf(stderr, "valc: %s\n", e.what());
    return 1;
  }
  return 0;
}
