// 1-D heat relaxation — the kind of physics time-stepping loop the paper's
// §2 discussion targets: each time step is a pipe-structured program pass;
// the temperature field produced by one step is held in array memory until
// the next step consumes it ("data that must be held for a long time
// interval").
//
//   u'[i] = u[i] + alpha * (u[i-1] - 2 u[i] + u[i+1]),  fixed boundaries.
//
//   $ ./heat1d [cells] [steps]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "machine/engine.hpp"

int main(int argc, char** argv) {
  using namespace valpipe;
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 200;

  const std::string source =
      "const m = " + std::to_string(n) + "\n" + R"(
function heat(U: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    D : real := if (i = 0) | (i = m+1) then 0.
                else U[i-1] - 2.*U[i] + U[i+1] endif;
  construct U[i] + 0.2 * D
  endall
endfun
)";

  const core::CompiledProgram prog = core::compileSource(source);
  const dfg::Graph machineCode = dfg::expandFifos(prog.graph);

  // Initial condition: a hot spike in the middle of a cold rod.
  std::vector<Value> u(static_cast<std::size_t>(n + 2), Value(0.0));
  u[static_cast<std::size_t>(n / 2)] = Value(100.0);
  u[static_cast<std::size_t>(n / 2 + 1)] = Value(100.0);

  std::printf("heat1d: %d interior cells, %d time steps\n", n, steps);
  std::printf("machine code: %zu instruction cells\n", machineCode.size());

  std::uint64_t totalCycles = 0;
  double steadyRate = 0.0;
  for (int step = 0; step < steps; ++step) {
    machine::RunOptions opts;
    opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
    const machine::MachineResult res = machine::simulate(
        machineCode, machine::MachineConfig::unit(), {{"U", u}}, opts);
    if (!res.completed) {
      std::fprintf(stderr, "step %d did not complete: %s\n", step,
                   res.note.c_str());
      return 1;
    }
    u = res.outputs.at(prog.outputName);  // next step's field (via AM in a
                                          // full machine; host-held here)
    totalCycles += static_cast<std::uint64_t>(res.cycles);
    steadyRate = res.steadyRate(prog.outputName);
  }

  double total = 0.0, peak = 0.0;
  for (const Value& v : u) {
    total += v.toReal();
    peak = std::max(peak, v.toReal());
  }
  std::printf("after %d steps: peak %.3f, total heat %.3f (initial 200; boundaries absorb)\n",
              steps, peak, total);
  std::printf("per-step steady rate %.3f results/instruction time; %llu "
              "instruction times total\n",
              steadyRate, static_cast<unsigned long long>(totalCycles));

  // Render the final profile coarsely.
  std::printf("profile: ");
  for (int i = 0; i <= n + 1; i += std::max(1, (n + 2) / 32)) {
    const double v = u[static_cast<std::size_t>(i)].toReal();
    std::printf("%c", v > 10 ? '#' : v > 3 ? '+' : v > 0.5 ? '.' : ' ');
  }
  std::printf("\n");
  return 0;
}
