// A deeper pipe-structured program (§4/§8): a four-block signal chain —
// smooth, rectify/compress with a data-dependent conditional, accumulate
// with a recurrence, then normalize — the shape of "several hundred block"
// application codes the paper describes, in miniature.
//
//   $ ./smoothing_chain [n] [waves]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/paths.hpp"
#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "dfg/stats.hpp"
#include "machine/engine.hpp"
#include "val/eval.hpp"

int main(int argc, char** argv) {
  using namespace valpipe;
  const int n = argc > 1 ? std::atoi(argv[1]) : 256;
  const int waves = argc > 2 ? std::atoi(argv[2]) : 4;

  const std::string source =
      "const n = " + std::to_string(n) + "\n" + R"(
function chain(S: array[real] [0, n+1] returns array[real])
  let
    % three-point smoothing (interior only; boundaries pass through)
    F : array[real] := forall i in [0, n+1]
        P : real := if (i = 0) | (i = n+1) then S[i]
                    else 0.25 * (S[i-1] + 2.*S[i] + S[i+1]) endif;
      construct P endall;
    % soft compression: halve anything above the knee (data-dependent)
    G : array[real] := forall i in [1, n]
      construct if F[i] > 0.5 then 0.5 + 0.5 * (F[i] - 0.5) else F[i] endif
      endall;
    % leaky running accumulation (first-order linear recurrence)
    H : array[real] := for i : integer := 1;
        T : array[real] := [0: 0]
      do let P : real := 0.9 * T[i-1] + 0.1 * G[i]
         in if i < n + 1 then iter T := T[i: P]; i := i + 1 enditer
            else T endif
         endlet
      endfor;
    % rescale to percent
    R : array[real] := forall i in [1, n] construct 100. * H[i] endall
  in R endlet
endfun
)";

  const core::CompiledProgram prog = core::compileSource(source);
  std::printf("compiled 4-block pipe-structured program\n");
  std::printf("  %s\n", dfg::computeStats(prog.graph).str().c_str());
  std::printf("  balancing: %zu buffer stages in %zu FIFOs (optimal mode)\n",
              prog.balance.buffersInserted, prog.balance.fifoNodes);
  for (const auto& b : prog.blocks)
    std::printf("  block %-2s %-24s predicted rate %.3f\n", b.name.c_str(),
                b.scheme.c_str(), b.predictedRate);
  const auto bal = analysis::checkBalanced(prog.graph);
  std::printf("  structurally balanced: %s\n", bal.balanced ? "yes" : "no");

  // Drive `waves` input arrays through the pipeline back to back.
  std::vector<Value> s;
  for (int i = 0; i <= n + 1; ++i)
    s.push_back(Value(0.6 + 0.4 * ((i * 37) % 100) / 100.0 - 0.3));
  machine::RunOptions opts;
  opts.waves = waves;
  opts.expectedOutputs[prog.outputName] =
      prog.expectedOutputPerWave() * waves;
  const machine::MachineResult res =
      machine::simulate(dfg::expandFifos(prog.graph),
                        machine::MachineConfig::unit(), {{"S", s}}, opts);
  if (!res.completed) {
    std::fprintf(stderr, "run failed: %s\n", res.note.c_str());
    return 1;
  }
  std::printf(
      "\nmachine run: %d waves of %d samples in %lld instruction times\n",
      waves, n, static_cast<long long>(res.cycles));
  std::printf("steady output rate %.3f results/instruction time (max 0.5)\n",
              res.steadyRate(prog.outputName));
  std::printf("array-memory share of operation packets: %.4f\n",
              res.packets.amShare());

  // Cross-check one wave against the reference evaluator.
  val::Module mod = core::frontend(source);
  val::ArrayMap in;
  in["S"] = val::ArrayVal{0, s};
  const val::EvalResult ref = val::evaluate(mod, in);
  double err = 0.0;
  for (std::size_t k = 0; k < ref.result.elems.size(); ++k)
    err = std::max(err,
                   std::abs(res.outputs.at(prog.outputName)[k].toReal() -
                            ref.result.elems[k].toReal()));
  std::printf("max |machine - reference| over wave 1: %.3g\n", err);
  return 0;
}
