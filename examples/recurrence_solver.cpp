// First-order linear recurrence solver (the paper's Example 2 workload):
//   x_i = a_i * x_{i-1} + b_i
// compiled three ways — Todd's scheme (Fig. 7), the companion-pipeline
// scheme (Fig. 8) and the §9 long-FIFO interleaving — and raced on the
// machine model.  This is e.g. an exponentially-weighted moving average or a
// one-pole IIR filter over a signal.
//
//   $ ./recurrence_solver [n]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "machine/engine.hpp"
#include "support/text.hpp"
#include "val/eval.hpp"

int main(int argc, char** argv) {
  using namespace valpipe;
  const int n = argc > 1 ? std::atoi(argv[1]) : 1024;

  // EWMA with a per-sample smoothing factor: x_i = (1-w_i) x_{i-1} + w_i s_i.
  const std::string source =
      "const n = " + std::to_string(n) + "\n" + R"(
function ewma(W, S: array[real] [1, n] returns array[real])
  for i : integer := 1;
      X : array[real] := [0: 0]
  do let P : real := (1. - W[i]) * X[i-1] + W[i] * S[i]
     in if i < n + 1 then iter X := X[i: P]; i := i + 1 enditer
        else X endif
     endlet
  endfor
endfun
)";

  val::Module mod = core::frontend(source);

  // A noisy signal and mild smoothing weights.
  val::ArrayMap inputs;
  {
    val::ArrayVal w{1, {}}, s{1, {}};
    for (int i = 1; i <= n; ++i) {
      w.elems.push_back(Value(0.2));
      s.elems.push_back(Value(std::sin(0.05 * i) + 0.3 * std::sin(1.7 * i)));
    }
    inputs["W"] = w;
    inputs["S"] = s;
  }
  const val::EvalResult ref = val::evaluate(mod, inputs);

  TextTable table({"scheme", "cells", "cycle S", "packets k", "rate", "cycles",
                   "max |err|"});

  auto race = [&](const char* name, const core::CompileOptions& opts,
                  int batch) {
    const core::CompiledProgram prog = core::compile(mod, opts);
    const dfg::Graph code = dfg::expandFifos(prog.graph);

    run::StreamMap streams;
    if (batch <= 1) {
      streams["W"] = inputs.at("W").elems;
      streams["S"] = inputs.at("S").elems;
    } else {
      // Long-FIFO mode: interleave `batch` copies of the same instance.
      for (const char* in : {"W", "S"}) {
        std::vector<Value> v;
        for (const Value& x : inputs.at(in).elems)
          for (int b = 0; b < batch; ++b) v.push_back(x);
        streams[in] = std::move(v);
      }
    }
    machine::RunOptions ropts;
    ropts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
    const machine::MachineResult res =
        machine::simulate(code, machine::MachineConfig::unit(), streams, ropts);

    double err = 0.0;
    const auto& out = res.outputs.at(prog.outputName);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const std::size_t i = batch <= 1 ? k : k / static_cast<std::size_t>(batch);
      err = std::max(err, std::fabs(out[k].toReal() -
                                    ref.result.elems[i].toReal()));
    }
    table.addRow({name, std::to_string(code.size()),
                  std::to_string(prog.blocks[0].cycleStages),
                  std::to_string(prog.blocks[0].cycleTokens),
                  fmtDouble(res.steadyRate(prog.outputName), 3),
                  std::to_string(res.cycles), fmtDouble(err, 2)});
  };

  core::CompileOptions todd;
  todd.forIterScheme = core::ForIterScheme::Todd;
  race("todd (fig 7)", todd, 1);

  for (int k : {2, 4, 8}) {
    core::CompileOptions comp;
    comp.forIterScheme = core::ForIterScheme::Companion;
    comp.companionSkip = k;
    race(("companion k=" + std::to_string(k)).c_str(), comp, 1);
  }

  core::CompileOptions lf;
  lf.forIterScheme = core::ForIterScheme::LongFifo;
  lf.interleave = 4;
  race("longfifo B=4", lf, 4);

  std::printf("first-order recurrence over %d samples, unit machine model\n\n%s",
              n, table.str().c_str());
  std::printf(
      "\nTodd's cycle serializes at 1/3; the companion pipeline and the\n"
      "long-FIFO interleave both restore the machine's 1/2 maximum.\n");
  return 0;
}
