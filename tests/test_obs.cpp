// Observability subsystem (src/obs/): the §3 max-pipelining auditor and the
// cross-scheduler trace determinism contract.
//
// The auditor must certify the balanced Figure 2 pipeline, flag a
// deliberately unbalanced reconvergence by name with a structural
// explanation, and pass again once core::balanceGraph repairs the graph.
// The trace contract: Fire / Result / Ack streams are identical across
// every SchedulerKind and shard count; FuDenied additionally matches
// between EventDriven and ParallelEventDriven.
#include "testing.hpp"

#include <sstream>

#include "core/balance.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/rate_report.hpp"
#include "obs/trace.hpp"

namespace valpipe {
namespace {

using dfg::Graph;
using dfg::Op;

/// Figure 2's machine code: MULT feeding ADD and SUB, reconverging in MULT.
/// Balanced by construction — both paths cell1 -> cell4 are two stages.
Graph figure2Graph(std::int64_t n) {
  Graph g;
  const auto a = g.input("a", n);
  const auto b = g.input("b", n);
  const auto y =
      g.binary(Op::Mul, Graph::out(a), Graph::out(b), "cell1");
  const auto p = g.binary(Op::Add, Graph::out(y),
                          Graph::lit(Value(2.0)), "cell2");
  const auto q = g.binary(Op::Sub, Graph::out(y),
                          Graph::lit(Value(3.0)), "cell3");
  const auto r =
      g.binary(Op::Mul, Graph::out(p), Graph::out(q), "cell4");
  g.output("x", Graph::out(r));
  return g;
}

/// Figure 2 with the SUB arm removed: y reaches the final MULT both directly
/// and through the ADD, so the direct arc is one stage short and the
/// capacity-1 acknowledge discipline cannot sustain the period-2 rate.
Graph unbalancedGraph(std::int64_t n) {
  Graph g;
  const auto a = g.input("a", n);
  const auto b = g.input("b", n);
  const auto y = g.binary(Op::Mul, Graph::out(a), Graph::out(b), "y");
  const auto p = g.binary(Op::Add, Graph::out(y),
                          Graph::lit(Value(2.0)), "stage2");
  const auto r =
      g.binary(Op::Mul, Graph::out(p), Graph::out(y), "join");
  g.output("x", Graph::out(r));
  return g;
}

run::StreamMap figure2Inputs(std::int64_t n) {
  run::StreamMap in;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const char* name : {"a", "b"}) {
    std::vector<Value> v;
    for (std::int64_t i = 0; i < n; ++i) v.push_back(Value(dist(rng)));
    in[name] = std::move(v);
  }
  return in;
}

machine::MachineResult runWithSinks(const Graph& lowered,
                                    obs::MetricsSink* metrics,
                                    obs::TraceSink* trace,
                                    machine::SchedulerKind kind,
                                    int threads = 0,
                                    machine::MachineConfig cfg =
                                        machine::MachineConfig::unit()) {
  machine::RunOptions opts;
  opts.scheduler = kind;
  opts.threads = threads;
  opts.metrics = metrics;
  opts.trace = trace;
  const std::int64_t len = 256;
  opts.expectedOutputs["x"] = len;
  return machine::simulate(lowered, cfg, figure2Inputs(len), opts);
}

TEST(RateAuditor, CertifiesBalancedFigure2) {
  const Graph g = figure2Graph(256);
  obs::MetricsSink metrics;
  const auto res = runWithSinks(g, &metrics, nullptr,
                                machine::SchedulerKind::EventDriven);
  ASSERT_TRUE(res.completed) << res.note;

  const obs::RateReport report = obs::auditMaxPipelining(g, metrics);
  EXPECT_TRUE(report.fullyPipelined) << report.line();
  EXPECT_EQ(report.offenders.size(), 0u);
  EXPECT_GT(report.auditedCells, 0u);
  EXPECT_NE(report.line().find("fully pipelined: yes"), std::string::npos);

  // Theorem 1 at cell granularity: every compute cell settles at period 2.
  for (std::uint32_t c = 0; c < g.size(); ++c) {
    const std::int64_t period = metrics.steadyPeriod(c);
    if (period < 0) continue;
    EXPECT_LE(period, 2) << obs::cellDisplayName(g, c);
  }
}

TEST(RateAuditor, MetricsFiringsMatchEngineFirings) {
  const Graph g = figure2Graph(256);
  obs::MetricsSink metrics;
  const auto res = runWithSinks(g, &metrics, nullptr,
                                machine::SchedulerKind::EventDriven);
  ASSERT_TRUE(res.completed) << res.note;
  ASSERT_EQ(metrics.cellCount(), res.firings.size());
  for (std::uint32_t c = 0; c < res.firings.size(); ++c)
    EXPECT_EQ(metrics.cell(c).firings, res.firings[c]) << "cell " << c;
}

TEST(RateAuditor, FlagsUnbalancedReconvergenceByName) {
  const Graph g = unbalancedGraph(256);
  obs::MetricsSink metrics;
  const auto res = runWithSinks(g, &metrics, nullptr,
                                machine::SchedulerKind::EventDriven);
  ASSERT_TRUE(res.completed) << res.note;

  const obs::RateReport report = obs::auditMaxPipelining(g, metrics);
  EXPECT_FALSE(report.fullyPipelined);
  ASSERT_FALSE(report.offenders.empty());
  EXPECT_NE(report.line().find("fully pipelined: NO"), std::string::npos);

  // The structural diagnosis must name the short arc into the join.
  bool foundPath = false;
  for (const std::string& d : report.diagnosis)
    if (d.find("unbalanced path") != std::string::npos &&
        d.find("y") != std::string::npos &&
        d.find("join") != std::string::npos)
      foundPath = true;
  EXPECT_TRUE(foundPath) << report.line();

  // print() renders the line plus indented diagnosis.
  std::ostringstream ss;
  report.print(ss);
  EXPECT_NE(ss.str().find("unbalanced path"), std::string::npos);
}

TEST(RateAuditor, BalancingRepairsTheUnbalancedGraph) {
  Graph g = unbalancedGraph(256);
  core::balanceGraph(g, core::BalanceMode::Optimal);
  const Graph lowered = dfg::expandFifos(g);

  obs::MetricsSink metrics;
  const auto res = runWithSinks(lowered, &metrics, nullptr,
                                machine::SchedulerKind::EventDriven);
  ASSERT_TRUE(res.completed) << res.note;
  const obs::RateReport report = obs::auditMaxPipelining(lowered, metrics);
  EXPECT_TRUE(report.fullyPipelined) << report.line();
}

TEST(Trace, IdenticalAcrossAllSchedulersUnderUnitProfile) {
  const Graph g = figure2Graph(256);

  obs::TraceSink ref, sync, ed;
  runWithSinks(g, nullptr, &ref, machine::SchedulerKind::Reference);
  runWithSinks(g, nullptr, &sync, machine::SchedulerKind::Synchronous);
  runWithSinks(g, nullptr, &ed, machine::SchedulerKind::EventDriven);
  ASSERT_TRUE(ref.sealed());
  ASSERT_TRUE(ed.sealed());
  ASSERT_FALSE(ed.events().empty());

  // Unit profile has unlimited units, so no FuDenied events exist and the
  // full streams must match across every scheduler.
  EXPECT_TRUE(obs::TraceSink::sameSchedule(ref, ed));
  EXPECT_TRUE(obs::TraceSink::sameSchedule(sync, ed));

  for (int threads : {1, 2, 4}) {
    obs::TraceSink ped;
    runWithSinks(g, nullptr, &ped,
                 machine::SchedulerKind::ParallelEventDriven, threads);
    ASSERT_TRUE(ped.sealed()) << threads << " shards";
    EXPECT_TRUE(obs::TraceSink::sameSchedule(ed, ped))
        << threads << " shards";
  }
}

TEST(Trace, FuDeniedMatchesBetweenEventDrivenAndParallel) {
  const Graph g = figure2Graph(256);
  // One FPU forces contention: every firing competes for the single unit.
  const machine::MachineConfig cfg = machine::MachineConfig::hardware(1, 1, 1);

  obs::TraceSink ed;
  const auto resEd = runWithSinks(g, nullptr, &ed,
                                  machine::SchedulerKind::EventDriven, 0, cfg);
  ASSERT_TRUE(resEd.completed) << resEd.note;

  bool sawDenied = false;
  for (const obs::Event& e : ed.events())
    if (e.kind == obs::EventKind::FuDenied) sawDenied = true;
  EXPECT_TRUE(sawDenied) << "contention config produced no FuDenied events";

  for (int threads : {2, 4}) {
    obs::TraceSink ped;
    const auto resPed =
        runWithSinks(g, nullptr, &ped,
                     machine::SchedulerKind::ParallelEventDriven, threads, cfg);
    ASSERT_TRUE(resPed.completed) << resPed.note;
    EXPECT_TRUE(obs::TraceSink::sameSchedule(ed, ped))
        << threads << " shards";
  }
}

TEST(Trace, ChromeExportAndMetricsJsonAreWellFormedSmoke) {
  const Graph g = figure2Graph(256);
  obs::TraceSink trace;
  obs::MetricsSink metrics;
  runWithSinks(g, &metrics, &trace, machine::SchedulerKind::EventDriven);

  std::ostringstream chrome;
  obs::writeChromeTrace(chrome, trace);
  EXPECT_NE(chrome.str().find("traceEvents"), std::string::npos);
  EXPECT_NE(chrome.str().find("cell1"), std::string::npos);

  std::ostringstream json;
  metrics.writeJson(json, &trace.meta());
  EXPECT_NE(json.str().find("\"scheduler\": \"EventDriven\""),
            std::string::npos);
  EXPECT_NE(json.str().find("cell1"), std::string::npos);
  EXPECT_NE(json.str().find("steady_period"), std::string::npos);
}

}  // namespace
}  // namespace valpipe
