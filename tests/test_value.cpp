// Unit tests for the Value scalar type and its operation set.
#include <gtest/gtest.h>

#include "support/value.hpp"

namespace valpipe {
namespace {

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value(true).kind(), ValueKind::Boolean);
  EXPECT_EQ(Value(std::int64_t{7}).kind(), ValueKind::Integer);
  EXPECT_EQ(Value(2.5).kind(), ValueKind::Real);
  EXPECT_TRUE(Value(true).asBoolean());
  EXPECT_EQ(Value(7).asInteger(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).asReal(), 2.5);
}

TEST(Value, DefaultIsIntegerZero) {
  Value v;
  EXPECT_TRUE(v.isInteger());
  EXPECT_EQ(v.asInteger(), 0);
}

TEST(Value, AccessorTypeErrors) {
  EXPECT_THROW(Value(1.0).asInteger(), ValueError);
  EXPECT_THROW(Value(1).asReal(), ValueError);
  EXPECT_THROW(Value(1).asBoolean(), ValueError);
  EXPECT_THROW(Value(true).toReal(), ValueError);
}

TEST(Value, ToRealWidensIntegers) {
  EXPECT_DOUBLE_EQ(Value(3).toReal(), 3.0);
  EXPECT_DOUBLE_EQ(Value(0.25).toReal(), 0.25);
}

TEST(Value, StructuralEquality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(1.0));  // kind-sensitive
  EXPECT_NE(Value(true), Value(1));
}

TEST(ValueOps, IntegerArithmeticStaysIntegral) {
  EXPECT_EQ(ops::add(Value(2), Value(3)), Value(5));
  EXPECT_EQ(ops::sub(Value(2), Value(3)), Value(-1));
  EXPECT_EQ(ops::mul(Value(4), Value(3)), Value(12));
  EXPECT_EQ(ops::div(Value(7), Value(2)), Value(3));  // integer division
}

TEST(ValueOps, MixedArithmeticPromotesToReal) {
  const Value v = ops::add(Value(2), Value(0.5));
  EXPECT_TRUE(v.isReal());
  EXPECT_DOUBLE_EQ(v.asReal(), 2.5);
  EXPECT_DOUBLE_EQ(ops::mul(Value(3), Value(0.5)).asReal(), 1.5);
}

TEST(ValueOps, DivisionByZeroThrows) {
  EXPECT_THROW(ops::div(Value(1), Value(0)), ValueError);
  EXPECT_THROW(ops::div(Value(1.0), Value(0.0)), ValueError);
}

TEST(ValueOps, Comparisons) {
  EXPECT_EQ(ops::lt(Value(1), Value(2)), Value(true));
  EXPECT_EQ(ops::le(Value(2), Value(2)), Value(true));
  EXPECT_EQ(ops::gt(Value(1), Value(2)), Value(false));
  EXPECT_EQ(ops::ge(Value(1.5), Value(2)), Value(false));
  EXPECT_EQ(ops::eq(Value(2), Value(2.0)), Value(true));  // numeric equality
  EXPECT_EQ(ops::ne(Value(2), Value(3)), Value(true));
  EXPECT_EQ(ops::eq(Value(true), Value(true)), Value(true));
}

TEST(ValueOps, BooleanOps) {
  EXPECT_EQ(ops::logicalAnd(Value(true), Value(false)), Value(false));
  EXPECT_EQ(ops::logicalOr(Value(true), Value(false)), Value(true));
  EXPECT_EQ(ops::logicalNot(Value(false)), Value(true));
  EXPECT_THROW(ops::logicalAnd(Value(1), Value(true)), ValueError);
}

TEST(ValueOps, NegAbsMinMax) {
  EXPECT_EQ(ops::neg(Value(4)), Value(-4));
  EXPECT_DOUBLE_EQ(ops::neg(Value(-2.5)).asReal(), 2.5);
  EXPECT_EQ(ops::abs(Value(-4)), Value(4));
  EXPECT_DOUBLE_EQ(ops::abs(Value(-2.5)).asReal(), 2.5);
  EXPECT_EQ(ops::min(Value(3), Value(5)), Value(3));
  EXPECT_EQ(ops::max(Value(3), Value(5)), Value(5));
  EXPECT_DOUBLE_EQ(ops::max(Value(3), Value(5.5)).asReal(), 5.5);
}

TEST(ValueOps, ArithmeticRejectsBooleans) {
  EXPECT_THROW(ops::add(Value(true), Value(1)), ValueError);
  EXPECT_THROW(ops::lt(Value(true), Value(1)), ValueError);
}

TEST(Value, Printing) {
  EXPECT_EQ(Value(true).str(), "true");
  EXPECT_EQ(Value(42).str(), "42");
  EXPECT_EQ(Value(2.5).str(), "2.5");
}

}  // namespace
}  // namespace valpipe
