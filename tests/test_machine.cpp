// Unit tests for the timed machine engine: the §3 repetition-rate law,
// unbalanced-graph slowdown, cycle rates k/S, latency/ack/routing models,
// function-unit contention and packet accounting.
#include <gtest/gtest.h>

#include "dfg/graph.hpp"
#include "dfg/lower.hpp"
#include "machine/engine.hpp"
#include "support/check.hpp"

namespace valpipe::machine {
namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;

std::vector<Value> ramp(int n) {
  std::vector<Value> out;
  for (int i = 0; i < n; ++i) out.push_back(Value(static_cast<double>(i)));
  return out;
}

MachineResult run(const Graph& g, const run::StreamMap& in, std::int64_t expect,
                  MachineConfig cfg = MachineConfig::unit()) {
  RunOptions opts;
  opts.expectedOutputs["out"] = expect;
  return simulate(dfg::expandFifos(g), cfg, in, opts);
}

TEST(Machine, ChainRunsAtHalfRate) {
  // §3: an instruction's repetition period is two instruction times.
  const int n = 256;
  Graph g;
  const NodeId in = g.input("a", n);
  const NodeId i1 = g.identity(Graph::out(in));
  const NodeId i2 = g.identity(Graph::out(i1));
  g.output("out", Graph::out(i2));
  const auto res = run(g, {{"a", ramp(n)}}, n);
  EXPECT_TRUE(res.completed);
  EXPECT_NEAR(res.steadyRate("out"), 0.5, 1e-3);
}

TEST(Machine, RateIndependentOfPipelineDepth) {
  // "the computation rate of a pipeline is not dependent on the number of
  // stages" (§3).
  const int n = 256;
  for (int depth : {1, 4, 16, 64}) {
    Graph g;
    PortSrc cur = Graph::out(g.input("a", n));
    for (int d = 0; d < depth; ++d) cur = Graph::out(g.identity(cur));
    g.output("out", cur);
    const auto res = run(g, {{"a", ramp(n)}}, n);
    EXPECT_NEAR(res.steadyRate("out"), 0.5, 1e-2) << "depth " << depth;
  }
}

TEST(Machine, UnbalancedReconvergenceLosesRate) {
  const int n = 256;
  Graph g;
  const NodeId in = g.input("a", n);
  const NodeId shortPath = g.identity(Graph::out(in));
  PortSrc lng = Graph::out(in);
  for (int d = 0; d < 3; ++d) lng = Graph::out(g.identity(lng));
  const NodeId join = g.binary(Op::Add, Graph::out(shortPath), lng);
  g.output("out", Graph::out(join));
  const auto res = run(g, {{"a", ramp(n)}}, n);
  EXPECT_LT(res.steadyRate("out"), 0.45);

  // Balancing the short path with a FIFO restores the full rate.
  Graph g2;
  const NodeId in2 = g2.input("a", n);
  const PortSrc balanced = g2.fifo(Graph::out(g2.identity(Graph::out(in2))), 2);
  PortSrc lng2 = Graph::out(in2);
  for (int d = 0; d < 3; ++d) lng2 = Graph::out(g2.identity(lng2));
  g2.output("out", Graph::out(g2.binary(Op::Add, balanced, lng2)));
  const auto res2 = run(g2, {{"a", ramp(n)}}, n);
  EXPECT_NEAR(res2.steadyRate("out"), 0.5, 1e-2);
}

TEST(Machine, CycleRateIsTokensOverStages) {
  // A 3-cell loop carrying one packet runs at 1/3 (Fig. 7's limit).
  const int n = 240;
  Graph g;
  const NodeId entry = g.identity(Graph::lit(Value(0)));
  const NodeId step = g.binary(Op::Add, Graph::out(entry), Graph::lit(Value(1)));
  dfg::BoolPattern ctlBits, outBits;
  for (int i = 0; i <= n; ++i) {
    ctlBits.bits.push_back(i != 0);
    outBits.bits.push_back(i != n);
  }
  const NodeId ctl = g.boolSeq(ctlBits);
  const NodeId mg = g.merge(Graph::out(ctl), Graph::out(step), Graph::lit(Value(0)));
  g.node(mg).gate = Graph::out(g.boolSeq(outBits));
  PortSrc back = Graph::outT(mg);
  back.feedback = true;
  g.node(entry).inputs[0] = back;
  g.output("out", Graph::out(mg));
  const auto res = run(g, {}, n + 1);
  EXPECT_NEAR(res.steadyRate("out"), 1.0 / 3.0, 5e-3);
}

TEST(Machine, ExecLatencyStretchesPeriod) {
  const int n = 128;
  Graph g;
  const NodeId in = g.input("a", n);
  const NodeId f = g.binary(Op::Mul, Graph::out(in), Graph::lit(Value(2.0)));
  g.output("out", Graph::out(f));
  MachineConfig cfg;
  cfg.execLatency[static_cast<int>(dfg::FuClass::Fpu)] = 4;
  const auto res = run(g, {{"a", ramp(n)}}, n, cfg);
  // Non-pipelined 4-cycle FPU op: period L+1 = 5.
  EXPECT_NEAR(res.steadyRate("out"), 1.0 / 5.0, 2e-2);
}

TEST(Machine, FuContentionThrottles) {
  const int n = 128;
  Graph g;
  const NodeId a = g.input("a", n);
  const NodeId b = g.input("b", n);
  const NodeId m1 = g.binary(Op::Mul, Graph::out(a), Graph::lit(Value(2.0)));
  const NodeId m2 = g.binary(Op::Mul, Graph::out(b), Graph::lit(Value(3.0)));
  const NodeId s = g.binary(Op::Add, Graph::out(m1), Graph::out(m2));
  g.output("out", Graph::out(s));

  MachineConfig one;
  one.fuUnits[static_cast<int>(dfg::FuClass::Fpu)] = 1;
  one.execLatency[static_cast<int>(dfg::FuClass::Fpu)] = 2;
  const auto starved = run(g, {{"a", ramp(n)}, {"b", ramp(n)}}, n, one);

  MachineConfig four = one;
  four.fuUnits[static_cast<int>(dfg::FuClass::Fpu)] = 4;
  const auto fed = run(g, {{"a", ramp(n)}, {"b", ramp(n)}}, n, four);
  EXPECT_GT(fed.steadyRate("out"), starved.steadyRate("out") * 1.3);
  EXPECT_TRUE(starved.completed);
}

TEST(Machine, RoutingAndAckDelaysSlowTheClock) {
  const int n = 128;
  Graph g;
  const NodeId in = g.input("a", n);
  g.output("out", Graph::out(g.identity(Graph::out(in))));
  MachineConfig slow;
  slow.routeDelay = 2;
  slow.ackDelay = 2;
  const auto res = run(g, {{"a", ramp(n)}}, n, slow);
  EXPECT_TRUE(res.completed);
  EXPECT_LT(res.steadyRate("out"), 0.34);
  EXPECT_GT(res.steadyRate("out"), 0.15);
}

TEST(Machine, PacketAccounting) {
  const int n = 16;
  Graph g;
  const NodeId in = g.input("a", n);
  const NodeId f = g.binary(Op::Mul, Graph::out(in), Graph::lit(Value(2.0)));
  g.amStore("mem", Graph::out(f));
  const NodeId fetch = g.amFetch("mem", n);
  g.output("out", Graph::out(fetch));
  const auto res = run(g, {{"a", ramp(n)}}, n);
  ASSERT_TRUE(res.completed);
  const auto& pk = res.packets;
  // op packets: n input + n mul + n store + n fetch + n output firings.
  EXPECT_EQ(pk.opPacketsTotal(), static_cast<std::uint64_t>(5 * n));
  EXPECT_EQ(pk.opPacketsByClass[static_cast<int>(dfg::FuClass::Am)],
            static_cast<std::uint64_t>(2 * n));
  EXPECT_DOUBLE_EQ(pk.amShare(), 0.4);
  // result packets: in->mul, mul->store, fetch->out = 3n deliveries.
  EXPECT_EQ(pk.resultPackets, static_cast<std::uint64_t>(3 * n));
  EXPECT_EQ(pk.ackPackets, static_cast<std::uint64_t>(3 * n));
}

TEST(Machine, DeadlockReported) {
  Graph g;
  const NodeId entry = g.identity(Graph::lit(Value(0)));
  const NodeId step = g.binary(Op::Add, Graph::out(entry), Graph::lit(Value(1)));
  PortSrc back = Graph::out(step);
  back.feedback = true;
  g.node(entry).inputs[0] = back;  // loop with no initial token
  g.output("out", Graph::out(step));
  RunOptions opts;
  opts.expectedOutputs["out"] = 4;
  const auto res = simulate(dfg::expandFifos(g), MachineConfig::unit(), {}, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_NE(res.note.find("deadlock"), std::string::npos);
}

// The engine accepts both lowerings of a FIFO: a composite Op::Fifo cell
// runs directly (the fused path) and must match the expanded Id chain on
// outputs and output times.
TEST(Machine, CompositeFifoMatchesExpandedChain) {
  Graph g;
  const NodeId in = g.input("a", 4);
  g.output("out", g.fifo(Graph::out(in), 2));
  const auto fused = simulate(g, MachineConfig::unit(), {{"a", ramp(4)}}, {});
  const auto expanded = simulate(dfg::expandFifos(g), MachineConfig::unit(),
                                 {{"a", ramp(4)}}, {});
  EXPECT_EQ(fused.outputs.at("out"), expanded.outputs.at("out"));
  EXPECT_EQ(fused.outputTimes.at("out"), expanded.outputTimes.at("out"));
}

TEST(Machine, OutputTimesAreMonotone) {
  const int n = 64;
  Graph g;
  const NodeId in = g.input("a", n);
  g.output("out", Graph::out(in));
  const auto res = run(g, {{"a", ramp(n)}}, n);
  const auto& times = res.outputTimes.at("out");
  ASSERT_EQ(times.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_GT(times[i], times[i - 1]);
}

}  // namespace
}  // namespace valpipe::machine
