// Unit tests for the Val lexer.
#include <gtest/gtest.h>

#include "val/lexer.hpp"

namespace valpipe::val {
namespace {

std::vector<Token> lexOk(std::string_view src) {
  Diagnostics diags;
  auto toks = lex(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return toks;
}

std::vector<Tok> kinds(std::string_view src) {
  std::vector<Tok> out;
  for (const Token& t : lexOk(src)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto toks = lexOk("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, Tok::EndOfFile);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto toks = lexOk("forall foo endall for_2 iter");
  EXPECT_EQ(toks[0].kind, Tok::KwForall);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "foo");
  EXPECT_EQ(toks[2].kind, Tok::KwEndall);
  EXPECT_EQ(toks[3].kind, Tok::Ident);  // for_2 is one identifier
  EXPECT_EQ(toks[3].text, "for_2");
  EXPECT_EQ(toks[4].kind, Tok::KwIter);
}

TEST(Lexer, IntegerLiterals) {
  const auto toks = lexOk("0 42 1000000");
  EXPECT_EQ(toks[0].intValue, 0);
  EXPECT_EQ(toks[1].intValue, 42);
  EXPECT_EQ(toks[2].intValue, 1000000);
}

TEST(Lexer, RealLiterals) {
  const auto toks = lexOk("0.25 2. 5.e2 1e3 3.5e-1");
  EXPECT_EQ(toks[0].kind, Tok::RealLit);
  EXPECT_DOUBLE_EQ(toks[0].realValue, 0.25);
  EXPECT_EQ(toks[1].kind, Tok::RealLit);  // the paper writes "2." and "3."
  EXPECT_DOUBLE_EQ(toks[1].realValue, 2.0);
  EXPECT_DOUBLE_EQ(toks[2].realValue, 500.0);
  EXPECT_DOUBLE_EQ(toks[3].realValue, 1000.0);
  EXPECT_DOUBLE_EQ(toks[4].realValue, 0.35);
}

TEST(Lexer, BareExponentIsNotConsumed) {
  // "1e" must lex as integer 1 followed by identifier e.
  const auto toks = lexOk("1e");
  EXPECT_EQ(toks[0].kind, Tok::IntLit);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "e");
}

TEST(Lexer, OperatorsAndPunctuation) {
  EXPECT_EQ(kinds(":= : <= >= < > = ~= ~ & | + - * / ( ) [ ] , ;"),
            (std::vector<Tok>{Tok::Assign, Tok::Colon, Tok::Le, Tok::Ge,
                              Tok::Lt, Tok::Gt, Tok::Eq, Tok::Ne, Tok::Tilde,
                              Tok::Amp, Tok::Bar, Tok::Plus, Tok::Minus,
                              Tok::Star, Tok::Slash, Tok::LParen, Tok::RParen,
                              Tok::LBracket, Tok::RBracket, Tok::Comma,
                              Tok::Semicolon, Tok::EndOfFile}));
}

TEST(Lexer, CommentsRunToEndOfLine) {
  const auto toks = lexOk("a % this is ignored := ]\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lexOk("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.column, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(Lexer, ReportsUnknownCharacters) {
  Diagnostics diags;
  const auto toks = lex("a # b", diags);
  EXPECT_TRUE(diags.hasErrors());
  // Lexing continues past the bad character.
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, PaperExample1Fragment) {
  const auto toks =
      lexOk("0.25 * (C[i-1] + 2.*C[i] + C[i+1])");
  EXPECT_EQ(toks[0].kind, Tok::RealLit);
  EXPECT_EQ(toks[1].kind, Tok::Star);
  EXPECT_EQ(toks[2].kind, Tok::LParen);
  EXPECT_EQ(toks[3].text, "C");
  EXPECT_EQ(toks[4].kind, Tok::LBracket);
}

}  // namespace
}  // namespace valpipe::val
