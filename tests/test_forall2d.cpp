// Tests for the §9 extension: two-dimensional arrays streamed row-major
// through 2-D forall blocks (five-point stencils, boundary guards,
// row/column index streams, multi-block 2-D chains).
#include <gtest/gtest.h>

#include <random>

#include "analysis/paths.hpp"
#include "dfg/validate.hpp"
#include "val/classify.hpp"
#include "testing.hpp"

namespace valpipe {
namespace {

using testing::checkInterpreted;
using testing::checkMachine;

val::ArrayVal random2d(val::Range rows, val::Range cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  val::ArrayVal a;
  a.lo = rows.lo;
  a.lo2 = cols.lo;
  a.width = cols.length();
  for (std::int64_t k = 0; k < rows.length() * cols.length(); ++k)
    a.elems.push_back(Value(dist(rng)));
  return a;
}

std::string stencilSource(int h, int w) {
  return "const h = " + std::to_string(h) + "\nconst w = " +
         std::to_string(w) + "\n" + R"(
function stencil(U: array[real] [0, h+1] [0, w+1] returns array[real])
  forall i in [0, h+1], j in [0, w+1]
    D : real := if (i = 0) | (i = h+1) | (j = 0) | (j = w+1) then 0.
                else U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1]
                     - 4. * U[i, j] endif;
  construct U[i, j] + 0.2 * D
  endall
endfun
)";
}

TEST(Forall2d, ParserAndTypes) {
  val::Module m = core::frontend(stencilSource(4, 6));
  ASSERT_EQ(m.blocks.size(), 1u);
  ASSERT_TRUE(m.blocks[0].isForall());
  const val::ForallBlock& fb = m.blocks[0].forall();
  EXPECT_TRUE(fb.is2d());
  EXPECT_EQ(fb.indexVar, "i");
  EXPECT_EQ(fb.indexVar2, "j");
  EXPECT_TRUE(m.blocks[0].type.is2d());
  EXPECT_EQ(*m.blocks[0].type.range, (val::Range{0, 5}));
  EXPECT_EQ(*m.blocks[0].type.range2, (val::Range{0, 7}));
  EXPECT_EQ(m.blocks[0].type.streamLength(), 6 * 8);
  EXPECT_TRUE(val::isPipeStructured(m));
}

TEST(Forall2d, ReferenceEvaluator) {
  val::Module m = core::frontend(stencilSource(2, 2));
  val::ArrayMap in;
  // A 4x4 grid: all zeros with a 1 at the centre (1,1).
  val::ArrayVal u;
  u.lo = 0;
  u.lo2 = 0;
  u.width = 4;
  u.elems.assign(16, Value(0.0));
  u.elems[1 * 4 + 1] = Value(1.0);
  in["U"] = u;
  const auto res = val::evaluate(m, in);
  ASSERT_TRUE(res.result.is2d());
  // Centre loses 4*0.2, neighbours gain 0.2.
  EXPECT_NEAR(res.result.at2(1, 1).toReal(), 1.0 - 0.8, 1e-12);
  EXPECT_NEAR(res.result.at2(1, 2).toReal(), 0.2, 1e-12);
  EXPECT_NEAR(res.result.at2(2, 1).toReal(), 0.2, 1e-12);
  EXPECT_NEAR(res.result.at2(0, 1).toReal(), 0.0, 1e-12);  // boundary frozen
}

TEST(Forall2d, CompiledStencilMatchesReference) {
  const int h = 6, w = 5;
  val::Module m = core::frontend(stencilSource(h, w));
  val::ArrayMap in;
  in["U"] = random2d({0, h + 1}, {0, w + 1}, 11);
  const auto ref = val::evaluate(m, in);
  const auto prog = core::compile(m);
  EXPECT_TRUE(dfg::validate(prog.graph).ok());
  EXPECT_EQ(prog.blocks[0].scheme, "forall2d/pipeline");
  const auto bal = analysis::checkBalanced(prog.graph);
  EXPECT_TRUE(bal.balanced) << bal.reason;
  checkInterpreted(prog, in, ref.result.elems, 1e-12);
  checkMachine(prog, in, ref.result.elems, 1e-12);
}

TEST(Forall2d, StencilRunsAtFullRate) {
  const int h = 16, w = 16;
  val::Module m = core::frontend(stencilSource(h, w));
  val::ArrayMap in;
  in["U"] = random2d({0, h + 1}, {0, w + 1}, 13);
  const auto ref = val::evaluate(m, in);
  const auto prog = core::compile(m);
  // Theorem 2 extends: the 2-D pipeline sustains the machine maximum (a few
  // percent is lost to wave boundaries at this grid size).
  checkMachine(prog, in, ref.result.elems, 1e-12, /*waves=*/2,
               /*minRate=*/0.45, /*maxRate=*/0.5);
}

TEST(Forall2d, RowAndColumnIndexStreams) {
  const std::string src = R"(
const h = 3
const w = 4
function idx(U: array[real] [1, h] [1, w] returns array[real])
  forall i in [1, h], j in [1, w]
  construct U[i, j] * 0. + 10. * i + j
  endall
endfun
)";
  val::Module m = core::frontend(src);
  val::ArrayMap in;
  in["U"] = random2d({1, 3}, {1, 4}, 17);
  const auto ref = val::evaluate(m, in);
  const auto prog = core::compile(m);
  checkInterpreted(prog, in, ref.result.elems, 1e-12);
  // Spot-check the row-major order: element (2, 3) sits at position 1*4+2.
  EXPECT_DOUBLE_EQ(ref.result.elems[1 * 4 + 2].toReal(), 23.0);
}

TEST(Forall2d, TwoBlockChain) {
  const std::string src = R"(
const h = 5
const w = 5
function chain(U: array[real] [0, h+1] [0, w+1] returns array[real])
  let
    S : array[real] := forall i in [1, h], j in [1, w]
      construct 0.25 * (U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1])
      endall
    Q : array[real] := forall i in [1, h], j in [1, w]
      construct S[i, j] * S[i, j]
      endall
  in Q endlet
endfun
)";
  val::Module m = core::frontend(src);
  val::ArrayMap in;
  in["U"] = random2d({0, 6}, {0, 6}, 19);
  const auto ref = val::evaluate(m, in);
  const auto prog = core::compile(m);
  checkInterpreted(prog, in, ref.result.elems, 1e-12);
  checkMachine(prog, in, ref.result.elems, 1e-12);
}

TEST(Forall2d, OutOfRangeColumnRejected) {
  const std::string src = R"(
const h = 4
const w = 4
function f(U: array[real] [0, h] [0, w] returns array[real])
  forall i in [0, h], j in [0, w] construct U[i, j+1] endall
endfun
)";
  EXPECT_THROW(core::frontend(src), CompileError);
}

TEST(Forall2d, GuardedColumnAccessAccepted) {
  const std::string src = R"(
const h = 4
const w = 4
function f(U: array[real] [0, h] [0, w] returns array[real])
  forall i in [0, h], j in [0, w]
  construct if j = w then U[i, j] else U[i, j+1] endif endall
endfun
)";
  val::Module m = core::frontend(src);
  val::ArrayMap in;
  in["U"] = random2d({0, 4}, {0, 4}, 23);
  const auto ref = val::evaluate(m, in);
  const auto prog = core::compile(m);
  checkInterpreted(prog, in, ref.result.elems, 1e-12);
}

TEST(Forall2d, DimensionalityMismatchesRejected) {
  // 1-D selection on a 2-D array.
  EXPECT_THROW(core::frontend(R"(
const h = 4
function f(U: array[real] [0, h] [0, h] returns array[real])
  forall i in [0, h] construct U[i] endall
endfun
)"),
               CompileError);
  // 2-D selection on a 1-D array.
  EXPECT_THROW(core::frontend(R"(
const h = 4
function f(U: array[real] [0, h] returns array[real])
  forall i in [0, h], j in [0, h] construct U[i, j] endall
endfun
)"),
               CompileError);
  // 2-D for-iter accumulator.
  EXPECT_THROW(core::frontend(R"(
const h = 4
function f(U: array[real] [1, h] returns array[real])
  for i : integer := 1; T : array[real] [0, h] [0, h] := [0: 0]
  do if i < h then iter T := T[i: U[i]]; i := i + 1 enditer
     else T endif
  endfor
endfun
)"),
               CompileError);
}

TEST(Forall2d, ParallelSchemeRejected) {
  val::Module m = core::frontend(stencilSource(3, 3));
  core::CompileOptions opts;
  opts.forallScheme = core::ForallScheme::Parallel;
  EXPECT_THROW(core::compile(m, opts), CompileError);
}

TEST(Forall2d, RowBroadcastOfOneDStream) {
  // V[i] inside a 2-D block: each packet of the 1-D stream is replicated
  // across its row by the compiler's hold loop.
  const std::string src = R"(
const h = 4
const w = 5
function f(U: array[real] [1, h] [1, w]; V: array[real] [0, h]
           returns array[real])
  forall i in [1, h], j in [1, w]
  construct U[i, j] + V[i] * V[i-1] endall
endfun
)";
  val::Module m = core::frontend(src);
  val::ArrayMap in;
  in["U"] = random2d({1, 4}, {1, 5}, 29);
  in["V"] = testing::randomArray({0, 4}, 31);
  const auto ref = val::evaluate(m, in);
  const auto prog = core::compile(m);
  checkInterpreted(prog, in, ref.result.elems, 1e-12);
  checkMachine(prog, in, ref.result.elems, 1e-12);
}

TEST(Forall2d, RowBroadcastKeepsFullRate) {
  const std::string src = R"(
const h = 24
const w = 24
function f(U: array[real] [1, h] [1, w]; V: array[real] [1, h]
           returns array[real])
  forall i in [1, h], j in [1, w]
  construct U[i, j] * V[i] endall
endfun
)";
  val::Module m = core::frontend(src);
  val::ArrayMap in;
  in["U"] = random2d({1, 24}, {1, 24}, 37);
  in["V"] = testing::randomArray({1, 24}, 41);
  const auto ref = val::evaluate(m, in);
  const auto prog = core::compile(m);
  checkMachine(prog, in, ref.result.elems, 1e-12, 2, 0.45, 0.5);
}

TEST(Forall2d, RowBroadcastUnderConditional) {
  // The broadcast stream participates in a static conditional: per-arm
  // replication counts differ per row.
  const std::string src = R"(
const h = 6
const w = 6
function f(U: array[real] [1, h] [1, w]; V: array[real] [1, h]
           returns array[real])
  forall i in [1, h], j in [1, w]
  construct if j < 3 then V[i] else U[i, j] endif endall
endfun
)";
  val::Module m = core::frontend(src);
  val::ArrayMap in;
  in["U"] = random2d({1, 6}, {1, 6}, 43);
  in["V"] = testing::randomArray({1, 6}, 47);
  const auto ref = val::evaluate(m, in);
  const auto prog = core::compile(m);
  checkInterpreted(prog, in, ref.result.elems, 1e-12);
  checkMachine(prog, in, ref.result.elems, 1e-12);
}

TEST(Forall2d, ColumnSelectionOfOneDStreamRejected) {
  const std::string src = R"(
const h = 4
function f(U: array[real] [1, h] [1, h]; V: array[real] [1, h]
           returns array[real])
  forall i in [1, h], j in [1, h]
  construct U[i, j] + V[j] endall
endfun
)";
  try {
    core::frontend(src);
    FAIL() << "expected a compile error";
  } catch (const CompileError& e) {
    EXPECT_NE(std::string(e.what()).find("row"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace valpipe
