// Unit tests for the event-driven scheduler's queue structures: the
// cross-shard Mailbox ring under capacity pressure, and the ReadyQueue time
// wheel — including a regression pin for the below-cursor wake() snap-back
// (a sharded wheel can receive a wake behind a cursor nextTime() already
// scanned forward; scanning from the stale cursor would miss or alias it).
#include <gtest/gtest.h>

#include <vector>

#include "exec/mailbox.hpp"
#include "exec/ready_queue.hpp"

namespace valpipe::exec {
namespace {

Message result(std::uint32_t cell, std::int64_t time) {
  Message m;
  m.kind = Message::Kind::Result;
  m.cell = cell;
  m.slot = cell;
  m.time = time;
  m.wakeAt = time;
  m.v = Value(static_cast<double>(cell));
  return m;
}

std::vector<std::uint32_t> drainCells(const Mailbox& box,
                                      bool reversed = false) {
  std::vector<std::uint32_t> got;
  if (reversed)
    box.forEachReversed([&](const Message& m) { got.push_back(m.cell); });
  else
    box.forEach([&](const Message& m) { got.push_back(m.cell); });
  return got;
}

TEST(Mailbox, PreservesPushOrderWithinRing) {
  Mailbox box(8);
  for (std::uint32_t c = 0; c < 5; ++c) box.push(result(c, 10 + c));
  EXPECT_EQ(box.size(), 5u);
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.overflows(), 0u);
  EXPECT_EQ(drainCells(box), (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
  box.clear();
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.size(), 0u);
}

TEST(Mailbox, SpillsPastRingCapacityAndKeepsPushOrder) {
  Mailbox box(4);  // ring holds exactly 4
  const std::uint32_t total = 11;
  for (std::uint32_t c = 0; c < total; ++c) box.push(result(c, c));
  EXPECT_EQ(box.size(), total);
  EXPECT_EQ(box.overflows(), total - 4u);
  // forEach must present ring entries first, then spill — which is exactly
  // push order, the property the deterministic drain relies on.
  std::vector<std::uint32_t> want;
  for (std::uint32_t c = 0; c < total; ++c) want.push_back(c);
  EXPECT_EQ(drainCells(box), want);
  // Reverse iteration (the fault injector's mailbox-reorder mode) is the
  // exact mirror.
  std::vector<std::uint32_t> rev(want.rbegin(), want.rend());
  EXPECT_EQ(drainCells(box, /*reversed=*/true), rev);
}

TEST(Mailbox, ClearResetsWindowButOverflowCountIsCumulative) {
  Mailbox box(2);
  for (std::uint32_t lap = 0; lap < 5; ++lap) {
    for (std::uint32_t c = 0; c < 3; ++c) box.push(result(100 * lap + c, c));
    EXPECT_EQ(box.size(), 3u) << "lap " << lap;
    EXPECT_EQ(drainCells(box),
              (std::vector<std::uint32_t>{100 * lap, 100 * lap + 1,
                                          100 * lap + 2}));
    box.clear();
    EXPECT_TRUE(box.empty());
  }
  // 1 overflow per lap (capacity 2, 3 pushes), never reset by clear().
  EXPECT_EQ(box.overflows(), 5u);
}

TEST(Mailbox, PayloadAndTimestampsSurviveTheRing) {
  Mailbox box(4);
  Message ack;
  ack.kind = Message::Kind::Acknowledge;
  ack.cell = 7;
  ack.slot = 13;
  ack.time = 42;
  ack.wakeAt = 43;
  box.push(ack);
  box.push(result(9, 50));
  int seen = 0;
  box.forEach([&](const Message& m) {
    if (seen++ == 0) {
      EXPECT_EQ(m.kind, Message::Kind::Acknowledge);
      EXPECT_EQ(m.cell, 7u);
      EXPECT_EQ(m.slot, 13u);
      EXPECT_EQ(m.time, 42);
      EXPECT_EQ(m.wakeAt, 43);
    } else {
      EXPECT_EQ(m.kind, Message::Kind::Result);
      EXPECT_EQ(m.v.toReal(), 9.0);
      EXPECT_EQ(m.time, 50);
    }
  });
  EXPECT_EQ(seen, 2);
}

TEST(MailboxGrid, BoxesAreIndependentPerOrderedPair) {
  MailboxGrid grid(3);
  EXPECT_EQ(grid.shards(), 3u);
  grid.box(0, 1).push(result(1, 1));
  grid.box(1, 0).push(result(2, 2));
  grid.box(1, 0).push(result(3, 3));
  EXPECT_EQ(grid.box(0, 1).size(), 1u);
  EXPECT_EQ(grid.box(1, 0).size(), 2u);
  EXPECT_TRUE(grid.box(2, 2).empty());
}

TEST(ReadyQueue, PopsWakesInTimeOrderDeduplicated) {
  ReadyQueue q(/*cells=*/4, /*horizon=*/8);
  q.wake(2, 5);
  q.wake(0, 3);
  q.wake(1, 3);
  q.wake(1, 3);  // push-side duplicate: same cell, same time
  std::vector<std::uint32_t> out;
  ASSERT_FALSE(q.empty());
  EXPECT_EQ(q.nextTime(), 3);
  EXPECT_EQ(q.pop(out), 3);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(q.pop(out), 5);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{2}));
  EXPECT_TRUE(q.empty());
}

// Regression pin for the sharded-wheel fix: wake() must snap the scan cursor
// back when an entry lands below it.  nextTime() scans the cursor forward
// over empty buckets; a cross-shard packet can then wake a cell at the
// barrier time — behind the scanned-ahead cursor.  Without the snap-back the
// wheel would skip the bucket (or alias it a full ring lap later).
TEST(ReadyQueue, WakeBelowScannedCursorIsStillFound) {
  ReadyQueue q(/*cells=*/4, /*horizon=*/8);
  std::vector<std::uint32_t> out;
  // Advance the cursor well past the start by processing a late entry.
  q.wake(0, 9);
  EXPECT_EQ(q.pop(out), 9);  // cursor is now 10
  EXPECT_TRUE(q.empty());
  // A wake behind the cursor (as delivered by another shard at a barrier).
  q.wake(1, 4);
  ASSERT_FALSE(q.empty());
  EXPECT_EQ(q.nextTime(), 4);  // not 4 + ring-size, and not skipped
  EXPECT_EQ(q.pop(out), 4);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
}

TEST(ReadyQueue, WakeBelowCursorWhileNonEmptyStaysExact) {
  ReadyQueue q(/*cells=*/4, /*horizon=*/16);
  std::vector<std::uint32_t> out;
  q.wake(0, 12);
  EXPECT_EQ(q.nextTime(), 12);  // cursor scanned forward to 12
  q.wake(1, 7);                 // below the scanned cursor, wheel non-empty
  EXPECT_EQ(q.pop(out), 7);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(q.pop(out), 12);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
}

TEST(ReadyQueue, AdvanceToSkipsGloballyActiveStretch) {
  ReadyQueue q(/*cells=*/2, /*horizon=*/8);
  std::vector<std::uint32_t> out;
  q.wake(0, 2);
  EXPECT_EQ(q.pop(out), 2);
  // Shard idle while global time advances far past the ring size.
  q.advanceTo(1000);
  q.wake(1, 1003);  // within horizon of the advanced cursor
  EXPECT_EQ(q.nextTime(), 1003);
  EXPECT_EQ(q.pop(out), 1003);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
}

TEST(ReadyQueue, SameCellReexaminedAtManyTimesAcrossRingLaps) {
  ReadyQueue q(/*cells=*/1, /*horizon=*/4);
  std::vector<std::uint32_t> out;
  // Push/pop the same cell across several laps of the (small) ring.
  std::int64_t t = 0;
  for (int lap = 0; lap < 50; ++lap) {
    q.wake(0, t + 3);
    EXPECT_EQ(q.pop(out), t + 3) << "lap " << lap;
    EXPECT_EQ(out.size(), 1u);
    t += 3;
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace valpipe::exec
