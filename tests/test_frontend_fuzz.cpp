// Frontend robustness fuzzing: truncated and mutated Val programs must flow
// through val::parseModule / val::typecheck producing structured diagnostics
// — never a crash, an uncaught exception, or an empty error report.  The
// suite is deterministic (seeded mutations) so a failure reproduces; run it
// under the ASan preset (ctest -L fault) to catch out-of-bounds reads the
// happy path never exercises.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "generators.hpp"
#include "support/diagnostics.hpp"
#include "testing.hpp"
#include "val/parser.hpp"
#include "val/typecheck.hpp"

namespace valpipe {
namespace {

/// Base corpus: the paper's examples plus generated random programs.
std::vector<std::string> corpus() {
  std::vector<std::string> srcs = {
      testing::example1Source(8),
      testing::example2Source(6),
      testing::figure3Source(8),
  };
  for (int p = 0; p < 4; ++p) {
    testing::GenOptions gopts;
    gopts.blocks = 1 + p % 3;
    testing::ProgramGen gen(static_cast<unsigned>(p) * 977 + 3, gopts);
    srcs.push_back(gen.module());
  }
  return srcs;
}

/// Feeds one source through the whole frontend; the only acceptable endings
/// are a clean parse+check or structured diagnostics.
void mustNotCrash(const std::string& src, const std::string& what) {
  Diagnostics diags;
  val::Module mod = val::parseModule(src, diags);
  if (diags.hasErrors()) {
    // Structured report: at least one error with a message; str() is the
    // user-facing rendering and must compose without throwing.
    EXPECT_GE(diags.errorCount(), 1u) << what;
    EXPECT_FALSE(diags.all().empty()) << what;
    for (const Diagnostic& d : diags.all())
      EXPECT_FALSE(d.message.empty()) << what;
    EXPECT_FALSE(diags.str().empty()) << what;
    return;  // a partial module is not a typecheck input
  }
  Diagnostics tdiags;
  val::typecheck(mod, tdiags);
  if (tdiags.hasErrors()) {
    EXPECT_FALSE(tdiags.str().empty()) << what;
    for (const Diagnostic& d : tdiags.all())
      EXPECT_FALSE(d.message.empty()) << what;
  }
}

TEST(FrontendFuzz, EveryTruncationParsesOrDiagnoses) {
  for (const std::string& src : corpus()) {
    // Every prefix, including the empty program and mid-token cuts.
    for (std::size_t len = 0; len <= src.size(); ++len)
      mustNotCrash(src.substr(0, len),
                   "truncation at " + std::to_string(len) + " of:\n" + src);
  }
}

TEST(FrontendFuzz, EverySuffixParsesOrDiagnoses) {
  // Suffixes start mid-construct: the parser sees orphaned keywords and
  // unbalanced enders immediately.
  for (const std::string& src : corpus())
    for (std::size_t cut = 0; cut < src.size(); cut += 7)
      mustNotCrash(src.substr(cut),
                   "suffix from " + std::to_string(cut) + " of:\n" + src);
}

TEST(FrontendFuzz, RandomCharacterMutationsNeverCrash) {
  std::mt19937 rng(20260807);
  const char charset[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
      "0123456789+-*/=<>~|&;:,.[](){}'\"%$#@!_ \t\n";
  for (const std::string& src : corpus()) {
    for (int round = 0; round < 200; ++round) {
      std::string s = src;
      // 1-4 point mutations: substitute, delete, or insert.
      const int edits = 1 + static_cast<int>(rng() % 4);
      for (int e = 0; e < edits && !s.empty(); ++e) {
        const std::size_t pos = rng() % s.size();
        const char c = charset[rng() % (sizeof(charset) - 1)];
        switch (rng() % 3) {
          case 0: s[pos] = c; break;
          case 1: s.erase(pos, 1); break;
          default: s.insert(pos, 1, c); break;
        }
      }
      mustNotCrash(s, "mutation round " + std::to_string(round));
    }
  }
}

TEST(FrontendFuzz, KeywordSwapsNeverCrash) {
  // Token-level damage: swap structural keywords for each other so the
  // parser's recovery paths (not just its lexer) get exercised.
  const std::vector<std::string> keywords = {
      "function", "endfun",  "forall", "endall",    "for",   "endfor",
      "if",       "then",    "else",   "endif",     "let",   "in",
      "endlet",   "iter",    "enditer","construct", "do",    "returns",
      "array",    "integer", "real",   "const",
  };
  std::mt19937 rng(97);
  for (const std::string& src : corpus()) {
    for (int round = 0; round < 60; ++round) {
      std::string s = src;
      const std::string& from = keywords[rng() % keywords.size()];
      const std::string& to = keywords[rng() % keywords.size()];
      const std::size_t at = s.find(from);
      if (at == std::string::npos) continue;
      s.replace(at, from.size(), to);
      mustNotCrash(s, "swap '" + from + "' -> '" + to + "'");
    }
  }
}

TEST(FrontendFuzz, HostileInputsGetDiagnosticsNotCrashes) {
  const std::vector<std::string> hostile = {
      "",
      "\n\n\n",
      "%% only a comment",
      "function",
      "function f(",
      "function f( returns real) 1 endfun endfun endfun",
      "const m = \nfunction f(A: array[real] [1, m] returns real) A[1] endfun",
      "const m = 99999999999999999999999999\nfunction f(A: array[real] "
      "[1, m] returns real) A[1] endfun",
      "function f(A: array[real] [1, 4] returns array[real])\n"
      "  forall i in [1, 4] construct A[i+i+i+i+i+i+i+i+i+i+i+i] endall\n"
      "endfun",
      std::string(10000, '('),
      std::string(10000, 'x'),
      "function f(A: array[real] [1, 1000000000000] returns array[real])\n"
      "  forall i in [1, 1000000000000] construct A[i] endall\nendfun",
  };
  for (const std::string& s : hostile)
    mustNotCrash(s, "hostile input: " + s.substr(0, 40));
  // The throwing convenience entry must throw CompileError, nothing else.
  EXPECT_THROW(val::parseModuleOrThrow("function f("), CompileError);
}

}  // namespace
}  // namespace valpipe
