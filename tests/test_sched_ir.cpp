// Static-schedule IR (sched/schedule.hpp): hyper-period and ASAP slot
// computation on accepted graphs, per-arc steady-state buffer offsets, and
// the structured decline taxonomy the compiled scheduler's fallback (and
// valc --explain-schedule) report.  Also pins the phase-split contract:
// core::compile() equals the composition of the named phases.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/phases.hpp"
#include "dfg/graph.hpp"
#include "dfg/lower.hpp"
#include "exec/executable_graph.hpp"
#include "opt/fuse.hpp"
#include "sched/schedule.hpp"
#include "sched/steady_loop.hpp"
#include "testing.hpp"

namespace valpipe {
namespace {

using dfg::Graph;
using dfg::Op;
using dfg::PortSrc;
using sched::computeSteadySchedule;
using sched::Decline;
using sched::SteadySchedule;

/// Figure 2's three-stage pipeline: two sources, a shared first stage, a
/// balanced reconvergence, one output.
Graph figure2Graph(std::int64_t n = 16) {
  Graph g;
  const auto a = g.input("a", n);
  const auto b = g.input("b", n);
  const auto y = g.binary(Op::Mul, Graph::out(a), Graph::out(b), "y");
  const auto p = g.binary(Op::Add, Graph::out(y), Graph::lit(Value(2.0)), "p");
  const auto q = g.binary(Op::Sub, Graph::out(y), Graph::lit(Value(3.0)), "q");
  const auto r = g.binary(Op::Mul, Graph::out(p), Graph::out(q), "r");
  g.output("x", Graph::out(r));
  return g;
}

/// Every arc's producer must precede its consumer in topo order.
void expectTopological(const exec::ExecutableGraph& eg,
                       const SteadySchedule& s) {
  ASSERT_EQ(s.topo.size(), eg.size());
  std::vector<std::size_t> pos(eg.size());
  for (std::size_t i = 0; i < s.topo.size(); ++i) pos[s.topo[i]] = i;
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cell = eg.cell(c);
    for (int p = 0; p < cell.numPorts; ++p) {
      const exec::Operand& o = eg.operand(cell, p);
      if (!o.isLiteral()) {
        EXPECT_LT(pos[o.producer], pos[c])
            << "arc " << o.producer << " -> " << c;
      }
    }
  }
}

TEST(SchedIr, AcceptsBalancedPipelineWithAsapSlots) {
  const Graph g = figure2Graph();
  const exec::ExecutableGraph eg(g);
  const SteadySchedule s = computeSteadySchedule(eg);
  ASSERT_TRUE(s.accepted) << s.detail;
  EXPECT_EQ(s.decline, Decline::None);
  EXPECT_EQ(s.hyperPeriod, 2);
  EXPECT_EQ(s.depthMax, 4);  // sources(0) -> y(1) -> p,q(2) -> r(3) -> out(4)

  ASSERT_EQ(s.slot.size(), eg.size());
  std::vector<std::int64_t> bySlot(5, 0);
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    ASSERT_GE(s.slot[c], 0);
    ASSERT_LE(s.slot[c], 4);
    ++bySlot[static_cast<std::size_t>(s.slot[c])];
    EXPECT_EQ(s.phase[c], s.slot[c] % 2);
  }
  // Two sources at slot 0, one cell each at 1/3/4, the balanced pair at 2.
  EXPECT_EQ(bySlot, (std::vector<std::int64_t>{2, 1, 2, 1, 1}));

  // Plain arcs all carry one token of steady-state buffering.
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cell = eg.cell(c);
    for (int p = 0; p < cell.numPorts; ++p)
      if (!eg.operand(cell, p).isLiteral()) {
        EXPECT_EQ(s.arcOffset[eg.slotOf(cell, p)], 1);
      }
  }
  expectTopological(eg, s);
}

TEST(SchedIr, CompositeFifoOccupiesItsDepthInSlots) {
  // a -> id -> id -> (+) <- FIFO[2] <- a : the depth-2 ring buffer balances
  // the two-stage identity chain, so the adder's operands reconverge evenly.
  Graph g;
  const auto a = g.input("a", 8);
  const auto i1 = g.identity(Graph::out(a), "i1");
  const auto i2 = g.identity(Graph::out(i1), "i2");
  const PortSrc buf = g.fifo(Graph::out(a), 2, "buf");
  const auto sum = g.binary(Op::Add, Graph::out(i2), buf, "sum");
  g.output("x", Graph::out(sum));

  const exec::ExecutableGraph eg(g);
  const SteadySchedule s = computeSteadySchedule(eg);
  ASSERT_TRUE(s.accepted) << s.detail;

  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cell = eg.cell(c);
    if (cell.op == Op::Fifo && cell.fifoDepth >= 2) {
      EXPECT_EQ(cell.fifoDepth, 2);
      EXPECT_EQ(s.slot[c], 2);  // source slot 0 + the two buffered stages
      EXPECT_EQ(s.arcOffset[eg.slotOf(cell, 0)], 2);
    }
    if (cell.op == Op::Add) {
      EXPECT_EQ(s.slot[c], 3);
    }
  }
  expectTopological(eg, s);
}

TEST(SchedIr, ExplainListsScheduleTable) {
  const exec::ExecutableGraph eg(figure2Graph());
  const SteadySchedule s = computeSteadySchedule(eg);
  const std::string text = s.explain(eg);
  EXPECT_NE(text.find("steady schedule: accepted"), std::string::npos) << text;
  EXPECT_NE(text.find("hyper-period: 2"), std::string::npos) << text;
  EXPECT_NE(text.find("pipeline depth: 4 stages"), std::string::npos) << text;
  EXPECT_NE(text.find("IN a"), std::string::npos) << text;
  EXPECT_NE(text.find("OUT x"), std::string::npos) << text;
}

TEST(SchedIr, DeclinesGatedDelivery) {
  Graph g;
  const auto a = g.input("a", 8);
  const auto ctl = g.boolSeq(dfg::BoolPattern::uniform(true, 8), "ctl");
  const auto gid = g.gatedIdentity(Graph::out(a), Graph::out(ctl), "gid");
  g.output("x", Graph::outT(gid));
  const SteadySchedule s = computeSteadySchedule(exec::ExecutableGraph(g));
  ASSERT_FALSE(s.accepted);
  EXPECT_EQ(s.decline, Decline::Gate);
  const std::string text = s.explain(exec::ExecutableGraph(g));
  EXPECT_NE(text.find("declined (gated-delivery)"), std::string::npos) << text;
  EXPECT_NE(text.find("falls back to event-driven"), std::string::npos) << text;
}

TEST(SchedIr, DeclinesDataDependentMerge) {
  Graph g;
  const auto ctl = g.boolSeq(dfg::BoolPattern::uniform(true, 8), "ctl");
  const auto t = g.input("t", 8);
  const auto f = g.input("f", 8);
  const auto m = g.merge(Graph::out(ctl), Graph::out(t), Graph::out(f), "m");
  g.output("x", Graph::out(m));
  const SteadySchedule s = computeSteadySchedule(exec::ExecutableGraph(g));
  ASSERT_FALSE(s.accepted);
  EXPECT_EQ(s.decline, Decline::Merge);
}

TEST(SchedIr, DeclinesArrayMemoryTraffic) {
  Graph g;
  const auto a = g.input("a", 8);
  g.amStore("A", Graph::out(a));
  const auto f = g.amFetch("A", 8);
  g.output("x", Graph::out(f));
  const SteadySchedule s = computeSteadySchedule(exec::ExecutableGraph(g));
  ASSERT_FALSE(s.accepted);
  EXPECT_EQ(s.decline, Decline::ArrayMemory);
}

TEST(SchedIr, DeclinesFeedbackCycle) {
  Graph g;
  const auto a = g.input("a", 8);
  const auto fwd = g.binary(Op::Add, Graph::out(a), Graph::lit(Value(0.0)),
                            "fwd");
  const auto back = g.identity(Graph::out(fwd), "back");
  g.node(fwd).inputs[1] = Graph::out(back);  // close the loop: fwd <-> back
  g.output("x", Graph::out(fwd));
  const SteadySchedule s = computeSteadySchedule(exec::ExecutableGraph(g));
  ASSERT_FALSE(s.accepted);
  EXPECT_EQ(s.decline, Decline::Feedback);
}

TEST(SchedIr, DeclinesInitialToken) {
  Graph g;
  const auto a = g.input("a", 8);
  PortSrc boot = Graph::out(a);
  boot.initial = Value(1.0);  // load-time token (counter bootstrap, §2)
  const auto c = g.binary(Op::Add, boot, Graph::lit(Value(0.0)), "c");
  g.output("x", Graph::out(c));
  const SteadySchedule s = computeSteadySchedule(exec::ExecutableGraph(g));
  ASSERT_FALSE(s.accepted);
  EXPECT_EQ(s.decline, Decline::InitialToken);
}

TEST(SchedIr, DeclinesUnbalancedReconvergence) {
  Graph g;
  const auto a = g.input("a", 8);
  const auto i1 = g.identity(Graph::out(a), "i1");
  const auto sum = g.binary(Op::Add, Graph::out(i1), Graph::out(a), "sum");
  g.output("x", Graph::out(sum));
  const SteadySchedule s = computeSteadySchedule(exec::ExecutableGraph(g));
  ASSERT_FALSE(s.accepted);
  EXPECT_EQ(s.decline, Decline::Unbalanced);
}

TEST(SchedIr, CompiledValProgramYieldsAcceptedSchedule) {
  // The balancer's FIFO plus opt::fuseFifos' composite ring keep the graph
  // in the accepted class end to end from Val source.
  const std::string src = R"(const m = 16
function f(A, B: array[real] [1, m] returns array[real])
  forall i in [1, m]
  construct 0.5 * (A[i] + B[i]) * A[i]
  endall
endfun
)";
  const auto prog = core::compileSource(src);
  const dfg::Graph lowered = opt::fuseFifos(prog.graph);
  const exec::ExecutableGraph eg(lowered);
  const SteadySchedule s = computeSteadySchedule(eg);
  ASSERT_TRUE(s.accepted) << s.detail;
  EXPECT_EQ(s.hyperPeriod, 2);
  expectTopological(eg, s);
}

TEST(SchedIr, SteadyLoopReproducesElementwiseValues) {
  const Graph g = figure2Graph(8);
  const exec::ExecutableGraph eg(g);
  const SteadySchedule s = computeSteadySchedule(eg);
  ASSERT_TRUE(s.accepted);

  const std::vector<Value> a = {Value(1.0), Value(2.0), Value(3.0), Value(4.0),
                                Value(5.0), Value(6.0), Value(7.0), Value(8.0)};
  const std::vector<Value> b = {Value(2.0), Value(2.0), Value(2.0), Value(2.0),
                                Value(3.0), Value(3.0), Value(3.0), Value(3.0)};
  sched::SteadyLoop loop(eg, s);
  std::uint32_t rCell = UINT32_MAX;
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cell = eg.cell(c);
    if (cell.op == Op::Input)
      loop.bindSource(c, eg.streamName(cell) == std::string("a") ? &a : &b);
    if (cell.op == Op::Output) rCell = eg.operand(cell, 0).producer;
  }
  ASSERT_NE(rCell, UINT32_MAX);
  loop.request(rCell, 0, 8);
  loop.compute();
  EXPECT_TRUE(loop.vectorized());
  for (std::int64_t k = 0; k < 8; ++k) {
    const double y = a[static_cast<std::size_t>(k)].asReal() *
                     b[static_cast<std::size_t>(k)].asReal();
    EXPECT_DOUBLE_EQ(loop.value(rCell, k).asReal(), (y + 2.0) * (y - 3.0));
  }
}

TEST(PhaseSplit, ComposedPhasesMatchMonolithicCompile) {
  const std::string src = testing::example1Source(12);
  core::CompileOptions opts;
  opts.lower = true;  // exercise the full pipeline including chain fusion

  const val::Module m = core::frontend(src);
  core::CompiledProgram staged = core::phases::buildGraph(m, opts);
  core::phases::normalize(staged, opts);
  core::phases::balance(staged, opts);
  core::phases::lower(staged, opts);

  const core::CompiledProgram direct = core::compile(m, opts);
  EXPECT_EQ(staged.graph.size(), direct.graph.size());
  EXPECT_EQ(staged.balance.buffersInserted, direct.balance.buffersInserted);
  EXPECT_EQ(staged.balance.fifoNodes, direct.balance.fifoNodes);
  ASSERT_TRUE(staged.fusion.has_value());
  ASSERT_TRUE(direct.fusion.has_value());
  EXPECT_EQ(staged.outputName, direct.outputName);
  EXPECT_EQ(staged.blocks.size(), direct.blocks.size());
}

}  // namespace
}  // namespace valpipe
