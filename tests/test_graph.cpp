// Unit tests for the instruction-graph IR: construction, wiring, validation,
// patterns, DOT export and statistics.
#include <gtest/gtest.h>

#include "dfg/dot.hpp"
#include "dfg/graph.hpp"
#include "dfg/stats.hpp"
#include "dfg/validate.hpp"
#include "support/diagnostics.hpp"

namespace valpipe::dfg {
namespace {

TEST(BoolPattern, RunsAndUniform) {
  const BoolPattern p = BoolPattern::runs(1, 3, 2);
  ASSERT_EQ(p.length(), 6u);
  EXPECT_FALSE(p.bits[0]);
  EXPECT_TRUE(p.bits[1] && p.bits[2] && p.bits[3]);
  EXPECT_FALSE(p.bits[4] || p.bits[5]);
  EXPECT_EQ(BoolPattern::uniform(true, 4).str(), "T..T(4)");
  EXPECT_EQ(p.str(), "F T..T(3) F..F(2)");
  EXPECT_EQ(BoolPattern::runs(0, 1, 1).str(), "T F");
}

TEST(Graph, BuildersAndArity) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId add = g.binary(Op::Add, Graph::out(in), Graph::lit(Value(1)));
  const NodeId out = g.output("x", Graph::out(add));
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.node(add).inputs.size(), 2u);
  EXPECT_TRUE(g.node(add).inputs[1].isLiteral());
  EXPECT_EQ(g.node(out).streamName, "x");
  EXPECT_EQ(g.findInput("a"), in);
  EXPECT_FALSE(g.findInput("b").valid());
}

TEST(Graph, FifoZeroDepthIsPassThrough) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const PortSrc direct = g.fifo(Graph::out(in), 0);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(direct.producer, in);
  const PortSrc buffered = g.fifo(Graph::out(in), 3);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.node(buffered.producer).fifoDepth, 3);
  EXPECT_EQ(g.loweredCellCount(), 4u);  // input + 3 identity stages
}

TEST(Graph, WiringDestinationsWithTags) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId ctl = g.boolSeq(BoolPattern::uniform(true, 4));
  const NodeId gate = g.gatedIdentity(Graph::out(in), Graph::out(ctl));
  const NodeId tSide = g.identity(Graph::outT(gate));
  const NodeId fSide = g.sink(Graph::outF(gate));
  g.output("x", Graph::out(tSide));

  Wiring w(g);
  EXPECT_EQ(w.dests(gate).size(), 2u);
  const auto whenTrue = w.deliveredDests(gate, true);
  ASSERT_EQ(whenTrue.size(), 1u);
  EXPECT_EQ(whenTrue[0].consumer, tSide);
  const auto whenFalse = w.deliveredDests(gate, false);
  ASSERT_EQ(whenFalse.size(), 1u);
  EXPECT_EQ(whenFalse[0].consumer, fSide);
  // Ungated firing delivers Always-tagged only.
  EXPECT_EQ(w.deliveredDests(in, std::nullopt).size(), 1u);
}

TEST(Graph, ReplaceUsesRewiresAllPorts) {
  Graph g;
  const NodeId proxy = g.identity(Graph::lit(Value(0)));
  const NodeId a = g.identity(Graph::out(proxy));
  const NodeId b = g.binary(Op::Add, Graph::out(proxy), Graph::out(proxy));
  const NodeId real = g.input("r", 4);
  PortSrc repl = Graph::out(real);
  repl.feedback = true;
  g.replaceUses(proxy, repl);
  EXPECT_EQ(g.node(a).inputs[0].producer, real);
  EXPECT_TRUE(g.node(a).inputs[0].feedback);
  EXPECT_EQ(g.node(b).inputs[0].producer, real);
  EXPECT_EQ(g.node(b).inputs[1].producer, real);
}

TEST(Validate, CleanGraphPasses) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId id = g.identity(Graph::out(in));
  g.output("x", Graph::out(id));
  const ValidationReport rep = validate(g);
  EXPECT_TRUE(rep.ok()) << rep.str();
  EXPECT_TRUE(rep.warnings.empty());
}

TEST(Validate, TagFromUngatedProducerIsError) {
  Graph g;
  const NodeId in = g.input("a", 4);
  g.identity(Graph::outT(in));
  EXPECT_FALSE(validate(g).ok());
}

TEST(Validate, DuplicateStreamNames) {
  Graph g;
  g.input("a", 4);
  g.input("a", 4);
  const auto rep = validate(g);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.errors[0].find("duplicate input"), std::string::npos);
}

TEST(Validate, UnbrokenCycleIsError) {
  Graph g;
  const NodeId a = g.identity(Graph::lit(Value(0)));
  const NodeId b = g.identity(Graph::out(a));
  g.node(a).inputs[0] = Graph::out(b);  // a <- b <- a, no feedback flag
  g.output("x", Graph::out(b));
  EXPECT_FALSE(validate(g).ok());
}

TEST(Validate, FeedbackFlagBreaksCycle) {
  Graph g;
  const NodeId a = g.identity(Graph::lit(Value(0)));
  const NodeId b = g.identity(Graph::out(a));
  PortSrc back = Graph::out(b);
  back.feedback = true;
  g.node(a).inputs[0] = back;
  g.output("x", Graph::out(b));
  EXPECT_TRUE(validate(g).ok()) << validate(g).str();
}

TEST(Validate, DanglingResultIsWarning) {
  Graph g;
  g.input("a", 4);  // result never consumed
  const auto rep = validate(g);
  EXPECT_TRUE(rep.ok());
  ASSERT_EQ(rep.warnings.size(), 1u);
  EXPECT_NE(rep.warnings[0].find("no destinations"), std::string::npos);
}

TEST(Validate, OrThrowThrows) {
  Graph g;
  g.identity(Graph::outT(g.input("a", 4)));
  EXPECT_THROW(validateOrThrow(g), CompileError);
}

TEST(Dot, ContainsNodesEdgesAndTags) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId ctl = g.boolSeq(BoolPattern::runs(1, 2, 1), "sel");
  const NodeId gate = g.gatedIdentity(Graph::out(in), Graph::out(ctl));
  g.output("x", Graph::outT(gate));
  const std::string dot = toDot(g, "test");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("IN\\na"), std::string::npos);
  EXPECT_NE(dot.find("F T..T(2) F"), std::string::npos);
  EXPECT_NE(dot.find("label=\"T\""), std::string::npos);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // gate arc
}

TEST(Stats, CountsCellsAndFifos) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const PortSrc buf = g.fifo(Graph::out(in), 3);
  const NodeId ctl = g.boolSeq(BoolPattern::uniform(true, 4));
  const NodeId gate = g.gatedIdentity(buf, Graph::out(ctl));
  g.output("x", Graph::outT(gate));
  const GraphStats s = computeStats(g);
  EXPECT_EQ(s.nodes, 5u);
  EXPECT_EQ(s.cells, 7u);  // fifo expands to 3
  EXPECT_EQ(s.fifoNodes, 1u);
  EXPECT_EQ(s.fifoSlots, 3u);
  EXPECT_EQ(s.gatedCells, 1u);
  EXPECT_EQ(s.sources, 2u);
  EXPECT_EQ(s.byOp.at(Op::Input), 1u);
  EXPECT_FALSE(s.str().empty());
}

}  // namespace
}  // namespace valpipe::dfg
