// Fault-injection matrix (tests/test_fault_injection.cpp of the resilience
// layer's contract):
//
//   * timing faults (latency jitter, delivery delay, barrier skew, mailbox
//     reorder, FU outages) change only *when* packets move — on random
//     programs, every scheduler under every seeded timing plan must produce
//     outputs AND packet counters bit-identical to the fault-free Reference
//     run.  This is the machine-level restatement of the paper's determinacy
//     claim: the §2 acknowledge discipline makes results data-determined,
//     independent of timing.
//
//   * destructive faults (dropped / duplicated result and acknowledge
//     packets) break the discipline on purpose — a run under them must end
//     in one of exactly three ways: recovery with bit-identical outputs, a
//     guard::ViolationError naming the offending cell, or a run::StallError
//     whose diagnosis names what is missing.  Never a hang, never a crash,
//     never silently wrong output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "fault/plan.hpp"
#include "generators.hpp"
#include "guard/guard.hpp"
#include "machine/engine.hpp"
#include "sim/interpreter.hpp"
#include "testing.hpp"
#include "val/eval.hpp"

namespace valpipe {
namespace {

using machine::MachineConfig;
using machine::MachineResult;
using machine::RunOptions;
using machine::SchedulerKind;
using testing::GenOptions;
using testing::ProgramGen;
using testing::randomArray;

constexpr SchedulerKind kAllSchedulers[] = {
    SchedulerKind::Reference,
    SchedulerKind::EventDriven,
    SchedulerKind::Synchronous,
    SchedulerKind::ParallelEventDriven,
};

const char* schedName(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::Reference: return "reference";
    case SchedulerKind::EventDriven: return "event-driven";
    case SchedulerKind::Synchronous: return "synchronous";
    case SchedulerKind::ParallelEventDriven: return "parallel";
  }
  return "?";
}

/// One random program compiled and ready to run.
struct Workload {
  core::CompiledProgram prog;
  dfg::Graph lowered;
  run::StreamMap streams;
  std::string src;
};

Workload makeWorkload(int p) {
  GenOptions gopts;
  gopts.blocks = 1 + p % 3;
  gopts.m = 8 + p % 5;
  ProgramGen gen(static_cast<unsigned>(p) * 271 + 9, gopts);
  Workload w;
  w.src = gen.module();
  val::Module mod = core::frontend(w.src);
  val::ArrayMap in;
  unsigned k = 0;
  for (const val::Param& prm : mod.params)
    in[prm.name] = randomArray(*prm.type.range,
                               static_cast<unsigned>(p) + 100 * k++, 0.0, 1.0);
  w.prog = core::compile(mod);
  w.lowered = dfg::expandFifos(w.prog.graph);
  w.streams = testing::inputsFor(w.prog, in);
  return w;
}

MachineResult runUnder(const Workload& w, const MachineConfig& cfg,
                       SchedulerKind k, const fault::Plan* plan,
                       const guard::Config* guards, std::int64_t watchdog,
                       bool toQuiescence = false) {
  RunOptions opts;
  opts.waves = 1;
  // A quiescence run retires every in-flight token, so even firing counts
  // are data-determined; with an output expectation the run stops the
  // moment the last output lands, and a timing fault may legally let an
  // upstream source squeeze in one more (harmless) firing before the stop.
  if (!toQuiescence)
    opts.expectedOutputs[w.prog.outputName] = w.prog.expectedOutputPerWave();
  opts.scheduler = k;
  opts.threads = 2;
  opts.maxInstructionTimes = 500'000;  // backstop: faulted runs must not spin
  opts.faults = plan;
  opts.guards = guards;
  opts.watchdog = watchdog;
  return machine::simulate(w.lowered, cfg, w.streams, opts);
}

/// The timing-fault contract: everything data-determined is bit-identical to
/// the fault-free run.  Instruction-time fields (cycles, outputTimes) are
/// exactly what timing faults are allowed to move, so they are excluded.
void expectDeterminate(const MachineResult& got, const MachineResult& ref,
                       const std::string& what) {
  EXPECT_TRUE(got.completed) << what << ": " << got.note;
  EXPECT_EQ(got.outputs, ref.outputs) << what << ": outputs";
  EXPECT_EQ(got.amFinal, ref.amFinal) << what << ": amFinal";
  EXPECT_EQ(got.firings, ref.firings) << what << ": firings";
  EXPECT_EQ(got.totalFirings, ref.totalFirings) << what << ": totalFirings";
  EXPECT_EQ(got.packets.resultPackets, ref.packets.resultPackets)
      << what << ": resultPackets";
  EXPECT_EQ(got.packets.ackPackets, ref.packets.ackPackets)
      << what << ": ackPackets";
  EXPECT_EQ(got.packets.opPacketsByClass, ref.packets.opPacketsByClass)
      << what << ": opPacketsByClass";
  EXPECT_EQ(got.packets.networkResultPackets,
            ref.packets.networkResultPackets)
      << what << ": networkResultPackets";
  EXPECT_EQ(got.fuBusy, ref.fuBusy) << what << ": fuBusy";
  EXPECT_EQ(got.pePackets, ref.pePackets) << what << ": pePackets";
}

std::vector<fault::Plan> timingPlans(unsigned seed) {
  std::vector<fault::Plan> plans;
  {
    fault::Plan p;
    p.seed = seed;
    p.latencyJitterMax = 3;
    plans.push_back(p);
  }
  {
    fault::Plan p;
    p.seed = seed + 1;
    p.deliveryDelayMax = 2;
    plans.push_back(p);
  }
  {
    fault::Plan p;
    p.seed = seed + 2;
    p.barrierSkewMax = 2;
    p.mailboxReorder = true;
    plans.push_back(p);
  }
  {
    fault::Plan p;
    p.seed = seed + 3;
    p.outages.push_back({dfg::FuClass::Fpu, 3, 9});
    p.outages.push_back({dfg::FuClass::Alu, 10, 5});
    plans.push_back(p);
  }
  {
    fault::Plan p;  // everything at once
    p.seed = seed + 4;
    p.latencyJitterMax = 2;
    p.deliveryDelayMax = 1;
    p.barrierSkewMax = 2;
    p.mailboxReorder = true;
    p.outages.push_back({dfg::FuClass::Fpu, 5, 6});
    plans.push_back(p);
  }
  return plans;
}

class FaultMatrix : public ::testing::TestWithParam<int> {};

TEST_P(FaultMatrix, TimingFaultsPreserveOutputsAndPacketCounts) {
  const int p = GetParam();
  const Workload w = makeWorkload(p);
  SCOPED_TRACE(w.src);
  const MachineConfig cfg =
      (p % 2 == 0) ? MachineConfig::unit()
                   : MachineConfig::hardware(/*fpus=*/2, /*alus=*/2, /*ams=*/1);

  // Fault-free Reference run to quiescence: the oracle everything must
  // match, down to the per-cell firing counts.
  const MachineResult oracle = runUnder(w, cfg, SchedulerKind::Reference,
                                        nullptr, nullptr, 0,
                                        /*toQuiescence=*/true);
  ASSERT_TRUE(oracle.completed) << oracle.note;
  EXPECT_EQ(oracle.faults.destructive(), 0u);
  EXPECT_TRUE(oracle.faults.str().empty());

  int planIdx = 0;
  for (const fault::Plan& plan : timingPlans(static_cast<unsigned>(p) * 7)) {
    ASSERT_TRUE(plan.timingOnly());
    for (const SchedulerKind k : kAllSchedulers) {
      const std::string what = std::string(schedName(k)) + " plan " +
                               std::to_string(planIdx) + " (" +
                               fault::describe(plan) + ")";
      const MachineResult res = runUnder(w, cfg, k, &plan, nullptr, 0,
                                         /*toQuiescence=*/true);
      expectDeterminate(res, oracle, what);
    }
    ++planIdx;
  }
}

TEST_P(FaultMatrix, TimingFaultsUnderGuardsAndPlacementStayClean) {
  const int p = GetParam();
  const Workload w = makeWorkload(p);
  SCOPED_TRACE(w.src);
  MachineConfig cfg = MachineConfig::hardware();
  cfg.interPeDelay = 2;

  RunOptions base;
  base.waves = 1;
  base.expectedOutputs[w.prog.outputName] = w.prog.expectedOutputPerWave();
  base.maxInstructionTimes = 500'000;
  base.placement = machine::assignCells(
      w.lowered, 3, machine::PlacementStrategy::RoundRobin);

  RunOptions refOpts = base;
  refOpts.scheduler = SchedulerKind::Reference;
  const MachineResult oracle =
      machine::simulate(w.lowered, cfg, w.streams, refOpts);
  ASSERT_TRUE(oracle.completed) << oracle.note;

  fault::Plan plan;
  plan.seed = static_cast<unsigned>(p) * 13 + 5;
  plan.latencyJitterMax = 2;
  plan.deliveryDelayMax = 2;
  plan.barrierSkewMax = 1;
  plan.outages.push_back({dfg::FuClass::Pe, 2, 4});
  const guard::Config guards{};  // guards on: a timing fault must never trip one
  for (const SchedulerKind k : kAllSchedulers) {
    RunOptions opts = base;
    opts.scheduler = k;
    opts.threads = 2;
    opts.faults = &plan;
    opts.guards = &guards;
    opts.watchdog = 2'000;  // nor may the watchdog misfire on a live run
    const MachineResult res =
        machine::simulate(w.lowered, cfg, w.streams, opts);
    // The run stops at output completion, so in-flight counters may be
    // truncated at a timing-dependent point; the data itself may not move.
    const std::string what = std::string(schedName(k)) + " guarded+placed";
    EXPECT_TRUE(res.completed) << what << ": " << res.note;
    EXPECT_EQ(res.outputs, oracle.outputs) << what << ": outputs";
    EXPECT_EQ(res.amFinal, oracle.amFinal) << what << ": amFinal";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultMatrix, ::testing::Range(0, 6));

enum class Outcome { Recovered, Violation, Stall };

/// Runs one destructive plan and classifies the ending.  Anything other than
/// the three sanctioned endings (or wrong output values on recovery) fails.
Outcome destructiveOutcome(const Workload& w, const MachineConfig& cfg,
                           SchedulerKind k, const fault::Plan& plan,
                           const MachineResult& oracle,
                           const std::string& what) {
  const guard::Config guards{};
  try {
    const MachineResult res = runUnder(w, cfg, k, &plan, &guards, 500);
    // The run ended normally: every expected output must have arrived with
    // values bit-identical to the fault-free run — "mostly recovered" with
    // wrong data is exactly the silent failure this suite exists to catch.
    EXPECT_TRUE(res.completed) << what << ": ended incomplete without a stall"
                               << " diagnosis: " << res.note;
    EXPECT_EQ(res.outputs, oracle.outputs) << what << ": recovered run "
                                           << "produced different outputs";
    EXPECT_EQ(res.amFinal, oracle.amFinal) << what << ": amFinal";
    return Outcome::Recovered;
  } catch (const guard::ViolationError& e) {
    // A guard tripped: the message must name the invariant and the cell.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("invariant"), std::string::npos) << what << ": " << msg;
    EXPECT_NE(msg.find("cell #"), std::string::npos) << what << ": " << msg;
    EXPECT_NE(msg.find("arc counters"), std::string::npos)
        << what << ": " << msg;
    return Outcome::Violation;
  } catch (const run::StallError& e) {
    // The watchdog (or cap) tripped: the diagnosis must say when, what is
    // incomplete, and attribute the starvation to the injected faults.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("at t="), std::string::npos) << what << ": " << msg;
    EXPECT_NE(msg.find("incomplete outputs"), std::string::npos)
        << what << ": " << msg;
    EXPECT_NE(msg.find("injected faults"), std::string::npos)
        << what << ": " << msg;
    return Outcome::Stall;
  }
  // Unreachable; any other exception escapes and fails the test hard.
}

TEST(FaultDestructive, DropsAndDuplicatesNeverHangOrCorruptSilently) {
  int recovered = 0, violations = 0, stalls = 0;
  for (int p = 0; p < 3; ++p) {
    const Workload w = makeWorkload(p);
    SCOPED_TRACE(w.src);
    const MachineConfig cfg = MachineConfig::unit();
    const MachineResult oracle = runUnder(w, cfg, SchedulerKind::Reference,
                                          nullptr, nullptr, 0);
    ASSERT_TRUE(oracle.completed) << oracle.note;

    struct Destructive {
      const char* name;
      fault::Plan plan;
    };
    std::vector<Destructive> plans;
    auto add = [&](const char* name, auto&& set) {
      Destructive d;
      d.name = name;
      d.plan.seed = static_cast<unsigned>(p) * 31 + 2;
      set(d.plan);
      plans.push_back(d);
    };
    add("drop-result", [](fault::Plan& f) { f.dropResultPermille = 25; });
    add("dup-result", [](fault::Plan& f) { f.dupResultPermille = 25; });
    add("drop-ack", [](fault::Plan& f) { f.dropAckPermille = 25; });
    add("dup-ack", [](fault::Plan& f) { f.dupAckPermille = 25; });
    add("mixed", [](fault::Plan& f) {
      f.dropResultPermille = 10;
      f.dupResultPermille = 10;
      f.dropAckPermille = 10;
      f.dupAckPermille = 10;
      f.latencyJitterMax = 1;  // destructive faults compose with timing ones
    });

    for (const Destructive& d : plans) {
      for (const SchedulerKind k : kAllSchedulers) {
        const std::string what = std::string(schedName(k)) + " seed " +
                                 std::to_string(p) + " " + d.name;
        switch (destructiveOutcome(w, cfg, k, d.plan, oracle, what)) {
          case Outcome::Recovered: ++recovered; break;
          case Outcome::Violation: ++violations; break;
          case Outcome::Stall: ++stalls; break;
        }
      }
    }
  }
  // With 25‰ rates over hundreds of packets, the matrix must actually have
  // exercised the failure endings, not just breezed through clean runs.
  EXPECT_GT(violations + stalls, 0)
      << "matrix never hit a fault path (recovered=" << recovered << ")";
}

TEST(FaultDestructive, EveryResultDroppedYieldsLostPacketDiagnosis) {
  const Workload w = makeWorkload(1);
  fault::Plan plan;
  plan.dropResultPermille = 1000;  // certainty: every result packet is lost
  for (const SchedulerKind k : kAllSchedulers) {
    const guard::Config guards{};
    try {
      runUnder(w, MachineConfig::unit(), k, &plan, &guards, 200);
      FAIL() << schedName(k) << ": run with every result dropped completed";
    } catch (const run::StallError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("lost in the network"), std::string::npos)
          << schedName(k) << ": " << msg;
      EXPECT_NE(msg.find("dropped"), std::string::npos)
          << schedName(k) << ": " << msg;
      EXPECT_GT(e.at(), 0) << schedName(k);
    } catch (const guard::ViolationError& e) {
      // Acceptable alternative ending: a guard may fire before starvation.
      EXPECT_NE(std::string(e.what()).find("cell #"), std::string::npos)
          << schedName(k) << ": " << e.what();
    }
  }
}

TEST(FaultDestructive, EveryResultDuplicatedTripsAGuardByName) {
  const Workload w = makeWorkload(2);
  fault::Plan plan;
  plan.dupResultPermille = 1000;  // the duplicate lands in an occupied slot
  for (const SchedulerKind k : kAllSchedulers) {
    const guard::Config guards{};
    try {
      runUnder(w, MachineConfig::unit(), k, &plan, &guards, 200);
      FAIL() << schedName(k)
             << ": run with every result duplicated passed the guards";
    } catch (const guard::ViolationError& e) {
      EXPECT_TRUE(e.invariant() == guard::Invariant::NeverOverwrite ||
                  e.invariant() == guard::Invariant::TokenConservation)
          << schedName(k) << ": " << e.what();
      EXPECT_NE(std::string(e.what()).find("cell #"), std::string::npos)
          << schedName(k) << ": " << e.what();
    }
  }
}

TEST(FaultPlan, ParseDescribeRoundTrip) {
  const fault::Plan p = fault::parsePlan(
      "seed=7,jitter=3,delay=2,skew=1,reorder,outage=fpu@10+20,"
      "outage=alu@5+3,drop-result=5,dup-result=6,drop-ack=7,dup-ack=8");
  EXPECT_EQ(p.seed, 7u);
  EXPECT_EQ(p.latencyJitterMax, 3);
  EXPECT_EQ(p.deliveryDelayMax, 2);
  EXPECT_EQ(p.barrierSkewMax, 1);
  EXPECT_TRUE(p.mailboxReorder);
  ASSERT_EQ(p.outages.size(), 2u);
  EXPECT_EQ(p.outages[0].fu, dfg::FuClass::Fpu);
  EXPECT_EQ(p.outages[0].from, 10);
  EXPECT_EQ(p.outages[0].length, 20);
  EXPECT_EQ(p.dropResultPermille, 5);
  EXPECT_EQ(p.dupResultPermille, 6);
  EXPECT_EQ(p.dropAckPermille, 7);
  EXPECT_EQ(p.dupAckPermille, 8);
  EXPECT_FALSE(p.timingOnly());
  EXPECT_EQ(p.maxExtraDelay(), 3 + 2 + 1);
  EXPECT_EQ(p.lastOutageEnd(), 30);

  // describe() round-trips through parsePlan.
  const fault::Plan q = fault::parsePlan(fault::describe(p));
  EXPECT_EQ(q.seed, p.seed);
  EXPECT_EQ(q.latencyJitterMax, p.latencyJitterMax);
  EXPECT_EQ(q.deliveryDelayMax, p.deliveryDelayMax);
  EXPECT_EQ(q.barrierSkewMax, p.barrierSkewMax);
  EXPECT_EQ(q.mailboxReorder, p.mailboxReorder);
  EXPECT_EQ(q.outages.size(), p.outages.size());
  EXPECT_EQ(q.dropResultPermille, p.dropResultPermille);
  EXPECT_EQ(q.dupAckPermille, p.dupAckPermille);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(fault::parsePlan("bogus"), CompileError);
  EXPECT_THROW(fault::parsePlan("jitter="), CompileError);
  EXPECT_THROW(fault::parsePlan("jitter=abc"), CompileError);
  EXPECT_THROW(fault::parsePlan("outage=xyz@1+2"), CompileError);
  EXPECT_THROW(fault::parsePlan("outage=fpu@1"), CompileError);
  EXPECT_THROW(fault::parsePlan("drop-result=2000"), CompileError);
  EXPECT_THROW(fault::parsePlan("drop-result=-1"), CompileError);
}

TEST(StallCap, InterpreterThrowsPastInstructionTimeCap) {
  const auto prog = core::compile(core::frontend(testing::example1Source(8)));
  val::ArrayMap in;
  in["B"] = randomArray({0, 9}, 41);
  in["C"] = randomArray({0, 9}, 42);
  run::RunOptions opts;
  opts.maxInstructionTimes = 10;  // far below what the program needs
  EXPECT_THROW(
      sim::interpret(prog.graph, testing::inputsFor(prog, in), opts),
      run::StallError);
}

TEST(StallCap, EveryEngineThrowsWhenCapCutsARunShort) {
  const Workload w = makeWorkload(0);
  for (const SchedulerKind k : kAllSchedulers) {
    RunOptions opts;
    opts.waves = 1;
    opts.expectedOutputs[w.prog.outputName] = w.prog.expectedOutputPerWave();
    opts.scheduler = k;
    opts.threads = 2;
    opts.maxInstructionTimes = 5;  // cuts any real run short
    try {
      machine::simulate(w.lowered, MachineConfig::unit(), w.streams, opts);
      FAIL() << schedName(k) << ": truncated run did not throw";
    } catch (const run::StallError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("cap"), std::string::npos)
          << schedName(k) << ": " << msg;
      EXPECT_NE(msg.find("incomplete outputs"), std::string::npos)
          << schedName(k) << ": " << msg;
    }
  }
}

TEST(Watchdog, UnbalancedExpectationDiagnosesDeadlockNotFaults) {
  // An impossible output expectation deadlocks every engine; with the
  // watchdog armed this becomes a StallError whose diagnosis names the
  // graph, not injected faults (there are none).
  const Workload w = makeWorkload(3);
  for (const SchedulerKind k : kAllSchedulers) {
    RunOptions opts;
    opts.waves = 1;
    opts.expectedOutputs[w.prog.outputName] = 1'000'000;  // never arrives
    opts.scheduler = k;
    opts.threads = 2;
    opts.watchdog = 100;
    opts.maxInstructionTimes = 500'000;
    try {
      machine::simulate(w.lowered, MachineConfig::unit(), w.streams, opts);
      FAIL() << schedName(k) << ": impossible expectation completed";
    } catch (const run::StallError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("incomplete outputs"), std::string::npos)
          << schedName(k) << ": " << msg;
      EXPECT_EQ(msg.find("injected faults"), std::string::npos)
          << schedName(k) << ": fault-free stall blamed the injector: " << msg;
    }
  }
}

TEST(Watchdog, DisarmedDeadlockStillEndsWithoutThrowing) {
  // Without the watchdog, the legacy ending survives: the run quiesces and
  // reports incompleteness through MachineResult, throwing nothing.
  const Workload w = makeWorkload(3);
  RunOptions opts;
  opts.waves = 1;
  opts.expectedOutputs[w.prog.outputName] = 1'000'000;
  const MachineResult res =
      machine::simulate(w.lowered, MachineConfig::unit(), w.streams, opts);
  EXPECT_FALSE(res.completed);
}

}  // namespace
}  // namespace valpipe
