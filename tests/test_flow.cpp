// Unit and property tests for the min-cost-flow substrate and the
// difference-constraint LP solver (§8 (3): optimum balancing is the LP dual
// of min-cost flow).  The property suite cross-checks the LP solver against
// brute-force enumeration on small random instances.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <random>

#include "flow/difference_lp.hpp"
#include "flow/mincostflow.hpp"

namespace valpipe::flow {
namespace {

TEST(MinCostFlow, SimplePath) {
  MinCostFlow mcf(3);
  mcf.setSupply(0, 5);
  mcf.setSupply(2, -5);
  const int e0 = mcf.addEdge(0, 1, 10, 1);
  const int e1 = mcf.addEdge(1, 2, 10, 2);
  const auto res = mcf.solve();
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.totalCost, 15);
  EXPECT_EQ(mcf.flowOn(e0), 5);
  EXPECT_EQ(mcf.flowOn(e1), 5);
}

TEST(MinCostFlow, PrefersCheaperRoute) {
  MinCostFlow mcf(4);
  mcf.setSupply(0, 4);
  mcf.setSupply(3, -4);
  const int cheap1 = mcf.addEdge(0, 1, 3, 1);
  const int cheap2 = mcf.addEdge(1, 3, 3, 1);
  const int dear = mcf.addEdge(0, 3, 10, 5);
  const auto res = mcf.solve();
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(mcf.flowOn(cheap1), 3);
  EXPECT_EQ(mcf.flowOn(cheap2), 3);
  EXPECT_EQ(mcf.flowOn(dear), 1);
  EXPECT_EQ(res.totalCost, 3 * 2 + 5);
}

TEST(MinCostFlow, InfeasibleWhenCapacityMissing) {
  MinCostFlow mcf(2);
  mcf.setSupply(0, 5);
  mcf.setSupply(1, -5);
  mcf.addEdge(0, 1, 3, 1);
  EXPECT_FALSE(mcf.solve().feasible);
}

TEST(MinCostFlow, NegativeCostsOnDag) {
  MinCostFlow mcf(3);
  mcf.setSupply(0, 2);
  mcf.setSupply(2, -2);
  const int neg = mcf.addEdge(0, 1, 5, -3);
  mcf.addEdge(1, 2, 5, 1);
  const int direct = mcf.addEdge(0, 2, 5, 0);
  const auto res = mcf.solve();
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(mcf.flowOn(neg), 2);
  EXPECT_EQ(mcf.flowOn(direct), 0);
  EXPECT_EQ(res.totalCost, -4);
}

TEST(MinCostFlow, PotentialsSatisfyReducedCostOptimality) {
  MinCostFlow mcf(4);
  mcf.setSupply(0, 3);
  mcf.setSupply(3, -3);
  mcf.addEdge(0, 1, 10, 1);  // cheap side, never saturated
  mcf.addEdge(0, 2, 10, 3);
  mcf.addEdge(1, 3, 10, 1);
  mcf.addEdge(2, 3, 10, 1);
  ASSERT_TRUE(mcf.solve().feasible);
  // Unsaturated arcs must have non-negative reduced cost:
  // cost + pi[u] - pi[v] >= 0, i.e. pi[v] - pi[u] <= cost.
  EXPECT_LE(mcf.potential(1) - mcf.potential(0), 1);
  EXPECT_LE(mcf.potential(2) - mcf.potential(0), 3);
  EXPECT_LE(mcf.potential(3) - mcf.potential(1), 1);
  EXPECT_LE(mcf.potential(3) - mcf.potential(2), 1);
}

TEST(DifferenceLP, ChainTightens) {
  // d1 - d0 >= 1, d2 - d1 >= 1, minimize (d2 - d0): optimum 2.
  const auto d = solveDifferenceLP(
      3, {{0, 1, 1}, {1, 2, 1}}, {{0, 2, 1}});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ((*d)[2] - (*d)[0], 2);
  EXPECT_GE((*d)[1] - (*d)[0], 1);
}

TEST(DifferenceLP, InfeasiblePositiveCycle) {
  // d1 >= d0 + 1 and d0 >= d1 + 1 is unsatisfiable.
  EXPECT_FALSE(
      solveDifferenceLP(2, {{0, 1, 1}, {1, 0, 1}}, {}).has_value());
}

TEST(DifferenceLP, EqualityViaOpposingConstraints) {
  const auto d = solveDifferenceLP(
      3, {{0, 1, 2}, {1, 0, -2}, {1, 2, 1}}, {{0, 2, 1}});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ((*d)[1] - (*d)[0], 2);
  EXPECT_EQ((*d)[2] - (*d)[0], 3);
}

TEST(DifferenceLP, DiamondPrefersCheapSide) {
  // Diamond 0->1->3, 0->2->3; objective weights make buffering on one side
  // cheaper; the optimum puts required slack where it is free.
  //   constraints: d1>=d0+1, d3>=d1+1, d2>=d0+3, d3>=d2+1
  //   objective: minimize slack on all four arcs equally.
  const auto d = solveDifferenceLP(4,
                                   {{0, 1, 1}, {1, 3, 1}, {0, 2, 3}, {2, 3, 1}},
                                   {{0, 1, 1}, {1, 3, 1}, {0, 2, 1}, {2, 3, 1}});
  ASSERT_TRUE(d.has_value());
  std::int64_t total = ((*d)[1] - (*d)[0] - 1) + ((*d)[3] - (*d)[1] - 1) +
                       ((*d)[2] - (*d)[0] - 3) + ((*d)[3] - (*d)[2] - 1);
  EXPECT_EQ(total, 2);  // the unavoidable mismatch of the two sides
}

// Property: LP solution matches brute force on random small instances.
class DiffLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffLpProperty, MatchesBruteForce) {
  std::mt19937 rng(GetParam() * 7919 + 13);
  const int n = 3 + static_cast<int>(rng() % 3);  // 3..5 variables
  std::vector<DiffConstraint> cons;
  std::vector<DiffObjectiveTerm> obj;
  // Random DAG constraints u < v so no positive cycles; lo in {-1..2}.
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) {
      if (rng() % 2 == 0) continue;
      const std::int64_t lo = static_cast<std::int64_t>(rng() % 4) - 1;
      cons.push_back({u, v, lo});
      if (rng() % 2 == 0) obj.push_back({u, v, static_cast<std::int64_t>(rng() % 3)});
    }

  const auto lp = solveDifferenceLP(n, cons, obj);
  ASSERT_TRUE(lp.has_value());

  auto objective = [&](const std::vector<std::int64_t>& d) {
    std::int64_t s = 0;
    for (const auto& t : obj) s += t.w * (d[t.v] - d[t.u]);
    return s;
  };
  auto feasible = [&](const std::vector<std::int64_t>& d) {
    for (const auto& c : cons)
      if (d[c.v] - d[c.u] < c.lo) return false;
    return true;
  };
  ASSERT_TRUE(feasible(*lp));

  // Brute force over a small box (optimal depths fit in [0, 3n] here since
  // lo <= 2 and chains are short).
  const std::int64_t box = 8;
  std::vector<std::int64_t> d(n, 0);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  std::function<void(int)> enumerate = [&](int v) {
    if (v == n) {
      if (feasible(d)) best = std::min(best, objective(d));
      return;
    }
    for (std::int64_t x = -box; x <= box; ++x) {
      d[v] = x;
      enumerate(v + 1);
    }
  };
  enumerate(0);
  ASSERT_NE(best, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(objective(*lp), best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffLpProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace valpipe::flow
