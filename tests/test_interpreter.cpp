// Unit tests for the untimed Kahn interpreter: op semantics, gating, merge
// non-strictness, sources, waves, array memory and stall behaviour.
#include <gtest/gtest.h>

#include "dfg/graph.hpp"
#include "sim/interpreter.hpp"
#include "support/check.hpp"

namespace valpipe::sim {
namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;

std::vector<Value> reals(std::initializer_list<double> xs) {
  std::vector<Value> out;
  for (double x : xs) out.push_back(Value(x));
  return out;
}

TEST(Interpreter, ArithmeticChain) {
  // Figure 2's fragment: y = a*b in (y+2)*(y-3)
  Graph g;
  const NodeId a = g.input("a", 3);
  const NodeId b = g.input("b", 3);
  const NodeId y = g.binary(Op::Mul, Graph::out(a), Graph::out(b));
  const NodeId p = g.binary(Op::Add, Graph::out(y), Graph::lit(Value(2.0)));
  const NodeId q = g.binary(Op::Sub, Graph::out(y), Graph::lit(Value(3.0)));
  const NodeId r = g.binary(Op::Mul, Graph::out(p), Graph::out(q));
  g.output("x", Graph::out(r));

  const auto res = interpret(g, {{"a", reals({1, 2, 3})},
                                 {"b", reals({4, 5, 6})}});
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(res.outputs.at("x"),
            reals({6 * 1, 12 * 7, 20 * 15}));
}

TEST(Interpreter, GateRoutesAndDiscards) {
  Graph g;
  const NodeId in = g.input("a", 4);
  dfg::BoolPattern p;
  p.bits = {true, false, false, true};
  const NodeId ctl = g.boolSeq(p);
  const NodeId gate = g.gatedIdentity(Graph::out(in), Graph::out(ctl));
  g.output("t", Graph::outT(gate));
  // F side unconnected: those packets are discarded (jam avoidance).
  const auto res = interpret(g, {{"a", reals({1, 2, 3, 4})}});
  EXPECT_EQ(res.outputs.at("t"), reals({1, 4}));
}

TEST(Interpreter, GateBothSides) {
  Graph g;
  const NodeId in = g.input("a", 4);
  dfg::BoolPattern p;
  p.bits = {true, false, true, false};
  const NodeId ctl = g.boolSeq(p);
  const NodeId gate = g.gatedIdentity(Graph::out(in), Graph::out(ctl));
  g.output("t", Graph::outT(gate));
  g.output("f", Graph::outF(gate));
  const auto res = interpret(g, {{"a", reals({1, 2, 3, 4})}});
  EXPECT_EQ(res.outputs.at("t"), reals({1, 3}));
  EXPECT_EQ(res.outputs.at("f"), reals({2, 4}));
}

TEST(Interpreter, MergeNonStrict) {
  // Merge can keep producing from the T side while the F side is empty.
  Graph g;
  const NodeId a = g.input("a", 3);
  dfg::BoolPattern p;
  p.bits = {true, true, true, false};
  const NodeId ctl = g.boolSeq(p);
  const NodeId mg = g.merge(Graph::out(ctl), Graph::out(a),
                            Graph::lit(Value(-1.0)));
  g.output("x", Graph::out(mg));
  const auto res = interpret(g, {{"a", reals({1, 2, 3})}});
  EXPECT_EQ(res.outputs.at("x"), reals({1, 2, 3, -1}));
}

TEST(Interpreter, IndexSeqAndRepeat) {
  Graph g;
  const NodeId seq = g.indexSeq(2, 4, 2);
  g.output("x", Graph::out(seq));
  const auto res = interpret(g, {});
  std::vector<Value> want{Value(2), Value(2), Value(3),
                          Value(3), Value(4), Value(4)};
  EXPECT_EQ(res.outputs.at("x"), want);
}

TEST(Interpreter, WavesReplayInputs) {
  Graph g;
  const NodeId in = g.input("a", 2);
  g.output("x", Graph::out(in));
  run::RunOptions opts;
  opts.waves = 3;
  const auto res = interpret(g, {{"a", reals({7, 8})}}, opts);
  EXPECT_EQ(res.outputs.at("x"), reals({7, 8, 7, 8, 7, 8}));
}

TEST(Interpreter, RelationalAndBooleanOps) {
  Graph g;
  const NodeId in = g.input("a", 3);
  const NodeId lt = g.binary(Op::Lt, Graph::out(in), Graph::lit(Value(2.0)));
  const NodeId nt = g.unary(Op::Not, Graph::out(lt));
  g.output("x", Graph::out(nt));
  const auto res = interpret(g, {{"a", reals({1, 2, 3})}});
  EXPECT_EQ(res.outputs.at("x"),
            (std::vector<Value>{Value(false), Value(true), Value(true)}));
}

TEST(Interpreter, ArrayMemoryStoreThenFetch) {
  // Producer stores into AM; a fetch node streams it back out.
  Graph g;
  const NodeId in = g.input("a", 3);
  const NodeId dbl = g.binary(Op::Mul, Graph::out(in), Graph::lit(Value(2)));
  g.amStore("mem", Graph::out(dbl));
  const NodeId fetch = g.amFetch("mem", 3);
  g.output("x", Graph::out(fetch));
  const auto res = interpret(g, {{"a", reals({1, 2, 3})}});
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(res.outputs.at("x"), reals({2, 4, 6}));
  EXPECT_EQ(res.amFinal.at("mem"), reals({2, 4, 6}));
}

TEST(Interpreter, AmFetchFromPreloadedMemory) {
  Graph g;
  const NodeId fetch = g.amFetch("mem", 2);
  g.output("x", Graph::out(fetch));
  run::RunOptions opts;
  opts.amInitial["mem"] = reals({5, 6});
  const auto res = interpret(g, {}, opts);
  EXPECT_EQ(res.outputs.at("x"), reals({5, 6}));
}

TEST(Interpreter, FeedbackLoopAccumulates) {
  // x_0 = 0 out of the merge, then x_{k+1} = x_k + 1 fed back: 0,1,2,3.
  Graph g;
  const NodeId entry = g.identity(Graph::lit(Value(0)));
  const NodeId step = g.binary(Op::Add, Graph::out(entry), Graph::lit(Value(1)));
  dfg::BoolPattern ctlBits;
  ctlBits.bits = {false, true, true, true};
  const NodeId ctl = g.boolSeq(ctlBits);
  const NodeId mg = g.merge(Graph::out(ctl), Graph::out(step),
                            Graph::lit(Value(0)));
  dfg::BoolPattern outBits;
  outBits.bits = {true, true, true, false};
  g.node(mg).gate = Graph::out(g.boolSeq(outBits));
  PortSrc back = Graph::outT(mg);
  back.feedback = true;
  g.node(entry).inputs[0] = back;
  g.output("x", Graph::out(mg));

  const auto res = interpret(g, {});
  EXPECT_EQ(res.outputs.at("x"),
            (std::vector<Value>{Value(0), Value(1), Value(2), Value(3)}));
}

TEST(Interpreter, TypeFaultSurfacesAsValueError) {
  Graph g;
  const NodeId in = g.input("a", 1);
  const NodeId bad = g.binary(Op::And, Graph::out(in), Graph::lit(Value(true)));
  g.output("x", Graph::out(bad));
  EXPECT_THROW(interpret(g, {{"a", reals({1})}}), ValueError);
}

TEST(Interpreter, MissingInputIsAnError) {
  Graph g;
  const NodeId in = g.input("a", 2);
  g.output("x", Graph::out(in));
  EXPECT_THROW(interpret(g, {}), valpipe::InternalError);
}

TEST(Interpreter, MaxFiringsGuard) {
  // An identity with a literal operand is always enabled: a runaway that
  // must trip the firing guard.
  Graph g;
  const NodeId forever = g.identity(Graph::lit(Value(0)));
  g.output("x", Graph::out(forever));
  run::RunOptions opts;
  opts.maxFirings = 1000;
  const auto res = interpret(g, {}, opts);
  EXPECT_FALSE(res.quiescent);
  EXPECT_FALSE(res.note.empty());
}

TEST(Interpreter, DeadlockedLoopQuiescesWithoutOutput) {
  // A feedback loop with no initial token cannot fire at all.
  Graph g;
  const NodeId entry = g.identity(Graph::lit(Value(0)));
  const NodeId step = g.binary(Op::Add, Graph::out(entry), Graph::lit(Value(1)));
  PortSrc back = Graph::out(step);
  back.feedback = true;
  g.node(entry).inputs[0] = back;
  g.output("x", Graph::out(step));
  const auto res = interpret(g, {});
  EXPECT_TRUE(res.quiescent);
  EXPECT_EQ(res.outputs.count("x"), 0u);
}

}  // namespace
}  // namespace valpipe::sim
