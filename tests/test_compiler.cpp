// Compiler-level tests: options, scheme selection, data-dependent
// conditionals, memory routing, pruning, balance modes and error paths.
#include <gtest/gtest.h>

#include "analysis/paths.hpp"
#include "dfg/stats.hpp"
#include "dfg/validate.hpp"
#include "testing.hpp"

namespace valpipe {
namespace {

using core::ArrayRouting;
using core::BalanceMode;
using core::CompileOptions;
using core::CompiledProgram;
using core::ForallScheme;
using core::ForIterScheme;
using testing::checkInterpreted;
using testing::checkMachine;
using testing::randomArray;

TEST(Compiler, CompiledGraphIsValidatedAndBalanced) {
  const auto prog = core::compileSource(testing::example1Source(16));
  EXPECT_TRUE(dfg::validate(prog.graph).ok());
  const auto rep = analysis::checkBalanced(prog.graph);
  EXPECT_TRUE(rep.balanced) << rep.reason;
  EXPECT_GT(prog.balance.buffersInserted, 0u);
  EXPECT_EQ(prog.outputName, "result");
  EXPECT_EQ(prog.outputRange, (val::Range{0, 17}));
}

TEST(Compiler, BalanceNoneLeavesSkewUnbuffered) {
  CompileOptions none;
  none.balanceMode = BalanceMode::None;
  const auto prog = core::compileSource(testing::example1Source(16), none);
  EXPECT_EQ(prog.balance.buffersInserted, 0u);
  EXPECT_FALSE(analysis::checkBalanced(prog.graph).balanced);
}

TEST(Compiler, OptimalNeverBuffersMoreThanLongestPath) {
  for (const char* src : {"ex1", "ex2", "fig3"}) {
    const std::string source = std::string(src) == "ex1"
                                   ? testing::example1Source(16)
                               : std::string(src) == "ex2"
                                   ? testing::example2Source(16)
                                   : testing::figure3Source(16);
    CompileOptions lp, opt;
    lp.balanceMode = BalanceMode::LongestPath;
    opt.balanceMode = BalanceMode::Optimal;
    const auto a = core::compileSource(source, lp);
    const auto b = core::compileSource(source, opt);
    EXPECT_LE(b.balance.buffersInserted, a.balance.buffersInserted) << src;
    EXPECT_TRUE(analysis::checkBalanced(a.graph).balanced) << src;
    EXPECT_TRUE(analysis::checkBalanced(b.graph).balanced) << src;
  }
}

TEST(Compiler, LongestPathModeStillRunsAtFullRate) {
  const int m = 63;
  val::Module mod = core::frontend(testing::example1Source(m));
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 21);
  in["C"] = randomArray({0, m + 1}, 22);
  const auto ref = val::evaluate(mod, in);
  CompileOptions opts;
  opts.balanceMode = BalanceMode::LongestPath;
  const auto prog = core::compile(mod, opts);
  checkMachine(prog, in, ref.result.elems, 0.0, 2, 0.45, 0.5);
}

TEST(Compiler, DataDependentConditional) {
  const int m = 24;
  const std::string src = "const m = " + std::to_string(m) + "\n" + R"(
function f(A, B, C: array[real] [0, m] returns array[real])
  forall i in [0, m]
  construct if C[i] > 0. then -(A[i] + B[i])
            else 5. * (A[i] * B[i] + 2.) endif
  endall
endfun
)";
  val::Module mod = core::frontend(src);
  val::ArrayMap in;
  in["A"] = randomArray({0, m}, 31);
  in["B"] = randomArray({0, m}, 32);
  in["C"] = randomArray({0, m}, 33);  // mixed signs
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);
  checkInterpreted(prog, in, ref.result.elems);
  // Fig. 5: balanced conditional arms sustain the full rate.
  checkMachine(prog, in, ref.result.elems, 0.0, 4, 0.45, 0.5);
}

TEST(Compiler, NestedConditionals) {
  const int m = 16;
  const std::string src = "const m = " + std::to_string(m) + "\n" + R"(
function f(A, B: array[real] [0, m] returns array[real])
  forall i in [0, m]
  construct if i < 4 then A[i]
            else if B[i] > 0. then A[i] * 2. else 1. - B[i] endif endif
  endall
endfun
)";
  val::Module mod = core::frontend(src);
  val::ArrayMap in;
  in["A"] = randomArray({0, m}, 41);
  in["B"] = randomArray({0, m}, 42);
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);
  checkInterpreted(prog, in, ref.result.elems);
  checkMachine(prog, in, ref.result.elems);
}

TEST(Compiler, IndexVariableAsValue) {
  const int m = 12;
  const std::string src = "const m = " + std::to_string(m) + "\n" + R"(
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m] construct A[i] * (0.5 * i) endall
endfun
)";
  val::Module mod = core::frontend(src);
  val::ArrayMap in;
  in["A"] = randomArray({0, m}, 51);
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);
  checkInterpreted(prog, in, ref.result.elems);
}

TEST(Compiler, ConstantBlockIsMetered) {
  const std::string src = R"(
const m = 6
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m] construct 2.5 endall
endfun
)";
  val::Module mod = core::frontend(src);
  val::ArrayMap in;
  in["A"] = randomArray({0, 6}, 61);
  const auto prog = core::compile(mod);
  checkInterpreted(prog, in, std::vector<Value>(7, Value(2.5)));
}

TEST(Compiler, ParallelSchemeMatchesPipeline) {
  const int m = 10;
  val::Module mod = core::frontend(testing::example1Source(m));
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 71);
  in["C"] = randomArray({0, m + 1}, 72);
  const auto ref = val::evaluate(mod, in);

  CompileOptions par;
  par.forallScheme = ForallScheme::Parallel;
  const auto prog = core::compile(mod, par);
  EXPECT_EQ(prog.blocks[0].scheme, "forall/parallel");
  checkInterpreted(prog, in, ref.result.elems);

  // The parallel scheme replicates the body: far more cells than the
  // pipeline scheme (§6: "of limited interest" for streams).
  const auto pipe = core::compile(mod);
  EXPECT_GT(dfg::computeStats(prog.graph).cells,
            3 * dfg::computeStats(pipe.graph).cells);
}

TEST(Compiler, MemoryRoutingThreadsArrayMemory) {
  const int m = 12;
  val::Module mod = core::frontend(testing::figure3Source(m));
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 81);
  in["C"] = randomArray({0, m + 1}, 82);
  in["A2"] = randomArray({1, m}, 83, -0.9, 0.9);
  const auto ref = val::evaluate(mod, in);

  CompileOptions mem;
  mem.routing = ArrayRouting::Memory;
  const auto prog = core::compile(mod, mem);
  const auto stats = dfg::computeStats(prog.graph);
  EXPECT_GE(stats.byOp.at(dfg::Op::AmStore), 2u);
  EXPECT_GE(stats.byOp.at(dfg::Op::AmFetch), 2u);
  checkInterpreted(prog, in, ref.result.elems, 1e-9);
}

TEST(Compiler, PruneRemovesUnusedDefinitions) {
  const std::string src = R"(
const m = 8
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m]
    unused : real := A[i] * 100.;
    used : real := A[i] + 1.
  construct used endall
endfun
)";
  CompileOptions noPrune;
  noPrune.prune = false;
  const auto kept = core::compileSource(src, noPrune);
  const auto pruned = core::compileSource(src);
  EXPECT_LT(pruned.graph.size(), kept.graph.size());
}

TEST(Compiler, ScalarParamsNeedBindings) {
  const std::string src = R"(
const m = 4
function f(A: array[real] [0, m]; k: real returns array[real])
  forall i in [0, m] construct A[i] * k endall
endfun
)";
  EXPECT_THROW(core::compileSource(src), CompileError);

  CompileOptions opts;
  opts.scalarBindings["k"] = Value(3.0);
  const auto prog = core::compileSource(src, opts);
  val::ArrayMap in;
  in["A"] = randomArray({0, 4}, 91);
  std::vector<Value> want;
  for (const Value& v : in["A"].elems) want.push_back(ops::mul(v, Value(3.0)));
  checkInterpreted(prog, in, want);
}

TEST(Compiler, RejectsNonPipeStructured) {
  // Loop array read with the wrong offset: outside the supported class.
  const std::string src = R"(
const m = 8
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do if i < m + 1 then iter T := T[i: T[i] + A[i]]; i := i + 1 enditer
     else T endif
  endfor
endfun
)";
  EXPECT_THROW(core::compileSource(src), CompileError);
}

TEST(Compiler, PredictedRatesReported) {
  CompileOptions todd;
  todd.forIterScheme = ForIterScheme::Todd;
  const auto progT = core::compileSource(testing::example2Source(16), todd);
  EXPECT_NEAR(progT.predictedRate(), 1.0 / 3.0, 1e-9);

  const auto progC = core::compileSource(testing::example2Source(16));
  EXPECT_NEAR(progC.predictedRate(), 0.5, 1e-9);  // Auto picks companion
  EXPECT_NE(progC.blocks[0].scheme.find("companion"), std::string::npos);
}

TEST(Compiler, InputsReportedWithRanges) {
  const auto prog = core::compileSource(testing::figure3Source(8));
  ASSERT_EQ(prog.inputs.size(), 3u);
  EXPECT_EQ(prog.inputs.at("B"), (val::Range{0, 9}));
  EXPECT_EQ(prog.inputs.at("A2"), (val::Range{1, 8}));
}

}  // namespace
}  // namespace valpipe
