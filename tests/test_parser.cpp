// Unit tests for the Val parser: expression shapes, block shapes, the
// paper's examples, and error reporting.
#include <gtest/gtest.h>

#include "val/parser.hpp"
#include "val/pretty.hpp"

#include "testing.hpp"

namespace valpipe::val {
namespace {

ExprPtr expr(const std::string& src) {
  Diagnostics diags;
  ExprPtr e = parseExpression(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return e;
}

TEST(Parser, Precedence) {
  EXPECT_EQ(toString(expr("a + b * c")), "(a + (b * c))");
  EXPECT_EQ(toString(expr("a * b + c")), "((a * b) + c)");
  EXPECT_EQ(toString(expr("a - b - c")), "((a - b) - c)");
  EXPECT_EQ(toString(expr("a < b + 1")), "(a < (b + 1))");
  EXPECT_EQ(toString(expr("p & q | r")), "((p & q) | r)");
  EXPECT_EQ(toString(expr("(i = 0) | (i = 9)")), "((i = 0) | (i = 9))");
}

TEST(Parser, UnaryOperators) {
  EXPECT_EQ(toString(expr("-a * b")), "(-a * b)");
  EXPECT_EQ(toString(expr("~(p & q)")), "~(p & q)");
  EXPECT_EQ(toString(expr("-(A[i] + B[i])")), "-(A[i] + B[i])");
}

TEST(Parser, ArrayIndexing) {
  EXPECT_EQ(toString(expr("C[i-1]")), "C[(i - 1)]");
  EXPECT_EQ(toString(expr("C[i+1] * C[i]")), "(C[(i + 1)] * C[i])");
}

TEST(Parser, IfExpression) {
  EXPECT_EQ(toString(expr("if a then 1 else 2 endif")),
            "if a then 1 else 2 endif");
}

TEST(Parser, LetExpression) {
  const ExprPtr e = expr("let y : real := a * b in (y + 2.) * (y - 3.) endlet");
  ASSERT_EQ(e->kind, Expr::Kind::Let);
  ASSERT_EQ(e->defs.size(), 1u);
  EXPECT_EQ(e->defs[0].name, "y");
  ASSERT_TRUE(e->defs[0].declaredType.has_value());
  EXPECT_EQ(e->defs[0].declaredType->scalar, Scalar::Real);
}

TEST(Parser, PaperExample1Module) {
  Module m = parseModuleOrThrow(valpipe::testing::example1Source(8));
  EXPECT_EQ(m.functionName, "ex1");
  EXPECT_EQ(m.consts.at("m"), 8);
  ASSERT_EQ(m.params.size(), 2u);
  EXPECT_EQ(m.params[0].name, "B");
  EXPECT_TRUE(m.params[0].type.isArray);
  ASSERT_TRUE(m.params[0].type.range.has_value());
  EXPECT_EQ(*m.params[0].type.range, (Range{0, 9}));
  ASSERT_EQ(m.blocks.size(), 1u);
  ASSERT_TRUE(m.blocks[0].isForall());
  const ForallBlock& fb = m.blocks[0].forall();
  EXPECT_EQ(fb.indexVar, "i");
  ASSERT_EQ(fb.defs.size(), 1u);
  EXPECT_EQ(fb.defs[0].name, "P");
}

TEST(Parser, PaperExample2Module) {
  Module m = parseModuleOrThrow(valpipe::testing::example2Source(8));
  ASSERT_EQ(m.blocks.size(), 1u);
  ASSERT_FALSE(m.blocks[0].isForall());
  const ForIterBlock& fi = m.blocks[0].forIter();
  EXPECT_EQ(fi.indexVar, "i");
  EXPECT_EQ(fi.accVar, "T");
  ASSERT_EQ(fi.defs.size(), 1u);
  EXPECT_EQ(fi.defs[0].name, "P");
  EXPECT_EQ(toString(fi.appendValue), "P");
  // Constants stay symbolic in the AST; they fold during checking.
  EXPECT_EQ(toString(fi.cond), "(i < (m + 1))");
}

TEST(Parser, MultiBlockLetBody) {
  Module m = parseModuleOrThrow(valpipe::testing::figure3Source(8));
  ASSERT_EQ(m.blocks.size(), 2u);
  EXPECT_EQ(m.blocks[0].name, "A");
  EXPECT_EQ(m.blocks[1].name, "X");
  EXPECT_EQ(m.resultName, "X");
}

TEST(Parser, ManifestConstantFolding) {
  Module m = parseModuleOrThrow(R"(
const n = 4
const m = 2 * n + 1
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m] construct A[i] endall
endfun
)");
  EXPECT_EQ(m.consts.at("m"), 9);
  EXPECT_EQ(*m.params[0].type.range, (Range{0, 9}));
}

TEST(Parser, IterArmOrderIsFlexible) {
  // i := i + 1 may come before the append.
  Module m = parseModuleOrThrow(R"(
const m = 4
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do if i < m + 1 then iter i := i + 1; T := T[i: A[i]] enditer
     else T endif
  endfor
endfun
)");
  EXPECT_FALSE(m.blocks[0].isForall());
}

// --- error cases ---

void expectParseError(const std::string& src, const std::string& needle) {
  Diagnostics diags;
  parseModule(src, diags);
  ASSERT_TRUE(diags.hasErrors()) << "expected a parse error";
  EXPECT_NE(diags.str().find(needle), std::string::npos) << diags.str();
}

TEST(ParserErrors, MissingEndall) {
  expectParseError(
      "function f(A: array[real] [0,1] returns array[real])\n"
      "forall i in [0, 1] construct A[i] endfun",
      "expected");
}

TEST(ParserErrors, NonManifestRange) {
  expectParseError(
      "function f(A: array[real] [0, k] returns array[real])\n"
      "forall i in [0, 1] construct A[i] endall endfun",
      "not a manifest constant");
}

TEST(ParserErrors, BadIterStep) {
  expectParseError(R"(
const m = 4
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do if i < m then iter T := T[i: A[i]]; i := i + 2 enditer
     else T endif
  endfor
endfun
)",
                   "must advance");
}

TEST(ParserErrors, ForIterResultMustBeLoopArray) {
  expectParseError(R"(
const m = 4
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do if i < m then iter T := T[i: A[i]]; i := i + 1 enditer
     else A endif
  endfor
endfun
)",
                   "result must be the loop array");
}

TEST(ParserErrors, DuplicateConstant) {
  expectParseError(
      "const m = 1\nconst m = 2\n"
      "function f(A: array[real] [0, m] returns array[real])\n"
      "forall i in [0, m] construct A[i] endall endfun",
      "duplicate constant");
}

TEST(ParserErrors, IndexingNonIdentifier) {
  Diagnostics diags;
  parseExpression("(a + b)[i]", diags);
  EXPECT_TRUE(diags.hasErrors());
}

}  // namespace
}  // namespace valpipe::val
