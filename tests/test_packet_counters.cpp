// 64-bit packet-counter contract (exec/packet_counters.hpp).
//
// The counters are pinned to std::uint64_t by static_asserts in the header;
// this test proves they stay *exact* at multi-million-firing scale.  Packet
// traffic of the Figure 2 pipeline is exactly linear in the stream length, so
// we derive the per-element slope from two short runs, confirm it on a third,
// and then demand bit-exact agreement on a run with more than five million
// firings — any narrowing or truncation in the accumulation paths breaks the
// equality.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <type_traits>

#include "dfg/graph.hpp"
#include "exec/packet_counters.hpp"
#include "machine/engine.hpp"

namespace valpipe {
namespace {

static_assert(std::is_same_v<decltype(exec::PacketCounters::resultPackets),
                             std::uint64_t>);
static_assert(std::is_same_v<decltype(exec::PacketCounters::ackPackets),
                             std::uint64_t>);
static_assert(
    std::is_same_v<decltype(exec::PacketCounters::networkResultPackets),
                   std::uint64_t>);
static_assert(std::is_same_v<decltype(exec::PacketCounters::opPacketsByClass),
                             std::array<std::uint64_t, 4>>);

using dfg::Graph;
using dfg::Op;

Graph figure2Graph(std::int64_t n) {
  Graph g;
  const auto a = g.input("a", n);
  const auto b = g.input("b", n);
  const auto y = g.binary(Op::Mul, Graph::out(a), Graph::out(b), "cell1");
  const auto p =
      g.binary(Op::Add, Graph::out(y), Graph::lit(Value(2.0)), "cell2");
  const auto q =
      g.binary(Op::Sub, Graph::out(y), Graph::lit(Value(3.0)), "cell3");
  const auto r = g.binary(Op::Mul, Graph::out(p), Graph::out(q), "cell4");
  g.output("x", Graph::out(r));
  return g;
}

struct Counts {
  std::uint64_t firings = 0;
  std::uint64_t results = 0;
  std::uint64_t acks = 0;
  std::uint64_t ops = 0;
};

Counts countsFor(std::int64_t n) {
  Graph g = figure2Graph(n);
  run::StreamMap in;
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (const char* name : {"a", "b"}) {
    std::vector<Value> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) v.push_back(Value(dist(rng)));
    in[name] = std::move(v);
  }
  machine::RunOptions opts;
  opts.expectedOutputs["x"] = n;
  const auto res =
      machine::simulate(g, machine::MachineConfig::unit(), in, opts);
  EXPECT_TRUE(res.completed) << res.note;
  return {res.totalFirings, res.packets.resultPackets, res.packets.ackPackets,
          res.packets.opPacketsTotal()};
}

TEST(PacketCounters, ExactAtMultiMillionFirings) {
  const Counts c1 = countsFor(512);
  const Counts c2 = countsFor(1024);

  // Per-element slopes; must divide evenly (exact linearity).
  const std::uint64_t df = (c2.firings - c1.firings) / 512;
  const std::uint64_t dr = (c2.results - c1.results) / 512;
  const std::uint64_t da = (c2.acks - c1.acks) / 512;
  const std::uint64_t dop = (c2.ops - c1.ops) / 512;
  ASSERT_EQ(c2.firings, c1.firings + df * 512);
  ASSERT_EQ(c2.results, c1.results + dr * 512);
  ASSERT_EQ(c2.acks, c1.acks + da * 512);
  ASSERT_EQ(c2.ops, c1.ops + dop * 512);

  // Confirm linearity holds at a third, non-power-of-two point.
  const Counts c3 = countsFor(1536);
  EXPECT_EQ(c3.firings, c1.firings + df * 1024);
  EXPECT_EQ(c3.results, c1.results + dr * 1024);
  EXPECT_EQ(c3.acks, c1.acks + da * 1024);
  EXPECT_EQ(c3.ops, c1.ops + dop * 1024);

  // The regression check: over five million firings, counted exactly.
  const std::int64_t big = 800'000;
  const Counts cb = countsFor(big);
  EXPECT_GT(cb.firings, 5'000'000u);
  EXPECT_EQ(cb.firings,
            c1.firings + df * static_cast<std::uint64_t>(big - 512));
  EXPECT_EQ(cb.results,
            c1.results + dr * static_cast<std::uint64_t>(big - 512));
  EXPECT_EQ(cb.acks, c1.acks + da * static_cast<std::uint64_t>(big - 512));
  EXPECT_EQ(cb.ops, c1.ops + dop * static_cast<std::uint64_t>(big - 512));
}

}  // namespace
}  // namespace valpipe
