// For-iter mapping schemes (§7, §9): Todd vs companion (k sweep) vs the
// long-FIFO interleaving alternative — functional equivalence and rates.
#include <gtest/gtest.h>

#include "testing.hpp"

namespace valpipe {
namespace {

using core::CompileOptions;
using core::ForIterScheme;
using testing::checkMachine;
using testing::randomArray;

struct SchemeCase {
  ForIterScheme scheme;
  int param;  // companion skip or interleave batch
};

val::ArrayMap exampleInputs(int m, unsigned seed) {
  val::ArrayMap in;
  in["A"] = randomArray({1, m}, seed, -0.8, 0.8);
  in["B"] = randomArray({1, m}, seed + 1);
  return in;
}

TEST(ForIter, CompanionSkipSweepKeepsFullRate) {
  const int m = 255;
  val::Module mod = core::frontend(testing::example2Source(m));
  val::ArrayMap in = exampleInputs(m, 101);
  const auto ref = val::evaluate(mod, in);

  for (int k : {2, 4, 8}) {
    CompileOptions opts;
    opts.forIterScheme = ForIterScheme::Companion;
    opts.companionSkip = k;
    const auto prog = core::compile(mod, opts);
    EXPECT_EQ(prog.blocks[0].cycleStages, 2 * k) << "k=" << k;
    EXPECT_EQ(prog.blocks[0].cycleTokens, k) << "k=" << k;
    checkMachine(prog, in, ref.result.elems, 1e-6, 1, 0.45, 0.5);
  }
}

TEST(ForIter, CompanionRejectsBadSkip) {
  val::Module mod = core::frontend(testing::example2Source(16));
  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::Companion;
  opts.companionSkip = 3;  // not a power of two
  EXPECT_THROW(core::compile(mod, opts), CompileError);
  opts.companionSkip = 32;  // exceeds trip count
  EXPECT_THROW(core::compile(mod, opts), CompileError);
}

TEST(ForIter, CompanionRejectsNonLinear) {
  const std::string src = R"(
const m = 16
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0.5]
  do if i < m + 1 then iter T := T[i: T[i-1]*T[i-1]*0.5 + A[i]]; i := i + 1 enditer
     else T endif
  endfor
endfun
)";
  val::Module mod = core::frontend(src);
  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::Companion;
  EXPECT_THROW(core::compile(mod, opts), CompileError);
}

TEST(ForIter, AutoFallsBackToToddForNonLinear) {
  const std::string src = R"(
const m = 32
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0.5]
  do if i < m + 1 then iter T := T[i: T[i-1]*T[i-1]*0.5 + A[i]]; i := i + 1 enditer
     else T endif
  endfor
endfun
)";
  val::Module mod = core::frontend(src);
  val::ArrayMap in;
  in["A"] = randomArray({1, 32}, 111, -0.5, 0.5);
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);  // Auto
  EXPECT_EQ(prog.blocks[0].scheme, "for-iter/todd");
  // Body T[i-1]*T[i-1]*0.5 + A[i] has a 4-cell cycle: rate 1/4.
  EXPECT_EQ(prog.blocks[0].cycleStages, 4);
  checkMachine(prog, in, ref.result.elems, 0.0, 1, 0.22, 0.25);
}

TEST(ForIter, ConstantCoefficientRecurrence) {
  // x_i = 0.5 x_{i-1} + 1: alpha/beta fold to literals; the companion
  // pipeline folds away entirely yet the loop still runs at full rate.
  const std::string src = R"(
const m = 127
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do if i < m + 1 then iter T := T[i: 0.5 * T[i-1] + 1.]; i := i + 1 enditer
     else T endif
  endfor
endfun
)";
  val::Module mod = core::frontend(src);
  val::ArrayMap in;  // A unused but declared
  in["A"] = randomArray({1, 127}, 121);
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);
  EXPECT_NE(prog.blocks[0].scheme.find("companion"), std::string::npos);
  checkMachine(prog, in, ref.result.elems, 1e-9, 1, 0.45, 0.5);
}

TEST(ForIter, RecurrenceIndependentOfPreviousElement) {
  // The body never reads T[i-1]: no cycle at all, plain pipeline.
  const std::string src = R"(
const m = 64
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do if i < m + 1 then iter T := T[i: A[i] * 2.]; i := i + 1 enditer
     else T endif
  endfor
endfun
)";
  val::Module mod = core::frontend(src);
  val::ArrayMap in;
  in["A"] = randomArray({1, 64}, 131);
  const auto ref = val::evaluate(mod, in);
  CompileOptions todd;
  todd.forIterScheme = ForIterScheme::Todd;
  const auto prog = core::compile(mod, todd);
  EXPECT_EQ(prog.blocks[0].cycleTokens, 0);
  checkMachine(prog, in, ref.result.elems, 0.0, 1, 0.45, 0.5);
}

TEST(ForIter, LongFifoInterleavedBatchesAtFullRate) {
  const int m = 127;
  val::Module mod = core::frontend(testing::example2Source(m));

  for (int batch : {2, 4, 8}) {
    CompileOptions opts;
    opts.forIterScheme = ForIterScheme::LongFifo;
    opts.interleave = batch;
    const auto prog = core::compile(mod, opts);
    EXPECT_EQ(prog.blocks[0].cycleStages, 2 * batch);
    EXPECT_EQ(prog.interleave, batch);

    // Build element-interleaved inputs for `batch` independent instances and
    // the matching expected output by running the reference per instance.
    std::vector<val::ArrayMap> inst(batch);
    std::vector<val::EvalResult> refs;
    for (int b = 0; b < batch; ++b) {
      inst[b] = exampleInputs(m, 200 + 10 * b);
      refs.push_back(val::evaluate(mod, inst[b]));
    }
    run::StreamMap interleaved;
    for (const char* name : {"A", "B"}) {
      std::vector<Value> s;
      for (int i = 0; i < m; ++i)
        for (int b = 0; b < batch; ++b)
          s.push_back(inst[b].at(name).elems[i]);
      interleaved[name] = std::move(s);
    }
    std::vector<Value> want;
    for (int i = 0; i <= m; ++i)
      for (int b = 0; b < batch; ++b)
        want.push_back(refs[b].result.elems[i]);

    dfg::Graph lowered = dfg::expandFifos(prog.graph);
    machine::RunOptions ropts;
    ropts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
    const auto res = machine::simulate(lowered, machine::MachineConfig::unit(),
                                       interleaved, ropts);
    ASSERT_TRUE(res.completed) << res.note;
    testing::expectStreamNear(res.outputs.at(prog.outputName), want, 0.0,
                              "longfifo output");
    // §9: rate restored to ~1/2, delay traded for throughput.
    EXPECT_GE(res.steadyRate(prog.outputName), 0.45) << "batch " << batch;
  }
}

TEST(ForIter, LongFifoRequiresBatchAtLeastTwo) {
  val::Module mod = core::frontend(testing::example2Source(16));
  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::LongFifo;
  opts.interleave = 1;
  EXPECT_THROW(core::compile(mod, opts), CompileError);
}

TEST(ForIter, LongFifoRejectsMultiBlockPrograms) {
  val::Module mod = core::frontend(testing::figure3Source(16));
  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::LongFifo;
  opts.interleave = 4;
  EXPECT_THROW(core::compile(mod, opts), CompileError);
}

TEST(ForIter, CompanionMatchesToddNumerically) {
  // Same program, both schemes, same inputs: results agree to fp tolerance.
  const int m = 64;
  val::Module mod = core::frontend(testing::example2Source(m));
  val::ArrayMap in = exampleInputs(m, 141);

  CompileOptions todd, comp;
  todd.forIterScheme = ForIterScheme::Todd;
  comp.forIterScheme = ForIterScheme::Companion;
  const auto progT = core::compile(mod, todd);
  const auto progC = core::compile(mod, comp);

  const auto rT = sim::interpret(progT.graph, testing::inputsFor(progT, in));
  const auto rC = sim::interpret(progC.graph, testing::inputsFor(progC, in));
  testing::expectStreamNear(rC.outputs.at("result"), rT.outputs.at("result"),
                            1e-9, "companion vs todd");
}

}  // namespace
}  // namespace valpipe
