// Tests for instruction-cell placement onto processing elements and the
// distribution-network traffic/delay model (Fig. 1).
#include <gtest/gtest.h>

#include "dfg/lower.hpp"
#include "machine/engine.hpp"
#include "machine/placement.hpp"
#include "testing.hpp"

namespace valpipe::machine {
namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;

std::vector<Value> ramp(int n) {
  std::vector<Value> out;
  for (int i = 0; i < n; ++i) out.push_back(Value(static_cast<double>(i)));
  return out;
}

Graph chain(int depth, int n) {
  Graph g;
  dfg::PortSrc cur = Graph::out(g.input("a", n));
  for (int d = 0; d < depth; ++d) cur = Graph::out(g.identity(cur));
  g.output("out", cur);
  return g;
}

TEST(Placement, RoundRobinSpreadsCells) {
  const Graph g = chain(6, 8);  // 8 cells total
  const Placement p = assignCells(g, 4, PlacementStrategy::RoundRobin);
  ASSERT_EQ(p.peOf.size(), g.size());
  std::vector<int> load(4, 0);
  for (int pe : p.peOf) ++load[pe];
  for (int l : load) EXPECT_EQ(l, 2);
  // A chain placed round-robin crosses PEs on every arc.
  EXPECT_DOUBLE_EQ(crossPeArcFraction(g, p), 1.0);
}

TEST(Placement, ContiguousKeepsNeighboursTogether) {
  const Graph g = chain(6, 8);
  const Placement p = assignCells(g, 2, PlacementStrategy::Contiguous);
  // Only one arc crosses the chunk boundary.
  EXPECT_NEAR(crossPeArcFraction(g, p), 1.0 / 7.0, 1e-12);
}

TEST(Placement, SinglePeHasNoNetworkTraffic) {
  const Graph g = chain(4, 8);
  const Placement p = assignCells(g, 1, PlacementStrategy::RoundRobin);
  EXPECT_DOUBLE_EQ(crossPeArcFraction(g, p), 0.0);
}

TEST(Placement, NetworkPacketsCounted) {
  const int n = 64;
  Graph g = chain(4, n);
  RunOptions opts;
  opts.expectedOutputs["out"] = n;
  opts.placement = assignCells(g, 3, PlacementStrategy::RoundRobin);
  const auto res =
      simulate(g, MachineConfig::unit(), {{"a", ramp(n)}}, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.packets.networkResultPackets, 0u);
  EXPECT_LE(res.packets.networkResultPackets, res.packets.resultPackets);
  EXPECT_GT(res.packets.networkShare(), 0.9);  // chain + round-robin
  // Per-PE firing counts add up to all firings.
  std::uint64_t sum = 0;
  for (auto c : res.pePackets) sum += c;
  EXPECT_GT(sum, 0u);
}

TEST(Placement, InterPeDelayStretchesThePipe) {
  const int n = 256;
  Graph g = chain(6, n);
  MachineConfig cfg;
  cfg.interPeDelay = 3;

  RunOptions scattered;
  scattered.expectedOutputs["out"] = n;
  scattered.placement = assignCells(g, 4, PlacementStrategy::RoundRobin);
  const auto slow = simulate(g, cfg, {{"a", ramp(n)}}, scattered);

  RunOptions local;
  local.expectedOutputs["out"] = n;
  local.placement = assignCells(g, 1, PlacementStrategy::RoundRobin);
  const auto fast = simulate(g, cfg, {{"a", ramp(n)}}, local);

  ASSERT_TRUE(slow.completed && fast.completed);
  // The inter-PE hop slows the acknowledge round trip on every arc.
  EXPECT_LT(slow.steadyRate("out"), fast.steadyRate("out"));
  EXPECT_NEAR(fast.steadyRate("out"), 0.5, 1e-2);
}

TEST(Placement, ResultsUnaffectedByPlacement) {
  const int m = 24;
  val::Module mod = core::frontend(testing::example1Source(m));
  val::ArrayMap in;
  in["B"] = testing::randomArray({0, m + 1}, 71);
  in["C"] = testing::randomArray({0, m + 1}, 72);
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);
  dfg::Graph lowered = dfg::expandFifos(prog.graph);

  for (auto strategy :
       {PlacementStrategy::RoundRobin, PlacementStrategy::Contiguous}) {
    RunOptions opts;
    opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
    opts.placement = assignCells(lowered, 5, strategy);
    MachineConfig cfg;
    cfg.interPeDelay = 2;
    const auto res =
        simulate(lowered, cfg, testing::inputsFor(prog, in), opts);
    ASSERT_TRUE(res.completed) << res.note;
    testing::expectStreamNear(res.outputs.at(prog.outputName),
                              ref.result.elems, 0.0, toString(strategy));
  }
}

}  // namespace
}  // namespace valpipe::machine
