// Tests for the balance-pass API surface and assorted small helpers not
// covered elsewhere (plannedBuffering, cycle preservation, config profiles,
// Range/Type helpers).
#include <gtest/gtest.h>

#include "analysis/paths.hpp"
#include "core/balance.hpp"
#include "core/compiler.hpp"
#include "machine/config.hpp"
#include "testing.hpp"
#include "val/types.hpp"

namespace valpipe {
namespace {

using core::BalanceMode;

TEST(BalanceApi, PlannedMatchesInserted) {
  core::CompileOptions raw;
  raw.balanceMode = BalanceMode::None;
  for (auto mode : {BalanceMode::LongestPath, BalanceMode::Optimal}) {
    auto prog = core::compileSource(testing::example1Source(16), raw);
    const std::size_t planned = core::plannedBuffering(prog.graph, mode);
    const auto outcome = core::balanceGraph(prog.graph, mode);
    EXPECT_EQ(planned, outcome.buffersInserted);
    EXPECT_EQ(outcome.mode, mode);
  }
}

TEST(BalanceApi, NoneIsNoOp) {
  core::CompileOptions raw;
  raw.balanceMode = BalanceMode::None;
  auto prog = core::compileSource(testing::example1Source(8), raw);
  const std::size_t before = prog.graph.size();
  const auto outcome = core::balanceGraph(prog.graph, BalanceMode::None);
  EXPECT_EQ(outcome.buffersInserted, 0u);
  EXPECT_EQ(prog.graph.size(), before);
  EXPECT_EQ(core::plannedBuffering(prog.graph, BalanceMode::None), 0u);
}

TEST(BalanceApi, BalancingIsIdempotent) {
  core::CompileOptions raw;
  raw.balanceMode = BalanceMode::None;
  auto prog = core::compileSource(testing::figure3Source(12), raw);
  core::balanceGraph(prog.graph, BalanceMode::Optimal);
  const auto again = core::balanceGraph(prog.graph, BalanceMode::Optimal);
  EXPECT_EQ(again.buffersInserted, 0u);  // already balanced
}

TEST(BalanceApi, CycleStagesPreservedAcrossBalancing) {
  // Balancing must never insert buffering into a for-iter cycle.
  core::CompileOptions todd;
  todd.forIterScheme = core::ForIterScheme::Todd;
  todd.balanceMode = BalanceMode::Optimal;
  const auto prog = core::compileSource(testing::example2Source(24), todd);
  const auto cycles = analysis::feedbackCycles(prog.graph);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].stages, 3);
}

TEST(MachineConfig, Profiles) {
  const auto unit = machine::MachineConfig::unit();
  EXPECT_EQ(unit.latencyOf(dfg::Op::Mul), 1);
  EXPECT_EQ(unit.routeDelay, 0);
  EXPECT_EQ(unit.unitsOf(dfg::FuClass::Fpu), 0);  // unlimited

  const auto hw = machine::MachineConfig::hardware(4, 2, 1);
  EXPECT_EQ(hw.latencyOf(dfg::Op::Mul), 4);   // FPU
  EXPECT_EQ(hw.latencyOf(dfg::Op::Lt), 2);    // ALU
  EXPECT_EQ(hw.latencyOf(dfg::Op::AmStore), 6);
  EXPECT_EQ(hw.latencyOf(dfg::Op::Id), 1);    // PE
  EXPECT_EQ(hw.unitsOf(dfg::FuClass::Fpu), 4);
  EXPECT_EQ(hw.unitsOf(dfg::FuClass::Alu), 2);
  EXPECT_EQ(hw.routeDelay, 1);
}

TEST(Types, RangeHelpers) {
  const val::Range r{2, 5};
  EXPECT_EQ(r.length(), 4);
  EXPECT_TRUE(r.contains(2) && r.contains(5));
  EXPECT_FALSE(r.contains(1) || r.contains(6));
  EXPECT_TRUE(r.contains(val::Range{3, 4}));
  EXPECT_FALSE(r.contains(val::Range{3, 6}));
  EXPECT_EQ(r.str(), "[2, 5]");
}

TEST(Types, TypeHelpers) {
  const val::Type t2 =
      val::Type::array(val::Scalar::Real, val::Range{0, 3}, val::Range{1, 4});
  EXPECT_TRUE(t2.is2d());
  EXPECT_EQ(t2.streamLength(), 16);
  EXPECT_EQ(t2.str(), "array[real][0, 3][1, 4]");
  EXPECT_TRUE(t2.element().isScalar());
  const val::Type t1 = val::Type::array(val::Scalar::Integer, val::Range{1, 8});
  EXPECT_FALSE(t1.is2d());
  EXPECT_EQ(t1.streamLength(), 8);
  EXPECT_TRUE(t1.sameAs(val::Type::array(val::Scalar::Integer)));
  EXPECT_FALSE(t1.sameAs(t2));
}

TEST(CompiledProgram, HelperAccessors) {
  const auto prog = core::compileSource(testing::figure3Source(10));
  EXPECT_EQ(prog.expectedOutputPerWave(), 11);  // X over [0, 10]
  EXPECT_EQ(prog.inputLengthPerWave("B"), 12);  // [0, 11]
  EXPECT_EQ(prog.inputLengthPerWave("A2"), 10);
  EXPECT_DOUBLE_EQ(prog.predictedRate(), 0.5);
}

}  // namespace
}  // namespace valpipe
