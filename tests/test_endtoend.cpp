// End-to-end integration: Val source -> compiler -> both execution engines,
// validated against the reference evaluator, including the paper's own
// Examples 1 and 2 and the Figure 3 composition.
#include <gtest/gtest.h>

#include "testing.hpp"

namespace valpipe {
namespace {

using core::CompileOptions;
using core::ForIterScheme;
using testing::checkInterpreted;
using testing::checkMachine;
using testing::example1Source;
using testing::example2Source;
using testing::figure3Source;
using testing::randomArray;

TEST(EndToEnd, Example1ForallMatchesReference) {
  const int m = 8;
  val::Module mod = core::frontend(example1Source(m));
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 1);
  in["C"] = randomArray({0, m + 1}, 2);
  const val::EvalResult ref = val::evaluate(mod, in);

  const core::CompiledProgram prog = core::compile(mod);
  checkInterpreted(prog, in, ref.result.elems);
  checkMachine(prog, in, ref.result.elems, 0.0, /*waves=*/1);
}

TEST(EndToEnd, Example1FullyPipelinedRate) {
  const int m = 255;
  val::Module mod = core::frontend(example1Source(m));
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 3);
  in["C"] = randomArray({0, m + 1}, 4);
  const val::EvalResult ref = val::evaluate(mod, in);
  const core::CompiledProgram prog = core::compile(mod);
  // Theorem 2: the pipeline scheme sustains the machine's maximum rate of
  // one result per two instruction times.
  checkMachine(prog, in, ref.result.elems, 0.0, /*waves=*/4, /*minRate=*/0.45,
               /*maxRate=*/0.5);
}

TEST(EndToEnd, Example2ToddSchemeMatchesReferenceAtOneThirdRate) {
  const int m = 127;
  val::Module mod = core::frontend(example2Source(m));
  val::ArrayMap in;
  in["A"] = randomArray({1, m}, 5);
  in["B"] = randomArray({1, m}, 6);
  const val::EvalResult ref = val::evaluate(mod, in);

  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::Todd;
  const core::CompiledProgram prog = core::compile(mod, opts);
  ASSERT_EQ(prog.blocks.size(), 1u);
  EXPECT_EQ(prog.blocks[0].cycleStages, 3);  // Fig. 7: mult, add, merge
  checkInterpreted(prog, in, ref.result.elems);
  // Rate limited by the 3-stage feedback cycle.
  checkMachine(prog, in, ref.result.elems, 0.0, 1, /*minRate=*/0.30,
               /*maxRate=*/1.0 / 3.0);
}

TEST(EndToEnd, Example2CompanionSchemeRestoresFullRate) {
  const int m = 127;
  val::Module mod = core::frontend(example2Source(m));
  val::ArrayMap in;
  in["A"] = randomArray({1, m}, 7, -0.9, 0.9);
  in["B"] = randomArray({1, m}, 8);
  const val::EvalResult ref = val::evaluate(mod, in);

  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::Companion;
  opts.companionSkip = 2;
  const core::CompiledProgram prog = core::compile(mod, opts);
  ASSERT_EQ(prog.blocks.size(), 1u);
  EXPECT_EQ(prog.blocks[0].cycleStages, 4);  // Fig. 8: even stage count
  EXPECT_EQ(prog.blocks[0].cycleTokens, 2);
  // The companion transform reassociates the arithmetic: compare with a
  // tolerance.
  checkInterpreted(prog, in, ref.result.elems, 1e-9);
  checkMachine(prog, in, ref.result.elems, 1e-9, 1, /*minRate=*/0.45,
               /*maxRate=*/0.5);
}

TEST(EndToEnd, Figure3ComposedProgramFullyPipelined) {
  const int m = 63;
  val::Module mod = core::frontend(figure3Source(m));
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 9);
  in["C"] = randomArray({0, m + 1}, 10);
  in["A2"] = randomArray({1, m}, 11, -0.9, 0.9);
  const val::EvalResult ref = val::evaluate(mod, in);

  const core::CompiledProgram prog = core::compile(mod);
  checkInterpreted(prog, in, ref.result.elems, 1e-9);
  checkMachine(prog, in, ref.result.elems, 1e-9, /*waves=*/2,
               /*minRate=*/0.45, /*maxRate=*/0.5);
}

TEST(EndToEnd, MultipleWavesStreamThrough) {
  const int m = 16;
  val::Module mod = core::frontend(example1Source(m));
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 12);
  in["C"] = randomArray({0, m + 1}, 13);
  const val::EvalResult ref = val::evaluate(mod, in);
  const core::CompiledProgram prog = core::compile(mod);
  checkInterpreted(prog, in, ref.result.elems, 0.0, /*waves=*/3);
  checkMachine(prog, in, ref.result.elems, 0.0, /*waves=*/3);
}

}  // namespace
}  // namespace valpipe
