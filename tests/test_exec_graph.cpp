// Structural tests of the ExecutableGraph flattening: the CSR cell/operand/
// destination arrays must be a faithful, slot-consistent image of the
// dfg::Graph + dfg::Wiring they were lowered from.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "core/compiler.hpp"
#include "dfg/graph.hpp"
#include "dfg/lower.hpp"
#include "exec/executable_graph.hpp"
#include "testing.hpp"

namespace valpipe {
namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;
using exec::ExecutableGraph;

/// (consumer, port) pairs of a destination span, as a multiset.
std::multiset<std::pair<std::uint32_t, int>> destSet(exec::DestSpan span) {
  std::multiset<std::pair<std::uint32_t, int>> s;
  for (const exec::Dest& d : span) s.insert({d.consumer, d.port});
  return s;
}

std::multiset<std::pair<std::uint32_t, int>> destSet(
    const std::vector<dfg::DestRef>& dests) {
  std::multiset<std::pair<std::uint32_t, int>> s;
  for (const dfg::DestRef& d : dests) s.insert({d.consumer.index, d.port});
  return s;
}

/// Exhaustively checks that `eg` mirrors `g`: cells, operand slots, initial
/// tokens, and — for every gate outcome — the delivered destination sets.
void expectMirrors(const Graph& g, const ExecutableGraph& eg) {
  ASSERT_EQ(eg.size(), g.size());
  const dfg::Wiring wiring(g);

  for (NodeId id : g.ids()) {
    const dfg::Node& n = g.node(id);
    const exec::Cell& c = eg.cell(id.index);
    EXPECT_EQ(c.op, n.op);
    EXPECT_EQ(c.fu, dfg::fuClass(n.op));
    ASSERT_EQ(static_cast<std::size_t>(c.numPorts), n.inputs.size());
    EXPECT_EQ(c.hasGate, n.gate.has_value());

    for (int p = 0; p < static_cast<int>(n.inputs.size()); ++p) {
      const exec::Operand& o = eg.operand(c, p);
      EXPECT_EQ(o.isLiteral(), n.inputs[p].isLiteral());
      if (n.inputs[p].isLiteral())
        EXPECT_EQ(o.literal, n.inputs[p].literal);
      else
        EXPECT_EQ(o.producer, n.inputs[p].producer.index);
      EXPECT_EQ(o.hasInitial, n.inputs[p].initial.has_value());
      if (n.inputs[p].initial) {
        EXPECT_EQ(o.initial, *n.inputs[p].initial);
      }
      EXPECT_LT(eg.slotOf(c, p), eg.slotCount());
    }
    if (n.gate) {
      const exec::Operand& o = eg.operand(c, dfg::kGatePort);
      EXPECT_EQ(o.isLiteral(), n.gate->isLiteral());
      if (!n.gate->isLiteral()) {
        EXPECT_EQ(o.producer, n.gate->producer.index);
      }
      EXPECT_LT(eg.slotOf(c, dfg::kGatePort), eg.slotCount());
    }

    // Destination slices must reproduce deliveredDests for every outcome.
    EXPECT_EQ(destSet(eg.alwaysDests(c)),
              destSet(wiring.deliveredDests(id, std::nullopt)));
    for (bool gateVal : {true, false}) {
      auto got = destSet(eg.alwaysDests(c));
      for (const exec::Dest& d : eg.taggedDests(c, gateVal))
        got.insert({d.consumer, d.port});
      EXPECT_EQ(got, destSet(wiring.deliveredDests(id, gateVal)));
    }
    // And every Dest's cached flat slot must agree with slotOf.
    for (const exec::Dest& d : eg.allDests(c)) {
      EXPECT_EQ(d.slot, eg.slotOf(eg.cell(d.consumer), d.port));
    }

    if (!n.streamName.empty()) {
      EXPECT_EQ(eg.streamName(c), n.streamName);
    }
    if (n.op == Op::BoolSeq) {
      ASSERT_EQ(c.patternEnd - c.patternBegin, n.pattern.bits.size());
      for (std::size_t j = 0; j < n.pattern.bits.size(); ++j)
        EXPECT_EQ(eg.patternBit(c, static_cast<std::int64_t>(j)),
                  static_cast<bool>(n.pattern.bits[j]));
    }
    if (n.op == Op::IndexSeq) {
      EXPECT_EQ(c.seqLo, n.seqLo);
      EXPECT_EQ(c.seqHi, n.seqHi);
      EXPECT_EQ(c.seqRepeat, n.seqRepeat);
    }
    if (dfg::isSource(n.op) || n.op == Op::Output) {
      EXPECT_EQ(c.tokensPerWave, n.tokensPerWave);
    }
  }

  // Slot numbering: each cell's slots are unique and disjoint across cells.
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < eg.size(); ++i) {
    const exec::Cell& c = eg.cell(i);
    for (int p = 0; p < static_cast<int>(c.numPorts); ++p)
      EXPECT_TRUE(seen.insert(eg.slotOf(c, p)).second);
    if (c.hasGate) {
      EXPECT_TRUE(seen.insert(eg.slotOf(c, dfg::kGatePort)).second);
    }
  }
  EXPECT_EQ(seen.size(), eg.slotCount());
}

TEST(ExecGraph, HandBuiltGraphMirrors) {
  Graph g;
  const NodeId in = g.input("a", 6);
  const NodeId add = g.binary(Op::Add, Graph::out(in), Graph::lit(Value(1.0)));
  dfg::BoolPattern p;
  p.bits = {1, 0, 1, 1, 0, 1};
  const NodeId ctl = g.boolSeq(p);
  const NodeId gate = g.gatedIdentity(Graph::out(add), Graph::out(ctl));
  const NodeId t = g.unary(Op::Neg, Graph::outT(gate));
  const NodeId f = g.identity(Graph::outF(gate));
  const NodeId m =
      g.merge(Graph::out(ctl), Graph::out(t), Graph::out(f));
  g.output("out", Graph::out(m));

  const ExecutableGraph eg(g);
  expectMirrors(g, eg);

  // The gated identity has both T and F destinations, in distinct segments.
  const exec::Cell& gc = eg.cell(gate.index);
  EXPECT_FALSE(eg.taggedDests(gc, true).empty());
  EXPECT_FALSE(eg.taggedDests(gc, false).empty());
  EXPECT_TRUE(eg.alwaysDests(gc).empty());
}

TEST(ExecGraph, InitialTokensAndStoreFetchPlumbing) {
  Graph g;
  const NodeId in = g.input("x", 4);
  const NodeId st = g.amStore("T", Graph::out(in));
  const NodeId ft = g.amFetch("T", 4);
  const NodeId acc = g.binary(Op::Add, Graph::out(ft), Graph::lit(Value(0.0)));
  g.node(acc).inputs[1].initial = Value(7.0);  // load-time token
  g.output("out", Graph::out(acc));

  const ExecutableGraph eg(g);
  expectMirrors(g, eg);

  // A store must know which fetchers to re-awaken.
  const auto& fetchers = eg.fetchersOf(eg.cell(st.index));
  ASSERT_EQ(fetchers.size(), 1u);
  EXPECT_EQ(fetchers[0], ft.index);
  EXPECT_TRUE(eg.fetchersOf(eg.cell(in.index)).empty());

  const exec::Operand& o = eg.operand(eg.cell(acc.index), 1);
  EXPECT_TRUE(o.hasInitial);
  EXPECT_EQ(o.initial, Value(7.0));
}

TEST(ExecGraph, CompiledProgramsMirror) {
  for (const std::string& src :
       {testing::example1Source(6), testing::example2Source(6),
        testing::figure3Source(6)}) {
    SCOPED_TRACE(src);
    const auto prog = core::compile(core::frontend(src));
    expectMirrors(prog.graph, ExecutableGraph(prog.graph));
    const dfg::Graph lowered = dfg::expandFifos(prog.graph);
    expectMirrors(lowered, ExecutableGraph(lowered));
  }
}

}  // namespace
}  // namespace valpipe
