// Parallel-engine equivalence suite: SchedulerKind::ParallelEventDriven must
// produce a MachineResult identical in every observable field to the serial
// EventDriven scheduler and the Reference oracle, for every shard count —
// on randomly generated Val programs under the unit profile, hardware
// timings, finite FU pools and explicit placements, and through the
// deadlock / maxCycles / quiescence stop paths.  Also covers the shard-plan
// invariants (stream co-location, hint-following) and the min-cut
// auto-partitioner.  Runs under the ThreadSanitizer preset (ctest label
// "tsan") to prove the mailbox/barrier discipline is race-free.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "exec/executable_graph.hpp"
#include "exec/shard_plan.hpp"
#include "generators.hpp"
#include "machine/engine.hpp"
#include "machine/placement.hpp"
#include "testing.hpp"
#include "val/eval.hpp"

namespace valpipe {
namespace {

using machine::MachineConfig;
using machine::MachineResult;
using machine::RunOptions;
using machine::SchedulerKind;
using testing::expectIdentical;
using testing::GenOptions;
using testing::ProgramGen;
using testing::randomArray;

/// Runs the serial event-driven scheduler and the Reference oracle, then the
/// parallel scheduler at shard counts 1, 2, 4 and 8, and checks every result
/// field-by-field.
MachineResult runAllShardCounts(const dfg::Graph& lowered,
                                const MachineConfig& cfg,
                                const run::StreamMap& in, RunOptions opts,
                                const std::string& what) {
  opts.scheduler = SchedulerKind::Reference;
  const MachineResult ref = machine::simulate(lowered, cfg, in, opts);
  opts.scheduler = SchedulerKind::EventDriven;
  const MachineResult ed = machine::simulate(lowered, cfg, in, opts);
  expectIdentical(ed, ref, what + " [event-driven vs reference]");
  opts.scheduler = SchedulerKind::ParallelEventDriven;
  for (int threads : {1, 2, 4, 8}) {
    opts.threads = threads;
    const MachineResult par = machine::simulate(lowered, cfg, in, opts);
    expectIdentical(par, ref,
                    what + " [parallel x" + std::to_string(threads) +
                        " vs reference]");
  }
  return ref;
}

val::ArrayMap genInputs(const val::Module& mod, unsigned seed) {
  val::ArrayMap in;
  unsigned k = 0;
  for (const val::Param& p : mod.params)
    in[p.name] = randomArray(*p.type.range, seed + 100 * k++, 0.0, 1.0);
  return in;
}

class ParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalence, RandomProgramsBitIdenticalAtEveryShardCount) {
  const int p = GetParam();
  GenOptions gopts;
  gopts.blocks = 1 + p % 3;
  gopts.m = 8 + p % 5;
  ProgramGen gen(static_cast<unsigned>(p) * 313 + 17, gopts);
  const std::string src = gen.module();
  SCOPED_TRACE(src);

  val::Module mod = core::frontend(src);
  const val::ArrayMap in = genInputs(mod, static_cast<unsigned>(p));
  const auto prog = core::compile(mod);
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  const run::StreamMap streams = testing::inputsFor(prog, in);

  struct Variant {
    std::string name;
    MachineConfig cfg;
    int peCount = 0;  // 0 => no placement
  };
  std::vector<Variant> variants;
  variants.push_back({"unit", MachineConfig::unit(), 0});
  variants.push_back({"hardware", MachineConfig::hardware(), 0});
  variants.push_back(
      {"finite-fus", MachineConfig::hardware(/*fpus=*/2, /*alus=*/2,
                                             /*ams=*/1),
       0});
  variants.push_back({"placed", MachineConfig::hardware(), 3});

  for (const Variant& v : variants) {
    RunOptions opts;
    opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
    MachineConfig cfg = v.cfg;
    if (v.peCount > 0) {
      cfg.interPeDelay = 2;
      opts.placement = machine::assignCells(
          lowered, v.peCount, machine::PlacementStrategy::RoundRobin);
    }
    const MachineResult res =
        runAllShardCounts(lowered, cfg, streams, opts, v.name);
    ASSERT_TRUE(res.completed) << v.name << ": " << res.note;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalence, ::testing::Range(0, 8));

TEST(ParallelEngine, StopPathsMatchSerial) {
  const auto prog = core::compile(core::frontend(testing::example1Source(8)));
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  val::ArrayMap in;
  in["B"] = randomArray({0, 9}, 41);
  in["C"] = randomArray({0, 9}, 42);
  const run::StreamMap streams = testing::inputsFor(prog, in);

  // Impossible expectation -> same deadlock note and cycle count.
  RunOptions starve;
  starve.expectedOutputs[prog.outputName] = 10'000;
  runAllShardCounts(lowered, MachineConfig::unit(), streams, starve,
                    "deadlock");

  // Truncated run -> same maxCycles cut at every shard count.
  RunOptions truncated;
  truncated.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  truncated.maxCycles = 7;
  runAllShardCounts(lowered, MachineConfig::hardware(), streams, truncated,
                    "maxCycles");

  // No expectation -> runs to quiescence with identical cycle counts.
  RunOptions open;
  const MachineResult res = runAllShardCounts(
      lowered, MachineConfig::unit(), streams, open, "quiescence");
  EXPECT_TRUE(res.completed);

  // Multi-wave runs shard identically too.
  RunOptions waves;
  waves.waves = 2;
  waves.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave() * 2;
  runAllShardCounts(lowered, MachineConfig::unit(), streams, waves, "waves");
}

TEST(ParallelEngine, AutoThreadCountMatchesSerial) {
  // threads = 0 resolves from the hardware; whatever it picks, the result
  // contract is the same.
  const auto prog = core::compile(core::frontend(testing::example2Source(12)));
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  val::ArrayMap in;
  in["A"] = randomArray({1, 12}, 51, -0.8, 0.8);
  in["B"] = randomArray({1, 12}, 52);
  const run::StreamMap streams = testing::inputsFor(prog, in);

  RunOptions opts;
  opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  opts.scheduler = SchedulerKind::EventDriven;
  const MachineResult ed =
      machine::simulate(lowered, MachineConfig::hardware(), streams, opts);
  opts.scheduler = SchedulerKind::ParallelEventDriven;
  opts.threads = 0;
  const MachineResult par =
      machine::simulate(lowered, MachineConfig::hardware(), streams, opts);
  expectIdentical(par, ed, "auto threads");
  EXPECT_TRUE(par.completed) << par.note;
}

TEST(ParallelEngine, ShardPlanColocatesStreamsAndFollowsHints) {
  const auto prog = core::compile(core::frontend(testing::figure3Source(10)));
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  const exec::ExecutableGraph eg(lowered);

  std::vector<std::uint32_t> hint(eg.size());
  for (std::uint32_t c = 0; c < eg.size(); ++c) hint[c] = c;  // scatter
  const exec::ShardPlan plan = exec::buildShardPlan(eg, 4, hint);

  ASSERT_EQ(plan.shardCount, 4u);
  ASSERT_EQ(plan.shardOf.size(), eg.size());
  // Per-shard lists partition the cells, ascending.
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    total += plan.cells[s].size();
    for (std::size_t i = 0; i < plan.cells[s].size(); ++i) {
      EXPECT_EQ(plan.shardOf[plan.cells[s][i]], s);
      if (i > 0) {
        EXPECT_LT(plan.cells[s][i - 1], plan.cells[s][i]);
      }
    }
  }
  EXPECT_EQ(total, eg.size());
  // Stream co-location: all Output/AmStore/AmFetch cells of one stream sit
  // in one shard.
  std::map<std::string, std::uint32_t> home;
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cl = eg.cell(c);
    if (cl.op != dfg::Op::Output && cl.op != dfg::Op::AmStore &&
        cl.op != dfg::Op::AmFetch)
      continue;
    if (cl.stream < 0) continue;
    auto [it, fresh] = home.emplace(eg.streamName(cl), plan.shardOf[c]);
    if (!fresh) {
      EXPECT_EQ(plan.shardOf[c], it->second)
          << "stream " << eg.streamName(cl) << " split across shards";
    }
  }
  // Unconstrained cells follow the hint.
  for (std::uint32_t c = 0; c < eg.size(); ++c) {
    const exec::Cell& cl = eg.cell(c);
    const bool constrained =
        (cl.op == dfg::Op::Output || cl.op == dfg::Op::AmStore ||
         cl.op == dfg::Op::AmFetch) &&
        cl.stream >= 0;
    if (!constrained) {
      EXPECT_EQ(plan.shardOf[c], hint[c] % 4);
    }
  }
}

TEST(ParallelEngine, MinCutPartitionerCutsNoMoreThanRoundRobin) {
  const auto prog = core::compile(core::frontend(testing::figure3Source(24)));
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  for (int pes : {2, 4}) {
    const auto rr = machine::assignCells(lowered, pes,
                                         machine::PlacementStrategy::RoundRobin);
    const auto mc = machine::assignCells(lowered, pes,
                                         machine::PlacementStrategy::MinCut);
    ASSERT_EQ(mc.peOf.size(), lowered.size());
    for (int pe : mc.peOf) {
      EXPECT_GE(pe, 0);
      EXPECT_LT(pe, pes);
    }
    // Every PE keeps a reasonable share of the cells (balance band).
    std::vector<std::size_t> size(static_cast<std::size_t>(pes), 0);
    for (int pe : mc.peOf) ++size[static_cast<std::size_t>(pe)];
    for (std::size_t s : size) EXPECT_GT(s, lowered.size() / (4u * pes));
    EXPECT_LE(machine::crossPeArcFraction(lowered, mc),
              machine::crossPeArcFraction(lowered, rr));
    // Deterministic: same inputs, same partition.
    const auto mc2 = machine::assignCells(lowered, pes,
                                          machine::PlacementStrategy::MinCut);
    EXPECT_EQ(mc.peOf, mc2.peOf);
  }
  EXPECT_STREQ(machine::toString(machine::PlacementStrategy::MinCut),
               "min-cut");
}

}  // namespace
}  // namespace valpipe
