// Tests for the AST pretty-printer, including a parse -> print -> parse
// round-trip property over the repository's example programs.
#include <gtest/gtest.h>

#include "val/eval.hpp"
#include "val/parser.hpp"
#include "val/pretty.hpp"

#include "testing.hpp"

namespace valpipe::val {
namespace {

TEST(Pretty, Expressions) {
  Diagnostics d;
  EXPECT_EQ(toString(parseExpression("a*b+c", d)), "((a * b) + c)");
  EXPECT_EQ(toString(parseExpression("~p | q", d)), "(~p | q)");
  EXPECT_EQ(toString(parseExpression("A[i-1]", d)), "A[(i - 1)]");
  EXPECT_EQ(toString(parseExpression("A[i, j+1]", d)), "A[i, (j + 1)]");
  EXPECT_EQ(
      toString(parseExpression("if c then 1 else 2 endif", d)),
      "if c then 1 else 2 endif");
  EXPECT_EQ(toString(parseExpression("let x : real := 1. in x endlet", d)),
            "let x := 1 in x endlet");
  EXPECT_FALSE(d.hasErrors()) << d.str();
}

TEST(Pretty, BlockAndModule) {
  Module m = parseModuleOrThrow(valpipe::testing::example2Source(4));
  const std::string s = toString(m);
  EXPECT_NE(s.find("const m = 4"), std::string::npos);
  EXPECT_NE(s.find("function ex2("), std::string::npos);
  EXPECT_NE(s.find("for i : integer := 1"), std::string::npos);
  EXPECT_NE(s.find("iter T := T[i:"), std::string::npos);
}

TEST(Pretty, Forall2dHeader) {
  Module m = parseModuleOrThrow(R"(
const h = 2
function f(U: array[real] [0, h] [0, h] returns array[real])
  forall i in [0, h], j in [0, h] construct U[i, j] endall
endfun
)");
  const std::string s = toString(m.blocks[0]);
  EXPECT_NE(s.find("forall i in [0, 2], j in [0, 2]"), std::string::npos);
}

/// Round-trip: printing a module and re-parsing it must preserve semantics
/// (checked by running the reference evaluator on both).
class PrettyRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PrettyRoundTrip, ReparsedModuleEvaluatesIdentically) {
  std::string src;
  switch (GetParam()) {
    case 0: src = valpipe::testing::example1Source(6); break;
    case 1: src = valpipe::testing::example2Source(6); break;
    default: src = valpipe::testing::figure3Source(6); break;
  }
  Module original = parseModuleOrThrow(src);
  typecheckOrThrow(original);

  // Note: toString renders resolved constants in ranges, which is still
  // valid syntax; expressions keep their symbolic constants, and consts are
  // re-emitted, so the program means the same thing.
  Module reparsed = parseModuleOrThrow(toString(original));
  typecheckOrThrow(reparsed);

  ArrayMap in;
  for (const Param& p : original.params)
    in[p.name] = valpipe::testing::randomArray(*p.type.range,
                                               17 + GetParam(), -0.9, 0.9);
  const EvalResult a = evaluate(original, in);
  const EvalResult b = evaluate(reparsed, in);
  ASSERT_EQ(a.result.elems.size(), b.result.elems.size());
  for (std::size_t k = 0; k < a.result.elems.size(); ++k)
    EXPECT_EQ(a.result.elems[k], b.result.elems[k]) << k;
}

INSTANTIATE_TEST_SUITE_P(Programs, PrettyRoundTrip, ::testing::Range(0, 3));

}  // namespace
}  // namespace valpipe::val
