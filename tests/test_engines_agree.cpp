// Cross-engine fuzz: on randomly constructed acyclic instruction graphs,
// the untimed Kahn interpreter and the timed machine simulator must produce
// identical output streams (determinacy of the dataflow model), regardless
// of placement, latencies or lowering.
#include <gtest/gtest.h>

#include <random>

#include "dfg/graph.hpp"
#include "dfg/lower.hpp"
#include "dfg/validate.hpp"
#include "machine/engine.hpp"
#include "machine/placement.hpp"
#include "sim/interpreter.hpp"

namespace valpipe {
namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;

/// Builds a random acyclic graph over `n` packets: a few inputs, arithmetic
/// cells over earlier streams/literals, occasional gates with random
/// patterns, merges with complementary selections, and one output.
Graph randomGraph(unsigned seed, std::int64_t n, run::StreamMap& inputs) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  Graph g;

  // Streams currently available, all carrying exactly n packets per wave.
  std::vector<PortSrc> pool;
  const int numInputs = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < numInputs; ++i) {
    const std::string name = "in" + std::to_string(i);
    std::vector<Value> data;
    for (std::int64_t k = 0; k < n; ++k) data.push_back(Value(val(rng)));
    inputs[name] = std::move(data);
    pool.push_back(Graph::out(g.input(name, n)));
  }

  auto pick = [&]() { return pool[rng() % pool.size()]; };
  const int steps = 4 + static_cast<int>(rng() % 8);
  for (int s = 0; s < steps; ++s) {
    switch (rng() % 6) {
      case 0:
        pool.push_back(Graph::out(g.binary(Op::Add, pick(), pick())));
        break;
      case 1:
        pool.push_back(Graph::out(g.binary(Op::Mul, pick(),
                                           Graph::lit(Value(val(rng))))));
        break;
      case 2:
        pool.push_back(Graph::out(g.binary(Op::Sub, pick(), pick())));
        break;
      case 3:
        pool.push_back(Graph::out(g.unary(Op::Neg, pick())));
        break;
      case 4: {  // min/max keeps values bounded
        pool.push_back(Graph::out(g.binary(Op::Min, pick(),
                                           Graph::lit(Value(1.5)))));
        break;
      }
      default: {
        // Complementary gate + merge: route one stream through two arms and
        // recombine, preserving the n-packet discipline.
        dfg::BoolPattern p;
        for (std::int64_t k = 0; k < n; ++k) p.bits.push_back(rng() % 2 == 0);
        const NodeId ctl = g.boolSeq(p);
        const NodeId gate = g.gatedIdentity(pick(), Graph::out(ctl));
        const NodeId t = g.unary(Op::Neg, Graph::outT(gate));
        const NodeId f = g.identity(Graph::outF(gate));
        pool.push_back(Graph::out(
            g.merge(Graph::out(ctl), Graph::out(t), Graph::out(f))));
        break;
      }
    }
  }
  g.output("out", pool.back());
  return g;
}

class EnginesAgree : public ::testing::TestWithParam<int> {};

TEST_P(EnginesAgree, SameOutputsUnderAnyTimingModel) {
  run::StreamMap inputs;
  const std::int64_t n = 24;
  const Graph g = randomGraph(static_cast<unsigned>(GetParam()) * 97 + 5, n,
                              inputs);
  ASSERT_TRUE(dfg::validate(g).ok()) << dfg::validate(g).str();

  const sim::RunResult ref = sim::interpret(g, inputs);
  ASSERT_TRUE(ref.quiescent);
  const auto& want = ref.outputs.at("out");
  ASSERT_EQ(want.size(), static_cast<std::size_t>(n));

  const Graph lowered = dfg::expandFifos(g);
  std::mt19937 rng(GetParam());
  for (int variant = 0; variant < 3; ++variant) {
    machine::MachineConfig cfg;
    cfg.routeDelay = static_cast<int>(rng() % 3);
    cfg.ackDelay = static_cast<int>(rng() % 3);
    cfg.interPeDelay = static_cast<int>(rng() % 3);
    cfg.execLatency[static_cast<int>(dfg::FuClass::Fpu)] =
        1 + static_cast<int>(rng() % 3);
    machine::RunOptions opts;
    opts.expectedOutputs["out"] = n;
    if (variant > 0)
      opts.placement = machine::assignCells(
          lowered, 1 + static_cast<int>(rng() % 4),
          variant == 1 ? machine::PlacementStrategy::RoundRobin
                       : machine::PlacementStrategy::Contiguous);
    const auto res = machine::simulate(lowered, cfg, inputs, opts);
    ASSERT_TRUE(res.completed) << res.note << " variant " << variant;
    EXPECT_EQ(res.outputs.at("out"), want) << "variant " << variant;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginesAgree, ::testing::Range(0, 25));

}  // namespace
}  // namespace valpipe
