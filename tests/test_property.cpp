// Property tests over randomly generated pipe-structured programs: every
// compiled graph must validate, balance, reproduce the reference evaluator's
// results in both engines, and — per Theorem 4 — sustain (near) full rate
// when all blocks are primitive/simple.
#include <gtest/gtest.h>

#include "analysis/paths.hpp"
#include "dfg/validate.hpp"
#include "generators.hpp"
#include "val/classify.hpp"
#include "testing.hpp"

namespace valpipe {
namespace {

using core::BalanceMode;
using core::CompileOptions;
using testing::GenOptions;
using testing::ProgramGen;
using testing::randomArray;

val::ArrayMap genInputs(const val::Module& mod, unsigned seed) {
  val::ArrayMap in;
  unsigned k = 0;
  for (const val::Param& p : mod.params)
    in[p.name] = randomArray(*p.type.range, seed + 100 * k++, 0.0, 1.0);
  return in;
}

class RandomProgram : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgram, CompiledGraphMatchesReferenceAndBalances) {
  GenOptions gopts;
  gopts.blocks = 1 + GetParam() % 3;
  gopts.m = 10 + GetParam() % 7;
  ProgramGen gen(static_cast<unsigned>(GetParam()) * 1337 + 7, gopts);
  const std::string src = gen.module();
  SCOPED_TRACE(src);

  val::Module mod = core::frontend(src);
  ASSERT_TRUE(val::isPipeStructured(mod));
  const val::ArrayMap in = genInputs(mod, GetParam());
  const auto ref = val::evaluate(mod, in);

  const auto prog = core::compile(mod);
  EXPECT_TRUE(dfg::validate(prog.graph).ok());
  const auto bal = analysis::checkBalanced(prog.graph);
  EXPECT_TRUE(bal.balanced) << bal.reason;

  testing::checkInterpreted(prog, in, ref.result.elems, 1e-7);
  testing::checkMachine(prog, in, ref.result.elems, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgram, ::testing::Range(0, 40));

class RandomProgramRate : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramRate, SimpleProgramsSustainFullRate) {
  GenOptions gopts;
  gopts.blocks = 2;
  gopts.m = 96;
  gopts.linearOnly = true;
  ProgramGen gen(static_cast<unsigned>(GetParam()) * 7331 + 3, gopts);
  const std::string src = gen.module();
  SCOPED_TRACE(src);

  val::Module mod = core::frontend(src);
  const val::ArrayMap in = genInputs(mod, GetParam() + 999);
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);
  // Theorem 4: fully pipelined whole-program rate (generously bounded; short
  // streams have wave-boundary transients).
  testing::checkMachine(prog, in, ref.result.elems, 1e-7, 2, 0.40, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramRate, ::testing::Range(0, 12));

class RandomBalanceModes : public ::testing::TestWithParam<int> {};

TEST_P(RandomBalanceModes, OptimalNeverWorseAndBothBalance) {
  GenOptions gopts;
  gopts.blocks = 2 + GetParam() % 2;
  gopts.m = 14;
  ProgramGen gen(static_cast<unsigned>(GetParam()) * 31 + 17, gopts);
  const std::string src = gen.module();
  SCOPED_TRACE(src);

  val::Module mod = core::frontend(src);
  CompileOptions lp, opt;
  lp.balanceMode = BalanceMode::LongestPath;
  opt.balanceMode = BalanceMode::Optimal;
  const auto a = core::compile(mod, lp);
  const auto b = core::compile(mod, opt);
  EXPECT_TRUE(analysis::checkBalanced(a.graph).balanced);
  EXPECT_TRUE(analysis::checkBalanced(b.graph).balanced);
  EXPECT_LE(b.balance.buffersInserted, a.balance.buffersInserted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBalanceModes, ::testing::Range(0, 20));

}  // namespace
}  // namespace valpipe
