// Shared helpers for the valpipe test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "machine/engine.hpp"
#include "sim/interpreter.hpp"
#include "support/value.hpp"
#include "val/eval.hpp"

namespace valpipe::testing {

/// The paper's Example 1 (§4): boundary-guarded smoothing forall.
inline std::string example1Source(int m = 8) {
  return "const m = " + std::to_string(m) + "\n" +
         R"(function ex1(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
}

/// The paper's Example 2 (§4): first-order linear recurrence for-iter.
inline std::string example2Source(int m = 8) {
  return "const m = " + std::to_string(m) + "\n" +
         R"(function ex2(A, B: array[real] [1, m] returns array[real])
  for i : integer := 1;
      T : array[real] := [0: 0]
  do let P : real := A[i]*T[i-1] + B[i]
     in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
        else T endif
     endlet
  endfor
endfun
)";
}

/// Figure 3's pipe-structured program: Example 1 feeding Example 2.
inline std::string figure3Source(int m = 8) {
  return "const m = " + std::to_string(m) + "\n" +
         R"(function fig3(B, C: array[real] [0, m+1]; A2: array[real] [1, m]
              returns array[real])
  let
    A : array[real] := forall i in [0, m+1]
        P : real := if (i = 0) | (i = m+1) then C[i]
                    else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
      construct B[i] * (P * P)
      endall;
    X : array[real] := for i : integer := 1;
        T : array[real] := [0: 0]
      do let P : real := A2[i]*T[i-1] + A[i]
         in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
            else T endif
         endlet
      endfor
  in X endlet
endfun
)";
}

/// Deterministic pseudo-random real array over `range`.
inline val::ArrayVal randomArray(val::Range range, unsigned seed,
                                 double lo = -1.0, double hi = 1.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  val::ArrayVal a;
  a.lo = range.lo;
  a.elems.reserve(static_cast<std::size_t>(range.length()));
  for (std::int64_t i = 0; i < range.length(); ++i) a.elems.push_back(dist(rng));
  return a;
}

/// ArrayVal -> raw stream.
inline std::vector<Value> streamOf(const val::ArrayVal& a) { return a.elems; }

/// Builds simulator inputs for a compiled program from named arrays.
inline run::StreamMap inputsFor(const core::CompiledProgram& prog,
                                const val::ArrayMap& arrays) {
  run::StreamMap in;
  for (const auto& [name, range] : prog.inputs) {
    auto it = arrays.find(name);
    if (it == arrays.end()) ADD_FAILURE() << "missing test input " << name;
    else in[name] = it->second.elems;
  }
  return in;
}

inline void expectStreamNear(const std::vector<Value>& got,
                             const std::vector<Value>& want,
                             double tol = 0.0,
                             const std::string& what = "stream") {
  ASSERT_EQ(got.size(), want.size()) << what << " length";
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (tol == 0.0) {
      EXPECT_EQ(got[i].toReal(), want[i].toReal())
          << what << " element " << i;
    } else {
      // Relative tolerance for large magnitudes (recurrences can grow).
      const double scale = std::max(1.0, std::fabs(want[i].toReal()));
      EXPECT_NEAR(got[i].toReal(), want[i].toReal(), tol * scale)
          << what << " element " << i;
    }
  }
}

/// Asserts two MachineResults are identical in every observable field —
/// the scheduler-equivalence contract (all SchedulerKinds, any shard count).
inline void expectIdentical(const machine::MachineResult& got,
                            const machine::MachineResult& want,
                            const std::string& what) {
  EXPECT_EQ(got.outputs, want.outputs) << what << ": outputs";
  EXPECT_EQ(got.amFinal, want.amFinal) << what << ": amFinal";
  EXPECT_EQ(got.outputTimes, want.outputTimes) << what << ": outputTimes";
  EXPECT_EQ(got.firings, want.firings) << what << ": firings";
  EXPECT_EQ(got.totalFirings, want.totalFirings) << what << ": totalFirings";
  EXPECT_EQ(got.cycles, want.cycles) << what << ": cycles";
  EXPECT_EQ(got.completed, want.completed) << what << ": completed";
  EXPECT_EQ(got.note, want.note) << what << ": note";
  EXPECT_EQ(got.packets.opPacketsByClass, want.packets.opPacketsByClass)
      << what << ": opPacketsByClass";
  EXPECT_EQ(got.packets.resultPackets, want.packets.resultPackets)
      << what << ": resultPackets";
  EXPECT_EQ(got.packets.ackPackets, want.packets.ackPackets)
      << what << ": ackPackets";
  EXPECT_EQ(got.packets.networkResultPackets,
            want.packets.networkResultPackets)
      << what << ": networkResultPackets";
  EXPECT_EQ(got.fuBusy, want.fuBusy) << what << ": fuBusy";
  EXPECT_EQ(got.pePackets, want.pePackets) << what << ": pePackets";
}

/// Runs a compiled program through the untimed interpreter and checks its
/// output against expected values.
inline void checkInterpreted(const core::CompiledProgram& prog,
                             const val::ArrayMap& inputs,
                             const std::vector<Value>& expected,
                             double tol = 0.0, int waves = 1) {
  run::RunOptions opts;
  opts.waves = waves;
  // A livelocked graph should abort with a StallError, not spin forever.
  opts.maxInstructionTimes = 5'000'000;
  const sim::RunResult res =
      sim::interpret(prog.graph, inputsFor(prog, inputs), opts);
  EXPECT_TRUE(res.quiescent) << res.note;
  auto it = res.outputs.find(prog.outputName);
  ASSERT_NE(it, res.outputs.end()) << "no output stream";
  std::vector<Value> want;
  for (int w = 0; w < waves; ++w)
    want.insert(want.end(), expected.begin(), expected.end());
  expectStreamNear(it->second, want, tol, "interpreter output");
}

/// Runs through the timed machine (unit profile) and checks output values
/// plus (optionally) the steady-state rate.
inline machine::MachineResult checkMachine(
    const core::CompiledProgram& prog, const val::ArrayMap& inputs,
    const std::vector<Value>& expected, double tol = 0.0, int waves = 1,
    double minRate = -1.0, double maxRate = 1.0) {
  dfg::Graph lowered = dfg::isLowered(prog.graph)
                           ? prog.graph
                           : dfg::expandFifos(prog.graph);
  machine::RunOptions opts;
  opts.waves = waves;
  // A livelocked graph should abort with a StallError, not spin forever.
  opts.maxInstructionTimes = 2'000'000;
  opts.expectedOutputs[prog.outputName] =
      prog.expectedOutputPerWave() * waves;
  const machine::MachineResult res = machine::simulate(
      lowered, machine::MachineConfig::unit(), inputsFor(prog, inputs), opts);
  EXPECT_TRUE(res.completed) << res.note;
  auto it = res.outputs.find(prog.outputName);
  if (it == res.outputs.end()) {
    ADD_FAILURE() << "no output stream from machine";
    return res;
  }
  std::vector<Value> want;
  for (int w = 0; w < waves; ++w)
    want.insert(want.end(), expected.begin(), expected.end());
  expectStreamNear(it->second, want, tol, "machine output");
  if (minRate >= 0.0) {
    const double rate = res.steadyRate(prog.outputName);
    EXPECT_GE(rate, minRate) << "steady rate too low";
    EXPECT_LE(rate, maxRate + 1e-9) << "steady rate impossibly high";
  }
  return res;
}

}  // namespace valpipe::testing
