// Unit tests for the §5–§7 program-class predicates.
#include <gtest/gtest.h>

#include "val/classify.hpp"
#include "val/parser.hpp"
#include "val/typecheck.hpp"

#include "testing.hpp"

namespace valpipe::val {
namespace {

Module checked(const std::string& src) {
  Module m = parseModuleOrThrow(src);
  typecheckOrThrow(m);
  return m;
}

ExprPtr expr(const std::string& src) {
  Diagnostics diags;
  ExprPtr e = parseExpression(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return e;
}

const std::set<std::string> kArrays{"A", "B", "C"};
const std::map<std::string, std::int64_t> kConsts{{"m", 8}};

TEST(PrimitiveExpr, LiteralsAndScalars) {
  EXPECT_TRUE(isPrimitiveExpr(expr("1"), "i", kArrays, kConsts));
  EXPECT_TRUE(isPrimitiveExpr(expr("0.25"), "i", kArrays, kConsts));
  EXPECT_TRUE(isPrimitiveExpr(expr("true"), "i", kArrays, kConsts));
  EXPECT_TRUE(isPrimitiveExpr(expr("x"), "i", kArrays, kConsts));
  EXPECT_TRUE(isPrimitiveExpr(expr("i"), "i", kArrays, kConsts));
}

TEST(PrimitiveExpr, Rule3Operators) {
  EXPECT_TRUE(isPrimitiveExpr(expr("(x + y) * 2. - z / 4."), "i", kArrays,
                              kConsts));
  EXPECT_TRUE(isPrimitiveExpr(expr("(i = 0) | (i = m+1)"), "i", kArrays,
                              kConsts));
}

TEST(PrimitiveExpr, Rule4ArrayAccess) {
  EXPECT_TRUE(isPrimitiveExpr(expr("A[i]"), "i", kArrays, kConsts));
  EXPECT_TRUE(isPrimitiveExpr(expr("A[i-1]"), "i", kArrays, kConsts));
  EXPECT_TRUE(isPrimitiveExpr(expr("A[i+m]"), "i", kArrays, kConsts));
  EXPECT_TRUE(isPrimitiveExpr(expr("A[2+i]"), "i", kArrays, kConsts));
  // Non-affine or wrong-variable indices violate rule 4.
  EXPECT_FALSE(isPrimitiveExpr(expr("A[2*i]"), "i", kArrays, kConsts));
  EXPECT_FALSE(isPrimitiveExpr(expr("A[j]"), "i", kArrays, kConsts));
  EXPECT_FALSE(isPrimitiveExpr(expr("A[A[i]]"), "i", kArrays, kConsts));
  // No index variable in scope: rule 4 unusable.
  EXPECT_FALSE(isPrimitiveExpr(expr("A[i]"), "", kArrays, kConsts));
}

TEST(PrimitiveExpr, ArrayWithoutSelectionRejected) {
  EXPECT_FALSE(isPrimitiveExpr(expr("A"), "i", kArrays, kConsts));
  EXPECT_FALSE(isPrimitiveExpr(expr("A + 1"), "i", kArrays, kConsts));
}

TEST(PrimitiveExpr, Rules5And6) {
  EXPECT_TRUE(isPrimitiveExpr(
      expr("let y : real := A[i] * 2. in y + 1. endlet"), "i", kArrays,
      kConsts));
  EXPECT_TRUE(isPrimitiveExpr(
      expr("if C[i] > 0. then A[i] else B[i] endif"), "i", kArrays, kConsts));
  // A definition shadows an array name with a scalar.
  EXPECT_TRUE(isPrimitiveExpr(expr("let A : real := 1. in A + 1. endlet"),
                              "i", kArrays, kConsts));
}

TEST(PrimitiveExpr, ScalarPrimitiveForbidsArrays) {
  EXPECT_TRUE(isScalarPrimitiveExpr(expr("1 + 2 * m"), kConsts));
  EXPECT_FALSE(isScalarPrimitiveExpr(expr("A[i]"), kConsts));
}

TEST(Classify, Example1IsPrimitiveForall) {
  Module m = checked(valpipe::testing::example1Source(8));
  EXPECT_TRUE(isPrimitiveForall(m.blocks[0], m));
  EXPECT_TRUE(isPipeStructured(m));
}

TEST(Classify, Example2IsPrimitiveAndSimpleForIter) {
  Module m = checked(valpipe::testing::example2Source(8));
  EXPECT_TRUE(isPrimitiveForIter(m.blocks[0], m));
  EXPECT_TRUE(isSimpleForIter(m.blocks[0], m));
  EXPECT_TRUE(isPipeStructured(m));
}

TEST(Classify, Figure3IsPipeStructured) {
  Module m = checked(valpipe::testing::figure3Source(8));
  EXPECT_TRUE(isPipeStructured(m));
}

TEST(Classify, NonLinearRecurrenceIsPrimitiveButNotSimple) {
  Module m = checked(R"(
const m = 8
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 1]
  do if i < m + 1 then iter T := T[i: T[i-1] * T[i-1] + A[i]]; i := i + 1 enditer
     else T endif
  endfor
endfun
)");
  EXPECT_TRUE(isPrimitiveForIter(m.blocks[0], m));
  const auto r = isSimpleForIter(m.blocks[0], m);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("not linear"), std::string::npos) << r.reason;
}

TEST(Classify, WrongOffsetOnLoopArrayRejected) {
  // T[i] is a self-reference: range-wise fine, but not the T[i-1] shape the
  // first-order recurrence class requires.
  Module m = checked(R"(
const m = 8
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do if i < m + 1 then iter T := T[i: T[i] + A[i]]; i := i + 1 enditer
     else T endif
  endfor
endfun
)");
  const auto r = isPrimitiveForIter(m.blocks[0], m);
  EXPECT_FALSE(r);
  EXPECT_NE(r.reason.find("first-order"), std::string::npos) << r.reason;
}

TEST(Classify, VisibleArraysAreParamsAndEarlierBlocks) {
  Module m = checked(valpipe::testing::figure3Source(8));
  const auto forA = visibleArrays(m, m.blocks[0]);
  EXPECT_TRUE(forA.count("B"));
  EXPECT_TRUE(forA.count("C"));
  EXPECT_FALSE(forA.count("A"));
  const auto forX = visibleArrays(m, m.blocks[1]);
  EXPECT_TRUE(forX.count("A"));
}

TEST(Classify, ArrayIndexOffsetHelper) {
  EXPECT_EQ(arrayIndexOffset(expr("i"), "i", kConsts), 0);
  EXPECT_EQ(arrayIndexOffset(expr("i+3"), "i", kConsts), 3);
  EXPECT_EQ(arrayIndexOffset(expr("i-2"), "i", kConsts), -2);
  EXPECT_EQ(arrayIndexOffset(expr("m+i"), "i", kConsts), 8);
  EXPECT_EQ(arrayIndexOffset(expr("i+i"), "i", kConsts), std::nullopt);
  EXPECT_EQ(arrayIndexOffset(expr("2-i"), "i", kConsts), std::nullopt);
}

}  // namespace
}  // namespace valpipe::val
