// Unit tests for the type checker: scalar typing, range resolution, the
// flow-sensitive (active-index) array bounds analysis, and error reporting.
#include <gtest/gtest.h>

#include "val/parser.hpp"
#include "val/typecheck.hpp"

#include "testing.hpp"

namespace valpipe::val {
namespace {

Module check(const std::string& src) {
  Module m = parseModuleOrThrow(src);
  typecheckOrThrow(m);
  return m;
}

void expectTypeError(const std::string& src, const std::string& needle) {
  Module m = parseModuleOrThrow(src);
  Diagnostics diags;
  typecheck(m, diags);
  ASSERT_TRUE(diags.hasErrors()) << "expected a type error";
  EXPECT_NE(diags.str().find(needle), std::string::npos) << diags.str();
}

TEST(Typecheck, Example1Resolves) {
  Module m = check(valpipe::testing::example1Source(8));
  ASSERT_TRUE(m.blocks[0].type.range.has_value());
  EXPECT_EQ(*m.blocks[0].type.range, (Range{0, 9}));
}

TEST(Typecheck, Example2ResolvesLoopBound) {
  Module m = check(valpipe::testing::example2Source(8));
  const ForIterBlock& fi = m.blocks[0].forIter();
  ASSERT_TRUE(fi.lastIndex.has_value());
  EXPECT_EQ(*fi.lastIndex, 8);
  EXPECT_EQ(*m.blocks[0].type.range, (Range{0, 8}));
}

TEST(Typecheck, GuardedBoundaryAccessIsAccepted) {
  // Example 1's C[i-1] under the boundary conditional must not be flagged —
  // the flow-sensitive active set excludes i = 0 in the else arm.
  check(valpipe::testing::example1Source(4));
}

TEST(Typecheck, UnguardedOutOfRangeAccessIsRejected) {
  expectTypeError(R"(
const m = 4
function f(C: array[real] [0, m] returns array[real])
  forall i in [0, m] construct C[i-1] endall
endfun
)",
                  "outside");
}

TEST(Typecheck, GuardWithWrongPolarityIsRejected) {
  expectTypeError(R"(
const m = 4
function f(C: array[real] [0, m] returns array[real])
  forall i in [0, m]
  construct if i = 0 then C[i-1] else C[i] endif
endall
endfun
)",
                  "outside");
}

TEST(Typecheck, IntegerWidensToReal) {
  // T : array[real] := [0: 0] assigns integer 0 into a real array.
  check(valpipe::testing::example2Source(4));
}

TEST(Typecheck, RealToIntegerIsRejected) {
  expectTypeError(R"(
const m = 4
function f(A: array[integer] [0, m] returns array[integer])
  forall i in [0, m] construct 2.5 endall
endfun
)",
                  "accumulation has type real");
}

TEST(Typecheck, ConditionMustBeBoolean) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m] construct if i then A[i] else 0. endif endall
endfun
)",
                  "condition must be boolean");
}

TEST(Typecheck, ArmsMustUnify) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m] construct if i = 0 then true else A[i] endif endall
endfun
)",
                  "incompatible types");
}

TEST(Typecheck, UndefinedNameIsReported) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m] construct A[i] * gamma endall
endfun
)",
                  "undefined name 'gamma'");
}

TEST(Typecheck, ArrayUsedAsScalarIsReported) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m] construct A endall
endfun
)",
                  "used as a scalar");
}

TEST(Typecheck, BlocksSeeOnlyEarlierBlocks) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  let
    X : array[real] := forall i in [0, m] construct Y[i] endall
    Y : array[real] := forall i in [0, m] construct A[i] endall
  in X endlet
endfun
)",
                  "not a known array");
}

TEST(Typecheck, ResultMustBeABlock) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  let X : array[real] := forall i in [0, m] construct A[i] endall
  in A endlet
endfun
)",
                  "does not name a block");
}

TEST(Typecheck, DeclaredBlockRangeMustMatch) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  let X : array[real] [0, 2] := forall i in [0, m] construct A[i] endall
  in X endlet
endfun
)",
                  "declares range");
}

TEST(Typecheck, ArrayParamNeedsRange) {
  expectTypeError(R"(
function f(A: array[real] returns array[real])
  forall i in [0, 1] construct A[i] endall
endfun
)",
                  "needs a manifest index range");
}

TEST(Typecheck, ForIterInitMustAbutInitialIndex) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [2, m] returns array[real])
  for i : integer := 2; T : array[real] := [0: 0]
  do if i < m then iter T := T[i: A[i]]; i := i + 1 enditer
     else T endif
  endfor
endfun
)",
                  "start right after");
}

TEST(Typecheck, NonManifestLoopBoundRejected) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do if A[i] < 1. then iter T := T[i: A[i]]; i := i + 1 enditer
     else T endif
  endfor
endfun
)",
                  "manifest");
}

TEST(Typecheck, LetScopingAndShadowing) {
  check(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m]
    P : real := let s : real := A[i] in s * s endlet;
    Q : real := P + 1.
  construct let P : real := Q * 2. in P endlet
  endall
endfun
)");
}

TEST(Typecheck, IndexArithmeticIsInteger) {
  expectTypeError(R"(
const m = 4
function f(A: array[real] [0, m] returns array[real])
  forall i in [0, m] construct A[i + 0.5] endall
endfun
)",
                  "integer");
}

}  // namespace
}  // namespace valpipe::val
