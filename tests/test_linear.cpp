// Unit and property tests for the recurrence linearity analyzer: the
// decomposition x_i = alpha_i * x_{i-1} + beta_i must agree numerically with
// direct evaluation of the body.
#include <gtest/gtest.h>

#include <random>

#include "val/eval.hpp"
#include "val/linear.hpp"
#include "val/parser.hpp"
#include "val/pretty.hpp"

namespace valpipe::val {
namespace {

ExprPtr expr(const std::string& src) {
  Diagnostics diags;
  ExprPtr e = parseExpression(src, diags);
  EXPECT_FALSE(diags.hasErrors()) << diags.str();
  return e;
}

const std::map<std::string, std::int64_t> kConsts{};

std::optional<LinearForm> lin(const std::string& src) {
  return decomposeLinear(expr(src), "T", "i", kConsts);
}

TEST(Linear, Example2Body) {
  auto f = lin("A[i]*T[i-1] + B[i]");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(toString(f->alpha), "A[i]");
  EXPECT_EQ(toString(f->beta), "B[i]");
}

TEST(Linear, PureBeta) {
  auto f = lin("A[i] + 2.");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(toString(f->alpha), "0");
  EXPECT_EQ(toString(f->beta), "(A[i] + 2)");
}

TEST(Linear, BareFeedback) {
  auto f = lin("T[i-1]");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(toString(f->alpha), "1");
  EXPECT_EQ(toString(f->beta), "0");
}

TEST(Linear, SumAndDifference) {
  auto f = lin("T[i-1] + T[i-1] - A[i]");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(toString(f->alpha), "(1 + 1)");
  EXPECT_EQ(toString(f->beta), "-A[i]");
}

TEST(Linear, ScalingAndDivision) {
  auto f = lin("(T[i-1] * A[i] + B[i]) / 2.");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(toString(f->alpha), "(A[i] / 2)");
  EXPECT_EQ(toString(f->beta), "(B[i] / 2)");
}

TEST(Linear, LetBindingsAreInlined) {
  auto f = decomposeLinear(
      expr("let P : real := A[i]*T[i-1] + B[i] in P * 2. endlet"), "T", "i",
      kConsts);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(toString(f->alpha), "(A[i] * 2)");
  EXPECT_EQ(toString(f->beta), "(B[i] * 2)");
}

TEST(Linear, ConditionalCoefficients) {
  auto f = lin("if A[i] > 0. then T[i-1] else 2.*T[i-1] + 1. endif");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(toString(f->alpha), "if (A[i] > 0) then 1 else 2 endif");
  EXPECT_EQ(toString(f->beta), "if (A[i] > 0) then 0 else 1 endif");
}

TEST(Linear, NonLinearFormsRejected) {
  EXPECT_FALSE(lin("T[i-1] * T[i-1]").has_value());
  EXPECT_FALSE(lin("A[i] / T[i-1]").has_value());
  EXPECT_FALSE(lin("if T[i-1] > 0. then 1. else 2. endif").has_value());
  EXPECT_FALSE(
      decomposeLinear(expr("let P : real := T[i-1]*T[i-1] in P + 1. endlet"),
                      "T", "i", kConsts)
          .has_value());
}

TEST(Linear, XFreeConditionalIsBeta) {
  auto f = lin("if A[i] > 0. then B[i] else 0. endif");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(toString(f->alpha), "0");
}

// Property: for random linear bodies, alpha * x + beta == body(x) for many x.
class LinearProperty : public ::testing::TestWithParam<int> {};

TEST_P(LinearProperty, DecompositionAgreesWithDirectEvaluation) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_int_distribution<int> pick(0, 5);

  // Build a random linear-in-T[i-1] expression bottom-up as source text.
  std::vector<std::string> linear{"T[i-1]", "(A[i] * T[i-1])",
                                  "(T[i-1] + B[i])"};
  std::vector<std::string> free{"A[i]", "B[i]", "1.5", "i"};
  std::string body = linear[rng() % linear.size()];
  for (int step = 0; step < 4; ++step) {
    const std::string f = free[rng() % free.size()];
    switch (pick(rng)) {
      case 0: body = "(" + body + " + " + f + ")"; break;
      case 1: body = "(" + body + " - " + f + ")"; break;
      case 2: body = "(" + f + " * " + body + ")"; break;
      case 3: body = "(" + body + " / 2.)"; break;
      case 4: body = "(" + body + " + " + linear[rng() % linear.size()] + ")"; break;
      case 5:
        body = "(if A[i] > 0. then " + body + " else " +
               linear[rng() % linear.size()] + " endif)";
        break;
    }
  }

  const ExprPtr e = expr(body);
  auto f = decomposeLinear(e, "T", "i", kConsts);
  ASSERT_TRUE(f.has_value()) << body;

  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t i = 1 + static_cast<std::int64_t>(rng() % 7);
    const double a = val(rng), b = val(rng), x = val(rng);
    ArrayMap arrays;
    arrays["A"] = {0, std::vector<Value>(9, Value(a))};
    arrays["B"] = {0, std::vector<Value>(9, Value(b))};
    arrays["T"] = {0, std::vector<Value>(9, Value(x))};
    const std::map<std::string, Value> scalars{{"i", Value(i)}};

    const double direct = evalExpr(e, scalars, arrays).toReal();
    const double alpha = evalExpr(f->alpha, scalars, arrays).toReal();
    const double beta = evalExpr(f->beta, scalars, arrays).toReal();
    EXPECT_NEAR(alpha * x + beta, direct, 1e-9)
        << body << " at i=" << i << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace valpipe::val
