// Unit tests for path/balance analysis: topological order, phase-aware
// balance checking (Fig. 4 skew), and feedback-cycle stage counting.
#include <gtest/gtest.h>

#include "analysis/paths.hpp"
#include "dfg/graph.hpp"

namespace valpipe::analysis {
namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;

TEST(Paths, ArcsIncludeGateArcsAndLengths) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId ctl = g.boolSeq(dfg::BoolPattern::uniform(true, 4));
  const NodeId gate = g.gatedIdentity(Graph::out(in), Graph::out(ctl));
  const PortSrc buf = g.fifo(Graph::outT(gate), 3);
  g.output("x", buf);

  const auto all = arcs(g);
  ASSERT_EQ(all.size(), 4u);
  // Arc into the FIFO carries the FIFO's depth.
  bool sawFifoArc = false;
  for (const Arc& a : all)
    if (g.node(a.to).op == Op::Fifo) {
      EXPECT_EQ(a.length, 3);
      sawFifoArc = true;
    }
  EXPECT_TRUE(sawFifoArc);
}

TEST(Paths, PhaseLengthIncludesProducerShift) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId gate = g.identity(Graph::out(in));
  g.node(gate).phaseShift = -2;
  const NodeId use = g.identity(Graph::out(gate));
  g.output("x", Graph::out(use));
  for (const Arc& a : arcs(g)) {
    if (a.from == gate) {
      EXPECT_EQ(a.phaseLength, 1 - 4);
    }
  }
}

TEST(Paths, TopoOrderAndCycleDetection) {
  Graph g;
  const NodeId a = g.identity(Graph::lit(Value(0)));
  const NodeId b = g.identity(Graph::out(a));
  ASSERT_TRUE(topoOrder(g).has_value());

  g.node(a).inputs[0] = Graph::out(b);
  EXPECT_FALSE(topoOrder(g).has_value());

  PortSrc back = Graph::out(b);
  back.feedback = true;
  g.node(a).inputs[0] = back;
  EXPECT_TRUE(topoOrder(g).has_value());
}

TEST(Paths, LongestDepths) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId i1 = g.identity(Graph::out(in));
  const NodeId i2 = g.identity(Graph::out(i1));
  const NodeId join = g.binary(Op::Add, Graph::out(in), Graph::out(i2));
  const auto d = longestDepths(g);
  EXPECT_EQ(d[in.index], 0);
  EXPECT_EQ(d[i1.index], 1);
  EXPECT_EQ(d[i2.index], 2);
  EXPECT_EQ(d[join.index], 3);
}

TEST(Balance, EqualPathsAreBalanced) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId l = g.identity(Graph::out(in));
  const NodeId r = g.identity(Graph::out(in));
  g.binary(Op::Add, Graph::out(l), Graph::out(r));
  EXPECT_TRUE(checkBalanced(g).balanced);
}

TEST(Balance, ReconvergentMismatchDetected) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId l = g.identity(Graph::out(in));
  const NodeId l2 = g.identity(Graph::out(l));
  const NodeId r = g.identity(Graph::out(in));
  g.binary(Op::Add, Graph::out(l2), Graph::out(r));
  const auto rep = checkBalanced(g);
  EXPECT_FALSE(rep.balanced);
  EXPECT_FALSE(rep.reason.empty());
}

TEST(Balance, FifoSlackRestoresBalance) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId l = g.identity(Graph::out(in));
  const NodeId l2 = g.identity(Graph::out(l));
  const NodeId r = g.identity(Graph::out(in));
  const PortSrc buffered = g.fifo(Graph::out(r), 1);
  g.binary(Op::Add, Graph::out(l2), buffered);
  EXPECT_TRUE(checkBalanced(g).balanced) << checkBalanced(g).reason;
}

TEST(Balance, IndependentSourcesMayFloat) {
  // Unequal-length paths from *different* self-timed sources are fine.
  Graph g;
  const NodeId a = g.input("a", 4);
  const NodeId b = g.input("b", 4);
  const NodeId b1 = g.identity(Graph::out(b));
  const NodeId b2 = g.identity(Graph::out(b1));
  g.binary(Op::Add, Graph::out(a), Graph::out(b2));
  EXPECT_TRUE(checkBalanced(g).balanced);
}

TEST(Balance, PhaseShiftCountsAsSkew) {
  // Same producer, two gates with different index shifts, zipped: unbalanced
  // until the skew is buffered (the Fig. 4 situation).
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId g0 = g.identity(Graph::out(in));
  const NodeId g1 = g.identity(Graph::out(in));
  g.node(g1).phaseShift = 1;
  const NodeId add = g.binary(Op::Add, Graph::out(g0), Graph::out(g1));
  EXPECT_FALSE(checkBalanced(g).balanced);

  // Buffering the early stream by 2 cells (= 2*shift) rebalances.
  g.node(add).inputs[0] = g.fifo(Graph::out(g0), 2);
  EXPECT_TRUE(checkBalanced(g).balanced) << checkBalanced(g).reason;
}

TEST(Cycles, FeedbackCycleStagesCounted) {
  // Todd-style 3-cell cycle: entry -> step -> merge -> (feedback) entry.
  Graph g;
  const NodeId entry = g.identity(Graph::lit(Value(0)));
  const NodeId step = g.binary(Op::Add, Graph::out(entry), Graph::lit(Value(1)));
  const NodeId ctl = g.boolSeq(dfg::BoolPattern::runs(1, 3, 0));
  const NodeId merge = g.merge(Graph::out(ctl), Graph::out(step),
                               Graph::lit(Value(0)));
  g.node(merge).gate = Graph::out(g.boolSeq(dfg::BoolPattern::runs(0, 3, 1)));
  PortSrc back = Graph::outT(merge);
  back.feedback = true;
  g.node(entry).inputs[0] = back;
  g.output("x", Graph::out(merge));

  const auto cycles = feedbackCycles(g);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].stages, 3);
  EXPECT_EQ(cycles[0].from, merge);
  EXPECT_EQ(cycles[0].to, entry);
}

}  // namespace
}  // namespace valpipe::analysis
