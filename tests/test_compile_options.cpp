// CompileOptions validation: every rejected option combination must raise a
// CompileError whose message names the offending option, so a user can go
// straight from the diagnostic to the knob.
#include <gtest/gtest.h>

#include <string>

#include "core/compiler.hpp"
#include "support/diagnostics.hpp"
#include "testing.hpp"

namespace valpipe {
namespace {

using core::CompileOptions;
using core::ForIterScheme;

/// Compiles example 2 (a simple linear for-iter) under `opts` and returns
/// the CompileError message, failing if nothing was thrown.
std::string compileError(const CompileOptions& opts,
                         const std::string& src = testing::example2Source(8)) {
  try {
    core::compile(core::frontend(src), opts);
  } catch (const CompileError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a CompileError";
  return {};
}

TEST(CompileOptions, CompanionSkipNotPowerOfTwoNamesOption) {
  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::Companion;
  opts.companionSkip = 6;
  const std::string msg = compileError(opts);
  EXPECT_NE(msg.find("companionSkip"), std::string::npos) << msg;
  EXPECT_NE(msg.find("power of two"), std::string::npos) << msg;
  EXPECT_NE(msg.find("6"), std::string::npos) << msg;
}

TEST(CompileOptions, CompanionSkipBelowTwoNamesOption) {
  for (int k : {0, 1, -4}) {
    CompileOptions opts;
    opts.forIterScheme = ForIterScheme::Companion;
    opts.companionSkip = k;
    const std::string msg = compileError(opts);
    EXPECT_NE(msg.find("companionSkip"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(k)), std::string::npos) << msg;
  }
}

TEST(CompileOptions, CompanionSkipExceedingTripCountNamesOption) {
  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::Companion;
  opts.companionSkip = 64;  // trip count is 8
  const std::string msg = compileError(opts);
  EXPECT_NE(msg.find("companionSkip"), std::string::npos) << msg;
  EXPECT_NE(msg.find("trip count"), std::string::npos) << msg;
  EXPECT_NE(msg.find("64"), std::string::npos) << msg;
}

TEST(CompileOptions, LongFifoInterleaveBelowTwoNamesOption) {
  for (int b : {1, 0, -3}) {
    CompileOptions opts;
    opts.forIterScheme = ForIterScheme::LongFifo;
    opts.interleave = b;
    const std::string msg = compileError(opts);
    EXPECT_NE(msg.find("interleave"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(b)), std::string::npos) << msg;
  }
}

TEST(CompileOptions, CompanionOnNonlinearRecurrenceNamesScheme) {
  // The recurrence multiplies T[i-1] by itself: not first-order linear, so
  // the companion-function scheme cannot apply.
  const std::string src = "const m = 8\n" +
                          std::string(R"(function sq(B: array[real] [1, m]
                returns array[real])
  for i : integer := 1;
      T : array[real] := [0: 0.5]
  do let P : real := T[i-1]*T[i-1] + B[i]
     in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
        else T endif
     endlet
  endfor
endfun
)");
  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::Companion;
  const std::string msg = compileError(opts, src);
  EXPECT_NE(msg.find("Companion"), std::string::npos) << msg;
  EXPECT_NE(msg.find("not first-order linear"), std::string::npos) << msg;
  EXPECT_NE(msg.find("Todd"), std::string::npos) << msg;
}

TEST(CompileOptions, ValidOptionsStillCompile) {
  CompileOptions opts;
  opts.forIterScheme = ForIterScheme::Companion;
  opts.companionSkip = 4;
  EXPECT_NO_THROW(
      core::compile(core::frontend(testing::example2Source(8)), opts));
  opts.forIterScheme = ForIterScheme::LongFifo;
  opts.interleave = 2;
  EXPECT_NO_THROW(
      core::compile(core::frontend(testing::example2Source(8)), opts));
}

}  // namespace
}  // namespace valpipe
