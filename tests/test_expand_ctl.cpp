// Tests for the counter-loop lowering of control-sequence generators
// (Todd's machine-level construction) and for load-time tokens.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/expand_ctl.hpp"
#include "dfg/lower.hpp"
#include "dfg/prune.hpp"
#include "dfg/stats.hpp"
#include "dfg/validate.hpp"
#include "machine/engine.hpp"
#include "support/diagnostics.hpp"
#include "testing.hpp"

namespace valpipe {
namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::Op;

/// Runs a lowered graph on the machine engine collecting `expect` outputs.
machine::MachineResult runMachine(const Graph& g,
                                  const run::StreamMap& in,
                                  const std::string& out, std::int64_t expect) {
  machine::RunOptions opts;
  opts.expectedOutputs[out] = expect;
  return machine::simulate(dfg::expandFifos(g), machine::MachineConfig::unit(),
                           in, opts);
}

TEST(ExpandCtl, CounterReplacesIndexSeq) {
  Graph g;
  const NodeId seq = g.indexSeq(3, 7, 1);
  g.output("x", Graph::out(seq));
  ASSERT_TRUE(dfg::hasControlGenerators(g));

  Graph low = dfg::pruneDead(dfg::expandControlGenerators(g));
  EXPECT_FALSE(dfg::hasControlGenerators(low));
  EXPECT_TRUE(dfg::validate(low).ok()) << dfg::validate(low).str();

  // Two full periods of the counter: 3..7, 3..7.
  const auto res = runMachine(low, {}, "x", 10);
  ASSERT_TRUE(res.completed) << res.note;
  std::vector<Value> want;
  for (int rep = 0; rep < 2; ++rep)
    for (int i = 3; i <= 7; ++i) want.push_back(Value(std::int64_t{i}));
  EXPECT_EQ(res.outputs.at("x"), want);
  // Free-running counter sustains the machine maximum.
  EXPECT_NEAR(res.steadyRate("x"), 0.5, 0.1);
}

TEST(ExpandCtl, PatternLowersToComparisons) {
  Graph g;
  dfg::BoolPattern p;
  p.bits = {false, true, true, false, true, false};
  const NodeId ctl = g.boolSeq(p);
  g.output("x", Graph::out(ctl));
  Graph low = dfg::pruneDead(dfg::expandControlGenerators(g));
  EXPECT_TRUE(dfg::validate(low).ok()) << dfg::validate(low).str();

  const auto res = runMachine(low, {}, "x", 12);  // two periods
  ASSERT_TRUE(res.completed) << res.note;
  std::vector<Value> want;
  for (int rep = 0; rep < 2; ++rep)
    for (bool b : {false, true, true, false, true, false})
      want.push_back(Value(b));
  EXPECT_EQ(res.outputs.at("x"), want);
}

TEST(ExpandCtl, UniformPatterns) {
  for (bool uniformValue : {true, false}) {
    Graph g;
    const NodeId ctl = g.boolSeq(dfg::BoolPattern::uniform(uniformValue, 4));
    g.output("x", Graph::out(ctl));
    Graph low = dfg::pruneDead(dfg::expandControlGenerators(g));
    const auto res = runMachine(low, {}, "x", 4);
    ASSERT_TRUE(res.completed) << res.note;
    for (const Value& v : res.outputs.at("x"))
      EXPECT_EQ(v.asBoolean(), uniformValue);
  }
}

TEST(ExpandCtl, RejectsBatchedIndexSeq) {
  Graph g;
  const NodeId seq = g.indexSeq(0, 3, 2);
  g.output("x", Graph::out(seq));
  EXPECT_THROW(dfg::expandControlGenerators(g), CompileError);
}

TEST(ExpandCtl, GatedSelectionStillWorks) {
  // An input gated by a lowered control sequence selects the same window.
  const std::int64_t n = 8;
  Graph g;
  const NodeId in = g.input("a", n);
  const NodeId ctl = g.boolSeq(dfg::BoolPattern::runs(2, 4, 2));
  const NodeId gate = g.gatedIdentity(Graph::out(in), Graph::out(ctl));
  g.output("x", Graph::outT(gate));

  std::vector<Value> data;
  for (int i = 0; i < n; ++i) data.push_back(Value(static_cast<double>(i)));

  Graph low = dfg::pruneDead(dfg::expandControlGenerators(g));
  const auto res = runMachine(low, {{"a", data}}, "x", 4);
  ASSERT_TRUE(res.completed) << res.note;
  EXPECT_EQ(res.outputs.at("x"),
            (std::vector<Value>{Value(2.0), Value(3.0), Value(4.0), Value(5.0)}));
}

TEST(ExpandCtl, Example1LoweredMatchesAbstractGenerators) {
  const int m = 24;
  val::Module mod = core::frontend(testing::example1Source(m));
  val::ArrayMap in;
  in["B"] = testing::randomArray({0, m + 1}, 61);
  in["C"] = testing::randomArray({0, m + 1}, 62);
  const auto ref = val::evaluate(mod, in);

  core::CompileOptions opts;
  opts.lowerControl = true;
  const auto prog = core::compile(mod, opts);
  EXPECT_FALSE(dfg::hasControlGenerators(prog.graph));

  const auto res = runMachine(prog.graph, testing::inputsFor(prog, in),
                              prog.outputName, m + 2);
  ASSERT_TRUE(res.completed) << res.note;
  testing::expectStreamNear(res.outputs.at(prog.outputName), ref.result.elems,
                            0.0, "lowered-control output");
  EXPECT_GE(res.steadyRate(prog.outputName), 0.45);
}

TEST(ExpandCtl, Example2ToddLoweredKeepsOneThirdRate) {
  const int m = 127;
  val::Module mod = core::frontend(testing::example2Source(m));
  val::ArrayMap in;
  in["A"] = testing::randomArray({1, m}, 63, -0.9, 0.9);
  in["B"] = testing::randomArray({1, m}, 64);
  const auto ref = val::evaluate(mod, in);

  core::CompileOptions opts;
  opts.lowerControl = true;
  opts.forIterScheme = core::ForIterScheme::Todd;
  const auto prog = core::compile(mod, opts);
  const auto res = runMachine(prog.graph, testing::inputsFor(prog, in),
                              prog.outputName, m + 1);
  ASSERT_TRUE(res.completed) << res.note;
  testing::expectStreamNear(res.outputs.at(prog.outputName), ref.result.elems,
                            0.0, "lowered todd output");
  EXPECT_NEAR(res.steadyRate(prog.outputName), 1.0 / 3.0, 0.02);
}

TEST(ExpandCtl, CellOverheadIsModest) {
  const auto abstract = core::compileSource(testing::example1Source(32));
  core::CompileOptions opts;
  opts.lowerControl = true;
  const auto lowered = core::compileSource(testing::example1Source(32), opts);
  const auto a = dfg::computeStats(abstract.graph);
  const auto b = dfg::computeStats(lowered.graph);
  EXPECT_GT(b.cells, a.cells);        // counters cost real cells...
  EXPECT_LT(b.cells, a.cells * 4);    // ...but only a constant factor
  EXPECT_EQ(b.byOp.count(dfg::Op::BoolSeq), 0u);
}

TEST(InitialTokens, ValidateRejectsInitialOnLiteral) {
  Graph g;
  dfg::PortSrc lit = Graph::lit(Value(1));
  lit.initial = Value(2);
  const NodeId id = g.identity(lit);
  g.output("x", Graph::out(id));
  EXPECT_FALSE(dfg::validate(g).ok());
}

TEST(InitialTokens, InterpreterSeesLoadTimeToken) {
  // add(in, tokenized arc) where the arc's producer never fires: only the
  // load-time token is available, so exactly one sum is produced.
  Graph g;
  const NodeId in = g.input("a", 2);
  const NodeId never = g.identity(Graph::out(g.input("b", 1)), "never");
  dfg::PortSrc arc = Graph::out(never);
  arc.initial = Value(10.0);
  const NodeId add = g.binary(Op::Add, Graph::out(in), arc);
  g.output("x", Graph::out(add));
  const auto res = sim::interpret(
      g, {{"a", {Value(1.0), Value(2.0)}}, {"b", {Value(100.0)}}});
  // Two tokens on the arc total: the load-time one and b's 100.
  EXPECT_EQ(res.outputs.at("x"),
            (std::vector<Value>{Value(11.0), Value(102.0)}));
}

}  // namespace
}  // namespace valpipe
