// Unit tests for lowering (FIFO expansion) and dead-code pruning.
#include <gtest/gtest.h>

#include "dfg/lower.hpp"
#include "dfg/prune.hpp"
#include "dfg/validate.hpp"
#include "sim/interpreter.hpp"

namespace valpipe::dfg {
namespace {

TEST(Lower, ExpandsFifoToIdentityChain) {
  Graph g;
  const NodeId in = g.input("a", 3);
  const PortSrc buf = g.fifo(Graph::out(in), 4);
  g.output("x", buf);
  ASSERT_FALSE(isLowered(g));

  const Graph low = expandFifos(g);
  EXPECT_TRUE(isLowered(low));
  EXPECT_EQ(low.size(), 6u);  // input + 4 ids + output
  EXPECT_TRUE(validate(low).ok());

  // Chain-internal arcs are rigid.
  std::size_t rigid = 0;
  for (NodeId id : low.ids())
    for (const PortSrc& src : low.node(id).inputs)
      if (src.isArc() && src.rigid) ++rigid;
  EXPECT_EQ(rigid, 3u);
}

TEST(Lower, PreservesSemantics) {
  Graph g;
  const NodeId in = g.input("a", 3);
  const PortSrc buf = g.fifo(Graph::out(in), 2);
  const NodeId add = g.binary(Op::Add, buf, Graph::lit(Value(10)));
  g.output("x", Graph::out(add));

  run::StreamMap inputs{{"a", {Value(1), Value(2), Value(3)}}};
  const auto before = sim::interpret(g, inputs);
  const auto after = sim::interpret(expandFifos(g), inputs);
  EXPECT_EQ(before.outputs.at("x"), after.outputs.at("x"));
}

TEST(Lower, FlagsCarryToFirstChainArc) {
  Graph g;
  const NodeId a = g.identity(Graph::lit(Value(0)));
  PortSrc looped = Graph::out(a);
  looped.feedback = true;
  const PortSrc buf = g.fifo(looped, 2);
  g.node(a).inputs[0] = buf;  // close a cycle through the fifo
  g.output("x", Graph::out(a));

  const Graph low = expandFifos(g);
  // Some arc in the lowered graph must still carry the feedback flag so the
  // cycle stays broken for analysis.
  bool sawFeedback = false;
  for (NodeId id : low.ids())
    for (const PortSrc& src : low.node(id).inputs)
      sawFeedback = sawFeedback || (src.isArc() && src.feedback);
  EXPECT_TRUE(sawFeedback);
  EXPECT_TRUE(validate(low).ok()) << validate(low).str();
}

TEST(Prune, DropsUnreachableCells) {
  Graph g;
  const NodeId in = g.input("a", 3);
  const NodeId used = g.identity(Graph::out(in), "used");
  const NodeId dead1 = g.identity(Graph::out(in), "dead");
  g.binary(Op::Mul, Graph::out(dead1), Graph::lit(Value(2)), "dead2");
  g.output("x", Graph::out(used));

  const Graph pruned = pruneDead(g);
  EXPECT_EQ(pruned.size(), 3u);  // input, used, output
  for (NodeId id : pruned.ids())
    EXPECT_EQ(pruned.node(id).label.find("dead"), std::string::npos);
}

TEST(Prune, KeepsGateControlChains) {
  Graph g;
  const NodeId in = g.input("a", 3);
  const NodeId ctl = g.boolSeq(BoolPattern::uniform(true, 3));
  const NodeId gate = g.gatedIdentity(Graph::out(in), Graph::out(ctl));
  g.output("x", Graph::outT(gate));
  const Graph pruned = pruneDead(g);
  EXPECT_EQ(pruned.size(), 4u);  // control source survives
}

TEST(Prune, KeepsAmStores) {
  Graph g;
  const NodeId in = g.input("a", 3);
  g.amStore("mem", Graph::out(in));
  const Graph pruned = pruneDead(g);
  EXPECT_EQ(pruned.size(), 2u);
}

TEST(Prune, HandlesFeedbackArcs) {
  // consumer (lower id) references producer (higher id) via feedback.
  Graph g;
  const NodeId entry = g.identity(Graph::lit(Value(0)));
  const NodeId step = g.binary(Op::Add, Graph::out(entry), Graph::lit(Value(1)));
  PortSrc back = Graph::out(step);
  back.feedback = true;
  g.node(entry).inputs[0] = back;
  g.output("x", Graph::out(step));
  const Graph pruned = pruneDead(g);
  EXPECT_EQ(pruned.size(), 3u);
  EXPECT_TRUE(validate(pruned).ok()) << validate(pruned).str();
}

TEST(Prune, EmptyWhenNoSinks) {
  Graph g;
  g.input("a", 3);
  g.identity(Graph::lit(Value(1)));
  EXPECT_EQ(pruneDead(g).size(), 0u);
}

}  // namespace
}  // namespace valpipe::dfg
