// Scheduler-equivalence suite: on randomly generated Val programs (primitive
// expressions, forall and for-iter blocks) the event-driven scheduler must
// produce a MachineResult bit-identical to the reference stepper — every
// field, not just outputs — under varied timing profiles, finite FU pools,
// placements and multi-wave runs; and the outputs must match the functional
// reference evaluator while sustaining the compiler's predicted steady rate
// (1/2 for pipelines, 1/3 for Todd's scheme, k/S for a cycle of S stages
// carrying k tokens).
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "generators.hpp"
#include "guard/guard.hpp"
#include "machine/engine.hpp"
#include "machine/placement.hpp"
#include "obs/metrics.hpp"
#include "opt/fuse.hpp"
#include "sched/schedule.hpp"
#include "testing.hpp"
#include "val/eval.hpp"

namespace valpipe {
namespace {

using core::CompileOptions;
using core::ForIterScheme;
using machine::MachineConfig;
using machine::MachineResult;
using machine::RunOptions;
using machine::SchedulerKind;
using testing::GenOptions;
using testing::ProgramGen;
using testing::randomArray;

using testing::expectIdentical;

/// Runs all four single-threaded schedulers on the same workload and checks
/// the flattened ones against the reference stepper field-by-field.  The
/// Compiled scheduler rides along on every workload: accepted graphs take
/// the fast-forward path, everything else exercises its fallback paths —
/// either way the result must stay bit-identical.
MachineResult runAllSchedulers(const dfg::Graph& lowered,
                               const MachineConfig& cfg,
                               const run::StreamMap& in, RunOptions opts,
                               const std::string& what) {
  opts.scheduler = SchedulerKind::Reference;
  const MachineResult ref = machine::simulate(lowered, cfg, in, opts);
  opts.scheduler = SchedulerKind::EventDriven;
  const MachineResult ed = machine::simulate(lowered, cfg, in, opts);
  opts.scheduler = SchedulerKind::Synchronous;
  const MachineResult sync = machine::simulate(lowered, cfg, in, opts);
  opts.scheduler = SchedulerKind::Compiled;
  const MachineResult cp = machine::simulate(lowered, cfg, in, opts);
  expectIdentical(ed, ref, what + " [event-driven vs reference]");
  expectIdentical(sync, ref, what + " [synchronous vs reference]");
  expectIdentical(cp, ref, what + " [compiled vs reference]");
  EXPECT_TRUE(cp.compiled.requested) << what;
  return ref;
}

val::ArrayMap genInputs(const val::Module& mod, unsigned seed) {
  val::ArrayMap in;
  unsigned k = 0;
  for (const val::Param& p : mod.params)
    in[p.name] = randomArray(*p.type.range, seed + 100 * k++, 0.0, 1.0);
  return in;
}

class SchedulerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerEquivalence, RandomProgramsBitIdenticalAcrossSchedulers) {
  const int p = GetParam();
  GenOptions gopts;
  gopts.blocks = 1 + p % 3;
  gopts.m = 8 + p % 5;
  ProgramGen gen(static_cast<unsigned>(p) * 271 + 9, gopts);
  const std::string src = gen.module();
  SCOPED_TRACE(src);

  val::Module mod = core::frontend(src);
  const val::ArrayMap in = genInputs(mod, static_cast<unsigned>(p));
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  const run::StreamMap streams = testing::inputsFor(prog, in);

  struct Variant {
    std::string name;
    MachineConfig cfg;
    int waves = 1;
    int peCount = 0;  // 0 => no placement
  };
  std::vector<Variant> variants;
  variants.push_back({"unit", MachineConfig::unit(), 1, 0});
  variants.push_back({"hardware", MachineConfig::hardware(), 1, 0});
  {
    MachineConfig finite = MachineConfig::hardware(/*fpus=*/2, /*alus=*/2,
                                                   /*ams=*/1);
    variants.push_back({"finite-fus", finite, 1, 0});
  }
  variants.push_back({"placed", MachineConfig::hardware(), 1, 3});
  variants.push_back({"waves", MachineConfig::unit(), 2, 0});

  for (const Variant& v : variants) {
    RunOptions opts;
    opts.waves = v.waves;
    opts.expectedOutputs[prog.outputName] =
        prog.expectedOutputPerWave() * v.waves;
    if (v.peCount > 0) {
      MachineConfig cfg = v.cfg;
      cfg.interPeDelay = 2;
      opts.placement = machine::assignCells(
          lowered, v.peCount, machine::PlacementStrategy::RoundRobin);
      const MachineResult res =
          runAllSchedulers(lowered, cfg, streams, opts, v.name);
      ASSERT_TRUE(res.completed) << v.name << ": " << res.note;
      continue;
    }
    const MachineResult res =
        runAllSchedulers(lowered, v.cfg, streams, opts, v.name);
    ASSERT_TRUE(res.completed) << v.name << ": " << res.note;
    // Functional ground truth: outputs equal the reference evaluator's.
    std::vector<Value> want;
    for (int w = 0; w < v.waves; ++w)
      want.insert(want.end(), ref.result.elems.begin(),
                  ref.result.elems.end());
    testing::expectStreamNear(res.outputs.at(prog.outputName), want, 1e-7,
                              v.name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence, ::testing::Range(0, 18));

TEST(SchedulerEquivalence, DeadlockMaxCyclesAndQuiescenceAgree) {
  const auto prog = core::compile(core::frontend(testing::example1Source(8)));
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  val::ArrayMap in;
  in["B"] = randomArray({0, 9}, 11);
  in["C"] = randomArray({0, 9}, 12);
  const run::StreamMap streams = testing::inputsFor(prog, in);

  // Impossible expectation -> both report the same deadlock.
  RunOptions starve;
  starve.expectedOutputs[prog.outputName] = 10'000;
  runAllSchedulers(lowered, MachineConfig::unit(), streams, starve,
                   "deadlock");

  // Truncated run -> both report maxCycles exceeded at the same point.
  RunOptions truncated;
  truncated.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  truncated.maxCycles = 7;
  runAllSchedulers(lowered, MachineConfig::hardware(), streams, truncated,
                   "maxCycles");

  // No expectation -> both run to quiescence with identical cycle counts.
  RunOptions open;
  const MachineResult res = runAllSchedulers(
      lowered, MachineConfig::unit(), streams, open, "quiescence");
  EXPECT_TRUE(res.completed);
}

TEST(SchedulerEquivalence, ForallSustainsPredictedHalfRate) {
  const int m = 128;
  val::Module mod = core::frontend(testing::example1Source(m));
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 21);
  in["C"] = randomArray({0, m + 1}, 22);
  const auto ref = val::evaluate(mod, in);
  const auto prog = core::compile(mod);
  EXPECT_DOUBLE_EQ(prog.predictedRate(), 0.5);
  testing::checkMachine(prog, in, ref.result.elems, 1e-7, 1, 0.45, 0.5);
}

TEST(SchedulerEquivalence, ForIterSchemesSustainPredictedRates) {
  const int m = 255;
  val::Module mod = core::frontend(testing::example2Source(m));
  val::ArrayMap in;
  in["A"] = randomArray({1, m}, 31, -0.8, 0.8);
  in["B"] = randomArray({1, m}, 32);
  const auto ref = val::evaluate(mod, in);

  // Todd's scheme: a 3-stage feedback cycle with one token -> rate 1/3.
  {
    CompileOptions opts;
    opts.forIterScheme = ForIterScheme::Todd;
    const auto prog = core::compile(mod, opts);
    EXPECT_NEAR(prog.predictedRate(), 1.0 / 3.0, 1e-9);
    const auto res =
        testing::checkMachine(prog, in, ref.result.elems, 1e-6, 1,
                              prog.predictedRate() - 0.04, prog.predictedRate());
    EXPECT_TRUE(res.completed);
  }
  // Companion scheme, skip k: S = 2k stages carry k tokens -> rate k/S = 1/2.
  for (int k : {2, 8}) {
    CompileOptions opts;
    opts.forIterScheme = ForIterScheme::Companion;
    opts.companionSkip = k;
    const auto prog = core::compile(mod, opts);
    ASSERT_EQ(prog.blocks[0].cycleStages, 2 * k);
    ASSERT_EQ(prog.blocks[0].cycleTokens, k);
    const double predicted =
        static_cast<double>(prog.blocks[0].cycleTokens) /
        static_cast<double>(prog.blocks[0].cycleStages);
    EXPECT_DOUBLE_EQ(prog.predictedRate(), predicted);
    const auto res = testing::checkMachine(prog, in, ref.result.elems, 1e-6, 1,
                                           predicted - 0.05, predicted);
    EXPECT_TRUE(res.completed);
  }
}

// --- SchedulerKind::Compiled: steady-state fast-forward ---------------------

/// A pure-DAG program the schedule IR accepts (no gates, merges, feedback).
std::string dagSource(int m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function f(A, B: array[real] [1, m] returns array[real])
  forall i in [1, m]
  construct 0.5 * (A[i] + B[i]) * A[i]
  endall
endfun
)";
}

struct CompiledRun {
  MachineResult ed;
  MachineResult cp;
};

CompiledRun runCompiledVsEvent(const dfg::Graph& lowered,
                               const MachineConfig& cfg,
                               const run::StreamMap& in, RunOptions opts) {
  CompiledRun r;
  opts.scheduler = SchedulerKind::EventDriven;
  r.ed = machine::simulate(lowered, cfg, in, opts);
  opts.scheduler = SchedulerKind::Compiled;
  r.cp = machine::simulate(lowered, cfg, in, opts);
  return r;
}

class CompiledScheduler : public ::testing::Test {
 protected:
  void prepare(int m) {
    prog_ = core::compileSource(dagSource(m));
    lowered_ = opt::fuseFifos(prog_.graph);
    val::ArrayMap in;
    in["A"] = randomArray({1, m}, 41);
    in["B"] = randomArray({1, m}, 42);
    streams_ = testing::inputsFor(prog_, in);
  }
  RunOptions expectAll(int waves = 1) const {
    RunOptions opts;
    opts.waves = waves;
    opts.expectedOutputs.emplace(prog_.outputName,
                                 prog_.expectedOutputPerWave() * waves);
    return opts;
  }

  core::CompiledProgram prog_;
  dfg::Graph lowered_;
  run::StreamMap streams_;
};

TEST_F(CompiledScheduler, FastForwardsLargeDagBitIdentical) {
  prepare(1024);
  const CompiledRun r = runCompiledVsEvent(lowered_, MachineConfig::unit(),
                                           streams_, expectAll());
  expectIdentical(r.cp, r.ed, "compiled fast-forward (unit)");
  ASSERT_TRUE(r.cp.completed) << r.cp.note;
  EXPECT_TRUE(r.cp.compiled.accepted) << r.cp.compiled.reason;
  EXPECT_TRUE(r.cp.compiled.fastForwarded) << r.cp.compiled.reason;
  EXPECT_GT(r.cp.compiled.windowsSkipped, 0);
  EXPECT_EQ(r.cp.compiled.hyperPeriod, 2);
  EXPECT_EQ(r.cp.compiled.detectedPeriod, 2);
  EXPECT_TRUE(r.cp.compiled.vectorized);
}

TEST_F(CompiledScheduler, FastForwardsUnderHardwareProfileAndMultipleWaves) {
  prepare(512);
  const CompiledRun r = runCompiledVsEvent(lowered_, MachineConfig::hardware(),
                                           streams_, expectAll(/*waves=*/3));
  expectIdentical(r.cp, r.ed, "compiled fast-forward (hardware, 3 waves)");
  ASSERT_TRUE(r.cp.completed) << r.cp.note;
  EXPECT_TRUE(r.cp.compiled.fastForwarded) << r.cp.compiled.reason;
  EXPECT_GT(r.cp.compiled.windowsSkipped, 0);
}

TEST_F(CompiledScheduler, FastForwardsToQuiescenceWithoutExpectations) {
  prepare(768);
  const CompiledRun r = runCompiledVsEvent(lowered_, MachineConfig::unit(),
                                           streams_, RunOptions{});
  expectIdentical(r.cp, r.ed, "compiled quiescence run");
  ASSERT_TRUE(r.cp.completed) << r.cp.note;
  EXPECT_TRUE(r.cp.compiled.fastForwarded) << r.cp.compiled.reason;
  EXPECT_GT(r.cp.compiled.windowsSkipped, 0);
}

TEST_F(CompiledScheduler, GuardsValidatePerHyperPeriodCountersAcrossJumps) {
  prepare(1024);
  guard::Config guards;
  RunOptions opts = expectAll();
  opts.guards = &guards;
  const CompiledRun r =
      runCompiledVsEvent(lowered_, MachineConfig::unit(), streams_, opts);
  expectIdentical(r.cp, r.ed, "compiled run with guards");
  ASSERT_TRUE(r.cp.completed) << r.cp.note;
  EXPECT_TRUE(r.cp.compiled.fastForwarded) << r.cp.compiled.reason;
  EXPECT_GT(r.cp.compiled.windowsSkipped, 0);
}

TEST_F(CompiledScheduler, FiniteFuPoolDisablesFastForwardButStaysIdentical) {
  prepare(256);
  const MachineConfig finite = MachineConfig::hardware(/*fpus=*/2, /*alus=*/2,
                                                       /*ams=*/1);
  const CompiledRun r =
      runCompiledVsEvent(lowered_, finite, streams_, expectAll());
  expectIdentical(r.cp, r.ed, "compiled with finite FU pool");
  EXPECT_TRUE(r.cp.compiled.accepted);
  EXPECT_FALSE(r.cp.compiled.fastForwarded);
  EXPECT_NE(r.cp.compiled.reason.find("function-unit"), std::string::npos)
      << r.cp.compiled.reason;
}

TEST_F(CompiledScheduler, ObservabilitySinksDisableFastForwardButStayIdentical) {
  prepare(256);
  obs::MetricsSink edSink, cpSink;
  RunOptions opts = expectAll();
  opts.scheduler = SchedulerKind::EventDriven;
  opts.metrics = &edSink;
  const MachineResult ed =
      machine::simulate(lowered_, MachineConfig::unit(), streams_, opts);
  opts.scheduler = SchedulerKind::Compiled;
  opts.metrics = &cpSink;
  const MachineResult cp =
      machine::simulate(lowered_, MachineConfig::unit(), streams_, opts);
  expectIdentical(cp, ed, "compiled with metrics sink");
  EXPECT_FALSE(cp.compiled.fastForwarded);
  EXPECT_NE(cp.compiled.reason.find("observability"), std::string::npos)
      << cp.compiled.reason;
}

TEST(CompiledFallback, GatedGraphFallsBackWithStructuredReason) {
  const auto prog = core::compile(core::frontend(testing::example1Source(16)));
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  val::ArrayMap in;
  in["B"] = randomArray({0, 17}, 51);
  in["C"] = randomArray({0, 17}, 52);
  const run::StreamMap streams = testing::inputsFor(prog, in);
  RunOptions opts;
  opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  const CompiledRun r =
      runCompiledVsEvent(lowered, MachineConfig::unit(), streams, opts);
  expectIdentical(r.cp, r.ed, "compiled fallback on gated graph");
  ASSERT_TRUE(r.cp.completed) << r.cp.note;
  EXPECT_TRUE(r.cp.compiled.requested);
  EXPECT_FALSE(r.cp.compiled.accepted);
  EXPECT_NE(r.cp.compiled.reason.find("declined (gated-delivery)"),
            std::string::npos)
      << r.cp.compiled.reason;
  EXPECT_NE(r.cp.compiled.reason.find("falling back to event-driven"),
            std::string::npos)
      << r.cp.compiled.reason;
}

TEST(CompiledFallback, ErrorModeThrowsScheduleDeclined) {
  const auto prog = core::compile(core::frontend(testing::example1Source(8)));
  const dfg::Graph lowered = dfg::expandFifos(prog.graph);
  val::ArrayMap in;
  in["B"] = randomArray({0, 9}, 61);
  in["C"] = randomArray({0, 9}, 62);
  const run::StreamMap streams = testing::inputsFor(prog, in);
  RunOptions opts;
  opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  opts.scheduler = SchedulerKind::Compiled;
  opts.compiledFallback = core::CompiledFallback::Error;
  EXPECT_THROW(
      machine::simulate(lowered, MachineConfig::unit(), streams, opts),
      sched::ScheduleDeclined);
}

TEST(CompiledFallback, FeedbackSchemesFallBackBitIdentical) {
  // Both for-iter schemes carry feedback cycles the IR declines; the
  // compiled scheduler must still match the event-driven run exactly.
  for (ForIterScheme scheme : {ForIterScheme::Todd, ForIterScheme::Companion}) {
    CompileOptions copts;
    copts.forIterScheme = scheme;
    const auto prog =
        core::compile(core::frontend(testing::example2Source(32)), copts);
    const dfg::Graph lowered = dfg::expandFifos(prog.graph);
    val::ArrayMap in;
    in["A"] = randomArray({1, 32}, 71, -0.8, 0.8);
    in["B"] = randomArray({1, 32}, 72);
    const run::StreamMap streams = testing::inputsFor(prog, in);
    RunOptions opts;
    opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
    const CompiledRun r =
        runCompiledVsEvent(lowered, MachineConfig::unit(), streams, opts);
    expectIdentical(r.cp, r.ed, "compiled fallback on for-iter scheme");
    ASSERT_TRUE(r.cp.completed) << r.cp.note;
    EXPECT_FALSE(r.cp.compiled.accepted);
  }
}

}  // namespace
}  // namespace valpipe
