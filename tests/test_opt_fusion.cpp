// FIFO-fusion suite: the opt::fuseFifos pass must coalesce exactly the
// chains that are provably plain buffering (and nothing else), and a fused
// graph must be indistinguishable from its expanded Id-chain twin at the
// outputs — same values, same output times — on every scheduler, while the
// schedulers stay bit-identical to each other on the fused graph itself.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "dfg/stats.hpp"
#include "generators.hpp"
#include "machine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/rate_report.hpp"
#include "opt/fuse.hpp"
#include "testing.hpp"
#include "val/eval.hpp"

namespace valpipe {
namespace {

using core::CompileOptions;
using dfg::Graph;
using dfg::NodeId;
using dfg::Op;
using dfg::PortSrc;
using machine::MachineConfig;
using machine::MachineResult;
using machine::RunOptions;
using machine::SchedulerKind;
using testing::GenOptions;
using testing::ProgramGen;
using testing::randomArray;

int fifoNodeCount(const Graph& g) {
  int n = 0;
  for (NodeId id : g.ids())
    if (g.node(id).op == Op::Fifo) ++n;
  return n;
}

int soleFifoDepth(const Graph& g) {
  for (NodeId id : g.ids())
    if (g.node(id).op == Op::Fifo) return g.node(id).fifoDepth;
  return 0;
}

TEST(FuseFifos, CoalescesIdChainIntoOneComposite) {
  Graph g;
  const NodeId in = g.input("a", 4);
  PortSrc s = Graph::out(in);
  for (int i = 0; i < 3; ++i) s = Graph::out(g.identity(s));
  g.output("out", s);

  opt::FusionStats fs;
  const Graph fused = opt::fuseFifos(g, &fs);
  EXPECT_EQ(fs.chainsFused, 1u);
  EXPECT_EQ(fs.cellsAbsorbed, 2u);
  ASSERT_EQ(fused.size(), 3u);  // input, composite, output
  EXPECT_EQ(fifoNodeCount(fused), 1);
  EXPECT_EQ(soleFifoDepth(fused), 3);
}

TEST(FuseFifos, MergesBackToBackFifosAndInterveningIds) {
  Graph g;
  const NodeId in = g.input("a", 4);
  PortSrc s = g.fifo(Graph::out(in), 3);
  s = Graph::out(g.identity(s));
  s = g.fifo(s, 2);
  g.output("out", s);

  opt::FusionStats fs;
  const Graph fused = opt::fuseFifos(g, &fs);
  EXPECT_EQ(fs.chainsFused, 1u);
  EXPECT_EQ(fs.cellsAbsorbed, 2u);
  ASSERT_EQ(fused.size(), 3u);
  EXPECT_EQ(soleFifoDepth(fused), 6);  // 3 + 1 + 2 stages
}

TEST(FuseFifos, ChainBreaksAtMultiConsumerTap) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId a = g.identity(Graph::out(in));
  const NodeId b = g.identity(Graph::out(a));
  g.output("out", Graph::out(b));
  g.output("tap", Graph::out(a));  // `a` feeds two consumers

  opt::FusionStats fs;
  const Graph fused = opt::fuseFifos(g, &fs);
  EXPECT_EQ(fs.chainsFused, 0u);
  EXPECT_EQ(fused.size(), g.size());
}

TEST(FuseFifos, ChainBreaksAtLoadTimeToken) {
  Graph g;
  const NodeId in = g.input("a", 4);
  const NodeId a = g.identity(Graph::out(in));
  PortSrc s = Graph::out(a);
  s.initial = Value(0.0);  // token preloaded on the interior arc
  const NodeId b = g.identity(s);
  g.output("out", Graph::out(b));

  opt::FusionStats fs;
  const Graph fused = opt::fuseFifos(g, &fs);
  EXPECT_EQ(fs.chainsFused, 0u);
  EXPECT_EQ(fused.size(), g.size());
}

TEST(FuseFifos, Idempotent) {
  Graph g;
  const NodeId in = g.input("a", 4);
  PortSrc s = Graph::out(in);
  for (int i = 0; i < 4; ++i) s = Graph::out(g.identity(s));
  g.output("out", s);

  const Graph once = opt::fuseFifos(g);
  opt::FusionStats fs;
  const Graph twice = opt::fuseFifos(once, &fs);
  EXPECT_EQ(fs.chainsFused, 0u);
  EXPECT_EQ(twice.size(), once.size());
  EXPECT_EQ(soleFifoDepth(twice), soleFifoDepth(once));
}

TEST(FuseFifos, CompileLowersFusedByDefaultAndExpandedOnRequest) {
  val::Module mod = core::frontend(testing::example1Source(16));

  CompileOptions fusedOpts;
  fusedOpts.lower = true;  // fuseFifos defaults to true
  const auto progF = core::compile(mod, fusedOpts);

  CompileOptions expandedOpts;
  expandedOpts.lower = true;
  expandedOpts.fuseFifos = false;
  const auto progE = core::compile(mod, expandedOpts);

  EXPECT_TRUE(dfg::isLowered(progE.graph));
  EXPECT_GT(fifoNodeCount(progF.graph), 0);
  EXPECT_LT(progF.graph.size(), progE.graph.size());
  // Same stage budget either way: composite depths add up to the Id cells.
  const dfg::GraphStats sf = dfg::computeStats(progF.graph);
  EXPECT_EQ(sf.cells, progE.graph.size());
}

/// --no-fuse must reproduce the pre-fusion pipeline exactly: compiling with
/// fuseFifos off is the same graph (and the same run, counter for counter)
/// as expanding an unlowered compile by hand.
TEST(FuseFifos, NoFusePathIsByteCompatibleWithManualExpansion) {
  const int m = 16;
  val::Module mod = core::frontend(testing::example1Source(m));
  CompileOptions off;
  off.lower = true;
  off.fuseFifos = false;
  const auto progOff = core::compile(mod, off);
  const auto progRaw = core::compile(mod);  // lower = false
  const Graph manual = dfg::expandFifos(progRaw.graph);
  ASSERT_EQ(progOff.graph.size(), manual.size());

  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 41);
  in["C"] = randomArray({0, m + 1}, 42);
  RunOptions opts;
  opts.expectedOutputs[progRaw.outputName] = progRaw.expectedOutputPerWave();
  const MachineResult a =
      machine::simulate(progOff.graph, MachineConfig::unit(),
                        testing::inputsFor(progOff, in), opts);
  const MachineResult b = machine::simulate(manual, MachineConfig::unit(),
                                            testing::inputsFor(progRaw, in),
                                            opts);
  testing::expectIdentical(a, b, "--no-fuse vs manual expandFifos");
}

val::ArrayMap genInputs(const val::Module& mod, unsigned seed) {
  val::ArrayMap in;
  unsigned k = 0;
  for (const val::Param& p : mod.params)
    in[p.name] = randomArray(*p.type.range, seed + 100 * k++, 0.0, 1.0);
  return in;
}

class FusionEquivalence : public ::testing::TestWithParam<int> {};

/// On random pipe-structured programs, every scheduler must be bit-identical
/// on the fused graph, and the fused graph must match the expanded one at
/// the outputs — values and times — under both timing profiles.
TEST_P(FusionEquivalence, FusedBitIdenticalAcrossSchedulersAndMatchesExpanded) {
  const int p = GetParam();
  GenOptions gopts;
  gopts.blocks = 1 + p % 3;
  gopts.m = 8 + p % 5;
  ProgramGen gen(static_cast<unsigned>(p) * 353 + 17, gopts);
  const std::string src = gen.module();
  SCOPED_TRACE(src);

  val::Module mod = core::frontend(src);
  const val::ArrayMap in = genInputs(mod, static_cast<unsigned>(p));
  const auto prog = core::compile(mod);
  opt::FusionStats fs;
  const Graph fused = opt::fuseFifos(prog.graph, &fs);
  const Graph expanded = dfg::expandFifos(prog.graph);
  const run::StreamMap streams = testing::inputsFor(prog, in);

  for (const MachineConfig& cfg :
       {MachineConfig::unit(), MachineConfig::hardware()}) {
    RunOptions opts;
    opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();

    opts.scheduler = SchedulerKind::Reference;
    const MachineResult ref = machine::simulate(fused, cfg, streams, opts);
    ASSERT_TRUE(ref.completed) << ref.note;
    for (const SchedulerKind kind :
         {SchedulerKind::EventDriven, SchedulerKind::Synchronous,
          SchedulerKind::ParallelEventDriven}) {
      opts.scheduler = kind;
      opts.threads = kind == SchedulerKind::ParallelEventDriven ? 3 : 0;
      const MachineResult got = machine::simulate(fused, cfg, streams, opts);
      testing::expectIdentical(got, ref, "fused scheduler equivalence");
      opts.threads = 0;
    }

    opts.scheduler = SchedulerKind::Reference;
    const MachineResult exp = machine::simulate(expanded, cfg, streams, opts);
    ASSERT_TRUE(exp.completed) << exp.note;
    EXPECT_EQ(ref.outputs, exp.outputs) << "fused vs expanded outputs";
    EXPECT_EQ(ref.outputTimes, exp.outputTimes)
        << "fused vs expanded output times";
    EXPECT_EQ(ref.amFinal, exp.amFinal) << "fused vs expanded amFinal";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionEquivalence, ::testing::Range(0, 12));

TEST(FuseFifos, AuditorCertifiesFusedGraphAtRateHalf) {
  const int m = 128;
  val::Module mod = core::frontend(testing::example1Source(m));
  const auto prog = core::compile(mod);
  const Graph fused = opt::fuseFifos(prog.graph);
  val::ArrayMap in;
  in["B"] = randomArray({0, m + 1}, 51);
  in["C"] = randomArray({0, m + 1}, 52);

  obs::MetricsSink metrics;
  RunOptions opts;
  opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  opts.metrics = &metrics;
  const MachineResult res = machine::simulate(
      fused, MachineConfig::unit(), testing::inputsFor(prog, in), opts);
  ASSERT_TRUE(res.completed) << res.note;

  const obs::RateReport report = obs::auditMaxPipelining(fused, metrics);
  EXPECT_TRUE(report.fullyPipelined) << report.line();
}

}  // namespace
}  // namespace valpipe
