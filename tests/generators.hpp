// Random pipe-structured Val program generator for property tests: emits
// source text whose blocks are guaranteed primitive (and optionally simple),
// with all array accesses in range.
#pragma once

#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace valpipe::testing {

struct GenOptions {
  int blocks = 2;           ///< number of chained blocks
  int maxDepth = 3;         ///< expression depth
  bool allowForIter = true;
  bool linearOnly = true;   ///< for-iter bodies stay linear (simple class)
  bool allowDataCond = true;
  int m = 12;               ///< manifest extent
};

class ProgramGen {
 public:
  ProgramGen(unsigned seed, GenOptions opts) : rng_(seed), opts_(opts) {}

  /// Emits a complete module.  Arrays P0, P1 are parameters over [0, m+1];
  /// blocks V0.. are defined over [1, m] and consume parameters (offsets
  /// -1..1) and earlier blocks (offset 0).
  std::string module() {
    std::ostringstream os;
    os << "const m = " << opts_.m << "\n";
    os << "function gen(P0, P1: array[real] [0, m+1] returns array[real])\n";
    os << "  let\n";
    std::vector<std::string> defined;
    for (int b = 0; b < opts_.blocks; ++b) {
      const std::string name = "V" + std::to_string(b);
      const bool iter = opts_.allowForIter && b > 0 && chance(40);
      // A for-iter block spans [0, m] (initial element at 0); forall [1, m].
      os << "    " << name << " : array[real] [" << (iter ? 0 : 1)
         << ", m] := ";
      os << (iter ? forIterBlock(defined) : forallBlock(defined));
      os << "\n";
      defined.push_back(name);
    }
    os << "  in V" << (opts_.blocks - 1) << " endlet\nendfun\n";
    return os.str();
  }

 private:
  std::mt19937 rng_;
  GenOptions opts_;

  bool chance(int percent) { return static_cast<int>(rng_() % 100) < percent; }
  int pick(int n) { return static_cast<int>(rng_() % n); }

  /// A random stream leaf: parameter with offset, earlier block, or index.
  std::string leaf(const std::vector<std::string>& defined) {
    switch (pick(defined.empty() ? 3 : 4)) {
      case 0: {
        const int off = pick(3) - 1;  // -1..1, safe for [0, m+1] at i in [1, m]
        std::string idx = "i";
        if (off > 0) idx += "+" + std::to_string(off);
        if (off < 0) idx += std::to_string(off);
        return std::string("P") + std::to_string(pick(2)) + "[" + idx + "]";
      }
      case 1: return fmt(0.25 + 0.5 * pick(4));
      case 2: return "(0.1 * i)";  // index variable as a value
      default:
        return defined[pick(static_cast<int>(defined.size()))] + "[i]";
    }
  }

  static std::string fmt(double v) {
    std::ostringstream os;
    os << v;
    std::string s = os.str();
    if (s.find('.') == std::string::npos) s += ".";
    return s;
  }

  std::string expr(const std::vector<std::string>& defined, int depth) {
    if (depth <= 0 || chance(25)) return leaf(defined);
    switch (pick(6)) {
      case 0:
        return "(" + expr(defined, depth - 1) + " + " + expr(defined, depth - 1) + ")";
      case 1:
        return "(" + expr(defined, depth - 1) + " - " + expr(defined, depth - 1) + ")";
      case 2:
        return "(" + expr(defined, depth - 1) + " * " + fmt(0.5) + ")";
      case 3:
        return "(" + expr(defined, depth - 1) + " / 2.)";
      case 4:  // index-only condition (folds into a control sequence)
        return "(if i < " + std::to_string(1 + pick(opts_.m)) + " then " +
               expr(defined, depth - 1) + " else " + expr(defined, depth - 1) +
               " endif)";
      default:
        if (!opts_.allowDataCond)
          return "(" + expr(defined, depth - 1) + " * 0.5)";
        return "(if " + leaf(defined) + " > 0.5 then " +
               expr(defined, depth - 1) + " else " + expr(defined, depth - 1) +
               " endif)";
    }
  }

  std::string forallBlock(const std::vector<std::string>& defined) {
    std::ostringstream os;
    os << "forall i in [1, m]\n";
    const bool withDef = chance(60);
    if (withDef) os << "      Q : real := " << expr(defined, opts_.maxDepth) << ";\n";
    os << "      construct ";
    if (withDef)
      os << "(Q + " << expr(defined, opts_.maxDepth - 1) << ")";
    else
      os << expr(defined, opts_.maxDepth);
    os << " endall";
    return os.str();
  }

  std::string forIterBlock(const std::vector<std::string>& defined) {
    // x_i = alpha * T[i-1] + beta, coefficients damped to keep values tame.
    std::ostringstream os;
    const std::string alpha =
        "(0.3 * " + leaf(defined) + ")";
    std::string body;
    if (opts_.linearOnly || chance(70)) {
      body = "(" + alpha + " * T[i-1] + " + expr(defined, opts_.maxDepth - 1) + ")";
    } else {
      body = "(T[i-1] * T[i-1] * 0.1 + " + leaf(defined) + ")";
    }
    os << "for i : integer := 1; T : array[real] := [0: " << fmt(0.5)
       << "]\n      do let P : real := " << body
       << "\n         in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer"
       << "\n            else T endif endlet endfor";
    return os.str();
  }
};

}  // namespace valpipe::testing
