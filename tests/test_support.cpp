// Unit tests for the support library: diagnostics, invariant checks, text
// helpers.
#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace valpipe {
namespace {

TEST(Diagnostics, CollectsAndFormats) {
  Diagnostics d;
  EXPECT_FALSE(d.hasErrors());
  d.warning({1, 2}, "heads up");
  EXPECT_FALSE(d.hasErrors());
  d.error({3, 4}, "boom");
  EXPECT_TRUE(d.hasErrors());
  EXPECT_EQ(d.errorCount(), 1u);
  ASSERT_EQ(d.all().size(), 2u);
  EXPECT_NE(d.str().find("warning at 1:2: heads up"), std::string::npos);
  EXPECT_NE(d.str().find("error at 3:4: boom"), std::string::npos);
}

TEST(Diagnostics, InvalidLocOmitted) {
  Diagnostics d;
  d.error({}, "no position");
  EXPECT_EQ(d.str(), "error: no position");
}

TEST(SourceLoc, Validity) {
  EXPECT_FALSE(SourceLoc{}.valid());
  EXPECT_TRUE((SourceLoc{1, 1}).valid());
  EXPECT_EQ((SourceLoc{7, 3}).str(), "7:3");
  EXPECT_EQ(SourceLoc{}.str(), "<no-loc>");
}

TEST(Check, MacrosThrowInternalError) {
  EXPECT_NO_THROW(VALPIPE_CHECK(1 + 1 == 2));
  EXPECT_THROW(VALPIPE_CHECK(false), InternalError);
  try {
    VALPIPE_CHECK_MSG(false, "context here");
    FAIL();
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_support.cpp"),
              std::string::npos);
  }
}

TEST(Text, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Text, FmtDouble) {
  EXPECT_EQ(fmtDouble(0.5), "0.5");
  EXPECT_EQ(fmtDouble(1.0 / 3.0, 4), "0.3333");
  EXPECT_EQ(fmtDouble(12345.0, 3), "1.23e+04");
}

TEST(Text, TableLaysOutColumns) {
  TextTable t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  // Header underline present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Text, TableRejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), InternalError);
}

}  // namespace
}  // namespace valpipe
