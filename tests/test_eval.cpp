// Unit tests for the reference evaluator.
#include <gtest/gtest.h>

#include "val/eval.hpp"
#include "val/parser.hpp"
#include "val/typecheck.hpp"

#include "testing.hpp"

namespace valpipe::val {
namespace {

Module checked(const std::string& src) {
  Module m = parseModuleOrThrow(src);
  typecheckOrThrow(m);
  return m;
}

TEST(Eval, ArrayValBounds) {
  ArrayVal a{2, {Value(1.0), Value(2.0), Value(3.0)}};
  EXPECT_EQ(a.hi(), 4);
  EXPECT_DOUBLE_EQ(a.at(2).asReal(), 1.0);
  EXPECT_DOUBLE_EQ(a.at(4).asReal(), 3.0);
  EXPECT_THROW(a.at(1), ValueError);
  EXPECT_THROW(a.at(5), ValueError);
}

TEST(Eval, Example1Boundaries) {
  const int m = 4;
  Module mod = checked(valpipe::testing::example1Source(m));
  ArrayMap in;
  std::vector<Value> b, c;
  for (int i = 0; i <= m + 1; ++i) {
    b.push_back(Value(1.0));
    c.push_back(Value(static_cast<double>(i)));
  }
  in["B"] = {0, b};
  in["C"] = {0, c};
  const EvalResult res = evaluate(mod, in);
  ASSERT_EQ(res.result.elems.size(), static_cast<std::size_t>(m + 2));
  // Boundary: P = C[i] -> C[0]^2 = 0, C[5]^2 = 25.
  EXPECT_DOUBLE_EQ(res.result.elems[0].toReal(), 0.0);
  EXPECT_DOUBLE_EQ(res.result.elems[m + 1].toReal(), 25.0);
  // Interior i=2: P = 0.25*(1 + 2*2 + 3) = 2 -> 4.
  EXPECT_DOUBLE_EQ(res.result.elems[2].toReal(), 4.0);
}

TEST(Eval, Example2Recurrence) {
  const int m = 4;
  Module mod = checked(valpipe::testing::example2Source(m));
  ArrayMap in;
  in["A"] = {1, {Value(2.0), Value(2.0), Value(2.0), Value(2.0)}};
  in["B"] = {1, {Value(1.0), Value(1.0), Value(1.0), Value(1.0)}};
  const EvalResult res = evaluate(mod, in);
  // x0 = 0; x_i = 2 x_{i-1} + 1: 0, 1, 3, 7, 15.
  const double want[] = {0, 1, 3, 7, 15};
  ASSERT_EQ(res.result.elems.size(), 5u);
  for (int i = 0; i <= m; ++i)
    EXPECT_DOUBLE_EQ(res.result.elems[i].toReal(), want[i]) << i;
  EXPECT_EQ(res.result.lo, 0);
}

TEST(Eval, MultiBlockChaining) {
  Module mod = checked(R"(
const m = 3
function f(A: array[real] [0, m] returns array[real])
  let
    D : array[real] := forall i in [0, m] construct A[i] * 2. endall
    E : array[real] := forall i in [0, m] construct D[i] + 1. endall
  in E endlet
endfun
)");
  ArrayMap in;
  in["A"] = {0, {Value(1.0), Value(2.0), Value(3.0), Value(4.0)}};
  const EvalResult res = evaluate(mod, in);
  EXPECT_DOUBLE_EQ(res.blocks.at("D").elems[3].toReal(), 8.0);
  EXPECT_DOUBLE_EQ(res.result.elems[0].toReal(), 3.0);
  EXPECT_DOUBLE_EQ(res.result.elems[3].toReal(), 9.0);
}

TEST(Eval, MissingInputReported) {
  Module mod = checked(valpipe::testing::example1Source(4));
  ArrayMap in;
  in["B"] = valpipe::testing::randomArray({0, 5}, 1);
  EXPECT_THROW(evaluate(mod, in), CompileError);
}

TEST(Eval, WrongRangeInputReported) {
  Module mod = checked(valpipe::testing::example1Source(4));
  ArrayMap in;
  in["B"] = valpipe::testing::randomArray({0, 5}, 1);
  in["C"] = valpipe::testing::randomArray({0, 3}, 2);
  EXPECT_THROW(evaluate(mod, in), CompileError);
}

TEST(Eval, ExprLetShadowing) {
  Diagnostics diags;
  ExprPtr e = parseExpression(
      "let x : real := 1. in let x : real := x + 1. in x * 10. endlet endlet",
      diags);
  ASSERT_FALSE(diags.hasErrors());
  EXPECT_DOUBLE_EQ(evalExpr(e, {}, {}).toReal(), 20.0);
}

TEST(Eval, IntegerSemanticsPreserved) {
  Diagnostics diags;
  ExprPtr e = parseExpression("7 / 2", diags);
  const Value v = evalExpr(e, {}, {});
  EXPECT_TRUE(v.isInteger());
  EXPECT_EQ(v.asInteger(), 3);
}

}  // namespace
}  // namespace valpipe::val
