# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_value[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_typecheck[1]_include.cmake")
include("/root/repo/build/tests/test_classify[1]_include.cmake")
include("/root/repo/build/tests/test_linear[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_endtoend[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_lower[1]_include.cmake")
include("/root/repo/build/tests/test_paths[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_foriter_schemes[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_expand_ctl[1]_include.cmake")
include("/root/repo/build/tests/test_forall2d[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_pretty[1]_include.cmake")
include("/root/repo/build/tests/test_engines_agree[1]_include.cmake")
include("/root/repo/build/tests/test_balance_api[1]_include.cmake")
