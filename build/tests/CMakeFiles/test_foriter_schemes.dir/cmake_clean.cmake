file(REMOVE_RECURSE
  "CMakeFiles/test_foriter_schemes.dir/test_foriter_schemes.cpp.o"
  "CMakeFiles/test_foriter_schemes.dir/test_foriter_schemes.cpp.o.d"
  "test_foriter_schemes"
  "test_foriter_schemes.pdb"
  "test_foriter_schemes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_foriter_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
