# Empty compiler generated dependencies file for test_pretty.
# This may be replaced when dependencies are built.
