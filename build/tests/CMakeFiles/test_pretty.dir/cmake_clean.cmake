file(REMOVE_RECURSE
  "CMakeFiles/test_pretty.dir/test_pretty.cpp.o"
  "CMakeFiles/test_pretty.dir/test_pretty.cpp.o.d"
  "test_pretty"
  "test_pretty.pdb"
  "test_pretty[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pretty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
