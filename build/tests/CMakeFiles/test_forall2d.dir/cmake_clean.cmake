file(REMOVE_RECURSE
  "CMakeFiles/test_forall2d.dir/test_forall2d.cpp.o"
  "CMakeFiles/test_forall2d.dir/test_forall2d.cpp.o.d"
  "test_forall2d"
  "test_forall2d.pdb"
  "test_forall2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forall2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
