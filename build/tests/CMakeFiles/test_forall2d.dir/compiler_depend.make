# Empty compiler generated dependencies file for test_forall2d.
# This may be replaced when dependencies are built.
