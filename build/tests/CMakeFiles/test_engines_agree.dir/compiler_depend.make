# Empty compiler generated dependencies file for test_engines_agree.
# This may be replaced when dependencies are built.
