file(REMOVE_RECURSE
  "CMakeFiles/test_engines_agree.dir/test_engines_agree.cpp.o"
  "CMakeFiles/test_engines_agree.dir/test_engines_agree.cpp.o.d"
  "test_engines_agree"
  "test_engines_agree.pdb"
  "test_engines_agree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engines_agree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
