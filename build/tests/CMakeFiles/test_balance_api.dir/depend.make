# Empty dependencies file for test_balance_api.
# This may be replaced when dependencies are built.
