file(REMOVE_RECURSE
  "CMakeFiles/test_balance_api.dir/test_balance_api.cpp.o"
  "CMakeFiles/test_balance_api.dir/test_balance_api.cpp.o.d"
  "test_balance_api"
  "test_balance_api.pdb"
  "test_balance_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balance_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
