file(REMOVE_RECURSE
  "CMakeFiles/test_expand_ctl.dir/test_expand_ctl.cpp.o"
  "CMakeFiles/test_expand_ctl.dir/test_expand_ctl.cpp.o.d"
  "test_expand_ctl"
  "test_expand_ctl.pdb"
  "test_expand_ctl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expand_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
