# Empty dependencies file for recurrence_solver.
# This may be replaced when dependencies are built.
