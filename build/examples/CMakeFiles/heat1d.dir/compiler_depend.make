# Empty compiler generated dependencies file for heat1d.
# This may be replaced when dependencies are built.
