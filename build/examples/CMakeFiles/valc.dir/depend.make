# Empty dependencies file for valc.
# This may be replaced when dependencies are built.
