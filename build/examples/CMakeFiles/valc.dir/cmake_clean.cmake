file(REMOVE_RECURSE
  "CMakeFiles/valc.dir/valc.cpp.o"
  "CMakeFiles/valc.dir/valc.cpp.o.d"
  "valc"
  "valc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
