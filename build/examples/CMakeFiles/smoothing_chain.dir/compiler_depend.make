# Empty compiler generated dependencies file for smoothing_chain.
# This may be replaced when dependencies are built.
