file(REMOVE_RECURSE
  "CMakeFiles/smoothing_chain.dir/smoothing_chain.cpp.o"
  "CMakeFiles/smoothing_chain.dir/smoothing_chain.cpp.o.d"
  "smoothing_chain"
  "smoothing_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
