file(REMOVE_RECURSE
  "libvalpipe_support.a"
)
