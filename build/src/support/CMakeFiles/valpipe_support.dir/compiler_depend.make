# Empty compiler generated dependencies file for valpipe_support.
# This may be replaced when dependencies are built.
