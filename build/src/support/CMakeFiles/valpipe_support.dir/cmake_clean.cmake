file(REMOVE_RECURSE
  "CMakeFiles/valpipe_support.dir/diagnostics.cpp.o"
  "CMakeFiles/valpipe_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/valpipe_support.dir/text.cpp.o"
  "CMakeFiles/valpipe_support.dir/text.cpp.o.d"
  "CMakeFiles/valpipe_support.dir/value.cpp.o"
  "CMakeFiles/valpipe_support.dir/value.cpp.o.d"
  "libvalpipe_support.a"
  "libvalpipe_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valpipe_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
