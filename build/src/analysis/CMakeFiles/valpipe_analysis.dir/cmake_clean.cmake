file(REMOVE_RECURSE
  "CMakeFiles/valpipe_analysis.dir/paths.cpp.o"
  "CMakeFiles/valpipe_analysis.dir/paths.cpp.o.d"
  "libvalpipe_analysis.a"
  "libvalpipe_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valpipe_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
