file(REMOVE_RECURSE
  "libvalpipe_analysis.a"
)
