# Empty dependencies file for valpipe_analysis.
# This may be replaced when dependencies are built.
