
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/val/ast.cpp" "src/val/CMakeFiles/valpipe_val.dir/ast.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/ast.cpp.o.d"
  "/root/repo/src/val/classify.cpp" "src/val/CMakeFiles/valpipe_val.dir/classify.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/classify.cpp.o.d"
  "/root/repo/src/val/constfold.cpp" "src/val/CMakeFiles/valpipe_val.dir/constfold.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/constfold.cpp.o.d"
  "/root/repo/src/val/eval.cpp" "src/val/CMakeFiles/valpipe_val.dir/eval.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/eval.cpp.o.d"
  "/root/repo/src/val/lexer.cpp" "src/val/CMakeFiles/valpipe_val.dir/lexer.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/lexer.cpp.o.d"
  "/root/repo/src/val/linear.cpp" "src/val/CMakeFiles/valpipe_val.dir/linear.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/linear.cpp.o.d"
  "/root/repo/src/val/parser.cpp" "src/val/CMakeFiles/valpipe_val.dir/parser.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/parser.cpp.o.d"
  "/root/repo/src/val/pretty.cpp" "src/val/CMakeFiles/valpipe_val.dir/pretty.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/pretty.cpp.o.d"
  "/root/repo/src/val/typecheck.cpp" "src/val/CMakeFiles/valpipe_val.dir/typecheck.cpp.o" "gcc" "src/val/CMakeFiles/valpipe_val.dir/typecheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/valpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
