file(REMOVE_RECURSE
  "CMakeFiles/valpipe_val.dir/ast.cpp.o"
  "CMakeFiles/valpipe_val.dir/ast.cpp.o.d"
  "CMakeFiles/valpipe_val.dir/classify.cpp.o"
  "CMakeFiles/valpipe_val.dir/classify.cpp.o.d"
  "CMakeFiles/valpipe_val.dir/constfold.cpp.o"
  "CMakeFiles/valpipe_val.dir/constfold.cpp.o.d"
  "CMakeFiles/valpipe_val.dir/eval.cpp.o"
  "CMakeFiles/valpipe_val.dir/eval.cpp.o.d"
  "CMakeFiles/valpipe_val.dir/lexer.cpp.o"
  "CMakeFiles/valpipe_val.dir/lexer.cpp.o.d"
  "CMakeFiles/valpipe_val.dir/linear.cpp.o"
  "CMakeFiles/valpipe_val.dir/linear.cpp.o.d"
  "CMakeFiles/valpipe_val.dir/parser.cpp.o"
  "CMakeFiles/valpipe_val.dir/parser.cpp.o.d"
  "CMakeFiles/valpipe_val.dir/pretty.cpp.o"
  "CMakeFiles/valpipe_val.dir/pretty.cpp.o.d"
  "CMakeFiles/valpipe_val.dir/typecheck.cpp.o"
  "CMakeFiles/valpipe_val.dir/typecheck.cpp.o.d"
  "libvalpipe_val.a"
  "libvalpipe_val.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valpipe_val.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
