# Empty dependencies file for valpipe_val.
# This may be replaced when dependencies are built.
