file(REMOVE_RECURSE
  "libvalpipe_val.a"
)
