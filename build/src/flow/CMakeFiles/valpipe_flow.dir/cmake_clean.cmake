file(REMOVE_RECURSE
  "CMakeFiles/valpipe_flow.dir/difference_lp.cpp.o"
  "CMakeFiles/valpipe_flow.dir/difference_lp.cpp.o.d"
  "CMakeFiles/valpipe_flow.dir/mincostflow.cpp.o"
  "CMakeFiles/valpipe_flow.dir/mincostflow.cpp.o.d"
  "libvalpipe_flow.a"
  "libvalpipe_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valpipe_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
