file(REMOVE_RECURSE
  "libvalpipe_flow.a"
)
