# Empty compiler generated dependencies file for valpipe_flow.
# This may be replaced when dependencies are built.
