
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/dot.cpp" "src/dfg/CMakeFiles/valpipe_dfg.dir/dot.cpp.o" "gcc" "src/dfg/CMakeFiles/valpipe_dfg.dir/dot.cpp.o.d"
  "/root/repo/src/dfg/expand_ctl.cpp" "src/dfg/CMakeFiles/valpipe_dfg.dir/expand_ctl.cpp.o" "gcc" "src/dfg/CMakeFiles/valpipe_dfg.dir/expand_ctl.cpp.o.d"
  "/root/repo/src/dfg/graph.cpp" "src/dfg/CMakeFiles/valpipe_dfg.dir/graph.cpp.o" "gcc" "src/dfg/CMakeFiles/valpipe_dfg.dir/graph.cpp.o.d"
  "/root/repo/src/dfg/lower.cpp" "src/dfg/CMakeFiles/valpipe_dfg.dir/lower.cpp.o" "gcc" "src/dfg/CMakeFiles/valpipe_dfg.dir/lower.cpp.o.d"
  "/root/repo/src/dfg/opcode.cpp" "src/dfg/CMakeFiles/valpipe_dfg.dir/opcode.cpp.o" "gcc" "src/dfg/CMakeFiles/valpipe_dfg.dir/opcode.cpp.o.d"
  "/root/repo/src/dfg/prune.cpp" "src/dfg/CMakeFiles/valpipe_dfg.dir/prune.cpp.o" "gcc" "src/dfg/CMakeFiles/valpipe_dfg.dir/prune.cpp.o.d"
  "/root/repo/src/dfg/stats.cpp" "src/dfg/CMakeFiles/valpipe_dfg.dir/stats.cpp.o" "gcc" "src/dfg/CMakeFiles/valpipe_dfg.dir/stats.cpp.o.d"
  "/root/repo/src/dfg/validate.cpp" "src/dfg/CMakeFiles/valpipe_dfg.dir/validate.cpp.o" "gcc" "src/dfg/CMakeFiles/valpipe_dfg.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/valpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
