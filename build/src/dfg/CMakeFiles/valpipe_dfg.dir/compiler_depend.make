# Empty compiler generated dependencies file for valpipe_dfg.
# This may be replaced when dependencies are built.
