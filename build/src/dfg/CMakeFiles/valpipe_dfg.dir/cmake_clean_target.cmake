file(REMOVE_RECURSE
  "libvalpipe_dfg.a"
)
