file(REMOVE_RECURSE
  "CMakeFiles/valpipe_dfg.dir/dot.cpp.o"
  "CMakeFiles/valpipe_dfg.dir/dot.cpp.o.d"
  "CMakeFiles/valpipe_dfg.dir/expand_ctl.cpp.o"
  "CMakeFiles/valpipe_dfg.dir/expand_ctl.cpp.o.d"
  "CMakeFiles/valpipe_dfg.dir/graph.cpp.o"
  "CMakeFiles/valpipe_dfg.dir/graph.cpp.o.d"
  "CMakeFiles/valpipe_dfg.dir/lower.cpp.o"
  "CMakeFiles/valpipe_dfg.dir/lower.cpp.o.d"
  "CMakeFiles/valpipe_dfg.dir/opcode.cpp.o"
  "CMakeFiles/valpipe_dfg.dir/opcode.cpp.o.d"
  "CMakeFiles/valpipe_dfg.dir/prune.cpp.o"
  "CMakeFiles/valpipe_dfg.dir/prune.cpp.o.d"
  "CMakeFiles/valpipe_dfg.dir/stats.cpp.o"
  "CMakeFiles/valpipe_dfg.dir/stats.cpp.o.d"
  "CMakeFiles/valpipe_dfg.dir/validate.cpp.o"
  "CMakeFiles/valpipe_dfg.dir/validate.cpp.o.d"
  "libvalpipe_dfg.a"
  "libvalpipe_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valpipe_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
