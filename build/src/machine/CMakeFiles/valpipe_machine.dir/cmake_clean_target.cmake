file(REMOVE_RECURSE
  "libvalpipe_machine.a"
)
