# Empty compiler generated dependencies file for valpipe_machine.
# This may be replaced when dependencies are built.
