file(REMOVE_RECURSE
  "CMakeFiles/valpipe_machine.dir/engine.cpp.o"
  "CMakeFiles/valpipe_machine.dir/engine.cpp.o.d"
  "CMakeFiles/valpipe_machine.dir/placement.cpp.o"
  "CMakeFiles/valpipe_machine.dir/placement.cpp.o.d"
  "libvalpipe_machine.a"
  "libvalpipe_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valpipe_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
