# Empty dependencies file for valpipe_sim.
# This may be replaced when dependencies are built.
