file(REMOVE_RECURSE
  "CMakeFiles/valpipe_sim.dir/interpreter.cpp.o"
  "CMakeFiles/valpipe_sim.dir/interpreter.cpp.o.d"
  "libvalpipe_sim.a"
  "libvalpipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valpipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
