file(REMOVE_RECURSE
  "libvalpipe_sim.a"
)
