
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balance.cpp" "src/core/CMakeFiles/valpipe_core.dir/balance.cpp.o" "gcc" "src/core/CMakeFiles/valpipe_core.dir/balance.cpp.o.d"
  "/root/repo/src/core/block_compiler.cpp" "src/core/CMakeFiles/valpipe_core.dir/block_compiler.cpp.o" "gcc" "src/core/CMakeFiles/valpipe_core.dir/block_compiler.cpp.o.d"
  "/root/repo/src/core/forall.cpp" "src/core/CMakeFiles/valpipe_core.dir/forall.cpp.o" "gcc" "src/core/CMakeFiles/valpipe_core.dir/forall.cpp.o.d"
  "/root/repo/src/core/foriter.cpp" "src/core/CMakeFiles/valpipe_core.dir/foriter.cpp.o" "gcc" "src/core/CMakeFiles/valpipe_core.dir/foriter.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/valpipe_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/valpipe_core.dir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/val/CMakeFiles/valpipe_val.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/valpipe_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/valpipe_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/valpipe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/valpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
