# Empty compiler generated dependencies file for valpipe_core.
# This may be replaced when dependencies are built.
