file(REMOVE_RECURSE
  "CMakeFiles/valpipe_core.dir/balance.cpp.o"
  "CMakeFiles/valpipe_core.dir/balance.cpp.o.d"
  "CMakeFiles/valpipe_core.dir/block_compiler.cpp.o"
  "CMakeFiles/valpipe_core.dir/block_compiler.cpp.o.d"
  "CMakeFiles/valpipe_core.dir/forall.cpp.o"
  "CMakeFiles/valpipe_core.dir/forall.cpp.o.d"
  "CMakeFiles/valpipe_core.dir/foriter.cpp.o"
  "CMakeFiles/valpipe_core.dir/foriter.cpp.o.d"
  "CMakeFiles/valpipe_core.dir/program.cpp.o"
  "CMakeFiles/valpipe_core.dir/program.cpp.o.d"
  "libvalpipe_core.a"
  "libvalpipe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valpipe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
