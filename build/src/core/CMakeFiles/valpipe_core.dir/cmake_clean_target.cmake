file(REMOVE_RECURSE
  "libvalpipe_core.a"
)
