# Empty dependencies file for bench_machine_placement.
# This may be replaced when dependencies are built.
