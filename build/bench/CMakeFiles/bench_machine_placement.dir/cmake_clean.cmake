file(REMOVE_RECURSE
  "CMakeFiles/bench_machine_placement.dir/bench_machine_placement.cpp.o"
  "CMakeFiles/bench_machine_placement.dir/bench_machine_placement.cpp.o.d"
  "bench_machine_placement"
  "bench_machine_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
