file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_program.dir/bench_fig3_program.cpp.o"
  "CMakeFiles/bench_fig3_program.dir/bench_fig3_program.cpp.o.d"
  "bench_fig3_program"
  "bench_fig3_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
