file(REMOVE_RECURSE
  "CMakeFiles/bench_machine_profile.dir/bench_machine_profile.cpp.o"
  "CMakeFiles/bench_machine_profile.dir/bench_machine_profile.cpp.o.d"
  "bench_machine_profile"
  "bench_machine_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
