# Empty compiler generated dependencies file for bench_machine_profile.
# This may be replaced when dependencies are built.
