# Empty dependencies file for bench_ext_2d.
# This may be replaced when dependencies are built.
