
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_claim_maxrate.cpp" "bench/CMakeFiles/bench_claim_maxrate.dir/bench_claim_maxrate.cpp.o" "gcc" "bench/CMakeFiles/bench_claim_maxrate.dir/bench_claim_maxrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/valpipe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/valpipe_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/valpipe_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/val/CMakeFiles/valpipe_val.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/valpipe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/valpipe_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/valpipe_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/valpipe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
