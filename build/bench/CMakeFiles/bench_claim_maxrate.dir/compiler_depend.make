# Empty compiler generated dependencies file for bench_claim_maxrate.
# This may be replaced when dependencies are built.
