file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_maxrate.dir/bench_claim_maxrate.cpp.o"
  "CMakeFiles/bench_claim_maxrate.dir/bench_claim_maxrate.cpp.o.d"
  "bench_claim_maxrate"
  "bench_claim_maxrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_maxrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
