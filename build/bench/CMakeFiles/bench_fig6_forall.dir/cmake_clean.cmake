file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_forall.dir/bench_fig6_forall.cpp.o"
  "CMakeFiles/bench_fig6_forall.dir/bench_fig6_forall.cpp.o.d"
  "bench_fig6_forall"
  "bench_fig6_forall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_forall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
