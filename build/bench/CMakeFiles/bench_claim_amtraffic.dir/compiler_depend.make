# Empty compiler generated dependencies file for bench_claim_amtraffic.
# This may be replaced when dependencies are built.
