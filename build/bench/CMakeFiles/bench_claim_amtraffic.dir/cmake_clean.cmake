file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_amtraffic.dir/bench_claim_amtraffic.cpp.o"
  "CMakeFiles/bench_claim_amtraffic.dir/bench_claim_amtraffic.cpp.o.d"
  "bench_claim_amtraffic"
  "bench_claim_amtraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_amtraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
