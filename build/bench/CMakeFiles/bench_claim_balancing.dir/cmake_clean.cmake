file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_balancing.dir/bench_claim_balancing.cpp.o"
  "CMakeFiles/bench_claim_balancing.dir/bench_claim_balancing.cpp.o.d"
  "bench_claim_balancing"
  "bench_claim_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
