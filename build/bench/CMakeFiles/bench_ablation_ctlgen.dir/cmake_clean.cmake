file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ctlgen.dir/bench_ablation_ctlgen.cpp.o"
  "CMakeFiles/bench_ablation_ctlgen.dir/bench_ablation_ctlgen.cpp.o.d"
  "bench_ablation_ctlgen"
  "bench_ablation_ctlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
