# Empty dependencies file for bench_ablation_ctlgen.
# This may be replaced when dependencies are built.
