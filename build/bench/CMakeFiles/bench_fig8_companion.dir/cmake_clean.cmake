file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_companion.dir/bench_fig8_companion.cpp.o"
  "CMakeFiles/bench_fig8_companion.dir/bench_fig8_companion.cpp.o.d"
  "bench_fig8_companion"
  "bench_fig8_companion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_companion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
