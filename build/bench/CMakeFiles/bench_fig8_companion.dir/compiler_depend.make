# Empty compiler generated dependencies file for bench_fig8_companion.
# This may be replaced when dependencies are built.
