# Empty dependencies file for bench_fig7_todd.
# This may be replaced when dependencies are built.
