file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_todd.dir/bench_fig7_todd.cpp.o"
  "CMakeFiles/bench_fig7_todd.dir/bench_fig7_todd.cpp.o.d"
  "bench_fig7_todd"
  "bench_fig7_todd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_todd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
