# Empty compiler generated dependencies file for bench_claim_longfifo.
# This may be replaced when dependencies are built.
