file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_longfifo.dir/bench_claim_longfifo.cpp.o"
  "CMakeFiles/bench_claim_longfifo.dir/bench_claim_longfifo.cpp.o.d"
  "bench_claim_longfifo"
  "bench_claim_longfifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_longfifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
