file(REMOVE_RECURSE
  "CMakeFiles/bench_claim_companion_cost.dir/bench_claim_companion_cost.cpp.o"
  "CMakeFiles/bench_claim_companion_cost.dir/bench_claim_companion_cost.cpp.o.d"
  "bench_claim_companion_cost"
  "bench_claim_companion_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim_companion_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
