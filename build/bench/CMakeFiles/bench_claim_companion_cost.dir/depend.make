# Empty dependencies file for bench_claim_companion_cost.
# This may be replaced when dependencies are built.
