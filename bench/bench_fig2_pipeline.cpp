// F2 — Figure 2: the three-stage pipeline for
//     let y : real := a*b in (y+2.)*(y-3.) endlet
// Fully pipelined: every cell fires once per two instruction times, so the
// output rate approaches 0.5 results per instruction time regardless of
// stream length.
#include "bench_common.hpp"

#include "dfg/graph.hpp"

namespace {

using namespace valpipe;

/// Builds Figure 2's machine code verbatim: cell 1 MULT feeding cells 2
/// (ADD) and 3 (SUB), which feed cell 4 (MULT).
dfg::Graph figure2Graph(std::int64_t n) {
  dfg::Graph g;
  const auto a = g.input("a", n);
  const auto b = g.input("b", n);
  const auto y = g.binary(dfg::Op::Mul, dfg::Graph::out(a), dfg::Graph::out(b),
                          "cell1");
  const auto p = g.binary(dfg::Op::Add, dfg::Graph::out(y),
                          dfg::Graph::lit(Value(2.0)), "cell2");
  const auto q = g.binary(dfg::Op::Sub, dfg::Graph::out(y),
                          dfg::Graph::lit(Value(3.0)), "cell3");
  const auto r = g.binary(dfg::Op::Mul, dfg::Graph::out(p), dfg::Graph::out(q),
                          "cell4");
  g.output("x", dfg::Graph::out(r));
  return g;
}

double rateFor(std::int64_t n) {
  dfg::Graph g = figure2Graph(n);
  machine::RunOptions opts;
  opts.expectedOutputs["x"] = n;
  const auto res = machine::simulate(
      g, machine::MachineConfig::unit(),
      {{"a", bench::randomStream(n, 1)}, {"b", bench::randomStream(n, 2)}},
      opts);
  return res.steadyRate("x");
}

void BM_Figure2Simulation(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  dfg::Graph g = figure2Graph(n);
  const auto a = bench::randomStream(n, 1);
  const auto b = bench::randomStream(n, 2);
  for (auto _ : state) {
    machine::RunOptions opts;
    opts.expectedOutputs["x"] = n;
    auto res = machine::simulate(g, machine::MachineConfig::unit(),
                                 {{"a", a}, {"b", b}}, opts);
    benchmark::DoNotOptimize(res.cycles);
  }
  state.counters["sim_rate"] = rateFor(n);
}
BENCHMARK(BM_Figure2Simulation)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner("F2 (Figure 2)",
                "3-stage pipeline for (a*b+2)*(a*b-3)",
                "rate -> 0.5 results/instruction time, independent of n");

  bench::BenchJson json("fig2");
  json.meta("workload", "3-stage pipeline (a*b+2)*(a*b-3)");
  TextTable table({"n", "cells", "measured rate", "paper", "verdict"});
  for (std::int64_t n : {64, 256, 1024, 4096}) {
    const double rate = rateFor(n);
    table.addRow({std::to_string(n), "7", fmtDouble(rate, 4), "0.5",
                  rate > 0.48 ? "fully pipelined" : "DEGRADED"});
    bench::JsonObj row;
    row.add("n", n).add("rate", rate);
    json.addRow(row);
  }
  std::printf("%s\n", table.str().c_str());

  // §3 audit: re-run with the metrics sink and check every cell's steady
  // firing period against the paper's bound of two instruction times.
  {
    const std::int64_t n = 1024;
    dfg::Graph g = figure2Graph(n);
    machine::RunOptions opts;
    opts.expectedOutputs["x"] = n;
    const obs::RateReport audit = bench::auditRun(
        g, {{"a", bench::randomStream(n, 1)}, {"b", bench::randomStream(n, 2)}},
        opts);
    bench::printAudit(audit);
    json.meta("audit", audit.line());
  }
  json.write();
  return bench::runTimings(argc, argv);
}
