// Shared harness for the experiment benches.
//
// Every bench binary reproduces one figure or quantitative claim of the
// paper: it prints a paper-vs-measured table (the experiment proper), then
// hands over to google-benchmark for wall-clock timings of the simulator /
// compiler machinery involved.  Binaries run with no arguments.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "dfg/stats.hpp"
#include "machine/engine.hpp"
#include "support/text.hpp"
#include "val/eval.hpp"

namespace valpipe::bench {

/// The paper's Example 2 source (first-order linear recurrence).
inline std::string example2Source(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function ex2(A, B: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do let P : real := A[i]*T[i-1] + B[i]
     in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
        else T endif
     endlet
  endfor
endfun
)";
}

/// Deterministic pseudo-random input stream.
inline std::vector<Value> randomStream(std::int64_t n, unsigned seed,
                                       double lo = -1.0, double hi = 1.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out.push_back(Value(dist(rng)));
  return out;
}

/// Input streams for a compiled program, sized from its declared types.
inline machine::StreamMap randomInputs(const core::CompiledProgram& prog,
                                       unsigned seed, double lo = -1.0,
                                       double hi = 1.0) {
  machine::StreamMap in;
  unsigned k = 0;
  for (const auto& [name, range] : prog.inputs)
    in[name] =
        randomStream(prog.inputLengthPerWave(name), seed + 100 * k++, lo, hi);
  return in;
}

struct RateResult {
  double steadyRate = 0.0;
  std::int64_t cycles = 0;
  bool completed = false;
  machine::PacketCounters packets;
};

/// Runs a compiled program on the unit-profile machine and reports the
/// steady output rate.
inline RateResult measureRate(const core::CompiledProgram& prog,
                              const machine::StreamMap& inputs, int waves = 1,
                              machine::MachineConfig cfg =
                                  machine::MachineConfig::unit()) {
  dfg::Graph lowered = dfg::isLowered(prog.graph)
                           ? prog.graph
                           : dfg::expandFifos(prog.graph);
  machine::RunOptions opts;
  opts.waves = waves;
  opts.expectedOutputs[prog.outputName] =
      prog.expectedOutputPerWave() * waves;
  const machine::MachineResult res = machine::simulate(lowered, cfg, inputs, opts);
  return {res.steadyRate(prog.outputName), res.cycles, res.completed,
          res.packets};
}

/// Prints the experiment header in a consistent format.
inline void banner(const char* id, const char* what, const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("paper expectation: %s\n", expectation);
  std::printf("==============================================================\n");
}

/// Runs google-benchmark with the binary's own argv (so `--benchmark_*`
/// flags still work) after the experiment tables have been printed.
inline int runTimings(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::printf("\n-- wall-clock timings of the machinery involved --\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace valpipe::bench
