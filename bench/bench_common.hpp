// Shared harness for the experiment benches.
//
// Every bench binary reproduces one figure or quantitative claim of the
// paper: it prints a paper-vs-measured table (the experiment proper), then
// hands over to google-benchmark for wall-clock timings of the simulator /
// compiler machinery involved.  Binaries run with no arguments.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <random>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "dfg/lower.hpp"
#include "dfg/stats.hpp"
#include "machine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/rate_report.hpp"
#include "support/text.hpp"
#include "val/eval.hpp"

namespace valpipe::bench {

/// The paper's Example 2 source (first-order linear recurrence).
inline std::string example2Source(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function ex2(A, B: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0]
  do let P : real := A[i]*T[i-1] + B[i]
     in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
        else T endif
     endlet
  endfor
endfun
)";
}

/// Deterministic pseudo-random input stream.
inline std::vector<Value> randomStream(std::int64_t n, unsigned seed,
                                       double lo = -1.0, double hi = 1.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out.push_back(Value(dist(rng)));
  return out;
}

/// Input streams for a compiled program, sized from its declared types.
inline run::StreamMap randomInputs(const core::CompiledProgram& prog,
                                       unsigned seed, double lo = -1.0,
                                       double hi = 1.0) {
  run::StreamMap in;
  unsigned k = 0;
  for (const auto& [name, range] : prog.inputs)
    in[name] =
        randomStream(prog.inputLengthPerWave(name), seed + 100 * k++, lo, hi);
  return in;
}

struct RateResult {
  double steadyRate = 0.0;
  std::int64_t cycles = 0;
  bool completed = false;
  machine::PacketCounters packets;
};

/// Runs a compiled program on the unit-profile machine and reports the
/// steady output rate.
inline RateResult measureRate(const core::CompiledProgram& prog,
                              const run::StreamMap& inputs, int waves = 1,
                              machine::MachineConfig cfg =
                                  machine::MachineConfig::unit()) {
  dfg::Graph lowered = dfg::isLowered(prog.graph)
                           ? prog.graph
                           : dfg::expandFifos(prog.graph);
  machine::RunOptions opts;
  opts.waves = waves;
  opts.expectedOutputs[prog.outputName] =
      prog.expectedOutputPerWave() * waves;
  const machine::MachineResult res = machine::simulate(lowered, cfg, inputs, opts);
  return {res.steadyRate(prog.outputName), res.cycles, res.completed,
          res.packets};
}

/// Scheduler kind as the string recorded in reports.
inline const char* schedulerName(machine::SchedulerKind k) {
  switch (k) {
    case machine::SchedulerKind::Reference: return "Reference";
    case machine::SchedulerKind::Synchronous: return "Synchronous";
    case machine::SchedulerKind::EventDriven: return "EventDriven";
    case machine::SchedulerKind::ParallelEventDriven:
      return "ParallelEventDriven";
    case machine::SchedulerKind::Compiled: return "Compiled";
  }
  return "?";
}

/// Compiler + flags this binary was built with, as one human-readable
/// string ("g++ 13.2.0, optimized, NDEBUG").  Stamped into every report so
/// wall-clock numbers carry their build provenance.
inline std::string buildOptions() {
  std::string s;
#if defined(__clang__)
  s = "clang++ " __clang_version__;
#elif defined(__GNUC__)
  s = "g++ " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
      "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
  s = "unknown-compiler";
#endif
#if defined(__OPTIMIZE__)
  s += ", optimized";
#else
  s += ", unoptimized";
#endif
#if defined(NDEBUG)
  s += ", NDEBUG";
#else
  s += ", assertions";
#endif
  s += ", C++" + std::to_string((__cplusplus / 100) % 100);
  return s;
}

/// One JSON object built key by key (row of a BenchJson report).
struct JsonObj {
  std::ostringstream body;
  bool first = true;

  JsonObj& raw(const std::string& k, const std::string& v) {
    body << (first ? "" : ", ") << "\"" << k << "\": " << v;
    first = false;
    return *this;
  }
  JsonObj& add(const std::string& k, const std::string& v) {
    return raw(k, "\"" + v + "\"");
  }
  JsonObj& add(const std::string& k, const char* v) {
    return add(k, std::string(v));
  }
  JsonObj& add(const std::string& k, double v) {
    std::ostringstream ss;
    ss << v;
    return raw(k, ss.str());
  }
  JsonObj& add(const std::string& k, std::int64_t v) {
    return raw(k, std::to_string(v));
  }
  JsonObj& add(const std::string& k, std::uint64_t v) {
    return raw(k, std::to_string(v));
  }
  JsonObj& add(const std::string& k, int v) {
    return add(k, static_cast<std::int64_t>(v));
  }
  JsonObj& add(const std::string& k, bool v) {
    return raw(k, v ? "true" : "false");
  }
  std::string str() const { return "{" + body.str() + "}"; }
};

/// Machine-readable bench report: BENCH_<name>.json with the bench name,
/// the host's hardware_concurrency, the scheduler kind, and the compile
/// options stamped at top level (so numbers from a 1-core container or an
/// unoptimized build read honestly), plus any extra top-level fields and an
/// array of measurement rows.
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench,
                     machine::SchedulerKind scheduler =
                         machine::SchedulerKind::EventDriven)
      : bench_(bench) {
    top_.add("bench", bench);
    top_.add("hardware_concurrency",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()));
    top_.add("scheduler", schedulerName(scheduler));
    top_.add("build", buildOptions());
  }

  /// Extra top-level field (workload description, audit line, ...).
  template <class V>
  void meta(const std::string& key, const V& v) {
    top_.add(key, v);
  }

  void addRow(const JsonObj& row) { rows_.push_back(row.str()); }

  /// Writes BENCH_<name>.json into the working directory.
  void write() const {
    const std::string path = "BENCH_" + bench_ + ".json";
    std::ofstream os(path);
    os << "{" << top_.body.str() << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      os << "    " << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    os << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string bench_;
  JsonObj top_;
  std::vector<std::string> rows_;
};

/// Re-runs a lowered graph with a MetricsSink attached and audits the §3
/// max-pipelining claim cell by cell.  `periodBound` defaults to the paper's
/// 2 instruction times; pass the derived bound for deliberately
/// cycle-limited graphs (e.g. the Fig. 7 Todd scheme at rate k/S).
inline obs::RateReport auditRun(const dfg::Graph& lowered,
                                const run::StreamMap& inputs,
                                const machine::RunOptions& base,
                                std::int64_t periodBound = 2,
                                machine::MachineConfig cfg =
                                    machine::MachineConfig::unit()) {
  obs::MetricsSink metrics;
  machine::RunOptions opts = base;
  opts.metrics = &metrics;
  machine::simulate(lowered, cfg, inputs, opts);
  return obs::auditMaxPipelining(lowered, metrics, periodBound);
}

/// auditRun for a compiled program: lowers it and expects one wave of its
/// output stream.
inline obs::RateReport auditProgram(const core::CompiledProgram& prog,
                                    const run::StreamMap& inputs,
                                    std::int64_t periodBound = 2,
                                    int waves = 1) {
  const dfg::Graph lowered = dfg::isLowered(prog.graph)
                                 ? prog.graph
                                 : dfg::expandFifos(prog.graph);
  machine::RunOptions opts;
  opts.waves = waves;
  opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave() * waves;
  return auditRun(lowered, inputs, opts, periodBound);
}

/// Prints the audit verdict line plus its structural diagnosis (printf
/// flavor of RateReport::print, for the bench tables).
inline void printAudit(const obs::RateReport& report) {
  std::ostringstream ss;
  report.print(ss);
  std::printf("%s", ss.str().c_str());
}

/// Prints the experiment header in a consistent format.
inline void banner(const char* id, const char* what, const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("paper expectation: %s\n", expectation);
  std::printf("==============================================================\n");
}

/// Runs google-benchmark with the binary's own argv (so `--benchmark_*`
/// flags still work) after the experiment tables have been printed.
inline int runTimings(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::printf("\n-- wall-clock timings of the machinery involved --\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace valpipe::bench
