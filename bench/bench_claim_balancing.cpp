// C3 — §8 claims on balancing flow dependency graphs:
//   (1) acyclic graphs admit a polynomial-time balancing algorithm
//       (longest-path relaxation);
//   (2) buffering can often be reduced below the longest-path solution;
//   (3) optimum (minimum-buffer) balancing is the LP dual of a min-cost
//       flow problem, also polynomial.
// We compare total inserted FIFO slots and wall time of both modes on
// growing synthetic pipe-structured programs.
#include "bench_common.hpp"

#include <chrono>
#include <sstream>

#include "core/balance.hpp"

namespace {

using namespace valpipe;

/// A wide pipe-structured program: `lanes` parallel smoothing/recurrence
/// chains that are finally summed pairwise — lots of reconvergence, so
/// balancing has real work to do.
std::string wideSource(int lanes, std::int64_t m) {
  std::ostringstream os;
  os << "const m = " << m << "\n";
  os << "function wide(S: array[real] [0, m+1] returns array[real])\n  let\n";
  for (int l = 0; l < lanes; ++l) {
    // Alternate shallow and deep lanes (skew) and boundary-guarded lanes
    // (control sequences + merges, which longest-path over-buffers).
    os << "    L" << l << " : array[real] := forall i in [1, m]\n";
    os << "      construct ";
    switch (l % 3) {
      case 0:
        os << "S[i-1] + S[i+1]";
        break;
      case 1:
        os << "0.25 * (S[i-1] + 2.*S[i] + S[i+1]) * (0.5 + 0.1 * " << l << ".)";
        break;
      default:
        os << "if (i = 1) | (i = m) then S[i] "
           << "else 0.5 * (S[i-1] * S[i+1]) + S[i] endif";
        break;
    }
    os << " endall\n";
  }
  os << "    Z0 : array[real] := forall i in [1, m] construct ";
  for (int l = 0; l < lanes; ++l) {
    if (l) os << " + ";
    os << "L" << l << "[i]";
  }
  os << " endall\n";
  os << "  in Z0 endlet\nendfun\n";
  return os.str();
}

dfg::Graph unbalancedGraph(int lanes, std::int64_t m) {
  core::CompileOptions opts;
  opts.balanceMode = core::BalanceMode::None;
  return core::compileSource(wideSource(lanes, m), opts).graph;
}

void BM_BalanceLongestPath(benchmark::State& state) {
  const dfg::Graph g = unbalancedGraph(static_cast<int>(state.range(0)), 64);
  for (auto _ : state) {
    dfg::Graph copy = g;
    auto out = core::balanceGraph(copy, core::BalanceMode::LongestPath);
    benchmark::DoNotOptimize(out.buffersInserted);
  }
  state.counters["cells"] = static_cast<double>(g.size());
}
BENCHMARK(BM_BalanceLongestPath)->Arg(4)->Arg(16)->Arg(64);

void BM_BalanceOptimal(benchmark::State& state) {
  const dfg::Graph g = unbalancedGraph(static_cast<int>(state.range(0)), 64);
  for (auto _ : state) {
    dfg::Graph copy = g;
    auto out = core::balanceGraph(copy, core::BalanceMode::Optimal);
    benchmark::DoNotOptimize(out.buffersInserted);
  }
  state.counters["cells"] = static_cast<double>(g.size());
}
BENCHMARK(BM_BalanceOptimal)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "C3 (Section 8, conclusions 1-3)",
      "buffer cost and runtime: longest-path vs optimum (min-cost-flow dual)",
      "both polynomial; optimum inserts no more (typically fewer) FIFO "
      "slots than longest-path balancing");

  TextTable table({"graph", "nodes", "arcs", "slots longest", "slots optimal",
                   "saving", "t longest (ms)", "t optimal (ms)"});
  auto addRow = [&](const std::string& name, const dfg::Graph& g) {
    const auto stats = dfg::computeStats(g);
    auto timeOf = [&](core::BalanceMode mode, std::size_t& slots) {
      dfg::Graph copy = g;
      const auto start = std::chrono::steady_clock::now();
      const auto out = core::balanceGraph(copy, mode);
      const auto stop = std::chrono::steady_clock::now();
      slots = out.buffersInserted;
      return std::chrono::duration<double, std::milli>(stop - start).count();
    };
    std::size_t lpSlots = 0, optSlots = 0;
    const double tLp = timeOf(core::BalanceMode::LongestPath, lpSlots);
    const double tOpt = timeOf(core::BalanceMode::Optimal, optSlots);
    std::ostringstream saving;
    saving << (lpSlots == 0 ? 0.0
                            : 100.0 * (1.0 - static_cast<double>(optSlots) /
                                                 static_cast<double>(lpSlots)))
           << "%";
    table.addRow({name, std::to_string(stats.nodes),
                  std::to_string(stats.arcs), std::to_string(lpSlots),
                  std::to_string(optSlots), saving.str(), fmtDouble(tLp, 3),
                  fmtDouble(tOpt, 3)});
  };

  {
    core::CompileOptions raw;
    raw.balanceMode = core::BalanceMode::None;
    const std::string ex1 = R"(const m = 64
function ex1(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
    addRow("example 1", core::compileSource(ex1, raw).graph);
    addRow("example 2", core::compileSource(bench::example2Source(64), raw).graph);
  }
  for (int lanes : {2, 4, 8, 16, 32, 64})
    addRow("wide-" + std::to_string(lanes), unbalancedGraph(lanes, 64));
  std::printf("%s\n", table.str().c_str());

  std::printf("-- both balanced graphs still run at the full rate --\n");
  TextTable rates({"mode", "rate"});
  for (auto mode : {core::BalanceMode::LongestPath, core::BalanceMode::Optimal}) {
    core::CompileOptions opts;
    opts.balanceMode = mode;
    const auto prog = core::compileSource(wideSource(8, 256), opts);
    const auto in = bench::randomInputs(prog, 31);
    rates.addRow({mode == core::BalanceMode::Optimal ? "optimal" : "longest",
                  fmtDouble(bench::measureRate(prog, in).steadyRate, 4)});
  }
  std::printf("%s\n", rates.str().c_str());
  return bench::runTimings(argc, argv);
}
