// C1 — §3 claims about the machine's pipelining behaviour:
//   (a) an instruction's minimum repetition period is two instruction times
//       (rate cap 0.5), independent of pipeline depth;
//   (b) the computation rate of a pipeline is set by its slowest stage;
//   (c) unbalanced reconvergent paths break full pipelining until identity
//       buffering equalizes them.
#include "bench_common.hpp"

#include "dfg/graph.hpp"

namespace {

using namespace valpipe;
using dfg::Graph;
using dfg::Op;

double chainRate(int depth, int slowStageLatency = 1) {
  const std::int64_t n = 2048;
  Graph g;
  dfg::PortSrc cur = Graph::out(g.input("a", n));
  for (int d = 0; d < depth; ++d) cur = Graph::out(g.identity(cur));
  // A "slow stage": one multiply whose FU latency we vary.
  cur = Graph::out(g.binary(Op::Mul, cur, Graph::lit(Value(1.0))));
  g.output("x", cur);

  machine::MachineConfig cfg;
  cfg.execLatency[static_cast<int>(dfg::FuClass::Fpu)] = slowStageLatency;
  machine::RunOptions opts;
  opts.expectedOutputs["x"] = n;
  const auto res =
      machine::simulate(g, cfg, {{"a", bench::randomStream(n, 1)}}, opts);
  return res.steadyRate("x");
}

double diamondRate(int imbalance, int buffer) {
  const std::int64_t n = 2048;
  Graph g;
  const auto in = g.input("a", n);
  dfg::PortSrc shortPath = Graph::out(g.identity(Graph::out(in)));
  if (buffer > 0) shortPath = g.fifo(shortPath, buffer);
  dfg::PortSrc longPath = Graph::out(in);
  for (int d = 0; d < 1 + imbalance; ++d)
    longPath = Graph::out(g.identity(longPath));
  g.output("x", Graph::out(g.binary(Op::Add, shortPath, longPath)));
  machine::RunOptions opts;
  opts.expectedOutputs["x"] = n;
  const auto res =
      machine::simulate(dfg::expandFifos(g), machine::MachineConfig::unit(),
                        {{"a", bench::randomStream(n, 2)}}, opts);
  return res.steadyRate("x");
}

void BM_DeepChain(benchmark::State& state) {
  for (auto _ : state) {
    const double r = chainRate(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DeepChain)->Arg(8)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner("C1 (Section 3)",
                "maximum repetition rate and the slowest-stage law",
                "rate = 0.5 at any depth; rate = 1/(L+1) when one stage "
                "needs L instruction times; unbalanced paths degrade until "
                "buffered");

  std::printf("-- (a) rate vs pipeline depth (all unit stages) --\n");
  TextTable depth({"stages", "rate", "paper"});
  for (int d : {1, 8, 64, 256, 1024})
    depth.addRow({std::to_string(d), fmtDouble(chainRate(d), 4), "0.5"});
  std::printf("%s\n", depth.str().c_str());

  std::printf("-- (b) rate vs slowest-stage latency L --\n");
  TextTable slow({"L", "rate", "paper 1/(L+1)"});
  for (int L : {1, 2, 3, 4, 7})
    slow.addRow({std::to_string(L), fmtDouble(chainRate(16, L), 4),
                 fmtDouble(1.0 / (L + 1), 4)});
  std::printf("%s\n", slow.str().c_str());

  std::printf("-- (c) unbalanced reconvergence, then identity buffering --\n");
  TextTable diam({"extra stages", "buffer", "rate", "paper"});
  for (int k : {1, 2, 4}) {
    diam.addRow({std::to_string(k), "0", fmtDouble(diamondRate(k, 0), 4),
                 "<0.5"});
    diam.addRow({std::to_string(k), std::to_string(k),
                 fmtDouble(diamondRate(k, k), 4), "0.5"});
  }
  std::printf("%s\n", diam.str().c_str());
  return bench::runTimings(argc, argv);
}
