// A3 (architecture) — §2: "the primary packet traffic in the data flow
// machine is the flow of result packets between processing elements through
// the distribution network."  We place compiled code onto PE arrays with two
// strategies and measure the distribution-network share of result packets
// and the rate cost of network hops.
#include "bench_common.hpp"

#include "machine/placement.hpp"

namespace {

using namespace valpipe;

std::string chainSource(std::int64_t n) {
  return "const n = " + std::to_string(n) + "\n" + R"(
function chain(S: array[real] [0, n+1] returns array[real])
  let
    F : array[real] := forall i in [0, n+1]
        P : real := if (i = 0) | (i = n+1) then S[i]
                    else 0.25 * (S[i-1] + 2.*S[i] + S[i+1]) endif;
      construct P endall;
    G : array[real] := forall i in [1, n]
      construct F[i] * F[i] + 0.5 endall
  in G endlet
endfun
)";
}

void BM_PlacedSimulation(benchmark::State& state) {
  const auto prog = core::compileSource(chainSource(512));
  dfg::Graph lowered = dfg::expandFifos(prog.graph);
  const auto in = bench::randomInputs(prog, 101);
  machine::MachineConfig cfg;
  cfg.interPeDelay = 1;
  machine::RunOptions opts;
  opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  opts.placement = machine::assignCells(
      lowered, static_cast<int>(state.range(0)),
      machine::PlacementStrategy::RoundRobin);
  for (auto _ : state) {
    auto res = machine::simulate(lowered, cfg, in, opts);
    benchmark::DoNotOptimize(res.cycles);
  }
}
BENCHMARK(BM_PlacedSimulation)->Arg(1)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "A3 (architecture placement)",
      "distribution-network traffic and rate vs cell placement",
      "scattered (round-robin) placement routes nearly every result packet "
      "through the network; contiguous placement keeps most arcs inside one "
      "PE.  With multi-cycle network hops, locality converts directly into "
      "pipeline rate");

  const auto prog = core::compileSource(chainSource(512));
  dfg::Graph lowered = dfg::expandFifos(prog.graph);
  const auto in = bench::randomInputs(prog, 101);
  std::printf("program: %zu cells\n\n", lowered.size());

  TextTable table({"PEs", "strategy", "network share", "rate (hop=0)",
                   "rate (hop=2)"});
  for (int pes : {1, 2, 4, 8, 16}) {
    for (auto strategy : {machine::PlacementStrategy::Contiguous,
                          machine::PlacementStrategy::RoundRobin}) {
      const machine::Placement place =
          machine::assignCells(lowered, pes, strategy);
      auto rateWith = [&](int hop) {
        machine::MachineConfig cfg;
        cfg.interPeDelay = hop;
        machine::RunOptions opts;
        opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
        opts.placement = place;
        const auto res = machine::simulate(lowered, cfg, in, opts);
        return std::pair(res.steadyRate(prog.outputName),
                         res.packets.networkShare());
      };
      const auto [rate0, share] = rateWith(0);
      const auto [rate2, share2] = rateWith(2);
      (void)share2;
      table.addRow({std::to_string(pes), machine::toString(strategy),
                    fmtDouble(share, 3), fmtDouble(rate0, 4),
                    fmtDouble(rate2, 4)});
      if (pes == 1) break;  // strategies identical on one PE
    }
  }
  std::printf("%s\n", table.str().c_str());
  return bench::runTimings(argc, argv);
}
