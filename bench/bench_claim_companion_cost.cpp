// C5 — §7 trade-off discussion: "the overhead of backing up of companion
// functions will grow considerably when p is big".  We quantify the
// companion pipeline's instruction-cell and work overhead as the dependence
// distance k grows, against the rate it buys.
#include "bench_common.hpp"

namespace {

using namespace valpipe;

struct Row {
  std::string scheme;
  std::size_t cells;
  std::uint64_t firings;   ///< total work (operation packets)
  double rate;
  std::int64_t cycles;
};

Row measure(std::int64_t m, int k) {
  core::CompileOptions opts;
  if (k <= 1) {
    opts.forIterScheme = core::ForIterScheme::Todd;
  } else {
    opts.forIterScheme = core::ForIterScheme::Companion;
    opts.companionSkip = k;
  }
  const auto prog = core::compileSource(bench::example2Source(m), opts);
  const auto in = bench::randomInputs(prog, 51, -0.9, 0.9);

  dfg::Graph lowered = dfg::expandFifos(prog.graph);
  machine::RunOptions ropts;
  ropts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  const auto res = machine::simulate(lowered, machine::MachineConfig::unit(),
                                     in, ropts);
  return {k <= 1 ? std::string("todd") : "companion k=" + std::to_string(k),
          lowered.size(), res.totalFirings, res.steadyRate(prog.outputName),
          res.cycles};
}

void BM_CompanionCompile(benchmark::State& state) {
  core::CompileOptions opts;
  opts.forIterScheme = core::ForIterScheme::Companion;
  opts.companionSkip = static_cast<int>(state.range(0));
  const std::string src = bench::example2Source(1024);
  for (auto _ : state) {
    auto prog = core::compileSource(src, opts);
    benchmark::DoNotOptimize(prog.graph.size());
  }
}
BENCHMARK(BM_CompanionCompile)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "C5 (Section 7 trade-off)",
      "companion-pipeline overhead vs dependence distance k (Example 2)",
      "cells and executed work grow ~linearly in k (log2 k G-levels, each "
      "with gates and 3 ops, plus prologue); the rate gain saturates at "
      "1/2, so moderate k is the sweet spot");

  const std::int64_t m = 1024;
  const Row base = measure(m, 1);
  TextTable table({"scheme", "cells", "x cells", "firings", "x work", "rate",
                   "speedup", "cycles"});
  auto emit = [&](const Row& r) {
    table.addRow({r.scheme, std::to_string(r.cells),
                  fmtDouble(static_cast<double>(r.cells) /
                                static_cast<double>(base.cells), 3),
                  std::to_string(r.firings),
                  fmtDouble(static_cast<double>(r.firings) /
                                static_cast<double>(base.firings), 3),
                  fmtDouble(r.rate, 4),
                  fmtDouble(static_cast<double>(base.cycles) /
                                static_cast<double>(r.cycles), 3),
                  std::to_string(r.cycles)});
  };
  emit(base);
  for (int k : {2, 4, 8, 16}) emit(measure(m, k));
  std::printf("%s\n", table.str().c_str());
  return bench::runTimings(argc, argv);
}
