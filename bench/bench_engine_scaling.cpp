// ES — engine scaling: throughput of the three schedulers (reference
// stepper, flattened synchronous rescan, event-driven ready queue) on the
// F2 / F6 / F8 workload graphs as the array extent m grows.
//
// The reference stepper costs O(cells) re-derived enabling work per
// instruction time; the flattened engines share an ExecutableGraph lowered
// once, and the event-driven scheduler only examines cells with a wake
// event.  Throughput is reported as cells x cycles per second of wall time
// (simulated cell-cycles per second), the natural unit for a rescan-style
// simulator.  All schedulers must produce identical outputs.
#include "bench_common.hpp"

#include <chrono>

#include "dfg/graph.hpp"

namespace {

using namespace valpipe;
using machine::SchedulerKind;

/// Figure 2's three-stage pipeline, verbatim.
dfg::Graph figure2Graph(std::int64_t n) {
  dfg::Graph g;
  const auto a = g.input("a", n);
  const auto b = g.input("b", n);
  const auto y = g.binary(dfg::Op::Mul, dfg::Graph::out(a), dfg::Graph::out(b),
                          "cell1");
  const auto p = g.binary(dfg::Op::Add, dfg::Graph::out(y),
                          dfg::Graph::lit(Value(2.0)), "cell2");
  const auto q = g.binary(dfg::Op::Sub, dfg::Graph::out(y),
                          dfg::Graph::lit(Value(3.0)), "cell3");
  const auto r = g.binary(dfg::Op::Mul, dfg::Graph::out(p), dfg::Graph::out(q),
                          "cell4");
  g.output("x", dfg::Graph::out(r));
  return g;
}

std::string forallSource(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function ex1(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
}

/// One prepared workload: a lowered graph plus its inputs and run options.
struct Workload {
  std::string name;
  std::int64_t m = 0;
  dfg::Graph lowered;
  run::StreamMap inputs;
  machine::RunOptions opts;
};

Workload fromProgram(std::string name, std::int64_t m,
                     const core::CompiledProgram& prog,
                     run::StreamMap in) {
  Workload w;
  w.name = std::move(name);
  w.m = m;
  w.lowered = dfg::isLowered(prog.graph) ? prog.graph
                                         : dfg::expandFifos(prog.graph);
  w.inputs = std::move(in);
  w.opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  return w;
}

Workload f2Workload(std::int64_t m) {
  Workload w;
  w.name = "F2 pipeline";
  w.m = m;
  w.lowered = figure2Graph(m);
  w.inputs = {{"a", bench::randomStream(m, 1)},
              {"b", bench::randomStream(m, 2)}};
  w.opts.expectedOutputs["x"] = m;
  return w;
}

Workload f6Workload(std::int64_t m) {
  const auto prog = core::compileSource(forallSource(m));
  return fromProgram("F6 forall", m, prog, bench::randomInputs(prog, 5));
}

Workload f8Workload(std::int64_t m) {
  core::CompileOptions comp;
  comp.forIterScheme = core::ForIterScheme::Companion;
  comp.companionSkip = 4;
  const auto prog = core::compileSource(bench::example2Source(m), comp);
  return fromProgram("F8 companion", m, prog,
                     bench::randomInputs(prog, 3, -0.9, 0.9));
}

struct Timed {
  machine::MachineResult res;
  double seconds = 0.0;
};

Timed runTimed(const Workload& w, SchedulerKind kind, int reps = 3) {
  machine::RunOptions opts = w.opts;
  opts.scheduler = kind;
  Timed best;
  best.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    machine::MachineResult res = machine::simulate(
        w.lowered, machine::MachineConfig::unit(), w.inputs, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best.seconds) best = {std::move(res), s};
  }
  return best;
}

double cellCyclesPerSec(const Workload& w, const Timed& t) {
  return static_cast<double>(w.lowered.size()) *
         static_cast<double>(t.res.cycles) / t.seconds;
}

void BM_Scheduler(benchmark::State& state, SchedulerKind kind) {
  const Workload w = f6Workload(state.range(0));
  for (auto _ : state) {
    auto t = runTimed(w, kind);
    benchmark::DoNotOptimize(t.res.cycles);
  }
}
void BM_Reference(benchmark::State& s) { BM_Scheduler(s, SchedulerKind::Reference); }
void BM_Synchronous(benchmark::State& s) { BM_Scheduler(s, SchedulerKind::Synchronous); }
void BM_EventDriven(benchmark::State& s) { BM_Scheduler(s, SchedulerKind::EventDriven); }
BENCHMARK(BM_Reference)->Arg(256)->Arg(1024);
BENCHMARK(BM_Synchronous)->Arg(256)->Arg(1024);
BENCHMARK(BM_EventDriven)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "ES (engine scaling)",
      "reference stepper vs flattened synchronous vs event-driven scheduler",
      "identical results; event-driven >= 2x cell-cycles/sec on the m=4096 "
      "F6 forall graph");

  bench::BenchJson json("engine_scaling");
  json.meta("workload", "F2 / F6 / F8 graphs, schedulers side by side");
  TextTable table({"workload", "m", "cells", "cycles", "ref Mcc/s",
                   "sync Mcc/s", "ed Mcc/s", "ed/ref", "same"});
  double f6At4096Speedup = 0.0;
  for (std::int64_t m : {std::int64_t(64), std::int64_t(256),
                         std::int64_t(1024), std::int64_t(4096)}) {
    for (const Workload& w : {f2Workload(m), f6Workload(m), f8Workload(m)}) {
      const Timed ref = runTimed(w, SchedulerKind::Reference);
      const Timed sync = runTimed(w, SchedulerKind::Synchronous);
      const Timed ed = runTimed(w, SchedulerKind::EventDriven);
      const bool same = ref.res.outputs == ed.res.outputs &&
                        ref.res.outputs == sync.res.outputs &&
                        ref.res.cycles == ed.res.cycles &&
                        ref.res.cycles == sync.res.cycles &&
                        ref.res.totalFirings == ed.res.totalFirings &&
                        ref.res.totalFirings == sync.res.totalFirings;
      const double speedup =
          cellCyclesPerSec(w, ed) / cellCyclesPerSec(w, ref);
      if (w.name == "F6 forall" && m == 4096) f6At4096Speedup = speedup;
      table.addRow({w.name, std::to_string(m),
                    std::to_string(w.lowered.size()),
                    std::to_string(ref.res.cycles),
                    fmtDouble(cellCyclesPerSec(w, ref) / 1e6, 3),
                    fmtDouble(cellCyclesPerSec(w, sync) / 1e6, 3),
                    fmtDouble(cellCyclesPerSec(w, ed) / 1e6, 3),
                    fmtDouble(speedup, 2), same ? "yes" : "NO"});
      bench::JsonObj row;
      row.add("workload", w.name)
          .add("m", m)
          .add("cells", static_cast<std::int64_t>(w.lowered.size()))
          .add("ref_mccs", cellCyclesPerSec(w, ref) / 1e6)
          .add("sync_mccs", cellCyclesPerSec(w, sync) / 1e6)
          .add("ed_mccs", cellCyclesPerSec(w, ed) / 1e6)
          .add("ed_over_ref", speedup)
          .add("identical", same);
      json.addRow(row);
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("acceptance: event-driven vs reference on F6 forall, m=4096: "
              "%.2fx (target >= 2x) %s\n\n",
              f6At4096Speedup, f6At4096Speedup >= 2.0 ? "PASS" : "FAIL");
  json.meta("f6_m4096_ed_over_ref", f6At4096Speedup);
  json.write();
  return bench::runTimings(argc, argv);
}
