// E1 (extension, §9) — two-dimensional arrays: "the extension of this work
// to array values of multiple dimension is straightforward."  A 2-D forall
// five-point stencil streams row-major through the pipeline scheme; full
// pipelining carries over, with the selection-gate skew now spanning whole
// rows (the N/S neighbours are W packets apart, Fig. 4's FIFOs scale with
// the row width).
#include "bench_common.hpp"

namespace {

using namespace valpipe;

std::string stencilSource(std::int64_t n) {
  return "const n = " + std::to_string(n) + "\n" + R"(
function stencil(U: array[real] [0, n+1] [0, n+1] returns array[real])
  forall i in [0, n+1], j in [0, n+1]
    D : real := if (i = 0) | (i = n+1) | (j = 0) | (j = n+1) then 0.
                else U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1]
                     - 4. * U[i, j] endif;
  construct U[i, j] + 0.2 * D
  endall
endfun
)";
}

void BM_Stencil2d(benchmark::State& state) {
  const auto prog = core::compileSource(stencilSource(state.range(0)));
  const auto in = bench::randomInputs(prog, 91, 0.0, 1.0);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_Stencil2d)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "E1 (Section 9 extension)",
      "2-D forall five-point stencil, row-major streaming",
      "full pipelining carries over to multiple dimensions: rate -> 0.5; "
      "the row-skew FIFO budget grows with the grid width");

  TextTable table({"grid", "packets/wave", "cells", "FIFO slots", "rate",
                   "paper"});
  for (std::int64_t n : {8, 16, 32, 64}) {
    const auto prog = core::compileSource(stencilSource(n));
    const auto in = bench::randomInputs(prog, 91, 0.0, 1.0);
    table.addRow({std::to_string(n) + "x" + std::to_string(n),
                  std::to_string(prog.expectedOutputPerWave()),
                  std::to_string(prog.graph.loweredCellCount()),
                  std::to_string(prog.balance.buffersInserted),
                  fmtDouble(bench::measureRate(prog, in).steadyRate, 4),
                  "0.5"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "(The vertical-neighbour gates deliver packets a full row early/late,\n"
      " so the inserted FIFO budget grows ~2x with the grid width — the 2-D\n"
      " incarnation of Figure 4's skew buffers.)\n\n");
  return bench::runTimings(argc, argv);
}
