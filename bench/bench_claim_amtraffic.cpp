// C2 — §2 claim: when arrays stream between blocks as result packets (the
// paper's choice), the array memories only hold long-lived data, and "one
// eighth or less of the operation packets would be sent to the array
// memories".  We measure the AM share of operation packets on a multi-block
// program under three layouts:
//   stream        — pure streaming (no AM at all),
//   stream+spill  — streaming plus the result array stored for the next
//                   time step (the paper's intended usage),
//   memory        — every inter-block array through the AM (conventional).
#include "bench_common.hpp"

namespace {

using namespace valpipe;

std::string chainSource(std::int64_t n) {
  return "const n = " + std::to_string(n) + "\n" + R"(
function chain(S: array[real] [0, n+1] returns array[real])
  let
    F : array[real] := forall i in [0, n+1]
        P : real := if (i = 0) | (i = n+1) then S[i]
                    else 0.25 * (S[i-1] + 2.*S[i] + S[i+1]) endif;
      construct P endall;
    G : array[real] := forall i in [1, n]
      construct if F[i] > 0.5 then 0.5 + 0.5 * (F[i] - 0.5) else F[i] endif
      endall;
    H : array[real] := for i : integer := 1;
        T : array[real] := [0: 0]
      do let P : real := 0.9 * T[i-1] + 0.1 * G[i]
         in if i < n + 1 then iter T := T[i: P]; i := i + 1 enditer
            else T endif
         endlet
      endfor;
    R : array[real] := forall i in [1, n] construct 100. * H[i] endall
  in R endlet
endfun
)";
}

struct Row {
  std::string layout;
  std::uint64_t ops = 0;
  std::uint64_t amOps = 0;
  double share = 0.0;
  double rate = 0.0;
};

Row measure(const std::string& layout, std::int64_t n,
            core::ArrayRouting routing, bool spillResult) {
  core::CompileOptions opts;
  opts.routing = routing;
  auto prog = core::compileSource(chainSource(n), opts);
  if (spillResult) {
    // The produced field is also written to array memory for the next time
    // step ("data that must be held for a long time interval", §2).
    const dfg::NodeId out = prog.graph.findOutput(prog.outputName);
    prog.graph.amStore("next_step", prog.graph.node(out).inputs[0]);
  }
  const auto in = bench::randomInputs(prog, 23, 0.0, 1.0);
  const auto res = bench::measureRate(prog, in, 2);
  Row row;
  row.layout = layout;
  row.ops = res.packets.opPacketsTotal();
  row.amOps =
      res.packets.opPacketsByClass[static_cast<int>(dfg::FuClass::Am)];
  row.share = res.packets.amShare();
  row.rate = res.steadyRate;
  return row;
}

void BM_StreamLayout(benchmark::State& state) {
  const auto prog = core::compileSource(chainSource(state.range(0)));
  const auto in = bench::randomInputs(prog, 23, 0.0, 1.0);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_StreamLayout)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner("C2 (Section 2)",
                "array-memory share of operation packets, by array layout",
                "streaming layouts stay at or below 1/8 (0.125); routing "
                "every array through the memories far exceeds it");

  TextTable table({"n", "layout", "op packets", "AM packets", "AM share",
                   "paper bound", "rate"});
  for (std::int64_t n : {256, 1024}) {
    for (const auto& row :
         {measure("stream", n, core::ArrayRouting::Stream, false),
          measure("stream+spill", n, core::ArrayRouting::Stream, true),
          measure("memory", n, core::ArrayRouting::Memory, false)}) {
      table.addRow({std::to_string(n), row.layout, std::to_string(row.ops),
                    std::to_string(row.amOps), fmtDouble(row.share, 4),
                    row.layout == "memory" ? ">> 0.125" : "<= 0.125",
                    fmtDouble(row.rate, 3)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  return bench::runTimings(argc, argv);
}
