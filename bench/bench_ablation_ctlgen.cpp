// A1 (ablation) — control-sequence generators: abstract sources vs Todd's
// machine-level counter loops (§5/Fig. 6 presuppose "straightforward
// arrangements of data flow instructions" for the control values; this
// bench quantifies what that arrangement costs and confirms it never
// throttles the pipeline).
#include "bench_common.hpp"

#include <sstream>

namespace {

using namespace valpipe;

std::string ex1Source(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function ex1(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
}

struct Row {
  std::size_t cells;
  std::size_t generators;  ///< abstract sources remaining
  double rate;
};

Row measure(const std::string& src, bool lowerCtl,
            core::ForIterScheme scheme = core::ForIterScheme::Auto) {
  core::CompileOptions opts;
  opts.lowerControl = lowerCtl;
  opts.forIterScheme = scheme;
  const auto prog = core::compileSource(src, opts);
  const auto in = bench::randomInputs(prog, 71, -0.9, 0.9);
  const auto stats = dfg::computeStats(prog.graph);
  std::size_t gens = 0;
  if (auto it = stats.byOp.find(dfg::Op::BoolSeq); it != stats.byOp.end())
    gens += it->second;
  if (auto it = stats.byOp.find(dfg::Op::IndexSeq); it != stats.byOp.end())
    gens += it->second;
  return {stats.cells, gens, bench::measureRate(prog, in).steadyRate};
}

void BM_LoweredExample1(benchmark::State& state) {
  core::CompileOptions opts;
  opts.lowerControl = true;
  const auto prog = core::compileSource(ex1Source(state.range(0)), opts);
  const auto in = bench::randomInputs(prog, 71);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_LoweredExample1)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "A1 (ablation, §5/Todd [15])",
      "abstract control-sequence sources vs lowered counter loops",
      "counter loops cost a constant number of extra cells per distinct "
      "sequence and still run at the machine maximum (the 2-cell increment "
      "loop sustains rate 1/2)");

  TextTable table({"program", "generators", "cells abstract", "cells lowered",
                   "overhead", "rate abstract", "rate lowered"});
  struct Case {
    const char* name;
    std::string src;
    core::ForIterScheme scheme;
  };
  for (const Case& c :
       {Case{"example1 m=256", ex1Source(256), core::ForIterScheme::Auto},
        Case{"example2/todd m=256", bench::example2Source(256),
             core::ForIterScheme::Todd},
        Case{"example2/companion m=256", bench::example2Source(256),
             core::ForIterScheme::Companion}}) {
    const Row abstract = measure(c.src, false, c.scheme);
    const Row lowered = measure(c.src, true, c.scheme);
    std::ostringstream overhead;
    overhead << "+" << (lowered.cells - abstract.cells) << " cells";
    table.addRow({c.name, std::to_string(abstract.generators),
                  std::to_string(abstract.cells),
                  std::to_string(lowered.cells), overhead.str(),
                  fmtDouble(abstract.rate, 4), fmtDouble(lowered.rate, 4)});
  }
  std::printf("%s\n", table.str().c_str());
  return bench::runTimings(argc, argv);
}
