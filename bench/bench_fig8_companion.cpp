// F8 — Figure 8 / Theorem 3: the companion-pipeline mapping of Example 2.
// The compiler rewrites x_i = F(a_i, x_{i-1}) as x_i = F(c_i, x_{i-k}) where
// c_i comes from an acyclic tree of companion-function applications
// G(a,b) = (a1*b1, a1*b2 + a2).  The feedback cycle stretches to 2k stages
// carrying k packets — an even stage count — restoring the 1/2 maximum.
#include "bench_common.hpp"

namespace {

using namespace valpipe;

void BM_CompanionSimulation(benchmark::State& state) {
  core::CompileOptions comp;
  comp.forIterScheme = core::ForIterScheme::Companion;
  comp.companionSkip = static_cast<int>(state.range(1));
  const auto prog =
      core::compileSource(bench::example2Source(state.range(0)), comp);
  const auto in = bench::randomInputs(prog, 3, -0.9, 0.9);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_CompanionSimulation)
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({4096, 2});

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "F8 (Figure 8 / Theorem 3)",
      "companion-pipeline mapping of Example 2 vs Todd's scheme",
      "cycle padded to an even 2k stages with k packets in flight => rate "
      "1/2; ~1.5x faster than Todd's 1/3");

  core::CompileOptions todd;
  todd.forIterScheme = core::ForIterScheme::Todd;

  bench::BenchJson json("fig8");
  json.meta("workload", "companion-pipeline mapping of Example 2");
  TextTable table({"m", "scheme", "cells", "cycle S", "packets k", "rate",
                   "total cycles", "paper"});
  for (std::int64_t m : {256, 1024, 4096}) {
    const std::string src = bench::example2Source(m);
    const auto base = core::compileSource(src, todd);
    const auto baseIn = bench::randomInputs(base, 3, -0.9, 0.9);
    const auto baseRes = bench::measureRate(base, baseIn);
    table.addRow({std::to_string(m), "todd",
                  std::to_string(base.graph.loweredCellCount()),
                  std::to_string(base.blocks[0].cycleStages), "1",
                  fmtDouble(baseRes.steadyRate, 4),
                  std::to_string(baseRes.cycles), "1/3"});
    for (int k : {2, 4, 8}) {
      core::CompileOptions comp;
      comp.forIterScheme = core::ForIterScheme::Companion;
      comp.companionSkip = k;
      const auto prog = core::compileSource(src, comp);
      const auto in = bench::randomInputs(prog, 3, -0.9, 0.9);
      const auto res = bench::measureRate(prog, in);
      table.addRow({std::to_string(m), "companion k=" + std::to_string(k),
                    std::to_string(prog.graph.loweredCellCount()),
                    std::to_string(prog.blocks[0].cycleStages),
                    std::to_string(prog.blocks[0].cycleTokens),
                    fmtDouble(res.steadyRate, 4), std::to_string(res.cycles),
                    "1/2"});
      bench::JsonObj row;
      row.add("m", m).add("k", k).add("rate", res.steadyRate);
      json.addRow(row);
    }
  }
  std::printf("%s\n", table.str().c_str());

  // §3 audit (Theorem 3): the companion mapping restores the period-2 bound
  // even though the graph still contains a feedback cycle.
  {
    core::CompileOptions comp;
    comp.forIterScheme = core::ForIterScheme::Companion;
    comp.companionSkip = 4;
    const auto prog =
        core::compileSource(bench::example2Source(1024), comp);
    const obs::RateReport audit = bench::auditProgram(
        prog, bench::randomInputs(prog, 3, -0.9, 0.9));
    bench::printAudit(audit);
    json.meta("audit", audit.line());
  }
  json.write();
  return bench::runTimings(argc, argv);
}
