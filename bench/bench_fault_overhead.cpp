// FO — fault/guard overhead: cost of the resilience layer on the hot path.
//
// The injector and the guards hang off RunOptions by pointer; when both are
// null every hook is a single never-taken branch, so the engines must run at
// the same cell-cycles-per-second as before the layer existed.  This bench
// measures the F6 forall workload on the event-driven scheduler in four
// modes — off, guards on, timing faults on, both on — and accepts when the
// off mode keeps the engine-scaling criterion (event-driven >= 2x the
// reference stepper) and the guarded mode stays within 1.5x of off.
#include "bench_common.hpp"

#include <chrono>

#include "fault/plan.hpp"
#include "guard/guard.hpp"

namespace {

using namespace valpipe;
using machine::SchedulerKind;

std::string forallSource(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function ex1(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
}

struct Workload {
  std::int64_t m = 0;
  dfg::Graph lowered;
  run::StreamMap inputs;
  machine::RunOptions opts;
};

Workload f6Workload(std::int64_t m) {
  const auto prog = core::compileSource(forallSource(m));
  Workload w;
  w.m = m;
  w.lowered = dfg::isLowered(prog.graph) ? prog.graph
                                         : dfg::expandFifos(prog.graph);
  w.inputs = bench::randomInputs(prog, 5);
  w.opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  return w;
}

struct Timed {
  machine::MachineResult res;
  double seconds = 0.0;
};

Timed runTimed(const Workload& w, const machine::RunOptions& opts,
               int reps = 3) {
  Timed best;
  best.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    machine::MachineResult res = machine::simulate(
        w.lowered, machine::MachineConfig::unit(), w.inputs, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best.seconds) best = {std::move(res), s};
  }
  return best;
}

double mccs(const Workload& w, const Timed& t) {
  return static_cast<double>(w.lowered.size()) *
         static_cast<double>(t.res.cycles) / t.seconds / 1e6;
}

fault::Plan timingPlan() {
  fault::Plan plan;
  plan.seed = 17;
  plan.latencyJitterMax = 2;
  plan.deliveryDelayMax = 1;
  return plan;
}

void BM_OffVsGuarded(benchmark::State& state, bool guarded) {
  const Workload w = f6Workload(state.range(0));
  const guard::Config gcfg{};
  machine::RunOptions opts = w.opts;
  opts.scheduler = SchedulerKind::EventDriven;
  if (guarded) opts.guards = &gcfg;
  for (auto _ : state) {
    auto t = runTimed(w, opts, 1);
    benchmark::DoNotOptimize(t.res.cycles);
  }
}
void BM_Off(benchmark::State& s) { BM_OffVsGuarded(s, false); }
void BM_Guarded(benchmark::State& s) { BM_OffVsGuarded(s, true); }
BENCHMARK(BM_Off)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Guarded)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "FO (fault/guard overhead)",
      "resilience layer off vs guards on vs timing faults on, event-driven",
      "null faults+guards cost nothing: off keeps event-driven >= 2x the "
      "reference stepper; guards stay within 1.5x of off");

  const fault::Plan plan = timingPlan();
  const guard::Config gcfg{};

  bench::BenchJson json("fault_overhead");
  json.meta("workload", "F6 forall, event-driven scheduler, unit profile");
  TextTable table({"m", "cells", "off Mcc/s", "guards Mcc/s", "faults Mcc/s",
                   "both Mcc/s", "guards/off", "ref Mcc/s", "off/ref",
                   "same"});
  double offOverRefAtMax = 0.0, guardsOverOffAtMax = 0.0;
  for (std::int64_t m : {std::int64_t(256), std::int64_t(1024),
                         std::int64_t(4096)}) {
    const Workload w = f6Workload(m);

    machine::RunOptions off = w.opts;
    off.scheduler = SchedulerKind::EventDriven;
    machine::RunOptions guards = off;
    guards.guards = &gcfg;
    machine::RunOptions faults = off;
    faults.faults = &plan;
    machine::RunOptions both = guards;
    both.faults = &plan;
    machine::RunOptions ref = w.opts;
    ref.scheduler = SchedulerKind::Reference;

    const Timed tOff = runTimed(w, off);
    const Timed tGuards = runTimed(w, guards);
    const Timed tFaults = runTimed(w, faults);
    const Timed tBoth = runTimed(w, both);
    const Timed tRef = runTimed(w, ref);

    // Resilience modes must not change what the run computes: outputs and
    // firing counts stay bit-identical in all five runs (the determinacy
    // contract tests/test_fault_injection.cpp proves exhaustively).
    const bool same = tOff.res.outputs == tRef.res.outputs &&
                      tGuards.res.outputs == tRef.res.outputs &&
                      tFaults.res.outputs == tRef.res.outputs &&
                      tBoth.res.outputs == tRef.res.outputs &&
                      tOff.res.totalFirings == tRef.res.totalFirings &&
                      tFaults.res.totalFirings == tRef.res.totalFirings;

    const double guardsOverOff = mccs(w, tOff) / mccs(w, tGuards);
    const double offOverRef = mccs(w, tOff) / mccs(w, tRef);
    if (m == 4096) {
      offOverRefAtMax = offOverRef;
      guardsOverOffAtMax = guardsOverOff;
    }
    table.addRow({std::to_string(m), std::to_string(w.lowered.size()),
                  fmtDouble(mccs(w, tOff), 3), fmtDouble(mccs(w, tGuards), 3),
                  fmtDouble(mccs(w, tFaults), 3), fmtDouble(mccs(w, tBoth), 3),
                  fmtDouble(guardsOverOff, 2), fmtDouble(mccs(w, tRef), 3),
                  fmtDouble(offOverRef, 2), same ? "yes" : "NO"});
    bench::JsonObj row;
    row.add("m", m)
        .add("cells", static_cast<std::int64_t>(w.lowered.size()))
        .add("off_mccs", mccs(w, tOff))
        .add("guards_mccs", mccs(w, tGuards))
        .add("faults_mccs", mccs(w, tFaults))
        .add("both_mccs", mccs(w, tBoth))
        .add("guards_over_off", guardsOverOff)
        .add("off_over_ref", offOverRef)
        .add("identical", same);
    json.addRow(row);
  }
  std::printf("%s\n", table.str().c_str());
  const bool pass = offOverRefAtMax >= 2.0 && guardsOverOffAtMax <= 1.5;
  std::printf("acceptance: m=4096 off/ref %.2fx (target >= 2x), guards cost "
              "%.2fx of off (target <= 1.5x) %s\n\n",
              offOverRefAtMax, guardsOverOffAtMax, pass ? "PASS" : "FAIL");
  json.meta("off_over_ref_m4096", offOverRefAtMax);
  json.meta("guards_over_off_m4096", guardsOverOffAtMax);
  json.write();
  return bench::runTimings(argc, argv);
}
