// F5 — Figure 5: the if-then-else expression
//     if C[i] then -(A[i]+B[i]) else 5.*(A[i]*B[i]+2.) endif
// Tagged-destination identities route each operand set to one arm; the
// non-strict merge recombines under the (FIFO-delayed) condition stream.
// With balanced arms the structure is fully pipelined for any mix of
// branch outcomes.
#include "bench_common.hpp"

namespace {

using namespace valpipe;

std::string source(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function cond(A, B, C: array[real] [1, m] returns array[real])
  forall i in [1, m]
  construct if C[i] > 0. then -(A[i] + B[i])
            else 5. * (A[i] * B[i] + 2.) endif
  endall
endfun
)";
}

/// Condition stream with roughly `percent` taken branches.
std::vector<Value> biased(std::int64_t n, int percent, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Value> out;
  for (std::int64_t i = 0; i < n; ++i)
    out.push_back(Value(static_cast<int>(rng() % 100) < percent ? 1.0 : -1.0));
  return out;
}

void BM_SimulateConditional(benchmark::State& state) {
  const std::int64_t m = 1024;
  const auto prog = core::compileSource(source(m));
  run::StreamMap in;
  in["A"] = bench::randomStream(m, 1);
  in["B"] = bench::randomStream(m, 2);
  in["C"] = biased(m, static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_SimulateConditional)->Arg(0)->Arg(50)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner("F5 (Figure 5)",
                "fully pipelined if-then-else with data-dependent condition",
                "rate -> 0.5 for any branch mix (balanced arms)");

  std::printf("-- rate vs. stream length (50%% taken) --\n");
  TextTable byN({"m", "cells", "rate", "paper"});
  for (std::int64_t m : {64, 256, 1024, 4096}) {
    const auto prog = core::compileSource(source(m));
    run::StreamMap in;
    in["A"] = bench::randomStream(m, 1);
    in["B"] = bench::randomStream(m, 2);
    in["C"] = biased(m, 50, 3);
    byN.addRow({std::to_string(m),
                std::to_string(prog.graph.loweredCellCount()),
                fmtDouble(bench::measureRate(prog, in).steadyRate, 4), "0.5"});
  }
  std::printf("%s\n", byN.str().c_str());

  std::printf("-- rate vs. taken fraction (m = 1024) --\n");
  TextTable byMix({"taken %", "rate", "paper"});
  bench::BenchJson json("fig5");
  json.meta("workload", "if-then-else with data-dependent condition");
  const std::int64_t m = 1024;
  const auto prog = core::compileSource(source(m));
  for (int pct : {0, 25, 50, 75, 100}) {
    run::StreamMap in;
    in["A"] = bench::randomStream(m, 1);
    in["B"] = bench::randomStream(m, 2);
    in["C"] = biased(m, pct, 3);
    const double rate = bench::measureRate(prog, in).steadyRate;
    byMix.addRow({std::to_string(pct), fmtDouble(rate, 4), "0.5"});
    bench::JsonObj row;
    row.add("taken_pct", pct).add("rate", rate);
    json.addRow(row);
  }
  std::printf("%s\n", byMix.str().c_str());

  // §3 audit with an all-taken condition stream, so every cell of the taken
  // arm carries the full token rate (arm cells fire data-dependently under a
  // mixed condition, which is branch statistics, not a pipeline stall).
  {
    run::StreamMap in;
    in["A"] = bench::randomStream(m, 1);
    in["B"] = bench::randomStream(m, 2);
    in["C"] = biased(m, 100, 3);
    const obs::RateReport audit = bench::auditProgram(prog, in);
    bench::printAudit(audit);
    json.meta("audit", audit.line());
  }
  json.write();
  return bench::runTimings(argc, argv);
}
