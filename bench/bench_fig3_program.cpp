// F3 — Figure 3 / Theorem 4: the whole pipe-structured program (Example 1's
// forall feeding Example 2's for-iter).  The blocks' fully pipelined
// subgraphs are spliced along the acyclic flow dependency graph and the
// interconnection balanced: the complete program runs at the machine's
// maximum rate.
#include "bench_common.hpp"

namespace {

using namespace valpipe;

std::string figure3Source(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function fig3(B, C: array[real] [0, m+1]; A2: array[real] [1, m]
              returns array[real])
  let
    A : array[real] := forall i in [0, m+1]
        P : real := if (i = 0) | (i = m+1) then C[i]
                    else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
      construct B[i] * (P * P)
      endall;
    X : array[real] := for i : integer := 1;
        T : array[real] := [0: 0]
      do let P : real := A2[i]*T[i-1] + A[i]
         in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
            else T endif
         endlet
      endfor
  in X endlet
endfun
)";
}

void BM_Figure3Simulation(benchmark::State& state) {
  const auto prog = core::compileSource(figure3Source(state.range(0)));
  const auto in = bench::randomInputs(prog, 17, -0.9, 0.9);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_Figure3Simulation)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "F3 (Figure 3 / Theorem 4)",
      "pipe-structured program: Example 1 forall -> Example 2 for-iter",
      "whole composed program fully pipelined: rate -> 0.5 end to end");

  bench::BenchJson json("fig3");
  json.meta("workload", "pipe-structured program (Example 1 -> Example 2)");
  TextTable table({"m", "cells", "FIFO slots", "for-iter scheme", "rate",
                   "paper"});
  for (std::int64_t m : {64, 256, 1024, 4096}) {
    const auto prog = core::compileSource(figure3Source(m));
    const auto in = bench::randomInputs(prog, 17, -0.9, 0.9);
    const double rate = bench::measureRate(prog, in, 2).steadyRate;
    table.addRow({std::to_string(m),
                  std::to_string(prog.graph.loweredCellCount()),
                  std::to_string(prog.balance.buffersInserted),
                  prog.blocks[1].scheme, fmtDouble(rate, 4), "0.5"});
    bench::JsonObj row;
    row.add("m", m).add("rate", rate);
    json.addRow(row);
  }
  std::printf("%s\n", table.str().c_str());

  // §3 audit of the composed program (Theorem 4: the splice of fully
  // pipelined blocks stays fully pipelined).
  {
    const auto prog = core::compileSource(figure3Source(1024));
    const obs::RateReport audit =
        bench::auditProgram(prog, bench::randomInputs(prog, 17, -0.9, 0.9));
    bench::printAudit(audit);
    json.meta("audit", audit.line());
  }
  json.write();

  std::printf("-- same program, for-iter mapped with Todd's scheme: the\n");
  std::printf("   slowest stage sets the whole pipeline's rate (Section 3) --\n");
  TextTable todd({"m", "rate", "paper (1/3)"});
  core::CompileOptions topts;
  topts.forIterScheme = core::ForIterScheme::Todd;
  for (std::int64_t m : {256, 1024}) {
    const auto prog = core::compileSource(figure3Source(m), topts);
    const auto in = bench::randomInputs(prog, 17, -0.9, 0.9);
    todd.addRow({std::to_string(m),
                 fmtDouble(bench::measureRate(prog, in).steadyRate, 4),
                 "0.3333"});
  }
  std::printf("%s\n", todd.str().c_str());
  return bench::runTimings(argc, argv);
}
