// F4 — Figure 4: array element selection 0.25*(C[i-1] + 2*C[i] + C[i+1]).
// Gated identities discard the unused boundary elements; FIFO buffering
// absorbs the index skew between the three shifted streams.  Balanced code
// sustains the maximum rate; removing the skew buffers degrades it.
#include "bench_common.hpp"

namespace {

using namespace valpipe;

std::string source(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function sel(C: array[real] [0, m+1] returns array[real])
  forall i in [1, m]
  construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
  endall
endfun
)";
}

void BM_CompileSelection(benchmark::State& state) {
  const std::string src = source(state.range(0));
  for (auto _ : state) {
    auto prog = core::compileSource(src);
    benchmark::DoNotOptimize(prog.graph.size());
  }
}
BENCHMARK(BM_CompileSelection)->Arg(256)->Arg(4096);

void BM_SimulateSelection(benchmark::State& state) {
  const auto prog = core::compileSource(source(state.range(0)));
  const auto in = bench::randomInputs(prog, 7);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_SimulateSelection)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "F4 (Figure 4)", "pipelined array selection 0.25*(C[i-1]+2C[i]+C[i+1])",
      "with skew FIFOs: rate -> 0.5; without buffering the skewed streams "
      "jam and the rate drops");

  bench::BenchJson json("fig4");
  json.meta("workload", "array selection 0.25*(C[i-1]+2C[i]+C[i+1])");
  TextTable table({"m", "cells", "FIFO slots", "rate balanced",
                   "rate unbuffered", "paper"});
  for (std::int64_t m : {64, 256, 1024, 4096}) {
    const auto balanced = core::compileSource(source(m));
    core::CompileOptions none;
    none.balanceMode = core::BalanceMode::None;
    const auto raw = core::compileSource(source(m), none);

    const auto in = bench::randomInputs(balanced, 11);
    const double rBal = bench::measureRate(balanced, in).steadyRate;
    const double rRaw = bench::measureRate(raw, in).steadyRate;
    table.addRow({std::to_string(m),
                  std::to_string(balanced.graph.loweredCellCount()),
                  std::to_string(balanced.balance.buffersInserted),
                  fmtDouble(rBal, 4), fmtDouble(rRaw, 4), "0.5 / <0.5"});
    bench::JsonObj row;
    row.add("m", m).add("rate_balanced", rBal).add("rate_unbuffered", rRaw);
    json.addRow(row);
  }
  std::printf("%s\n", table.str().c_str());

  // §3 audit of both variants: the balanced code passes; the unbuffered
  // code is flagged cell by cell with the short skew paths named.
  {
    const auto balanced = core::compileSource(source(1024));
    const auto in = bench::randomInputs(balanced, 11);
    const obs::RateReport good = bench::auditProgram(balanced, in);
    std::printf("balanced:   ");
    bench::printAudit(good);
    json.meta("audit", good.line());

    core::CompileOptions none;
    none.balanceMode = core::BalanceMode::None;
    const obs::RateReport bad =
        bench::auditProgram(core::compileSource(source(1024), none), in);
    std::printf("unbuffered: ");
    bench::printAudit(bad);
    json.meta("audit_unbuffered", bad.line());
  }
  json.write();
  return bench::runTimings(argc, argv);
}
