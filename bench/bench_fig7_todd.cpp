// F7 — Figure 7: Todd's translation of the for-iter construct (Example 2).
// The feedback link from the merge output to the loop body entry prevents
// full pipelining: with 3 cells between x_{i-1} and x_i the initiation rate
// cannot exceed 1/3.
#include "bench_common.hpp"

namespace {

using namespace valpipe;

void BM_ToddSimulation(benchmark::State& state) {
  core::CompileOptions todd;
  todd.forIterScheme = core::ForIterScheme::Todd;
  const auto prog =
      core::compileSource(bench::example2Source(state.range(0)), todd);
  const auto in = bench::randomInputs(prog, 3, -0.9, 0.9);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_ToddSimulation)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner("F7 (Figure 7)",
                "Todd's for-iter scheme on Example 2 (x_i = A_i x_{i-1} + B_i)",
                "3-stage feedback cycle => initiation rate 1/3, not 1/2");

  core::CompileOptions todd;
  todd.forIterScheme = core::ForIterScheme::Todd;

  bench::BenchJson json("fig7");
  json.meta("workload", "Todd for-iter scheme on Example 2");
  TextTable table({"m", "cells", "cycle S", "rate", "paper (1/S)"});
  for (std::int64_t m : {64, 256, 1024, 4096}) {
    const auto prog = core::compileSource(bench::example2Source(m), todd);
    const auto in = bench::randomInputs(prog, 3, -0.9, 0.9);
    const double rate = bench::measureRate(prog, in).steadyRate;
    table.addRow({std::to_string(m),
                  std::to_string(prog.graph.loweredCellCount()),
                  std::to_string(prog.blocks[0].cycleStages),
                  fmtDouble(rate, 4),
                  fmtDouble(1.0 / static_cast<double>(
                                       prog.blocks[0].cycleStages), 4)});
    bench::JsonObj row;
    row.add("m", m).add("cycle_stages", prog.blocks[0].cycleStages)
        .add("rate", rate);
    json.addRow(row);
  }
  std::printf("%s\n", table.str().c_str());

  // §3 audit against the *derived* bound: this scheme is cycle-limited by
  // design, so its steady period is the S-stage feedback cycle, not the
  // paper's 2 (auditing against 2 would flag every cell — correctly).
  {
    const auto prog = core::compileSource(bench::example2Source(1024), todd);
    const std::int64_t bound = prog.blocks[0].cycleStages;
    const obs::RateReport audit = bench::auditProgram(
        prog, bench::randomInputs(prog, 3, -0.9, 0.9), bound);
    std::printf("audited against the derived cycle bound S = %lld:\n",
                static_cast<long long>(bound));
    bench::printAudit(audit);
    json.meta("audit", audit.line());
    json.meta("period_bound", bound);
  }
  json.write();

  // Longer recurrence bodies make the cycle — and the slowdown — bigger.
  std::printf("-- rate vs. recurrence-body length (m = 1024) --\n");
  TextTable byBody({"body", "cycle S", "rate", "paper (1/S)"});
  struct Case { const char* label; const char* expr; };
  for (const Case& c : {Case{"A*x + B", "A[i]*T[i-1] + B[i]"},
                        Case{"A*x*x + B", "A[i]*(T[i-1]*T[i-1]) + B[i]"},
                        Case{"A*x*x*x + B",
                             "A[i]*(T[i-1]*(T[i-1]*T[i-1])) + B[i]"}}) {
    const std::string src = std::string("const m = 1024\n") +
        "function f(A, B: array[real] [1, m] returns array[real])\n"
        "  for i : integer := 1; T : array[real] := [0: 0.1]\n"
        "  do let P : real := " + c.expr + "\n"
        "     in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer\n"
        "        else T endif endlet endfor\nendfun\n";
    const auto prog = core::compileSource(src, todd);
    const auto in = bench::randomInputs(prog, 9, -0.7, 0.7);
    byBody.addRow({c.label, std::to_string(prog.blocks[0].cycleStages),
                   fmtDouble(bench::measureRate(prog, in).steadyRate, 4),
                   fmtDouble(1.0 / static_cast<double>(
                                        prog.blocks[0].cycleStages), 4)});
  }
  std::printf("%s\n", byBody.str().c_str());
  return bench::runTimings(argc, argv);
}
