// CB — compiled backend: SchedulerKind::Compiled (steady-state fast-forward
// over the sched::SteadySchedule IR) vs the event-driven scheduler on the
// fig2–fig8 workloads at m = 4096.
//
// The compiled scheduler runs the pipeline fill live, detects the steady
// state, fast-forwards all full hyper-periods in bulk (no time wheel, no
// ready queue, no per-token ack traffic for the skipped windows), then
// resumes live for the drain.  On graphs the IR declines — runtime gates,
// merges, feedback loops, array memories — it falls back to the event loop
// with a structured diagnostic, so those rows measure pure dispatch
// overhead (~1x).  Every row checks bit-identity: outputs, output times,
// firings, cycles, and packet counters must match the event-driven run.
#include "bench_common.hpp"

#include <chrono>

#include "dfg/graph.hpp"

namespace {

using namespace valpipe;
using machine::SchedulerKind;

/// Figure 2's three-stage pipeline, verbatim.
dfg::Graph figure2Graph(std::int64_t n) {
  dfg::Graph g;
  const auto a = g.input("a", n);
  const auto b = g.input("b", n);
  const auto y = g.binary(dfg::Op::Mul, dfg::Graph::out(a), dfg::Graph::out(b),
                          "cell1");
  const auto p = g.binary(dfg::Op::Add, dfg::Graph::out(y),
                          dfg::Graph::lit(Value(2.0)), "cell2");
  const auto q = g.binary(dfg::Op::Sub, dfg::Graph::out(y),
                          dfg::Graph::lit(Value(3.0)), "cell3");
  const auto r = g.binary(dfg::Op::Mul, dfg::Graph::out(p), dfg::Graph::out(q),
                          "cell4");
  g.output("x", dfg::Graph::out(r));
  return g;
}

std::string figure3Source(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function fig3(B, C: array[real] [0, m+1]; A2: array[real] [1, m]
              returns array[real])
  let
    A : array[real] := forall i in [0, m+1]
        P : real := if (i = 0) | (i = m+1) then C[i]
                    else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
      construct B[i] * (P * P)
      endall;
    X : array[real] := for i : integer := 1;
        T : array[real] := [0: 0]
      do let P : real := A2[i]*T[i-1] + A[i]
         in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
            else T endif
         endlet
      endfor
  in X endlet
endfun
)";
}

std::string selectionSource(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function sel(C: array[real] [0, m+1] returns array[real])
  forall i in [1, m]
  construct 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
  endall
endfun
)";
}

std::string conditionalSource(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function cond(A, B, C: array[real] [1, m] returns array[real])
  forall i in [1, m]
  construct if C[i] > 0. then -(A[i] + B[i])
            else 5. * (A[i] * B[i] + 2.) endif
  endall
endfun
)";
}

std::string forallSource(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function ex1(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
}

/// One prepared workload: a lowered graph plus its inputs and run options.
struct Workload {
  std::string name;
  dfg::Graph lowered;
  run::StreamMap inputs;
  machine::RunOptions opts;
};

Workload fromProgram(std::string name, const core::CompiledProgram& prog,
                     run::StreamMap in) {
  Workload w;
  w.name = std::move(name);
  w.lowered = dfg::isLowered(prog.graph) ? prog.graph
                                         : dfg::expandFifos(prog.graph);
  w.inputs = std::move(in);
  w.opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  return w;
}

std::vector<Workload> workloads(std::int64_t m) {
  std::vector<Workload> all;

  Workload f2;
  f2.name = "fig2 pipeline";
  f2.lowered = figure2Graph(m);
  f2.inputs = {{"a", bench::randomStream(m, 1)},
               {"b", bench::randomStream(m, 2)}};
  f2.opts.expectedOutputs["x"] = m;
  all.push_back(std::move(f2));

  {
    const auto prog = core::compileSource(figure3Source(m));
    all.push_back(
        fromProgram("fig3 program", prog, bench::randomInputs(prog, 7, -0.9, 0.9)));
  }
  {
    const auto prog = core::compileSource(selectionSource(m));
    all.push_back(
        fromProgram("fig4 selection", prog, bench::randomInputs(prog, 11)));
  }
  {
    const auto prog = core::compileSource(conditionalSource(m));
    all.push_back(
        fromProgram("fig5 conditional", prog, bench::randomInputs(prog, 13)));
  }
  {
    const auto prog = core::compileSource(forallSource(m));
    all.push_back(
        fromProgram("fig6 forall", prog, bench::randomInputs(prog, 17)));
  }
  {
    core::CompileOptions todd;
    todd.forIterScheme = core::ForIterScheme::Todd;
    const auto prog = core::compileSource(bench::example2Source(m), todd);
    all.push_back(fromProgram("fig7 todd", prog,
                              bench::randomInputs(prog, 19, -0.9, 0.9)));
  }
  {
    core::CompileOptions comp;
    comp.forIterScheme = core::ForIterScheme::Companion;
    comp.companionSkip = 4;
    const auto prog = core::compileSource(bench::example2Source(m), comp);
    all.push_back(fromProgram("fig8 companion", prog,
                              bench::randomInputs(prog, 23, -0.9, 0.9)));
  }
  return all;
}

struct Timed {
  machine::MachineResult res;
  double seconds = 0.0;
};

Timed runTimed(const Workload& w, SchedulerKind kind, int reps = 5) {
  machine::RunOptions opts = w.opts;
  opts.scheduler = kind;
  Timed best;
  best.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    machine::MachineResult res = machine::simulate(
        w.lowered, machine::MachineConfig::unit(), w.inputs, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best.seconds) best = {std::move(res), s};
  }
  return best;
}

/// Bit-identity across everything a client could observe.
bool identical(const machine::MachineResult& a,
               const machine::MachineResult& b) {
  return a.outputs == b.outputs && a.outputTimes == b.outputTimes &&
         a.firings == b.firings && a.totalFirings == b.totalFirings &&
         a.cycles == b.cycles && a.completed == b.completed &&
         a.packets.opPacketsByClass == b.packets.opPacketsByClass &&
         a.packets.resultPackets == b.packets.resultPackets &&
         a.packets.ackPackets == b.packets.ackPackets &&
         a.packets.networkResultPackets == b.packets.networkResultPackets;
}

void BM_CompiledFig2(benchmark::State& state) {
  Workload w;
  w.name = "fig2";
  w.lowered = figure2Graph(state.range(0));
  w.inputs = {{"a", bench::randomStream(state.range(0), 1)},
              {"b", bench::randomStream(state.range(0), 2)}};
  w.opts.expectedOutputs["x"] = state.range(0);
  for (auto _ : state) {
    auto t = runTimed(w, SchedulerKind::Compiled, 1);
    benchmark::DoNotOptimize(t.res.cycles);
  }
}
void BM_EventFig2(benchmark::State& state) {
  Workload w;
  w.name = "fig2";
  w.lowered = figure2Graph(state.range(0));
  w.inputs = {{"a", bench::randomStream(state.range(0), 1)},
              {"b", bench::randomStream(state.range(0), 2)}};
  w.opts.expectedOutputs["x"] = state.range(0);
  for (auto _ : state) {
    auto t = runTimed(w, SchedulerKind::EventDriven, 1);
    benchmark::DoNotOptimize(t.res.cycles);
  }
}
BENCHMARK(BM_CompiledFig2)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_EventFig2)->Arg(1024)->Arg(4096)->Arg(16384);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  const std::int64_t m = 4096;
  bench::banner(
      "CB (compiled backend)",
      "SchedulerKind::Compiled steady-state fast-forward vs event-driven",
      ">= 10x wall-clock on at least one fig workload at m = 4096, "
      "bit-identical results everywhere");

  bench::BenchJson json("compiled_backend", SchedulerKind::Compiled);
  json.meta("workload", "fig2-fig8 at m = 4096, compiled vs event-driven");
  json.meta("m", m);
  TextTable table({"workload", "cells", "cycles", "ed ms", "compiled ms",
                   "speedup", "windows", "mode", "same"});
  double bestSpeedup = 0.0;
  std::string bestName = "-";
  bool allIdentical = true;
  for (const Workload& w : workloads(m)) {
    const Timed ed = runTimed(w, SchedulerKind::EventDriven);
    const Timed cp = runTimed(w, SchedulerKind::Compiled);
    const bool same = identical(ed.res, cp.res);
    allIdentical = allIdentical && same;
    const double speedup = ed.seconds / cp.seconds;
    const auto& ci = cp.res.compiled;
    const char* mode = !ci.accepted             ? "fallback"
                       : ci.windowsSkipped == 0 ? "live"
                       : ci.vectorized          ? "ff+vec"
                                                : "ff";
    if (ci.accepted && speedup > bestSpeedup) {
      bestSpeedup = speedup;
      bestName = w.name;
    }
    table.addRow({w.name, std::to_string(w.lowered.size()),
                  std::to_string(ed.res.cycles),
                  fmtDouble(ed.seconds * 1e3, 2),
                  fmtDouble(cp.seconds * 1e3, 2), fmtDouble(speedup, 2),
                  std::to_string(ci.windowsSkipped), mode,
                  same ? "yes" : "NO"});
    bench::JsonObj row;
    row.add("workload", w.name)
        .add("cells", static_cast<std::int64_t>(w.lowered.size()))
        .add("cycles", ed.res.cycles)
        .add("event_ms", ed.seconds * 1e3)
        .add("compiled_ms", cp.seconds * 1e3)
        .add("speedup", speedup)
        .add("accepted", ci.accepted)
        .add("vectorized", ci.vectorized)
        .add("windows_skipped", ci.windowsSkipped)
        .add("firings_skipped", static_cast<std::int64_t>(ci.firingsSkipped))
        .add("reason", ci.reason)
        .add("identical", same);
    json.addRow(row);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("acceptance: best accepted-workload speedup %.2fx on %s "
              "(target >= 10x) %s; identity %s\n\n",
              bestSpeedup, bestName.c_str(),
              bestSpeedup >= 10.0 ? "PASS" : "FAIL",
              allIdentical ? "PASS" : "FAIL");
  json.meta("best_speedup", bestSpeedup);
  json.meta("best_workload", bestName);
  json.meta("all_identical", allIdentical);
  json.write();
  return bench::runTimings(argc, argv);
}
