// PE — parallel engine scaling: throughput of the sharded event-driven
// scheduler (SchedulerKind::ParallelEventDriven) over a 1 / 2 / 4 / 8
// thread sweep against the single-threaded EventDriven baseline, on the F6
// forall workload.
//
// The sharded scheduler advances all shards in lockstep over active
// instruction times, so its speedup ceiling is the per-step parallelism of
// the workload divided by the barrier cost — and, of course, the machine's
// core count: a thread sweep on a 1-core container measures barrier
// overhead, not scaling, so the JSON report records hardware_concurrency
// alongside every speedup for honest reading.  Results must stay
// bit-identical to the serial engine at every thread count.
#include "bench_common.hpp"

#include <chrono>
#include <fstream>
#include <thread>

namespace {

using namespace valpipe;
using machine::SchedulerKind;

std::string forallSource(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function ex1(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
}

struct Workload {
  std::int64_t m = 0;
  dfg::Graph lowered;
  run::StreamMap inputs;
  machine::RunOptions opts;
};

Workload f6Workload(std::int64_t m) {
  const auto prog = core::compileSource(forallSource(m));
  Workload w;
  w.m = m;
  w.lowered = dfg::isLowered(prog.graph) ? prog.graph
                                         : dfg::expandFifos(prog.graph);
  w.inputs = bench::randomInputs(prog, 5);
  w.opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  return w;
}

struct Timed {
  machine::MachineResult res;
  double seconds = 0.0;
};

Timed runTimed(const Workload& w, SchedulerKind kind, int threads,
               int reps = 3) {
  machine::RunOptions opts = w.opts;
  opts.scheduler = kind;
  opts.threads = threads;
  Timed best;
  best.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    machine::MachineResult res = machine::simulate(
        w.lowered, machine::MachineConfig::unit(), w.inputs, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best.seconds) best = {std::move(res), s};
  }
  return best;
}

bool identical(const machine::MachineResult& a,
               const machine::MachineResult& b) {
  return a.outputs == b.outputs && a.outputTimes == b.outputTimes &&
         a.cycles == b.cycles && a.totalFirings == b.totalFirings &&
         a.firings == b.firings && a.completed == b.completed;
}

void BM_Parallel(benchmark::State& state) {
  const Workload w = f6Workload(1024);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto t = runTimed(w, SchedulerKind::ParallelEventDriven, threads, 1);
    benchmark::DoNotOptimize(t.res.cycles);
  }
}
BENCHMARK(BM_Parallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  const unsigned cores = std::thread::hardware_concurrency();
  bench::banner(
      "PE (parallel engine scaling)",
      "sharded lockstep scheduler vs single-threaded event-driven",
      ">= 2x wall-clock on the m=4096 F6 forall with 8 threads, given >= 8 "
      "cores; bit-identical results at every thread count");
  std::printf("hardware_concurrency: %u%s\n\n", cores,
              cores < 8 ? "  (below 8: speedups here measure barrier "
                          "overhead, not scaling)"
                        : "");

  TextTable table({"m", "cells", "cycles", "serial s", "threads", "par s",
                   "speedup", "same"});
  bench::BenchJson json("parallel_engine",
                        SchedulerKind::ParallelEventDriven);
  json.meta("workload", "F6 forall");
  for (std::int64_t m : {std::int64_t(1024), std::int64_t(4096)}) {
    const Workload w = f6Workload(m);
    const Timed serial = runTimed(w, SchedulerKind::EventDriven, 0);
    for (int threads : {1, 2, 4, 8}) {
      const Timed par =
          runTimed(w, SchedulerKind::ParallelEventDriven, threads);
      const bool same = identical(serial.res, par.res);
      const double speedup = serial.seconds / par.seconds;
      table.addRow({std::to_string(m), std::to_string(w.lowered.size()),
                    std::to_string(par.res.cycles), fmtDouble(serial.seconds, 4),
                    std::to_string(threads), fmtDouble(par.seconds, 4),
                    fmtDouble(speedup, 2), same ? "yes" : "NO"});
      bench::JsonObj row;
      row.add("m", m)
          .add("threads", threads)
          .add("serial_seconds", serial.seconds)
          .add("parallel_seconds", par.seconds)
          .add("speedup", speedup)
          .add("identical", same);
      json.addRow(row);
    }
  }
  std::printf("%s\n", table.str().c_str());
  json.write();
  return bench::runTimings(argc, argv);
}
