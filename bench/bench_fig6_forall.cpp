// F6 — Figure 6: the primitive forall of Example 1, mapped with the §6
// pipeline scheme (cascaded definition + accumulation graphs, element
// selection gates, merge for the boundary/interior cases) versus the
// parallel scheme baseline (one body copy per element).
#include "bench_common.hpp"

namespace {

using namespace valpipe;

std::string source(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function ex1(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
}

void BM_PipelineScheme(benchmark::State& state) {
  const auto prog = core::compileSource(source(state.range(0)));
  const auto in = bench::randomInputs(prog, 5);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_PipelineScheme)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ParallelScheme(benchmark::State& state) {
  core::CompileOptions par;
  par.forallScheme = core::ForallScheme::Parallel;
  const auto prog = core::compileSource(source(state.range(0)), par);
  const auto in = bench::randomInputs(prog, 5);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_ParallelScheme)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "F6 (Figure 6 / Theorem 2)",
      "primitive forall (Example 1): pipeline scheme vs parallel scheme",
      "pipeline: rate -> 0.5 with O(body) cells; parallel: O(n * body) "
      "cells (\"of limited interest\" for streams)");

  bench::BenchJson json("fig6");
  json.meta("workload", "Example 1 forall, pipeline vs parallel scheme");
  TextTable table({"m", "scheme", "cells", "FIFO slots", "rate", "paper"});
  for (std::int64_t m : {64, 256, 1024, 4096}) {
    const auto prog = core::compileSource(source(m));
    const auto in = bench::randomInputs(prog, 5);
    const double rate = bench::measureRate(prog, in, 2).steadyRate;
    table.addRow({std::to_string(m), "pipeline",
                  std::to_string(prog.graph.loweredCellCount()),
                  std::to_string(prog.balance.buffersInserted),
                  fmtDouble(rate, 4), "0.5, ~const cells"});
    bench::JsonObj row;
    row.add("m", m).add("scheme", "pipeline").add("rate", rate);
    json.addRow(row);
    if (m <= 256) {
      core::CompileOptions par;
      par.forallScheme = core::ForallScheme::Parallel;
      const auto pprog = core::compileSource(source(m), par);
      const auto pin = bench::randomInputs(pprog, 5);
      table.addRow({std::to_string(m), "parallel",
                    std::to_string(pprog.graph.loweredCellCount()),
                    std::to_string(pprog.balance.buffersInserted),
                    fmtDouble(bench::measureRate(pprog, pin).steadyRate, 4),
                    "O(n) cells"});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("(parallel rows stop at m=256: cell count grows linearly, the "
              "scheme does not exploit the stream representation)\n\n");

  // §3 audit of the pipeline scheme (Theorem 2).
  {
    const auto prog = core::compileSource(source(1024));
    const obs::RateReport audit =
        bench::auditProgram(prog, bench::randomInputs(prog, 5));
    bench::printAudit(audit);
    json.meta("audit", audit.line());
  }
  json.write();
  return bench::runTimings(argc, argv);
}
