// P5 — FIFO fusion: composite ring-buffer cells vs expanded Id chains.
//
// The optimizer (opt::fuseFifos) collapses each buffering chain into one
// O(1) cell fired with the chain's exact external timing, so a depth-k FIFO
// costs one result + one acknowledge packet per token instead of k of each.
// This bench sweeps the two lowerings over the workloads where chains
// dominate — the §9 long-FIFO recurrence (bench_claim_longfifo's shape) and
// the Fig. 6 smoothing forall — on the event-driven scheduler, asserting
// bit-identical outputs and reporting the wall-clock speedup.  The headline
// acceptance: >= 1.5x throughput on the deep recurrence at m = 4096.
#include <chrono>

#include "bench_common.hpp"
#include "opt/fuse.hpp"

namespace {

using namespace valpipe;

/// The 4-operator recurrence of bench_claim_longfifo; under the LongFifo
/// scheme its feedback cycle is padded with a deep FIFO (2B stages for B
/// interleaved instances).
std::string deepRecurrence(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function deep(A, B: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0.2]
  do let P : real := (T[i-1] * A[i] + B[i]) * 0.5
     in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
        else T endif
     endlet
  endfor
endfun
)";
}

/// The Fig. 6 boundary-guarded smoothing forall: its selection skews are
/// realized as (shallow) balancing FIFOs.
std::string smoothForall(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function f6(B, C: array[real] [0, m+1] returns array[real])
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i] * (P * P)
  endall
endfun
)";
}

struct Meas {
  double ms = 0.0;
  machine::MachineResult res;
};

/// One timed event-driven run of an already-lowered graph (deliberately not
/// bench::measureRate, which would re-expand any graph carrying Fifo nodes).
Meas timedRun(const dfg::Graph& lowered, const core::CompiledProgram& prog,
              const run::StreamMap& in, int reps = 3) {
  machine::RunOptions opts;
  opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  Meas best;
  best.ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    machine::MachineResult res =
        machine::simulate(lowered, machine::MachineConfig::unit(), in, opts);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (ms < best.ms) {
      best.ms = ms;
      best.res = std::move(res);
    }
  }
  return best;
}

struct Row {
  std::string workload;
  std::int64_t m = 0;
  std::size_t cellsExpanded = 0;
  std::size_t cellsFused = 0;
  std::size_t chains = 0;
  std::size_t absorbed = 0;
  double msExpanded = 0.0;
  double msFused = 0.0;
  double speedup = 0.0;
  std::uint64_t packetsExpanded = 0;  ///< result + ack packets
  std::uint64_t packetsFused = 0;
  bool identical = false;
};

Row sweep(const std::string& workload, const std::string& src,
          std::int64_t m, const core::CompileOptions& copts) {
  const auto prog = core::compileSource(src, copts);
  const auto in = bench::randomInputs(prog, 71, -0.8, 0.8);
  const dfg::Graph expanded = dfg::expandFifos(prog.graph);
  opt::FusionStats fs;
  const dfg::Graph fused = opt::fuseFifos(prog.graph, &fs);

  const Meas e = timedRun(expanded, prog, in);
  const Meas f = timedRun(fused, prog, in);

  Row row;
  row.workload = workload;
  row.m = m;
  row.cellsExpanded = expanded.size();
  row.cellsFused = fused.size();
  row.chains = fs.chainsFused;
  row.absorbed = fs.cellsAbsorbed;
  row.msExpanded = e.ms;
  row.msFused = f.ms;
  row.speedup = f.ms > 0.0 ? e.ms / f.ms : 0.0;
  row.packetsExpanded =
      e.res.packets.resultPackets + e.res.packets.ackPackets;
  row.packetsFused = f.res.packets.resultPackets + f.res.packets.ackPackets;
  row.identical = e.res.completed && f.res.completed &&
                  f.res.outputs == e.res.outputs &&
                  f.res.outputTimes == e.res.outputTimes;
  return row;
}

core::CompileOptions recurrenceOpts() {
  core::CompileOptions o;
  o.forIterScheme = core::ForIterScheme::LongFifo;
  o.interleave = 64;  // 128-stage cycle: one deep FIFO dominates the graph
  return o;
}

void BM_DeepRecurrence(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  const bool fuse = state.range(1) != 0;
  const auto prog = core::compileSource(deepRecurrence(m), recurrenceOpts());
  const auto in = bench::randomInputs(prog, 71, -0.8, 0.8);
  const dfg::Graph lowered =
      fuse ? opt::fuseFifos(prog.graph) : dfg::expandFifos(prog.graph);
  machine::RunOptions opts;
  opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave();
  for (auto _ : state) {
    auto res = machine::simulate(lowered, machine::MachineConfig::unit(), in,
                                 opts);
    benchmark::DoNotOptimize(res.cycles);
  }
}
BENCHMARK(BM_DeepRecurrence)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->ArgNames({"m", "fused"});

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "P5 — FIFO fusion",
      "composite ring-buffer FIFO cells vs expanded Id chains "
      "(event-driven scheduler, unit profile)",
      "identical outputs and output times; >= 1.5x throughput on the deep "
      "recurrence at m = 4096");

  bench::BenchJson json("fifo_fusion");
  TextTable table({"workload", "m", "cells exp", "cells fused", "packets exp",
                   "packets fused", "ms exp", "ms fused", "speedup",
                   "identical"});
  double headline = 0.0;
  bool allIdentical = true;
  for (const std::int64_t m : {64, 256, 1024, 4096}) {
    for (int w = 0; w < 2; ++w) {
      const bool rec = w == 0;
      const Row row =
          rec ? sweep("deep-recurrence", deepRecurrence(m), m,
                      recurrenceOpts())
              : sweep("smooth-forall", smoothForall(m), m,
                      core::CompileOptions{});
      table.addRow({row.workload, std::to_string(row.m),
                    std::to_string(row.cellsExpanded),
                    std::to_string(row.cellsFused),
                    std::to_string(row.packetsExpanded),
                    std::to_string(row.packetsFused),
                    fmtDouble(row.msExpanded, 2), fmtDouble(row.msFused, 2),
                    fmtDouble(row.speedup, 2), row.identical ? "yes" : "NO"});
      bench::JsonObj o;
      o.add("workload", row.workload)
          .add("m", row.m)
          .add("cells_expanded", static_cast<std::int64_t>(row.cellsExpanded))
          .add("cells_fused", static_cast<std::int64_t>(row.cellsFused))
          .add("chains_fused", static_cast<std::int64_t>(row.chains))
          .add("cells_absorbed", static_cast<std::int64_t>(row.absorbed))
          .add("packets_expanded", row.packetsExpanded)
          .add("packets_fused", row.packetsFused)
          .add("ms_expanded", row.msExpanded)
          .add("ms_fused", row.msFused)
          .add("speedup", row.speedup)
          .add("identical", row.identical);
      json.addRow(o);
      allIdentical = allIdentical && row.identical;
      if (rec && m == 4096) headline = row.speedup;
    }
  }
  std::printf("%s\n", table.str().c_str());

  const bool pass = allIdentical && headline >= 1.5;
  json.meta("speedup_at_m4096", headline);
  json.meta("all_identical", allIdentical);
  json.meta("pass", pass);
  json.write();
  std::printf("deep recurrence @ m=4096: %.2fx %s (bound 1.5x); outputs %s\n",
              headline, pass ? "PASS" : "FAIL",
              allIdentical ? "bit-identical" : "MISMATCH");
  if (!pass) return 1;
  return bench::runTimings(argc, argv);
}
