// C4 — §9 (conclusion): "a recurrence having a cyclic dependence of four
// operators may be implemented at the maximum rate by introducing a delay
// (via a FIFO buffer)" — trading latency for throughput.  Our realization
// interleaves B independent recurrence instances element-wise and pads the
// feedback cycle with a FIFO to 2B stages: B packets in flight, rate 1/2.
#include "bench_common.hpp"

namespace {

using namespace valpipe;

/// A recurrence whose Todd cycle has 4 operator cells (paper's example
/// shape): x_i = ((x_{i-1} * A_i) + B_i) * 0.5, non-linear-free but the
/// point here is cycle length, so we keep it linear and simply deeper.
std::string deepRecurrence(std::int64_t m) {
  return "const m = " + std::to_string(m) + "\n" + R"(
function deep(A, B: array[real] [1, m] returns array[real])
  for i : integer := 1; T : array[real] := [0: 0.2]
  do let P : real := (T[i-1] * A[i] + B[i]) * 0.5
     in if i < m + 1 then iter T := T[i: P]; i := i + 1 enditer
        else T endif
     endlet
  endfor
endfun
)";
}

struct Row {
  int batch;
  std::int64_t stages;
  std::int64_t fifo;
  double rate;
  std::int64_t cycles;
};

Row measure(std::int64_t m, int batch) {
  core::CompileOptions opts;
  if (batch <= 1) {
    opts.forIterScheme = core::ForIterScheme::Todd;
  } else {
    opts.forIterScheme = core::ForIterScheme::LongFifo;
    opts.interleave = batch;
  }
  const auto prog = core::compileSource(deepRecurrence(m), opts);
  const auto in = bench::randomInputs(prog, 41, -0.8, 0.8);
  const auto res = bench::measureRate(prog, in);
  const std::int64_t stages = prog.blocks[0].cycleStages;
  return {batch, stages, stages - 4 /* mul, add, mul, merge */, res.steadyRate,
          res.cycles};
}

void BM_LongFifo(benchmark::State& state) {
  core::CompileOptions opts;
  opts.forIterScheme = core::ForIterScheme::LongFifo;
  opts.interleave = static_cast<int>(state.range(0));
  const auto prog = core::compileSource(deepRecurrence(1024), opts);
  const auto in = bench::randomInputs(prog, 41, -0.8, 0.8);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_LongFifo)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "C4 (Section 9)",
      "long-FIFO alternative: latency traded for maximum rate on a "
      "4-operator recurrence cycle",
      "rate saturates at 1/2 once the cycle is padded to 2B stages for B "
      "interleaved instances; completion latency grows with the FIFO");

  const std::int64_t m = 1024;
  TextTable table({"interleave B", "cycle S", "FIFO cells", "rate",
                   "cycles/instance", "paper"});
  for (int batch : {1, 2, 4, 8, 16}) {
    const Row row = measure(m, batch);
    table.addRow({std::to_string(row.batch), std::to_string(row.stages),
                  std::to_string(std::max<std::int64_t>(row.fifo, 0)),
                  fmtDouble(row.rate, 4),
                  std::to_string(row.cycles / std::max(row.batch, 1)),
                  batch == 1 ? "1/4 (Todd)" : "-> 1/2"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "(B = 1 is Todd's scheme on the 4-cell cycle: rate 1/4.  Each doubling\n"
      " of B lengthens the FIFO and halves nothing: the rate rises to the\n"
      " machine maximum while per-instance latency stays ~constant — the\n"
      " delay is paid once to fill the longer cycle.)\n\n");
  return bench::runTimings(argc, argv);
}
