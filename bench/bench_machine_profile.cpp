// A2 (architecture) — how much hardware sustains full pipelining?  The
// paper's premise (§1–§3) is that fully pipelined code keeps a machine's
// function units busy.  Under the hardware profile (multi-cycle FPU/ALU/AM,
// 1-cycle routing each way) we sweep the FPU pool size and watch the
// pipeline rate saturate, and we report per-class utilization at the knee.
#include "bench_common.hpp"

namespace {

using namespace valpipe;

std::string chainSource(std::int64_t n) {
  return "const n = " + std::to_string(n) + "\n" + R"(
function chain(S: array[real] [0, n+1] returns array[real])
  let
    F : array[real] := forall i in [0, n+1]
        P : real := if (i = 0) | (i = n+1) then S[i]
                    else 0.25 * (S[i-1] + 2.*S[i] + S[i+1]) endif;
      construct P endall;
    H : array[real] := for i : integer := 1;
        T : array[real] := [0: 0]
      do let P : real := 0.9 * T[i-1] + 0.1 * F[i]
         in if i < n + 1 then iter T := T[i: P]; i := i + 1 enditer
            else T endif
         endlet
      endfor
  in H endlet
endfun
)";
}

void BM_HardwareProfile(benchmark::State& state) {
  const auto prog = core::compileSource(chainSource(512));
  const auto in = bench::randomInputs(prog, 81, 0.0, 1.0);
  machine::MachineConfig cfg = machine::MachineConfig::hardware(
      static_cast<int>(state.range(0)), 0, 0);
  for (auto _ : state) {
    auto r = bench::measureRate(prog, in, 1, cfg);
    benchmark::DoNotOptimize(r.cycles);
  }
}
BENCHMARK(BM_HardwareProfile)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  using namespace valpipe;
  bench::banner(
      "A2 (architecture profile)",
      "pipeline rate vs function-unit pool under the hardware timing model",
      "rate climbs with the FPU pool until the dataflow limit (set by the "
      "4-cycle FPU latency and the loop cycle) and then saturates — fully "
      "pipelined code converts hardware into throughput until the "
      "dependence structure binds");

  const auto prog = core::compileSource(chainSource(512));
  const auto in = bench::randomInputs(prog, 81, 0.0, 1.0);
  const auto statsG = dfg::computeStats(prog.graph);
  std::printf("program: %zu cells, %zu FPU-class cells\n\n", statsG.cells,
              [&] {
                std::size_t fp = 0;
                for (const auto& [op, cnt] : statsG.byOp)
                  if (dfg::fuClass(op) == dfg::FuClass::Fpu) fp += cnt;
                return fp;
              }());

  std::printf("-- unit profile baseline --\n");
  std::printf("rate %.4f (dataflow maximum 0.5)\n\n",
              bench::measureRate(prog, in).steadyRate);

  std::printf("-- hardware profile: FPU latency 4, routing/ack 1 cycle --\n");
  TextTable table({"FPUs", "rate", "vs unlimited"});
  dfg::Graph lowered = dfg::expandFifos(prog.graph);
  auto rateWith = [&](int fpus) {
    machine::MachineConfig cfg = machine::MachineConfig::hardware(fpus, 0, 0);
    machine::RunOptions opts;
    opts.waves = 2;
    opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave() * 2;
    const auto res = machine::simulate(lowered, cfg, in, opts);
    return res.steadyRate(prog.outputName);
  };
  const double unlimited = rateWith(0);
  for (int fpus : {1, 2, 4, 8, 16, 32})
    table.addRow({std::to_string(fpus), fmtDouble(rateWith(fpus), 4),
                  fmtDouble(rateWith(fpus) / unlimited, 3)});
  table.addRow({"inf", fmtDouble(unlimited, 4), "1"});
  std::printf("%s\n", table.str().c_str());

  std::printf("-- per-class utilization and packet mix (8 FPUs) --\n");
  {
    machine::MachineConfig cfg = machine::MachineConfig::hardware(8, 0, 0);
    machine::RunOptions opts;
    opts.waves = 2;
    opts.expectedOutputs[prog.outputName] = prog.expectedOutputPerWave() * 2;
    const auto res = machine::simulate(lowered, cfg, in, opts);
    TextTable util({"class", "op packets", "busy (unit-cycles)", "util of 8"});
    const char* names[4] = {"PE", "ALU", "FPU", "AM"};
    for (int c = 0; c < 4; ++c) {
      const double u =
          c == static_cast<int>(dfg::FuClass::Fpu) && res.cycles > 0
              ? static_cast<double>(res.fuBusy[c]) /
                    (8.0 * static_cast<double>(res.cycles))
              : 0.0;
      util.addRow({names[c], std::to_string(res.packets.opPacketsByClass[c]),
                   std::to_string(res.fuBusy[c]),
                   c == static_cast<int>(dfg::FuClass::Fpu) ? fmtDouble(u, 3)
                                                            : "-"});
    }
    std::printf("%s\n", util.str().c_str());
  }
  return bench::runTimings(argc, argv);
}
